//! Orthogonal Procrustes via the polar decomposition — the factor-analysis
//! / aerospace application family the paper's introduction cites
//! (Schönemann 1966; Bar-Itzhack 1975).
//!
//! Given point clouds `P` and `Q = R* P + noise`, the rotation minimizing
//! `||R P - Q||_F` over orthogonal `R` is the unitary polar factor of
//! `M = Q P^H`. We recover `R*` with QDWH and compare against the
//! SVD-based solution.
//!
//! A second part re-orthogonalizes a drifted direction-cosine matrix (the
//! strapdown-navigation use of Bar-Itzhack): the polar factor of a nearly
//! orthogonal matrix is its closest orthogonal matrix.
//!
//! ```sh
//! cargo run --release --example procrustes
//! ```

use polar::prelude::*;
use polar::qdwh::orthogonality_error;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn rotation_series(dim: usize, rng: &mut StdRng) -> Matrix<f64> {
    // random rotation via polar factor of a random matrix
    let g = Matrix::from_fn(dim, dim, |_, _| rng.gen_range(-1.0..1.0));
    let pd = qdwh(&g, &QdwhOptions::factor_only()).unwrap();
    pd.u
}

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    let dim = 3; // spatial alignment
    let npoints = 4000;

    // ground-truth rotation and noisy observations
    let r_true = rotation_series(dim, &mut rng);
    let p = Matrix::from_fn(dim, npoints, |_, _| rng.gen_range(-1.0..1.0));
    let mut q = Matrix::<f64>::zeros(dim, npoints);
    polar::blas::gemm(Op::NoTrans, Op::NoTrans, 1.0, r_true.as_ref(), p.as_ref(), 0.0, q.as_mut());
    let noise = 1e-3;
    for j in 0..npoints {
        for i in 0..dim {
            q[(i, j)] += rng.gen_range(-noise..noise);
        }
    }

    // M = Q P^H; R = polar factor of M
    let mut m = Matrix::<f64>::zeros(dim, dim);
    polar::blas::gemm(Op::NoTrans, Op::ConjTrans, 1.0, q.as_ref(), p.as_ref(), 0.0, m.as_mut());
    let r_qdwh = qdwh(&m, &QdwhOptions::factor_only()).unwrap().u;
    let r_svd = svd_based_polar(&m).unwrap().u;

    let err = |r: &Matrix<f64>| -> f64 {
        let mut d = r.clone();
        polar::blas::add(-1.0, r_true.as_ref(), 1.0, d.as_mut());
        polar::blas::norm(Norm::Fro, d.as_ref())
    };
    println!("Orthogonal Procrustes alignment ({npoints} points, noise {noise:.0e})");
    println!("  ||R_qdwh - R_true||_F = {:.3e}", err(&r_qdwh));
    println!("  ||R_svd  - R_true||_F = {:.3e}", err(&r_svd));
    let mut diff = r_qdwh.clone();
    polar::blas::add(-1.0, r_svd.as_ref(), 1.0, diff.as_mut());
    let agreement: f64 = polar::blas::norm(Norm::Fro, diff.as_ref());
    println!("  ||R_qdwh - R_svd||_F  = {agreement:.3e}  (methods agree)\n");
    assert!(err(&r_qdwh) < 1e-2 && agreement < 1e-12);

    // --- strapdown matrix re-orthogonalization (Bar-Itzhack 1975) ---
    let dim = 3;
    let c_exact = rotation_series(dim, &mut rng);
    // integration drift: multiplicative noise
    let mut c_drifted = c_exact.clone();
    for j in 0..dim {
        for i in 0..dim {
            c_drifted[(i, j)] *= 1.0 + rng.gen_range(-1e-4..1e-4);
        }
    }
    let before = orthogonality_error(&c_drifted);
    let fixed = qdwh(&c_drifted, &QdwhOptions::factor_only()).unwrap().u;
    let after = orthogonality_error(&fixed);
    // optimality: the polar factor is the nearest orthogonal matrix
    let mut d = fixed.clone();
    polar::blas::add(-1.0, c_drifted.as_ref(), 1.0, d.as_mut());
    let dist: f64 = polar::blas::norm(Norm::Fro, d.as_ref());
    println!("Strapdown direction-cosine matrix correction");
    println!("  orthogonality error before: {before:.3e}");
    println!("  orthogonality error after : {after:.3e}");
    println!("  distance moved            : {dist:.3e} (minimal by polar optimality)");
    assert!(after < 1e-14 && after < before);
    println!("\nOK: polar-based alignment and re-orthogonalization both work.");
}
