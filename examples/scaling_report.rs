//! Mini scaling report: the paper's Figs. 2–6 in one terminal table,
//! generated from the Summit/Frontier machine models and the analytic
//! performance model (the same code the full figure harnesses in
//! `polar-bench` use).
//!
//! ```sh
//! cargo run --release --example scaling_report
//! ```

use polar::sim::machine::NodeSpec;
use polar::sim::{estimate_qdwh_time, Implementation};

fn main() {
    let summit = NodeSpec::summit();
    let frontier = NodeSpec::frontier();
    let (it_qr, it_chol) = polar::sim::ILL_CONDITIONED_PROFILE;

    println!("Modeled QDWH performance, ill-conditioned profile (3 QR + 3 Cholesky)\n");
    println!("== Summit (Figs. 2-4): Tflop/s by implementation ==");
    println!(
        "{:>6} {:>8} | {:>10} {:>10} {:>10} | {:>8}",
        "nodes", "n", "SLATE-GPU", "SLATE-CPU", "ScaLAPACK", "speedup"
    );
    for &nodes in &[1usize, 4, 8, 16, 32] {
        for &n in &[40_000usize, 80_000, 130_000, 200_000] {
            let gpu = estimate_qdwh_time(
                &summit,
                nodes,
                Implementation::SlateGpu,
                n,
                320,
                it_qr,
                it_chol,
            );
            let cpu = estimate_qdwh_time(
                &summit,
                nodes,
                Implementation::SlateCpu,
                n,
                192,
                it_qr,
                it_chol,
            );
            let sca = estimate_qdwh_time(
                &summit,
                nodes,
                Implementation::ScaLapack,
                n,
                192,
                it_qr,
                it_chol,
            );
            println!(
                "{:>6} {:>8} | {:>10.2} {:>10.3} {:>10.3} | {:>7.1}x",
                nodes,
                n,
                gpu.tflops,
                cpu.tflops,
                sca.tflops,
                gpu.tflops / sca.tflops
            );
        }
        println!();
    }

    println!("== Frontier (Figs. 5-6): SLATE-GPU Tflop/s ==");
    println!("{:>6} {:>8} | {:>10} | {:>12}", "nodes", "n", "Tflop/s", "% achievable");
    for &nodes in &[1usize, 2, 4, 8, 16] {
        for &n in &[50_000usize, 100_000, 175_000] {
            let r = estimate_qdwh_time(
                &frontier,
                nodes,
                Implementation::SlateGpu,
                n,
                320,
                it_qr,
                it_chol,
            );
            let agg_dgemm =
                nodes as f64 * frontier.node_gflops(polar::sim::ExecTarget::GpuAccelerated) / 1e3;
            println!(
                "{:>6} {:>8} | {:>10.1} | {:>11.1}%",
                nodes,
                n,
                r.tflops,
                100.0 * r.tflops / agg_dgemm
            );
        }
        println!();
    }

    let headline =
        estimate_qdwh_time(&frontier, 16, Implementation::SlateGpu, 175_000, 320, it_qr, it_chol);
    println!(
        "headline: 16 Frontier nodes (128 GCDs), n = 175k -> {:.0} Tflop/s (paper: ~180)",
        headline.tflops
    );
}
