//! Service quickstart: run a burst of polar-decomposition jobs through
//! the embeddable `polar-svc` job service and read back its telemetry.
//!
//! Demonstrates the full service surface in ~50 lines: bounded-queue
//! submission, priorities, a cancelled job, and the metrics snapshot.
//!
//! ```sh
//! cargo run --release --example service_quickstart
//! ```

use polar::prelude::*;

fn main() {
    let svc =
        PolarService::start(ServiceConfig { workers: 2, queue_capacity: 16, ..Default::default() });

    // a burst of mixed-size work: small panels batch together, the large
    // ill-conditioned solve owns a worker
    let (big, _) = generate::<f64>(&MatrixSpec::ill_conditioned(96, 7));
    let big_job =
        svc.try_submit(JobSpec::qdwh(big.clone()).with_priority(5)).expect("queue has room");
    let small_jobs: Vec<_> = (0..8)
        .map(|s| {
            let (a, _) = generate::<f64>(&MatrixSpec::well_conditioned(24, s));
            svc.try_submit(JobSpec::qdwh(a)).expect("queue has room")
        })
        .collect();

    // cancel one job cooperatively: it stops at the next Halley
    // iteration boundary if running, or never starts if still queued.
    // Cancellation is best-effort by design — a cancel that lands during
    // the final iteration lets the job finish.
    let (doomed, _) = generate::<f64>(&MatrixSpec::ill_conditioned(64, 8));
    let cancelled = svc.try_submit(JobSpec::qdwh(doomed)).expect("queue has room");
    cancelled.cancel();

    let r = big_job.wait();
    let u = r.output.expect("large solve succeeds");
    println!(
        "large job : {} attempts, waited {:?}, ran {:?}, orth err {:.3e}",
        r.attempts,
        r.wait,
        r.run,
        polar::qdwh::orthogonality_error(u.u())
    );
    for h in small_jobs {
        assert!(h.wait().output.is_ok());
    }
    match cancelled.wait().output {
        Err(e) => println!("cancelled : {e}"),
        Ok(_) => println!("cancelled : finished before the cancel landed (cooperative)"),
    }

    svc.drain();
    let m = svc.metrics();
    println!(
        "metrics   : {} completed, {} cancelled, {} batches, wait p95 {:?}",
        m.completed, m.cancelled, m.batches, m.wait.p95
    );
    println!("\n{}", m.to_json());
    svc.shutdown();
}
