//! Iteration-count study: how the matrix condition number drives the
//! QR/Cholesky iteration split (paper §4 and §7.2 in-text claims: at most
//! six iterations; ill-conditioned -> 3 QR + 3 Cholesky with the paper's
//! l0 formula; well-conditioned -> Cholesky only).
//!
//! ```sh
//! cargo run --release --example condition_study
//! ```

use polar::prelude::*;
use polar::qdwh::orthogonality_error;
use polar_qdwh::{IterationPath, L0Strategy};

fn main() {
    let n = 192;
    println!("QDWH iteration profile vs condition number (n = {n})\n");
    println!(
        "{:>9} | {:>19} | {:>19} | {:>10} {:>10}",
        "kappa", "tight l0 (qr+chol)", "paper l0 (qr+chol)", "orth err", "bwd err"
    );

    for &kappa in &[1.0, 1e1, 1e2, 1e4, 1e8, 1e12, 1e16] {
        let spec = MatrixSpec {
            m: n,
            n,
            cond: kappa,
            distribution: SigmaDistribution::Geometric,
            seed: 1234,
        };
        let (a, _) = generate::<f64>(&spec);

        let tight = qdwh(&a, &QdwhOptions::default()).unwrap();
        let paper =
            qdwh(&a, &QdwhOptions { l0_strategy: L0Strategy::PaperFormula, ..Default::default() })
                .unwrap();

        println!(
            "{:>9.0e} | {:>7} = {} qr + {} ch | {:>7} = {} qr + {} ch | {:>10.2e} {:>10.2e}",
            kappa,
            tight.info.iterations,
            tight.info.qr_iterations,
            tight.info.chol_iterations,
            paper.info.iterations,
            paper.info.qr_iterations,
            paper.info.chol_iterations,
            orthogonality_error(&tight.u),
            tight.backward_error(&a),
        );
        assert!(tight.info.iterations <= 7, "iteration bound violated");
    }

    println!("\nForced-path ablation at kappa = 1e8:");
    let (a, _) = generate::<f64>(&MatrixSpec {
        m: n,
        n,
        cond: 1e8,
        distribution: SigmaDistribution::Geometric,
        seed: 77,
    });
    for (label, path) in
        [("auto (c > 100 switch)", IterationPath::Auto), ("force QR", IterationPath::ForceQr)]
    {
        let pd = qdwh(&a, &QdwhOptions { path, ..Default::default() }).unwrap();
        println!(
            "  {label:<22}: {} iterations ({} qr, {} chol), flops {:.2e}",
            pd.info.iterations,
            pd.info.qr_iterations,
            pd.info.chol_iterations,
            pd.info.flops_estimate
        );
    }
}
