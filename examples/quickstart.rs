//! Quickstart: polar-decompose an ill-conditioned matrix with QDWH and
//! report the paper's Fig. 1 accuracy metrics plus iteration telemetry.
//!
//! ```sh
//! cargo run --release --example quickstart [-- n]
//! ```

use polar::prelude::*;
use polar::qdwh::orthogonality_error;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(256);

    println!("QDWH polar decomposition quickstart (n = {n}, kappa = 1e16)\n");

    let spec = MatrixSpec::ill_conditioned(n, 2023);
    let (a, _) = generate::<f64>(&spec);

    // enable kernel counters so per-iteration records carry GFlop/s
    polar::obs::set_metrics_enabled(true);

    let t0 = std::time::Instant::now();
    let pd = qdwh(&a, &QdwhOptions::default()).expect("qdwh failed");
    let elapsed = t0.elapsed();

    println!("  iterations        : {} total", pd.info.iterations);
    println!("    QR-based        : {}", pd.info.qr_iterations);
    println!("    Cholesky-based  : {}", pd.info.chol_iterations);
    println!("  two-norm estimate : {:.6e}", pd.info.alpha);
    println!("  sigma_min bound l0: {:.6e}", pd.info.l0);
    println!("  flops (paper eq.) : {:.3e}", pd.info.flops_estimate);
    println!("  wall time         : {elapsed:?}");
    println!();

    // Fig. 1a metric: || I - Up^H Up ||_F / sqrt(n)
    let orth = orthogonality_error(&pd.u);
    // Fig. 1b metric: || A - Up H ||_F / ||A||_F
    let berr = pd.backward_error(&a);
    println!("  orthogonality error (Fig. 1a metric): {orth:.3e}");
    println!("  backward error      (Fig. 1b metric): {berr:.3e}");

    println!("\nper-iteration records (||A_k - A_(k-1)||_F, l_k, achieved GFlop/s):");
    for r in &pd.info.records {
        println!(
            "  iter {:>2} [{:?}]: conv={:.3e}  l={:.3e}  {:>6.1} ms  {:>5.1} GFlop/s",
            r.iteration,
            r.kind,
            r.convergence,
            r.ell,
            r.seconds * 1e3,
            r.achieved_gflops(),
        );
    }

    assert!(orth < 1e-12 && berr < 1e-12, "accuracy regression");
    println!("\nOK: both errors at machine-precision level, as in the paper.");
}
