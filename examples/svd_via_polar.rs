//! SVD through the polar decomposition (paper §3):
//!
//! `A = U_p H`, then `H = V Λ V^H`, gives `A = (U_p V) Λ V^H = U Σ V^H`.
//!
//! Computes the QDWH-SVD of a rectangular test matrix and cross-validates
//! the spectrum against (a) the generator's prescribed singular values and
//! (b) a direct one-sided Jacobi SVD.
//!
//! ```sh
//! cargo run --release --example svd_via_polar
//! ```

use polar::lapack::jacobi_svd;
use polar::prelude::*;

fn main() {
    let (m, n) = (300usize, 180usize);
    let spec = MatrixSpec { m, n, cond: 1e8, distribution: SigmaDistribution::Geometric, seed: 7 };
    let (a, sigma_true) = generate::<f64>(&spec);
    println!("QDWH-SVD of a {m} x {n} matrix, kappa = 1e8\n");

    let t0 = std::time::Instant::now();
    let svd = polar::qdwh::qdwh_svd(&a, &QdwhOptions::default()).expect("qdwh_svd failed");
    let t_qdwh = t0.elapsed();

    let t1 = std::time::Instant::now();
    let direct = jacobi_svd(&a).expect("jacobi svd failed");
    let t_jacobi = t1.elapsed();

    println!("  polar stage iterations : {}", svd.polar_iterations);
    println!("  QDWH-SVD wall time     : {t_qdwh:?}");
    println!("  Jacobi SVD wall time   : {t_jacobi:?}\n");

    let mut max_rel_gen = 0.0f64;
    let mut max_rel_jac = 0.0f64;
    for ((&s, &st), &sj) in svd.sigma.iter().zip(&sigma_true).zip(&direct.sigma).take(n) {
        max_rel_gen = max_rel_gen.max((s - st).abs() / (1.0 + st));
        max_rel_jac = max_rel_jac.max((s - sj).abs() / (1.0 + sj));
    }
    println!("  max |sigma - prescribed| (rel): {max_rel_gen:.3e}");
    println!("  max |sigma - Jacobi|     (rel): {max_rel_jac:.3e}");

    // reconstruction residual ||A - U S V^H||_F / ||A||_F
    let mut us = svd.u.clone();
    for j in 0..n {
        for i in 0..m {
            us[(i, j)] *= svd.sigma[j];
        }
    }
    let mut recon = a.clone();
    polar::blas::gemm(
        Op::NoTrans,
        Op::ConjTrans,
        1.0,
        us.as_ref(),
        svd.v.as_ref(),
        -1.0,
        recon.as_mut(),
    );
    let num: f64 = polar::blas::norm(Norm::Fro, recon.as_ref());
    let den: f64 = polar::blas::norm(Norm::Fro, a.as_ref());
    println!("  reconstruction residual       : {:.3e}", num / den);

    assert!(max_rel_gen < 1e-9 && num / den < 1e-12, "accuracy regression");
    println!("\nOK: QDWH-SVD matches the prescribed spectrum and the direct SVD.");
}
