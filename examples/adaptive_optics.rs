//! Partial SVD for extreme adaptive optics — the application the paper's
//! introduction cites ([26] Ltaief, Sukkari, Guyon, Keyes, PASC'18): the
//! wavefront-reconstruction pipeline needs only the *dominant* singular
//! triplets of the (tall) interaction matrix to build a truncated
//! pseudoinverse; a light-weight polar decomposition extracts them far
//! more cheaply than a full SVD.
//!
//! Builds a synthetic interaction matrix with fast singular decay,
//! computes the dominant-k triplets with `qdwh_partial_svd`, and uses
//! them for a regularized least-squares reconstruction, comparing against
//! the full Jacobi SVD.
//!
//! ```sh
//! cargo run --release --example adaptive_optics
//! ```

use polar::lapack::jacobi_svd;
use polar::prelude::*;
use polar::qdwh::qdwh_partial_svd;

fn main() {
    // synthetic "interaction matrix": sensors x actuators, fast decay
    let (m, n, k) = (240usize, 120usize, 12usize);
    let spec =
        MatrixSpec { m, n, cond: 1e10, distribution: SigmaDistribution::Geometric, seed: 2018 };
    let (d, sigma_true) = generate::<f64>(&spec);
    println!("Adaptive-optics style truncated reconstruction");
    println!("  interaction matrix: {m} x {n}, dominant k = {k}\n");

    let t0 = std::time::Instant::now();
    let partial = qdwh_partial_svd(&d, k, &QdwhOptions::default()).expect("partial svd");
    let t_partial = t0.elapsed();

    let t1 = std::time::Instant::now();
    let full = jacobi_svd(&d).expect("full svd");
    let t_full = t1.elapsed();

    println!("  dominant singular values (partial vs full vs prescribed):");
    let mut max_rel: f64 = 0.0;
    for (j, (&ps, &fs)) in partial.sigma.iter().zip(&full.sigma).enumerate().take(k) {
        max_rel = max_rel.max((ps - fs).abs() / fs);
        if j < 4 {
            println!(
                "    sigma_{j}: {:.6e}  {:.6e}  {:.6e}",
                partial.sigma[j], full.sigma[j], sigma_true[j]
            );
        }
    }
    println!("  max relative deviation over k: {max_rel:.2e}");
    println!("  partial (PD + pruned D&C): {t_partial:?}");
    println!("  full Jacobi SVD          : {t_full:?}\n");
    assert!(max_rel < 1e-9);

    // truncated pseudoinverse reconstruction: command = V S^-1 U^T s
    // (the wavefront-control step; truncation regularizes the tiny modes)
    let wavefront_true = Matrix::from_fn(n, 1, |i, _| ((i as f64) * 0.37).sin());
    let mut sensor = Matrix::<f64>::zeros(m, 1);
    polar::blas::gemm(
        Op::NoTrans,
        Op::NoTrans,
        1.0,
        d.as_ref(),
        wavefront_true.as_ref(),
        0.0,
        sensor.as_mut(),
    );

    // project sensor data onto the k dominant modes
    let mut coeff = Matrix::<f64>::zeros(k, 1);
    polar::blas::gemm(
        Op::ConjTrans,
        Op::NoTrans,
        1.0,
        partial.u.as_ref(),
        sensor.as_ref(),
        0.0,
        coeff.as_mut(),
    );
    for j in 0..k {
        coeff[(j, 0)] /= partial.sigma[j];
    }
    let mut recon = Matrix::<f64>::zeros(n, 1);
    polar::blas::gemm(
        Op::NoTrans,
        Op::NoTrans,
        1.0,
        partial.v.as_ref(),
        coeff.as_ref(),
        0.0,
        recon.as_mut(),
    );

    // the truncated solution equals the best rank-k approximation of the
    // true wavefront in the V basis: its residual is the discarded energy
    let mut vk_proj = Matrix::<f64>::zeros(k, 1);
    polar::blas::gemm(
        Op::ConjTrans,
        Op::NoTrans,
        1.0,
        partial.v.as_ref(),
        wavefront_true.as_ref(),
        0.0,
        vk_proj.as_mut(),
    );
    let mut best = Matrix::<f64>::zeros(n, 1);
    polar::blas::gemm(
        Op::NoTrans,
        Op::NoTrans,
        1.0,
        partial.v.as_ref(),
        vk_proj.as_ref(),
        0.0,
        best.as_mut(),
    );
    let mut d1 = recon.clone();
    polar::blas::add(-1.0, best.as_ref(), 1.0, d1.as_mut());
    let dev: f64 = polar::blas::norm(Norm::Fro, d1.as_ref());
    println!("  ||truncated solve - best rank-k projection|| = {dev:.2e}");
    assert!(dev < 1e-8, "truncated pseudoinverse must match the projection");
    println!("\nOK: dominant-mode reconstruction through the polar decomposition works.");
}
