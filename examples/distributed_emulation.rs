//! Virtual-cluster QDWH: the same Algorithm 1, executed as PLASMA/SLATE
//! tile algorithms over a 2D block-cyclic distribution, with every
//! cross-rank tile transfer metered. Shows (a) numerics identical to the
//! shared-memory driver on every grid, and (b) how communication volume
//! scales with the process grid — the distributed story of the paper,
//! emulated in one address space.
//!
//! ```sh
//! cargo run --release --example distributed_emulation
//! ```

use polar::matrix::ProcessGrid;
use polar::prelude::*;
use polar::qdwh::{orthogonality_error, qdwh_distributed, DistConfig};

fn main() {
    let n = 64;
    let nb = 8;
    // kappa = 1e6: ill enough to exercise both QR and Cholesky iterations,
    // moderate enough that forward agreement between the two drivers is
    // meaningful (the polar factor's sensitivity is O(eps * kappa))
    let spec =
        MatrixSpec { m: n, n, cond: 1e6, distribution: SigmaDistribution::Geometric, seed: 404 };
    let (a, _) = generate::<f64>(&spec);

    let dense = qdwh(&a, &QdwhOptions::default()).unwrap();
    println!("Virtual-cluster QDWH (n = {n}, nb = {nb}, kappa = 1e6)");
    println!(
        "shared-memory reference: {} iterations ({} QR + {} Chol)\n",
        dense.info.iterations, dense.info.qr_iterations, dense.info.chol_iterations
    );
    println!(
        "{:>7} | {:>10} {:>12} {:>10} | {:>11} | {:>10}",
        "grid", "tile tasks", "p2p msgs", "p2p MB", "U vs dense", "orth err"
    );

    for (p, q) in [(1, 1), (1, 2), (2, 2), (2, 4), (4, 4)] {
        let cfg = DistConfig { grid: ProcessGrid::new(p, q), nb };
        let out = qdwh_distributed(&a, &QdwhOptions::default(), &cfg).unwrap();
        let mut du = out.pd.u.clone();
        polar::blas::add(-1.0, dense.u.as_ref(), 1.0, du.as_mut());
        let err: f64 = polar::blas::norm(Norm::Fro, du.as_ref());
        println!(
            "{:>3}x{:<3} | {:>10} {:>12} {:>10.3} | {:>11.2e} | {:>10.2e}",
            p,
            q,
            out.tile_tasks,
            out.comm.point_to_point_messages,
            out.comm.point_to_point_bytes as f64 / 1e6,
            err,
            orthogonality_error(&out.pd.u),
        );
        assert!(err < 1e-8, "distribution must not change the numerics");
    }

    println!("\ncommunication grows with the grid; the factors do not change.");
    println!("(1x1 shows zero traffic: every tile is rank-local.)");
}
