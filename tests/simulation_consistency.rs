//! Integration between the numerical library and the performance stack:
//! the tile DAG, the schedulers, and the analytic model must tell a
//! mutually consistent story.

use polar::runtime::{simulate, SchedulingMode};
use polar::sim::dag::{qdwh_graph, Grid, QdwhGraphSpec};
use polar::sim::machine::{ClusterModel, ExecTarget, NodeSpec};
use polar::sim::{estimate_qdwh_time, qdwh_flops, Implementation};

fn spec(t: usize, ranks: usize, it_qr: usize, it_chol: usize) -> QdwhGraphSpec {
    QdwhGraphSpec { t, nb: 320, scalar_bytes: 8, grid: Grid::squarest(ranks), it_qr, it_chol }
}

#[test]
fn dag_flops_match_measured_iteration_profile() {
    // run the real algorithm, take its iteration profile, expand the DAG
    // for that profile, and compare flop totals with the paper formula
    use polar::prelude::*;
    let n = 64;
    let (a, _) = generate::<f64>(&MatrixSpec::ill_conditioned(n, 3));
    let pd = qdwh(&a, &QdwhOptions::default()).unwrap();
    let g = qdwh_graph(&QdwhGraphSpec {
        t: 8,
        nb: 8,
        scalar_bytes: 8,
        grid: Grid { p: 2, q: 2 },
        it_qr: pd.info.qr_iterations,
        it_chol: pd.info.chol_iterations,
    });
    let formula = qdwh_flops(n, pd.info.qr_iterations, pd.info.chol_iterations);
    let ratio = g.total_flops() / formula;
    assert!((0.5..2.5).contains(&ratio), "DAG/formula ratio {ratio}");
    assert!((pd.info.flops_estimate - formula).abs() < 1.0);
}

#[test]
fn des_fork_join_slower_than_task_based_on_qdwh_dag() {
    let g = qdwh_graph(&spec(16, 4, 1, 1));
    let model = ClusterModel::slate(NodeSpec::summit(), 2, ExecTarget::CpuOnly, 320);
    let tb = simulate(&g, &model, SchedulingMode::TaskBased);
    let fj = simulate(&g, &model, SchedulingMode::ForkJoin);
    assert!(fj.makespan > tb.makespan, "fork-join {} vs task-based {}", fj.makespan, tb.makespan);
    // the gap is the paper's core scheduling argument: it should be
    // substantial, not epsilon
    assert!(fj.makespan > 1.05 * tb.makespan);
}

#[test]
fn des_gpu_faster_than_cpu_on_qdwh_dag() {
    let g = qdwh_graph(&spec(20, 2, 3, 3));
    let node = NodeSpec::summit();
    let gpu = ClusterModel::slate(node.clone(), 1, ExecTarget::GpuAccelerated, 320);
    let cpu = ClusterModel::slate(node, 1, ExecTarget::CpuOnly, 320);
    let t_gpu = simulate(&g, &gpu, SchedulingMode::TaskBased);
    let t_cpu = simulate(&g, &cpu, SchedulingMode::TaskBased);
    assert!(t_gpu.makespan < t_cpu.makespan);
}

#[test]
fn des_and_analytic_agree_on_ordering() {
    // On a mid-size DAG, the DES and the analytic model must rank the
    // three implementations identically (GPU > CPU >= ScaLAPACK).
    let t = 24;
    let nb = 320;
    let n = t * nb;
    let node = NodeSpec::summit();

    let g_slate = qdwh_graph(&spec(t, 2, 3, 3));
    let gpu_des = simulate(
        &g_slate,
        &ClusterModel::slate(node.clone(), 1, ExecTarget::GpuAccelerated, nb),
        SchedulingMode::TaskBased,
    );
    let cpu_des = simulate(
        &g_slate,
        &ClusterModel::slate(node.clone(), 1, ExecTarget::CpuOnly, nb),
        SchedulingMode::TaskBased,
    );

    let gpu_ana = estimate_qdwh_time(&node, 1, Implementation::SlateGpu, n, nb, 3, 3);
    let cpu_ana = estimate_qdwh_time(&node, 1, Implementation::SlateCpu, n, nb, 3, 3);

    assert!(gpu_des.makespan < cpu_des.makespan);
    assert!(gpu_ana.seconds < cpu_ana.seconds);

    // quantitative cross-validation: the DES/analytic ratio stays within
    // a factor of 3 for both targets (they are different abstractions)
    for (des, ana, label) in
        [(gpu_des.makespan, gpu_ana.seconds, "gpu"), (cpu_des.makespan, cpu_ana.seconds, "cpu")]
    {
        let ratio = des / ana;
        assert!(
            (1.0 / 3.0..3.0).contains(&ratio),
            "{label}: DES {des:.2}s vs analytic {ana:.2}s (ratio {ratio:.2})"
        );
    }
}

#[test]
fn block_cyclic_balances_des_load() {
    let g = qdwh_graph(&spec(16, 4, 1, 1));
    let model = ClusterModel::slate(NodeSpec::summit(), 2, ExecTarget::CpuOnly, 320);
    let s = simulate(&g, &model, SchedulingMode::TaskBased);
    let max_busy = s.per_rank_busy.iter().cloned().fold(0.0f64, f64::max);
    let min_busy = s.per_rank_busy.iter().cloned().fold(f64::MAX, f64::min);
    assert!(max_busy < 2.0 * min_busy, "block-cyclic should balance load: {:?}", s.per_rank_busy);
}

#[test]
fn communication_grows_with_ranks() {
    let g2 = qdwh_graph(&spec(16, 2, 1, 1));
    let g8 = qdwh_graph(&spec(16, 8, 1, 1));
    assert!(g8.cross_rank_bytes() > g2.cross_rank_bytes());
}

#[test]
fn more_nodes_reduce_des_makespan_at_fixed_size() {
    let t = 20;
    let g1 = qdwh_graph(&spec(t, 2, 1, 1));
    let g4 = qdwh_graph(&spec(t, 8, 1, 1));
    let node = NodeSpec::summit();
    let m1 = ClusterModel::slate(node.clone(), 1, ExecTarget::CpuOnly, 320);
    let m4 = ClusterModel::slate(node, 4, ExecTarget::CpuOnly, 320);
    let s1 = simulate(&g1, &m1, SchedulingMode::TaskBased);
    let s4 = simulate(&g4, &m4, SchedulingMode::TaskBased);
    assert!(s4.makespan < s1.makespan, "4 nodes {} vs 1 node {}", s4.makespan, s1.makespan);
}
