//! Integration tests for the observability stack: a real instrumented
//! QDWH solve must produce (a) a well-formed Chrome trace whose spans
//! nest cleanly per (lane, depth), (b) per-iteration records with a
//! QR-vs-Cholesky kernel split, and (c) flop counters that agree with the
//! independent analytic model in `polar_sim::kernel_flops` to within 1%.

use polar::obs::{self, KernelClass};
use polar::prelude::*;
use polar::qdwh::IterationKind;
use polar::sim::kernel_flops;

/// One instrumented solve under the process-global scope lock (obs state
/// is shared by every test in the binary).
fn profiled_qdwh(n: usize) -> (PolarDecomposition<f64>, obs::Report) {
    let _guard = obs::scope_lock();
    let (a, _) = generate::<f64>(&MatrixSpec::ill_conditioned(n, 7));
    rayon::join(|| (), || ()); // make sure pool workers (and lanes) exist
    let scope = obs::scope();
    let pd = qdwh(&a, &QdwhOptions::default()).expect("qdwh converges");
    (pd, scope.finish())
}

#[test]
fn trace_round_trips_and_spans_nest_per_lane() {
    let (_, report) = profiled_qdwh(96);
    assert!(!report.spans.is_empty());

    // serialize through the runtime's Chrome-trace writer, then re-parse
    let mut buf = Vec::new();
    polar::runtime::write_solver_trace(&report.spans, &mut buf).unwrap();
    let parsed = serde::json::from_str(std::str::from_utf8(&buf).unwrap())
        .expect("trace is well-formed JSON");
    let obj = parsed.as_object().expect("trace is a JSON object");
    assert_eq!(obj.get("truncated").and_then(|v| v.as_bool()), Some(false));
    let events = obj.get("traceEvents").and_then(|v| v.as_array()).expect("traceEvents array");
    let complete: Vec<_> =
        events.iter().filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some("X")).collect();
    assert_eq!(complete.len(), report.spans.len());

    // every complete event has the Perfetto fields; counter events carry a
    // value; and the stream is globally timestamp-ordered (Perfetto drops
    // out-of-order counter samples)
    let mut last_ts = f64::MIN;
    for e in events {
        let ts = e.get("ts").and_then(|v| v.as_f64()).expect("ts");
        assert!(ts >= 0.0);
        assert!(ts >= last_ts, "events not timestamp-sorted");
        last_ts = ts;
        match e.get("ph").and_then(|v| v.as_str()) {
            Some("X") => {
                let name = e.get("name").and_then(|v| v.as_str()).expect("name");
                assert!(!name.is_empty());
                assert!(e.get("dur").and_then(|v| v.as_f64()).expect("dur") >= 0.0);
                e.get("pid").and_then(|v| v.as_f64()).expect("pid");
                e.get("tid").and_then(|v| v.as_f64()).expect("tid");
            }
            Some("C") => {
                e.get("args").and_then(|a| a.get("value")).and_then(|v| v.as_f64()).expect("value");
            }
            other => panic!("unexpected event phase {other:?}"),
        }
    }

    // the solver phases and the paper's kernel classes all appear
    let names: std::collections::BTreeSet<&str> = report.spans.iter().map(|s| s.name).collect();
    for expected in ["qdwh", "qdwh_iter", "gemm", "geqrf", "potrf", "trsm", "herk"] {
        assert!(names.contains(expected), "missing '{expected}' in {names:?}");
    }

    // spans on one (lane, depth) row are monotonically ordered and never
    // overlap: that pair is exactly a Perfetto (pid, tid) row, and a row
    // with overlapping complete-spans renders garbage
    let mut rows: std::collections::BTreeMap<(u32, u32), Vec<(u64, u64)>> =
        std::collections::BTreeMap::new();
    for s in &report.spans {
        assert!(s.end_ns >= s.start_ns, "span {} ends before it starts", s.name);
        rows.entry((s.lane, s.depth)).or_default().push((s.start_ns, s.end_ns));
    }
    for ((lane, depth), mut row) in rows {
        row.sort_unstable();
        for w in row.windows(2) {
            assert!(
                w[0].1 <= w[1].0,
                "overlapping spans on lane {lane} depth {depth}: \
                 [{}, {}) then [{}, {})",
                w[0].0,
                w[0].1,
                w[1].0,
                w[1].1
            );
        }
    }
}

#[test]
fn counted_flops_match_the_analytic_model_within_1_percent() {
    let n = 96usize;
    let (pd, report) = profiled_qdwh(n);
    let it_qr = pd.info.qr_iterations as f64;
    let it_chol = pd.info.chol_iterations as f64;
    assert!(it_qr >= 1.0 && it_chol >= 1.0, "want both iteration kinds");

    // Analytic model of Algorithm 1, built from polar_sim::kernel_flops
    // (shares no code with the counting hooks in polar-blas / polar-lapack):
    //   per QR iteration (Eq. 1): geqrf + orgqr of the stacked 2n x n
    //   matrix, one n x n gemm for the update, one for H at the end;
    //   per Cholesky iteration (Eq. 2): herk + potrf + 2 trsm.
    let stacked = |f: fn(usize, usize) -> f64| f(2 * n, n);
    let qr_iter =
        stacked(kernel_flops::geqrf) + stacked(kernel_flops::orgqr) + kernel_flops::gemm(n, n, n);
    let chol_iter =
        kernel_flops::herk(n, n) + kernel_flops::potrf(n) + 2.0 * kernel_flops::trsm_right(n, n);

    let counted = report.kernels.get(KernelClass::Geqrf).flops as f64
        + report.kernels.get(KernelClass::Orgqr).flops as f64;
    // + one square geqrf: the l_0 condition estimate (Algorithm 1 line 19)
    let model = it_qr * (stacked(kernel_flops::geqrf) + stacked(kernel_flops::orgqr))
        + kernel_flops::geqrf(n, n);
    let rel = (counted - model).abs() / model;
    assert!(rel < 0.01, "QR-class flops off by {:.3}%: {counted} vs {model}", rel * 100.0);

    let counted_chol = report.kernels.get(KernelClass::Herk).flops as f64
        + report.kernels.get(KernelClass::Potrf).flops as f64
        + report.kernels.get(KernelClass::Trsm).flops as f64;
    let model_chol = it_chol * (chol_iter - 0.0);
    let rel = (counted_chol - model_chol).abs() / model_chol;
    assert!(
        rel < 0.01,
        "Cholesky-class flops off by {:.3}%: {counted_chol} vs {model_chol}",
        rel * 100.0
    );

    // whole-solve total: iterations + condition estimation + final H gemm
    // land within a few percent of the paper's per-kernel accounting; the
    // per-class checks above are the tight (1%) contract
    let total = report.kernels.total_flops() as f64;
    assert!(total > it_qr * qr_iter + it_chol * chol_iter - 1.0);
}

#[test]
fn iteration_records_split_qr_vs_cholesky_kernel_time() {
    let (pd, _) = profiled_qdwh(96);
    assert_eq!(pd.info.records.len(), pd.info.iterations);
    for r in &pd.info.records {
        let qr_ns =
            r.kernels.get(KernelClass::Geqrf).time_ns + r.kernels.get(KernelClass::Orgqr).time_ns;
        let chol_ns = r.kernels.get(KernelClass::Potrf).time_ns;
        match r.kind {
            IterationKind::QrBased => {
                assert!(qr_ns > 0, "iter {}: QR-based but no QR kernel time", r.iteration);
                assert_eq!(chol_ns, 0, "iter {}: QR-based but potrf ran", r.iteration);
            }
            IterationKind::CholeskyBased => {
                assert!(chol_ns > 0, "iter {}: Cholesky-based but no potrf time", r.iteration);
                assert_eq!(qr_ns, 0, "iter {}: Cholesky-based but QR ran", r.iteration);
            }
        }
        assert!(r.seconds > 0.0);
        assert!(r.achieved_gflops() > 0.0);
        assert!(r.convergence.is_finite());
    }
    // convergence_history() is the backward-compatible projection
    assert_eq!(
        pd.info.convergence_history(),
        pd.info.records.iter().map(|r| r.convergence).collect::<Vec<_>>()
    );
}

#[test]
fn disabled_observability_records_nothing() {
    let _guard = obs::scope_lock();
    let before = obs::kernel_snapshot();
    let (a, _) = generate::<f64>(&MatrixSpec::well_conditioned(48, 3));
    let pd = qdwh(&a, &QdwhOptions::default()).expect("qdwh converges");
    let delta = obs::kernel_snapshot().delta(&before);
    assert_eq!(delta.total_calls(), 0, "counters moved while disabled");
    assert!(obs::take_spans().is_empty(), "spans recorded while disabled");
    // records still exist (wall time + convergence), just without kernels
    assert_eq!(pd.info.records.len(), pd.info.iterations);
    assert!(pd.info.records.iter().all(|r| r.kernels.total_calls() == 0));
}
