//! Cross-crate integration: generator -> QDWH -> verification against the
//! SVD-based baseline, across scalar types and shapes.

use polar::prelude::*;
use polar::qdwh::orthogonality_error;
use polar_blas::{add, gemm, norm};

fn agree<S: Scalar>(a: &Matrix<S>, b: &Matrix<S>) -> S::Real {
    let mut d = a.clone();
    add(-S::ONE, b.as_ref(), S::ONE, d.as_mut());
    norm(Norm::Fro, d.as_ref())
}

#[test]
fn qdwh_equals_svd_based_pd_real() {
    // The polar factor's forward sensitivity is O(eps * kappa) (its
    // condition number is ~2/(sigma_{n-1} + sigma_n)), so cross-method
    // agreement degrades with kappa even though each method's *backward*
    // error stays at machine precision.
    for (n, cond, seed) in [(32usize, 1e2, 1u64), (48, 1e4, 2), (64, 1e6, 3)] {
        let spec = MatrixSpec { m: n, n, cond, distribution: SigmaDistribution::Geometric, seed };
        let (a, _) = generate::<f64>(&spec);
        let via_qdwh = qdwh(&a, &QdwhOptions::default()).unwrap();
        let via_svd = svd_based_polar(&a).unwrap();
        let tol = 1e-13 * cond * (n as f64).sqrt();
        assert!(agree(&via_qdwh.u, &via_svd.u) < tol, "U mismatch at cond {cond}");
        assert!(agree(&via_qdwh.h, &via_svd.h) < tol, "H mismatch at cond {cond}");
        // backward error is kappa-independent for both methods
        assert!(via_qdwh.backward_error(&a) < 1e-13);
        assert!(via_svd.backward_error(&a) < 1e-13);
    }
}

#[test]
fn qdwh_equals_svd_based_pd_complex() {
    let spec = MatrixSpec {
        m: 40,
        n: 40,
        cond: 1e6,
        distribution: SigmaDistribution::Geometric,
        seed: 11,
    };
    let (a, _) = generate::<Complex64>(&spec);
    let via_qdwh = qdwh(&a, &QdwhOptions::default()).unwrap();
    let via_svd = svd_based_polar(&a).unwrap();
    assert!(agree(&via_qdwh.u, &via_svd.u) < 1e-9);
    assert!(agree(&via_qdwh.h, &via_svd.h) < 1e-9);
}

#[test]
fn rectangular_tall_all_distributions() {
    for dist in [
        SigmaDistribution::Geometric,
        SigmaDistribution::Arithmetic,
        SigmaDistribution::ClusteredAtInverseKappa,
        SigmaDistribution::Random,
    ] {
        let spec = MatrixSpec { m: 80, n: 30, cond: 1e6, distribution: dist.clone(), seed: 5 };
        let (a, _) = generate::<f64>(&spec);
        let pd = qdwh(&a, &QdwhOptions::default()).unwrap();
        assert!(orthogonality_error(&pd.u) < 1e-12, "{dist:?}: orthogonality");
        assert!(pd.backward_error(&a) < 1e-12, "{dist:?}: backward error");
        assert!(pd.info.iterations <= 7, "{dist:?}: iterations");
    }
}

#[test]
fn h_spectrum_equals_singular_values_via_eig() {
    // end-to-end through four crates: gen -> qdwh -> lapack eig
    let spec = MatrixSpec {
        m: 36,
        n: 36,
        cond: 1e5,
        distribution: SigmaDistribution::Geometric,
        seed: 21,
    };
    let (a, sigma) = generate::<f64>(&spec);
    let pd = qdwh(&a, &QdwhOptions::default()).unwrap();
    let eig = polar::lapack::jacobi_eig(&pd.h).unwrap();
    for (l, s) in eig.values.iter().zip(&sigma) {
        assert!((l - s).abs() < 1e-10 * (1.0 + s));
    }
}

#[test]
fn unitary_invariance_of_polar_factor() {
    // polar(Q A) = Q polar(A).U, H identical, for unitary Q
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let n = 24;
    let mut rng = StdRng::seed_from_u64(31);
    let q = polar::gen::random_orthonormal::<f64>(n, n, &mut rng);
    let (a, _) = generate::<f64>(&MatrixSpec::well_conditioned(n, 32));

    let mut qa = Matrix::<f64>::zeros(n, n);
    gemm(Op::NoTrans, Op::NoTrans, 1.0, q.as_ref(), a.as_ref(), 0.0, qa.as_mut());

    let pd_a = qdwh(&a, &QdwhOptions::default()).unwrap();
    let pd_qa = qdwh(&qa, &QdwhOptions::default()).unwrap();

    // H must be invariant
    assert!(agree(&pd_a.h, &pd_qa.h) < 1e-10);
    // U(QA) == Q U(A)
    let mut qu = Matrix::<f64>::zeros(n, n);
    gemm(Op::NoTrans, Op::NoTrans, 1.0, q.as_ref(), pd_a.u.as_ref(), 0.0, qu.as_mut());
    assert!(agree(&pd_qa.u, &qu) < 1e-10);
}

#[test]
fn scale_invariance_of_unitary_factor() {
    // polar(c A).U == polar(A).U for c > 0; H scales by c
    let (a, _) = generate::<f64>(&MatrixSpec::well_conditioned(20, 41));
    let mut a5 = a.clone();
    polar_blas::scale(5.0, a5.as_mut());
    let p1 = qdwh(&a, &QdwhOptions::default()).unwrap();
    let p5 = qdwh(&a5, &QdwhOptions::default()).unwrap();
    assert!(agree(&p1.u, &p5.u) < 1e-11);
    let mut h_scaled = p1.h.clone();
    polar_blas::scale(5.0, h_scaled.as_mut());
    assert!(agree(&h_scaled, &p5.h) < 1e-10);
}

#[test]
fn mixed_precision_pipeline() {
    let (a, _) = generate::<f64>(&MatrixSpec::well_conditioned(30, 51));
    let (pd, steps) = polar::qdwh::qdwh_mixed(&a, &QdwhOptions::default()).unwrap();
    assert!(orthogonality_error(&pd.u) < 1e-13);
    assert!(steps >= 1);
}

#[test]
fn qdwh_eig_vs_h_matrix() {
    // eigendecompose the PSD polar factor with the QDWH spectral D&C
    let (a, sigma) = generate::<f64>(&MatrixSpec {
        m: 48,
        n: 48,
        cond: 1e4,
        distribution: SigmaDistribution::Geometric,
        seed: 61,
    });
    let pd = qdwh(&a, &QdwhOptions::default()).unwrap();
    let e = polar::qdwh::qdwh_eig(&pd.h, &QdwhOptions::default()).unwrap();
    for (l, s) in e.values.iter().zip(&sigma) {
        assert!((l - s).abs() < 1e-9 * (1.0 + s), "{l} vs {s}");
    }
}
