//! Property-based tests of the polar decomposition contract over random
//! shapes, spectra, and scalar types.

use polar::prelude::*;
use polar::qdwh::orthogonality_error;
use proptest::prelude::*;

fn spec_strategy() -> impl Strategy<Value = MatrixSpec> {
    (8usize..40, 0usize..16, 1.0f64..12.0, 0u64..1000, 0usize..3).prop_map(
        |(n, extra_rows, log_cond, seed, dist)| MatrixSpec {
            m: n + extra_rows,
            n,
            cond: 10f64.powf(log_cond),
            distribution: match dist {
                0 => SigmaDistribution::Geometric,
                1 => SigmaDistribution::Arithmetic,
                _ => SigmaDistribution::Random,
            },
            seed,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn polar_contract_f64(spec in spec_strategy()) {
        let (a, _) = generate::<f64>(&spec);
        let pd = qdwh(&a, &QdwhOptions::default()).unwrap();
        // orthonormal columns
        prop_assert!(orthogonality_error(&pd.u) < 1e-11);
        // reconstruction
        prop_assert!(pd.backward_error(&a) < 1e-11);
        // Hermitian H
        for j in 0..spec.n {
            for i in 0..spec.n {
                prop_assert!((pd.h[(i, j)] - pd.h[(j, i)]).abs() < 1e-10);
            }
        }
        // iteration bound: theory says <= 6 at double precision, allow +1
        // slack for estimator clamping on extreme random spectra
        prop_assert!(pd.info.iterations <= 7, "{} iterations", pd.info.iterations);
    }

    #[test]
    fn polar_contract_complex(seed in 0u64..500, n in 8usize..28) {
        let spec = MatrixSpec {
            m: n,
            n,
            cond: 1e6,
            distribution: SigmaDistribution::Geometric,
            seed,
        };
        let (a, _) = generate::<Complex64>(&spec);
        let pd = qdwh(&a, &QdwhOptions::default()).unwrap();
        prop_assert!(orthogonality_error(&pd.u) < 1e-11);
        prop_assert!(pd.backward_error(&a) < 1e-11);
    }

    #[test]
    fn h_trace_equals_nuclear_norm(seed in 0u64..300) {
        // trace(H) = sum of singular values of A
        let spec = MatrixSpec {
            m: 24,
            n: 24,
            cond: 1e3,
            distribution: SigmaDistribution::Geometric,
            seed,
        };
        let (a, sigma) = generate::<f64>(&spec);
        let pd = qdwh(&a, &QdwhOptions::default()).unwrap();
        let trace: f64 = (0..24).map(|i| pd.h[(i, i)]).sum();
        let nuclear: f64 = sigma.iter().sum();
        prop_assert!((trace - nuclear).abs() < 1e-10 * (1.0 + nuclear));
    }

    #[test]
    fn idempotence_on_unitary_input(seed in 0u64..300) {
        // polar factor of an orthonormal matrix is itself; H = I
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let n = 16;
        let mut rng = StdRng::seed_from_u64(seed);
        let q = polar::gen::random_orthonormal::<f64>(n, n, &mut rng);
        let pd = qdwh(&q, &QdwhOptions::default()).unwrap();
        for j in 0..n {
            for i in 0..n {
                let expect_u = q[(i, j)];
                prop_assert!((pd.u[(i, j)] - expect_u).abs() < 1e-11);
                let expect_h = if i == j { 1.0 } else { 0.0 };
                prop_assert!((pd.h[(i, j)] - expect_h).abs() < 1e-11);
            }
        }
    }

    #[test]
    fn qdwh_svd_spectrum_sorted_nonnegative(seed in 0u64..200) {
        let spec = MatrixSpec {
            m: 30,
            n: 18,
            cond: 1e5,
            distribution: SigmaDistribution::Random,
            seed,
        };
        let (a, _) = generate::<f64>(&spec);
        let svd = polar::qdwh::qdwh_svd(&a, &QdwhOptions::default()).unwrap();
        for w in svd.sigma.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
        prop_assert!(svd.sigma.iter().all(|&s| s >= 0.0));
    }
}
