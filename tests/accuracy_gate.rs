//! Paper-parity accuracy at the ill-conditioned end of the sweep, plus
//! bitwise reproducibility of the deterministic replay mode.
//!
//! These are the Fig. 1 claims the CI gate protects: backward error,
//! orthogonality, and the Hermitian/PSD quality of H all stay at machine
//! precision even at cond 1e13 on tall rectangular inputs.

use polar::prelude::*;
use polar::qdwh::{hermitian_deviation, orthogonality_error, psd_deviation};
use polar_verify::{run_case, CaseSpec, SolverPath};

const RECT_N: usize = 48;
const RECT_M: usize = 3 * RECT_N;

fn rect_spec(cond: f64, seed: u64) -> MatrixSpec {
    MatrixSpec { m: RECT_M, n: RECT_N, cond, distribution: SigmaDistribution::Geometric, seed }
}

#[test]
fn ill_conditioned_rectangular_metrics_f64() {
    for (cond, seed) in [(1e10, 71u64), (1e13, 72)] {
        let (a, _) = generate::<f64>(&rect_spec(cond, seed));
        let pd = qdwh(&a, &QdwhOptions::default()).unwrap();
        // the three paper metrics are cond-independent (backward stability)
        assert!(pd.backward_error(&a) < 1e-13, "backward error at cond {cond:e}");
        assert!(orthogonality_error(&pd.u) < 1e-13, "orthogonality at cond {cond:e}");
        assert!(hermitian_deviation(&pd.h) < 1e-13, "H symmetry at cond {cond:e}");
        assert!(psd_deviation(&pd.h).unwrap() < 1e-13, "H PSD deviation at cond {cond:e}");
    }
}

#[test]
fn ill_conditioned_rectangular_metrics_c64() {
    let (a, _) = generate::<Complex64>(&rect_spec(1e13, 73));
    let pd = qdwh(&a, &QdwhOptions::default()).unwrap();
    assert!(pd.backward_error(&a) < 1e-13);
    assert!(orthogonality_error(&pd.u) < 1e-13);
    assert!(hermitian_deviation(&pd.h) < 1e-13);
    assert!(psd_deviation(&pd.h).unwrap() < 1e-13);
}

#[test]
fn gate_metrics_match_direct_solve_at_cond_1e13() {
    // the verify harness must measure the same decomposition the public
    // API produces — no drift between the gate and the library
    let spec = CaseSpec {
        type_tag: "d",
        solver: SolverPath::Qdwh,
        m: RECT_M,
        n: RECT_N,
        cond: 1e13,
        seed: 74,
    };
    let result = run_case(&spec).unwrap();
    let (a, _) = generate::<f64>(&spec.matrix_spec());
    let pd = qdwh(&a, &QdwhOptions::default()).unwrap();
    assert_eq!(result.metrics.backward, pd.backward_error(&a));
    assert_eq!(result.metrics.orthogonality, orthogonality_error(&pd.u));
    assert_eq!(result.iterations, pd.info.iterations);
}

#[test]
fn deterministic_replay_is_bitwise_identical() {
    // Engage replay mode before any pool use in this test. If another
    // test in this binary already spun up the global pool, the property
    // still holds: within one process the worker count is fixed, so the
    // gemm fork tree — and therefore every floating-point reduction
    // order — is identical between the two solves.
    std::env::set_var("POLAR_DETERMINISTIC", "1");
    std::env::set_var("POLAR_SEED", "42");
    let spec = rect_spec(1e10, 75);
    let (a, _) = generate::<f64>(&spec);
    let first = qdwh(&a, &QdwhOptions::default()).unwrap();
    let second = qdwh(&a, &QdwhOptions::default()).unwrap();
    assert_eq!(first.u.as_slice(), second.u.as_slice(), "U must match bit-for-bit");
    assert_eq!(first.h.as_slice(), second.h.as_slice(), "H must match bit-for-bit");
    assert_eq!(first.info.iterations, second.info.iterations);

    // complex path too: reduction order covers both components
    let (c, _) = generate::<Complex64>(&spec);
    let c1 = qdwh(&c, &QdwhOptions::default()).unwrap();
    let c2 = qdwh(&c, &QdwhOptions::default()).unwrap();
    assert_eq!(c1.u.as_slice(), c2.u.as_slice());
    assert_eq!(c1.h.as_slice(), c2.h.as_slice());
}
