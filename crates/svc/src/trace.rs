//! Per-job span recording, exported through the runtime's Chrome-trace
//! writer.
//!
//! Service job lifetimes reuse [`polar_runtime::TraceEvent`] — the same
//! record the schedule simulator emits — so a service trace opens in
//! `chrome://tracing`/Perfetto with one row per worker (`pid` = worker,
//! `tid` = batch lane) exactly like a simulated kernel timeline. Spans are
//! measured from the process-wide [`polar_obs::epoch`] — the same zero the
//! solver's kernel spans use — so a job trace and a solver trace
//! concatenate with aligned clocks instead of each starting at its own
//! arbitrary zero.

use parking_lot::Mutex;
use polar_runtime::{write_chrome_trace, KernelKind, TraceEvent};
use std::time::Instant;

/// Collects job spans; one per service, shared by all workers.
pub struct SpanLog {
    epoch: Instant,
    events: Mutex<Vec<TraceEvent>>,
}

impl SpanLog {
    pub fn new() -> Self {
        SpanLog { epoch: polar_obs::epoch(), events: Mutex::new(Vec::new()) }
    }

    /// The instant job spans are measured from: the process-wide
    /// [`polar_obs::epoch`], shared with the solver's kernel spans.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Record one executed span. `lane` distinguishes jobs a worker ran
    /// concurrently out of one batch.
    pub fn record(&self, job_id: u64, worker: usize, lane: usize, start: Instant, end: Instant) {
        self.record_labeled(job_id, worker, lane, start, end, None);
    }

    /// [`SpanLog::record`] with an explicit span name (used for fused
    /// whole-batch spans, which cover several jobs at once).
    pub fn record_labeled(
        &self,
        job_id: u64,
        worker: usize,
        lane: usize,
        start: Instant,
        end: Instant,
        label: Option<&'static str>,
    ) {
        let ev = TraceEvent {
            task: job_id as usize,
            rank: worker,
            slot: lane,
            start: start.duration_since(self.epoch).as_secs_f64(),
            end: end.duration_since(self.epoch).as_secs_f64(),
            kind: KernelKind::Job,
            label,
            args: None,
        };
        self.events.lock().push(ev);
    }

    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all spans recorded so far.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().clone()
    }

    /// Serialize the spans as Chrome tracing JSON.
    pub fn write_chrome_trace<W: std::io::Write>(&self, w: W) -> std::io::Result<()> {
        let events = self.events();
        write_chrome_trace(&events, w)
    }
}

impl Default for SpanLog {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn spans_export_as_chrome_trace() {
        let log = SpanLog::new();
        let t0 = log.epoch();
        log.record(1, 0, 0, t0, t0 + Duration::from_millis(3));
        log.record(2, 1, 0, t0 + Duration::from_millis(1), t0 + Duration::from_millis(2));
        assert_eq!(log.len(), 2);

        let mut buf = Vec::new();
        log.write_chrome_trace(&mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.trim_start().starts_with('['));
        assert!(s.trim_end().ends_with(']'));
        assert_eq!(s.matches("\"ph\": \"X\"").count(), 2);
        assert!(s.contains("Job#1"), "{s}");
        assert!(s.contains("\"pid\": 1"));
    }

    #[test]
    fn epoch_is_the_process_wide_obs_epoch() {
        // two logs created at different times still share one zero, and
        // that zero is the solver spans' zero — traces concatenate aligned
        let a = SpanLog::new();
        std::thread::sleep(Duration::from_millis(1));
        let b = SpanLog::new();
        assert_eq!(a.epoch(), b.epoch());
        assert_eq!(a.epoch(), polar_obs::epoch());
    }

    #[test]
    fn span_times_are_relative_to_epoch() {
        let log = SpanLog::new();
        let t0 = log.epoch();
        log.record(7, 2, 1, t0 + Duration::from_millis(10), t0 + Duration::from_millis(15));
        let ev = &log.events()[0];
        assert!((ev.start - 0.010).abs() < 1e-9);
        assert!((ev.end - 0.015).abs() < 1e-9);
        assert_eq!(ev.rank, 2);
        assert_eq!(ev.slot, 1);
    }
}
