//! Cooperative cancellation tokens.
//!
//! QDWH cannot stop mid-iteration (the state is a half-applied
//! factorization), so cancellation is cooperative: the worker installs a
//! progress hook that consults the token between Halley iterations and
//! aborts the run at the next boundary.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Shared cancellation flag for one job. Cloning shares the flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent; takes effect at the next
    /// iteration boundary (or before the job starts, if still queued).
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_the_flag() {
        let t = CancelToken::new();
        let t2 = t.clone();
        assert!(!t2.is_cancelled());
        t.cancel();
        assert!(t2.is_cancelled());
        t.cancel(); // idempotent
        assert!(t.is_cancelled());
    }
}
