//! Priority- and size-aware dispatch.
//!
//! The dispatcher pulls admitted jobs into a priority heap ordered by
//! (priority desc, estimated cost asc, admission order) — urgent work
//! first, and shortest-job-first among equals to keep mean latency down.
//! Cost comes from the paper's §4 flop model, so "size" means modeled
//! work, not just dimension.
//!
//! Jobs whose estimate falls below [`small job threshold`](crate::service::ServiceConfig::small_job_flops)
//! are coalesced into batches handed to a single worker (which fans out
//! with `rayon` internally); large jobs are dispatched alone. This
//! mirrors how SLATE amortizes per-task overhead by batching small tile
//! kernels while letting big trailing updates own their stream.

use crate::job::JobKind;
use crate::metrics::MetricsRegistry;
use crate::queue::AdmittedJob;
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use polar_sim::{qdwh_flops, ILL_CONDITIONED_PROFILE};
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Estimated real flops for a job, used for ordering and batching.
///
/// QDWH is costed at the paper's worst-case iteration profile (3 QR + 3
/// Cholesky) — a deliberate overestimate for well-conditioned inputs so
/// borderline jobs are routed conservatively. QDWH-SVD adds the
/// Hermitian EVD + GEMM stages (~`12 n^3`); the one-sided Jacobi
/// baseline is costed at its typical `O(n^3)` sweep count.
pub fn estimate_flops(kind: JobKind, m: usize, n: usize) -> f64 {
    let (it_qr, it_chol) = ILL_CONDITIONED_PROFILE;
    let base = qdwh_flops(n, it_qr, it_chol);
    let n3 = (n as f64).powi(3);
    // rectangular inputs pay the initial QR reduction on top
    let rect = if m > n { 2.0 * (m as f64) * (n as f64) * (n as f64) } else { 0.0 };
    match kind {
        // the fused engine saves wall time, not modeled flops: cost a
        // Batched job exactly like a scalar QDWH of the same shape
        JobKind::Qdwh | JobKind::Batched => base + rect,
        JobKind::QdwhSvd => base + rect + 12.0 * n3,
        JobKind::SvdPolar => 30.0 * n3 + rect,
        // Zolo-PD trades flops for iterations: cost the worst-case r = 8
        // two-iteration profile (r stacked QR+orgqr pairs at 10/3 n^3
        // each plus the rank-n accumulation, + 2 n^3 for the final H)
        JobKind::Zolo => 2.0 * 8.0 * (10.0 / 3.0 * 2.0 + 2.0) * n3 + 2.0 * n3 + rect,
    }
}

/// A job ready to execute.
pub(crate) struct RunnableJob {
    pub job: AdmittedJob,
}

/// What a worker receives: one large job, a coalesced batch of small
/// ones (each solved independently), or a shape-homogeneous fused group
/// for the whole-batch engine.
pub(crate) enum WorkItem {
    Single(Box<RunnableJob>),
    Batch(Vec<RunnableJob>),
    /// Same-shape [`crate::job::JobKind::Batched`] jobs, solved as one
    /// `polar_batch::qdwh_batched` call.
    Fused(Vec<RunnableJob>),
}

struct Queued {
    seq: u64,
    priority: u8,
    cost: f64,
    job: AdmittedJob,
}

impl PartialEq for Queued {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for Queued {}
impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Queued {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap: greater = dispatched first.
        self.priority
            .cmp(&other.priority)
            .then_with(|| other.cost.total_cmp(&self.cost))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

pub(crate) struct DispatcherConfig {
    pub batch_max: usize,
    pub small_job_flops: f64,
    /// How long an under-full same-shape `Batched` group may wait for
    /// more members before dispatching anyway. `None` (the default)
    /// dispatches immediately, preserving latency-first behavior; a
    /// bounded window trades that first job's latency for fuller fused
    /// batches (higher `batch_fill_ratio`).
    pub batch_gather_window: Option<Duration>,
}

/// Dispatcher thread body: runs until the admission channel disconnects
/// and the heap drains, then closes the work channel (stopping workers).
pub(crate) fn run_dispatcher(
    admission: Receiver<AdmittedJob>,
    work: Sender<WorkItem>,
    cfg: DispatcherConfig,
    metrics: Arc<MetricsRegistry>,
) {
    let mut heap: BinaryHeap<Queued> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut disconnected = false;
    // per-shape deadline for the bounded batch-gathering window: set when
    // an under-full Batched group is first held, cleared when it ships
    let mut gather: HashMap<(usize, usize), Instant> = HashMap::new();

    let push = |heap: &mut BinaryHeap<Queued>, seq: &mut u64, job: AdmittedJob| {
        let spec = &job.spec;
        let cost = estimate_flops(spec.kind, spec.matrix.nrows(), spec.matrix.ncols());
        *seq += 1;
        heap.push(Queued { seq: *seq, priority: spec.priority, cost, job });
    };

    loop {
        // pump admissions: block briefly when idle, drain greedily after
        if !disconnected {
            if heap.is_empty() {
                match admission.recv_timeout(Duration::from_millis(5)) {
                    Ok(job) => push(&mut heap, &mut seq, job),
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => disconnected = true,
                }
            }
            loop {
                match admission.try_recv() {
                    Ok(job) => push(&mut heap, &mut seq, job),
                    Err(crossbeam::channel::TryRecvError::Empty) => break,
                    Err(crossbeam::channel::TryRecvError::Disconnected) => {
                        disconnected = true;
                        break;
                    }
                }
            }
        }

        if heap.is_empty() {
            if disconnected {
                break; // nothing queued, nothing can arrive: stop workers
            }
            continue;
        }

        // form the next work item: fuse same-shape Batched jobs, batch
        // small jobs, isolate large ones
        let top = heap.pop().unwrap();
        let item = if top.job.spec.kind == JobKind::Batched {
            let batch_max = cfg.batch_max.max(1);
            let key = (top.job.spec.matrix.nrows(), top.job.spec.matrix.ncols());
            if let Some(window) = cfg.batch_gather_window {
                // count queued same-shape members (top included); an
                // under-full group waits until its shape's deadline for
                // late arrivals instead of shipping a fragment
                let queued = 1 + heap
                    .iter()
                    .filter(|q| {
                        q.job.spec.kind == JobKind::Batched
                            && (q.job.spec.matrix.nrows(), q.job.spec.matrix.ncols()) == key
                    })
                    .count();
                if queued < batch_max && !disconnected {
                    let now = Instant::now();
                    let deadline = *gather.entry(key).or_insert(now + window);
                    if now < deadline {
                        heap.push(top);
                        // sleep on the admission channel so the hold
                        // doesn't busy-spin; new arrivals re-enter the
                        // loop immediately
                        let wait = (deadline - now).min(Duration::from_millis(1));
                        match admission.recv_timeout(wait) {
                            Ok(job) => push(&mut heap, &mut seq, job),
                            Err(RecvTimeoutError::Timeout) => {}
                            Err(RecvTimeoutError::Disconnected) => disconnected = true,
                        }
                        continue;
                    }
                }
                gather.remove(&key);
            }
            let batch = collect_fused(&mut heap, top, batch_max);
            MetricsRegistry::inc(&metrics.fused_batches);
            metrics.batch_size.record_ns(batch.len() as u64);
            metrics.fused_jobs.fetch_add(batch.len() as u64, std::sync::atomic::Ordering::Relaxed);
            metrics
                .fused_capacity
                .fetch_add(batch_max as u64, std::sync::atomic::Ordering::Relaxed);
            metrics.queue_depth.fetch_sub(batch.len() as i64, std::sync::atomic::Ordering::Relaxed);
            WorkItem::Fused(batch)
        } else if top.cost <= cfg.small_job_flops && cfg.batch_max > 1 {
            let mut batch = vec![RunnableJob { job: top.job }];
            while batch.len() < cfg.batch_max {
                match heap.peek() {
                    Some(next) if next.cost <= cfg.small_job_flops => {
                        let q = heap.pop().unwrap();
                        batch.push(RunnableJob { job: q.job });
                    }
                    _ => break,
                }
            }
            if batch.len() > 1 {
                MetricsRegistry::inc(&metrics.batches);
            }
            metrics.queue_depth.fetch_sub(batch.len() as i64, std::sync::atomic::Ordering::Relaxed);
            WorkItem::Batch(batch)
        } else {
            metrics.queue_depth.fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
            WorkItem::Single(Box::new(RunnableJob { job: top.job }))
        };

        if work.send(item).is_err() {
            break; // workers gone: shutting down
        }
    }
}

/// Pull every queued [`JobKind::Batched`] job sharing `top`'s shape key
/// (`(rows, cols)`; the service scalar is `f64`, so shape is the whole
/// key) out of the heap, up to `batch_max`. Coalescing deliberately
/// ignores priority among same-shape batched jobs — riding an
/// already-dispatched fused batch is strictly cheaper than waiting for a
/// later slot. Everything else is pushed back untouched.
fn collect_fused(heap: &mut BinaryHeap<Queued>, top: Queued, batch_max: usize) -> Vec<RunnableJob> {
    let key = (top.job.spec.matrix.nrows(), top.job.spec.matrix.ncols());
    let mut batch = vec![RunnableJob { job: top.job }];
    let mut rest = Vec::new();
    while batch.len() < batch_max {
        match heap.pop() {
            Some(q)
                if q.job.spec.kind == JobKind::Batched
                    && (q.job.spec.matrix.nrows(), q.job.spec.matrix.ncols()) == key =>
            {
                batch.push(RunnableJob { job: q.job });
            }
            Some(q) => rest.push(q),
            None => break,
        }
    }
    for q in rest {
        heap.push(q);
    }
    batch
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_model_orders_by_size_and_kind() {
        let small = estimate_flops(JobKind::Qdwh, 32, 32);
        let big = estimate_flops(JobKind::Qdwh, 256, 256);
        assert!(big > small * 100.0);
        // SVD costs strictly more than PD at the same size
        assert!(estimate_flops(JobKind::QdwhSvd, 64, 64) > estimate_flops(JobKind::Qdwh, 64, 64));
        // rectangular pays more than square at equal n
        assert!(estimate_flops(JobKind::Qdwh, 128, 64) > estimate_flops(JobKind::Qdwh, 64, 64));
    }

    #[test]
    fn heap_order_priority_then_cost_then_fifo() {
        use crate::cancel::CancelToken;
        use crate::job::{JobId, JobSpec};
        use polar_matrix::Matrix;
        use std::time::Instant;

        let mk = |seq: u64, priority: u8, cost: f64| {
            let (result_tx, _rx) = crossbeam::channel::bounded(1);
            Queued {
                seq,
                priority,
                cost,
                job: AdmittedJob {
                    id: JobId(seq),
                    spec: JobSpec::qdwh(Matrix::<f64>::zeros(1, 1)),
                    cancel: CancelToken::new(),
                    submitted: Instant::now(),
                    result_tx,
                },
            }
        };
        let mut heap = BinaryHeap::new();
        heap.push(mk(1, 0, 10.0));
        heap.push(mk(2, 5, 100.0)); // urgent, expensive
        heap.push(mk(3, 5, 1.0)); // urgent, cheap -> first among urgent
        heap.push(mk(4, 0, 10.0)); // same as seq 1 -> after it (FIFO)
        let order: Vec<u64> = std::iter::from_fn(|| heap.pop().map(|q| q.seq)).collect();
        assert_eq!(order, vec![3, 2, 1, 4]);
    }
}
