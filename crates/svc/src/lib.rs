//! # polar-svc — embeddable job service for polar-decomposition workloads
//!
//! The paper's benchmarks run one decomposition at a time on a dedicated
//! allocation. Production deployments of the same kernels (block
//! orthogonalization inside electronic-structure codes, batched subspace
//! projection) instead see *streams* of decomposition requests of mixed
//! sizes and urgencies. This crate wraps the workspace's QDWH solvers in
//! a small, embeddable job service:
//!
//! * **Admission** ([`queue`]): a bounded queue with backpressure.
//!   [`PolarService::try_submit`] fails fast with
//!   [`SubmitError::QueueFull`]; [`PolarService::submit`] blocks up to a
//!   deadline.
//! * **Dispatch** ([`dispatch`]): priority- plus size-aware ordering.
//!   Job cost is estimated with the paper's §4 flop formula
//!   ([`polar_sim::qdwh_flops`]); small jobs are batched onto one worker
//!   (amortizing scheduling overhead the way SLATE batches tile
//!   kernels), large jobs get a worker to themselves and fan out
//!   internally with `rayon`.
//! * **Execution** ([`worker`]): per-job timeout and cooperative
//!   cancellation, both enforced *between* QDWH iterations through the
//!   [`polar_qdwh::QdwhOptions::progress`] hook; transient failures
//!   (classified by [`polar_qdwh::QdwhError::class`]) retry with
//!   exponential backoff, permanent ones reject immediately.
//! * **Telemetry** ([`metrics`], [`trace`]): counters, gauges and
//!   log-scale latency histograms with JSON/CSV export, plus per-job
//!   spans exported through the runtime's Chrome-trace writer so job
//!   lifetimes render exactly like simulated kernel timelines.
//! * **Lifecycle**: [`PolarService::drain`] completes in-flight work and
//!   rejects new submissions; [`PolarService::shutdown`] joins every
//!   thread.
//!
//! ```
//! use polar_svc::{JobSpec, PolarService, ServiceConfig};
//! use polar_gen::{generate, MatrixSpec};
//!
//! let svc = PolarService::start(ServiceConfig::default());
//! let (a, _) = generate::<f64>(&MatrixSpec::well_conditioned(32, 7));
//! let handle = svc.try_submit(JobSpec::qdwh(a)).unwrap();
//! let result = handle.wait();
//! assert!(result.output.is_ok());
//! svc.shutdown();
//! ```

pub mod cancel;
pub mod dispatch;
pub mod fault;
pub mod job;
pub mod metrics;
pub mod queue;
pub mod service;
pub mod trace;
pub mod worker;

pub use cancel::CancelToken;
pub use fault::FaultPlan;
pub use job::{JobError, JobHandle, JobId, JobKind, JobOutput, JobResult, JobSpec};
pub use metrics::{Histogram, MetricsRegistry, MetricsSnapshot};
pub use queue::SubmitError;
pub use service::{PolarService, ServiceConfig};
