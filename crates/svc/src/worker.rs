//! Worker pool: executes dispatched jobs with timeout, cancellation,
//! fault injection, and retry-with-backoff.
//!
//! Workers share one MPMC work channel; each loops `recv -> execute`
//! until the dispatcher closes the channel. A [`WorkItem::Batch`] is fan
//! out inside the worker with `rayon::join` (recursive halving), so a
//! batch of small jobs fills the worker's cores without occupying more
//! than one dispatch slot.

use crate::dispatch::{RunnableJob, WorkItem};
use crate::fault::FaultPlan;
use crate::job::{JobError, JobOutput, JobResult, JobSpec};
use crate::metrics::MetricsRegistry;
use crate::trace::SpanLog;
use crossbeam::channel::Receiver;
use polar_batch::{qdwh_batched, BatchEntry, BatchOptions, CondestCache};
use polar_lapack::FailureClass;
use polar_qdwh::{
    qdwh, qdwh_svd, svd_based_polar, zolo_pd, IterationDecision, PolarDecomposition, ProgressHook,
    QdwhError,
};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Execution-time configuration shared by all workers.
pub(crate) struct ExecContext {
    pub metrics: Arc<MetricsRegistry>,
    pub spans: Arc<SpanLog>,
    pub fault: FaultPlan,
    pub default_timeout: Option<Duration>,
    /// Retries allowed *after* the first attempt for transient failures.
    pub max_retries: u32,
    /// First-retry backoff; doubles per subsequent retry.
    pub retry_backoff: Duration,
    /// Service-wide condition-estimate cache fed to every fused batch.
    pub condest_cache: Arc<CondestCache>,
}

/// Worker thread body.
pub(crate) fn run_worker(worker_id: usize, work: Receiver<WorkItem>, ctx: Arc<ExecContext>) {
    while let Ok(item) = work.recv() {
        match item {
            WorkItem::Single(rj) => execute_job(*rj, worker_id, 0, &ctx),
            WorkItem::Batch(batch) => run_batch(batch, worker_id, &ctx),
            WorkItem::Fused(batch) => run_fused(batch, worker_id, &ctx),
        }
    }
}

/// Recursive halving over the batch with `rayon::join`: lanes run
/// concurrently when threads are available, degrading gracefully to
/// sequential execution under load.
fn run_batch(batch: Vec<RunnableJob>, worker_id: usize, ctx: &Arc<ExecContext>) {
    let indexed: Vec<(usize, RunnableJob)> = batch.into_iter().enumerate().collect();
    run_batch_rec(indexed, worker_id, ctx);
}

fn run_batch_rec(mut jobs: Vec<(usize, RunnableJob)>, worker_id: usize, ctx: &Arc<ExecContext>) {
    match jobs.len() {
        0 => {}
        1 => {
            let (lane, rj) = jobs.pop().unwrap();
            execute_job(rj, worker_id, lane, ctx);
        }
        n => {
            let rest = jobs.split_off(n / 2);
            let (a, b) = (jobs, rest);
            rayon::join(|| run_batch_rec(a, worker_id, ctx), || run_batch_rec(b, worker_id, ctx));
        }
    }
}

/// Execute a shape-homogeneous group of [`crate::job::JobKind::Batched`]
/// jobs as one `qdwh_batched` call. Jobs that are already cancelled or
/// flagged by the fault injector take the scalar path (which owns those
/// semantics); if the fused engine rejects the group, every member falls
/// back to scalar execution, so per-job retry/timeout behavior is
/// preserved on failure.
fn run_fused(batch: Vec<RunnableJob>, worker_id: usize, ctx: &Arc<ExecContext>) {
    let mut fused: Vec<RunnableJob> = Vec::new();
    for rj in batch {
        if rj.job.cancel.is_cancelled() || ctx.fault.should_fail(rj.job.id.0, 1) {
            execute_job(rj, worker_id, 0, ctx);
        } else {
            fused.push(rj);
        }
    }
    if fused.is_empty() {
        return;
    }

    let metrics = &ctx.metrics;
    let lanes = fused.len();
    metrics.in_flight.fetch_add(lanes as i64, Ordering::Relaxed);
    let start = Instant::now();

    let mut entries: Vec<BatchEntry<f64>> = fused
        .iter()
        .map(|rj| {
            let a = rj.job.spec.matrix.clone();
            match rj.job.spec.cond_hint {
                Some(c) => BatchEntry::with_cond_hint(a, c),
                None => BatchEntry::new(a),
            }
        })
        .collect();
    // one option set drives the whole group; the first member's solver
    // knobs apply (the dispatcher only guarantees shape homogeneity)
    let opts = BatchOptions {
        qdwh: {
            let mut o = fused[0].job.spec.opts.clone();
            o.progress = None; // no between-iteration hook in fused mode
            o
        },
        condest_cache: Some(ctx.condest_cache.clone()),
        ..Default::default()
    };
    let result = qdwh_batched(&mut entries, &opts);
    let end = Instant::now();
    let run = end.duration_since(start);
    metrics.in_flight.fetch_sub(lanes as i64, Ordering::Relaxed);

    match result {
        Ok(infos) => {
            // one whole-batch span (slot 0), then a lane span per member
            ctx.spans.record_labeled(
                fused[0].job.id.0,
                worker_id,
                0,
                start,
                end,
                Some("fused_batch"),
            );
            for (lane, ((rj, entry), info)) in fused.into_iter().zip(entries).zip(infos).enumerate()
            {
                let job = rj.job;
                let wait = start.duration_since(job.submitted);
                metrics.wait.record(wait);
                metrics.run.record(run);
                metrics.health.record(
                    polar_obs::now_ns(),
                    wait.as_nanos() as u64,
                    run.as_nanos() as u64,
                );
                MetricsRegistry::inc(&metrics.completed);
                ctx.spans.record(job.id.0, worker_id, lane + 1, start, end);
                let pd = PolarDecomposition { u: entry.u, h: entry.h, info };
                let _ = job.result_tx.send(JobResult {
                    id: job.id,
                    attempts: 1,
                    wait,
                    run,
                    output: Ok(JobOutput::Polar(pd)),
                });
            }
        }
        Err(e) => {
            polar_obs::log!(
                polar_obs::LogLevel::Error,
                "fused batch of {lanes} rejected ({e}); falling back to scalar jobs"
            );
            for rj in fused {
                execute_job(rj, worker_id, 0, ctx);
            }
        }
    }
}

fn solve(
    spec: &JobSpec,
    hook: ProgressHook,
    metrics: &MetricsRegistry,
) -> Result<JobOutput, QdwhError> {
    let mut opts = spec.opts.clone();
    opts.progress = Some(hook);
    match spec.kind {
        // a Batched job on the scalar path (fallback, cancellation,
        // fault injection) is just a QDWH solve
        crate::job::JobKind::Qdwh | crate::job::JobKind::Batched => {
            qdwh(&spec.matrix, &opts).map(JobOutput::Polar)
        }
        crate::job::JobKind::QdwhSvd => qdwh_svd(&spec.matrix, &opts).map(JobOutput::Svd),
        // the Jacobi baseline has no iteration hook; cancellation and
        // deadline are checked between attempts only
        crate::job::JobKind::SvdPolar => svd_based_polar(&spec.matrix).map(JobOutput::Polar),
        // `zolo.progress` is deliberately left as the submitter set it
        // (normally `None`): installing the service hook would force the
        // serial fallback and forfeit the fused r-way graph. See the
        // [`crate::job::JobKind::Zolo`] cancellation caveat.
        crate::job::JobKind::Zolo => zolo_pd(&spec.matrix, &spec.zolo).map(|out| {
            MetricsRegistry::inc(&metrics.zolo_jobs);
            metrics.zolo_qr_total.fetch_add(out.qr_factorizations as u64, Ordering::Relaxed);
            JobOutput::Polar(out.pd)
        }),
    }
}

/// Synthetic transient failure used by the injector (the shape a
/// preempted accelerator or exhausted budget produces).
fn injected_error() -> QdwhError {
    QdwhError::NoConvergence { iterations: 0 }
}

fn execute_job(rj: RunnableJob, worker_id: usize, lane: usize, ctx: &Arc<ExecContext>) {
    let job = rj.job;
    let metrics = &ctx.metrics;

    // cancelled while still queued: never starts
    if job.cancel.is_cancelled() {
        MetricsRegistry::inc(&metrics.cancelled);
        let _ = job.result_tx.send(JobResult {
            id: job.id,
            attempts: 0,
            wait: job.submitted.elapsed(),
            run: Duration::ZERO,
            output: Err(JobError::Cancelled),
        });
        return;
    }

    metrics.in_flight.fetch_add(1, Ordering::Relaxed);
    let budget = job.spec.timeout.or(ctx.default_timeout);
    let start = Instant::now();
    let wait = start.duration_since(job.submitted);
    metrics.wait.record(wait);
    let deadline = budget.map(|b| start + b);

    let cancel = job.cancel.clone();
    let hook: ProgressHook = Arc::new(move |_progress| {
        if cancel.is_cancelled() {
            return IterationDecision::Cancel;
        }
        if let Some(d) = deadline {
            if Instant::now() >= d {
                return IterationDecision::Cancel;
            }
        }
        IterationDecision::Continue
    });

    let mut attempts = 0u32;
    let outcome: Result<JobOutput, JobError> = loop {
        attempts += 1;
        let result = if ctx.fault.should_fail(job.id.0, attempts) {
            MetricsRegistry::inc(&metrics.injected_faults);
            Err(injected_error())
        } else {
            solve(&job.spec, hook.clone(), metrics)
        };

        match result {
            Ok(out) => break Ok(out),
            Err(QdwhError::Cancelled { .. }) => {
                // the hook fired: token beats deadline for attribution
                if job.cancel.is_cancelled() {
                    break Err(JobError::Cancelled);
                }
                break Err(JobError::TimedOut { budget: budget.unwrap_or_default() });
            }
            Err(e) => {
                let retryable = e.class() == FailureClass::Transient
                    && attempts <= ctx.max_retries
                    && !job.cancel.is_cancelled()
                    && deadline.map(|d| Instant::now() < d).unwrap_or(true);
                if !retryable {
                    break Err(JobError::Failed { error: e, attempts });
                }
                MetricsRegistry::inc(&metrics.retries);
                // exponential backoff, capped by the remaining budget
                let mut pause = ctx.retry_backoff * 2u32.saturating_pow(attempts - 1);
                if let Some(d) = deadline {
                    pause = pause.min(d.saturating_duration_since(Instant::now()));
                }
                if !pause.is_zero() {
                    std::thread::sleep(pause);
                }
            }
        }
    };

    let end = Instant::now();
    let run = end.duration_since(start);
    metrics.run.record(run);
    metrics.health.record(polar_obs::now_ns(), wait.as_nanos() as u64, run.as_nanos() as u64);
    metrics.in_flight.fetch_sub(1, Ordering::Relaxed);
    ctx.spans.record(job.id.0, worker_id, lane, start, end);

    match &outcome {
        Ok(_) => MetricsRegistry::inc(&metrics.completed),
        Err(JobError::Cancelled) => MetricsRegistry::inc(&metrics.cancelled),
        Err(JobError::TimedOut { .. }) => MetricsRegistry::inc(&metrics.timed_out),
        Err(_) => MetricsRegistry::inc(&metrics.failed),
    }

    let _ = job.result_tx.send(JobResult { id: job.id, attempts, wait, run, output: outcome });
}
