//! Bounded admission queue with backpressure.
//!
//! Admission is a bounded crossbeam channel between clients and the
//! dispatcher. When the service falls behind, the channel fills and
//! clients feel it immediately: [`AdmissionQueue::try_submit`] rejects
//! with [`SubmitError::QueueFull`], [`AdmissionQueue::submit`] blocks up
//! to a caller-chosen deadline and then rejects. Load is shed at the
//! door instead of accumulating unboundedly — the service-level analogue
//! of SLATE's bounded lookahead window.

use crate::cancel::CancelToken;
use crate::job::{JobHandle, JobId, JobResult, JobSpec};
use crate::metrics::MetricsRegistry;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a submission was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission queue is at capacity (after waiting out the
    /// deadline, for the blocking variant). Try again later or shed load.
    QueueFull,
    /// The service is draining or stopped; no new work is accepted.
    Stopped,
    /// A batch submission mixed shapes: the fused engine packs entries
    /// into one contiguous panel, so every matrix in a batch must share
    /// `(rows, cols)`. Nothing was admitted.
    MixedShapes {
        /// Index of the first offending entry.
        index: usize,
        /// Shape of entry 0, `(rows, cols)`.
        expected: (usize, usize),
        /// Shape of the offending entry.
        got: (usize, usize),
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "admission queue full"),
            SubmitError::Stopped => write!(f, "service is draining or stopped"),
            SubmitError::MixedShapes { index, expected, got } => write!(
                f,
                "batch entry {index} is {}x{} but entry 0 is {}x{}: fused batches must be \
                 shape-homogeneous",
                got.0, got.1, expected.0, expected.1
            ),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A job after admission, en route to the dispatcher.
pub(crate) struct AdmittedJob {
    pub id: JobId,
    pub spec: JobSpec,
    pub cancel: CancelToken,
    pub submitted: Instant,
    pub result_tx: Sender<JobResult>,
}

/// Client-facing side of the admission channel.
pub(crate) struct AdmissionQueue {
    tx: Sender<AdmittedJob>,
    next_id: AtomicU64,
    accepting: Arc<AtomicBool>,
    metrics: Arc<MetricsRegistry>,
}

impl AdmissionQueue {
    /// Build the queue; the receiver goes to the dispatcher.
    pub fn new(
        capacity: usize,
        accepting: Arc<AtomicBool>,
        metrics: Arc<MetricsRegistry>,
    ) -> (Self, Receiver<AdmittedJob>) {
        let (tx, rx) = bounded(capacity.max(1));
        let q = AdmissionQueue { tx, next_id: AtomicU64::new(1), accepting, metrics };
        (q, rx)
    }

    fn admit(&self, spec: JobSpec) -> (AdmittedJob, JobHandle) {
        let id = JobId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let cancel = CancelToken::new();
        let (result_tx, result_rx) = bounded(1);
        let job =
            AdmittedJob { id, spec, cancel: cancel.clone(), submitted: Instant::now(), result_tx };
        let handle = JobHandle { id, cancel, result: result_rx };
        (job, handle)
    }

    /// Non-blocking admission: fails fast under backpressure.
    pub fn try_submit(&self, spec: JobSpec) -> Result<JobHandle, SubmitError> {
        if !self.accepting.load(Ordering::Acquire) {
            return Err(SubmitError::Stopped);
        }
        let (job, handle) = self.admit(spec);
        match self.tx.try_send(job) {
            Ok(()) => {
                MetricsRegistry::inc(&self.metrics.submitted);
                self.metrics.queue_depth.fetch_add(1, Ordering::Relaxed);
                Ok(handle)
            }
            Err(TrySendError::Full(_)) => {
                MetricsRegistry::inc(&self.metrics.rejected_full);
                Err(SubmitError::QueueFull)
            }
            Err(TrySendError::Disconnected(_)) => Err(SubmitError::Stopped),
        }
    }

    /// Blocking admission: waits up to `deadline` for queue space.
    pub fn submit(&self, spec: JobSpec, deadline: Duration) -> Result<JobHandle, SubmitError> {
        if !self.accepting.load(Ordering::Acquire) {
            return Err(SubmitError::Stopped);
        }
        let (job, handle) = self.admit(spec);
        match self.tx.send_timeout(job, deadline) {
            Ok(()) => {
                MetricsRegistry::inc(&self.metrics.submitted);
                self.metrics.queue_depth.fetch_add(1, Ordering::Relaxed);
                Ok(handle)
            }
            Err(crossbeam::channel::SendTimeoutError::Timeout(_)) => {
                MetricsRegistry::inc(&self.metrics.rejected_full);
                Err(SubmitError::QueueFull)
            }
            Err(crossbeam::channel::SendTimeoutError::Disconnected(_)) => Err(SubmitError::Stopped),
        }
    }
}
