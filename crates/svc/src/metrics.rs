//! Lock-free service telemetry: counters, gauges, log-scale histograms.
//!
//! The log2-bucketed [`Histogram`] lives in `polar-obs` (every layer of
//! the stack uses it); it is re-exported here so existing `polar_svc`
//! users keep compiling. Everything is atomics, so recording from workers
//! never contends with export.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

pub use polar_obs::{Histogram, HistogramSnapshot};

/// Jobs kept in the scheduler-health rolling window.
const HEALTH_WINDOW: usize = 256;

/// One completed job's timing, on the shared `polar_obs` clock.
#[derive(Debug, Clone, Copy)]
struct HealthSample {
    end_ns: u64,
    wait_ns: u64,
    run_ns: u64,
}

/// Rolling window of recent job timings: the service-side scheduler-health
/// view. Whereas the cumulative histograms never forget, this window
/// answers "how is the pool doing *right now*" — mean wait/run and worker
/// utilization over the last [`HEALTH_WINDOW`] jobs.
#[derive(Debug, Default)]
pub struct SchedulerHealth {
    ring: Mutex<VecDeque<HealthSample>>,
}

impl SchedulerHealth {
    /// Record one finished job (`end_ns` on the [`polar_obs::now_ns`]
    /// clock, so samples order consistently with solver spans).
    pub fn record(&self, end_ns: u64, wait_ns: u64, run_ns: u64) {
        let mut ring = self.ring.lock().unwrap();
        if ring.len() == HEALTH_WINDOW {
            ring.pop_front();
        }
        ring.push_back(HealthSample { end_ns, wait_ns, run_ns });
    }

    /// Summarize the current window given the worker count.
    pub fn snapshot(&self, workers: u64) -> SchedulerHealthSnapshot {
        let ring = self.ring.lock().unwrap();
        let jobs = ring.len() as u64;
        if jobs == 0 {
            return SchedulerHealthSnapshot::default();
        }
        let total_wait: u64 = ring.iter().map(|s| s.wait_ns).sum();
        let total_run: u64 = ring.iter().map(|s| s.run_ns).sum();
        // window span: earliest job start (end - run) to latest end
        let span_end = ring.iter().map(|s| s.end_ns).max().unwrap_or(0);
        let span_start = ring.iter().map(|s| s.end_ns.saturating_sub(s.run_ns)).min().unwrap_or(0);
        let span_ns = span_end.saturating_sub(span_start);
        let utilization = if span_ns == 0 || workers == 0 {
            0.0
        } else {
            (total_run as f64 / (span_ns as f64 * workers as f64)).min(1.0)
        };
        SchedulerHealthSnapshot {
            window_jobs: jobs,
            window_span_ns: span_ns,
            utilization,
            mean_wait_us: total_wait as f64 / jobs as f64 / 1e3,
            mean_run_us: total_run as f64 / jobs as f64 / 1e3,
        }
    }
}

/// Point-in-time view of the [`SchedulerHealth`] window.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SchedulerHealthSnapshot {
    /// Jobs currently in the window (saturates at the window size).
    pub window_jobs: u64,
    /// Wall span the window covers, ns.
    pub window_span_ns: u64,
    /// `sum(run) / (span * workers)`, clamped to 1.0 — fraction of worker
    /// capacity spent inside solves over the window.
    pub utilization: f64,
    pub mean_wait_us: f64,
    pub mean_run_us: f64,
}

/// All service counters, gauges, and histograms.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    // counters
    pub submitted: AtomicU64,
    pub rejected_full: AtomicU64,
    pub completed: AtomicU64,
    pub failed: AtomicU64,
    pub cancelled: AtomicU64,
    pub timed_out: AtomicU64,
    pub retries: AtomicU64,
    pub batches: AtomicU64,
    /// Shape-homogeneous groups dispatched to the fused batched engine
    /// (one per `WorkItem::Fused`, regardless of group size).
    pub fused_batches: AtomicU64,
    /// Jobs shipped inside fused groups (the numerator of
    /// `batch_fill_ratio`).
    pub fused_jobs: AtomicU64,
    /// Sum of `batch_max` over fused groups — the jobs those dispatch
    /// slots *could* have carried. `fused_jobs / fused_capacity` is the
    /// fill ratio the batch-gathering window exists to raise.
    pub fused_capacity: AtomicU64,
    /// Completed Zolo-PD jobs.
    pub zolo_jobs: AtomicU64,
    /// Total stacked-QR factorizations across completed Zolo jobs
    /// (`r × iterations` per job). Divided by `zolo_jobs × iterations`
    /// this is the per-term concurrency the fused r-way graph exposes.
    pub zolo_qr_total: AtomicU64,
    pub injected_faults: AtomicU64,
    // gauges
    pub queue_depth: AtomicI64,
    pub in_flight: AtomicI64,
    // histograms
    pub wait: Histogram,
    pub run: Histogram,
    /// Fused-batch size distribution. The log2 histogram is time-typed;
    /// sizes are recorded via `record_ns(len)`, so quantiles read back as
    /// "nanoseconds" whose numeric value is a job count.
    pub batch_size: Histogram,
    /// Dispatch worker count, set once at service start (0 = unknown);
    /// denominators for window utilization.
    pub workers: AtomicU64,
    /// Rolling-window scheduler health over recent jobs.
    pub health: SchedulerHealth,
}

impl MetricsRegistry {
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self, uptime: Duration) -> MetricsSnapshot {
        let completed = self.completed.load(Ordering::Relaxed);
        let secs = uptime.as_secs_f64();
        let workers = self.workers.load(Ordering::Relaxed);
        MetricsSnapshot {
            workers,
            health: self.health.snapshot(workers),
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected_full: self.rejected_full.load(Ordering::Relaxed),
            completed,
            failed: self.failed.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            fused_batches: self.fused_batches.load(Ordering::Relaxed),
            fused_jobs: self.fused_jobs.load(Ordering::Relaxed),
            fused_capacity: self.fused_capacity.load(Ordering::Relaxed),
            condest_hits: 0,
            condest_misses: 0,
            zolo_jobs: self.zolo_jobs.load(Ordering::Relaxed),
            zolo_qr_total: self.zolo_qr_total.load(Ordering::Relaxed),
            injected_faults: self.injected_faults.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed).max(0) as u64,
            in_flight: self.in_flight.load(Ordering::Relaxed).max(0) as u64,
            throughput_per_sec: if secs > 0.0 { completed as f64 / secs } else { 0.0 },
            wait: self.wait.snapshot(),
            run: self.run.snapshot(),
            batch_size: self.batch_size.snapshot(),
        }
    }
}

/// Exportable point-in-time view of the whole registry.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    pub submitted: u64,
    pub rejected_full: u64,
    pub completed: u64,
    pub failed: u64,
    pub cancelled: u64,
    pub timed_out: u64,
    pub retries: u64,
    pub batches: u64,
    pub fused_batches: u64,
    /// Jobs carried by fused groups vs the slots those groups offered
    /// (see [`MetricsRegistry::fused_capacity`]).
    pub fused_jobs: u64,
    pub fused_capacity: u64,
    /// Condition-estimate cache traffic on the fused path. The cache
    /// lives on the service, not the registry, so these are zero in a
    /// bare-registry snapshot and filled in by
    /// [`crate::PolarService::metrics`].
    pub condest_hits: u64,
    pub condest_misses: u64,
    /// Completed Zolo-PD jobs.
    pub zolo_jobs: u64,
    /// Stacked-QR factorizations across Zolo jobs (see
    /// [`MetricsRegistry::zolo_qr_total`]).
    pub zolo_qr_total: u64,
    pub injected_faults: u64,
    pub queue_depth: u64,
    pub in_flight: u64,
    pub throughput_per_sec: f64,
    pub wait: HistogramSnapshot,
    pub run: HistogramSnapshot,
    /// Fused-batch sizes, in jobs (see
    /// [`MetricsRegistry::batch_size`]).
    pub batch_size: HistogramSnapshot,
    /// Dispatch worker count (0 when the registry is used standalone).
    pub workers: u64,
    /// Rolling-window scheduler health.
    pub health: SchedulerHealthSnapshot,
}

fn opt_us(d: Option<Duration>) -> f64 {
    d.map(|d| d.as_secs_f64() * 1e6).unwrap_or(0.0)
}

/// Decode a size-valued histogram quantile (recorded with `record_ns`,
/// so the nanosecond count *is* the job count).
fn opt_jobs(d: Option<Duration>) -> f64 {
    d.map(|d| d.as_nanos() as f64).unwrap_or(0.0)
}

impl MetricsSnapshot {
    /// Fraction of offered fused-slot capacity actually carried
    /// (`fused_jobs / fused_capacity`; 0 before any fused dispatch).
    pub fn batch_fill_ratio(&self) -> f64 {
        if self.fused_capacity == 0 {
            0.0
        } else {
            self.fused_jobs as f64 / self.fused_capacity as f64
        }
    }

    fn rows(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("submitted", self.submitted as f64),
            ("rejected_full", self.rejected_full as f64),
            ("completed", self.completed as f64),
            ("failed", self.failed as f64),
            ("cancelled", self.cancelled as f64),
            ("timed_out", self.timed_out as f64),
            ("retries", self.retries as f64),
            ("batches", self.batches as f64),
            ("fused_batches", self.fused_batches as f64),
            ("fused_jobs", self.fused_jobs as f64),
            ("fused_capacity", self.fused_capacity as f64),
            ("batch_fill_ratio", self.batch_fill_ratio()),
            ("condest_hits", self.condest_hits as f64),
            ("condest_misses", self.condest_misses as f64),
            ("zolo_jobs", self.zolo_jobs as f64),
            ("zolo_qr_total", self.zolo_qr_total as f64),
            ("injected_faults", self.injected_faults as f64),
            ("queue_depth", self.queue_depth as f64),
            ("in_flight", self.in_flight as f64),
            ("throughput_per_sec", self.throughput_per_sec),
            ("wait_count", self.wait.count as f64),
            ("wait_p50_us", opt_us(self.wait.p50)),
            ("wait_p95_us", opt_us(self.wait.p95)),
            ("wait_p99_us", opt_us(self.wait.p99)),
            ("run_count", self.run.count as f64),
            ("run_p50_us", opt_us(self.run.p50)),
            ("run_p95_us", opt_us(self.run.p95)),
            ("run_p99_us", opt_us(self.run.p99)),
            // batch sizes are stored as "nanoseconds": read back as jobs
            ("batch_size_count", self.batch_size.count as f64),
            ("batch_size_p50", opt_jobs(self.batch_size.p50)),
            ("batch_size_p99", opt_jobs(self.batch_size.p99)),
            // rolling-window scheduler health
            ("sched_workers", self.workers as f64),
            ("window_jobs", self.health.window_jobs as f64),
            ("window_utilization", self.health.utilization),
            ("window_mean_wait_us", self.health.mean_wait_us),
            ("window_mean_run_us", self.health.mean_run_us),
        ]
    }

    /// One flat JSON object (hand-rolled: the workspace has no JSON
    /// serializer dependency).
    pub fn to_json(&self) -> String {
        let body: Vec<String> = self
            .rows()
            .iter()
            .map(|(k, v)| {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    format!("  \"{k}\": {}", *v as i64)
                } else {
                    format!("  \"{k}\": {v:.3}")
                }
            })
            .collect();
        format!("{{\n{}\n}}", body.join(",\n"))
    }

    /// Two-line CSV: header row + value row.
    pub fn to_csv(&self) -> String {
        let rows = self.rows();
        let header: Vec<&str> = rows.iter().map(|(k, _)| *k).collect();
        let values: Vec<String> = rows
            .iter()
            .map(|(_, v)| {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    format!("{}", *v as i64)
                } else {
                    format!("{v:.3}")
                }
            })
            .collect();
        format!("{}\n{}\n", header.join(","), values.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexported_histogram_keeps_the_old_api() {
        // the definition moved to polar-obs; the svc-facing API (record /
        // count / quantile) must keep working through the re-export
        let h = Histogram::default();
        h.record(Duration::from_micros(100));
        assert_eq!(h.count(), 1);
        let p50 = h.quantile(0.5).unwrap();
        assert!(p50 >= Duration::from_micros(64) && p50 < Duration::from_micros(131));
    }

    #[test]
    fn snapshot_and_exports() {
        let m = MetricsRegistry::default();
        MetricsRegistry::inc(&m.submitted);
        MetricsRegistry::inc(&m.submitted);
        MetricsRegistry::inc(&m.completed);
        m.wait.record(Duration::from_micros(50));
        m.run.record(Duration::from_millis(2));
        let s = m.snapshot(Duration::from_secs(2));
        assert_eq!(s.submitted, 2);
        assert!((s.throughput_per_sec - 0.5).abs() < 1e-12);

        let json = s.to_json();
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"submitted\": 2"));
        assert!(json.contains("run_p50_us"));

        let csv = s.to_csv();
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        let values = lines.next().unwrap();
        assert_eq!(header.split(',').count(), values.split(',').count());
        assert!(header.starts_with("submitted,"));
        assert!(values.starts_with("2,"));
    }

    #[test]
    fn health_window_utilization_and_means() {
        let h = SchedulerHealth::default();
        // two workers, two jobs back-to-back: lane A runs [0, 1ms],
        // lane B runs [0, 1ms]; window span 1ms, busy 2ms => 100% of 2
        h.record(1_000_000, 10_000, 1_000_000);
        h.record(1_000_000, 30_000, 1_000_000);
        let s = h.snapshot(2);
        assert_eq!(s.window_jobs, 2);
        assert_eq!(s.window_span_ns, 1_000_000);
        assert!((s.utilization - 1.0).abs() < 1e-12);
        assert!((s.mean_wait_us - 20.0).abs() < 1e-9);
        assert!((s.mean_run_us - 1000.0).abs() < 1e-9);
        // four workers halves utilization
        assert!((h.snapshot(4).utilization - 0.5).abs() < 1e-12);
        // zero workers / empty window degenerate cleanly
        assert_eq!(h.snapshot(0).utilization, 0.0);
        assert_eq!(SchedulerHealth::default().snapshot(2), SchedulerHealthSnapshot::default());
    }

    #[test]
    fn health_window_evicts_oldest_beyond_capacity() {
        let h = SchedulerHealth::default();
        for i in 0..(HEALTH_WINDOW as u64 + 10) {
            h.record(i * 1_000, 0, 500);
        }
        let s = h.snapshot(1);
        assert_eq!(s.window_jobs, HEALTH_WINDOW as u64);
        // oldest samples (end 0..10_000) evicted: span starts at sample 10
        assert_eq!(s.window_span_ns, (HEALTH_WINDOW as u64 + 9) * 1_000 - (10 * 1_000 - 500));
    }

    #[test]
    fn snapshot_exports_health_rows() {
        let m = MetricsRegistry::default();
        m.workers.store(3, Ordering::Relaxed);
        m.health.record(2_000_000, 5_000, 1_000_000);
        let s = m.snapshot(Duration::from_secs(1));
        assert_eq!(s.workers, 3);
        assert_eq!(s.health.window_jobs, 1);
        let json = s.to_json();
        for key in ["sched_workers", "window_jobs", "window_utilization", "window_mean_wait_us"] {
            assert!(json.contains(key), "missing {key}");
        }
        assert!(json.contains("\"sched_workers\": 3"));
    }

    #[test]
    fn zero_uptime_throughput_is_zero() {
        let m = MetricsRegistry::default();
        MetricsRegistry::inc(&m.completed);
        assert_eq!(m.snapshot(Duration::ZERO).throughput_per_sec, 0.0);
    }
}
