//! Lock-free service telemetry: counters, gauges, log-scale histograms.
//!
//! The log2-bucketed [`Histogram`] lives in `polar-obs` (every layer of
//! the stack uses it); it is re-exported here so existing `polar_svc`
//! users keep compiling. Everything is atomics, so recording from workers
//! never contends with export.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Duration;

pub use polar_obs::{Histogram, HistogramSnapshot};

/// All service counters, gauges, and histograms.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    // counters
    pub submitted: AtomicU64,
    pub rejected_full: AtomicU64,
    pub completed: AtomicU64,
    pub failed: AtomicU64,
    pub cancelled: AtomicU64,
    pub timed_out: AtomicU64,
    pub retries: AtomicU64,
    pub batches: AtomicU64,
    /// Shape-homogeneous groups dispatched to the fused batched engine
    /// (one per `WorkItem::Fused`, regardless of group size).
    pub fused_batches: AtomicU64,
    pub injected_faults: AtomicU64,
    // gauges
    pub queue_depth: AtomicI64,
    pub in_flight: AtomicI64,
    // histograms
    pub wait: Histogram,
    pub run: Histogram,
    /// Fused-batch size distribution. The log2 histogram is time-typed;
    /// sizes are recorded via `record_ns(len)`, so quantiles read back as
    /// "nanoseconds" whose numeric value is a job count.
    pub batch_size: Histogram,
}

impl MetricsRegistry {
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self, uptime: Duration) -> MetricsSnapshot {
        let completed = self.completed.load(Ordering::Relaxed);
        let secs = uptime.as_secs_f64();
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected_full: self.rejected_full.load(Ordering::Relaxed),
            completed,
            failed: self.failed.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            fused_batches: self.fused_batches.load(Ordering::Relaxed),
            injected_faults: self.injected_faults.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed).max(0) as u64,
            in_flight: self.in_flight.load(Ordering::Relaxed).max(0) as u64,
            throughput_per_sec: if secs > 0.0 { completed as f64 / secs } else { 0.0 },
            wait: self.wait.snapshot(),
            run: self.run.snapshot(),
            batch_size: self.batch_size.snapshot(),
        }
    }
}

/// Exportable point-in-time view of the whole registry.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    pub submitted: u64,
    pub rejected_full: u64,
    pub completed: u64,
    pub failed: u64,
    pub cancelled: u64,
    pub timed_out: u64,
    pub retries: u64,
    pub batches: u64,
    pub fused_batches: u64,
    pub injected_faults: u64,
    pub queue_depth: u64,
    pub in_flight: u64,
    pub throughput_per_sec: f64,
    pub wait: HistogramSnapshot,
    pub run: HistogramSnapshot,
    /// Fused-batch sizes, in jobs (see
    /// [`MetricsRegistry::batch_size`]).
    pub batch_size: HistogramSnapshot,
}

fn opt_us(d: Option<Duration>) -> f64 {
    d.map(|d| d.as_secs_f64() * 1e6).unwrap_or(0.0)
}

/// Decode a size-valued histogram quantile (recorded with `record_ns`,
/// so the nanosecond count *is* the job count).
fn opt_jobs(d: Option<Duration>) -> f64 {
    d.map(|d| d.as_nanos() as f64).unwrap_or(0.0)
}

impl MetricsSnapshot {
    fn rows(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("submitted", self.submitted as f64),
            ("rejected_full", self.rejected_full as f64),
            ("completed", self.completed as f64),
            ("failed", self.failed as f64),
            ("cancelled", self.cancelled as f64),
            ("timed_out", self.timed_out as f64),
            ("retries", self.retries as f64),
            ("batches", self.batches as f64),
            ("fused_batches", self.fused_batches as f64),
            ("injected_faults", self.injected_faults as f64),
            ("queue_depth", self.queue_depth as f64),
            ("in_flight", self.in_flight as f64),
            ("throughput_per_sec", self.throughput_per_sec),
            ("wait_count", self.wait.count as f64),
            ("wait_p50_us", opt_us(self.wait.p50)),
            ("wait_p95_us", opt_us(self.wait.p95)),
            ("wait_p99_us", opt_us(self.wait.p99)),
            ("run_count", self.run.count as f64),
            ("run_p50_us", opt_us(self.run.p50)),
            ("run_p95_us", opt_us(self.run.p95)),
            ("run_p99_us", opt_us(self.run.p99)),
            // batch sizes are stored as "nanoseconds": read back as jobs
            ("batch_size_count", self.batch_size.count as f64),
            ("batch_size_p50", opt_jobs(self.batch_size.p50)),
            ("batch_size_p99", opt_jobs(self.batch_size.p99)),
        ]
    }

    /// One flat JSON object (hand-rolled: the workspace has no JSON
    /// serializer dependency).
    pub fn to_json(&self) -> String {
        let body: Vec<String> = self
            .rows()
            .iter()
            .map(|(k, v)| {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    format!("  \"{k}\": {}", *v as i64)
                } else {
                    format!("  \"{k}\": {v:.3}")
                }
            })
            .collect();
        format!("{{\n{}\n}}", body.join(",\n"))
    }

    /// Two-line CSV: header row + value row.
    pub fn to_csv(&self) -> String {
        let rows = self.rows();
        let header: Vec<&str> = rows.iter().map(|(k, _)| *k).collect();
        let values: Vec<String> = rows
            .iter()
            .map(|(_, v)| {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    format!("{}", *v as i64)
                } else {
                    format!("{v:.3}")
                }
            })
            .collect();
        format!("{}\n{}\n", header.join(","), values.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexported_histogram_keeps_the_old_api() {
        // the definition moved to polar-obs; the svc-facing API (record /
        // count / quantile) must keep working through the re-export
        let h = Histogram::default();
        h.record(Duration::from_micros(100));
        assert_eq!(h.count(), 1);
        let p50 = h.quantile(0.5).unwrap();
        assert!(p50 >= Duration::from_micros(64) && p50 < Duration::from_micros(131));
    }

    #[test]
    fn snapshot_and_exports() {
        let m = MetricsRegistry::default();
        MetricsRegistry::inc(&m.submitted);
        MetricsRegistry::inc(&m.submitted);
        MetricsRegistry::inc(&m.completed);
        m.wait.record(Duration::from_micros(50));
        m.run.record(Duration::from_millis(2));
        let s = m.snapshot(Duration::from_secs(2));
        assert_eq!(s.submitted, 2);
        assert!((s.throughput_per_sec - 0.5).abs() < 1e-12);

        let json = s.to_json();
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"submitted\": 2"));
        assert!(json.contains("run_p50_us"));

        let csv = s.to_csv();
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        let values = lines.next().unwrap();
        assert_eq!(header.split(',').count(), values.split(',').count());
        assert!(header.starts_with("submitted,"));
        assert!(values.starts_with("2,"));
    }

    #[test]
    fn zero_uptime_throughput_is_zero() {
        let m = MetricsRegistry::default();
        MetricsRegistry::inc(&m.completed);
        assert_eq!(m.snapshot(Duration::ZERO).throughput_per_sec, 0.0);
    }
}
