//! The service: wiring, lifecycle, and the public submit API.

use crate::dispatch::{run_dispatcher, DispatcherConfig, WorkItem};
use crate::fault::FaultPlan;
use crate::job::{JobHandle, JobSpec};
use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use crate::queue::{AdmissionQueue, SubmitError};
use crate::trace::SpanLog;
use crate::worker::{run_worker, ExecContext};
use polar_batch::CondestCache;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Construction-time knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Admission-queue capacity; beyond it submissions feel backpressure.
    pub queue_capacity: usize,
    /// Max small jobs coalesced into one dispatched batch.
    pub batch_max: usize,
    /// Jobs estimated at or below this many flops count as "small" and
    /// are eligible for batching. Default: a 64×64 QDWH (paper cost
    /// model), about 2e7 flops.
    pub small_job_flops: f64,
    /// Bounded batch-gathering window: how long the dispatcher may hold
    /// an under-full same-shape `Batched` group open for late arrivals
    /// before dispatching it anyway. `None` (the default) keeps today's
    /// dispatch-immediately behavior; setting it trades up to that much
    /// first-job latency for fuller fused batches (watch the
    /// `batch_fill_ratio` metric).
    pub batch_gather_window: Option<Duration>,
    /// Default per-job wall-clock budget; `None` = unlimited.
    pub default_timeout: Option<Duration>,
    /// Retries after the first attempt for transient failures.
    pub max_retries: u32,
    /// First-retry backoff; doubles each retry.
    pub retry_backoff: Duration,
    /// Deterministic transient-fault injection (tests, chaos drills).
    pub fault: FaultPlan,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2).min(8),
            queue_capacity: 64,
            batch_max: 4,
            small_job_flops: crate::dispatch::estimate_flops(crate::job::JobKind::Qdwh, 64, 64),
            batch_gather_window: None,
            default_timeout: None,
            max_retries: 2,
            retry_backoff: Duration::from_millis(1),
            fault: FaultPlan::DISABLED,
        }
    }
}

/// A running polar-decomposition job service.
///
/// Dropping the service without calling [`PolarService::shutdown`]
/// detaches its threads (they exit once the work drains); call
/// `shutdown` (or `drain` + `shutdown`) for a deterministic stop.
pub struct PolarService {
    queue: Option<AdmissionQueue>,
    accepting: Arc<AtomicBool>,
    metrics: Arc<MetricsRegistry>,
    condest_cache: Arc<CondestCache>,
    spans: Arc<SpanLog>,
    started: Instant,
    dispatcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl PolarService {
    /// Spawn the dispatcher and worker pool and start accepting jobs.
    pub fn start(cfg: ServiceConfig) -> Self {
        let metrics = Arc::new(MetricsRegistry::default());
        metrics.workers.store(cfg.workers.max(1) as u64, std::sync::atomic::Ordering::Relaxed);
        let spans = Arc::new(SpanLog::new());
        let accepting = Arc::new(AtomicBool::new(true));

        let (queue, admission_rx) =
            AdmissionQueue::new(cfg.queue_capacity, accepting.clone(), metrics.clone());

        // work channel is shallow so priority decisions stay in the heap
        // until a worker is actually free
        let (work_tx, work_rx) = crossbeam::channel::bounded::<WorkItem>(1);

        let dispatcher = {
            let metrics = metrics.clone();
            let dcfg = DispatcherConfig {
                batch_max: cfg.batch_max.max(1),
                small_job_flops: cfg.small_job_flops,
                batch_gather_window: cfg.batch_gather_window,
            };
            std::thread::Builder::new()
                .name("polar-svc-dispatch".into())
                .spawn(move || run_dispatcher(admission_rx, work_tx, dcfg, metrics))
                .expect("spawn dispatcher")
        };

        // one condition-estimate cache for the whole service: every fused
        // batch reads and feeds it, so repeat (shape, cond-class) streams
        // skip the l_0 prologue after their first batch
        let condest_cache = Arc::new(CondestCache::new());
        let ctx = Arc::new(ExecContext {
            metrics: metrics.clone(),
            spans: spans.clone(),
            fault: cfg.fault,
            default_timeout: cfg.default_timeout,
            max_retries: cfg.max_retries,
            retry_backoff: cfg.retry_backoff,
            condest_cache: condest_cache.clone(),
        });
        let workers = (0..cfg.workers.max(1))
            .map(|i| {
                let rx = work_rx.clone();
                let ctx = ctx.clone();
                std::thread::Builder::new()
                    .name(format!("polar-svc-worker-{i}"))
                    .spawn(move || run_worker(i, rx, ctx))
                    .expect("spawn worker")
            })
            .collect();

        PolarService {
            queue: Some(queue),
            accepting,
            metrics,
            condest_cache,
            spans,
            started: Instant::now(),
            dispatcher: Some(dispatcher),
            workers,
        }
    }

    fn queue(&self) -> Result<&AdmissionQueue, SubmitError> {
        self.queue.as_ref().ok_or(SubmitError::Stopped)
    }

    /// Non-blocking submission; [`SubmitError::QueueFull`] under
    /// backpressure.
    pub fn try_submit(&self, spec: JobSpec) -> Result<JobHandle, SubmitError> {
        self.queue()?.try_submit(spec)
    }

    /// Blocking submission: waits up to `deadline` for queue space.
    pub fn submit(&self, spec: JobSpec, deadline: Duration) -> Result<JobHandle, SubmitError> {
        self.queue()?.submit(spec, deadline)
    }

    /// Submit a group of same-shape matrices for the fused batched
    /// engine ([`crate::job::JobKind::Batched`]): each spec's kind is
    /// forced to `Batched` and the dispatcher re-coalesces them (with any
    /// other queued `Batched` jobs of that shape) into whole-batch
    /// solves.
    ///
    /// Mixed shapes are rejected up front with
    /// [`SubmitError::MixedShapes`] — the fused engine packs entries into
    /// one contiguous panel, so a group must be shape-homogeneous. If the
    /// queue fills partway through, the already-admitted jobs are
    /// cancelled and [`SubmitError::QueueFull`] is returned, so the call
    /// is all-or-nothing from the caller's perspective.
    pub fn submit_batch(&self, specs: Vec<JobSpec>) -> Result<Vec<JobHandle>, SubmitError> {
        if let Some(first) = specs.first() {
            let expected = (first.matrix.nrows(), first.matrix.ncols());
            for (index, spec) in specs.iter().enumerate() {
                let got = (spec.matrix.nrows(), spec.matrix.ncols());
                if got != expected {
                    return Err(SubmitError::MixedShapes { index, expected, got });
                }
            }
        }
        let queue = self.queue()?;
        let mut handles = Vec::with_capacity(specs.len());
        for mut spec in specs {
            spec.kind = crate::job::JobKind::Batched;
            match queue.try_submit(spec) {
                Ok(h) => handles.push(h),
                Err(e) => {
                    for h in &handles {
                        h.cancel();
                    }
                    return Err(e);
                }
            }
        }
        Ok(handles)
    }

    /// Point-in-time metrics (counters, gauges, latency quantiles,
    /// throughput over service uptime).
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut s = self.metrics.snapshot(self.started.elapsed());
        s.condest_hits = self.condest_cache.hits();
        s.condest_misses = self.condest_cache.misses();
        s
    }

    /// The service-wide condition-estimate cache (hit/miss counters are
    /// also exported through [`PolarService::metrics`]).
    pub fn condest_cache(&self) -> &Arc<CondestCache> {
        &self.condest_cache
    }

    /// Per-job spans recorded so far (Chrome-trace export via
    /// [`PolarService::write_chrome_trace`]).
    pub fn spans(&self) -> &SpanLog {
        &self.spans
    }

    /// Serialize all job spans as Chrome tracing JSON.
    pub fn write_chrome_trace<W: std::io::Write>(&self, w: W) -> std::io::Result<()> {
        self.spans.write_chrome_trace(w)
    }

    /// Stop accepting new jobs and block until everything already
    /// admitted reaches a terminal state. Idempotent.
    pub fn drain(&self) {
        self.accepting.store(false, Ordering::Release);
        // after accepting=false no submission increments `submitted`, so
        // the target is stable once observed
        loop {
            let s = self.metrics.snapshot(self.started.elapsed());
            let terminal = s.completed + s.failed + s.cancelled + s.timed_out;
            if terminal >= s.submitted {
                return;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    /// Drain, then join the dispatcher and every worker.
    pub fn shutdown(mut self) {
        self.drain();
        // closing admission lets the dispatcher exit, which closes the
        // work channel, which stops the workers
        drop(self.queue.take());
        if let Some(d) = self.dispatcher.take() {
            let _ = d.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}
