//! Job vocabulary: what clients submit and what they get back.

use crate::cancel::CancelToken;
use polar_matrix::Matrix;
use polar_qdwh::{PolarDecomposition, QdwhError, QdwhOptions, QdwhSvd, ZoloOptions};
use std::time::Duration;

/// Monotonically increasing job identifier, assigned at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// Which solver a job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// QDWH polar decomposition (Algorithm 1) — the workhorse.
    Qdwh,
    /// Thin SVD via QDWH-PD + Hermitian EVD (§3 application).
    QdwhSvd,
    /// SVD-based polar decomposition, the paper's §3 baseline.
    SvdPolar,
    /// QDWH via the fused batched engine (`polar-batch`): the dispatcher
    /// coalesces same-shape `Batched` jobs into one group and the worker
    /// solves the whole group as fused whole-batch DAGs — one dispatch
    /// slot, one prologue, one task graph per iteration. Falls back to
    /// per-job scalar QDWH if the fused engine rejects the group.
    ///
    /// Caveat: fused execution has no between-iteration hook, so
    /// cancellation and deadlines are only honored before the batch
    /// starts (or on the scalar fallback path).
    Batched,
    /// Zolotarev polar decomposition (`zolo_pd`): trades `r` times the
    /// flops of QDWH for fewer iterations, with the r shifted stacked-QR
    /// terms of each iteration running concurrently in one task graph on
    /// the fused path. Configure via [`JobSpec::zolo`] /
    /// [`JobSpec::with_zolo_r`].
    ///
    /// Same caveat as [`JobKind::Batched`]: the fused r-way graph has no
    /// between-iteration hook, so cancellation and deadlines are only
    /// honored before the solve starts (or when the input is small enough
    /// to route through the serial fallback, which does get the hook).
    Zolo,
}

/// A unit of work: solver kind, input matrix, and scheduling knobs.
#[derive(Debug, Clone)]
pub struct JobSpec {
    pub kind: JobKind,
    /// Input matrix (`m >= n` as the solvers require).
    pub matrix: Matrix<f64>,
    /// Higher runs earlier. Ties break toward cheaper jobs
    /// (shortest-job-first), then submission order.
    pub priority: u8,
    /// Per-job wall-clock budget measured from run start; `None` falls
    /// back to the service default. Enforced between QDWH iterations.
    pub timeout: Option<Duration>,
    /// Solver options (the service overwrites the `progress` hook).
    pub opts: QdwhOptions,
    /// Zolotarev options, consulted only by [`JobKind::Zolo`] jobs
    /// (`zolo.r` picks the degree; the worker leaves `zolo.progress`
    /// unset so the fused r-way path stays eligible).
    pub zolo: ZoloOptions,
    /// Client-supplied condition-number estimate for the input (e.g. a
    /// tensor-network loop that knows its truncation spectra). Consulted
    /// only on the fused [`JobKind::Batched`] path, where it keys the
    /// service-wide condition-estimate cache so repeat shapes skip the
    /// `l_0` prologue. A wrong hint costs iterations, never accuracy.
    pub cond_hint: Option<f64>,
}

impl JobSpec {
    pub fn qdwh(matrix: Matrix<f64>) -> Self {
        Self::new(JobKind::Qdwh, matrix)
    }

    /// A job for the fused batched engine (see [`JobKind::Batched`]).
    pub fn batched(matrix: Matrix<f64>) -> Self {
        Self::new(JobKind::Batched, matrix)
    }

    /// A Zolotarev polar-decomposition job (see [`JobKind::Zolo`]).
    pub fn zolo(matrix: Matrix<f64>) -> Self {
        Self::new(JobKind::Zolo, matrix)
    }

    pub fn new(kind: JobKind, matrix: Matrix<f64>) -> Self {
        JobSpec {
            kind,
            matrix,
            priority: 0,
            timeout: None,
            opts: QdwhOptions::default(),
            zolo: ZoloOptions::default(),
            cond_hint: None,
        }
    }

    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Set the Zolotarev degree `r ∈ 1..=8` for a [`JobKind::Zolo`] job.
    pub fn with_zolo_r(mut self, r: usize) -> Self {
        self.zolo.r = r;
        self
    }

    /// Attach a condition-number hint (see [`JobSpec::cond_hint`]).
    pub fn with_cond_hint(mut self, cond: f64) -> Self {
        self.cond_hint = Some(cond);
        self
    }
}

/// Successful payload, by solver kind.
#[derive(Debug, Clone)]
pub enum JobOutput {
    Polar(PolarDecomposition<f64>),
    Svd(QdwhSvd<f64>),
}

impl JobOutput {
    /// The unitary polar factor / left singular vectors, whichever the
    /// job produced.
    pub fn u(&self) -> &Matrix<f64> {
        match self {
            JobOutput::Polar(pd) => &pd.u,
            JobOutput::Svd(svd) => &svd.u,
        }
    }
}

/// Why a job did not produce output.
#[derive(Debug, Clone, PartialEq)]
pub enum JobError {
    /// Cancelled via its [`CancelToken`] (possibly while still queued).
    Cancelled,
    /// Exceeded its wall-clock budget; reports the budget that was
    /// enforced.
    TimedOut { budget: Duration },
    /// The solver failed and no retry budget remained (or the failure was
    /// permanent). `attempts` counts executions, so `1` means no retry.
    Failed { error: QdwhError, attempts: u32 },
    /// The service stopped before the job ran.
    ServiceStopped,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Cancelled => write!(f, "cancelled"),
            JobError::TimedOut { budget } => write!(f, "timed out after {budget:?}"),
            JobError::Failed { error, attempts } => {
                write!(f, "failed after {attempts} attempt(s): {error}")
            }
            JobError::ServiceStopped => write!(f, "service stopped before execution"),
        }
    }
}

impl std::error::Error for JobError {}

/// Terminal record for one job.
#[derive(Debug, Clone)]
pub struct JobResult {
    pub id: JobId,
    /// Executions performed (retries count; a queue-side cancellation is
    /// zero attempts).
    pub attempts: u32,
    /// Admission → first run start.
    pub wait: Duration,
    /// Cumulative execution time across attempts.
    pub run: Duration,
    pub output: Result<JobOutput, JobError>,
}

/// Client-side handle returned at submission.
pub struct JobHandle {
    pub(crate) id: JobId,
    pub(crate) cancel: CancelToken,
    pub(crate) result: crossbeam::channel::Receiver<JobResult>,
}

impl JobHandle {
    pub fn id(&self) -> JobId {
        self.id
    }

    /// A token that cancels this job cooperatively.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Request cancellation (between iterations, or before start).
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Block until the job reaches a terminal state.
    pub fn wait(self) -> JobResult {
        match self.result.recv() {
            Ok(r) => r,
            Err(_) => JobResult {
                id: self.id,
                attempts: 0,
                wait: Duration::ZERO,
                run: Duration::ZERO,
                output: Err(JobError::ServiceStopped),
            },
        }
    }

    /// Non-blocking poll; `None` while the job is still queued/running.
    pub fn try_wait(&self) -> Option<JobResult> {
        self.result.try_recv().ok()
    }
}
