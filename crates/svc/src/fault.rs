//! Deterministic transient-fault injection.
//!
//! Exercises the retry path without real hardware faults: selected jobs
//! have their first `failures_per_job` attempts replaced by a synthetic
//! transient error (an exhausted iteration budget, the same shape a
//! preempted accelerator produces). Deterministic by job id, so tests and
//! load generators can predict exactly which jobs retry.

/// Which jobs fail, and how many times each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Every `nth` job (by admission id, 1-based: jobs `nth`, `2*nth`, …)
    /// is targeted. `0` disables injection.
    pub nth: u64,
    /// How many consecutive attempts of a targeted job fail before it is
    /// allowed to succeed. Set at or below the service's retry budget for
    /// eventually-successful jobs; above it to observe exhaustion.
    pub failures_per_job: u32,
}

impl FaultPlan {
    pub const DISABLED: FaultPlan = FaultPlan { nth: 0, failures_per_job: 0 };

    /// Should `attempt` (1-based) of the job with admission id `id`
    /// (1-based) fail?
    pub fn should_fail(&self, id: u64, attempt: u32) -> bool {
        self.nth != 0 && id.is_multiple_of(self.nth) && attempt <= self.failures_per_job
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::DISABLED
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_never_fails() {
        let p = FaultPlan::DISABLED;
        assert!(!p.should_fail(1, 1));
        assert!(!p.should_fail(0, 1));
    }

    #[test]
    fn targets_every_nth_for_k_attempts() {
        let p = FaultPlan { nth: 3, failures_per_job: 2 };
        assert!(!p.should_fail(1, 1));
        assert!(!p.should_fail(2, 1));
        assert!(p.should_fail(3, 1));
        assert!(p.should_fail(3, 2));
        assert!(!p.should_fail(3, 3), "third attempt succeeds");
        assert!(p.should_fail(6, 1));
    }
}
