//! End-to-end acceptance tests for the job service: backpressure,
//! cooperative cancellation, deadline enforcement, fault-injected
//! retries, drain semantics, and telemetry export.

use polar_gen::{generate, MatrixSpec};
use polar_matrix::Matrix;
use polar_qdwh::{IterationPath, QdwhOptions};
use polar_svc::{FaultPlan, JobError, JobKind, JobSpec, PolarService, ServiceConfig, SubmitError};
use std::time::{Duration, Instant};

/// A job that runs for several hundred milliseconds in debug builds
/// (~75 ms per forced-QR iteration at n = 100), so cancellation and
/// timeout tests can reliably land between iterations.
fn slow_job() -> JobSpec {
    let (a, _) = generate::<f64>(&MatrixSpec::ill_conditioned(100, 3));
    let mut spec = JobSpec::qdwh(a);
    spec.opts = QdwhOptions {
        path: IterationPath::ForceQr,
        l0_override: Some(1e-20),
        ..Default::default()
    };
    spec
}

fn small_job(seed: u64) -> JobSpec {
    let (a, _) = generate::<f64>(&MatrixSpec::well_conditioned(16, seed));
    JobSpec::qdwh(a)
}

#[test]
fn normal_jobs_complete_with_correct_factors() {
    let svc = PolarService::start(ServiceConfig::default());
    let (a, _) = generate::<f64>(&MatrixSpec::ill_conditioned(48, 5));
    let h = svc.try_submit(JobSpec::qdwh(a.clone())).unwrap();
    let r = h.wait();
    let out = r.output.expect("job succeeds");
    assert!(polar_qdwh::orthogonality_error(out.u()) < 1e-12);
    assert_eq!(r.attempts, 1);
    assert!(r.run > Duration::ZERO);

    // all solver kinds work end to end
    let (b, _) = generate::<f64>(&MatrixSpec::well_conditioned(24, 6));
    for kind in [JobKind::Qdwh, JobKind::QdwhSvd, JobKind::SvdPolar, JobKind::Zolo] {
        let h = svc.try_submit(JobSpec::new(kind, b.clone())).unwrap();
        assert!(h.wait().output.is_ok(), "{kind:?}");
    }
    svc.shutdown();
}

#[test]
fn zolo_jobs_run_fused_and_report_qr_metrics() {
    use polar_qdwh::TiledPath;

    let svc = PolarService::start(ServiceConfig::default());
    let (a, _) = generate::<f64>(&MatrixSpec::ill_conditioned(32, 9));
    let mut spec = JobSpec::zolo(a.clone()).with_zolo_r(4);
    // force the fused r-way graph even at this test-sized n
    spec.zolo.tiled = TiledPath::Always;
    spec.zolo.tile_nb = Some(8);
    let h = svc.try_submit(spec).unwrap();
    let r = h.wait();
    let out = r.output.expect("zolo job succeeds");
    assert!(polar_qdwh::orthogonality_error(out.u()) < 1e-12);

    let m = svc.metrics();
    assert_eq!(m.zolo_jobs, 1);
    // per-term concurrency metric: r QR factorizations per iteration
    assert!(m.zolo_qr_total >= 4, "expected >= r stacked QRs, got {}", m.zolo_qr_total);
    assert_eq!(m.zolo_qr_total % 4, 0, "QR count must be r x iterations");
    svc.shutdown();
}

#[test]
fn backpressure_rejects_with_queue_full() {
    // one worker, a one-slot admission queue, and every attempt of every
    // job failing with an injected transient fault + backoff: the worker
    // stays busy, the dispatcher blocks handing off the next job, and
    // the admission channel fills.
    let svc = PolarService::start(ServiceConfig {
        workers: 1,
        queue_capacity: 1,
        batch_max: 1,
        fault: FaultPlan { nth: 1, failures_per_job: 30 },
        max_retries: 30,
        retry_backoff: Duration::from_millis(20),
        default_timeout: Some(Duration::from_millis(300)),
        ..Default::default()
    });

    // A transient QueueFull can resolve while the dispatcher drains, so
    // loop until the *blocking* submit also sheds load — that means the
    // queue stayed full for its whole 10 ms deadline.
    let mut handles = Vec::new();
    let mut saw_queue_full = false;
    let mut blocking_queue_full = false;
    let deadline = Instant::now() + Duration::from_secs(15);
    while Instant::now() < deadline {
        match svc.try_submit(small_job(7)) {
            Ok(h) => handles.push(h),
            Err(SubmitError::QueueFull) => {
                saw_queue_full = true;
                match svc.submit(small_job(8), Duration::from_millis(10)) {
                    Err(SubmitError::QueueFull) => {
                        blocking_queue_full = true;
                        break;
                    }
                    // the dispatcher freed a slot mid-wait: keep loading
                    Ok(h) => handles.push(h),
                    Err(e) => panic!("unexpected submit error {e:?}"),
                }
            }
            Err(e) => panic!("unexpected submit error {e:?}"),
        }
    }
    assert!(saw_queue_full, "bounded queue must shed load");
    assert!(blocking_queue_full, "blocking submit must time out while saturated");
    assert!(svc.metrics().rejected_full >= 2);

    svc.shutdown();
    // every admitted job reached a terminal state (fault plan + budget
    // means Failed, not success — they still must complete)
    for h in handles {
        assert!(h.try_wait().is_some(), "drain left a job unresolved");
    }
}

#[test]
fn cancellation_lands_between_iterations() {
    let svc = PolarService::start(ServiceConfig { workers: 1, ..Default::default() });
    let h = svc.try_submit(slow_job()).unwrap();
    // let the job get into its iteration loop, then cancel
    std::thread::sleep(Duration::from_millis(150));
    h.cancel();
    let r = h.wait();
    assert_eq!(r.output.err(), Some(JobError::Cancelled));
    assert_eq!(r.attempts, 1, "was mid-run, not queued");
    assert!(r.run >= Duration::from_millis(100), "ran before cancelling");
    assert!(r.run < Duration::from_secs(10), "cancellation must not wait for completion");
    assert_eq!(svc.metrics().cancelled, 1);
    svc.shutdown();
}

#[test]
fn cancelling_a_queued_job_never_runs_it() {
    let svc = PolarService::start(ServiceConfig { workers: 1, ..Default::default() });
    let blocker = svc.try_submit(slow_job()).unwrap();
    let queued = svc.try_submit(small_job(9)).unwrap();
    queued.cancel();
    let r = queued.wait();
    assert_eq!(r.output.err(), Some(JobError::Cancelled));
    assert_eq!(r.attempts, 0, "never executed");
    assert!(blocker.wait().output.is_ok());
    svc.shutdown();
}

#[test]
fn timeout_is_enforced_and_reported() {
    let svc = PolarService::start(ServiceConfig { workers: 1, ..Default::default() });
    let budget = Duration::from_millis(100);
    let h = svc.try_submit(slow_job().with_timeout(budget)).unwrap();
    let r = h.wait();
    assert_eq!(r.output.err(), Some(JobError::TimedOut { budget }));
    assert!(r.run >= budget, "budget elapsed before the hook fired");
    assert!(r.run < Duration::from_secs(10));
    assert_eq!(svc.metrics().timed_out, 1);
    svc.shutdown();
}

#[test]
fn injected_transient_fault_succeeds_on_retry() {
    let svc = PolarService::start(ServiceConfig {
        workers: 1,
        fault: FaultPlan { nth: 1, failures_per_job: 2 },
        max_retries: 3,
        retry_backoff: Duration::from_millis(1),
        ..Default::default()
    });
    let h = svc.try_submit(small_job(10)).unwrap();
    let r = h.wait();
    assert!(r.output.is_ok(), "survives transient faults: {:?}", r.output.err());
    assert_eq!(r.attempts, 3, "two injected failures, then success");
    let m = svc.metrics();
    assert_eq!(m.retries, 2);
    assert_eq!(m.injected_faults, 2);
    assert_eq!(m.completed, 1);
    svc.shutdown();
}

#[test]
fn retry_budget_exhaustion_fails_with_attempt_count() {
    let svc = PolarService::start(ServiceConfig {
        workers: 1,
        fault: FaultPlan { nth: 1, failures_per_job: 10 },
        max_retries: 2,
        retry_backoff: Duration::from_millis(1),
        ..Default::default()
    });
    let r = svc.try_submit(small_job(11)).unwrap().wait();
    match r.output {
        Err(JobError::Failed { attempts, .. }) => assert_eq!(attempts, 3),
        other => panic!("expected exhaustion, got {other:?}"),
    }
    assert_eq!(svc.metrics().failed, 1);
    svc.shutdown();
}

#[test]
fn permanent_failures_do_not_retry() {
    let svc =
        PolarService::start(ServiceConfig { workers: 1, max_retries: 5, ..Default::default() });
    let mut a = Matrix::<f64>::identity(8, 8);
    a[(2, 3)] = f64::NAN;
    let r = svc.try_submit(JobSpec::qdwh(a)).unwrap().wait();
    match r.output {
        Err(JobError::Failed { attempts, .. }) => {
            assert_eq!(attempts, 1, "NonFinite is permanent: no retry")
        }
        other => panic!("expected failure, got {other:?}"),
    }
    assert_eq!(svc.metrics().retries, 0);
    svc.shutdown();
}

#[test]
fn drain_completes_in_flight_work_then_rejects() {
    let svc = PolarService::start(ServiceConfig { workers: 2, ..Default::default() });
    let handles: Vec<_> = (0..6).map(|s| svc.try_submit(small_job(20 + s)).unwrap()).collect();
    svc.drain();

    // drained: everything submitted is terminal, nothing queued or running
    let m = svc.metrics();
    assert_eq!(m.completed, 6);
    assert_eq!(m.queue_depth, 0);
    assert_eq!(m.in_flight, 0);
    for h in handles {
        assert!(h.try_wait().unwrap().output.is_ok());
    }

    // and no new work is accepted
    assert!(matches!(svc.try_submit(small_job(1)), Err(SubmitError::Stopped)));
    assert!(matches!(
        svc.submit(small_job(1), Duration::from_millis(5)),
        Err(SubmitError::Stopped)
    ));
    svc.shutdown();
}

#[test]
fn mixed_workload_batches_small_jobs_and_exports_telemetry() {
    let svc = PolarService::start(ServiceConfig {
        workers: 1, // one worker so small jobs pile up behind the large one
        batch_max: 4,
        ..Default::default()
    });

    // a large job occupies the worker while a burst of small jobs queues
    let (big, _) = generate::<f64>(&MatrixSpec::ill_conditioned(96, 30));
    let big_h = svc.try_submit(JobSpec::qdwh(big).with_priority(3)).unwrap();
    let small_hs: Vec<_> = (0..11).map(|s| svc.try_submit(small_job(40 + s)).unwrap()).collect();

    assert!(big_h.wait().output.is_ok());
    for h in small_hs {
        assert!(h.wait().output.is_ok());
    }
    svc.drain();

    let m = svc.metrics();
    assert_eq!(m.completed, 12);
    assert!(m.batches >= 1, "small jobs behind a busy worker must coalesce");
    assert!(m.wait.p50.is_some() && m.wait.p95.is_some() && m.wait.p99.is_some());
    assert!(m.run.p50.is_some());
    assert!(m.throughput_per_sec > 0.0);

    // exports: flat JSON + two-line CSV
    let json = m.to_json();
    assert!(json.contains("\"completed\": 12"));
    assert!(json.contains("wait_p95_us"));
    let csv = m.to_csv();
    assert_eq!(csv.lines().count(), 2);

    // Chrome trace: valid JSON array with one Job span per executed job
    let path = std::env::temp_dir().join("polar_svc_integration_trace.json");
    {
        let f = std::fs::File::create(&path).unwrap();
        svc.write_chrome_trace(f).unwrap();
    }
    let trace = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert!(trace.trim_start().starts_with('['));
    assert!(trace.trim_end().ends_with(']'));
    assert_eq!(trace.matches("\"ph\": \"X\"").count(), 12);
    assert!(trace.contains("Job#"));
    // spans nest within service uptime and have positive duration
    for ev in svc.spans().events() {
        assert!(ev.end >= ev.start);
        assert!(ev.start >= 0.0);
    }
    svc.shutdown();
}

#[test]
fn priorities_order_queued_work() {
    // One worker pinned by two slow blockers (one running, one buffered
    // in the shallow work channel). Everything submitted meanwhile waits
    // in the dispatcher's heap, where priority ordering applies. At most
    // one low-priority job can escape ahead of the high-priority one
    // (the item the dispatcher may already hold while blocked on
    // handoff).
    let svc = PolarService::start(ServiceConfig {
        workers: 1,
        batch_max: 1, // no coalescing: observe pure priority order
        ..Default::default()
    });
    let blockers = [svc.try_submit(slow_job()).unwrap(), svc.try_submit(slow_job()).unwrap()];
    std::thread::sleep(Duration::from_millis(50)); // first blocker is running
    let lows: Vec<_> =
        (0..5).map(|s| svc.try_submit(small_job(50 + s).with_priority(0)).unwrap()).collect();
    let high = svc.try_submit(small_job(60).with_priority(9)).unwrap();

    for b in blockers {
        assert!(b.wait().output.is_ok());
    }
    let high_r = high.wait();
    assert!(high_r.output.is_ok());
    let low_rs: Vec<_> = lows.into_iter().map(|h| h.wait()).collect();
    let jumped = low_rs
        .iter()
        .filter(|r| {
            assert!(r.output.is_ok());
            r.wait < high_r.wait
        })
        .count();
    assert!(jumped <= 1, "{jumped} low-priority jobs ran before the high-priority one");
    svc.shutdown();
}

// ---- fused batched engine (JobKind::Batched) ----

#[test]
fn batched_jobs_fuse_and_produce_correct_factors() {
    let svc = PolarService::start(ServiceConfig { workers: 2, batch_max: 8, ..Default::default() });
    let specs: Vec<JobSpec> = (0..6)
        .map(|s| {
            let (a, _) = generate::<f64>(&MatrixSpec::ill_conditioned(32, 100 + s));
            JobSpec::batched(a)
        })
        .collect();
    let handles = svc.submit_batch(specs).unwrap();
    for h in handles {
        let r = h.wait();
        let out = r.output.expect("fused job succeeds");
        assert!(polar_qdwh::orthogonality_error(out.u()) < 1e-12);
        assert_eq!(r.attempts, 1);
    }
    svc.drain();
    let m = svc.metrics();
    assert!(m.fused_batches >= 1, "no fused dispatch recorded: {m:?}");
    assert_eq!(m.batch_size.count, m.fused_batches);
    assert_eq!(m.completed, 6);
    // the fused span is in the trace
    let mut buf = Vec::new();
    svc.write_chrome_trace(&mut buf).unwrap();
    assert!(String::from_utf8(buf).unwrap().contains("fused_batch"));
    svc.shutdown();
}

#[test]
fn mixed_shape_batch_rejected_with_typed_error_and_nothing_admitted() {
    let svc = PolarService::start(ServiceConfig::default());
    let mk = |n: usize, s: u64| {
        let (a, _) = generate::<f64>(&MatrixSpec::well_conditioned(n, s));
        JobSpec::batched(a)
    };
    let err = match svc.submit_batch(vec![mk(16, 1), mk(16, 2), mk(24, 3)]) {
        Err(e) => e,
        Ok(_) => panic!("mixed-shape batch was admitted"),
    };
    assert_eq!(err, SubmitError::MixedShapes { index: 2, expected: (16, 16), got: (24, 24) });
    assert_eq!(svc.metrics().submitted, 0, "rejection must not admit anything");
    svc.shutdown();
}

#[test]
fn dispatcher_only_fuses_matching_shapes() {
    // two shape groups interleaved: every job must still complete, and
    // each fused group is shape-pure by construction (wrong grouping
    // would panic inside the engine's shape validation)
    let svc =
        PolarService::start(ServiceConfig { workers: 2, batch_max: 16, ..Default::default() });
    let mut handles = Vec::new();
    for s in 0..4u64 {
        for &n in &[16usize, 24] {
            let (a, _) = generate::<f64>(&MatrixSpec::well_conditioned(n, 7 * s + n as u64));
            handles.push(svc.try_submit(JobSpec::batched(a)).unwrap());
        }
    }
    for h in handles {
        let r = h.wait();
        assert!(r.output.is_ok(), "{:?}", r.output.err());
    }
    svc.shutdown();
}

#[test]
fn cancelled_batched_job_takes_scalar_path_and_reports_cancelled() {
    let svc = PolarService::start(ServiceConfig { workers: 1, ..Default::default() });
    // occupy the single worker so the batched jobs sit in the queue
    let blocker = svc.try_submit(slow_job()).unwrap();
    std::thread::sleep(Duration::from_millis(30));
    let specs: Vec<JobSpec> = (0..2)
        .map(|s| {
            let (a, _) = generate::<f64>(&MatrixSpec::well_conditioned(16, 200 + s));
            JobSpec::batched(a)
        })
        .collect();
    let handles = svc.submit_batch(specs).unwrap();
    handles[0].cancel();
    assert!(blocker.wait().output.is_ok());
    let r0 = handles.into_iter().next().unwrap().wait();
    assert_eq!(r0.output.unwrap_err(), JobError::Cancelled);
    svc.shutdown();
}

#[test]
fn gather_window_coalesces_staggered_batched_submissions() {
    // without a window the first Batched job ships alone the instant a
    // worker frees up; the bounded window holds the under-full group open
    // so the stragglers ride the same fused dispatch
    let svc = PolarService::start(ServiceConfig {
        workers: 1,
        batch_max: 4,
        batch_gather_window: Some(Duration::from_millis(500)),
        ..Default::default()
    });
    let mk = |s: u64| {
        let (a, _) = generate::<f64>(&MatrixSpec::well_conditioned(16, 300 + s));
        JobSpec::batched(a)
    };
    let first = svc.try_submit(mk(0)).unwrap();
    std::thread::sleep(Duration::from_millis(30));
    let mut handles = vec![first];
    for s in 1..4u64 {
        handles.push(svc.try_submit(mk(s)).unwrap());
    }
    for h in handles {
        assert!(h.wait().output.is_ok());
    }
    svc.drain();
    let m = svc.metrics();
    assert_eq!(m.fused_batches, 1, "staggered jobs split across fused dispatches: {m:?}");
    assert_eq!(m.fused_jobs, 4);
    assert_eq!(m.fused_capacity, 4);
    assert!((m.batch_fill_ratio() - 1.0).abs() < 1e-12);
    assert!(m.to_json().contains("batch_fill_ratio"));
    svc.shutdown();
}

#[test]
fn gather_window_expiry_ships_underfull_group() {
    // a lone Batched job must not wait forever for company: once the
    // window lapses the fragment dispatches, and the fill ratio records
    // the unused capacity
    let svc = PolarService::start(ServiceConfig {
        workers: 1,
        batch_max: 4,
        batch_gather_window: Some(Duration::from_millis(20)),
        ..Default::default()
    });
    let (a, _) = generate::<f64>(&MatrixSpec::well_conditioned(16, 400));
    let h = svc.try_submit(JobSpec::batched(a)).unwrap();
    assert!(h.wait().output.is_ok());
    svc.drain();
    let m = svc.metrics();
    assert_eq!(m.fused_batches, 1);
    assert_eq!(m.fused_jobs, 1);
    assert!((m.batch_fill_ratio() - 0.25).abs() < 1e-12, "{}", m.batch_fill_ratio());
    svc.shutdown();
}

#[test]
fn cond_hints_feed_the_service_condest_cache() {
    // two same-shape hinted batches: the first misses and seeds the
    // service-wide cache, the second reuses its l_0 bound (hits) — and
    // the factors stay accurate either way
    let svc = PolarService::start(ServiceConfig { workers: 1, batch_max: 8, ..Default::default() });
    for round in 0..2u64 {
        let specs: Vec<JobSpec> = (0..4)
            .map(|s| {
                let (a, _) =
                    generate::<f64>(&MatrixSpec::ill_conditioned(24, 500 + 10 * round + s));
                JobSpec::batched(a).with_cond_hint(1e3)
            })
            .collect();
        for h in svc.submit_batch(specs).unwrap() {
            let r = h.wait();
            let out = r.output.expect("hinted fused job succeeds");
            assert!(polar_qdwh::orthogonality_error(out.u()) < 1e-12);
        }
    }
    svc.drain();
    let m = svc.metrics();
    assert!(m.condest_misses >= 1, "first hinted batch must miss: {m:?}");
    assert!(m.condest_hits >= 1, "second hinted batch must hit the cached bound: {m:?}");
    assert!(m.to_json().contains("condest_hits"));
    svc.shutdown();
}
