//! Property-based tests for the BLAS kernels: algebraic identities that
//! must hold for random shapes and contents.

use polar_blas::{add, gemm, gemm_ref, herk, norm, scale, trsm};
use polar_matrix::{Diag, MatMut, Matrix, Norm, Op, Side, Uplo};
use proptest::prelude::*;

fn mat(m: usize, n: usize) -> impl Strategy<Value = Matrix<f64>> {
    proptest::collection::vec(-10.0f64..10.0, m * n)
        .prop_map(move |v| Matrix::from_col_major(m, n, v))
}

fn dims3() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..20, 1usize..20, 1usize..20)
}

fn max_abs_diff(a: &Matrix<f64>, b: &Matrix<f64>) -> f64 {
    let mut d = 0.0f64;
    for j in 0..a.ncols() {
        for i in 0..a.nrows() {
            d = d.max((a[(i, j)] - b[(i, j)]).abs());
        }
    }
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gemm_matches_reference((m, n, k) in dims3(), seed in 0u64..1000) {
        let a = Matrix::from_fn(m, k, |i, j| ((i * 31 + j * 17 + seed as usize) % 13) as f64 - 6.0);
        let b = Matrix::from_fn(k, n, |i, j| ((i * 7 + j * 3 + seed as usize) % 11) as f64 - 5.0);
        let mut c1 = Matrix::from_fn(m, n, |i, j| (i + j) as f64);
        let mut c2 = c1.clone();
        gemm_ref(Op::NoTrans, Op::NoTrans, 1.5, a.as_ref(), b.as_ref(), -0.5, c1.as_mut());
        gemm(Op::NoTrans, Op::NoTrans, 1.5, a.as_ref(), b.as_ref(), -0.5, c2.as_mut());
        prop_assert!(max_abs_diff(&c1, &c2) < 1e-10);
    }

    #[test]
    fn gemm_identity_is_noop(a in (1usize..15, 1usize..15).prop_flat_map(|(m, n)| mat(m, n))) {
        let m = a.nrows();
        let id = Matrix::<f64>::identity(m, m);
        let mut c = Matrix::zeros(m, a.ncols());
        gemm(Op::NoTrans, Op::NoTrans, 1.0, id.as_ref(), a.as_ref(), 0.0, c.as_mut());
        prop_assert!(max_abs_diff(&c, &a) < 1e-13);
    }

    #[test]
    fn gemm_is_linear_in_alpha(a in mat(9, 7), b in mat(7, 5), alpha in -3.0f64..3.0) {
        let mut c1 = Matrix::zeros(9, 5);
        let mut c2 = Matrix::zeros(9, 5);
        gemm(Op::NoTrans, Op::NoTrans, alpha, a.as_ref(), b.as_ref(), 0.0, c1.as_mut());
        gemm(Op::NoTrans, Op::NoTrans, 1.0, a.as_ref(), b.as_ref(), 0.0, c2.as_mut());
        scale(alpha, c2.as_mut());
        prop_assert!(max_abs_diff(&c1, &c2) < 1e-9);
    }

    #[test]
    fn transpose_product_identity(a in mat(8, 6), b in mat(6, 4)) {
        // (A B)^T == B^T A^T
        let mut ab = Matrix::zeros(8, 4);
        gemm(Op::NoTrans, Op::NoTrans, 1.0, a.as_ref(), b.as_ref(), 0.0, ab.as_mut());
        let abt = ab.transposed(Op::Trans);
        let mut btat = Matrix::zeros(4, 8);
        gemm(Op::Trans, Op::Trans, 1.0, b.as_ref(), a.as_ref(), 0.0, btat.as_mut());
        prop_assert!(max_abs_diff(&abt, &btat) < 1e-10);
    }

    #[test]
    fn norm_one_is_inf_of_transpose(a in (1usize..15, 1usize..15).prop_flat_map(|(m, n)| mat(m, n))) {
        let at = a.transposed(Op::Trans);
        let n1: f64 = norm(Norm::One, a.as_ref());
        let ninf: f64 = norm(Norm::Inf, at.as_ref());
        prop_assert!((n1 - ninf).abs() < 1e-12);
    }

    #[test]
    fn norm_scaling_homogeneous(a in mat(6, 6), s in 0.0f64..5.0) {
        let mut b = a.clone();
        scale(s, b.as_mut());
        for which in [Norm::One, Norm::Inf, Norm::Fro, Norm::Max] {
            let na: f64 = norm(which, a.as_ref());
            let nb: f64 = norm(which, b.as_ref());
            prop_assert!((nb - s * na).abs() <= 1e-10 * (1.0 + na), "{which:?}");
        }
    }

    #[test]
    fn trsm_then_trmm_roundtrip(n in 1usize..12, nrhs in 1usize..8, seed in 0u64..100) {
        // L X = B, then L X should reproduce B
        let l = Matrix::from_fn(n, n, |i, j| {
            if i > j {
                (((i * 13 + j * 7 + seed as usize) % 9) as f64 - 4.0) * 0.2
            } else if i == j {
                2.0 + (i % 3) as f64
            } else {
                0.0
            }
        });
        let b0 = Matrix::from_fn(n, nrhs, |i, j| (i * 2 + j) as f64 - 3.0);
        let mut x = b0.clone();
        trsm(Side::Left, Uplo::Lower, Op::NoTrans, Diag::NonUnit, 1.0, l.as_ref(), x.as_mut());
        let mut recon = Matrix::zeros(n, nrhs);
        gemm(Op::NoTrans, Op::NoTrans, 1.0, l.as_ref(), x.as_ref(), 0.0, recon.as_mut());
        prop_assert!(max_abs_diff(&recon, &b0) < 1e-8);
    }

    #[test]
    fn herk_triangle_agrees_with_full_product(n in 1usize..12, k in 1usize..12) {
        let a = Matrix::from_fn(k, n, |i, j| ((i * 5 + j * 11) % 7) as f64 - 3.0);
        let mut c = Matrix::zeros(n, n);
        herk(Uplo::Lower, Op::Trans, 1.0, a.as_ref(), 0.0, c.as_mut());
        let mut full = Matrix::zeros(n, n);
        gemm(Op::Trans, Op::NoTrans, 1.0, a.as_ref(), a.as_ref(), 0.0, full.as_mut());
        for j in 0..n {
            for i in j..n {
                prop_assert!((c[(i, j)] - full[(i, j)]).abs() < 1e-10);
            }
        }
        // Gram matrix diagonal is nonnegative
        for j in 0..n {
            prop_assert!(c[(j, j)] >= -1e-12);
        }
    }

    #[test]
    fn add_is_affine(a in mat(5, 5), b in mat(5, 5), alpha in -2.0f64..2.0, beta in -2.0f64..2.0) {
        let mut out = b.clone();
        add(alpha, a.as_ref(), beta, out.as_mut());
        for j in 0..5 {
            for i in 0..5 {
                let expect = alpha * a[(i, j)] + beta * b[(i, j)];
                prop_assert!((out[(i, j)] - expect).abs() < 1e-12);
            }
        }
    }
}

// ---- packed-path conformance: every Op combo, every scalar type ----

use polar_scalar::{Complex32, Complex64, Real, Scalar};

/// Deterministic pseudo-random matrix for any scalar type.
fn smat<S: Scalar>(m: usize, n: usize, seed: u64) -> Matrix<S> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    };
    Matrix::from_fn(m, n, |_, _| {
        let re = next();
        let im = next();
        S::from_parts(S::Real::from_f64(re), S::Real::from_f64(im))
    })
}

/// Production `gemm` vs the reference triple loop on an (m, n, k)
/// problem with the given op pair, including nontrivial alpha/beta.
fn check_gemm_vs_ref<S: Scalar>(m: usize, n: usize, k: usize, op_a: Op, op_b: Op, seed: u64) {
    let (ar, ac) = if op_a == Op::NoTrans { (m, k) } else { (k, m) };
    let (br, bc) = if op_b == Op::NoTrans { (k, n) } else { (n, k) };
    let a = smat::<S>(ar, ac, seed);
    let b = smat::<S>(br, bc, seed.wrapping_add(1));
    let alpha = S::from_parts(S::Real::from_f64(1.25), S::Real::from_f64(-0.5));
    let beta = S::from_parts(S::Real::from_f64(-0.75), S::Real::from_f64(0.25));
    let mut c1 = smat::<S>(m, n, seed.wrapping_add(2));
    let mut c2 = c1.clone();
    gemm_ref(op_a, op_b, alpha, a.as_ref(), b.as_ref(), beta, c1.as_mut());
    gemm(op_a, op_b, alpha, a.as_ref(), b.as_ref(), beta, c2.as_mut());
    // k+1 rounding steps, generous headroom for f32
    let tol = S::Real::from_f64(2e-4);
    for j in 0..n {
        for i in 0..m {
            let d = (c1[(i, j)] - c2[(i, j)]).abs();
            assert!(
                d <= tol,
                "{} ({i},{j}): {op_a:?}x{op_b:?} m={m} n={n} k={k} diff={d:?}",
                S::TYPE_TAG
            );
        }
    }
}

fn ops_for<S: Scalar>() -> &'static [Op] {
    if S::IS_COMPLEX {
        &[Op::NoTrans, Op::Trans, Op::ConjTrans]
    } else {
        &[Op::NoTrans, Op::Trans]
    }
}

fn check_all_ops<S: Scalar>(m: usize, n: usize, k: usize, seed: u64) {
    for &op_a in ops_for::<S>() {
        for &op_b in ops_for::<S>() {
            check_gemm_vs_ref::<S>(m, n, k, op_a, op_b, seed);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn gemm_all_ops_f64((m, n, k) in dims3(), seed in 0u64..1000) {
        check_all_ops::<f64>(m, n, k, seed);
    }

    #[test]
    fn gemm_all_ops_f32((m, n, k) in dims3(), seed in 0u64..1000) {
        check_all_ops::<f32>(m, n, k, seed);
    }

    #[test]
    fn gemm_all_ops_c64((m, n, k) in dims3(), seed in 0u64..1000) {
        check_all_ops::<Complex64>(m, n, k, seed);
    }

    #[test]
    fn gemm_all_ops_c32((m, n, k) in dims3(), seed in 0u64..1000) {
        check_all_ops::<Complex32>(m, n, k, seed);
    }

    #[test]
    fn gemm_strided_views_match_ref(
        (m, n, k) in (1usize..12, 1usize..12, 1usize..12),
        (ri, rj) in (0usize..4, 0usize..4),
        seed in 0u64..1000,
    ) {
        // operands are interior windows of larger matrices, so the packing
        // routines see a leading dimension larger than the row count
        let big_a = smat::<f64>(m + ri + 3, k + rj + 3, seed);
        let big_b = smat::<f64>(k + ri + 3, n + rj + 3, seed + 7);
        let a = big_a.view(ri, rj, m, k);
        let b = big_b.view(ri, rj, k, n);
        let mut big_c = smat::<f64>(m + 2, n + 2, seed + 11);
        let mut expect = Matrix::zeros(m, n);
        {
            let c0 = big_c.view(1, 1, m, n).to_owned();
            expect.as_mut().copy_from(c0.as_ref());
        }
        gemm_ref(Op::NoTrans, Op::NoTrans, 2.0, a.to_owned().as_ref(), b.to_owned().as_ref(), -1.0, expect.as_mut());
        gemm(Op::NoTrans, Op::NoTrans, 2.0, a, b, -1.0, big_c.view_mut(1, 1, m, n));
        let got = big_c.view(1, 1, m, n).to_owned();
        prop_assert!(max_abs_diff(&got, &expect) < 1e-10);
    }
}

#[test]
fn gemm_degenerate_shapes() {
    // empty, scalar, vector-like, and prime shapes across all types,
    // exercising fringe tiles and the zero-size early outs
    let shapes = [
        (0usize, 5usize, 3usize),
        (5, 0, 3),
        (4, 4, 0),
        (1, 1, 1),
        (7, 11, 13),
        (31, 29, 37),
        (17, 1, 5),
        (1, 19, 3),
    ];
    for &(m, n, k) in &shapes {
        check_all_ops::<f32>(m, n, k, 21);
        check_all_ops::<f64>(m, n, k, 22);
        check_all_ops::<Complex32>(m, n, k, 23);
        check_all_ops::<Complex64>(m, n, k, 24);
    }
}

#[test]
fn gemm_accepts_views_with_offset() {
    // kernels must honor ld != rows (views into larger matrices)
    let big = Matrix::<f64>::from_fn(10, 10, |i, j| (i * 10 + j) as f64);
    let a = big.view(2, 3, 4, 4);
    let b = big.view(1, 1, 4, 2);
    let mut c = Matrix::zeros(4, 2);
    gemm(Op::NoTrans, Op::NoTrans, 1.0, a, b, 0.0, c.as_mut());
    let mut expect = Matrix::zeros(4, 2);
    let ao = a.to_owned();
    let bo = b.to_owned();
    gemm_ref(Op::NoTrans, Op::NoTrans, 1.0, ao.as_ref(), bo.as_ref(), 0.0, expect.as_mut());
    assert!(max_abs_diff(&c, &expect) < 1e-12);
}

#[allow(dead_code)]
fn unused_matmut_lint_guard(_: MatMut<'_, f64>) {}

// ---- batch-major packed gemm: parity with the reference loop ----

use polar_blas::gemm_batched_packed;
use polar_matrix::BatchedDense;

/// `gemm_batched_packed` vs a per-entry `gemm_ref` loop on `batch`
/// independent (m, n, k) products with the given op pair and nontrivial
/// alpha/beta. Covers every scalar type the microkernels dispatch on.
fn check_batched_vs_ref<S: Scalar>(
    m: usize,
    n: usize,
    k: usize,
    batch: usize,
    op_a: Op,
    op_b: Op,
    seed: u64,
) {
    let (ar, ac) = if op_a == Op::NoTrans { (m, k) } else { (k, m) };
    let (br, bc) = if op_b == Op::NoTrans { (k, n) } else { (n, k) };
    let mats_a: Vec<Matrix<S>> =
        (0..batch).map(|e| smat::<S>(ar, ac, seed.wrapping_add(3 * e as u64))).collect();
    let mats_b: Vec<Matrix<S>> =
        (0..batch).map(|e| smat::<S>(br, bc, seed.wrapping_add(3 * e as u64 + 1))).collect();
    let mats_c: Vec<Matrix<S>> =
        (0..batch).map(|e| smat::<S>(m, n, seed.wrapping_add(3 * e as u64 + 2))).collect();
    let a = BatchedDense::from_matrices(&mats_a);
    let b = BatchedDense::from_matrices(&mats_b);
    let mut c = BatchedDense::from_matrices(&mats_c);
    let alpha = S::from_parts(S::Real::from_f64(1.25), S::Real::from_f64(-0.5));
    let beta = S::from_parts(S::Real::from_f64(-0.75), S::Real::from_f64(0.25));
    gemm_batched_packed(
        op_a,
        op_b,
        alpha,
        a.as_batched_ref(),
        b.as_batched_ref(),
        beta,
        c.as_batched_mut(),
    );
    let tol = S::Real::from_f64(2e-4); // f32 headroom; f64 lands ~1e-13
    for (e, c0) in mats_c.iter().enumerate() {
        let mut want = c0.clone();
        gemm_ref(op_a, op_b, alpha, mats_a[e].as_ref(), mats_b[e].as_ref(), beta, want.as_mut());
        for j in 0..n {
            for i in 0..m {
                let d = (want[(i, j)] - c.mat(e).at(i, j)).abs();
                assert!(
                    d <= tol,
                    "{} batch entry {e} ({i},{j}): {op_a:?}x{op_b:?} m={m} n={n} k={k} batch={batch} diff={d:?}",
                    S::TYPE_TAG
                );
            }
        }
    }
}

fn check_batched_all_ops<S: Scalar>(m: usize, n: usize, k: usize, batch: usize, seed: u64) {
    for &op_a in ops_for::<S>() {
        for &op_b in ops_for::<S>() {
            check_batched_vs_ref::<S>(m, n, k, batch, op_a, op_b, seed);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn gemm_batched_packed_matches_reference(
        (m, n, k) in (1usize..40, 1usize..40, 1usize..40),
        batch in 1usize..7,
        seed in 0u64..1000,
    ) {
        check_batched_all_ops::<f32>(m, n, k, batch, seed);
        check_batched_all_ops::<f64>(m, n, k, batch, seed.wrapping_add(7));
        check_batched_all_ops::<Complex32>(m, n, k, batch, seed.wrapping_add(13));
        check_batched_all_ops::<Complex64>(m, n, k, batch, seed.wrapping_add(19));
    }
}

#[test]
fn gemm_batched_packed_large_entries_take_fallback_path() {
    // entry shapes past the fast path's blocking caps (m > MC, and a k
    // deep enough to cross KC) must still match the reference loop —
    // these route through the hoisted per-entry packed fallback
    for &(m, n, k) in &[(160usize, 24usize, 32usize), (40, 30, 300), (130, 48, 257)] {
        check_batched_all_ops::<f64>(m, n, k, 3, 77);
        check_batched_all_ops::<Complex64>(m, n, k, 2, 78);
    }
}
