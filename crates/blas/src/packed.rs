//! BLIS-style packed GEMM: cache blocking + register-blocked microkernel.
//!
//! One sequential call computes `C := alpha * op(A) * op(B) + beta * C`
//! through the classic five-loop structure:
//!
//! ```text
//! for jc in 0..n step NC            // B block   -> L3
//!   for pc in 0..k step KC          // rank-KC update
//!     pack op(B)[pc.., jc..] into NR-column micro-panels   (bpack)
//!     for ic in 0..m step MC        // A block   -> L2
//!       pack op(A)[ic.., pc..] into MR-row micro-panels    (apack)
//!       for jr, ir over micro-tiles:
//!         microkernel: MR x NR register tile over KC       (C -> registers)
//! ```
//!
//! Transposition and conjugation are applied *while packing*, so the
//! microkernel is op-free: it streams two contiguous panels and issues
//! nothing but fused multiply-adds. Fringe tiles are zero-padded in the
//! packs and spilled through a stack temporary on writeback.
//!
//! The microkernel is selected at runtime: hand-written AVX-512/AVX2+FMA
//! kernels for `f64`/`f32` when the CPU supports them (checked once), and
//! a const-generic autovectorized kernel otherwise (always for complex).

use crate::params::{gemm_params, MAX_MR, MAX_NR};
use polar_matrix::{MatMut, MatRef, Op};
use polar_scalar::{Complex64, Scalar};
use std::any::TypeId;

/// Microkernel register shape `(MR, NR)` for scalar type `S`, honoring
/// env overrides, else matching the best SIMD kernel the CPU offers.
pub(crate) fn tile_shape<S: Scalar>() -> (usize, usize) {
    let p = gemm_params();
    if let (Some(mr), Some(nr)) = (p.mr_override, p.nr_override) {
        return (mr, nr);
    }
    let t = TypeId::of::<S>();
    let (mr, nr) = if t == TypeId::of::<f64>() {
        if cpu_has_avx512() {
            (16, 8)
        } else if cpu_has_avx2_fma() {
            (8, 6)
        } else {
            (8, 4)
        }
    } else if t == TypeId::of::<f32>() {
        if cpu_has_avx2_fma() {
            (16, 6)
        } else {
            (8, 4)
        }
    } else {
        // complex: each accumulator is two reals; keep the tile small
        (4, 4)
    };
    (p.mr_override.unwrap_or(mr), p.nr_override.unwrap_or(nr))
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Kern {
    Generic,
    #[cfg(target_arch = "x86_64")]
    F64Avx512,
    #[cfg(target_arch = "x86_64")]
    F64Avx2,
    #[cfg(target_arch = "x86_64")]
    F32Avx2,
    #[cfg(target_arch = "x86_64")]
    Z64Avx2,
}

#[cfg(target_arch = "x86_64")]
fn cpu_has_avx2_fma() -> bool {
    static FLAG: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FLAG.get_or_init(|| {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    })
}

#[cfg(target_arch = "x86_64")]
fn cpu_has_avx512() -> bool {
    static FLAG: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FLAG.get_or_init(|| std::arch::is_x86_feature_detected!("avx512f"))
}

#[cfg(not(target_arch = "x86_64"))]
fn cpu_has_avx2_fma() -> bool {
    false
}

#[cfg(not(target_arch = "x86_64"))]
fn cpu_has_avx512() -> bool {
    false
}

pub(crate) fn select_kernel<S: Scalar>(mr: usize, nr: usize) -> Kern {
    #[cfg(target_arch = "x86_64")]
    {
        let t = TypeId::of::<S>();
        if t == TypeId::of::<f64>() {
            if mr == 16 && nr == 8 && cpu_has_avx512() {
                return Kern::F64Avx512;
            }
            if mr == 8 && nr == 6 && cpu_has_avx2_fma() {
                return Kern::F64Avx2;
            }
        } else if t == TypeId::of::<f32>() && mr == 16 && nr == 6 && cpu_has_avx2_fma() {
            return Kern::F32Avx2;
        } else if t == TypeId::of::<Complex64>() && mr == 4 && nr == 4 && cpu_has_avx2_fma() {
            return Kern::Z64Avx2;
        }
    }
    let _ = (mr, nr);
    Kern::Generic
}

/// Sequential packed GEMM over one block of `C`. Dimension compatibility
/// is the caller's responsibility (checked in `gemm`).
pub(crate) fn gemm_packed<S: Scalar>(
    op_a: Op,
    op_b: Op,
    alpha: S,
    a: MatRef<'_, S>,
    b: MatRef<'_, S>,
    beta: S,
    mut c: MatMut<'_, S>,
) {
    let m = c.nrows();
    let n = c.ncols();
    let k = match op_a {
        Op::NoTrans => a.ncols(),
        _ => a.nrows(),
    };
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 || alpha == S::ZERO {
        scale_block(&mut c, beta);
        return;
    }

    let p = gemm_params();
    let (mr, nr) = tile_shape::<S>();
    let kc = p.kc.min(k);
    let mc = p.mc.min(m);
    let nc = p.nc.min(n);

    let mut apack = vec![S::ZERO; mc.next_multiple_of(mr) * kc];
    let mut bpack = vec![S::ZERO; nc.next_multiple_of(nr) * kc];
    gemm_packed_with(op_a, op_b, alpha, a, b, beta, c, &mut apack, &mut bpack);
}

/// The five-loop body of [`gemm_packed`] over caller-owned pack buffers
/// (`apack` >= `min(mc, m).next_multiple_of(mr) * min(kc, k)` elements,
/// `bpack` likewise with `nc`/`nr`), so batch drivers amortize the buffer
/// allocation across many calls instead of paying it per entry.
#[allow(clippy::too_many_arguments)] // internal blocked-gemm plumbing
pub(crate) fn gemm_packed_with<S: Scalar>(
    op_a: Op,
    op_b: Op,
    alpha: S,
    a: MatRef<'_, S>,
    b: MatRef<'_, S>,
    beta: S,
    mut c: MatMut<'_, S>,
    apack: &mut [S],
    bpack: &mut [S],
) {
    let m = c.nrows();
    let n = c.ncols();
    let k = match op_a {
        Op::NoTrans => a.ncols(),
        _ => a.nrows(),
    };
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 || alpha == S::ZERO {
        scale_block(&mut c, beta);
        return;
    }

    let p = gemm_params();
    let (mr, nr) = tile_shape::<S>();
    let kern = select_kernel::<S>(mr, nr);
    let kc = p.kc.min(k);
    let mc = p.mc.min(m);
    let nc = p.nc.min(n);

    for jc in (0..n).step_by(nc) {
        let ncb = nc.min(n - jc);
        for pc in (0..k).step_by(kc) {
            let kcb = kc.min(k - pc);
            // beta applies on the first rank-kc update only; later
            // updates accumulate
            let beta_eff = if pc == 0 { beta } else { S::ONE };
            pack_b(op_b, b, pc, jc, kcb, ncb, nr, bpack);
            for ic in (0..m).step_by(mc) {
                let mcb = mc.min(m - ic);
                pack_a(op_a, a, ic, pc, mcb, kcb, mr, apack);
                let cblk = c.rb().submatrix(ic, jc, mcb, ncb);
                macro_kernel(kern, alpha, apack, bpack, beta_eff, cblk, kcb, mr, nr);
            }
        }
    }
}

/// Parallel packed GEMM: the same five-loop structure as [`gemm_packed`],
/// but the MC-block grid of each rank-KC update fans out over the pool.
/// The `op(B)` micro-panels are packed *once* per `(jc, pc)` and shared
/// read-only by every worker; each MC block packs its own A panel and
/// writes a disjoint row stripe of `C`. The per-element operation order is
/// identical to the sequential path regardless of thread count, so results
/// are bitwise reproducible (deterministic replay included).
pub(crate) fn gemm_packed_par<S: Scalar>(
    op_a: Op,
    op_b: Op,
    alpha: S,
    a: MatRef<'_, S>,
    b: MatRef<'_, S>,
    beta: S,
    mut c: MatMut<'_, S>,
) {
    let m = c.nrows();
    let n = c.ncols();
    let k = match op_a {
        Op::NoTrans => a.ncols(),
        _ => a.nrows(),
    };
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 || alpha == S::ZERO {
        scale_block(&mut c, beta);
        return;
    }

    let p = gemm_params();
    let (mr, nr) = tile_shape::<S>();
    let kern = select_kernel::<S>(mr, nr);
    let kc = p.kc.min(k);
    let mc = p.mc.min(m);
    let nc = p.nc.min(n);

    let mut bpack = vec![S::ZERO; nc.next_multiple_of(nr) * kc];

    for jc in (0..n).step_by(nc) {
        let ncb = nc.min(n - jc);
        for pc in (0..k).step_by(kc) {
            let kcb = kc.min(k - pc);
            let beta_eff = if pc == 0 { beta } else { S::ONE };
            pack_b(op_b, b, pc, jc, kcb, ncb, nr, &mut bpack);
            let cband = c.rb().submatrix(0, jc, m, ncb);
            ic_grid(kern, op_a, alpha, a, &bpack, beta_eff, cband, 0, pc, kcb, mc, mr, nr);
        }
    }
}

/// Fan the MC-block row grid of one rank-KC update out over the pool via a
/// recursive join tree. Each leaf is exactly one sequential `ic` iteration
/// of [`gemm_packed`]: pack the A block, sweep the micro-tiles.
#[allow(clippy::too_many_arguments)] // internal blocked-gemm plumbing
fn ic_grid<S: Scalar>(
    kern: Kern,
    op_a: Op,
    alpha: S,
    a: MatRef<'_, S>,
    bpack: &[S],
    beta: S,
    c: MatMut<'_, S>,
    row0: usize,
    pc: usize,
    kcb: usize,
    mc: usize,
    mr: usize,
    nr: usize,
) {
    let rows = c.nrows();
    if rows <= mc {
        let mut apack = vec![S::ZERO; rows.next_multiple_of(mr) * kcb];
        pack_a(op_a, a, row0, pc, rows, kcb, mr, &mut apack);
        macro_kernel(kern, alpha, &apack, bpack, beta, c, kcb, mr, nr);
        return;
    }
    let half = (rows.div_ceil(mc) / 2) * mc;
    let (c1, c2) = c.split_at_row(half);
    rayon::join(
        || ic_grid(kern, op_a, alpha, a, bpack, beta, c1, row0, pc, kcb, mc, mr, nr),
        || ic_grid(kern, op_a, alpha, a, bpack, beta, c2, row0 + half, pc, kcb, mc, mr, nr),
    );
}

/// `C := beta * C` (beta = 0 overwrites, LAPACK semantics).
pub(crate) fn scale_block<S: Scalar>(c: &mut MatMut<'_, S>, beta: S) {
    if beta == S::ONE {
        return;
    }
    for j in 0..c.ncols() {
        let col = c.col_mut(j);
        if beta == S::ZERO {
            col.fill(S::ZERO);
        } else {
            for x in col {
                *x *= beta;
            }
        }
    }
}

/// Pack `op(A)[i0..i0+mcb, p0..p0+kcb]` into MR-row micro-panels:
/// `buf[ip*mr*kcb + p*mr + r]`, zero-padding partial panels.
#[allow(clippy::too_many_arguments)] // internal blocked-gemm plumbing
pub(crate) fn pack_a<S: Scalar>(
    op: Op,
    a: MatRef<'_, S>,
    i0: usize,
    p0: usize,
    mcb: usize,
    kcb: usize,
    mr: usize,
    buf: &mut [S],
) {
    let panels = mcb.div_ceil(mr);
    for ip in 0..panels {
        let r0 = ip * mr;
        let rows = mr.min(mcb - r0);
        let dst = &mut buf[ip * mr * kcb..][..mr * kcb];
        match op {
            Op::NoTrans => {
                // rows of op(A) are rows of A: each k-step is a contiguous
                // chunk of one A column
                for (pl, d) in dst.chunks_exact_mut(mr).take(kcb).enumerate() {
                    let col = &a.col(p0 + pl)[i0 + r0..i0 + r0 + rows];
                    d[..rows].copy_from_slice(col);
                    d[rows..].fill(S::ZERO);
                }
            }
            Op::Trans | Op::ConjTrans => {
                // row i of op(A) is column i of A: stream each column once
                let conj = op == Op::ConjTrans;
                if rows < mr {
                    dst.fill(S::ZERO);
                }
                for r in 0..rows {
                    let col = &a.col(i0 + r0 + r)[p0..p0 + kcb];
                    if conj {
                        for (pl, &v) in col.iter().enumerate() {
                            dst[pl * mr + r] = v.conj();
                        }
                    } else {
                        for (pl, &v) in col.iter().enumerate() {
                            dst[pl * mr + r] = v;
                        }
                    }
                }
            }
        }
    }
}

/// Pack `op(B)[p0..p0+kcb, j0..j0+ncb]` into NR-column micro-panels:
/// `buf[jp*nr*kcb + p*nr + c]`, zero-padding partial panels.
#[allow(clippy::too_many_arguments)] // internal blocked-gemm plumbing
pub(crate) fn pack_b<S: Scalar>(
    op: Op,
    b: MatRef<'_, S>,
    p0: usize,
    j0: usize,
    kcb: usize,
    ncb: usize,
    nr: usize,
    buf: &mut [S],
) {
    let panels = ncb.div_ceil(nr);
    match op {
        Op::NoTrans => {
            for jp in 0..panels {
                let c0 = jp * nr;
                let cols = nr.min(ncb - c0);
                let dst = &mut buf[jp * nr * kcb..][..nr * kcb];
                if cols < nr {
                    dst.fill(S::ZERO);
                }
                for cj in 0..cols {
                    let col = &b.col(j0 + c0 + cj)[p0..p0 + kcb];
                    for (pl, &v) in col.iter().enumerate() {
                        dst[pl * nr + cj] = v;
                    }
                }
            }
        }
        Op::Trans | Op::ConjTrans => {
            let conj = op == Op::ConjTrans;
            // zero the ragged tail panel once, then scatter real data
            let tail = ncb % nr;
            if tail != 0 {
                let dst = &mut buf[(panels - 1) * nr * kcb..][..nr * kcb];
                for pl in 0..kcb {
                    dst[pl * nr + tail..(pl + 1) * nr].fill(S::ZERO);
                }
            }
            // row p of op(B) is column p of B: stream each column once
            for pl in 0..kcb {
                let col = &b.col(p0 + pl)[j0..j0 + ncb];
                for (cj, &v) in col.iter().enumerate() {
                    let jp = cj / nr;
                    let cc = cj % nr;
                    buf[jp * nr * kcb + pl * nr + cc] = if conj { v.conj() } else { v };
                }
            }
        }
    }
}

/// Run the microkernel over every MR x NR tile of one packed block pair.
#[allow(clippy::too_many_arguments)] // internal blocked-gemm plumbing
pub(crate) fn macro_kernel<S: Scalar>(
    kern: Kern,
    alpha: S,
    apack: &[S],
    bpack: &[S],
    beta: S,
    mut c: MatMut<'_, S>,
    kcb: usize,
    mr: usize,
    nr: usize,
) {
    let mcb = c.nrows();
    let ncb = c.ncols();
    let mut tmp = [S::ZERO; MAX_MR * MAX_NR];
    for jp in 0..ncb.div_ceil(nr) {
        let j0 = jp * nr;
        let cols = nr.min(ncb - j0);
        let bpanel = &bpack[jp * nr * kcb..][..nr * kcb];
        for ip in 0..mcb.div_ceil(mr) {
            let i0 = ip * mr;
            let rows = mr.min(mcb - i0);
            let apanel = &apack[ip * mr * kcb..][..mr * kcb];
            if rows == mr && cols == nr {
                let tile = c.rb().submatrix(i0, j0, mr, nr);
                micro_dispatch(kern, kcb, apanel, bpanel, alpha, beta, tile, mr, nr);
            } else {
                // fringe: full-width kernel into a stack tile, then merge
                // the valid region
                let t = MatMut::from_slice(&mut tmp[..mr * nr], mr, nr, mr);
                micro_dispatch(kern, kcb, apanel, bpanel, alpha, S::ZERO, t, mr, nr);
                for j in 0..cols {
                    let cj = &mut c.col_mut(j0 + j)[i0..i0 + rows];
                    let tj = &tmp[j * mr..j * mr + rows];
                    if beta == S::ZERO {
                        cj.copy_from_slice(tj);
                    } else if beta == S::ONE {
                        for (x, &t) in cj.iter_mut().zip(tj) {
                            *x += t;
                        }
                    } else {
                        for (x, &t) in cj.iter_mut().zip(tj) {
                            *x = t + beta * *x;
                        }
                    }
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)] // internal blocked-gemm plumbing
fn micro_dispatch<S: Scalar>(
    kern: Kern,
    kc: usize,
    ap: &[S],
    bp: &[S],
    alpha: S,
    beta: S,
    mut c: MatMut<'_, S>,
    mr: usize,
    nr: usize,
) {
    #[cfg(target_arch = "x86_64")]
    match kern {
        Kern::F64Avx512 => {
            // SAFETY: kern selection guarantees S == f64, avx512f support,
            // tile shape 16x8, and packed panels of >= 16*kc / 8*kc elems.
            unsafe {
                let cp = col_ptrs::<S, f64>(&mut c, 8);
                x86::micro_f64_avx512_16x8(
                    kc,
                    ap.as_ptr() as *const f64,
                    bp.as_ptr() as *const f64,
                    alpha_as(alpha),
                    alpha_as(beta),
                    cp,
                );
            }
            return;
        }
        Kern::F64Avx2 => {
            // SAFETY: as above with avx2+fma and tile shape 8x6.
            unsafe {
                let cp = col_ptrs::<S, f64>(&mut c, 6);
                x86::micro_f64_avx2_8x6(
                    kc,
                    ap.as_ptr() as *const f64,
                    bp.as_ptr() as *const f64,
                    alpha_as(alpha),
                    alpha_as(beta),
                    cp,
                );
            }
            return;
        }
        Kern::F32Avx2 => {
            // SAFETY: as above with S == f32 and tile shape 16x6.
            unsafe {
                let cp = col_ptrs::<S, f32>(&mut c, 6);
                x86::micro_f32_avx2_16x6(
                    kc,
                    ap.as_ptr() as *const f32,
                    bp.as_ptr() as *const f32,
                    alpha_as(alpha),
                    alpha_as(beta),
                    cp,
                );
            }
            return;
        }
        Kern::Z64Avx2 => {
            // SAFETY: kern selection guarantees S == Complex64 (repr(C)
            // [re, im] pairs), avx2+fma support, tile shape 4x4, and packed
            // panels of >= 4*kc complex elements each.
            unsafe {
                let cp = col_ptrs::<S, f64>(&mut c, 4);
                x86::micro_z64_avx2_4x4(
                    kc,
                    ap.as_ptr() as *const f64,
                    bp.as_ptr() as *const f64,
                    alpha_as(alpha),
                    alpha_as(beta),
                    cp,
                );
            }
            return;
        }
        Kern::Generic => {}
    }
    let _ = kern;
    micro_generic_dispatch(kc, ap, bp, alpha, beta, c, mr, nr);
}

/// Reinterpret a scalar known (via `select_kernel`) to be of real type `T`.
#[cfg(target_arch = "x86_64")]
fn alpha_as<S: Scalar, T: Copy + 'static>(x: S) -> T {
    debug_assert_eq!(TypeId::of::<S>(), TypeId::of::<T>());
    // SAFETY: same type by the kernel-selection invariant.
    unsafe { *(&x as *const S as *const T) }
}

/// Column base pointers of an MR x NR tile, reinterpreted as `T`.
///
/// # Safety
/// `S` must be `T` (guaranteed by kernel selection) and the tile must
/// have at least `n` columns.
#[cfg(target_arch = "x86_64")]
unsafe fn col_ptrs<S: Scalar, T>(c: &mut MatMut<'_, S>, n: usize) -> [*mut T; MAX_NR] {
    let mut p = [std::ptr::null_mut(); MAX_NR];
    for (j, slot) in p.iter_mut().enumerate().take(n) {
        *slot = c.col_mut(j).as_mut_ptr() as *mut T;
    }
    p
}

#[allow(clippy::too_many_arguments)] // internal blocked-gemm plumbing
fn micro_generic_dispatch<S: Scalar>(
    kc: usize,
    ap: &[S],
    bp: &[S],
    alpha: S,
    beta: S,
    c: MatMut<'_, S>,
    mr: usize,
    nr: usize,
) {
    match (mr, nr) {
        (4, 4) => micro_generic::<S, 4, 4>(kc, ap, bp, alpha, beta, c),
        (8, 4) => micro_generic::<S, 8, 4>(kc, ap, bp, alpha, beta, c),
        (8, 6) => micro_generic::<S, 8, 6>(kc, ap, bp, alpha, beta, c),
        (8, 8) => micro_generic::<S, 8, 8>(kc, ap, bp, alpha, beta, c),
        (16, 6) => micro_generic::<S, 16, 6>(kc, ap, bp, alpha, beta, c),
        (16, 8) => micro_generic::<S, 16, 8>(kc, ap, bp, alpha, beta, c),
        _ => micro_dyn(kc, ap, bp, alpha, beta, c, mr, nr),
    }
}

/// Register-blocked microkernel with compile-time tile shape; the fixed
/// trip counts let the compiler keep `acc` in vector registers.
fn micro_generic<S: Scalar, const MR: usize, const NR: usize>(
    kc: usize,
    ap: &[S],
    bp: &[S],
    alpha: S,
    beta: S,
    mut c: MatMut<'_, S>,
) {
    let mut acc = [[S::ZERO; MR]; NR];
    for (a, b) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)).take(kc) {
        for (accj, &bj) in acc.iter_mut().zip(b) {
            for (x, &ai) in accj.iter_mut().zip(a) {
                *x += ai * bj;
            }
        }
    }
    for (j, accj) in acc.iter().enumerate() {
        let col = &mut c.col_mut(j)[..MR];
        if beta == S::ZERO {
            for (x, &v) in col.iter_mut().zip(accj) {
                *x = alpha * v;
            }
        } else {
            for (x, &v) in col.iter_mut().zip(accj) {
                *x = alpha * v + beta * *x;
            }
        }
    }
}

/// Fallback for env-forced tile shapes with no monomorphized kernel.
#[allow(clippy::too_many_arguments)] // internal blocked-gemm plumbing
fn micro_dyn<S: Scalar>(
    kc: usize,
    ap: &[S],
    bp: &[S],
    alpha: S,
    beta: S,
    mut c: MatMut<'_, S>,
    mr: usize,
    nr: usize,
) {
    debug_assert!(mr <= MAX_MR && nr <= MAX_NR);
    let mut acc = [S::ZERO; MAX_MR * MAX_NR];
    for (a, b) in ap.chunks_exact(mr).zip(bp.chunks_exact(nr)).take(kc) {
        for (j, &bj) in b.iter().enumerate() {
            let row = &mut acc[j * mr..(j + 1) * mr];
            for (x, &ai) in row.iter_mut().zip(a) {
                *x += ai * bj;
            }
        }
    }
    for j in 0..nr {
        let col = &mut c.col_mut(j)[..mr];
        let accj = &acc[j * mr..(j + 1) * mr];
        if beta == S::ZERO {
            for (x, &v) in col.iter_mut().zip(accj) {
                *x = alpha * v;
            }
        } else {
            for (x, &v) in col.iter_mut().zip(accj) {
                *x = alpha * v + beta * *x;
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! Hand-scheduled SIMD microkernels. Each streams zero-padded packed
    //! panels (`ap`: MR reals per k-step, `bp`: NR reals per k-step) and
    //! updates an MR x NR tile of `C` given by per-column base pointers.
    use super::MAX_NR;
    use core::arch::x86_64::*;
    use polar_scalar::{Complex64, Scalar};

    /// # Safety
    /// Requires avx512f; `ap`/`bp` hold `16*kc` / `8*kc` readable f64;
    /// `cp[0..8]` each point at 16 writable f64.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn micro_f64_avx512_16x8(
        kc: usize,
        ap: *const f64,
        bp: *const f64,
        alpha: f64,
        beta: f64,
        cp: [*mut f64; MAX_NR],
    ) {
        let mut acc = [[_mm512_setzero_pd(); 2]; 8];
        for p in 0..kc {
            let a0 = _mm512_loadu_pd(ap.add(16 * p));
            let a1 = _mm512_loadu_pd(ap.add(16 * p + 8));
            for (j, accj) in acc.iter_mut().enumerate() {
                let bj = _mm512_set1_pd(*bp.add(8 * p + j));
                accj[0] = _mm512_fmadd_pd(a0, bj, accj[0]);
                accj[1] = _mm512_fmadd_pd(a1, bj, accj[1]);
            }
        }
        let va = _mm512_set1_pd(alpha);
        if beta == 0.0 {
            for (j, accj) in acc.iter().enumerate() {
                _mm512_storeu_pd(cp[j], _mm512_mul_pd(va, accj[0]));
                _mm512_storeu_pd(cp[j].add(8), _mm512_mul_pd(va, accj[1]));
            }
        } else {
            let vb = _mm512_set1_pd(beta);
            for (j, accj) in acc.iter().enumerate() {
                let c0 = _mm512_loadu_pd(cp[j]);
                let c1 = _mm512_loadu_pd(cp[j].add(8));
                _mm512_storeu_pd(cp[j], _mm512_fmadd_pd(vb, c0, _mm512_mul_pd(va, accj[0])));
                _mm512_storeu_pd(cp[j].add(8), _mm512_fmadd_pd(vb, c1, _mm512_mul_pd(va, accj[1])));
            }
        }
    }

    /// # Safety
    /// Requires avx2+fma; `ap`/`bp` hold `8*kc` / `6*kc` readable f64;
    /// `cp[0..6]` each point at 8 writable f64.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn micro_f64_avx2_8x6(
        kc: usize,
        ap: *const f64,
        bp: *const f64,
        alpha: f64,
        beta: f64,
        cp: [*mut f64; MAX_NR],
    ) {
        let mut acc = [[_mm256_setzero_pd(); 2]; 6];
        for p in 0..kc {
            let a0 = _mm256_loadu_pd(ap.add(8 * p));
            let a1 = _mm256_loadu_pd(ap.add(8 * p + 4));
            for (j, accj) in acc.iter_mut().enumerate() {
                let bj = _mm256_broadcast_sd(&*bp.add(6 * p + j));
                accj[0] = _mm256_fmadd_pd(a0, bj, accj[0]);
                accj[1] = _mm256_fmadd_pd(a1, bj, accj[1]);
            }
        }
        let va = _mm256_set1_pd(alpha);
        if beta == 0.0 {
            for (j, accj) in acc.iter().enumerate() {
                _mm256_storeu_pd(cp[j], _mm256_mul_pd(va, accj[0]));
                _mm256_storeu_pd(cp[j].add(4), _mm256_mul_pd(va, accj[1]));
            }
        } else {
            let vb = _mm256_set1_pd(beta);
            for (j, accj) in acc.iter().enumerate() {
                let c0 = _mm256_loadu_pd(cp[j]);
                let c1 = _mm256_loadu_pd(cp[j].add(4));
                _mm256_storeu_pd(cp[j], _mm256_fmadd_pd(vb, c0, _mm256_mul_pd(va, accj[0])));
                _mm256_storeu_pd(cp[j].add(4), _mm256_fmadd_pd(vb, c1, _mm256_mul_pd(va, accj[1])));
            }
        }
    }

    /// Complex-f64 microkernel: 4x4 complex tile, two `ymm` accumulators
    /// per column (2 interleaved `[re, im]` pairs each). Per k-step the
    /// complex product is two FMA-class ops per accumulator:
    /// `acc += fmaddsub(a, re(b), swap(a) * im(b))` — even (re) lanes get
    /// `ar*br - ai*bi`, odd (im) lanes get `ai*br + ar*bi`.
    ///
    /// # Safety
    /// Requires avx2+fma; `ap`/`bp` hold `4*kc` packed Complex64 (`8*kc`
    /// readable f64) each; `cp[0..4]` each point at 4 writable Complex64.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn micro_z64_avx2_4x4(
        kc: usize,
        ap: *const f64,
        bp: *const f64,
        alpha: Complex64,
        beta: Complex64,
        cp: [*mut f64; MAX_NR],
    ) {
        let mut acc = [[_mm256_setzero_pd(); 2]; 4];
        for p in 0..kc {
            let a0 = _mm256_loadu_pd(ap.add(8 * p)); // re0 im0 re1 im1
            let a1 = _mm256_loadu_pd(ap.add(8 * p + 4)); // re2 im2 re3 im3
            let s0 = _mm256_permute_pd(a0, 0x5); // im0 re0 im1 re1
            let s1 = _mm256_permute_pd(a1, 0x5);
            for (j, accj) in acc.iter_mut().enumerate() {
                let br = _mm256_broadcast_sd(&*bp.add(8 * p + 2 * j));
                let bi = _mm256_broadcast_sd(&*bp.add(8 * p + 2 * j + 1));
                accj[0] = _mm256_add_pd(accj[0], _mm256_fmaddsub_pd(a0, br, _mm256_mul_pd(s0, bi)));
                accj[1] = _mm256_add_pd(accj[1], _mm256_fmaddsub_pd(a1, br, _mm256_mul_pd(s1, bi)));
            }
        }
        // complex alpha/beta writeback through a stack spill: 16 scalar
        // complex multiplies, negligible against the kc-deep FMA loop
        let mut buf = [0.0f64; 8];
        for (j, accj) in acc.iter().enumerate() {
            _mm256_storeu_pd(buf.as_mut_ptr(), accj[0]);
            _mm256_storeu_pd(buf.as_mut_ptr().add(4), accj[1]);
            let col = cp[j];
            for r in 0..4 {
                let v = Complex64::new(buf[2 * r], buf[2 * r + 1]);
                let out = if beta == Complex64::ZERO {
                    alpha * v
                } else {
                    let old = Complex64::new(*col.add(2 * r), *col.add(2 * r + 1));
                    alpha * v + beta * old
                };
                *col.add(2 * r) = out.re;
                *col.add(2 * r + 1) = out.im;
            }
        }
    }

    /// # Safety
    /// Requires avx2+fma; `ap`/`bp` hold `16*kc` / `6*kc` readable f32;
    /// `cp[0..6]` each point at 16 writable f32.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn micro_f32_avx2_16x6(
        kc: usize,
        ap: *const f32,
        bp: *const f32,
        alpha: f32,
        beta: f32,
        cp: [*mut f32; MAX_NR],
    ) {
        let mut acc = [[_mm256_setzero_ps(); 2]; 6];
        for p in 0..kc {
            let a0 = _mm256_loadu_ps(ap.add(16 * p));
            let a1 = _mm256_loadu_ps(ap.add(16 * p + 8));
            for (j, accj) in acc.iter_mut().enumerate() {
                let bj = _mm256_broadcast_ss(&*bp.add(6 * p + j));
                accj[0] = _mm256_fmadd_ps(a0, bj, accj[0]);
                accj[1] = _mm256_fmadd_ps(a1, bj, accj[1]);
            }
        }
        let va = _mm256_set1_ps(alpha);
        if beta == 0.0 {
            for (j, accj) in acc.iter().enumerate() {
                _mm256_storeu_ps(cp[j], _mm256_mul_ps(va, accj[0]));
                _mm256_storeu_ps(cp[j].add(8), _mm256_mul_ps(va, accj[1]));
            }
        } else {
            let vb = _mm256_set1_ps(beta);
            for (j, accj) in acc.iter().enumerate() {
                let c0 = _mm256_loadu_ps(cp[j]);
                let c1 = _mm256_loadu_ps(cp[j].add(8));
                _mm256_storeu_ps(cp[j], _mm256_fmadd_ps(vb, c0, _mm256_mul_ps(va, accj[0])));
                _mm256_storeu_ps(cp[j].add(8), _mm256_fmadd_ps(vb, c1, _mm256_mul_ps(va, accj[1])));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::gemm_ref;
    use polar_matrix::Matrix;
    use polar_scalar::Complex64;

    fn rand_mat(m: usize, n: usize, seed: u64) -> Matrix<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        Matrix::from_fn(m, n, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    fn check(m: usize, n: usize, k: usize, op_a: Op, op_b: Op) {
        let (ar, ac) = if op_a == Op::NoTrans { (m, k) } else { (k, m) };
        let (br, bc) = if op_b == Op::NoTrans { (k, n) } else { (n, k) };
        let a = rand_mat(ar, ac, 1);
        let b = rand_mat(br, bc, 2);
        let mut c1 = rand_mat(m, n, 3);
        let mut c2 = c1.clone();
        gemm_ref(op_a, op_b, 1.5, a.as_ref(), b.as_ref(), -0.5, c1.as_mut());
        gemm_packed(op_a, op_b, 1.5, a.as_ref(), b.as_ref(), -0.5, c2.as_mut());
        for j in 0..n {
            for i in 0..m {
                assert!(
                    (c1[(i, j)] - c2[(i, j)]).abs() < 1e-10,
                    "({i},{j}) {op_a:?} {op_b:?} m={m} n={n} k={k}"
                );
            }
        }
    }

    #[test]
    fn packed_matches_ref_fringe_shapes() {
        for op_a in [Op::NoTrans, Op::Trans] {
            for op_b in [Op::NoTrans, Op::Trans] {
                check(17, 13, 29, op_a, op_b);
                check(64, 48, 16, op_a, op_b);
                check(1, 1, 1, op_a, op_b);
                check(33, 1, 7, op_a, op_b);
            }
        }
    }

    #[test]
    fn packed_spans_multiple_kc_blocks() {
        // k larger than KC exercises the beta_eff = 1 accumulation path
        let k = gemm_params().kc + 37;
        check(19, 23, k, Op::NoTrans, Op::NoTrans);
        check(19, 23, k, Op::Trans, Op::Trans);
    }

    #[test]
    fn packed_complex_conj() {
        let a = Matrix::from_fn(9, 6, |i, j| Complex64::new(i as f64 - 2.0, j as f64 + 0.5));
        let b = Matrix::from_fn(9, 5, |i, j| Complex64::new(j as f64, i as f64 - 1.0));
        let one = Complex64::from_real(1.0);
        let mut c1 = Matrix::<Complex64>::zeros(6, 5);
        let mut c2 = Matrix::<Complex64>::zeros(6, 5);
        gemm_ref(
            Op::ConjTrans,
            Op::NoTrans,
            one,
            a.as_ref(),
            b.as_ref(),
            Complex64::ZERO,
            c1.as_mut(),
        );
        gemm_packed(
            Op::ConjTrans,
            Op::NoTrans,
            one,
            a.as_ref(),
            b.as_ref(),
            Complex64::ZERO,
            c2.as_mut(),
        );
        for j in 0..5 {
            for i in 0..6 {
                assert!((c1[(i, j)] - c2[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn packed_complex64_kernel_all_ops() {
        // shapes deep enough to exercise the z microkernel across full and
        // fringe tiles and a kc-block boundary
        let k = gemm_params().kc + 9;
        for op_a in [Op::NoTrans, Op::Trans, Op::ConjTrans] {
            for op_b in [Op::NoTrans, Op::Trans, Op::ConjTrans] {
                let (ar, ac) = if op_a == Op::NoTrans { (21, k) } else { (k, 21) };
                let (br, bc) = if op_b == Op::NoTrans { (k, 14) } else { (14, k) };
                let mut s = 7u64;
                let mut next = move || {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
                };
                let a = Matrix::from_fn(ar, ac, |_, _| Complex64::new(next(), next()));
                let b = Matrix::from_fn(br, bc, |_, _| Complex64::new(next(), next()));
                let alpha = Complex64::new(1.25, -0.5);
                let beta = Complex64::new(-0.75, 0.25);
                let mut c1 = Matrix::from_fn(21, 14, |_, _| Complex64::new(next(), next()));
                let mut c2 = c1.clone();
                gemm_ref(op_a, op_b, alpha, a.as_ref(), b.as_ref(), beta, c1.as_mut());
                gemm_packed(op_a, op_b, alpha, a.as_ref(), b.as_ref(), beta, c2.as_mut());
                for j in 0..14 {
                    for i in 0..21 {
                        assert!(
                            (c1[(i, j)] - c2[(i, j)]).abs() < 1e-9 * (k as f64),
                            "({i},{j}) {op_a:?} {op_b:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn packed_par_bitwise_matches_sequential() {
        // the block-grid parallel path must be bit-identical to the
        // sequential packed kernel (thread-count-independent results)
        let p = gemm_params();
        let m = 3 * p.mc + 17;
        let a = rand_mat(m, p.kc + 5, 51);
        let b = rand_mat(p.kc + 5, 96, 52);
        let mut c1 = rand_mat(m, 96, 53);
        let mut c2 = c1.clone();
        gemm_packed(Op::NoTrans, Op::NoTrans, 1.5, a.as_ref(), b.as_ref(), -0.5, c1.as_mut());
        gemm_packed_par(Op::NoTrans, Op::NoTrans, 1.5, a.as_ref(), b.as_ref(), -0.5, c2.as_mut());
        for j in 0..96 {
            for i in 0..m {
                assert!(
                    c1[(i, j)].to_bits() == c2[(i, j)].to_bits(),
                    "({i},{j}) not bitwise equal"
                );
            }
        }
    }

    #[test]
    fn tile_shape_within_caps() {
        let (mr, nr) = tile_shape::<f64>();
        assert!((1..=MAX_MR).contains(&mr));
        assert!((1..=MAX_NR).contains(&nr));
    }
}
