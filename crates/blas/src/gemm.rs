//! General matrix-matrix multiply.
//!
//! Three implementations with distinct roles:
//!
//! * [`gemm_ref`] — naive triple loop, the correctness oracle;
//! * [`gemm_axpy`] — unpacked cache-aware axpy/dot kernel, used for
//!   problems too small to amortize packing (and as the bench baseline —
//!   it was the previous hot-path kernel);
//! * [`gemm`] — the production path: recursive parallel split over the
//!   output, bottoming out in the BLIS-style packed kernel
//!   (`crate::packed`), with leaf granularity scaled to the pool size so
//!   packing costs are amortized over large leaves.

use crate::packed::{gemm_packed, gemm_packed_par};
use crate::params::{gemm_params, par_threshold_flops};
use polar_matrix::{MatMut, MatRef, Op};
use polar_scalar::{Complex32, Scalar};

/// Element of `op(A)` at `(i, j)`.
#[inline]
fn op_at<S: Scalar>(a: MatRef<'_, S>, op: Op, i: usize, j: usize) -> S {
    match op {
        Op::NoTrans => a.at(i, j),
        Op::Trans => a.at(j, i),
        Op::ConjTrans => a.at(j, i).conj(),
    }
}

/// Reference (naive triple-loop) gemm, used as the correctness oracle in
/// tests and for tiny problems: `C := alpha * op_a(A) * op_b(B) + beta * C`.
pub fn gemm_ref<S: Scalar>(
    op_a: Op,
    op_b: Op,
    alpha: S,
    a: MatRef<'_, S>,
    b: MatRef<'_, S>,
    beta: S,
    mut c: MatMut<'_, S>,
) {
    let m = c.nrows();
    let n = c.ncols();
    let (am, ak) = op_a.apply_dims(a.nrows(), a.ncols());
    let (bk, bn) = op_b.apply_dims(b.nrows(), b.ncols());
    assert_eq!(am, m, "gemm: A rows mismatch");
    assert_eq!(bn, n, "gemm: B cols mismatch");
    assert_eq!(ak, bk, "gemm: inner dim mismatch");
    for j in 0..n {
        for i in 0..m {
            let mut acc = S::ZERO;
            for l in 0..ak {
                acc += op_at(a, op_a, i, l) * op_at(b, op_b, l, j);
            }
            let old = c.at(i, j);
            c.set(i, j, alpha * acc + beta * old);
        }
    }
}

/// Sequential unpacked gemm over one block of `C`.
///
/// For `op_a = NoTrans` the inner kernel is a column `axpy` (contiguous
/// access to both `A` and `C`); for transposed `A` it is a column dot
/// product. `k` is blocked to keep the working set in cache. Kept as the
/// small-problem path (packing doesn't pay below a few thousand flops)
/// and as the speedup baseline in `kernels_perf`.
pub fn gemm_axpy<S: Scalar>(
    op_a: Op,
    op_b: Op,
    alpha: S,
    a: MatRef<'_, S>,
    b: MatRef<'_, S>,
    beta: S,
    mut c: MatMut<'_, S>,
) {
    let m = c.nrows();
    let n = c.ncols();
    let k = match op_a {
        Op::NoTrans => a.ncols(),
        _ => a.nrows(),
    };

    // beta scaling first so k-blocking can accumulate with beta = 1.
    if beta == S::ZERO {
        c.fill(S::ZERO);
    } else if beta != S::ONE {
        for j in 0..n {
            for x in c.col_mut(j) {
                *x *= beta;
            }
        }
    }
    if alpha == S::ZERO || m == 0 || n == 0 || k == 0 {
        return;
    }

    const KBLK: usize = 256;
    match op_a {
        Op::NoTrans => {
            for l0 in (0..k).step_by(KBLK) {
                let lend = (l0 + KBLK).min(k);
                for j in 0..n {
                    let cj = c.col_mut(j);
                    for l in l0..lend {
                        let blj = alpha * op_at(b, op_b, l, j);
                        if blj == S::ZERO {
                            continue;
                        }
                        let al = a.col(l);
                        for (ci, &ail) in cj.iter_mut().zip(al) {
                            *ci += blj * ail;
                        }
                    }
                }
            }
        }
        Op::Trans | Op::ConjTrans => {
            let conj = op_a == Op::ConjTrans;
            for j in 0..n {
                for i in 0..m {
                    // column i of A holds row i of op(A): contiguous dot.
                    let ai = a.col(i);
                    let mut acc = S::ZERO;
                    match op_b {
                        Op::NoTrans => {
                            let bj = b.col(j);
                            if conj {
                                for (x, y) in ai.iter().zip(bj) {
                                    acc += x.conj() * *y;
                                }
                            } else {
                                for (x, y) in ai.iter().zip(bj) {
                                    acc += *x * *y;
                                }
                            }
                        }
                        _ => {
                            for (l, x) in ai.iter().enumerate() {
                                let xl = if conj { x.conj() } else { *x };
                                acc += xl * op_at(b, op_b, l, j);
                            }
                        }
                    }
                    let old = c.at(i, j);
                    c.set(i, j, alpha * acc + old);
                }
            }
        }
    }
}

/// Below this many multiply-adds the unpacked kernel beats packing.
const PACK_MIN_FLOPS: usize = 8 * 1024;

/// Complex32 is the one type where the two kernels measure within a few
/// percent of each other (the 8-byte AoS complex multiply defeats the
/// generic microkernel's register blocking, historically 0.98x), and the
/// winner flips across microarchitectures. Instead of a hard-coded pin,
/// probe both once per process on a packing-sized product and route to
/// whichever wins.
///
/// * `POLAR_C32_GEMM=axpy|packed` pins the choice (CI, A/B runs);
/// * deterministic replay (`POLAR_DETERMINISTIC=1`) pins axpy, because the
///   two kernels sum in different orders and a timing-dependent choice
///   would break bitwise run-to-run equality.
fn complex32_prefers_axpy() -> bool {
    static PREF: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *PREF.get_or_init(|| {
        match std::env::var("POLAR_C32_GEMM").ok().as_deref() {
            Some("axpy") => return true,
            Some("packed") => return false,
            _ => {}
        }
        if rayon::deterministic_mode().is_some() {
            return true;
        }
        // probe: one NN product big enough to amortize packing, best of 3
        // per kernel; ~10 MFlop total, a one-time cost of a few ms
        let n = 96usize;
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
        };
        let a =
            polar_matrix::Matrix::<Complex32>::from_fn(n, n, |_, _| Complex32::new(next(), next()));
        let b =
            polar_matrix::Matrix::<Complex32>::from_fn(n, n, |_, _| Complex32::new(next(), next()));
        let mut c = polar_matrix::Matrix::<Complex32>::zeros(n, n);
        let best = |f: &mut dyn FnMut()| {
            let mut best = f64::INFINITY;
            for _ in 0..3 {
                let t = std::time::Instant::now();
                f();
                best = best.min(t.elapsed().as_secs_f64());
            }
            best
        };
        let one = Complex32::new(1.0, 0.0);
        let zero = Complex32::new(0.0, 0.0);
        let t_packed = best(&mut || {
            gemm_packed(Op::NoTrans, Op::NoTrans, one, a.as_ref(), b.as_ref(), zero, c.as_mut());
        });
        let t_axpy = best(&mut || {
            gemm_axpy(Op::NoTrans, Op::NoTrans, one, a.as_ref(), b.as_ref(), zero, c.as_mut());
        });
        t_axpy <= t_packed
    })
}

/// Whether leaf products of type `S` should take the unpacked axpy kernel
/// regardless of size (see [`complex32_prefers_axpy`]).
#[inline]
fn prefers_axpy<S: Scalar>() -> bool {
    std::any::TypeId::of::<S>() == std::any::TypeId::of::<Complex32>() && complex32_prefers_axpy()
}

/// Sequential leaf: packed kernel when the problem amortizes packing,
/// unpacked axpy/dot otherwise.
#[allow(clippy::too_many_arguments)] // internal blocked-gemm plumbing
pub(crate) fn gemm_leaf<S: Scalar>(
    op_a: Op,
    op_b: Op,
    alpha: S,
    a: MatRef<'_, S>,
    b: MatRef<'_, S>,
    beta: S,
    c: MatMut<'_, S>,
    k: usize,
) {
    let work = c.nrows().saturating_mul(c.ncols()).saturating_mul(k.max(1));
    // Trace-only leaf span: leaves run on pool workers, so these are what
    // populate the per-worker Perfetto lanes. Never counted (the public
    // entry already attributed the whole product's flops).
    let _leaf = polar_obs::leaf_span(
        polar_obs::KernelClass::Gemm,
        "gemm_leaf",
        crate::flops::type_factor(S::IS_COMPLEX) * crate::flops::gemm(c.nrows(), c.ncols(), k),
        [c.nrows(), c.ncols(), k],
    );
    if work < PACK_MIN_FLOPS || c.nrows().min(c.ncols()) < 4 || prefers_axpy::<S>() {
        gemm_axpy(op_a, op_b, alpha, a, b, beta, c);
    } else {
        gemm_packed(op_a, op_b, alpha, a, b, beta, c);
    }
}

/// Leaf granularity for recursive splits: large enough to amortize
/// packing, small enough to load-balance `threads` workers.
fn split_grain(m: usize, n: usize, k: usize) -> usize {
    let threads = rayon::current_num_threads();
    if threads <= 1 {
        return usize::MAX; // no split: one packed call does the whole block
    }
    let total = m.saturating_mul(n).saturating_mul(k.max(1));
    par_threshold_flops().max(total / (threads * 8))
}

/// Parallel gemm: `C := alpha * op_a(A) * op_b(B) + beta * C`.
///
/// Recursively splits `C` (and the matching operand) by the longer output
/// dimension down to the grain size, then runs the packed sequential
/// kernel. Splitting only the *output* keeps writes disjoint.
pub fn gemm<S: Scalar>(
    op_a: Op,
    op_b: Op,
    alpha: S,
    a: MatRef<'_, S>,
    b: MatRef<'_, S>,
    beta: S,
    c: MatMut<'_, S>,
) {
    let m = c.nrows();
    let n = c.ncols();
    let (am, ak) = op_a.apply_dims(a.nrows(), a.ncols());
    let (bk, bn) = op_b.apply_dims(b.nrows(), b.ncols());
    assert_eq!(am, m, "gemm: A rows mismatch");
    assert_eq!(bn, n, "gemm: B cols mismatch");
    assert_eq!(ak, bk, "gemm: inner dim mismatch");
    let _obs = polar_obs::kernel_span(
        polar_obs::KernelClass::Gemm,
        "gemm",
        crate::flops::type_factor(S::IS_COMPLEX) * crate::flops::gemm(m, n, ak),
        [m, n, ak],
    );
    // Block-grid parallel path: share one packed-B panel across workers and
    // fan the MC row blocks out, instead of recursively halving the output
    // (which re-packs B in every leaf and caps parallel efficiency). Needs
    // >= 2 MC blocks to fan out; axpy-routed types stay on axpy leaves.
    let threads = rayon::current_num_threads();
    let work = m.saturating_mul(n).saturating_mul(ak.max(1));
    if threads > 1
        && !prefers_axpy::<S>()
        && m >= 2 * gemm_params().mc
        && n >= 4
        && work >= par_threshold_flops()
    {
        gemm_packed_par(op_a, op_b, alpha, a, b, beta, c);
        return;
    }
    let grain = split_grain(m, n, ak);
    gemm_par(op_a, op_b, alpha, a, b, beta, c, ak, grain);
}

#[allow(clippy::too_many_arguments)] // BLAS gemm signature + split state
fn gemm_par<S: Scalar>(
    op_a: Op,
    op_b: Op,
    alpha: S,
    a: MatRef<'_, S>,
    b: MatRef<'_, S>,
    beta: S,
    c: MatMut<'_, S>,
    k: usize,
    grain: usize,
) {
    let m = c.nrows();
    let n = c.ncols();
    let work = m.saturating_mul(n).saturating_mul(k.max(1));
    if work <= grain || (m <= 16 && n <= 16) {
        gemm_leaf(op_a, op_b, alpha, a, b, beta, c, k);
        return;
    }
    if n >= m {
        // split C and op(B) by columns
        let h = n / 2;
        let (c1, c2) = c.split_at_col(h);
        let (b1, b2) = split_op_cols(b, op_b, h);
        rayon::join(
            || gemm_par(op_a, op_b, alpha, a, b1, beta, c1, k, grain),
            || gemm_par(op_a, op_b, alpha, a, b2, beta, c2, k, grain),
        );
    } else {
        // split C and op(A) by rows
        let h = m / 2;
        let (c1, c2) = c.split_at_row(h);
        let (a1, a2) = split_op_rows(a, op_a, h);
        rayon::join(
            || gemm_par(op_a, op_b, alpha, a1, b, beta, c1, k, grain),
            || gemm_par(op_a, op_b, alpha, a2, b, beta, c2, k, grain),
        );
    }
}

/// Split `op(B)` at output-column `h`: columns of `op(B)` are columns of `B`
/// when `NoTrans`, rows of `B` otherwise.
fn split_op_cols<S: Scalar>(b: MatRef<'_, S>, op: Op, h: usize) -> (MatRef<'_, S>, MatRef<'_, S>) {
    match op {
        Op::NoTrans => b.split_at_col(h),
        Op::Trans | Op::ConjTrans => b.split_at_row(h),
    }
}

/// Split `op(A)` at output-row `h`.
fn split_op_rows<S: Scalar>(a: MatRef<'_, S>, op: Op, h: usize) -> (MatRef<'_, S>, MatRef<'_, S>) {
    match op {
        Op::NoTrans => a.split_at_row(h),
        Op::Trans | Op::ConjTrans => a.split_at_col(h),
    }
}

/// `gemmA` (paper §6.2): gemm specialized for a large `A` and a skinny
/// output `C` (matrix-vector products of the two-norm estimator).
///
/// In SLATE this variant moves tiles of `B` to where `A` resides and
/// reduces partial `C` results. In shared memory the analogous strategy is
/// to parallelize over *row blocks of A* (each thread streams its rows of
/// `A` once) instead of over the (too few) columns of `C`.
pub fn gemm_a<S: Scalar>(
    op_a: Op,
    alpha: S,
    a: MatRef<'_, S>,
    b: MatRef<'_, S>,
    beta: S,
    c: MatMut<'_, S>,
) {
    let m = c.nrows();
    let n = c.ncols();
    let (am, ak) = op_a.apply_dims(a.nrows(), a.ncols());
    assert_eq!(am, m, "gemm_a: A rows mismatch");
    assert_eq!(b.nrows(), ak, "gemm_a: inner dim mismatch");
    assert_eq!(b.ncols(), n, "gemm_a: B cols mismatch");
    let _obs = polar_obs::kernel_span(
        polar_obs::KernelClass::Gemm,
        "gemm_a",
        crate::flops::type_factor(S::IS_COMPLEX) * crate::flops::gemm(m, n, ak),
        [m, n, ak],
    );
    let grain = split_grain(m, n, ak);
    gemm_a_par(op_a, alpha, a, b, beta, c, ak, grain);
}

#[allow(clippy::too_many_arguments)] // BLAS gemm signature + split state
fn gemm_a_par<S: Scalar>(
    op_a: Op,
    alpha: S,
    a: MatRef<'_, S>,
    b: MatRef<'_, S>,
    beta: S,
    c: MatMut<'_, S>,
    k: usize,
    grain: usize,
) {
    let m = c.nrows();
    let n = c.ncols();
    // The row-block split is exactly gemm_par's m-split path; the point of
    // the specialization is choosing it even when n is small.
    let work = m.saturating_mul(n).saturating_mul(k.max(1));
    if work <= grain || m <= 16 {
        gemm_leaf(op_a, Op::NoTrans, alpha, a, b, beta, c, k);
        return;
    }
    let h = m / 2;
    let (c1, c2) = c.split_at_row(h);
    let (a1, a2) = split_op_rows(a, op_a, h);
    rayon::join(
        || gemm_a_par(op_a, alpha, a1, b, beta, c1, k, grain),
        || gemm_a_par(op_a, alpha, a2, b, beta, c2, k, grain),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use polar_matrix::Matrix;
    use polar_scalar::Complex64;

    fn max_diff(a: &Matrix<f64>, b: &Matrix<f64>) -> f64 {
        let mut d = 0.0f64;
        for j in 0..a.ncols() {
            for i in 0..a.nrows() {
                d = d.max((a[(i, j)] - b[(i, j)]).abs());
            }
        }
        d
    }

    fn rand_mat(m: usize, n: usize, seed: u64) -> Matrix<f64> {
        // deterministic LCG — tests must not depend on rand here
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        Matrix::from_fn(m, n, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    #[test]
    fn gemm_matches_reference_all_ops() {
        for (op_a, op_b, ad, bd) in [
            (Op::NoTrans, Op::NoTrans, (13, 7), (7, 9)),
            (Op::Trans, Op::NoTrans, (7, 13), (7, 9)),
            (Op::NoTrans, Op::Trans, (13, 7), (9, 7)),
            (Op::Trans, Op::Trans, (7, 13), (9, 7)),
        ] {
            let a = rand_mat(ad.0, ad.1, 3);
            let b = rand_mat(bd.0, bd.1, 4);
            let mut c1 = rand_mat(13, 9, 5);
            let mut c2 = c1.clone();
            gemm_ref(op_a, op_b, 1.5, a.as_ref(), b.as_ref(), 0.5, c1.as_mut());
            gemm(op_a, op_b, 1.5, a.as_ref(), b.as_ref(), 0.5, c2.as_mut());
            assert!(max_diff(&c1, &c2) < 1e-12, "{op_a:?} {op_b:?}");
        }
    }

    #[test]
    fn gemm_parallel_path_matches_reference() {
        let a = rand_mat(150, 80, 11);
        let b = rand_mat(80, 120, 12);
        let mut c1 = rand_mat(150, 120, 13);
        let mut c2 = c1.clone();
        gemm_ref(Op::NoTrans, Op::NoTrans, 2.0, a.as_ref(), b.as_ref(), -1.0, c1.as_mut());
        gemm(Op::NoTrans, Op::NoTrans, 2.0, a.as_ref(), b.as_ref(), -1.0, c2.as_mut());
        assert!(max_diff(&c1, &c2) < 1e-10);
    }

    #[test]
    fn gemm_axpy_matches_reference() {
        for op_a in [Op::NoTrans, Op::Trans] {
            for op_b in [Op::NoTrans, Op::Trans] {
                let (ar, ac) = if op_a == Op::NoTrans { (23, 17) } else { (17, 23) };
                let (br, bc) = if op_b == Op::NoTrans { (17, 11) } else { (11, 17) };
                let a = rand_mat(ar, ac, 41);
                let b = rand_mat(br, bc, 42);
                let mut c1 = rand_mat(23, 11, 43);
                let mut c2 = c1.clone();
                gemm_ref(op_a, op_b, -0.5, a.as_ref(), b.as_ref(), 2.0, c1.as_mut());
                gemm_axpy(op_a, op_b, -0.5, a.as_ref(), b.as_ref(), 2.0, c2.as_mut());
                assert!(max_diff(&c1, &c2) < 1e-12, "{op_a:?} {op_b:?}");
            }
        }
    }

    #[test]
    fn gemm_conj_trans_complex() {
        let a = Matrix::from_fn(4, 3, |i, j| Complex64::new(i as f64, j as f64 + 1.0));
        let b = Matrix::from_fn(4, 2, |i, j| Complex64::new(j as f64 - 1.0, i as f64));
        let mut c1 = Matrix::<Complex64>::zeros(3, 2);
        let mut c2 = Matrix::<Complex64>::zeros(3, 2);
        let one = Complex64::from_real(1.0);
        gemm_ref(
            Op::ConjTrans,
            Op::NoTrans,
            one,
            a.as_ref(),
            b.as_ref(),
            Complex64::default(),
            c1.as_mut(),
        );
        gemm(
            Op::ConjTrans,
            Op::NoTrans,
            one,
            a.as_ref(),
            b.as_ref(),
            Complex64::default(),
            c2.as_mut(),
        );
        for j in 0..2 {
            for i in 0..3 {
                assert!((c1[(i, j)] - c2[(i, j)]).abs() < 1e-13);
            }
        }
        // spot check one entry by hand: c[0,0] = sum_l conj(a[l,0]) b[l,0]
        let mut acc = Complex64::default();
        for l in 0..4 {
            acc += a[(l, 0)].conj() * b[(l, 0)];
        }
        assert!((c1[(0, 0)] - acc).abs() < 1e-13);
    }

    #[test]
    fn gemm_beta_zero_overwrites_nan() {
        // beta = 0 must overwrite even NaN garbage in C (LAPACK semantics).
        let a = Matrix::<f64>::identity(3, 3);
        let b = rand_mat(3, 3, 21);
        let mut c = Matrix::<f64>::zeros(3, 3);
        c[(1, 1)] = f64::NAN;
        gemm(Op::NoTrans, Op::NoTrans, 1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
        assert!(max_diff(&c, &b) < 1e-14);
    }

    #[test]
    fn gemm_beta_zero_overwrites_nan_packed_path() {
        // same property through the packed kernel (size above PACK_MIN_FLOPS)
        let n = 48;
        let a = Matrix::<f64>::identity(n, n);
        let b = rand_mat(n, n, 22);
        let mut c = Matrix::<f64>::zeros(n, n);
        c[(7, 31)] = f64::NAN;
        gemm(Op::NoTrans, Op::NoTrans, 1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
        assert!(max_diff(&c, &b) < 1e-14);
    }

    #[test]
    fn gemm_a_matches_gemm_skinny() {
        let a = rand_mat(500, 60, 31);
        let x = rand_mat(60, 1, 32);
        let mut y1 = Matrix::<f64>::zeros(500, 1);
        let mut y2 = Matrix::<f64>::zeros(500, 1);
        gemm(Op::NoTrans, Op::NoTrans, 1.0, a.as_ref(), x.as_ref(), 0.0, y1.as_mut());
        gemm_a(Op::NoTrans, 1.0, a.as_ref(), x.as_ref(), 0.0, y2.as_mut());
        assert!(max_diff(&y1, &y2) < 1e-11);

        // transposed direction, as used by norm2est line 19
        let mut z1 = Matrix::<f64>::zeros(60, 1);
        let mut z2 = Matrix::<f64>::zeros(60, 1);
        gemm(Op::Trans, Op::NoTrans, 1.0, a.as_ref(), y1.as_ref(), 0.0, z1.as_mut());
        gemm_a(Op::Trans, 1.0, a.as_ref(), y1.as_ref(), 0.0, z2.as_mut());
        assert!(max_diff(&z1, &z2) < 1e-9);
    }

    #[test]
    fn gemm_empty_dims_noop() {
        let a = Matrix::<f64>::zeros(0, 5);
        let b = Matrix::<f64>::zeros(5, 3);
        let mut c = Matrix::<f64>::zeros(0, 3);
        gemm(Op::NoTrans, Op::NoTrans, 1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
        // k = 0: C := beta C
        let a = Matrix::<f64>::zeros(2, 0);
        let b = Matrix::<f64>::zeros(0, 2);
        let mut c = Matrix::<f64>::from_fn(2, 2, |_, _| 3.0);
        gemm(Op::NoTrans, Op::NoTrans, 1.0, a.as_ref(), b.as_ref(), 2.0, c.as_mut());
        assert_eq!(c[(0, 0)], 6.0);
    }
}
