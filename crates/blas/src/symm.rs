//! Hermitian rank-k update and symmetrization helpers.

use crate::gemm::gemm;
use crate::params::par_threshold_flops;
use polar_matrix::{MatMut, MatRef, Op, Uplo};
use polar_scalar::{Real, Scalar};

/// Diagonal blocks at or below this order fall back to the direct
/// per-column kernel.
const HERK_BASE: usize = 64;

/// Hermitian rank-k update on the `uplo` triangle of `C`:
///
/// * `op = NoTrans`:   `C := alpha * A * A^H + beta * C` (`A` is `n x k`);
/// * `op = ConjTrans`: `C := alpha * A^H * A + beta * C` (`A` is `k x n`).
///
/// `alpha` and `beta` are real, as in BLAS `herk`. Only the `uplo` triangle
/// of `C` is referenced or written, so the update costs half of the
/// equivalent gemm.
///
/// Implementation: recursive triangle split. The two diagonal blocks
/// recurse (in parallel); the off-diagonal block is a plain gemm and runs
/// through the packed kernel. QDWH uses this to form `Z = I + c * A^H A`
/// for the Cholesky-based iteration (Eq. (2); Algorithm 1 line 40 prints
/// `-c`, but `Z` must be `I + c A^H A` to be positive definite — we
/// follow Eq. (2)).
pub fn herk<S: Scalar>(
    uplo: Uplo,
    op: Op,
    alpha: S::Real,
    a: MatRef<'_, S>,
    beta: S::Real,
    c: MatMut<'_, S>,
) {
    assert!(op != Op::Trans || !S::IS_COMPLEX, "herk takes NoTrans or ConjTrans");
    let n = c.nrows();
    assert_eq!(c.ncols(), n, "herk: C must be square");
    let k = match op {
        Op::NoTrans => {
            assert_eq!(a.nrows(), n, "herk: A rows mismatch");
            a.ncols()
        }
        _ => {
            assert_eq!(a.ncols(), n, "herk: A cols mismatch");
            a.nrows()
        }
    };
    let _obs = polar_obs::kernel_span(
        polar_obs::KernelClass::Herk,
        "herk",
        crate::flops::type_factor(S::IS_COMPLEX) * crate::flops::herk(n, k),
        [n, n, k],
    );
    herk_rec(uplo, op, alpha, a, beta, c, k);
}

/// [`herk`] on the `uplo` triangle, then mirror so all of `C` holds the
/// Hermitian result — still half the multiply flops of the full gemm.
pub fn herk_mirrored<S: Scalar>(
    uplo: Uplo,
    op: Op,
    alpha: S::Real,
    a: MatRef<'_, S>,
    beta: S::Real,
    mut c: MatMut<'_, S>,
) {
    herk(uplo, op, alpha, a, beta, c.rb());
    mirror_triangle(uplo, c);
}

/// Recursive triangle split (see [`herk`]).
#[allow(clippy::too_many_arguments)] // BLAS herk signature + inner dim
fn herk_rec<S: Scalar>(
    uplo: Uplo,
    op: Op,
    alpha: S::Real,
    a: MatRef<'_, S>,
    beta: S::Real,
    c: MatMut<'_, S>,
    k: usize,
) {
    let n = c.nrows();
    let work = n.saturating_mul(n).saturating_mul(k.max(1)) / 2;
    if n <= HERK_BASE || work <= par_threshold_flops() {
        herk_seq(uplo, op, alpha, a, beta, c, k);
        return;
    }
    let h = n / 2;
    // A split along the output dimension: rows for NoTrans, cols otherwise
    let (a1, a2) = match op {
        Op::NoTrans => a.split_at_row(h),
        _ => a.split_at_col(h),
    };
    let (ctop, cbot) = c.split_at_row(h);
    let (c11, c12) = ctop.split_at_col(h);
    let (c21, c22) = cbot.split_at_col(h);
    let galpha = S::from_real(alpha);
    let gbeta = S::from_real(beta);
    // off-diagonal block: a full (packed) gemm, half the remaining work
    let off = move || match (uplo, op) {
        // C21 = alpha * A2 * A1^H + beta * C21
        (Uplo::Lower, Op::NoTrans) => gemm(Op::NoTrans, Op::ConjTrans, galpha, a2, a1, gbeta, c21),
        // C21 = alpha * op(A)_2 * A1 + beta * C21  (op is (Conj)Trans)
        (Uplo::Lower, _) => gemm(op, Op::NoTrans, galpha, a2, a1, gbeta, c21),
        // C12 = alpha * A1 * A2^H + beta * C12
        (Uplo::Upper, Op::NoTrans) => gemm(Op::NoTrans, Op::ConjTrans, galpha, a1, a2, gbeta, c12),
        // C12 = alpha * op(A)_1 * A2 + beta * C12
        (Uplo::Upper, _) => gemm(op, Op::NoTrans, galpha, a1, a2, gbeta, c12),
    };
    rayon::join(
        || {
            rayon::join(
                || herk_rec(uplo, op, alpha, a1, beta, c11, k),
                || herk_rec(uplo, op, alpha, a2, beta, c22, k),
            )
        },
        off,
    );
}

/// Direct per-column kernel on the stored triangle of a diagonal block.
fn herk_seq<S: Scalar>(
    uplo: Uplo,
    op: Op,
    alpha: S::Real,
    a: MatRef<'_, S>,
    beta: S::Real,
    mut c: MatMut<'_, S>,
    k: usize,
) {
    let n_total = c.nrows();
    for j in 0..c.ncols() {
        // triangle row range for this column
        let (lo, hi) = match uplo {
            Uplo::Upper => (0usize, j + 1),
            Uplo::Lower => (j, n_total),
        };
        // beta pass
        {
            let cj = c.col_mut(j);
            if beta == S::Real::ZERO {
                for x in &mut cj[lo..hi] {
                    *x = S::ZERO;
                }
            } else if beta != S::Real::ONE {
                for x in &mut cj[lo..hi] {
                    *x = x.mul_real(beta);
                }
            }
        }
        if alpha == S::Real::ZERO || k == 0 {
            continue;
        }
        match op {
            Op::ConjTrans | Op::Trans => {
                // C[i,j] += alpha * a_i^H a_j (columns of A are contiguous)
                let aj = a.col(j);
                for i in lo..hi {
                    let ai = a.col(i);
                    let mut acc = S::ZERO;
                    if S::IS_COMPLEX {
                        for (x, y) in ai.iter().zip(aj) {
                            acc += x.conj() * *y;
                        }
                    } else {
                        for (x, y) in ai.iter().zip(aj) {
                            acc += *x * *y;
                        }
                    }
                    let cur = c.at(i, j);
                    c.set(i, j, cur + acc.mul_real(alpha));
                }
            }
            Op::NoTrans => {
                // C[i,j] += alpha * sum_l A[i,l] conj(A[j,l]): axpy over i
                for l in 0..k {
                    let factor = a.at(j, l).conj().mul_real(alpha);
                    if factor == S::ZERO {
                        continue;
                    }
                    let al = a.col(l);
                    let cj = c.col_mut(j);
                    for i in lo..hi {
                        cj[i] += factor * al[i];
                    }
                }
            }
        }
        // enforce an exactly-real diagonal as BLAS herk does
        if S::IS_COMPLEX && j >= lo && j < hi {
            let d = c.at(j, j);
            c.set(j, j, S::from_real(d.re()));
        }
    }
}

/// Fill the opposite triangle so the `uplo` triangle's content defines a
/// full Hermitian matrix, and average the diagonal to be exactly real.
pub fn mirror_triangle<S: Scalar>(uplo: Uplo, mut c: MatMut<'_, S>) {
    let n = c.nrows();
    assert_eq!(c.ncols(), n);
    for j in 0..n {
        for i in 0..j {
            match uplo {
                Uplo::Upper => {
                    let v = c.at(i, j);
                    c.set(j, i, v.conj());
                }
                Uplo::Lower => {
                    let v = c.at(j, i);
                    c.set(i, j, v.conj());
                }
            }
        }
    }
}

/// In-place Hermitian symmetrization: `H := (H + H^H) / 2`.
///
/// Applied to the polar factor `H = U_p^H A` after Algorithm 1 line 52, as
/// is standard for QDWH implementations (POLAR does the same).
pub fn symmetrize<S: Scalar>(mut h: MatMut<'_, S>) {
    let n = h.nrows();
    assert_eq!(h.ncols(), n, "symmetrize: square only");
    let half = S::Real::ONE / (S::Real::ONE + S::Real::ONE);
    for j in 0..n {
        for i in 0..j {
            let v = (h.at(i, j) + h.at(j, i).conj()).mul_real(half);
            h.set(i, j, v);
            h.set(j, i, v.conj());
        }
        let d = h.at(j, j);
        h.set(j, j, S::from_real(d.re()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::gemm_ref;
    use polar_matrix::Matrix;
    use polar_scalar::Complex64;

    fn rand_mat(m: usize, n: usize, seed: u64) -> Matrix<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        Matrix::from_fn(m, n, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    fn herk_vs_gemm(uplo: Uplo, op: Op, n: usize, k: usize) {
        let a = match op {
            Op::NoTrans => rand_mat(n, k, 7),
            _ => rand_mat(k, n, 7),
        };
        let c0 = rand_mat(n, n, 8);
        let mut c_herk = c0.clone();
        herk(uplo, op, 1.25, a.as_ref(), 0.75, c_herk.as_mut());

        let mut c_gemm = c0.clone();
        let opb = if op == Op::NoTrans { Op::Trans } else { Op::NoTrans };
        let opa = op;
        gemm_ref(opa, opb, 1.25, a.as_ref(), a.as_ref(), 0.75, c_gemm.as_mut());
        // compare only the computed triangle
        for j in 0..n {
            for i in 0..n {
                let in_tri = match uplo {
                    Uplo::Upper => i <= j,
                    Uplo::Lower => i >= j,
                };
                if in_tri {
                    assert!(
                        (c_herk[(i, j)] - c_gemm[(i, j)]).abs() < 1e-11,
                        "({i},{j}) {uplo:?} {op:?}"
                    );
                } else {
                    assert_eq!(c_herk[(i, j)], c0[(i, j)], "other triangle untouched");
                }
            }
        }
    }

    #[test]
    fn herk_matches_gemm_all_variants() {
        for uplo in [Uplo::Upper, Uplo::Lower] {
            for op in [Op::NoTrans, Op::Trans] {
                herk_vs_gemm(uplo, op, 13, 9);
                herk_vs_gemm(uplo, op, 9, 13);
            }
        }
    }

    #[test]
    fn herk_parallel_sizes() {
        herk_vs_gemm(Uplo::Lower, Op::Trans, 120, 80);
        herk_vs_gemm(Uplo::Upper, Op::NoTrans, 120, 80);
    }

    #[test]
    fn herk_recursive_split_sizes() {
        // orders above HERK_BASE exercise the triangle-split path on both
        // triangles and both ops, including odd sizes
        herk_vs_gemm(Uplo::Lower, Op::Trans, 129, 40);
        herk_vs_gemm(Uplo::Upper, Op::Trans, 129, 40);
        herk_vs_gemm(Uplo::Lower, Op::NoTrans, 130, 33);
        herk_vs_gemm(Uplo::Upper, Op::NoTrans, 130, 33);
    }

    #[test]
    fn herk_complex_recursive_both_ops() {
        let n = 97;
        let k = 23;
        for (uplo, op) in
            [(Uplo::Lower, Op::ConjTrans), (Uplo::Upper, Op::ConjTrans), (Uplo::Lower, Op::NoTrans)]
        {
            let a = match op {
                Op::NoTrans => {
                    Matrix::from_fn(n, k, |i, j| Complex64::new(i as f64 * 0.01, j as f64 * 0.02))
                }
                _ => Matrix::from_fn(k, n, |i, j| Complex64::new(i as f64 * 0.01, j as f64 * 0.02)),
            };
            let mut c1 = Matrix::<Complex64>::zeros(n, n);
            let mut c2 = Matrix::<Complex64>::zeros(n, n);
            herk(uplo, op, 1.0, a.as_ref(), 0.0, c1.as_mut());
            let one = Complex64::from_real(1.0);
            match op {
                Op::NoTrans => gemm_ref(
                    Op::NoTrans,
                    Op::ConjTrans,
                    one,
                    a.as_ref(),
                    a.as_ref(),
                    Complex64::ZERO,
                    c2.as_mut(),
                ),
                _ => gemm_ref(
                    Op::ConjTrans,
                    Op::NoTrans,
                    one,
                    a.as_ref(),
                    a.as_ref(),
                    Complex64::ZERO,
                    c2.as_mut(),
                ),
            }
            for j in 0..n {
                for i in 0..n {
                    let in_tri = match uplo {
                        Uplo::Upper => i <= j,
                        Uplo::Lower => i >= j,
                    };
                    if in_tri {
                        assert!(
                            (c1[(i, j)] - c2[(i, j)]).abs() < 1e-9,
                            "({i},{j}) {uplo:?} {op:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn herk_complex_real_diagonal() {
        let a = Matrix::from_fn(3, 5, |i, j| Complex64::new(i as f64 - 1.0, j as f64 + 0.5));
        let mut c = Matrix::<Complex64>::zeros(5, 5);
        herk(Uplo::Upper, Op::ConjTrans, 1.0, a.as_ref(), 0.0, c.as_mut());
        for j in 0..5 {
            assert_eq!(c[(j, j)].im, 0.0, "diagonal must be exactly real");
            assert!(c[(j, j)].re >= 0.0, "A^H A diagonal is nonnegative");
        }
    }

    #[test]
    fn herk_mirrored_fills_both_triangles() {
        let a = rand_mat(90, 40, 17);
        let mut c = rand_mat(90, 90, 18);
        herk_mirrored(Uplo::Lower, Op::NoTrans, 2.0, a.as_ref(), 0.0, c.as_mut());
        let mut full = Matrix::<f64>::zeros(90, 90);
        gemm_ref(Op::NoTrans, Op::Trans, 2.0, a.as_ref(), a.as_ref(), 0.0, full.as_mut());
        for j in 0..90 {
            for i in 0..90 {
                assert!((c[(i, j)] - full[(i, j)]).abs() < 1e-10, "({i},{j})");
            }
        }
    }

    #[test]
    fn symmetrize_produces_hermitian() {
        let mut h =
            Matrix::from_fn(4, 4, |i, j| Complex64::new((i * j) as f64, i as f64 - j as f64 + 0.3));
        symmetrize(h.as_mut());
        for j in 0..4 {
            for i in 0..4 {
                assert_eq!(h[(i, j)], h[(j, i)].conj());
            }
            assert_eq!(h[(j, j)].im, 0.0);
        }
    }

    #[test]
    fn mirror_triangle_copies_conjugate() {
        let mut c = Matrix::<Complex64>::zeros(3, 3);
        c[(0, 2)] = Complex64::new(1.0, 2.0);
        c[(0, 0)] = Complex64::from_real(5.0);
        mirror_triangle(Uplo::Upper, c.as_mut());
        assert_eq!(c[(2, 0)], Complex64::new(1.0, -2.0));
    }
}
