//! Hermitian rank-k update and symmetrization helpers.

use crate::PAR_THRESHOLD_FLOPS;
use polar_matrix::{MatMut, MatRef, Op, Uplo};
use polar_scalar::{Real, Scalar};

/// Hermitian rank-k update on the `uplo` triangle of `C`:
///
/// * `op = NoTrans`:   `C := alpha * A * A^H + beta * C` (`A` is `n x k`);
/// * `op = ConjTrans`: `C := alpha * A^H * A + beta * C` (`A` is `k x n`).
///
/// `alpha` and `beta` are real, as in BLAS `herk`. Only the `uplo` triangle
/// of `C` is referenced or written.
///
/// QDWH uses this to form `Z = I + c * A^H A` for the Cholesky-based
/// iteration (Eq. (2); Algorithm 1 line 40 prints `-c`, but `Z` must be
/// `I + c A^H A` to be positive definite — we follow Eq. (2)).
pub fn herk<S: Scalar>(
    uplo: Uplo,
    op: Op,
    alpha: S::Real,
    a: MatRef<'_, S>,
    beta: S::Real,
    c: MatMut<'_, S>,
) {
    assert!(op != Op::Trans || !S::IS_COMPLEX, "herk takes NoTrans or ConjTrans");
    let n = c.nrows();
    assert_eq!(c.ncols(), n, "herk: C must be square");
    let k = match op {
        Op::NoTrans => {
            assert_eq!(a.nrows(), n, "herk: A rows mismatch");
            a.ncols()
        }
        _ => {
            assert_eq!(a.ncols(), n, "herk: A cols mismatch");
            a.nrows()
        }
    };
    herk_par(uplo, op, alpha, a, beta, c, 0, k);
}

/// Recursive parallel driver: splits the output columns; `j0` is the global
/// column offset of this block of `C` (needed to find the triangle edge).
#[allow(clippy::too_many_arguments)] // BLAS herk signature + split offsets
fn herk_par<S: Scalar>(
    uplo: Uplo,
    op: Op,
    alpha: S::Real,
    a: MatRef<'_, S>,
    beta: S::Real,
    c: MatMut<'_, S>,
    j0: usize,
    k: usize,
) {
    let ncols = c.ncols();
    let work = c.nrows().saturating_mul(ncols).saturating_mul(k.max(1)) / 2;
    if work <= PAR_THRESHOLD_FLOPS || ncols <= 4 {
        herk_seq(uplo, op, alpha, a, beta, c, j0, k);
        return;
    }
    let h = ncols / 2;
    let (c1, c2) = c.split_at_col(h);
    rayon::join(
        || herk_par(uplo, op, alpha, a, beta, c1, j0, k),
        || herk_par(uplo, op, alpha, a, beta, c2, j0 + h, k),
    );
}

#[allow(clippy::too_many_arguments)] // BLAS herk signature + split offsets
fn herk_seq<S: Scalar>(
    uplo: Uplo,
    op: Op,
    alpha: S::Real,
    a: MatRef<'_, S>,
    beta: S::Real,
    mut c: MatMut<'_, S>,
    j0: usize,
    k: usize,
) {
    let n_total = c.nrows();
    for jl in 0..c.ncols() {
        let j = j0 + jl; // global column index in C
                         // triangle row range for this column
        let (lo, hi) = match uplo {
            Uplo::Upper => (0usize, j + 1),
            Uplo::Lower => (j, n_total),
        };
        // beta pass
        {
            let cj = c.col_mut(jl);
            if beta == S::Real::ZERO {
                for x in &mut cj[lo..hi] {
                    *x = S::ZERO;
                }
            } else if beta != S::Real::ONE {
                for x in &mut cj[lo..hi] {
                    *x = x.mul_real(beta);
                }
            }
        }
        if alpha == S::Real::ZERO || k == 0 {
            continue;
        }
        match op {
            Op::ConjTrans | Op::Trans => {
                // C[i,j] += alpha * a_i^H a_j (columns of A are contiguous)
                let aj = a.col(j);
                for i in lo..hi {
                    let ai = a.col(i);
                    let mut acc = S::ZERO;
                    if S::IS_COMPLEX {
                        for (x, y) in ai.iter().zip(aj) {
                            acc += x.conj() * *y;
                        }
                    } else {
                        for (x, y) in ai.iter().zip(aj) {
                            acc += *x * *y;
                        }
                    }
                    let cur = c.at(i, jl);
                    c.set(i, jl, cur + acc.mul_real(alpha));
                }
            }
            Op::NoTrans => {
                // C[i,j] += alpha * sum_l A[i,l] conj(A[j,l]): axpy over i
                for l in 0..k {
                    let factor = a.at(j, l).conj().mul_real(alpha);
                    if factor == S::ZERO {
                        continue;
                    }
                    let al = a.col(l);
                    let cj = c.col_mut(jl);
                    for i in lo..hi {
                        cj[i] += factor * al[i];
                    }
                }
            }
        }
        // enforce an exactly-real diagonal as BLAS herk does
        if S::IS_COMPLEX && j >= lo && j < hi {
            let d = c.at(j, jl);
            c.set(j, jl, S::from_real(d.re()));
        }
    }
}

/// Fill the opposite triangle so the `uplo` triangle's content defines a
/// full Hermitian matrix, and average the diagonal to be exactly real.
pub fn mirror_triangle<S: Scalar>(uplo: Uplo, mut c: MatMut<'_, S>) {
    let n = c.nrows();
    assert_eq!(c.ncols(), n);
    for j in 0..n {
        for i in 0..j {
            match uplo {
                Uplo::Upper => {
                    let v = c.at(i, j);
                    c.set(j, i, v.conj());
                }
                Uplo::Lower => {
                    let v = c.at(j, i);
                    c.set(i, j, v.conj());
                }
            }
        }
    }
}

/// In-place Hermitian symmetrization: `H := (H + H^H) / 2`.
///
/// Applied to the polar factor `H = U_p^H A` after Algorithm 1 line 52, as
/// is standard for QDWH implementations (POLAR does the same).
pub fn symmetrize<S: Scalar>(mut h: MatMut<'_, S>) {
    let n = h.nrows();
    assert_eq!(h.ncols(), n, "symmetrize: square only");
    let half = S::Real::ONE / (S::Real::ONE + S::Real::ONE);
    for j in 0..n {
        for i in 0..j {
            let v = (h.at(i, j) + h.at(j, i).conj()).mul_real(half);
            h.set(i, j, v);
            h.set(j, i, v.conj());
        }
        let d = h.at(j, j);
        h.set(j, j, S::from_real(d.re()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::gemm_ref;
    use polar_matrix::Matrix;
    use polar_scalar::Complex64;

    fn rand_mat(m: usize, n: usize, seed: u64) -> Matrix<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        Matrix::from_fn(m, n, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    fn herk_vs_gemm(uplo: Uplo, op: Op, n: usize, k: usize) {
        let a = match op {
            Op::NoTrans => rand_mat(n, k, 7),
            _ => rand_mat(k, n, 7),
        };
        let c0 = rand_mat(n, n, 8);
        let mut c_herk = c0.clone();
        herk(uplo, op, 1.25, a.as_ref(), 0.75, c_herk.as_mut());

        let mut c_gemm = c0.clone();
        let opb = if op == Op::NoTrans { Op::Trans } else { Op::NoTrans };
        let opa = op;
        gemm_ref(opa, opb, 1.25, a.as_ref(), a.as_ref(), 0.75, c_gemm.as_mut());
        // compare only the computed triangle
        for j in 0..n {
            for i in 0..n {
                let in_tri = match uplo {
                    Uplo::Upper => i <= j,
                    Uplo::Lower => i >= j,
                };
                if in_tri {
                    assert!(
                        (c_herk[(i, j)] - c_gemm[(i, j)]).abs() < 1e-11,
                        "({i},{j}) {uplo:?} {op:?}"
                    );
                } else {
                    assert_eq!(c_herk[(i, j)], c0[(i, j)], "other triangle untouched");
                }
            }
        }
    }

    #[test]
    fn herk_matches_gemm_all_variants() {
        for uplo in [Uplo::Upper, Uplo::Lower] {
            for op in [Op::NoTrans, Op::Trans] {
                herk_vs_gemm(uplo, op, 13, 9);
                herk_vs_gemm(uplo, op, 9, 13);
            }
        }
    }

    #[test]
    fn herk_parallel_sizes() {
        herk_vs_gemm(Uplo::Lower, Op::Trans, 120, 80);
        herk_vs_gemm(Uplo::Upper, Op::NoTrans, 120, 80);
    }

    #[test]
    fn herk_complex_real_diagonal() {
        let a = Matrix::from_fn(3, 5, |i, j| Complex64::new(i as f64 - 1.0, j as f64 + 0.5));
        let mut c = Matrix::<Complex64>::zeros(5, 5);
        herk(Uplo::Upper, Op::ConjTrans, 1.0, a.as_ref(), 0.0, c.as_mut());
        for j in 0..5 {
            assert_eq!(c[(j, j)].im, 0.0, "diagonal must be exactly real");
            assert!(c[(j, j)].re >= 0.0, "A^H A diagonal is nonnegative");
        }
    }

    #[test]
    fn symmetrize_produces_hermitian() {
        let mut h =
            Matrix::from_fn(4, 4, |i, j| Complex64::new((i * j) as f64, i as f64 - j as f64 + 0.3));
        symmetrize(h.as_mut());
        for j in 0..4 {
            for i in 0..4 {
                assert_eq!(h[(i, j)], h[(j, i)].conj());
            }
            assert_eq!(h[(j, j)].im, 0.0);
        }
    }

    #[test]
    fn mirror_triangle_copies_conjugate() {
        let mut c = Matrix::<Complex64>::zeros(3, 3);
        c[(0, 2)] = Complex64::new(1.0, 2.0);
        c[(0, 0)] = Complex64::from_real(5.0);
        mirror_triangle(Uplo::Upper, c.as_mut());
        assert_eq!(c[(2, 0)], Complex64::new(1.0, -2.0));
    }
}
