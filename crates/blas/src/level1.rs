//! Level-1 style operations on vectors (slices) and matrix views.

use polar_matrix::{MatMut, MatRef};
use polar_scalar::{Real, Scalar};

/// `y += alpha * x` on slices.
pub fn axpy<S: Scalar>(alpha: S, x: &[S], y: &mut [S]) {
    assert_eq!(x.len(), y.len());
    if alpha == S::ZERO {
        return;
    }
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Unconjugated dot product `x^T y`.
pub fn dot<S: Scalar>(x: &[S], y: &[S]) -> S {
    assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(&a, &b)| a * b).sum()
}

/// Conjugated dot product `x^H y`.
pub fn dotc<S: Scalar>(x: &[S], y: &[S]) -> S {
    assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(&a, &b)| a.conj() * b).sum()
}

/// Euclidean norm with lassq-style scaling for overflow safety.
pub fn nrm2<S: Scalar>(x: &[S]) -> S::Real {
    let mut scale = S::Real::ZERO;
    let mut sumsq = S::Real::ONE;
    for &xi in x {
        let a = xi.abs();
        if a > S::Real::ZERO {
            if scale < a {
                let r = scale / a;
                sumsq = S::Real::ONE + sumsq * r * r;
                scale = a;
            } else {
                let r = a / scale;
                sumsq += r * r;
            }
        }
    }
    scale * sumsq.sqrt()
}

/// Index of the element with the largest `|Re| + |Im|` (LAPACK `i?amax`).
pub fn iamax<S: Scalar>(x: &[S]) -> usize {
    let mut best = 0;
    let mut best_val = S::Real::ZERO;
    for (i, &xi) in x.iter().enumerate() {
        let v = xi.abs1();
        if v > best_val {
            best_val = v;
            best = i;
        }
    }
    best
}

/// In-place scaling `A := alpha * A` (the paper's `scale`).
pub fn scale<S: Scalar>(alpha: S, mut a: MatMut<'_, S>) {
    for j in 0..a.ncols() {
        for x in a.col_mut(j) {
            *x *= alpha;
        }
    }
}

/// In-place scaling by a real factor (used for `A_0 = A / alpha`).
pub fn scale_real<S: Scalar>(alpha: S::Real, mut a: MatMut<'_, S>) {
    for j in 0..a.ncols() {
        for x in a.col_mut(j) {
            *x = x.mul_real(alpha);
        }
    }
}

/// `B := alpha * A + beta * B` (the paper's `add`, LAPACK `geadd`).
pub fn add<S: Scalar>(alpha: S, a: MatRef<'_, S>, beta: S, mut b: MatMut<'_, S>) {
    assert_eq!(a.nrows(), b.nrows());
    assert_eq!(a.ncols(), b.ncols());
    for j in 0..b.ncols() {
        let aj = a.col(j);
        for (bi, &ai) in b.col_mut(j).iter_mut().zip(aj) {
            *bi = alpha * ai + beta * *bi;
        }
    }
}

/// Copy `A` into `B` (the paper's `copy`).
pub fn copy_into<S: Scalar>(a: MatRef<'_, S>, mut b: MatMut<'_, S>) {
    b.copy_from(a);
}

#[cfg(test)]
mod tests {
    use super::*;
    use polar_matrix::Matrix;
    use polar_scalar::Complex64;

    #[test]
    fn axpy_and_dot() {
        let x = vec![1.0f64, 2.0, 3.0];
        let mut y = vec![1.0f64, 1.0, 1.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, vec![3.0, 5.0, 7.0]);
        assert_eq!(dot(&x, &y), 3.0 + 10.0 + 21.0);
    }

    #[test]
    fn dotc_conjugates_left() {
        let x = vec![Complex64::new(0.0, 1.0)];
        let y = vec![Complex64::new(0.0, 1.0)];
        // conj(i) * i = 1
        assert_eq!(dotc(&x, &y), Complex64::from_real(1.0));
        // unconjugated: i * i = -1
        assert_eq!(dot(&x, &y), Complex64::from_real(-1.0));
    }

    #[test]
    fn nrm2_overflow_safe() {
        let x = vec![1e200f64, 1e200];
        let n = nrm2(&x);
        assert!(n.is_finite());
        assert!((n - 1e200 * 2f64.sqrt()).abs() / n < 1e-14);
    }

    #[test]
    fn nrm2_zero_vector() {
        assert_eq!(nrm2(&[0.0f64; 5]), 0.0);
        assert_eq!(nrm2::<f64>(&[]), 0.0);
    }

    #[test]
    fn iamax_picks_abs1_max() {
        let x = vec![
            Complex64::new(1.0, 1.0),  // abs1 = 2
            Complex64::new(0.0, 2.5),  // abs1 = 2.5
            Complex64::new(-2.0, 0.0), // abs1 = 2
        ];
        assert_eq!(iamax(&x), 1);
    }

    #[test]
    fn add_matches_formula() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut b = Matrix::from_rows(&[&[10.0, 20.0], &[30.0, 40.0]]);
        add(2.0, a.as_ref(), -1.0, b.as_mut());
        assert_eq!(b[(0, 0)], 2.0 - 10.0);
        assert_eq!(b[(1, 1)], 8.0 - 40.0);
    }

    #[test]
    fn scale_real_complex() {
        let mut a = Matrix::from_fn(2, 2, |i, j| Complex64::new(i as f64, j as f64));
        scale_real(0.5, a.as_mut());
        assert_eq!(a[(1, 1)], Complex64::new(0.5, 0.5));
    }
}
