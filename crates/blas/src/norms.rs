//! Matrix norms (LAPACK `lange` / `lantr` equivalents).

use polar_matrix::{Diag, MatRef, Norm, Uplo};
use polar_scalar::{Real, Scalar};

/// Per-column absolute sums, `internal::norm(Norm::One, ...)` of
/// Algorithm 2 line 6 — the starting vector of the two-norm estimator.
pub fn col_sums<S: Scalar>(a: MatRef<'_, S>) -> Vec<S::Real> {
    (0..a.ncols()).map(|j| a.col(j).iter().map(|x| x.abs()).sum()).collect()
}

/// Per-row absolute sums.
pub fn row_sums<S: Scalar>(a: MatRef<'_, S>) -> Vec<S::Real> {
    let mut sums = vec![S::Real::ZERO; a.nrows()];
    for j in 0..a.ncols() {
        for (s, x) in sums.iter_mut().zip(a.col(j)) {
            *s += x.abs();
        }
    }
    sums
}

/// General matrix norm.
pub fn norm<S: Scalar>(which: Norm, a: MatRef<'_, S>) -> S::Real {
    if a.is_empty() {
        return S::Real::ZERO;
    }
    match which {
        Norm::Max => {
            let mut m = S::Real::ZERO;
            for j in 0..a.ncols() {
                for x in a.col(j) {
                    m = m.max(x.abs());
                }
            }
            m
        }
        Norm::One => col_sums(a).into_iter().fold(S::Real::ZERO, S::Real::max),
        Norm::Inf => row_sums(a).into_iter().fold(S::Real::ZERO, S::Real::max),
        Norm::Fro => {
            // lassq-style two-accumulator scan for overflow safety
            let mut scale = S::Real::ZERO;
            let mut sumsq = S::Real::ONE;
            for j in 0..a.ncols() {
                for x in a.col(j) {
                    let v = x.abs();
                    if v > S::Real::ZERO {
                        if scale < v {
                            let r = scale / v;
                            sumsq = S::Real::ONE + sumsq * r * r;
                            scale = v;
                        } else {
                            let r = v / scale;
                            sumsq += r * r;
                        }
                    }
                }
            }
            scale * sumsq.sqrt()
        }
    }
}

/// Norm of a triangular matrix stored in the `uplo` triangle of `a`
/// (LAPACK `lantr`), used by `trcondest` on the `R` factor.
pub fn norm_triangular<S: Scalar>(
    which: Norm,
    uplo: Uplo,
    diag: Diag,
    a: MatRef<'_, S>,
) -> S::Real {
    let m = a.nrows();
    let n = a.ncols();
    if m == 0 || n == 0 {
        return S::Real::ZERO;
    }
    let in_triangle = |i: usize, j: usize| match uplo {
        Uplo::Upper => i <= j,
        Uplo::Lower => i >= j,
    };
    let elem = |i: usize, j: usize| -> S::Real {
        if i == j && diag == Diag::Unit {
            S::Real::ONE
        } else if in_triangle(i, j) {
            a.at(i, j).abs()
        } else {
            S::Real::ZERO
        }
    };
    match which {
        Norm::Max => {
            let mut v = S::Real::ZERO;
            for j in 0..n {
                for i in 0..m {
                    v = v.max(elem(i, j));
                }
            }
            v
        }
        Norm::One => {
            let mut v = S::Real::ZERO;
            for j in 0..n {
                let mut s = S::Real::ZERO;
                for i in 0..m {
                    s += elem(i, j);
                }
                v = v.max(s);
            }
            v
        }
        Norm::Inf => {
            let mut v = S::Real::ZERO;
            for i in 0..m {
                let mut s = S::Real::ZERO;
                for j in 0..n {
                    s += elem(i, j);
                }
                v = v.max(s);
            }
            v
        }
        Norm::Fro => {
            let mut s = S::Real::ZERO;
            for j in 0..n {
                for i in 0..m {
                    let e = elem(i, j);
                    s += e * e;
                }
            }
            s.sqrt()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polar_matrix::Matrix;
    use polar_scalar::Complex64;

    #[test]
    fn norms_of_known_matrix() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[-3.0, 4.0]]);
        let v = a.as_ref();
        assert_eq!(norm(Norm::Max, v), 4.0);
        assert_eq!(norm(Norm::One, v), 6.0); // col sums 4, 6
        assert_eq!(norm(Norm::Inf, v), 7.0); // row sums 3, 7
        let fro: f64 = norm(Norm::Fro, v);
        assert!((fro - 30f64.sqrt()).abs() < 1e-14);
    }

    #[test]
    fn complex_norms_use_modulus() {
        let a = Matrix::from_rows(&[&[Complex64::new(3.0, 4.0)]]);
        assert_eq!(norm(Norm::One, a.as_ref()), 5.0);
        assert_eq!(norm(Norm::Fro, a.as_ref()), 5.0);
    }

    #[test]
    fn fro_overflow_safe() {
        let a = Matrix::from_fn(2, 2, |_, _| 1e200f64);
        assert!(norm(Norm::Fro, a.as_ref()).is_finite());
    }

    #[test]
    fn col_row_sums() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[-3.0, 4.0]]);
        assert_eq!(col_sums(a.as_ref()), vec![4.0, 6.0]);
        assert_eq!(row_sums(a.as_ref()), vec![3.0, 7.0]);
    }

    #[test]
    fn triangular_norm_ignores_other_triangle() {
        // Full matrix has garbage in the strictly-lower part.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[999.0, 3.0]]);
        let one = norm_triangular(Norm::One, Uplo::Upper, Diag::NonUnit, a.as_ref());
        assert_eq!(one, 4.0); // col sums: 2, 1+3
        let unit = norm_triangular(Norm::One, Uplo::Upper, Diag::Unit, a.as_ref());
        assert_eq!(unit, 2.0); // diag treated as 1: col sums 1, 2
    }

    #[test]
    fn empty_matrix_norms_zero() {
        let a = Matrix::<f64>::zeros(0, 3);
        assert_eq!(norm(Norm::One, a.as_ref()), 0.0);
        assert_eq!(norm(Norm::Fro, a.as_ref()), 0.0);
    }
}
