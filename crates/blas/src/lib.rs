//! From-scratch parallel BLAS for the `polar-rs` workspace.
//!
//! Stands in for the vendor BLAS (cuBLAS / rocBLAS / ESSL / MKL) that SLATE
//! reaches through BLAS++ in the reproduced paper. Every kernel is generic
//! over [`polar_scalar::Scalar`] (the four paper data types) and operates on
//! [`polar_matrix::MatRef`] / [`polar_matrix::MatMut`] views.
//!
//! Parallelism follows the recursive-split pattern: kernels divide the
//! output into disjoint blocks with `split_at_row` / `split_at_col` and
//! recurse under [`rayon::join`], which is the shared-memory analogue of
//! the OpenMP task parallelism SLATE uses on a node.
//!
//! Kernel inventory (paper Algorithm 1 call sites in parentheses):
//! * [`gemm`] — general matrix multiply (lines 35, 52);
//! * [`gemm_a`] — the `gemmA` variant of §6.2 for tall `A`, skinny `C`
//!   (power-iteration matvecs of Algorithm 2);
//! * [`herk`] — Hermitian rank-k update (line 40);
//! * [`trsm`] — triangular solve (inside `posv`, line 41);
//! * [`trmm`] — triangular multiply (condition estimation);
//! * [`add`], [`scale`], [`copy_into`] — the `add` / `scale` / `copy`
//!   operations of Algorithm 1;
//! * [`norm`], [`col_sums`] — matrix norms (lines 9, 18, 48; Algorithm 2).

mod batched;
mod gemm;
mod level1;
mod norms;
mod packed;
pub mod params;
mod symm;
mod trsm;

pub use batched::{gemm_batched, gemm_batched_packed};
pub use gemm::{gemm, gemm_a, gemm_axpy, gemm_ref};
pub use level1::{add, axpy, copy_into, dot, dotc, iamax, nrm2, scale, scale_real};
pub use norms::{col_sums, norm, norm_triangular, row_sums};
pub use symm::{herk, herk_mirrored, mirror_triangle, symmetrize};
pub use trsm::{trmm, trsm};

/// Flop-count helpers shared with the performance model.
pub mod flops {
    /// Real-flop multiplier for one multiply-add in the given scalar type.
    /// Complex fused multiply-add costs 4 real multiplies + 4 adds ≈ 4x.
    pub fn type_factor(is_complex: bool) -> f64 {
        if is_complex {
            4.0
        } else {
            1.0
        }
    }

    /// `gemm` flops: `2 m n k`.
    pub fn gemm(m: usize, n: usize, k: usize) -> f64 {
        2.0 * m as f64 * n as f64 * k as f64
    }

    /// `herk` flops: `n (n+1) k` (half of gemm on the square output).
    pub fn herk(n: usize, k: usize) -> f64 {
        (n as f64) * (n as f64 + 1.0) * k as f64
    }

    /// `trsm` flops: `n m^2` (left side, `A` is `m x m`).
    pub fn trsm_left(m: usize, n: usize) -> f64 {
        n as f64 * (m as f64) * (m as f64)
    }

    /// `trsm` flops, right side (`A` is `n x n`).
    pub fn trsm_right(m: usize, n: usize) -> f64 {
        m as f64 * (n as f64) * (n as f64)
    }

    /// `geqrf` flops (LAWN 41, `m >= n`): `2 m n^2 - (2/3) n^3`.
    pub fn geqrf(m: usize, n: usize) -> f64 {
        let (m, n) = (m as f64, n as f64);
        2.0 * m * n * n - 2.0 / 3.0 * n * n * n
    }

    /// `orgqr` flops forming the full `m x n` Q from `n` reflectors
    /// (LAWN 41 with `k = n`): `2 m n^2 - (2/3) n^3`.
    pub fn orgqr(m: usize, n: usize) -> f64 {
        geqrf(m, n)
    }

    /// `unmqr` flops applying `k` reflectors to an `m x n` C from the
    /// left (LAWN 41): `4 m n k - 2 n k^2`.
    pub fn unmqr(m: usize, n: usize, k: usize) -> f64 {
        let (m, n, k) = (m as f64, n as f64, k as f64);
        4.0 * m * n * k - 2.0 * n * k * k
    }

    /// `potrf` flops: `n^3 / 3`.
    pub fn potrf(n: usize) -> f64 {
        let n = n as f64;
        n * n * n / 3.0
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn flop_formulas() {
        assert_eq!(super::flops::gemm(2, 3, 4), 48.0);
        assert_eq!(super::flops::herk(3, 2), 24.0);
        assert_eq!(super::flops::type_factor(true), 4.0);
    }
}
