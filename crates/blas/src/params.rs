//! Runtime-tunable kernel parameters.
//!
//! Every knob has a sane default and an env-var override so the ablation
//! binaries can sweep blocking parameters without rebuilding:
//!
//! | env var                     | meaning                                    |
//! |-----------------------------|--------------------------------------------|
//! | `POLAR_PAR_THRESHOLD_FLOPS` | min multiply-adds before kernels fork      |
//! | `POLAR_GEMM_MC`             | rows of the packed `A` block (L2 resident) |
//! | `POLAR_GEMM_KC`             | depth of the packed rank-`kc` update       |
//! | `POLAR_GEMM_NC`             | cols of the packed `B` block (L3 resident) |
//! | `POLAR_GEMM_MR`             | microkernel register rows (1..=16)         |
//! | `POLAR_GEMM_NR`             | microkernel register cols (1..=8)          |
//!
//! `MR`/`NR` default per scalar type (and to the shapes the SIMD
//! microkernels implement when the CPU supports them); setting the env
//! vars forces one shape for all types, falling back to the generic
//! microkernel if no SIMD kernel matches. Values are read once, at first
//! kernel call, and logged at debug level (`POLAR_LOG=debug`, or the
//! legacy `POLAR_DEBUG=1`).

use std::sync::OnceLock;

/// Hard caps on the microkernel tile so fringe temporaries can live on
/// the stack.
pub const MAX_MR: usize = 16;
/// See [`MAX_MR`].
pub const MAX_NR: usize = 8;

/// Cache-blocking and register-blocking configuration for packed GEMM.
#[derive(Debug, Clone, Copy)]
pub struct GemmParams {
    /// Rows of the packed block of `op(A)` (sized for L2).
    pub mc: usize,
    /// Inner (k) depth of one packed rank-`kc` update.
    pub kc: usize,
    /// Columns of the packed block of `op(B)` (sized for L3).
    pub nc: usize,
    /// Forced microkernel rows, if `POLAR_GEMM_MR` is set.
    pub mr_override: Option<usize>,
    /// Forced microkernel cols, if `POLAR_GEMM_NR` is set.
    pub nr_override: Option<usize>,
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok().filter(|&v| v > 0)
}

/// The process-wide GEMM blocking parameters (env read once).
pub fn gemm_params() -> &'static GemmParams {
    static PARAMS: OnceLock<GemmParams> = OnceLock::new();
    PARAMS.get_or_init(|| {
        let p = GemmParams {
            mc: env_usize("POLAR_GEMM_MC").unwrap_or(128),
            kc: env_usize("POLAR_GEMM_KC").unwrap_or(256),
            nc: env_usize("POLAR_GEMM_NC").unwrap_or(2048),
            mr_override: env_usize("POLAR_GEMM_MR").map(|v| v.clamp(1, MAX_MR)),
            nr_override: env_usize("POLAR_GEMM_NR").map(|v| v.clamp(1, MAX_NR)),
        };
        polar_obs::log!(
            polar_obs::LogLevel::Debug,
            "blas params: mc={} kc={} nc={} mr={:?} nr={:?} par_threshold={}",
            p.mc,
            p.kc,
            p.nc,
            p.mr_override,
            p.nr_override,
            par_threshold_flops()
        );
        p
    })
}

/// Problem-size threshold (in multiply-add operations) below which kernels
/// run sequentially instead of forking pool tasks.
pub fn par_threshold_flops() -> usize {
    static THRESHOLD: OnceLock<usize> = OnceLock::new();
    *THRESHOLD.get_or_init(|| env_usize("POLAR_PAR_THRESHOLD_FLOPS").unwrap_or(1 << 16))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let p = gemm_params();
        assert!(p.kc >= 16 && p.mc >= 16 && p.nc >= 16);
        assert!(par_threshold_flops() >= 1);
    }

    #[test]
    fn env_parser_rejects_junk() {
        assert_eq!(env_usize("POLAR_TEST_UNSET_VAR_XYZ"), None);
    }
}
