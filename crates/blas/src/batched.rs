//! Batch-strided GEMM over [`BatchedDense`] operands.
//!
//! `gemm_batched` computes `C_k := alpha * op(A_k) * op(B_k) + beta * C_k`
//! for every entry `k` of a same-shape batch. Per-solve overhead is
//! amortized across the batch instead of paid per matrix:
//!
//! * dimension checks, microkernel selection, and the observability span
//!   happen **once** per batch, not once per entry;
//! * each entry runs the sequential `gemm_leaf` (the packed BLIS-style
//!   microkernel path for problems that amortize packing, the
//!   autovectorized axpy loop below that) — no per-entry parallel-split
//!   decision trees;
//! * parallelism comes from one recursive fork over the *batch index*,
//!   so a batch of small GEMMs fills the work-stealing pool with exactly
//!   one parallel region.

use crate::gemm::gemm_leaf;
use crate::packed::{
    gemm_packed_with, macro_kernel, pack_a, pack_b, scale_block, select_kernel, tile_shape,
};
use crate::params::{gemm_params, par_threshold_flops};
use polar_matrix::{BatchedDense, BatchedMut, BatchedRef, Op};
use polar_scalar::Scalar;

/// Batched GEMM: `C_k := alpha * op_a(A_k) * op_b(B_k) + beta * C_k` for
/// every entry of the batch. All three batches must have the same batch
/// count; shapes are validated once (they are shared by construction).
pub fn gemm_batched<S: Scalar>(
    op_a: Op,
    op_b: Op,
    alpha: S,
    a: &BatchedDense<S>,
    b: &BatchedDense<S>,
    beta: S,
    c: &mut BatchedDense<S>,
) {
    let batch = c.batch();
    assert_eq!(a.batch(), batch, "gemm_batched: A batch mismatch");
    assert_eq!(b.batch(), batch, "gemm_batched: B batch mismatch");
    let m = c.nrows();
    let n = c.ncols();
    let (am, ak) = op_a.apply_dims(a.nrows(), a.ncols());
    let (bk, bn) = op_b.apply_dims(b.nrows(), b.ncols());
    assert_eq!(am, m, "gemm_batched: A rows mismatch");
    assert_eq!(bn, n, "gemm_batched: B cols mismatch");
    assert_eq!(ak, bk, "gemm_batched: inner dim mismatch");
    if batch == 0 || m == 0 || n == 0 {
        return;
    }
    let _obs = polar_obs::kernel_span(
        polar_obs::KernelClass::Gemm,
        "gemm_batched",
        batch as f64 * crate::flops::type_factor(S::IS_COMPLEX) * crate::flops::gemm(m, n, ak),
        [m, n, batch],
    );

    // Fork grain over the batch index: each side of a split owns a
    // contiguous run of entries. One entry is the smallest unit (entries
    // are independent, and per-entry problems are small by design).
    let per_entry = m.saturating_mul(n).saturating_mul(ak.max(1));
    let threads = rayon::current_num_threads();
    let grain = if threads <= 1 {
        batch
    } else {
        (par_threshold_flops() / per_entry.max(1)).clamp(1, batch.max(1))
    };

    let ctx = BatchCtx { op_a, op_b, alpha, beta, k: ak };
    batched_rec(&ctx, a, b, EntriesMut::new(c), 0, grain);
}

/// Cap (in elements per operand) on the batch-spanning pack slabs of
/// [`gemm_batched_packed`]. Batches whose packed panels exceed it fall
/// back to the per-entry five-loop with shared (but per-entry-sized)
/// buffers, which bounds workspace at a few MiB regardless of batch size.
const BATCH_PACK_CAP: usize = 1 << 20;

/// Batch-major packed GEMM: `C_k := alpha * op_a(A_k) * op_b(B_k) +
/// beta * C_k` driven through the BLIS microkernels with **one** pack
/// sweep serving the whole batch.
///
/// Where [`gemm_batched`] re-enters the per-entry leaf (re-deciding the
/// packing threshold, allocating pack buffers, and falling back to the
/// axpy loop for sub-threshold entries), this path commits to the packed
/// microkernel once for the batch:
///
/// * kernel selection, blocking parameters, and workspace allocation
///   happen once per call;
/// * per KC block, the A and B micro-panels of *every* entry are packed
///   into two contiguous batch-spanning slabs in one sweep, then one
///   macro-kernel sweep streams those slabs through the SIMD microkernel
///   entry by entry — pack cost and blocking-loop overhead amortize over
///   the batch instead of multiplying by it;
/// * small entries (below the per-entry packing threshold, e.g. `n = 16`)
///   still get the microkernel, which the per-entry heuristic denies them.
///
/// Entries too large for one `(MC, NC)` block (or exceeding
/// [`BATCH_PACK_CAP`]) run the standard five-loop per entry over shared
/// buffers — still amortizing allocation, just not the pack sweep.
///
/// The sweep is sequential and its operation order is fixed by shape
/// alone, so results are bitwise reproducible across thread counts
/// (deterministic replay included).
pub fn gemm_batched_packed<S: Scalar>(
    op_a: Op,
    op_b: Op,
    alpha: S,
    a: BatchedRef<'_, S>,
    b: BatchedRef<'_, S>,
    beta: S,
    mut c: BatchedMut<'_, S>,
) {
    let batch = c.batch();
    assert_eq!(a.batch(), batch, "gemm_batched_packed: A batch mismatch");
    assert_eq!(b.batch(), batch, "gemm_batched_packed: B batch mismatch");
    let m = c.nrows();
    let n = c.ncols();
    let (am, ak) = op_a.apply_dims(a.nrows(), a.ncols());
    let (bk, bn) = op_b.apply_dims(b.nrows(), b.ncols());
    assert_eq!(am, m, "gemm_batched_packed: A rows mismatch");
    assert_eq!(bn, n, "gemm_batched_packed: B cols mismatch");
    assert_eq!(ak, bk, "gemm_batched_packed: inner dim mismatch");
    if batch == 0 || m == 0 || n == 0 {
        return;
    }
    let k = ak;
    let _obs = polar_obs::kernel_span(
        polar_obs::KernelClass::Gemm,
        "gemm_batched_packed",
        batch as f64 * crate::flops::type_factor(S::IS_COMPLEX) * crate::flops::gemm(m, n, k),
        [m, n, batch],
    );
    if k == 0 || alpha == S::ZERO {
        for e in 0..batch {
            let mut ce = c.mat_mut(e);
            scale_block(&mut ce, beta);
        }
        return;
    }

    let p = gemm_params();
    let (mr, nr) = tile_shape::<S>();
    let kern = select_kernel::<S>(mr, nr);
    let kc = p.kc.min(k);
    // per-entry micro-panel strides within the batch-spanning slabs
    let a_stride = m.next_multiple_of(mr) * kc;
    let b_stride = n.next_multiple_of(nr) * kc;

    if m <= p.mc && n <= p.nc && a_stride.max(b_stride) <= BATCH_PACK_CAP {
        // One pack-buffer pair serves the whole batch: every entry's
        // panels are packed into the SAME (MR/NR-aligned) buffers and fed
        // to the microkernels immediately, so the buffers stay resident in
        // L1/L2 across the entire sweep. A batch-spanning slab (slot per
        // entry) measures ~2x slower here: each entry then writes and
        // reads cold lines, and at these sizes the pack traffic dominates.
        // Allocation, zero-fill, blocking setup, and kernel selection all
        // happen once per call instead of once per entry.
        let mut apack = vec![S::ZERO; a_stride];
        let mut bpack = vec![S::ZERO; b_stride];
        for pc in (0..k).step_by(kc) {
            let kcb = kc.min(k - pc);
            let beta_eff = if pc == 0 { beta } else { S::ONE };
            let ap = m.next_multiple_of(mr) * kcb;
            let bp = n.next_multiple_of(nr) * kcb;
            for e in 0..batch {
                pack_a(op_a, a.mat(e), 0, pc, m, kcb, mr, &mut apack[..ap]);
                pack_b(op_b, b.mat(e), pc, 0, kcb, n, nr, &mut bpack[..bp]);
                macro_kernel(
                    kern,
                    alpha,
                    &apack[..ap],
                    &bpack[..bp],
                    beta_eff,
                    c.mat_mut(e),
                    kcb,
                    mr,
                    nr,
                );
            }
        }
        return;
    }

    // entries larger than one (MC, NC) block: standard five-loop per
    // entry, with the pack buffers hoisted out of the batch loop
    let mut apack = vec![S::ZERO; p.mc.min(m).next_multiple_of(mr) * kc];
    let mut bpack = vec![S::ZERO; p.nc.min(n).next_multiple_of(nr) * kc];
    for e in 0..batch {
        gemm_packed_with(
            op_a,
            op_b,
            alpha,
            a.mat(e),
            b.mat(e),
            beta,
            c.mat_mut(e),
            &mut apack,
            &mut bpack,
        );
    }
}

struct BatchCtx<S> {
    op_a: Op,
    op_b: Op,
    alpha: S,
    beta: S,
    k: usize,
}

/// Mutable per-entry access to a range of a batched C, splittable at an
/// entry boundary (entries are disjoint slices of the backing buffer).
struct EntriesMut<'a, S> {
    rows: usize,
    cols: usize,
    data: &'a mut [S],
}

impl<'a, S: Scalar> EntriesMut<'a, S> {
    fn new(c: &'a mut BatchedDense<S>) -> Self {
        let (rows, cols) = (c.nrows(), c.ncols());
        Self { rows, cols, data: c.as_mut_slice() }
    }

    fn len(&self) -> usize {
        self.data.len().checked_div(self.rows * self.cols).unwrap_or(0)
    }

    fn split_at(self, k: usize) -> (Self, Self) {
        let (lo, hi) = self.data.split_at_mut(k * self.rows * self.cols);
        (
            Self { rows: self.rows, cols: self.cols, data: lo },
            Self { rows: self.rows, cols: self.cols, data: hi },
        )
    }

    fn mat_mut(&mut self, k: usize) -> polar_matrix::MatMut<'_, S> {
        let per = self.rows * self.cols;
        polar_matrix::MatMut::from_slice(
            &mut self.data[k * per..(k + 1) * per],
            self.rows,
            self.cols,
            self.rows,
        )
    }
}

fn batched_rec<S: Scalar>(
    ctx: &BatchCtx<S>,
    a: &BatchedDense<S>,
    b: &BatchedDense<S>,
    mut c: EntriesMut<'_, S>,
    base: usize,
    grain: usize,
) {
    let count = c.len();
    if count <= grain {
        for k in 0..count {
            gemm_leaf(
                ctx.op_a,
                ctx.op_b,
                ctx.alpha,
                a.mat(base + k),
                b.mat(base + k),
                ctx.beta,
                c.mat_mut(k),
                ctx.k,
            );
        }
        return;
    }
    let h = count / 2;
    let (c1, c2) = c.split_at(h);
    rayon::join(
        || batched_rec(ctx, a, b, c1, base, grain),
        || batched_rec(ctx, a, b, c2, base + h, grain),
    );
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use crate::gemm_ref;
    use polar_matrix::Matrix;
    use polar_scalar::{Complex32, Complex64, Real};

    fn rand_batch<S: Scalar>(m: usize, n: usize, batch: usize, seed: u64) -> BatchedDense<S> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut out = BatchedDense::zeros(m, n, batch);
        for v in out.as_mut_slice() {
            let re = next();
            let im = next();
            *v = S::from_parts(S::Real::from_f64(re), S::Real::from_f64(im));
        }
        out
    }

    fn check_type<S: Scalar>(m: usize, n: usize, k: usize, batch: usize, tol: f64) {
        let a = rand_batch::<S>(m, k, batch, 1);
        let b = rand_batch::<S>(k, n, batch, 2);
        let mut c = rand_batch::<S>(m, n, batch, 3);
        let alpha = S::from_f64(0.75);
        let beta = S::from_f64(-0.5);

        let mut expect: Vec<Matrix<S>> = (0..batch).map(|i| c.to_matrix(i)).collect();
        for i in 0..batch {
            gemm_ref(Op::NoTrans, Op::NoTrans, alpha, a.mat(i), b.mat(i), beta, expect[i].as_mut());
        }
        gemm_batched(Op::NoTrans, Op::NoTrans, alpha, &a, &b, beta, &mut c);
        for i in 0..batch {
            for j in 0..n {
                for r in 0..m {
                    let d = (c.mat(i).at(r, j) - expect[i][(r, j)]).abs().to_f64();
                    assert!(d <= tol, "{} entry {i} ({r},{j}) diff {d}", S::TYPE_TAG);
                }
            }
        }
    }

    #[test]
    fn matches_reference_all_types() {
        check_type::<f64>(16, 16, 16, 5, 1e-12);
        check_type::<f32>(16, 16, 16, 5, 1e-4);
        check_type::<Complex64>(12, 12, 12, 4, 1e-12);
        check_type::<Complex32>(12, 12, 12, 4, 1e-4);
    }

    #[test]
    fn transposed_operands_and_odd_shapes() {
        // op(A): 7x13 from A 13x7 transposed, odd batch, rectangular C
        let batch = 3;
        let a = rand_batch::<f64>(13, 7, batch, 11);
        let b = rand_batch::<f64>(13, 5, batch, 12);
        let mut c = BatchedDense::<f64>::zeros(7, 5, batch);
        let mut expect: Vec<Matrix<f64>> = (0..batch).map(|i| c.to_matrix(i)).collect();
        for i in 0..batch {
            gemm_ref(Op::Trans, Op::NoTrans, 1.0, a.mat(i), b.mat(i), 0.0, expect[i].as_mut());
        }
        gemm_batched(Op::Trans, Op::NoTrans, 1.0, &a, &b, 0.0, &mut c);
        for i in 0..batch {
            for j in 0..5 {
                for r in 0..7 {
                    assert!((c.mat(i).at(r, j) - expect[i][(r, j)]).abs() <= 1e-12);
                }
            }
        }
    }

    #[test]
    fn empty_batch_is_inert() {
        let a = BatchedDense::<f64>::zeros(4, 4, 0);
        let b = BatchedDense::<f64>::zeros(4, 4, 0);
        let mut c = BatchedDense::<f64>::zeros(4, 4, 0);
        gemm_batched(Op::NoTrans, Op::NoTrans, 1.0, &a, &b, 0.0, &mut c);
    }

    #[test]
    #[should_panic(expected = "batch mismatch")]
    fn batch_count_mismatch_rejected() {
        let a = BatchedDense::<f64>::zeros(4, 4, 2);
        let b = BatchedDense::<f64>::zeros(4, 4, 3);
        let mut c = BatchedDense::<f64>::zeros(4, 4, 2);
        gemm_batched(Op::NoTrans, Op::NoTrans, 1.0, &a, &b, 0.0, &mut c);
    }

    fn check_packed_type<S: Scalar>(
        m: usize,
        n: usize,
        k: usize,
        batch: usize,
        op_a: Op,
        op_b: Op,
        tol: f64,
    ) {
        let (ar, ac) = if op_a == Op::NoTrans { (m, k) } else { (k, m) };
        let (br, bc) = if op_b == Op::NoTrans { (k, n) } else { (n, k) };
        let a = rand_batch::<S>(ar, ac, batch, 21);
        let b = rand_batch::<S>(br, bc, batch, 22);
        let mut c = rand_batch::<S>(m, n, batch, 23);
        let alpha = S::from_f64(1.25);
        let beta = S::from_f64(-0.5);

        let mut expect: Vec<Matrix<S>> = (0..batch).map(|i| c.to_matrix(i)).collect();
        for i in 0..batch {
            gemm_ref(op_a, op_b, alpha, a.mat(i), b.mat(i), beta, expect[i].as_mut());
        }
        gemm_batched_packed(
            op_a,
            op_b,
            alpha,
            a.as_batched_ref(),
            b.as_batched_ref(),
            beta,
            c.as_batched_mut(),
        );
        for i in 0..batch {
            for j in 0..n {
                for r in 0..m {
                    let d = (c.mat(i).at(r, j) - expect[i][(r, j)]).abs().to_f64();
                    assert!(
                        d <= tol,
                        "{} entry {i} ({r},{j}) diff {d} [{op_a:?} {op_b:?} m={m} n={n} k={k}]",
                        S::TYPE_TAG
                    );
                }
            }
        }
    }

    #[test]
    fn batch_major_matches_reference_all_types() {
        // below the per-entry packing threshold (n = 16) and above it
        for (m, n, k) in [(16, 16, 16), (32, 32, 32), (17, 13, 29)] {
            check_packed_type::<f64>(m, n, k, 5, Op::NoTrans, Op::NoTrans, 1e-12);
            check_packed_type::<f32>(m, n, k, 5, Op::NoTrans, Op::NoTrans, 1e-3);
            check_packed_type::<Complex64>(m, n, k, 4, Op::NoTrans, Op::NoTrans, 1e-12);
            check_packed_type::<Complex32>(m, n, k, 4, Op::NoTrans, Op::NoTrans, 1e-3);
        }
    }

    #[test]
    fn batch_major_transposed_operands() {
        check_packed_type::<f64>(7, 13, 40, 3, Op::Trans, Op::NoTrans, 1e-12);
        check_packed_type::<f64>(12, 9, 25, 3, Op::NoTrans, Op::Trans, 1e-12);
        check_packed_type::<Complex64>(10, 8, 12, 3, Op::ConjTrans, Op::NoTrans, 1e-12);
        check_packed_type::<Complex64>(8, 10, 12, 3, Op::NoTrans, Op::ConjTrans, 1e-12);
    }

    #[test]
    fn batch_major_spans_kc_blocks_and_prefix() {
        // k beyond KC exercises the multi-pass accumulation (beta_eff = 1)
        let k = crate::params::gemm_params().kc + 11;
        check_packed_type::<f64>(24, 18, k, 3, Op::NoTrans, Op::NoTrans, 1e-10);

        // a prefix view runs over the leading entries only
        let a = rand_batch::<f64>(8, 8, 4, 31);
        let b = rand_batch::<f64>(8, 8, 4, 32);
        let mut c = rand_batch::<f64>(8, 8, 4, 33);
        let untouched = c.to_matrix(3);
        let mut expect: Vec<Matrix<f64>> = (0..3).map(|i| c.to_matrix(i)).collect();
        for i in 0..3 {
            gemm_ref(Op::NoTrans, Op::NoTrans, 1.0, a.mat(i), b.mat(i), 0.0, expect[i].as_mut());
        }
        gemm_batched_packed(
            Op::NoTrans,
            Op::NoTrans,
            1.0,
            a.as_batched_ref().prefix(3),
            b.as_batched_ref().prefix(3),
            0.0,
            c.as_batched_mut().prefix(3),
        );
        for i in 0..3 {
            for j in 0..8 {
                for r in 0..8 {
                    assert!((c.mat(i).at(r, j) - expect[i][(r, j)]).abs() <= 1e-12);
                }
            }
        }
        assert_eq!(c.to_matrix(3), untouched, "prefix must not touch trailing entries");
    }

    #[test]
    fn batch_major_large_entry_fallback_matches() {
        // m beyond MC forces the shared-buffer per-entry five-loop
        let m = crate::params::gemm_params().mc + 19;
        check_packed_type::<f64>(m, 24, 16, 2, Op::NoTrans, Op::NoTrans, 1e-11);
    }
}
