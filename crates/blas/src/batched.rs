//! Batch-strided GEMM over [`BatchedDense`] operands.
//!
//! `gemm_batched` computes `C_k := alpha * op(A_k) * op(B_k) + beta * C_k`
//! for every entry `k` of a same-shape batch. Per-solve overhead is
//! amortized across the batch instead of paid per matrix:
//!
//! * dimension checks, microkernel selection, and the observability span
//!   happen **once** per batch, not once per entry;
//! * each entry runs the sequential `gemm_leaf` (the packed BLIS-style
//!   microkernel path for problems that amortize packing, the
//!   autovectorized axpy loop below that) — no per-entry parallel-split
//!   decision trees;
//! * parallelism comes from one recursive fork over the *batch index*,
//!   so a batch of small GEMMs fills the work-stealing pool with exactly
//!   one parallel region.

use crate::gemm::gemm_leaf;
use crate::params::par_threshold_flops;
use polar_matrix::{BatchedDense, Op};
use polar_scalar::Scalar;

/// Batched GEMM: `C_k := alpha * op_a(A_k) * op_b(B_k) + beta * C_k` for
/// every entry of the batch. All three batches must have the same batch
/// count; shapes are validated once (they are shared by construction).
pub fn gemm_batched<S: Scalar>(
    op_a: Op,
    op_b: Op,
    alpha: S,
    a: &BatchedDense<S>,
    b: &BatchedDense<S>,
    beta: S,
    c: &mut BatchedDense<S>,
) {
    let batch = c.batch();
    assert_eq!(a.batch(), batch, "gemm_batched: A batch mismatch");
    assert_eq!(b.batch(), batch, "gemm_batched: B batch mismatch");
    let m = c.nrows();
    let n = c.ncols();
    let (am, ak) = op_a.apply_dims(a.nrows(), a.ncols());
    let (bk, bn) = op_b.apply_dims(b.nrows(), b.ncols());
    assert_eq!(am, m, "gemm_batched: A rows mismatch");
    assert_eq!(bn, n, "gemm_batched: B cols mismatch");
    assert_eq!(ak, bk, "gemm_batched: inner dim mismatch");
    if batch == 0 || m == 0 || n == 0 {
        return;
    }
    let _obs = polar_obs::kernel_span(
        polar_obs::KernelClass::Gemm,
        "gemm_batched",
        batch as f64 * crate::flops::type_factor(S::IS_COMPLEX) * crate::flops::gemm(m, n, ak),
        [m, n, batch],
    );

    // Fork grain over the batch index: each side of a split owns a
    // contiguous run of entries. One entry is the smallest unit (entries
    // are independent, and per-entry problems are small by design).
    let per_entry = m.saturating_mul(n).saturating_mul(ak.max(1));
    let threads = rayon::current_num_threads();
    let grain = if threads <= 1 {
        batch
    } else {
        (par_threshold_flops() / per_entry.max(1)).clamp(1, batch.max(1))
    };

    let ctx = BatchCtx { op_a, op_b, alpha, beta, k: ak };
    batched_rec(&ctx, a, b, EntriesMut::new(c), 0, grain);
}

struct BatchCtx<S> {
    op_a: Op,
    op_b: Op,
    alpha: S,
    beta: S,
    k: usize,
}

/// Mutable per-entry access to a range of a batched C, splittable at an
/// entry boundary (entries are disjoint slices of the backing buffer).
struct EntriesMut<'a, S> {
    rows: usize,
    cols: usize,
    data: &'a mut [S],
}

impl<'a, S: Scalar> EntriesMut<'a, S> {
    fn new(c: &'a mut BatchedDense<S>) -> Self {
        let (rows, cols) = (c.nrows(), c.ncols());
        Self { rows, cols, data: c.as_mut_slice() }
    }

    fn len(&self) -> usize {
        self.data.len().checked_div(self.rows * self.cols).unwrap_or(0)
    }

    fn split_at(self, k: usize) -> (Self, Self) {
        let (lo, hi) = self.data.split_at_mut(k * self.rows * self.cols);
        (
            Self { rows: self.rows, cols: self.cols, data: lo },
            Self { rows: self.rows, cols: self.cols, data: hi },
        )
    }

    fn mat_mut(&mut self, k: usize) -> polar_matrix::MatMut<'_, S> {
        let per = self.rows * self.cols;
        polar_matrix::MatMut::from_slice(
            &mut self.data[k * per..(k + 1) * per],
            self.rows,
            self.cols,
            self.rows,
        )
    }
}

fn batched_rec<S: Scalar>(
    ctx: &BatchCtx<S>,
    a: &BatchedDense<S>,
    b: &BatchedDense<S>,
    mut c: EntriesMut<'_, S>,
    base: usize,
    grain: usize,
) {
    let count = c.len();
    if count <= grain {
        for k in 0..count {
            gemm_leaf(
                ctx.op_a,
                ctx.op_b,
                ctx.alpha,
                a.mat(base + k),
                b.mat(base + k),
                ctx.beta,
                c.mat_mut(k),
                ctx.k,
            );
        }
        return;
    }
    let h = count / 2;
    let (c1, c2) = c.split_at(h);
    rayon::join(
        || batched_rec(ctx, a, b, c1, base, grain),
        || batched_rec(ctx, a, b, c2, base + h, grain),
    );
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use crate::gemm_ref;
    use polar_matrix::Matrix;
    use polar_scalar::{Complex32, Complex64, Real};

    fn rand_batch<S: Scalar>(m: usize, n: usize, batch: usize, seed: u64) -> BatchedDense<S> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut out = BatchedDense::zeros(m, n, batch);
        for v in out.as_mut_slice() {
            let re = next();
            let im = next();
            *v = S::from_parts(S::Real::from_f64(re), S::Real::from_f64(im));
        }
        out
    }

    fn check_type<S: Scalar>(m: usize, n: usize, k: usize, batch: usize, tol: f64) {
        let a = rand_batch::<S>(m, k, batch, 1);
        let b = rand_batch::<S>(k, n, batch, 2);
        let mut c = rand_batch::<S>(m, n, batch, 3);
        let alpha = S::from_f64(0.75);
        let beta = S::from_f64(-0.5);

        let mut expect: Vec<Matrix<S>> = (0..batch).map(|i| c.to_matrix(i)).collect();
        for i in 0..batch {
            gemm_ref(Op::NoTrans, Op::NoTrans, alpha, a.mat(i), b.mat(i), beta, expect[i].as_mut());
        }
        gemm_batched(Op::NoTrans, Op::NoTrans, alpha, &a, &b, beta, &mut c);
        for i in 0..batch {
            for j in 0..n {
                for r in 0..m {
                    let d = (c.mat(i).at(r, j) - expect[i][(r, j)]).abs().to_f64();
                    assert!(d <= tol, "{} entry {i} ({r},{j}) diff {d}", S::TYPE_TAG);
                }
            }
        }
    }

    #[test]
    fn matches_reference_all_types() {
        check_type::<f64>(16, 16, 16, 5, 1e-12);
        check_type::<f32>(16, 16, 16, 5, 1e-4);
        check_type::<Complex64>(12, 12, 12, 4, 1e-12);
        check_type::<Complex32>(12, 12, 12, 4, 1e-4);
    }

    #[test]
    fn transposed_operands_and_odd_shapes() {
        // op(A): 7x13 from A 13x7 transposed, odd batch, rectangular C
        let batch = 3;
        let a = rand_batch::<f64>(13, 7, batch, 11);
        let b = rand_batch::<f64>(13, 5, batch, 12);
        let mut c = BatchedDense::<f64>::zeros(7, 5, batch);
        let mut expect: Vec<Matrix<f64>> = (0..batch).map(|i| c.to_matrix(i)).collect();
        for i in 0..batch {
            gemm_ref(Op::Trans, Op::NoTrans, 1.0, a.mat(i), b.mat(i), 0.0, expect[i].as_mut());
        }
        gemm_batched(Op::Trans, Op::NoTrans, 1.0, &a, &b, 0.0, &mut c);
        for i in 0..batch {
            for j in 0..5 {
                for r in 0..7 {
                    assert!((c.mat(i).at(r, j) - expect[i][(r, j)]).abs() <= 1e-12);
                }
            }
        }
    }

    #[test]
    fn empty_batch_is_inert() {
        let a = BatchedDense::<f64>::zeros(4, 4, 0);
        let b = BatchedDense::<f64>::zeros(4, 4, 0);
        let mut c = BatchedDense::<f64>::zeros(4, 4, 0);
        gemm_batched(Op::NoTrans, Op::NoTrans, 1.0, &a, &b, 0.0, &mut c);
    }

    #[test]
    #[should_panic(expected = "batch mismatch")]
    fn batch_count_mismatch_rejected() {
        let a = BatchedDense::<f64>::zeros(4, 4, 2);
        let b = BatchedDense::<f64>::zeros(4, 4, 3);
        let mut c = BatchedDense::<f64>::zeros(4, 4, 2);
        gemm_batched(Op::NoTrans, Op::NoTrans, 1.0, &a, &b, 0.0, &mut c);
    }
}
