//! Triangular solve and triangular multiply.

use crate::gemm::gemm;
use crate::params::par_threshold_flops;
use polar_matrix::{Diag, MatMut, MatRef, Matrix, Op, Side, Uplo};
use polar_scalar::Scalar;

/// Triangle order at or below which the per-column substitution kernel
/// runs directly; above it the solve recurses so the off-diagonal update
/// is a (packed) gemm.
const TRSM_BASE: usize = 64;

/// Effective element of `op(A)` for a triangular `A` stored in `uplo`.
#[inline]
fn tri_at<S: Scalar>(a: MatRef<'_, S>, op: Op, i: usize, j: usize) -> S {
    match op {
        Op::NoTrans => a.at(i, j),
        Op::Trans => a.at(j, i),
        Op::ConjTrans => a.at(j, i).conj(),
    }
}

/// Triangle of `op(A)` given the storage triangle of `A`.
#[inline]
fn effective_uplo(uplo: Uplo, op: Op) -> Uplo {
    match op {
        Op::NoTrans => uplo,
        Op::Trans | Op::ConjTrans => uplo.flip(),
    }
}

/// Triangular solve, BLAS `trsm`:
///
/// * `side = Left`:  solve `op(A) * X = alpha * B`;
/// * `side = Right`: solve `X * op(A) = alpha * B`;
///
/// `X` overwrites `B`. `A` is triangular (`uplo` triangle referenced,
/// `diag` selects implicit unit diagonal).
///
/// The QDWH Cholesky iteration applies two right-side solves with the
/// Cholesky factor `L` to form `A_k := A_{k-1} Z^{-1}` without inverting.
pub fn trsm<S: Scalar>(
    side: Side,
    uplo: Uplo,
    op: Op,
    diag: Diag,
    alpha: S,
    a: MatRef<'_, S>,
    b: MatMut<'_, S>,
) {
    assert_eq!(a.nrows(), a.ncols(), "trsm: A must be square");
    let flops = crate::flops::type_factor(S::IS_COMPLEX)
        * match side {
            Side::Left => crate::flops::trsm_left(b.nrows(), b.ncols()),
            Side::Right => crate::flops::trsm_right(b.nrows(), b.ncols()),
        };
    let _obs = polar_obs::kernel_span(
        polar_obs::KernelClass::Trsm,
        "trsm",
        flops,
        [b.nrows(), b.ncols(), a.nrows()],
    );
    match side {
        Side::Left => {
            assert_eq!(a.nrows(), b.nrows(), "trsm: dim mismatch");
            trsm_left_par(uplo, op, diag, alpha, a, b);
        }
        Side::Right => {
            assert_eq!(a.nrows(), b.ncols(), "trsm: dim mismatch");
            trsm_right_par(uplo, op, diag, alpha, a, b);
        }
    }
}

/// Block of `op(A)` covering rows `i0..i0+ni`, cols `j0..j0+nj` of the
/// *effective* (transposed) matrix, as a view plus the op to hand gemm.
#[inline]
fn op_block<S: Scalar>(
    a: MatRef<'_, S>,
    op: Op,
    i0: usize,
    j0: usize,
    ni: usize,
    nj: usize,
) -> MatRef<'_, S> {
    match op {
        Op::NoTrans => a.submatrix(i0, j0, ni, nj),
        Op::Trans | Op::ConjTrans => a.submatrix(j0, i0, nj, ni),
    }
}

/// Left solves are independent per column of `B`: split columns in parallel.
fn trsm_left_par<S: Scalar>(
    uplo: Uplo,
    op: Op,
    diag: Diag,
    alpha: S,
    a: MatRef<'_, S>,
    b: MatMut<'_, S>,
) {
    let m = b.nrows();
    let n = b.ncols();
    if m.saturating_mul(m).saturating_mul(n) / 2 > par_threshold_flops() && n > 1 {
        let h = n / 2;
        let (b1, b2) = b.split_at_col(h);
        rayon::join(
            || trsm_left_par(uplo, op, diag, alpha, a, b1),
            || trsm_left_par(uplo, op, diag, alpha, a, b2),
        );
        return;
    }
    trsm_left_blocked(uplo, op, diag, alpha, a, b);
}

/// Recursive blocked left solve: split `op(A)` into 2x2 quadrants so the
/// off-diagonal update runs through the packed gemm.
fn trsm_left_blocked<S: Scalar>(
    uplo: Uplo,
    op: Op,
    diag: Diag,
    alpha: S,
    a: MatRef<'_, S>,
    b: MatMut<'_, S>,
) {
    let m = b.nrows();
    if m <= TRSM_BASE {
        trsm_left_seq(uplo, op, diag, alpha, a, b);
        return;
    }
    let h = m / 2;
    let (mut b1, mut b2) = b.split_at_row(h);
    // diagonal blocks of op(A) are triangular with the same uplo/op
    let a11 = a.submatrix(0, 0, h, h);
    let a22 = a.submatrix(h, h, m - h, m - h);
    match effective_uplo(uplo, op) {
        // T = [T11 0; T21 T22]: forward — X1 first, then eliminate from B2
        Uplo::Lower => {
            trsm_left_blocked(uplo, op, diag, alpha, a11, b1.rb());
            let t21 = op_block(a, op, h, 0, m - h, h);
            gemm(op, Op::NoTrans, -S::ONE, t21, b1.as_ref(), alpha, b2.rb());
            trsm_left_blocked(uplo, op, diag, S::ONE, a22, b2);
        }
        // T = [T11 T12; 0 T22]: backward — X2 first, then eliminate from B1
        Uplo::Upper => {
            trsm_left_blocked(uplo, op, diag, alpha, a22, b2.rb());
            let t12 = op_block(a, op, 0, h, h, m - h);
            gemm(op, Op::NoTrans, -S::ONE, t12, b2.as_ref(), alpha, b1.rb());
            trsm_left_blocked(uplo, op, diag, S::ONE, a11, b1);
        }
    }
}

fn trsm_left_seq<S: Scalar>(
    uplo: Uplo,
    op: Op,
    diag: Diag,
    alpha: S,
    a: MatRef<'_, S>,
    mut b: MatMut<'_, S>,
) {
    let m = b.nrows();
    let eff = effective_uplo(uplo, op);
    for j in 0..b.ncols() {
        let bj = b.col_mut(j);
        if alpha != S::ONE {
            for x in bj.iter_mut() {
                *x *= alpha;
            }
        }
        match eff {
            // forward substitution
            Uplo::Lower => {
                for k in 0..m {
                    if diag == Diag::NonUnit {
                        bj[k] *= tri_at(a, op, k, k).recip();
                    }
                    let xk = bj[k];
                    if xk != S::ZERO {
                        match op {
                            Op::NoTrans => {
                                // contiguous column segment of A
                                let ak = &a.col(k)[k + 1..m];
                                for (bi, &aik) in bj[k + 1..m].iter_mut().zip(ak) {
                                    *bi -= xk * aik;
                                }
                            }
                            _ => {
                                for (i, bi) in bj.iter_mut().enumerate().take(m).skip(k + 1) {
                                    *bi -= xk * tri_at(a, op, i, k);
                                }
                            }
                        }
                    }
                }
            }
            // back substitution
            Uplo::Upper => {
                for k in (0..m).rev() {
                    if diag == Diag::NonUnit {
                        bj[k] *= tri_at(a, op, k, k).recip();
                    }
                    let xk = bj[k];
                    if xk != S::ZERO {
                        match op {
                            Op::NoTrans => {
                                let ak = &a.col(k)[..k];
                                for (bi, &aik) in bj[..k].iter_mut().zip(ak) {
                                    *bi -= xk * aik;
                                }
                            }
                            _ => {
                                for (i, bi) in bj.iter_mut().enumerate().take(k) {
                                    *bi -= xk * tri_at(a, op, i, k);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Right solves are independent per row of `B`: split rows in parallel.
fn trsm_right_par<S: Scalar>(
    uplo: Uplo,
    op: Op,
    diag: Diag,
    alpha: S,
    a: MatRef<'_, S>,
    b: MatMut<'_, S>,
) {
    let m = b.nrows();
    let n = b.ncols();
    if n.saturating_mul(n).saturating_mul(m) / 2 > par_threshold_flops() && m > 8 {
        let h = m / 2;
        let (b1, b2) = b.split_at_row(h);
        rayon::join(
            || trsm_right_par(uplo, op, diag, alpha, a, b1),
            || trsm_right_par(uplo, op, diag, alpha, a, b2),
        );
        return;
    }
    trsm_right_blocked(uplo, op, diag, alpha, a, b);
}

/// Recursive blocked right solve: split `op(A)` into 2x2 quadrants so the
/// off-diagonal update runs through the packed gemm.
fn trsm_right_blocked<S: Scalar>(
    uplo: Uplo,
    op: Op,
    diag: Diag,
    alpha: S,
    a: MatRef<'_, S>,
    b: MatMut<'_, S>,
) {
    let n = b.ncols();
    if n <= TRSM_BASE {
        trsm_right_seq(uplo, op, diag, alpha, a, b);
        return;
    }
    let h = n / 2;
    let (mut b1, mut b2) = b.split_at_col(h);
    let a11 = a.submatrix(0, 0, h, h);
    let a22 = a.submatrix(h, h, n - h, n - h);
    match effective_uplo(uplo, op) {
        // T = [T11 T12; 0 T22]: X1 first, then eliminate from B2
        Uplo::Upper => {
            trsm_right_blocked(uplo, op, diag, alpha, a11, b1.rb());
            let t12 = op_block(a, op, 0, h, h, n - h);
            gemm(Op::NoTrans, op, -S::ONE, b1.as_ref(), t12, alpha, b2.rb());
            trsm_right_blocked(uplo, op, diag, S::ONE, a22, b2);
        }
        // T = [T11 0; T21 T22]: X2 first, then eliminate from B1
        Uplo::Lower => {
            trsm_right_blocked(uplo, op, diag, alpha, a22, b2.rb());
            let t21 = op_block(a, op, h, 0, n - h, h);
            gemm(Op::NoTrans, op, -S::ONE, b2.as_ref(), t21, alpha, b1.rb());
            trsm_right_blocked(uplo, op, diag, S::ONE, a11, b1);
        }
    }
}

fn trsm_right_seq<S: Scalar>(
    uplo: Uplo,
    op: Op,
    diag: Diag,
    alpha: S,
    a: MatRef<'_, S>,
    mut b: MatMut<'_, S>,
) {
    let n = b.ncols();
    let eff = effective_uplo(uplo, op);
    if alpha != S::ONE {
        for j in 0..n {
            for x in b.col_mut(j) {
                *x *= alpha;
            }
        }
    }
    // X * T = B with T = op(A):
    //   T upper: ascending j — X[:,j] = (B[:,j] - sum_{l<j} X[:,l] T[l,j]) / T[j,j]
    //   T lower: descending j — X[:,j] = (B[:,j] - sum_{l>j} X[:,l] T[l,j]) / T[j,j]
    let cols: Box<dyn Iterator<Item = usize>> = match eff {
        Uplo::Upper => Box::new(0..n),
        Uplo::Lower => Box::new((0..n).rev()),
    };
    for j in cols {
        let range: Box<dyn Iterator<Item = usize>> = match eff {
            Uplo::Upper => Box::new(0..j),
            Uplo::Lower => Box::new(j + 1..n),
        };
        for l in range {
            let t = tri_at(a, op, l, j);
            if t == S::ZERO {
                continue;
            }
            // B[:,j] -= X[:,l] * t
            for i in 0..b.nrows() {
                let v = b.at(i, j) - b.at(i, l) * t;
                b.set(i, j, v);
            }
        }
        if diag == Diag::NonUnit {
            let d = tri_at(a, op, j, j).recip();
            for x in b.col_mut(j) {
                *x *= d;
            }
        }
    }
}

/// Triangular matrix multiply, BLAS `trmm`: `B := alpha * op(A) * B`
/// (`side = Left`) or `B := alpha * B * op(A)` (`side = Right`).
///
/// Correctness-oriented implementation: materializes the triangle of
/// `op(A)` into a dense temporary and delegates to [`gemm`]. Used only on
/// verification paths (factorization residuals, condition estimation
/// tests), never in the QDWH hot loop.
pub fn trmm<S: Scalar>(
    side: Side,
    uplo: Uplo,
    op: Op,
    diag: Diag,
    alpha: S,
    a: MatRef<'_, S>,
    mut b: MatMut<'_, S>,
) {
    assert_eq!(a.nrows(), a.ncols(), "trmm: A must be square");
    // Triangular multiply costs half the dense gemm it runs through below;
    // attribute the analytic (triangular) flops to the Trsm class and let
    // suppression hide the inner gemm.
    let flops = crate::flops::type_factor(S::IS_COMPLEX)
        * match side {
            Side::Left => crate::flops::trsm_left(b.nrows(), b.ncols()),
            Side::Right => crate::flops::trsm_right(b.nrows(), b.ncols()),
        };
    let _obs = polar_obs::kernel_span(
        polar_obs::KernelClass::Trsm,
        "trmm",
        flops,
        [b.nrows(), b.ncols(), a.nrows()],
    );
    let n = a.nrows();
    let mut t = Matrix::<S>::zeros(n, n);
    for j in 0..n {
        for i in 0..n {
            let in_tri = match uplo {
                Uplo::Upper => i <= j,
                Uplo::Lower => i >= j,
            };
            if i == j {
                t[(i, j)] = if diag == Diag::Unit { S::ONE } else { a.at(i, j) };
            } else if in_tri {
                t[(i, j)] = a.at(i, j);
            }
        }
    }
    let bc = b.as_ref().to_owned();
    match side {
        Side::Left => gemm(op, Op::NoTrans, alpha, t.as_ref(), bc.as_ref(), S::ZERO, b.rb()),
        Side::Right => gemm(Op::NoTrans, op, alpha, bc.as_ref(), t.as_ref(), S::ZERO, b.rb()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::gemm_ref;
    use polar_matrix::Matrix;
    use polar_scalar::Complex64;

    fn rand_tri(n: usize, uplo: Uplo, seed: u64) -> Matrix<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        Matrix::from_fn(n, n, |i, j| {
            let in_tri = match uplo {
                Uplo::Upper => i <= j,
                Uplo::Lower => i >= j,
            };
            if i == j {
                3.0 + next().abs() // well away from singular
            } else if in_tri {
                next()
            } else {
                f64::NAN // must never be referenced
            }
        })
    }

    fn check_trsm(side: Side, uplo: Uplo, op: Op, diag: Diag, m: usize, n: usize) {
        let asize = if side == Side::Left { m } else { n };
        let a = rand_tri(asize, uplo, 5);
        let b0 = Matrix::from_fn(m, n, |i, j| ((i * 7 + j * 3) % 11) as f64 - 5.0);
        let mut x = b0.clone();
        trsm(side, uplo, op, diag, 2.0, a.as_ref(), x.as_mut());
        assert!(!x.has_non_finite(), "NaN leaked from unreferenced triangle");

        // reconstruct: op(A)*X (left) or X*op(A) (right) == 2*B0
        let mut t = Matrix::<f64>::zeros(asize, asize);
        for j in 0..asize {
            for i in 0..asize {
                let in_tri = match uplo {
                    Uplo::Upper => i <= j,
                    Uplo::Lower => i >= j,
                };
                if in_tri {
                    t[(i, j)] = if i == j && diag == Diag::Unit { 1.0 } else { a[(i, j)] };
                }
            }
        }
        let mut recon = Matrix::<f64>::zeros(m, n);
        match side {
            Side::Left => {
                gemm_ref(op, Op::NoTrans, 1.0, t.as_ref(), x.as_ref(), 0.0, recon.as_mut())
            }
            Side::Right => {
                gemm_ref(Op::NoTrans, op, 1.0, x.as_ref(), t.as_ref(), 0.0, recon.as_mut())
            }
        }
        for j in 0..n {
            for i in 0..m {
                assert!(
                    (recon[(i, j)] - 2.0 * b0[(i, j)]).abs() < 1e-9,
                    "{side:?} {uplo:?} {op:?} {diag:?} at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn trsm_all_variants() {
        for side in [Side::Left, Side::Right] {
            for uplo in [Uplo::Upper, Uplo::Lower] {
                for op in [Op::NoTrans, Op::Trans] {
                    for diag in [Diag::NonUnit, Diag::Unit] {
                        check_trsm(side, uplo, op, diag, 9, 7);
                    }
                }
            }
        }
    }

    #[test]
    fn trsm_parallel_sizes() {
        check_trsm(Side::Left, Uplo::Lower, Op::NoTrans, Diag::NonUnit, 96, 150);
        check_trsm(Side::Right, Uplo::Lower, Op::Trans, Diag::NonUnit, 150, 96);
    }

    #[test]
    fn trsm_complex_conj_trans() {
        let n = 6;
        let a = Matrix::from_fn(n, n, |i, j| {
            if i > j {
                Complex64::default()
            } else if i == j {
                Complex64::new(2.0 + i as f64, 1.0)
            } else {
                Complex64::new(0.3 * (i as f64 - j as f64), 0.7)
            }
        });
        let b0 = Matrix::from_fn(n, 4, |i, j| Complex64::new(i as f64, j as f64));
        let mut x = b0.clone();
        let one = Complex64::from_real(1.0);
        trsm(Side::Left, Uplo::Upper, Op::ConjTrans, Diag::NonUnit, one, a.as_ref(), x.as_mut());
        // verify A^H X = B0
        let mut recon = Matrix::<Complex64>::zeros(n, 4);
        gemm_ref(
            Op::ConjTrans,
            Op::NoTrans,
            one,
            a.as_ref(),
            x.as_ref(),
            Complex64::default(),
            recon.as_mut(),
        );
        for j in 0..4 {
            for i in 0..n {
                assert!((recon[(i, j)] - b0[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn trmm_matches_dense_multiply() {
        let a = rand_tri(5, Uplo::Upper, 9);
        let b0 = Matrix::from_fn(5, 3, |i, j| (i + j) as f64);
        let mut b = b0.clone();
        trmm(Side::Left, Uplo::Upper, Op::NoTrans, Diag::NonUnit, 1.0, a.as_ref(), b.as_mut());
        for j in 0..3 {
            for i in 0..5 {
                let mut acc = 0.0;
                for l in i..5 {
                    acc += a[(i, l)] * b0[(l, j)];
                }
                assert!((b[(i, j)] - acc).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn trmm_right_side() {
        let a = rand_tri(4, Uplo::Lower, 10);
        let b0 = Matrix::from_fn(3, 4, |i, j| (i * 4 + j) as f64 - 5.0);
        let mut b = b0.clone();
        trmm(Side::Right, Uplo::Lower, Op::NoTrans, Diag::NonUnit, 2.0, a.as_ref(), b.as_mut());
        for j in 0..4 {
            for i in 0..3 {
                let mut acc = 0.0;
                for l in j..4 {
                    acc += b0[(i, l)] * a[(l, j)];
                }
                assert!((b[(i, j)] - 2.0 * acc).abs() < 1e-12, "({i},{j})");
            }
        }
    }

    #[test]
    fn trmm_unit_diag() {
        let mut a = rand_tri(3, Uplo::Upper, 11);
        // poison the diagonal: Unit must ignore it
        for i in 0..3 {
            a[(i, i)] = f64::NAN;
        }
        let b0 = Matrix::from_fn(3, 2, |i, j| (i + j) as f64);
        let mut b = b0.clone();
        trmm(Side::Left, Uplo::Upper, Op::NoTrans, Diag::Unit, 1.0, a.as_ref(), b.as_mut());
        assert!(!b.has_non_finite(), "unit diagonal must not be referenced");
    }

    #[test]
    fn trsm_alpha_zero_yields_zero() {
        let a = rand_tri(5, Uplo::Lower, 12);
        let mut b = Matrix::from_fn(5, 3, |i, j| (i + j) as f64 + 1.0);
        trsm(Side::Left, Uplo::Lower, Op::NoTrans, Diag::NonUnit, 0.0, a.as_ref(), b.as_mut());
        for j in 0..3 {
            for i in 0..5 {
                assert_eq!(b[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn trsm_identity_is_noop() {
        let a = Matrix::<f64>::identity(4, 4);
        let b0 = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let mut b = b0.clone();
        trsm(Side::Left, Uplo::Lower, Op::NoTrans, Diag::NonUnit, 1.0, a.as_ref(), b.as_mut());
        assert_eq!(b, b0);
    }
}
