//! Log-scale latency histogram (moved here from `crates/svc/src/metrics.rs`
//! so every layer of the stack can use it; `polar_svc::metrics` re-exports
//! it for compatibility).
//!
//! Histograms bucket by `floor(log2(nanoseconds))` — 64 fixed buckets
//! cover sub-nanosecond to centuries with bounded ~2x relative error on
//! reported quantiles, the standard trick used by HDR-style latency
//! recorders. Everything is atomics, so recording from workers never
//! contends with export.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Log2-bucketed latency histogram.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; 64],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: std::array::from_fn(|_| AtomicU64::new(0)) }
    }
}

impl Histogram {
    /// Record one duration sample. Sub-nanosecond samples (including
    /// `Duration::ZERO`) clamp to 1 ns and land in bucket 0.
    pub fn record(&self, d: Duration) {
        self.record_ns(d.as_nanos().max(1) as u64);
    }

    /// Record one sample given directly in nanoseconds (0 clamps to 1).
    pub fn record_ns(&self, ns: u64) {
        let ns = ns.max(1);
        let idx = 63 - ns.leading_zeros() as usize;
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Fold another histogram's counts into this one (used to combine
    /// per-worker or per-shard histograms at export time). Concurrent
    /// `record`s on either side are safe; counts merged while `other` is
    /// still being written may or may not include the in-flight samples.
    pub fn merge(&self, other: &Histogram) {
        for (dst, src) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = src.load(Ordering::Relaxed);
            if n > 0 {
                dst.fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// Approximate quantile (`q` in `[0, 1]`): geometric midpoint of the
    /// bucket containing the q-th sample. `None` when empty.
    ///
    /// Bucket `i` spans `[2^i, 2^(i+1))` ns and the reported value is
    /// `2^i * sqrt(2)` truncated to whole nanoseconds. Truncation keeps
    /// the invariant that the report lies **inside** the bucket even for
    /// bucket 0, which spans [1, 2) ns: `sqrt(2) ≈ 1.414` truncates to
    /// 1 ns, not rounds to 2 ns (2 ns would be in bucket 1, overstating
    /// the quantile by up to 2x).
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                // bucket i spans [2^i, 2^(i+1)) ns; report trunc(sqrt(2)*2^i)
                let ns = (2f64.powi(i as i32) * std::f64::consts::SQRT_2) as u64;
                debug_assert!(
                    ns >= 1 << i && (i >= 63 || ns < 1 << (i + 1)),
                    "bucket {i} midpoint {ns} ns escapes [{}, {}) ns",
                    1u64 << i,
                    if i >= 63 { u64::MAX } else { 1 << (i + 1) }
                );
                return Some(Duration::from_nanos(ns));
            }
        }
        unreachable!("target <= total")
    }

    /// Point-in-time `{count, p50, p95, p99}` view.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

/// Point-in-time view of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub p50: Option<Duration>,
    pub p95: Option<Duration>,
    pub p99: Option<Duration>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_power_of_two() {
        let h = Histogram::default();
        for _ in 0..100 {
            h.record(Duration::from_micros(100)); // 1e5 ns
        }
        h.record(Duration::from_millis(100)); // 1e8 ns outlier
        assert_eq!(h.count(), 101);
        let p50 = h.quantile(0.5).unwrap();
        // 1e5 ns lands in [2^16, 2^17); midpoint ~92.7 us
        assert!(p50 >= Duration::from_micros(64) && p50 < Duration::from_micros(131));
        let p99 = h.quantile(0.99).unwrap();
        assert!(p99 < Duration::from_millis(1), "99/101 samples are 100us");
        assert_eq!(h.quantile(1.0).unwrap(), h.quantile(0.999).unwrap());
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn zero_duration_is_recorded() {
        let h = Histogram::default();
        h.record(Duration::ZERO);
        assert_eq!(h.count(), 1);
        assert!(h.quantile(0.5).is_some());
    }

    #[test]
    fn reported_midpoint_stays_inside_its_bucket() {
        // Exhaustively check the midpoint invariant for every bucket a
        // u64 nanosecond count can land in, including the bucket-0 edge
        // case: [1, 2) ns must report 1 ns (truncated sqrt(2)), never 2.
        for i in 0..64u32 {
            let h = Histogram::default();
            h.record_ns(1u64 << i);
            let ns = h.quantile(0.5).unwrap().as_nanos() as u64;
            assert!(ns >= 1u64 << i, "bucket {i}: {ns} below lower bound");
            if i < 63 {
                assert!(ns < 1u64 << (i + 1), "bucket {i}: {ns} above upper bound");
            }
        }
        let h = Histogram::default();
        h.record(Duration::from_nanos(1));
        assert_eq!(h.quantile(0.5).unwrap(), Duration::from_nanos(1));
    }

    #[test]
    fn merge_adds_counts_bucketwise() {
        let a = Histogram::default();
        let b = Histogram::default();
        for _ in 0..10 {
            a.record(Duration::from_micros(10));
        }
        for _ in 0..5 {
            b.record(Duration::from_micros(10));
        }
        b.record(Duration::from_secs(1));
        a.merge(&b);
        assert_eq!(a.count(), 16);
        assert_eq!(b.count(), 6, "merge leaves the source untouched");
        // The merged outlier is visible at the tail.
        assert!(a.quantile(1.0).unwrap() >= Duration::from_millis(500));
        // p50 still in the 10us bucket.
        let p50 = a.quantile(0.5).unwrap();
        assert!(p50 >= Duration::from_micros(8) && p50 < Duration::from_micros(17));
    }

    #[test]
    fn merge_empty_is_noop() {
        let a = Histogram::default();
        a.record(Duration::from_micros(3));
        let before = a.snapshot();
        a.merge(&Histogram::default());
        assert_eq!(a.snapshot(), before);
    }
}
