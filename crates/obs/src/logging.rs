//! Leveled logging behind the [`log!`](crate::log!) macro.
//!
//! The level is read once from `POLAR_LOG={error,info,debug}`;
//! `POLAR_DEBUG=1` (the historical ad-hoc switch scattered through blas /
//! qdwh / the pool) is honored as an alias for `POLAR_LOG=debug`. Output
//! goes to stderr as `[level polar_blas::params] message`, or into a
//! capture buffer when a test installed one with [`capture_logs`].

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

/// Log severity, ordered from quietest to chattiest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum LogLevel {
    /// Unexpected but survivable conditions.
    Error = 0,
    /// One-line lifecycle events (pool started, trace written).
    Info = 1,
    /// Tuning/diagnostic chatter (kernel parameter choices, iterations).
    Debug = 2,
}

impl LogLevel {
    fn name(self) -> &'static str {
        match self {
            LogLevel::Error => "error",
            LogLevel::Info => "info",
            LogLevel::Debug => "debug",
        }
    }
}

const LEVEL_UNSET: u8 = u8::MAX;
static LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNSET);

fn level_from_env() -> u8 {
    if let Some(v) = std::env::var_os("POLAR_LOG") {
        let v = v.to_string_lossy().to_ascii_lowercase();
        return match v.as_str() {
            "debug" => LogLevel::Debug as u8,
            "info" => LogLevel::Info as u8,
            _ => LogLevel::Error as u8,
        };
    }
    if std::env::var_os("POLAR_DEBUG").is_some_and(|v| v != "0") {
        return LogLevel::Debug as u8;
    }
    LogLevel::Error as u8
}

#[inline]
fn current_level() -> u8 {
    let l = LEVEL.load(Ordering::Relaxed);
    if l != LEVEL_UNSET {
        return l;
    }
    let from_env = level_from_env();
    // Racing initializers compute the same value; last store wins.
    LEVEL.store(from_env, Ordering::Relaxed);
    from_env
}

/// Would a message at `level` be emitted?
#[inline]
pub fn log_enabled(level: LogLevel) -> bool {
    current_level() >= level as u8
}

/// Override the level programmatically (takes precedence over the env).
pub fn set_log_level(level: LogLevel) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

fn capture_buffer() -> &'static Mutex<Option<Vec<String>>> {
    static BUF: OnceLock<Mutex<Option<Vec<String>>>> = OnceLock::new();
    BUF.get_or_init(|| Mutex::new(None))
}

/// Redirect log output into an in-memory buffer for the guard's lifetime
/// (test helper; capture is process-global, keep such tests serialized).
pub fn capture_logs() -> LogCapture {
    *capture_buffer().lock().unwrap() = Some(Vec::new());
    LogCapture { _private: () }
}

/// Guard returned by [`capture_logs`]; dropping it restores stderr output.
pub struct LogCapture {
    _private: (),
}

impl LogCapture {
    /// Drain the lines captured so far.
    pub fn take(&self) -> Vec<String> {
        capture_buffer().lock().unwrap().as_mut().map(std::mem::take).unwrap_or_default()
    }
}

impl Drop for LogCapture {
    fn drop(&mut self) {
        *capture_buffer().lock().unwrap() = None;
    }
}

/// Emit one formatted message (called by the [`log!`](crate::log!) macro
/// after the level check passed).
pub fn log_message(level: LogLevel, target: &str, args: std::fmt::Arguments<'_>) {
    let line = format!("[{} {}] {}", level.name(), target, args);
    let mut buf = capture_buffer().lock().unwrap();
    match buf.as_mut() {
        Some(lines) => lines.push(line),
        None => eprintln!("{line}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test exercises the whole module: level + capture are global.
    #[test]
    fn levels_gate_and_capture_collects() {
        let cap = capture_logs();

        set_log_level(LogLevel::Error);
        assert!(log_enabled(LogLevel::Error));
        assert!(!log_enabled(LogLevel::Info));
        assert!(!log_enabled(LogLevel::Debug));
        crate::log!(LogLevel::Debug, "should be dropped");
        assert!(cap.take().is_empty());

        set_log_level(LogLevel::Info);
        assert!(log_enabled(LogLevel::Info));
        assert!(!log_enabled(LogLevel::Debug));

        set_log_level(LogLevel::Debug);
        assert!(log_enabled(LogLevel::Debug));
        crate::log!(LogLevel::Debug, "tuned {} to {}", "mc", 128);
        let lines = cap.take();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("[debug "), "{}", lines[0]);
        assert!(lines[0].contains("tuned mc to 128"), "{}", lines[0]);

        set_log_level(LogLevel::Error);
    }
}
