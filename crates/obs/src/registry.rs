//! Global registry of named counters, gauges, and histograms.
//!
//! Lookup by name takes a mutex (registration and snapshotting are rare);
//! callers on hot paths resolve the instrument once into a `&'static`
//! handle (the instruments are leaked, which is fine for process-lifetime
//! telemetry) and then increment with plain relaxed atomics.

use crate::hist::{Histogram, HistogramSnapshot};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Monotonic event counter.
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.v.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// Instantaneous signed level (queue depths, in-flight counts).
#[derive(Debug, Default)]
pub struct Gauge {
    v: AtomicI64,
}

impl Gauge {
    /// Add a (possibly negative) delta.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.v.fetch_add(delta, Ordering::Relaxed);
    }

    /// Overwrite the level.
    pub fn set(&self, value: i64) {
        self.v.store(value, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.v.load(Ordering::Relaxed)
    }
}

#[derive(Default)]
struct Registry {
    counters: Vec<(&'static str, &'static Counter)>,
    gauges: Vec<(&'static str, &'static Gauge)>,
    histograms: Vec<(&'static str, &'static Histogram)>,
}

fn registry() -> &'static Mutex<Registry> {
    static REG: OnceLock<Mutex<Registry>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(Registry::default()))
}

/// Get-or-register the named counter. The handle is `'static`: resolve
/// once (e.g. into a `OnceLock`) and increment lock-free afterwards.
pub fn counter(name: &'static str) -> &'static Counter {
    let mut reg = registry().lock().unwrap();
    if let Some((_, c)) = reg.counters.iter().find(|(n, _)| *n == name) {
        return c;
    }
    let c: &'static Counter = Box::leak(Box::new(Counter::default()));
    reg.counters.push((name, c));
    c
}

/// Get-or-register the named gauge.
pub fn gauge(name: &'static str) -> &'static Gauge {
    let mut reg = registry().lock().unwrap();
    if let Some((_, g)) = reg.gauges.iter().find(|(n, _)| *n == name) {
        return g;
    }
    let g: &'static Gauge = Box::leak(Box::new(Gauge::default()));
    reg.gauges.push((name, g));
    g
}

/// Get-or-register the named histogram.
pub fn histogram(name: &'static str) -> &'static Histogram {
    let mut reg = registry().lock().unwrap();
    if let Some((_, h)) = reg.histograms.iter().find(|(n, _)| *n == name) {
        return h;
    }
    let h: &'static Histogram = Box::leak(Box::new(Histogram::default()));
    reg.histograms.push((name, h));
    h
}

/// Name/value pairs for every registered counter, in registration order.
pub fn counters_snapshot() -> Vec<(&'static str, u64)> {
    registry().lock().unwrap().counters.iter().map(|(n, c)| (*n, c.get())).collect()
}

/// Name/level pairs for every registered gauge, in registration order.
pub fn gauges_snapshot() -> Vec<(&'static str, i64)> {
    registry().lock().unwrap().gauges.iter().map(|(n, g)| (*n, g.get())).collect()
}

/// Name/snapshot pairs for every registered histogram.
pub fn histograms_snapshot() -> Vec<(&'static str, HistogramSnapshot)> {
    registry().lock().unwrap().histograms.iter().map(|(n, h)| (*n, h.snapshot())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_get_or_register() {
        let a = counter("test.reg.counter");
        let b = counter("test.reg.counter");
        assert!(std::ptr::eq(a, b));
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert!(counters_snapshot().iter().any(|(n, v)| *n == "test.reg.counter" && *v == 3));
    }

    #[test]
    fn gauge_tracks_level() {
        let g = gauge("test.reg.gauge");
        g.add(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
        g.set(-7);
        assert_eq!(g.get(), -7);
        assert!(gauges_snapshot().iter().any(|(n, v)| *n == "test.reg.gauge" && *v == -7));
    }

    #[test]
    fn histogram_registers_and_snapshots() {
        let h = histogram("test.reg.hist");
        h.record(std::time::Duration::from_micros(42));
        let snaps = histograms_snapshot();
        let (_, s) = snaps.iter().find(|(n, _)| *n == "test.reg.hist").unwrap();
        assert_eq!(s.count, 1);
    }
}
