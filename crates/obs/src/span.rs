//! Global enable state, the process-wide epoch, kernel flop/time
//! accounting, and the structured span layer.
//!
//! Design constraints (from the observability issue):
//! * the disabled path of every hook must be a relaxed atomic load plus a
//!   branch — no allocation, no locking, no thread-local registration;
//! * spans are buffered per thread (a `Mutex<Vec<_>>` per thread that is
//!   only ever contended by the drain) so recording never serializes the
//!   pool workers against each other;
//! * kernel counters use *outermost-kernel attribution*: the `gemm` calls
//!   `trsm` issues internally must not be double-counted, including when
//!   the nested call runs on a different pool worker. The suppression
//!   depth is therefore part of [`TaskCtx`], which the rayon-shim pool
//!   captures at fork and restores inside stolen jobs.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

const METRICS_BIT: u32 = 1;
const TRACE_BIT: u32 = 2;

static STATE: AtomicU32 = AtomicU32::new(0);

/// True when kernel/flop accounting is enabled (relaxed load + branch).
#[inline]
pub fn metrics_enabled() -> bool {
    STATE.load(Ordering::Relaxed) & METRICS_BIT != 0
}

/// True when span tracing is enabled (relaxed load + branch).
#[inline]
pub fn trace_enabled() -> bool {
    STATE.load(Ordering::Relaxed) & TRACE_BIT != 0
}

/// Enable or disable kernel/flop accounting globally.
pub fn set_metrics_enabled(on: bool) {
    if on {
        STATE.fetch_or(METRICS_BIT, Ordering::Relaxed);
    } else {
        STATE.fetch_and(!METRICS_BIT, Ordering::Relaxed);
    }
}

/// Enable or disable span tracing globally.
pub fn set_trace_enabled(on: bool) {
    if on {
        STATE.fetch_or(TRACE_BIT, Ordering::Relaxed);
    } else {
        STATE.fetch_and(!TRACE_BIT, Ordering::Relaxed);
    }
}

/// The process-wide time origin. Every timestamp recorded by this crate —
/// and by `polar_svc::SpanLog`, which reuses this epoch — is nanoseconds
/// since this instant, so traces from different subsystems concatenate
/// with aligned clocks.
pub fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since [`epoch`].
#[inline]
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Observability settings parsed from the environment by [`init_from_env`].
#[derive(Debug, Clone, Default)]
pub struct EnvConfig {
    /// `POLAR_METRICS` was set to something other than `0`.
    pub metrics: bool,
    /// `POLAR_TRACE=<path>`: destination for the Chrome trace.
    pub trace_path: Option<std::path::PathBuf>,
}

/// Read `POLAR_METRICS` / `POLAR_TRACE` and enable the corresponding
/// subsystems. `POLAR_TRACE` implies metrics (a trace without counters is
/// rarely useful and the marginal cost is one atomic add per kernel).
pub fn init_from_env() -> EnvConfig {
    let metrics = std::env::var_os("POLAR_METRICS").is_some_and(|v| v != "0");
    let trace_path =
        std::env::var_os("POLAR_TRACE").filter(|v| !v.is_empty()).map(std::path::PathBuf::from);
    if metrics || trace_path.is_some() {
        set_metrics_enabled(true);
    }
    if trace_path.is_some() {
        set_trace_enabled(true);
    }
    EnvConfig { metrics, trace_path }
}

// ---------------------------------------------------------------------------
// Kernel classes and flop/time accounting
// ---------------------------------------------------------------------------

/// The kernel classes tracked by the flop accountant. These mirror the
/// paper's per-kernel breakdown: GEMM / HERK / TRSM from Level-3 BLAS and
/// the QR (geqrf + orgqr) vs. Cholesky (potrf) split of QDWH Eq. (1)/(2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum KernelClass {
    /// General matrix multiply (including the `gemmA` variant).
    Gemm = 0,
    /// Hermitian rank-k update.
    Herk = 1,
    /// Triangular solve / triangular multiply.
    Trsm = 2,
    /// QR factorization (`geqrf`, stacked variant, TSQR).
    Geqrf = 3,
    /// Q formation / application (`orgqr`, `unmqr`).
    Orgqr = 4,
    /// Cholesky factorization.
    Potrf = 5,
    /// Anything else worth timing but not in the paper's model.
    Other = 6,
}

/// All kernel classes in index order (the order of [`KernelSnapshot`] rows).
pub const KERNEL_CLASSES: [KernelClass; 7] = [
    KernelClass::Gemm,
    KernelClass::Herk,
    KernelClass::Trsm,
    KernelClass::Geqrf,
    KernelClass::Orgqr,
    KernelClass::Potrf,
    KernelClass::Other,
];

impl KernelClass {
    /// Number of kernel classes (rows in a [`KernelSnapshot`]).
    pub const COUNT: usize = 7;

    /// Stable lowercase name used in JSON output and counter names.
    pub fn name(self) -> &'static str {
        match self {
            KernelClass::Gemm => "gemm",
            KernelClass::Herk => "herk",
            KernelClass::Trsm => "trsm",
            KernelClass::Geqrf => "geqrf",
            KernelClass::Orgqr => "orgqr",
            KernelClass::Potrf => "potrf",
            KernelClass::Other => "other",
        }
    }
}

#[derive(Default)]
struct ClassStats {
    calls: AtomicU64,
    flops: AtomicU64,
    time_ns: AtomicU64,
}

fn kernel_stats() -> &'static [ClassStats; KernelClass::COUNT] {
    static STATS: OnceLock<[ClassStats; KernelClass::COUNT]> = OnceLock::new();
    STATS.get_or_init(Default::default)
}

/// Totals for one kernel class: outermost calls, analytic real flops, and
/// wall nanoseconds attributed to the class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelCounts {
    /// Number of outermost (non-nested) kernel invocations.
    pub calls: u64,
    /// Analytic real-flop total (complex kernels count 4x).
    pub flops: u64,
    /// Wall time of those invocations, in nanoseconds.
    pub time_ns: u64,
}

impl KernelCounts {
    /// Achieved GFlop/s (`flops / time`); zero when no time was recorded.
    pub fn gflops(&self) -> f64 {
        if self.time_ns == 0 {
            0.0
        } else {
            // flops per nanosecond is numerically equal to GFlop/s.
            self.flops as f64 / self.time_ns as f64
        }
    }

    fn saturating_sub(&self, earlier: &Self) -> Self {
        KernelCounts {
            calls: self.calls.saturating_sub(earlier.calls),
            flops: self.flops.saturating_sub(earlier.flops),
            time_ns: self.time_ns.saturating_sub(earlier.time_ns),
        }
    }
}

/// A point-in-time copy of every kernel class's counters. Differences of
/// two snapshots give per-phase / per-iteration breakdowns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelSnapshot {
    /// One row per [`KERNEL_CLASSES`] entry, in that order.
    pub classes: [KernelCounts; KernelClass::COUNT],
}

impl KernelSnapshot {
    /// Counters for one class.
    pub fn get(&self, class: KernelClass) -> KernelCounts {
        self.classes[class as usize]
    }

    /// Component-wise `self - earlier` (saturating).
    pub fn delta(&self, earlier: &KernelSnapshot) -> KernelSnapshot {
        let mut out = KernelSnapshot::default();
        for i in 0..KernelClass::COUNT {
            out.classes[i] = self.classes[i].saturating_sub(&earlier.classes[i]);
        }
        out
    }

    /// Total analytic flops across all classes.
    pub fn total_flops(&self) -> u64 {
        self.classes.iter().map(|c| c.flops).sum()
    }

    /// Total attributed kernel wall time in nanoseconds.
    pub fn total_time_ns(&self) -> u64 {
        self.classes.iter().map(|c| c.time_ns).sum()
    }

    /// Total outermost kernel invocations.
    pub fn total_calls(&self) -> u64 {
        self.classes.iter().map(|c| c.calls).sum()
    }

    /// Hand-rolled JSON object `{"gemm": {"calls": .., "flops": ..,
    /// "time_ns": .., "gflops": ..}, ...}` (classes with zero calls are
    /// skipped).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("{");
        let mut first = true;
        for class in KERNEL_CLASSES {
            let c = self.get(class);
            if c.calls == 0 {
                continue;
            }
            if !first {
                s.push(',');
            }
            first = false;
            let _ = write!(
                s,
                "\"{}\":{{\"calls\":{},\"flops\":{},\"time_ns\":{},\"gflops\":{:.3}}}",
                class.name(),
                c.calls,
                c.flops,
                c.time_ns,
                c.gflops()
            );
        }
        s.push('}');
        s
    }
}

/// Read the current kernel counter totals.
pub fn kernel_snapshot() -> KernelSnapshot {
    let stats = kernel_stats();
    let mut out = KernelSnapshot::default();
    for (i, s) in stats.iter().enumerate() {
        out.classes[i] = KernelCounts {
            calls: s.calls.load(Ordering::Relaxed),
            flops: s.flops.load(Ordering::Relaxed),
            time_ns: s.time_ns.load(Ordering::Relaxed),
        };
    }
    out
}

/// Reset all kernel counters to zero (test/bench isolation helper).
pub fn reset_kernel_counters() {
    for s in kernel_stats() {
        s.calls.store(0, Ordering::Relaxed);
        s.flops.store(0, Ordering::Relaxed);
        s.time_ns.store(0, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Per-thread state: worker lane, span nesting depth, kernel suppression
// ---------------------------------------------------------------------------

thread_local! {
    static LANE: Cell<u32> = const { Cell::new(0) };
    static DEPTH: Cell<u32> = const { Cell::new(0) };
    static SUPPRESS: Cell<u32> = const { Cell::new(0) };
    static LOCAL_BUF: RefCell<Option<Arc<SpanBuf>>> = const { RefCell::new(None) };
}

/// Associate the calling thread with a pool worker lane. Lane 0 is
/// reserved for non-pool threads (the caller / main thread); pool worker
/// `i` becomes lane `i + 1`. Called by the rayon-shim at worker startup.
pub fn set_worker_lane(worker_index: usize) {
    LANE.with(|l| l.set(worker_index as u32 + 1));
}

/// The calling thread's trace lane (0 = external thread).
pub fn worker_lane() -> u32 {
    LANE.with(|l| l.get())
}

/// The observability context a forked task must inherit from its spawner:
/// currently just the kernel-suppression depth, so a `gemm` block that
/// `trsm` forks onto another worker still counts as *nested* and is not
/// double-counted. Captured by the pool at fork time via [`task_ctx`] and
/// reinstated around the job body with [`run_with_ctx`].
#[derive(Debug, Clone, Copy, Default)]
pub struct TaskCtx {
    suppress: u32,
}

/// Capture the calling thread's context for a task about to be forked.
#[inline]
pub fn task_ctx() -> TaskCtx {
    TaskCtx { suppress: SUPPRESS.with(|s| s.get()) }
}

/// Run `f` with the given forked-task context installed, restoring the
/// thread's previous context afterwards (including on unwind).
#[inline]
pub fn run_with_ctx<R>(ctx: TaskCtx, f: impl FnOnce() -> R) -> R {
    struct Restore(u32);
    impl Drop for Restore {
        fn drop(&mut self) {
            SUPPRESS.with(|s| s.set(self.0));
        }
    }
    let _restore = Restore(SUPPRESS.with(|s| s.replace(ctx.suppress)));
    f()
}

// ---------------------------------------------------------------------------
// Span records and per-thread buffers
// ---------------------------------------------------------------------------

/// Scheduler-lifecycle metadata attached to DAG task spans by the
/// executor: which executed graph the task belongs to, its task id within
/// that graph, when its last dependency resolved (so queue wait is
/// `start_ns - ready_ns`), and the lane that released it (so a span whose
/// recording lane differs from `ready_lane` migrated between workers —
/// the shared-heap analogue of a deque steal).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskLifecycle {
    /// Id of the executed DAG (one per `TaskDag::execute`).
    pub dag: u32,
    /// Task id within that DAG (index into the recorded `TaskGraph`).
    pub task: u32,
    /// Nanoseconds since [`epoch`] when the task's last predecessor
    /// completed (source tasks: when the ready heap was seeded).
    pub ready_ns: u64,
    /// Lane of the worker that made the task ready.
    pub ready_lane: u32,
}

/// One completed span: a named interval on a worker lane at a nesting
/// depth, optionally tagged with a kernel class and analytic flops.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Static span name (kernel name or phase name).
    pub name: &'static str,
    /// Kernel class for kernel spans; `None` for phase spans.
    pub class: Option<KernelClass>,
    /// Globally unique, monotonically allocated sequence number.
    pub seq: u64,
    /// Trace lane: 0 = external thread, `i + 1` = pool worker `i`.
    pub lane: u32,
    /// Nesting depth on the recording thread at span start (0 = top).
    pub depth: u32,
    /// Start, nanoseconds since [`epoch`].
    pub start_ns: u64,
    /// End, nanoseconds since [`epoch`].
    pub end_ns: u64,
    /// Analytic real flops attributed to this span (0 for phase spans).
    pub flops: u64,
    /// Up to three problem dimensions (m, n, k); zeros when unused.
    pub dims: [usize; 3],
    /// Executor lifecycle metadata; `Some` only for DAG task spans
    /// recorded via [`task_span`].
    pub lifecycle: Option<TaskLifecycle>,
}

struct SpanBuf {
    events: Mutex<Vec<SpanRecord>>,
}

fn all_bufs() -> &'static Mutex<Vec<Arc<SpanBuf>>> {
    static BUFS: OnceLock<Mutex<Vec<Arc<SpanBuf>>>> = OnceLock::new();
    BUFS.get_or_init(|| Mutex::new(Vec::new()))
}

fn next_seq() -> u64 {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    SEQ.fetch_add(1, Ordering::Relaxed)
}

fn push_span(rec: SpanRecord) {
    LOCAL_BUF.with(|slot| {
        let mut slot = slot.borrow_mut();
        let buf = slot.get_or_insert_with(|| {
            let buf = Arc::new(SpanBuf { events: Mutex::new(Vec::new()) });
            all_bufs().lock().unwrap().push(Arc::clone(&buf));
            buf
        });
        buf.events.lock().unwrap().push(rec);
    });
}

/// Drain every thread's span buffer, returning all completed spans sorted
/// by start time (ties broken by sequence number).
pub fn take_spans() -> Vec<SpanRecord> {
    let bufs: Vec<Arc<SpanBuf>> = all_bufs().lock().unwrap().clone();
    let mut out = Vec::new();
    for buf in bufs {
        out.append(&mut buf.events.lock().unwrap());
    }
    out.sort_by_key(|s| (s.start_ns, s.seq));
    out
}

// ---------------------------------------------------------------------------
// RAII guards
// ---------------------------------------------------------------------------

struct ActiveSpan {
    name: &'static str,
    class: Option<KernelClass>,
    flops: f64,
    dims: [usize; 3],
    lifecycle: Option<TaskLifecycle>,
    start_ns: u64,
    depth: u32,
    /// This span is the outermost kernel on its task and owns the
    /// class counters (it bumped SUPPRESS and must release it).
    counts: bool,
    /// Record a `SpanRecord` at drop (tracing was on at creation).
    traced: bool,
}

/// RAII guard returned by [`kernel_span`] / [`phase_span`] / [`span!`].
/// Dropping it ends the span. When observability is disabled the guard is
/// inert and creation cost one relaxed load.
#[must_use = "the span ends when the guard is dropped"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl SpanGuard {
    const INERT: SpanGuard = SpanGuard { active: None };
}

#[inline]
fn state() -> u32 {
    STATE.load(Ordering::Relaxed)
}

/// Open a kernel span: attributes `flops` analytic real flops and the
/// guard's wall time to `class` *if* this is the outermost kernel on the
/// current task, and records a trace span either way. `dims` are the
/// problem sizes (for the trace only). Disabled path: one relaxed load.
#[inline]
pub fn kernel_span(
    class: KernelClass,
    name: &'static str,
    flops: f64,
    dims: [usize; 3],
) -> SpanGuard {
    if state() == 0 {
        return SpanGuard::INERT;
    }
    span_slow(name, Some(class), flops, dims, None, true)
}

/// Open a trace-only span tagged with a kernel class: never touches the
/// class counters (used at leaf level, e.g. per packed-GEMM block, so the
/// per-worker lanes show where the flops actually ran). Disabled path:
/// one relaxed load.
#[inline]
pub fn leaf_span(
    class: KernelClass,
    name: &'static str,
    flops: f64,
    dims: [usize; 3],
) -> SpanGuard {
    if state() & TRACE_BIT == 0 {
        return SpanGuard::INERT;
    }
    span_slow(name, Some(class), flops, dims, None, false)
}

/// [`leaf_span`] for DAG task bodies: a trace-only span additionally
/// carrying the executor's [`TaskLifecycle`] metadata, from which the
/// post-mortem analyzer reconstructs the executed graph (queue waits,
/// measured critical path, worker occupancy). Disabled path: one relaxed
/// load.
#[inline]
pub fn task_span(
    class: KernelClass,
    name: &'static str,
    flops: f64,
    dims: [usize; 3],
    lifecycle: TaskLifecycle,
) -> SpanGuard {
    if state() & TRACE_BIT == 0 {
        return SpanGuard::INERT;
    }
    span_slow(name, Some(class), flops, dims, Some(lifecycle), false)
}

/// Open a named phase span (no kernel class, no flops): QDWH iterations,
/// solver phases, etc. Disabled path: one relaxed load.
#[inline]
pub fn phase_span(name: &'static str) -> SpanGuard {
    phase_span_dims(name, [0, 0, 0])
}

/// [`phase_span`] with problem dimensions attached.
#[inline]
pub fn phase_span_dims(name: &'static str, dims: [usize; 3]) -> SpanGuard {
    if state() & TRACE_BIT == 0 {
        return SpanGuard::INERT;
    }
    span_slow(name, None, 0.0, dims, None, false)
}

#[cold]
fn span_slow(
    name: &'static str,
    class: Option<KernelClass>,
    flops: f64,
    dims: [usize; 3],
    lifecycle: Option<TaskLifecycle>,
    want_counts: bool,
) -> SpanGuard {
    let st = state();
    let traced = st & TRACE_BIT != 0;
    let counts =
        want_counts && st & METRICS_BIT != 0 && class.is_some() && SUPPRESS.with(|s| s.get()) == 0;
    if counts {
        // Anything nested under this guard — same thread or forked to
        // another worker via the pool's TaskCtx — is a sub-kernel.
        SUPPRESS.with(|s| s.set(s.get() + 1));
    }
    if !counts && !traced {
        return SpanGuard::INERT;
    }
    let depth = DEPTH.with(|d| {
        let v = d.get();
        d.set(v + 1);
        v
    });
    SpanGuard {
        active: Some(ActiveSpan {
            name,
            class,
            flops,
            dims,
            lifecycle,
            start_ns: now_ns(),
            depth,
            counts,
            traced,
        }),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(a) = self.active.take() else {
            return;
        };
        let end_ns = now_ns();
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        if a.counts {
            SUPPRESS.with(|s| s.set(s.get().saturating_sub(1)));
            if let Some(class) = a.class {
                let stats = &kernel_stats()[class as usize];
                stats.calls.fetch_add(1, Ordering::Relaxed);
                stats.flops.fetch_add(a.flops.max(0.0).round() as u64, Ordering::Relaxed);
                stats.time_ns.fetch_add(end_ns.saturating_sub(a.start_ns), Ordering::Relaxed);
            }
        }
        if a.traced {
            push_span(SpanRecord {
                name: a.name,
                class: a.class,
                seq: next_seq(),
                lane: worker_lane(),
                depth: a.depth,
                start_ns: a.start_ns,
                end_ns,
                flops: a.flops.max(0.0).round() as u64,
                dims: a.dims,
                lifecycle: a.lifecycle,
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Programmatic scope API
// ---------------------------------------------------------------------------

/// Everything observed between [`scope`] and [`Scope::finish`].
#[derive(Debug, Clone)]
pub struct Report {
    /// Kernel counter deltas accumulated inside the scope.
    pub kernels: KernelSnapshot,
    /// All spans recorded inside the scope, sorted by start time.
    pub spans: Vec<SpanRecord>,
    /// Wall time of the scope in nanoseconds.
    pub wall_ns: u64,
}

impl Report {
    /// Overall achieved GFlop/s: total analytic flops over scope wall time.
    pub fn achieved_gflops(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.kernels.total_flops() as f64 / self.wall_ns as f64
        }
    }
}

/// Guard for a profiling scope opened with [`scope`]. Restores the prior
/// enable state when finished.
#[must_use = "call finish() to collect the report"]
pub struct Scope {
    baseline: KernelSnapshot,
    prev_state: u32,
    start_ns: u64,
}

/// Serialize callers that enable process-global observability (scopes,
/// counter assertions) — mainly tests, which otherwise interleave their
/// counter deltas. Poisoning is ignored: a panicked test must not
/// cascade.
pub fn scope_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Enable metrics + tracing, discard any stale buffered spans, and return
/// a [`Scope`] whose [`finish`](Scope::finish) yields the [`Report`] for
/// everything run in between. Scopes are process-global: do not overlap
/// two scopes from different threads.
pub fn scope() -> Scope {
    let prev_state = STATE.fetch_or(METRICS_BIT | TRACE_BIT, Ordering::Relaxed);
    drop(take_spans()); // start with clean buffers
    Scope { baseline: kernel_snapshot(), prev_state, start_ns: now_ns() }
}

impl Scope {
    /// Close the scope: restore the previous enable state and collect the
    /// kernel deltas and spans observed since [`scope`] was called.
    pub fn finish(self) -> Report {
        let kernels = kernel_snapshot().delta(&self.baseline);
        let spans = take_spans();
        let wall_ns = now_ns().saturating_sub(self.start_ns);
        STATE.store(self.prev_state, Ordering::Relaxed);
        Report { kernels, spans, wall_ns }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Obs state is process-global; the tests in this module serialize on
    // one mutex so enable bits and counters don't interleave.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static M: Mutex<()> = Mutex::new(());
        M.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_guards_are_inert() {
        let _g = lock();
        set_metrics_enabled(false);
        set_trace_enabled(false);
        let before = kernel_snapshot();
        {
            let _k = kernel_span(KernelClass::Gemm, "gemm", 1e6, [8, 8, 8]);
            let _p = phase_span("phase");
        }
        assert_eq!(kernel_snapshot(), before);
        assert!(take_spans().is_empty());
    }

    #[test]
    fn kernel_span_counts_flops_and_time() {
        let _g = lock();
        let s = scope();
        {
            let _k = kernel_span(KernelClass::Potrf, "potrf", 123.0, [4, 4, 0]);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let report = s.finish();
        let c = report.kernels.get(KernelClass::Potrf);
        assert_eq!(c.calls, 1);
        assert_eq!(c.flops, 123);
        assert!(c.time_ns >= 1_000_000, "time_ns = {}", c.time_ns);
        assert_eq!(report.spans.len(), 1);
        assert_eq!(report.spans[0].name, "potrf");
        assert!(report.spans[0].end_ns > report.spans[0].start_ns);
    }

    #[test]
    fn nested_kernels_count_once() {
        let _g = lock();
        let s = scope();
        {
            let _outer = kernel_span(KernelClass::Trsm, "trsm", 100.0, [4, 4, 0]);
            let _inner = kernel_span(KernelClass::Gemm, "gemm", 999.0, [4, 4, 4]);
        }
        let report = s.finish();
        assert_eq!(report.kernels.get(KernelClass::Trsm).calls, 1);
        assert_eq!(report.kernels.get(KernelClass::Gemm).calls, 0);
        // …but the trace still shows both spans, inner at depth 1.
        assert_eq!(report.spans.len(), 2);
        let inner = report.spans.iter().find(|s| s.name == "gemm").unwrap();
        assert_eq!(inner.depth, 1);
    }

    #[test]
    fn suppression_propagates_via_task_ctx() {
        let _g = lock();
        let s = scope();
        {
            let _outer = kernel_span(KernelClass::Herk, "herk", 50.0, [4, 4, 0]);
            let ctx = task_ctx();
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    run_with_ctx(ctx, || {
                        let _nested = kernel_span(KernelClass::Gemm, "gemm", 77.0, [2, 2, 2]);
                    });
                    // Outside the ctx the same thread is top-level again.
                    let _top = kernel_span(KernelClass::Gemm, "gemm", 11.0, [2, 2, 2]);
                });
            });
        }
        let report = s.finish();
        assert_eq!(report.kernels.get(KernelClass::Herk).calls, 1);
        assert_eq!(report.kernels.get(KernelClass::Gemm).calls, 1);
        assert_eq!(report.kernels.get(KernelClass::Gemm).flops, 11);
    }

    #[test]
    fn snapshot_delta_is_componentwise() {
        let a = KernelSnapshot {
            classes: {
                let mut c = [KernelCounts::default(); KernelClass::COUNT];
                c[0] = KernelCounts { calls: 5, flops: 100, time_ns: 50 };
                c
            },
        };
        let b = KernelSnapshot {
            classes: {
                let mut c = [KernelCounts::default(); KernelClass::COUNT];
                c[0] = KernelCounts { calls: 7, flops: 160, time_ns: 90 };
                c
            },
        };
        let d = b.delta(&a);
        assert_eq!(d.get(KernelClass::Gemm), KernelCounts { calls: 2, flops: 60, time_ns: 40 });
    }

    #[test]
    fn span_macro_records_dims() {
        let _g = lock();
        let s = scope();
        {
            let _sp = crate::span!("geqrf", 12, 7);
        }
        let report = s.finish();
        assert_eq!(report.spans.len(), 1);
        assert_eq!(report.spans[0].dims, [12, 7, 0]);
        assert_eq!(report.spans[0].class, None);
    }

    #[test]
    fn gflops_is_flops_per_ns() {
        let c = KernelCounts { calls: 1, flops: 2_000_000_000, time_ns: 1_000_000_000 };
        assert!((c.gflops() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn worker_lane_defaults_to_external() {
        assert_eq!(worker_lane(), 0);
        std::thread::spawn(|| {
            set_worker_lane(3);
            assert_eq!(worker_lane(), 4);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn kernel_snapshot_json_skips_idle_classes() {
        let snap = KernelSnapshot {
            classes: {
                let mut c = [KernelCounts::default(); KernelClass::COUNT];
                c[KernelClass::Potrf as usize] = KernelCounts { calls: 2, flops: 64, time_ns: 32 };
                c
            },
        };
        let json = snap.to_json();
        assert!(json.contains("\"potrf\""), "{json}");
        assert!(!json.contains("\"gemm\""), "{json}");
    }
}
