//! `polar-obs`: zero-dependency observability for the whole solver stack.
//!
//! The crate is a leaf of the workspace dependency graph (it depends on
//! nothing, everything else may depend on it) and provides four layers:
//!
//! 1. **Global state + epoch** — a single `AtomicU32` holds the
//!    metrics/trace enable bits, so the disabled fast path of every hook is
//!    one relaxed load and a branch. One process-wide [`epoch`] anchors all
//!    timestamps (solver spans and `polar-svc` job spans alike), so traces
//!    from different subsystems concatenate with aligned clocks.
//! 2. **Kernel accounting** — [`kernel_span`] RAII guards attribute wall
//!    time and analytic flops to a [`KernelClass`] (gemm / herk / trsm /
//!    geqrf / orgqr / potrf), with outermost-kernel suppression so a `gemm`
//!    issued *inside* `trsm` is not double-counted. [`kernel_snapshot`]
//!    reads the per-class totals; snapshot deltas give per-iteration
//!    breakdowns and achieved GFlop/s.
//! 3. **Structured spans** — [`span!`] / [`phase_span`] record start/end
//!    nanoseconds, worker lane, and nesting depth into per-thread buffers;
//!    [`take_spans`] drains them for export as a Chrome trace (one Perfetto
//!    lane per pool worker).
//! 4. **Registry + logging** — named [`counter`]/[`gauge`]/[`histogram`]
//!    instruments for low-rate events (pool steals, jobs), and a leveled
//!    [`log!`] macro honoring `POLAR_LOG={error,info,debug}`.
//!
//! Activation: set `POLAR_METRICS=1` and/or `POLAR_TRACE=<path>` in the
//! environment (see [`init_from_env`]), or use the programmatic
//! [`scope`] API which enables everything, runs, and hands back a
//! [`Report`].

mod hist;
mod logging;
mod registry;
mod span;

pub use hist::{Histogram, HistogramSnapshot};
pub use logging::{capture_logs, log_enabled, log_message, set_log_level, LogCapture, LogLevel};
pub use registry::{
    counter, counters_snapshot, gauge, gauges_snapshot, histogram, histograms_snapshot, Counter,
    Gauge,
};
pub use span::{
    epoch, init_from_env, kernel_snapshot, kernel_span, leaf_span, metrics_enabled, now_ns,
    phase_span, phase_span_dims, reset_kernel_counters, run_with_ctx, scope, scope_lock,
    set_metrics_enabled, set_trace_enabled, set_worker_lane, take_spans, task_ctx, task_span,
    trace_enabled, worker_lane, EnvConfig, KernelClass, KernelCounts, KernelSnapshot, Report,
    Scope, SpanGuard, SpanRecord, TaskCtx, TaskLifecycle, KERNEL_CLASSES,
};

/// Open a structured span that lasts until the returned guard is dropped.
///
/// `span!("geqrf")` records a named phase span; `span!("geqrf", m, n)`
/// additionally records up to three dimensions. When tracing is disabled
/// the expansion is a relaxed atomic load and a branch.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::phase_span($name)
    };
    ($name:expr, $d0:expr) => {
        $crate::phase_span_dims($name, [$d0 as usize, 0, 0])
    };
    ($name:expr, $d0:expr, $d1:expr) => {
        $crate::phase_span_dims($name, [$d0 as usize, $d1 as usize, 0])
    };
    ($name:expr, $d0:expr, $d1:expr, $d2:expr) => {
        $crate::phase_span_dims($name, [$d0 as usize, $d1 as usize, $d2 as usize])
    };
}

/// Leveled logging macro. `obs::log!(LogLevel::Debug, "pool: {} workers", n)`
/// prints to stderr iff `POLAR_LOG` (or a programmatic [`set_log_level`])
/// admits the level. `POLAR_DEBUG=1` is honored as an alias for
/// `POLAR_LOG=debug` for backward compatibility.
#[macro_export]
macro_rules! log {
    ($lvl:expr, $($arg:tt)+) => {
        if $crate::log_enabled($lvl) {
            $crate::log_message($lvl, module_path!(), format_args!($($arg)+));
        }
    };
}
