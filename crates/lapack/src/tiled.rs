//! DAG-scheduled tile factorizations: `geqrf_tiled` and `potrf_tiled`.
//!
//! These are the production counterparts of the symbolic DAG builders in
//! `polar-sim`: the same PLASMA/SLATE task shapes (`geqrt` → `unmqr` /
//! `tsqrt` → `tsmqr` per panel step; `potrf`/`trsm`/`herk`/`gemm` for
//! Cholesky), but with each task carrying a real tile-kernel body, executed
//! by [`polar_runtime::TaskDag`] on the work-stealing pool with
//! panel-priority (lookahead) ordering.
//!
//! The stacked variant [`geqrf_tiled_stacked`] exploits the QDWH Eq. (1)
//! `[sqrt(c) A; I]` structure the way `geqrf_stacked` does for the flat
//! path: at panel `k` only tile rows up to the fill boundary carry
//! reflector support, so tasks on pristine identity/zero tile rows are
//! never emitted (~1/3 of the QR flops for square `A`).
//!
//! Safety model: tiles of a [`TiledMatrix`] are separate allocations, and
//! the executor's inferred RAW/WAW/WAR edges order every pair of tasks
//! whose accesses to the same tile conflict. A task takes `&mut` only to
//! tiles in its *write* set (no other task touches those concurrently) and
//! `&` to tiles in its *read* set (concurrent readers may alias, so a
//! shared reference is mandatory there). The `TilePtr`/`SlotPtr` wrappers
//! below are the single place that unsafety lives.

use crate::tile_qr::{
    geqrt_blocked_into, tsmqr_blocked, tsqrt_blocked_into, unmqr_tile_blocked, TileT,
};
use crate::{LapackError, DEFAULT_BLOCK};
use polar_blas::{flops, gemm, herk, trsm};
use polar_matrix::{Diag, Matrix, Op, ProcessGrid, Side, TiledMatrix, Tiling, Uplo};
use polar_runtime::{ExecOutcome, KernelKind, TaskDag, TaskStatus, TileRef};
use polar_scalar::{Real, Scalar};
use std::sync::Mutex;

/// Default tile size for the DAG-scheduled drivers, overridable with
/// `POLAR_TILE_NB`. The paper tunes `nb = 192` CPU / `320` GPU; here 256
/// measured best on the kernels_perf sweep — big enough that the trailing
/// `tsmqr`/`gemm` tasks run at packed-microkernel speed, small enough that
/// a 1024-square problem still yields a 4x4 tile grid for the DAG to
/// overlap.
pub fn default_tile_nb() -> usize {
    static NB: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *NB.get_or_init(|| {
        std::env::var("POLAR_TILE_NB")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .map(|v| v.max(16))
            .unwrap_or(256)
    })
}

/// Tile size tuned to the pool width for an `n`-column problem.
/// `POLAR_TILE_NB` still pins the size unconditionally. 256 measures best
/// at every pool width on the whole-solve sweep (at one worker the win
/// comes from tiled trsm/herk decomposing into gemm-rich tasks, which
/// favors the same size as the parallel case); with more workers the grid
/// must additionally offer at least a couple of tile columns per worker
/// or the DAG starves.
pub fn auto_tile_nb(n: usize) -> usize {
    if std::env::var("POLAR_TILE_NB").is_ok() {
        return default_tile_nb();
    }
    let workers = rayon::current_num_threads().max(1);
    let mut nb: usize = 256;
    while nb > 128 && n.div_ceil(nb) < 2 * workers.min(8) {
        nb -= 64;
    }
    nb
}

/// Shared mutable access to the tile array of a [`TiledMatrix`] for
/// dependency-ordered tasks. Tiles are disjoint allocations; the task graph
/// serializes all conflicting accesses. Public so whole-solve DAG builders
/// (the fused QDWH driver in `polar-core`) can reuse the same access
/// discipline instead of reinventing the unsafety.
pub struct TilePtr<S> {
    tiles: *mut Matrix<S>,
    mt: usize,
}

impl<S> Clone for TilePtr<S> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<S> Copy for TilePtr<S> {}
unsafe impl<S: Send> Send for TilePtr<S> {}
unsafe impl<S: Send> Sync for TilePtr<S> {}

impl<S: Scalar> TilePtr<S> {
    pub fn new(m: &mut TiledMatrix<S>) -> Self {
        let mt = m.mt();
        Self { tiles: m.tiles_mut().as_mut_ptr(), mt }
    }

    /// # Safety
    /// Caller must guarantee (via DAG dependencies) that no other task
    /// holds *any* reference to tile `(i, j)` concurrently — i.e. the tile
    /// is in the calling task's write set.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn tile<'x>(&self, i: usize, j: usize) -> &'x mut Matrix<S> {
        &mut *self.tiles.add(i + j * self.mt)
    }

    /// Shared access for tiles in a task's *read* set: concurrent readers
    /// (e.g. every `unmqr` task of one panel reading the diagonal tile) may
    /// alias, which `&mut` must never do.
    ///
    /// # Safety
    /// Caller must guarantee (via DAG dependencies) that no task holds a
    /// `&mut` to tile `(i, j)` concurrently.
    pub unsafe fn tile_ref<'x>(&self, i: usize, j: usize) -> &'x Matrix<S> {
        &*self.tiles.add(i + j * self.mt)
    }
}

/// Same idea for the per-tile `T`-factor slots: a slab of preallocated
/// [`TileT`]s ([`TileT::new`]) written in place by the `_into` kernels, so
/// task bodies never allocate T storage.
pub struct SlotPtr<S: Scalar> {
    slots: *mut TileT<S>,
}

impl<S: Scalar> Clone for SlotPtr<S> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<S: Scalar> Copy for SlotPtr<S> {}
unsafe impl<S: Scalar> Send for SlotPtr<S> {}
unsafe impl<S: Scalar> Sync for SlotPtr<S> {}

impl<S: Scalar> SlotPtr<S> {
    pub fn new(v: &mut [TileT<S>]) -> Self {
        Self { slots: v.as_mut_ptr() }
    }

    /// # Safety
    /// Same contract as [`TilePtr::tile`].
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slot<'x>(&self, idx: usize) -> &'x mut TileT<S> {
        &mut *self.slots.add(idx)
    }

    /// # Safety
    /// Same contract as [`TilePtr::tile_ref`].
    pub unsafe fn slot_ref<'x>(&self, idx: usize) -> &'x TileT<S> {
        &*self.slots.add(idx)
    }
}

/// Result of a [`geqrf_tiled`] factorization: packed reflector/R tiles plus
/// the per-tile compact `T` factors needed to apply or form `Q`.
pub struct TiledQr<S: Scalar> {
    /// Packed tiles: `R` on and above the tile diagonal, `geqrt` reflector
    /// tails below inside diagonal tiles, `tsqrt` `V2` blocks below the
    /// tile diagonal.
    pub a: TiledMatrix<S>,
    /// `T` factors: slot `i + k*mt` holds the `geqrt` T for `i == k`, the
    /// `tsqrt` T for `i > k`. Preallocated as a slab before the DAG runs;
    /// slots outside the factorization's row window stay empty (`k() == 0`).
    t: Vec<TileT<S>>,
    kt: usize,
    /// Dense-row count of the stacked top block when the trailing-identity
    /// structure was exploited.
    top_rows: Option<usize>,
}

impl<S: Scalar> TiledQr<S> {
    /// The upper-triangular `k x n` `R` factor.
    pub fn extract_r(&self) -> Matrix<S> {
        let tiling = self.a.tiling();
        let k = tiling.m().min(tiling.n());
        let mut r = Matrix::<S>::zeros(k, tiling.n());
        for kb in 0..self.kt {
            for jb in kb..tiling.nt() {
                let (r0, c0) = tiling.tile_origin(kb, jb);
                let tile = self.a.tile(kb, jb);
                for j in 0..tile.ncols() {
                    for i in 0..tile.nrows() {
                        if r0 + i < k && r0 + i <= c0 + j {
                            r[(r0 + i, c0 + j)] = tile[(i, j)];
                        }
                    }
                }
            }
        }
        r
    }
}

/// Last tile row with reflector support at panel `k` for the stacked
/// `[B; I]` structure (`None` = dense: all rows). Public for whole-solve
/// DAG builders that emit the same pruned task shape.
pub fn stacked_row_limit(tiling: Tiling, top_rows: Option<usize>, k: usize) -> usize {
    let mt = tiling.mt();
    match top_rows {
        None => mt - 1,
        Some(tr) => {
            let nb = tiling.nb();
            let last_col = ((k + 1) * nb).min(tiling.n());
            (((tr + last_col - 1) / tiling.mb()).max(k)).min(mt - 1)
        }
    }
}

fn geqrf_tiled_inner<S: Scalar>(
    a_dense: &Matrix<S>,
    nb: usize,
    top_rows: Option<usize>,
) -> TiledQr<S> {
    let m = a_dense.nrows();
    let n = a_dense.ncols();
    let _obs = polar_obs::kernel_span(
        polar_obs::KernelClass::Geqrf,
        "geqrf_tiled",
        flops::type_factor(S::IS_COMPLEX) * flops::geqrf(m, n),
        [m, n, nb],
    );
    let mut ta = TiledMatrix::from_dense(a_dense, nb, nb, ProcessGrid::single());
    let tiling = ta.tiling();
    let mt = tiling.mt();
    let nt = tiling.nt();
    let kt = mt.min(nt);
    let ib = DEFAULT_BLOCK.min(nb);
    // Preallocate the whole T slab up front: slot (i, k) needs ib x kk
    // storage, where kk is the reflector count of panel k. Slots beyond the
    // stacked row window are never written — they get zero-width stubs.
    let mut tstore: Vec<TileT<S>> = Vec::with_capacity(mt * kt);
    for k in 0..kt {
        let kk = tiling.tile_rows(k).min(tiling.tile_cols(k));
        let lim = stacked_row_limit(tiling, top_rows, k);
        for i in 0..mt {
            let used = i == k || (i > k && i <= lim);
            tstore.push(TileT::new(ib, if used { kk } else { 0 }));
        }
    }
    {
        let tiles = TilePtr::new(&mut ta);
        let slots = SlotPtr::new(&mut tstore);
        let mut dag = TaskDag::new();
        let ma = dag.new_matrix();
        let mtt = dag.new_matrix();
        let bytes = (nb * nb * std::mem::size_of::<S>()) as u64;
        let aref = |i: usize, j: usize| TileRef::new(ma, i, j, bytes);
        let tref = |i: usize, j: usize| TileRef::new(mtt, i, j, bytes);
        let nbf = nb as f64;
        for k in 0..kt {
            let step = (kt - k) as i32 * 4;
            // panel: QR of the diagonal tile
            dag.add(
                KernelKind::Geqrt,
                step + 2,
                2.0 * nbf * nbf * nbf,
                vec![],
                vec![aref(k, k), tref(k, k)],
                move || {
                    let akk = unsafe { tiles.tile(k, k) };
                    geqrt_blocked_into(akk, unsafe { slots.slot(k + k * mt) });
                },
            );
            // apply Q_kk^H to the tiles right of the diagonal
            for j in k + 1..nt {
                let prio = step + i32::from(j == k + 1);
                dag.add(
                    KernelKind::Unmqr,
                    prio,
                    3.0 * nbf * nbf * nbf,
                    vec![aref(k, k), tref(k, k)],
                    vec![aref(k, j)],
                    move || {
                        let v = unsafe { tiles.tile_ref(k, k) };
                        let t = unsafe { slots.slot_ref(k + k * mt) };
                        let c = unsafe { tiles.tile(k, j) };
                        unmqr_tile_blocked(Op::ConjTrans, v, t, c);
                    },
                );
            }
            // annihilate sub-diagonal tiles (only rows with reflector
            // support when the stacked structure is known)
            let lim = stacked_row_limit(tiling, top_rows, k);
            for i in k + 1..=lim {
                dag.add(
                    KernelKind::Tsqrt,
                    step + 2,
                    2.0 * nbf * nbf * nbf,
                    vec![],
                    vec![aref(k, k), aref(i, k), tref(i, k)],
                    move || {
                        let (r, b) = unsafe { (tiles.tile(k, k), tiles.tile(i, k)) };
                        tsqrt_blocked_into(r, b, unsafe { slots.slot(i + k * mt) });
                    },
                );
                for j in k + 1..nt {
                    let prio = step + i32::from(j == k + 1);
                    dag.add(
                        KernelKind::Tsmqr,
                        prio,
                        4.0 * nbf * nbf * nbf,
                        vec![aref(i, k), tref(i, k)],
                        vec![aref(k, j), aref(i, j)],
                        move || {
                            let v2 = unsafe { tiles.tile_ref(i, k) };
                            let t = unsafe { slots.slot_ref(i + k * mt) };
                            let (a1, a2) = unsafe { (tiles.tile(k, j), tiles.tile(i, j)) };
                            tsmqr_blocked(Op::ConjTrans, v2, t, a1, a2);
                        },
                    );
                }
            }
        }
        // QR bodies never cancel; guard against a partially-factored result
        // if the executor ever grows new outcomes.
        let outcome = dag.execute();
        debug_assert_eq!(outcome, ExecOutcome::Completed);
    }
    TiledQr { a: ta, t: tstore, kt, top_rows }
}

/// DAG-scheduled tile QR factorization (PLASMA/SLATE `geqrf`): cuts `a`
/// into `nb x nb` tiles and factors them with the `geqrt`/`unmqr`/`tsqrt`/
/// `tsmqr` task graph on the work-stealing pool.
pub fn geqrf_tiled<S: Scalar>(a: &Matrix<S>, nb: usize) -> TiledQr<S> {
    geqrf_tiled_inner(a, nb.max(8), None)
}

/// [`geqrf_tiled`] of the QDWH stacked matrix `W = [B; I]` (`B` is
/// `top_rows x n`), skipping every task on tile rows that are still
/// pristine identity/zero at the given panel — the tile-level analogue of
/// [`crate::geqrf_stacked`]'s shrinking row window.
pub fn geqrf_tiled_stacked<S: Scalar>(top_rows: usize, a: &Matrix<S>, nb: usize) -> TiledQr<S> {
    assert!(top_rows <= a.nrows(), "geqrf_tiled_stacked: top block larger than matrix");
    geqrf_tiled_inner(a, nb.max(8), Some(top_rows))
}

/// Form the explicit thin `Q` (`m x k_cols`) of a [`geqrf_tiled`]
/// factorization by applying the stored reflectors to the identity with the
/// reverse `tsmqr`/`unmqr` task sweep.
pub fn orgqr_tiled<S: Scalar>(f: &TiledQr<S>, k_cols: usize) -> Matrix<S> {
    let tiling = f.a.tiling();
    let m = tiling.m();
    let nb = tiling.nb();
    assert!(k_cols <= tiling.n(), "orgqr_tiled: more columns than reflectors");
    let _obs = polar_obs::kernel_span(
        polar_obs::KernelClass::Orgqr,
        "orgqr_tiled",
        flops::type_factor(S::IS_COMPLEX) * flops::orgqr(m, k_cols),
        [m, k_cols, nb],
    );
    let mt = tiling.mt();
    let mut q = TiledMatrix::<S>::zeros(Tiling::new(m, k_cols, nb, nb), ProcessGrid::single());
    let qnt = q.nt();
    for d in 0..mt.min(qnt) {
        q.tile_mut(d, d).set_identity();
    }
    {
        let qtiles = TilePtr::new(&mut q);
        let mut dag = TaskDag::new();
        let mq = dag.new_matrix();
        let bytes = (nb * nb * std::mem::size_of::<S>()) as u64;
        let qref = |i: usize, j: usize| TileRef::new(mq, i, j, bytes);
        let nbf = nb as f64;
        let kt = f.kt;
        for k in (0..kt).rev() {
            let step = (k + 1) as i32 * 4;
            let lim = stacked_row_limit(tiling, f.top_rows, k);
            for i in (k + 1..=lim).rev() {
                for j in k..qnt {
                    let v2t = f.a.tile(i, k);
                    let tt = &f.t[i + k * mt];
                    dag.add(
                        KernelKind::Tsmqr,
                        step,
                        4.0 * nbf * nbf * nbf,
                        vec![],
                        vec![qref(k, j), qref(i, j)],
                        move || {
                            let (q1, q2) = unsafe { (qtiles.tile(k, j), qtiles.tile(i, j)) };
                            tsmqr_blocked(Op::NoTrans, v2t, tt, q1, q2);
                        },
                    );
                }
            }
            for j in k..qnt {
                let v = f.a.tile(k, k);
                let tt = &f.t[k + k * mt];
                dag.add(
                    KernelKind::Unmqr,
                    step + 1,
                    3.0 * nbf * nbf * nbf,
                    vec![],
                    vec![qref(k, j)],
                    move || {
                        let c = unsafe { qtiles.tile(k, j) };
                        unmqr_tile_blocked(Op::NoTrans, v, tt, c);
                    },
                );
            }
        }
        let outcome = dag.execute();
        debug_assert_eq!(outcome, ExecOutcome::Completed);
    }
    q.to_dense()
}

/// DAG-scheduled tile Cholesky (right-looking `potrf`/`trsm`/`herk`/`gemm`
/// task graph). Lower triangle only — the QDWH Cholesky iteration's case.
/// On failure the executor cancels outstanding tasks and the leading-minor
/// offset is reported like LAPACK `info`.
pub fn potrf_tiled<S: Scalar>(uplo: Uplo, a: &mut Matrix<S>, nb: usize) -> Result<(), LapackError> {
    assert_eq!(a.nrows(), a.ncols(), "potrf_tiled: matrix must be square");
    if uplo != Uplo::Lower {
        // the solver only drives the Lower variant; keep Upper on the
        // (equally valid) flat path
        return crate::potrf(uplo, a);
    }
    let n = a.nrows();
    let nb = nb.max(8);
    let _obs = polar_obs::kernel_span(
        polar_obs::KernelClass::Potrf,
        "potrf_tiled",
        flops::type_factor(S::IS_COMPLEX) * flops::potrf(n),
        [n, n, nb],
    );
    let mut ta = TiledMatrix::from_dense(a, nb, nb, ProcessGrid::single());
    let nt = ta.nt();
    let failure: Mutex<Option<usize>> = Mutex::new(None);
    let outcome;
    {
        let tiles = TilePtr::new(&mut ta);
        let fail = &failure;
        let mut dag = TaskDag::new();
        let mm = dag.new_matrix();
        let bytes = (nb * nb * std::mem::size_of::<S>()) as u64;
        let aref = |i: usize, j: usize| TileRef::new(mm, i, j, bytes);
        let nbf = nb as f64;
        for k in 0..nt {
            let step = (nt - k) as i32 * 4;
            dag.add_task(
                KernelKind::Potrf,
                step + 3,
                nbf * nbf * nbf / 3.0,
                vec![],
                vec![aref(k, k)],
                move || {
                    let akk = unsafe { tiles.tile(k, k) };
                    match crate::potrf(Uplo::Lower, akk) {
                        Ok(()) => TaskStatus::Continue,
                        Err(LapackError::NotPositiveDefinite(off)) => {
                            *fail.lock().unwrap() = Some(k * nb + off);
                            TaskStatus::Cancel
                        }
                        Err(_) => {
                            *fail.lock().unwrap() = Some(k * nb);
                            TaskStatus::Cancel
                        }
                    }
                },
            );
            for i in k + 1..nt {
                let prio = step + 2;
                dag.add(
                    KernelKind::Trsm,
                    prio,
                    nbf * nbf * nbf,
                    vec![aref(k, k)],
                    vec![aref(i, k)],
                    move || {
                        let (akk, aik) = unsafe { (tiles.tile_ref(k, k), tiles.tile(i, k)) };
                        trsm(
                            Side::Right,
                            Uplo::Lower,
                            Op::ConjTrans,
                            Diag::NonUnit,
                            S::ONE,
                            akk.as_ref(),
                            aik.as_mut(),
                        );
                    },
                );
            }
            for i in k + 1..nt {
                // diagonal update; feeding the next panel gets priority
                let prio = step + i32::from(i == k + 1);
                dag.add(
                    KernelKind::Herk,
                    prio,
                    nbf * nbf * nbf,
                    vec![aref(i, k)],
                    vec![aref(i, i)],
                    move || {
                        let (aik, aii) = unsafe { (tiles.tile_ref(i, k), tiles.tile(i, i)) };
                        herk(
                            Uplo::Lower,
                            Op::NoTrans,
                            -S::Real::ONE,
                            aik.as_ref(),
                            S::Real::ONE,
                            aii.as_mut(),
                        );
                    },
                );
                for j in k + 1..i {
                    let prio = step + i32::from(j == k + 1);
                    dag.add(
                        KernelKind::Gemm,
                        prio,
                        2.0 * nbf * nbf * nbf,
                        vec![aref(i, k), aref(j, k)],
                        vec![aref(i, j)],
                        move || {
                            let v = unsafe { tiles.tile_ref(i, k) };
                            let w = unsafe { tiles.tile_ref(j, k) };
                            let aij = unsafe { tiles.tile(i, j) };
                            gemm(
                                Op::NoTrans,
                                Op::ConjTrans,
                                -S::ONE,
                                v.as_ref(),
                                w.as_ref(),
                                S::ONE,
                                aij.as_mut(),
                            );
                        },
                    );
                }
            }
        }
        outcome = dag.execute();
    }
    if outcome == ExecOutcome::Cancelled {
        let off = failure.lock().unwrap().take().unwrap_or(0);
        return Err(LapackError::NotPositiveDefinite(off));
    }
    // write the factored lower triangle back (upper stays untouched, like
    // the flat potrf)
    let tiling = ta.tiling();
    for j in 0..nt {
        for i in j..nt {
            let (r0, c0) = tiling.tile_origin(i, j);
            let tile = ta.tile(i, j);
            for jj in 0..tile.ncols() {
                for ii in 0..tile.nrows() {
                    if r0 + ii >= c0 + jj {
                        a[(r0 + ii, c0 + jj)] = tile[(ii, jj)];
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{geqrf, orgqr, potrf};
    use polar_blas::{add, norm};
    use polar_matrix::Norm;
    use polar_scalar::Complex64;

    fn rand_mat(m: usize, n: usize, seed: u64) -> Matrix<f64> {
        let mut s = seed | 1;
        Matrix::from_fn(m, n, |_, _| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    fn check_tiled_qr(a0: &Matrix<f64>, nb: usize, tol: f64) {
        let (m, n) = (a0.nrows(), a0.ncols());
        let k = m.min(n);
        let f = geqrf_tiled(a0, nb);
        let q = orgqr_tiled(&f, k);
        // orthonormality
        let mut qhq = Matrix::<f64>::zeros(k, k);
        gemm(Op::ConjTrans, Op::NoTrans, 1.0, q.as_ref(), q.as_ref(), 0.0, qhq.as_mut());
        for j in 0..k {
            for i in 0..k {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (qhq[(i, j)] - expect).abs() <= tol,
                    "QhQ({i},{j}) = {} (m={m} n={n} nb={nb})",
                    qhq[(i, j)]
                );
            }
        }
        // reconstruction
        let r = f.extract_r();
        let mut qr = Matrix::<f64>::zeros(m, n);
        gemm(Op::NoTrans, Op::NoTrans, 1.0, q.as_ref(), r.as_ref(), 0.0, qr.as_mut());
        let mut diff = qr;
        add(-1.0, a0.as_ref(), 1.0, diff.as_mut());
        let err: f64 = norm(Norm::Fro, diff.as_ref());
        let scale: f64 = norm(Norm::Fro, a0.as_ref());
        assert!(err <= tol * (1.0 + scale), "||QR - A|| = {err} (m={m} n={n} nb={nb})");
    }

    #[test]
    fn tiled_qr_shapes_and_tile_sizes() {
        check_tiled_qr(&rand_mat(64, 64, 1), 16, 1e-12);
        check_tiled_qr(&rand_mat(64, 64, 2), 48, 1e-12); // m not multiple of nb
        check_tiled_qr(&rand_mat(96, 32, 3), 32, 1e-12); // tall
        check_tiled_qr(&rand_mat(37, 29, 4), 16, 1e-12); // prime-ish edges
        check_tiled_qr(&rand_mat(30, 30, 5), 64, 1e-12); // nb > n: single tile
    }

    #[test]
    fn tiled_stacked_matches_dense_tiled() {
        // the windowed task graph must produce the same factorization as
        // the dense one on [B; I] (the skipped tasks are exact no-ops)
        for n in [24usize, 40] {
            let b = rand_mat(n, n, 10 + n as u64);
            let w = Matrix::vstack(&b, &Matrix::identity(n, n));
            let dense = geqrf_tiled(&w, 16);
            let windowed = geqrf_tiled_stacked(n, &w, 16);
            let qd = orgqr_tiled(&dense, n);
            let qw = orgqr_tiled(&windowed, n);
            let mut diff = qd.clone();
            add(-1.0, qw.as_ref(), 1.0, diff.as_mut());
            let err: f64 = norm(Norm::Fro, diff.as_ref());
            assert!(err == 0.0, "windowed Q differs: {err} (n={n})");
        }
    }

    #[test]
    fn tiled_qr_complex() {
        let mut s = 3u64;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let a0 = Matrix::from_fn(40, 24, |_, _| Complex64::new(next(), next()));
        let f = geqrf_tiled(&a0, 16);
        let q = orgqr_tiled(&f, 24);
        let r = f.extract_r();
        let one = Complex64::from_real(1.0);
        let mut qr = Matrix::<Complex64>::zeros(40, 24);
        gemm(
            Op::NoTrans,
            Op::NoTrans,
            one,
            q.as_ref(),
            r.as_ref(),
            Complex64::default(),
            qr.as_mut(),
        );
        let mut diff = qr;
        add(-one, a0.as_ref(), one, diff.as_mut());
        let err: f64 = norm(Norm::Fro, diff.as_ref());
        assert!(err < 1e-12, "||QR - A|| = {err}");
    }

    #[test]
    fn potrf_tiled_matches_flat() {
        for (n, nb) in [(48usize, 16usize), (50, 16), (33, 48)] {
            let b = rand_mat(n, n, 20 + n as u64);
            // SPD: B B^H + n I
            let mut spd = Matrix::<f64>::identity(n, n);
            for d in 0..n {
                spd[(d, d)] = n as f64;
            }
            gemm(Op::NoTrans, Op::ConjTrans, 1.0, b.as_ref(), b.as_ref(), 1.0, spd.as_mut());
            let mut flat = spd.clone();
            potrf(Uplo::Lower, &mut flat).unwrap();
            let mut tiled = spd.clone();
            potrf_tiled(Uplo::Lower, &mut tiled, nb).unwrap();
            // Cholesky with positive diagonal is unique: compare directly
            for j in 0..n {
                for i in j..n {
                    assert!(
                        (flat[(i, j)] - tiled[(i, j)]).abs() <= 1e-10 * (n as f64),
                        "L({i},{j}) flat={} tiled={} (n={n} nb={nb})",
                        flat[(i, j)],
                        tiled[(i, j)]
                    );
                }
            }
        }
    }

    #[test]
    fn potrf_tiled_reports_indefinite() {
        let n = 40;
        let mut a = Matrix::<f64>::identity(n, n);
        a[(25, 25)] = -1.0; // tile 1 with nb=16: local 1-based info 10 → global 26
        let err = potrf_tiled(Uplo::Lower, &mut a, 16).unwrap_err();
        match err {
            LapackError::NotPositiveDefinite(off) => assert_eq!(off, 26),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn tiled_qr_matches_flat_reconstruction() {
        // same A, both algorithms: the Q R products must agree even though
        // the reflectors differ
        let a0 = rand_mat(48, 48, 99);
        let mut flat = a0.clone();
        let ff = geqrf(&mut flat);
        let qf = orgqr(&flat, &ff);
        let ft = geqrf_tiled(&a0, 16);
        let qt = orgqr_tiled(&ft, 48);
        // compare the orthogonal projectors Q Q^H (basis-independent)
        let mut pf = Matrix::<f64>::zeros(48, 48);
        gemm(Op::NoTrans, Op::ConjTrans, 1.0, qf.as_ref(), qf.as_ref(), 0.0, pf.as_mut());
        let mut pt = Matrix::<f64>::zeros(48, 48);
        gemm(Op::NoTrans, Op::ConjTrans, 1.0, qt.as_ref(), qt.as_ref(), 0.0, pt.as_mut());
        let mut diff = pf;
        add(-1.0, pt.as_ref(), 1.0, diff.as_mut());
        let err: f64 = norm(Norm::Fro, diff.as_ref());
        assert!(err < 1e-12, "projector mismatch {err}");
    }
}
