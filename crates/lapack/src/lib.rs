//! From-scratch dense matrix factorizations and estimators.
//!
//! This crate stands in for (Sca)LAPACK in the reproduced paper. It
//! provides every factorization and estimator Algorithm 1 consumes:
//!
//! * [`geqrf`] / [`unmqr`] / [`orgqr`] — blocked Householder QR (the
//!   QR-based QDWH iteration, Algorithm 1 lines 30–36);
//! * [`tsqr`] — communication-avoiding tall-skinny QR (ablation of the
//!   stacked `[sqrt(c) A; I]` factorization);
//! * [`potrf`] / [`posv`] — Cholesky (the Cholesky-based iteration, lines
//!   38–44);
//! * [`getrf`] / [`getrs`] — partial-pivoting LU (general condition
//!   estimation);
//! * [`norm1est`] (Hager), [`gecondest`], [`trcondest`] — 1-norm condition
//!   estimators (§6.3);
//! * [`norm2est`] — power-iteration two-norm estimator (Algorithm 2);
//! * [`jacobi_svd`] — one-sided Jacobi SVD (test-matrix generation and the
//!   SVD-based polar decomposition baseline of §3);
//! * [`jacobi_eig`] — Hermitian Jacobi eigensolver (the `H = V Λ V^H` step
//!   of the QDWH-SVD application, and positive-semidefiniteness checks).

mod chol;
mod condest;
mod eig;
mod householder;
mod lu;
mod norm2est;
mod qr;
mod svd;
mod tile_qr;
mod tiled;
mod tri;
mod tsqr;

pub use chol::{posv, potrf, potrf_in};
pub use condest::{gecondest, norm1est, tr_sigma_min_est, trcondest, OneNormOracle};
pub use eig::{jacobi_eig, EigDecomposition};
pub use householder::{larf, larfg, Reflector};
pub use lu::{getrf, getrs, LuFactors};
pub use norm2est::{norm2est, Norm2Est};
pub use qr::{extract_r, geqrf, geqrf_blocked, geqrf_stacked, orgqr, unmqr, QrFactors};
pub use svd::{jacobi_svd, SvdDecomposition};
pub use tile_qr::{
    geqrt, geqrt_blocked, geqrt_blocked_into, tsmqr, tsmqr_blocked, tsqrt, tsqrt_blocked,
    tsqrt_blocked_into, unmqr_tile, unmqr_tile_blocked, TileT,
};
pub use tiled::{
    auto_tile_nb, default_tile_nb, geqrf_tiled, geqrf_tiled_stacked, orgqr_tiled, potrf_tiled,
    stacked_row_limit, SlotPtr, TilePtr, TiledQr,
};
pub use tri::trtri_lower;
pub use tsqr::tsqr;

/// Error type for factorizations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LapackError {
    /// Leading minor of the given order is not positive definite
    /// (Cholesky), mirroring LAPACK's positive `info`.
    NotPositiveDefinite(usize),
    /// Exactly-zero pivot at the given index (LU).
    SingularPivot(usize),
    /// An iterative algorithm did not converge within its sweep budget.
    NoConvergence { sweeps: usize },
    /// Dimension mismatch or unsupported shape.
    Shape(&'static str),
}

impl std::fmt::Display for LapackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LapackError::NotPositiveDefinite(k) => {
                write!(f, "leading minor of order {k} is not positive definite")
            }
            LapackError::SingularPivot(k) => write!(f, "zero pivot at index {k}"),
            LapackError::NoConvergence { sweeps } => {
                write!(f, "no convergence after {sweeps} sweeps")
            }
            LapackError::Shape(msg) => write!(f, "shape error: {msg}"),
        }
    }
}

impl std::error::Error for LapackError {}

/// Whether a failure is worth retrying. Serving layers (see `polar-svc`)
/// use this to decide between retry-with-backoff and immediate rejection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureClass {
    /// Deterministic: the same input will fail the same way (shape
    /// mismatch, exact singularity, indefiniteness). Never retry.
    Permanent,
    /// Budget- or environment-dependent: a retry under a different
    /// configuration (larger sweep budget, different iteration path, a
    /// recovered accelerator) can succeed.
    Transient,
}

impl LapackError {
    /// Classify this failure for retry policies.
    pub fn class(&self) -> FailureClass {
        match self {
            // properties of the input matrix itself — retrying the same
            // call reproduces them exactly
            LapackError::NotPositiveDefinite(_)
            | LapackError::SingularPivot(_)
            | LapackError::Shape(_) => FailureClass::Permanent,
            // an exhausted iteration budget is a resource cap, not a
            // property of the data; retry policies may raise the budget
            // or switch algorithm variant
            LapackError::NoConvergence { .. } => FailureClass::Transient,
        }
    }
}

/// Default block size for blocked factorizations (LAPACK `ilaenv`-style
/// constant; the paper's tile sizes 192/320 play the analogous role at the
/// distributed level).
pub const DEFAULT_BLOCK: usize = 32;
