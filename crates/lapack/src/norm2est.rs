//! Matrix two-norm estimation by power iteration — Algorithm 2 of the
//! paper, implemented exactly as written (including the `gemmA` matvecs
//! and the 0.1 relative tolerance).

use polar_blas::{col_sums, gemm_a, nrm2};
use polar_matrix::{Matrix, Op};
use polar_scalar::{Real, Scalar};

/// Diagnostics of a [`norm2est`] run.
#[derive(Debug, Clone, Copy)]
pub struct Norm2Est<R> {
    /// The estimate of `||A||_2` (largest singular value).
    pub estimate: R,
    /// Power iterations performed.
    pub iterations: usize,
    /// Whether the loop hit its iteration cap instead of the tolerance.
    pub capped: bool,
}

/// Estimate `||A||_2` by power iteration on `A^H A` (Algorithm 2).
///
/// The starting vector is the vector of column sums (line 6), the
/// convergence tolerance is `tol = 0.1` (line 13) — the paper notes an
/// estimate within a factor of 5 is entirely satisfactory for QDWH
/// scaling, since it only normalizes `A_0 = A / alpha`.
pub fn norm2est<S: Scalar>(a: &Matrix<S>) -> Norm2Est<S::Real> {
    norm2est_tol(a, S::Real::from_f64(0.1), 40)
}

/// [`norm2est`] with explicit tolerance and iteration cap.
pub fn norm2est_tol<S: Scalar>(a: &Matrix<S>, tol: S::Real, max_iter: usize) -> Norm2Est<S::Real> {
    let m = a.nrows();
    let n = a.ncols();
    if m == 0 || n == 0 {
        return Norm2Est { estimate: S::Real::ZERO, iterations: 0, capped: false };
    }

    // X = column sums of |A| (Algorithm 2 lines 5-8).
    let sums = col_sums(a.as_ref());
    let mut x = Matrix::<S>::from_fn(n, 1, |i, _| S::from_real(sums[i]));
    let mut ax = Matrix::<S>::zeros(m, 1);

    // e = ||X||_F (line 10)
    let mut e = nrm2::<S>(x.col(0));
    if e == S::Real::ZERO {
        // zero matrix
        return Norm2Est { estimate: S::Real::ZERO, iterations: 0, capped: false };
    }
    let mut norm_x = e;
    let mut e0;
    let mut iterations = 0;
    let mut capped = true;

    for _ in 0..max_iter {
        iterations += 1;
        e0 = e;
        // scale(1/normX, X)
        let inv = norm_x.recip();
        for v in x.col_mut(0) {
            *v = v.mul_real(inv);
        }
        // AX = A * X ; X = A^H * AX   (gemmA variant, §6.2).
        // Deviation from the literal Algorithm 2: AX is normalized before
        // the second product. Without it, forming A^H (A x) squares the
        // matrix scale and under/overflows for ||A|| outside
        // [sqrt(MIN), sqrt(MAX)]; with it, e = ||A^H (Ax/||Ax||)|| is the
        // identical Rayleigh ratio ||A^H A x|| / ||A x||, evaluated safely.
        gemm_a(Op::NoTrans, S::ONE, a.as_ref(), x.as_ref(), S::ZERO, ax.as_mut());
        let norm_ax = nrm2::<S>(ax.col(0));
        if norm_ax == S::Real::ZERO || !norm_ax.is_finite() {
            e = if norm_ax.is_finite() { S::Real::ZERO } else { e };
            capped = false;
            break;
        }
        let inv_ax = norm_ax.recip();
        for v in ax.col_mut(0) {
            *v = v.mul_real(inv_ax);
        }
        gemm_a(Op::ConjTrans, S::ONE, a.as_ref(), ax.as_ref(), S::ZERO, x.as_mut());
        norm_x = nrm2::<S>(x.col(0));
        if norm_x == S::Real::ZERO {
            e = S::Real::ZERO;
            capped = false;
            break;
        }
        e = norm_x;
        if (e - e0).abs() <= tol * e {
            capped = false;
            break;
        }
    }

    Norm2Est { estimate: e, iterations, capped }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polar_scalar::Complex64;

    #[test]
    fn exact_on_diagonal() {
        let a = Matrix::from_fn(6, 6, |i, j| if i == j { (i + 1) as f64 } else { 0.0 });
        let r = norm2est(&a);
        assert!((r.estimate - 6.0).abs() / 6.0 < 0.1, "est = {}", r.estimate);
    }

    #[test]
    fn within_factor_on_random() {
        let mut s = 3u64;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let a = Matrix::from_fn(40, 25, |_, _| next());
        let r = norm2est(&a);
        // Bounds: ||A||_2 in [||A||_F / sqrt(rank), ||A||_F]
        let fro: f64 = polar_blas::norm(polar_matrix::Norm::Fro, a.as_ref());
        assert!(r.estimate <= fro * 1.05);
        assert!(r.estimate >= fro / 25.0);
        // The paper deems a factor-5 estimate satisfactory; power iteration
        // with tol 0.1 is far better than that in practice.
        assert!(!r.capped);
    }

    #[test]
    fn rank_one_converges_immediately() {
        // A = u v^T has a single nonzero singular value = |u||v|
        let u: Vec<f64> = (0..10).map(|i| (i as f64 - 4.5) / 3.0).collect();
        let v: Vec<f64> = (0..7).map(|i| 1.0 + i as f64 * 0.2).collect();
        let a = Matrix::from_fn(10, 7, |i, j| u[i] * v[j]);
        let sigma = nrm2::<f64>(&u) * nrm2::<f64>(&v);
        let r = norm2est(&a);
        assert!((r.estimate - sigma).abs() / sigma < 1e-10);
        assert!(r.iterations <= 2);
    }

    #[test]
    fn zero_matrix() {
        let a = Matrix::<f64>::zeros(5, 5);
        let r = norm2est(&a);
        assert_eq!(r.estimate, 0.0);
    }

    #[test]
    fn complex_norm2() {
        let a = Matrix::from_fn(4, 4, |i, j| {
            if i == j {
                Complex64::new(0.0, (i + 1) as f64) // modulus i+1
            } else {
                Complex64::default()
            }
        });
        let r = norm2est(&a);
        assert!((r.estimate - 4.0).abs() < 0.4);
    }

    #[test]
    fn rectangular_tall() {
        let a = Matrix::from_fn(100, 3, |i, j| if i == j { 2.0 + j as f64 } else { 0.0 });
        let r = norm2est(&a);
        assert!((r.estimate - 4.0).abs() / 4.0 < 0.1);
    }
}
