//! Partial-pivoting LU factorization (`getrf`) and solve (`getrs`).
//!
//! QDWH's general condition-number estimator (`gecondest`, §6.3) evaluates
//! `||A^{-1}||_1` through solves with these factors.

use crate::LapackError;
use polar_blas::trsm;
use polar_matrix::{Diag, Matrix, Op, Side, Uplo};
use polar_scalar::{Real, Scalar};

/// LU factors: `P A = L U` packed in a single matrix (unit-lower `L`
/// below the diagonal, `U` on and above), plus the pivot row swaps.
#[derive(Debug, Clone)]
pub struct LuFactors<S: Scalar> {
    /// Packed `L\U` storage.
    pub lu: Matrix<S>,
    /// `ipiv[k] = r` means rows `k` and `r` were swapped at step `k`
    /// (LAPACK convention, 0-based).
    pub ipiv: Vec<usize>,
}

/// Right-looking partial-pivoting LU, LAPACK `getrf` (unblocked; used on
/// moderate sizes by the condition estimator and tests).
///
/// Returns an error carrying the pivot index if an exactly-zero pivot is
/// hit (the factorization is still completed, as in LAPACK).
pub fn getrf<S: Scalar>(a: &Matrix<S>) -> Result<LuFactors<S>, (LuFactors<S>, LapackError)> {
    let mut lu = a.clone();
    let m = lu.nrows();
    let n = lu.ncols();
    let k = m.min(n);
    let mut ipiv = vec![0usize; k];
    let mut first_zero: Option<usize> = None;

    for j in 0..k {
        // find pivot in column j, rows j..m
        let mut p = j;
        let mut pmax = lu[(j, j)].abs1();
        for i in j + 1..m {
            let v = lu[(i, j)].abs1();
            if v > pmax {
                pmax = v;
                p = i;
            }
        }
        ipiv[j] = p;
        if p != j {
            for c in 0..n {
                let t = lu[(j, c)];
                lu[(j, c)] = lu[(p, c)];
                lu[(p, c)] = t;
            }
        }
        let piv = lu[(j, j)];
        if piv.abs1() == S::Real::ZERO {
            first_zero.get_or_insert(j + 1);
            continue; // leave the zero column; trailing update is a no-op
        }
        let inv = piv.recip();
        for i in j + 1..m {
            let lij = lu[(i, j)] * inv;
            lu[(i, j)] = lij;
        }
        // trailing update A[j+1.., j+1..] -= L[j+1.., j] * U[j, j+1..]
        for c in j + 1..n {
            let ujc = lu[(j, c)];
            if ujc == S::ZERO {
                continue;
            }
            for i in j + 1..m {
                let v = lu[(i, c)] - lu[(i, j)] * ujc;
                lu[(i, c)] = v;
            }
        }
    }
    let f = LuFactors { lu, ipiv };
    match first_zero {
        None => Ok(f),
        Some(k) => {
            let err = LapackError::SingularPivot(k);
            Err((f, err))
        }
    }
}

/// Apply the pivot sequence to `B` (forward for solves with `A`, backward
/// for `A^H`), LAPACK `laswp`.
fn apply_pivots<S: Scalar>(ipiv: &[usize], b: &mut Matrix<S>, forward: bool) {
    let order: Box<dyn Iterator<Item = usize>> =
        if forward { Box::new(0..ipiv.len()) } else { Box::new((0..ipiv.len()).rev()) };
    for kidx in order {
        let p = ipiv[kidx];
        if p != kidx {
            for c in 0..b.ncols() {
                let t = b[(kidx, c)];
                b[(kidx, c)] = b[(p, c)];
                b[(p, c)] = t;
            }
        }
    }
}

/// Solve `op(A) X = B` from LU factors, LAPACK `getrs`. `X` overwrites `B`.
///
/// Shape violations surface as [`LapackError::Shape`] rather than a panic,
/// so callers embedded in long-running services degrade to a structured
/// error instead of unwinding a worker thread.
pub fn getrs<S: Scalar>(op: Op, f: &LuFactors<S>, b: &mut Matrix<S>) -> Result<(), LapackError> {
    let n = f.lu.nrows();
    if !f.lu.is_square() {
        return Err(LapackError::Shape("getrs: square systems only"));
    }
    if b.nrows() != n {
        return Err(LapackError::Shape("getrs: rhs row count must match the factored matrix"));
    }
    match op {
        Op::NoTrans => {
            // P A = L U  =>  A x = b  <=>  L U x = P b
            apply_pivots(&f.ipiv, b, true);
            trsm(
                Side::Left,
                Uplo::Lower,
                Op::NoTrans,
                Diag::Unit,
                S::ONE,
                f.lu.as_ref(),
                b.as_mut(),
            );
            trsm(
                Side::Left,
                Uplo::Upper,
                Op::NoTrans,
                Diag::NonUnit,
                S::ONE,
                f.lu.as_ref(),
                b.as_mut(),
            );
        }
        Op::Trans | Op::ConjTrans => {
            // A^H x = b  <=>  U^H L^H P x = b
            trsm(Side::Left, Uplo::Upper, op, Diag::NonUnit, S::ONE, f.lu.as_ref(), b.as_mut());
            trsm(Side::Left, Uplo::Lower, op, Diag::Unit, S::ONE, f.lu.as_ref(), b.as_mut());
            apply_pivots(&f.ipiv, b, false);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use polar_blas::{gemm, norm};
    use polar_matrix::Norm;
    use polar_scalar::Complex64;

    fn rand_mat(n: usize, seed: u64) -> Matrix<f64> {
        let mut s = seed | 1;
        Matrix::from_fn(n, n, |_, _| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    #[test]
    fn getrf_reconstructs_pa() {
        let n = 25;
        let a = rand_mat(n, 31);
        let f = getrf(&a).unwrap();
        // build L, U, and P A
        let l = Matrix::from_fn(n, n, |i, j| {
            if i > j {
                f.lu[(i, j)]
            } else if i == j {
                1.0
            } else {
                0.0
            }
        });
        let u = Matrix::from_fn(n, n, |i, j| if i <= j { f.lu[(i, j)] } else { 0.0 });
        let mut pa = a.clone();
        apply_pivots(&f.ipiv, &mut pa, true);
        let mut lu = Matrix::<f64>::zeros(n, n);
        gemm(Op::NoTrans, Op::NoTrans, 1.0, l.as_ref(), u.as_ref(), 0.0, lu.as_mut());
        let mut diff = lu;
        polar_blas::add(-1.0, pa.as_ref(), 1.0, diff.as_mut());
        let err: f64 = norm(Norm::Fro, diff.as_ref());
        assert!(err < 1e-12, "||LU - PA|| = {err}");
    }

    #[test]
    fn getrs_solves_both_ops() {
        let n = 20;
        let a = rand_mat(n, 7);
        let f = getrf(&a).unwrap();
        let x_true = Matrix::from_fn(n, 2, |i, j| (i as f64 - 3.0) * (j as f64 + 1.0) * 0.1);
        for op in [Op::NoTrans, Op::Trans] {
            let mut b = Matrix::<f64>::zeros(n, 2);
            gemm(op, Op::NoTrans, 1.0, a.as_ref(), x_true.as_ref(), 0.0, b.as_mut());
            getrs(op, &f, &mut b).unwrap();
            let mut diff = b;
            polar_blas::add(-1.0, x_true.as_ref(), 1.0, diff.as_mut());
            let err: f64 = norm(Norm::Fro, diff.as_ref());
            assert!(err < 1e-9, "{op:?}: {err}");
        }
    }

    #[test]
    fn getrs_complex_conj_trans() {
        let n = 12;
        let mut s = 5u64;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let a = Matrix::from_fn(n, n, |_, _| Complex64::new(next(), next()));
        let f = getrf(&a).unwrap();
        let x_true = Matrix::from_fn(n, 1, |i, _| Complex64::new(i as f64, -1.0));
        let one = Complex64::from_real(1.0);
        let mut b = Matrix::<Complex64>::zeros(n, 1);
        gemm(
            Op::ConjTrans,
            Op::NoTrans,
            one,
            a.as_ref(),
            x_true.as_ref(),
            Complex64::default(),
            b.as_mut(),
        );
        getrs(Op::ConjTrans, &f, &mut b).unwrap();
        for i in 0..n {
            assert!((b[(i, 0)] - x_true[(i, 0)]).abs() < 1e-9);
        }
    }

    #[test]
    fn getrf_flags_singular() {
        let mut a = rand_mat(6, 9);
        // zero out a column => exact singularity
        for i in 0..6 {
            a[(i, 3)] = 0.0;
        }
        match getrf(&a) {
            Err((_, LapackError::SingularPivot(_))) => {}
            other => panic!("expected singular pivot, got {other:?}"),
        }
    }

    #[test]
    fn getrf_pivots_large_entries() {
        // matrix requiring pivoting: tiny leading entry
        let a = Matrix::from_rows(&[&[1e-20, 1.0], &[1.0, 1.0]]);
        let f = getrf(&a).unwrap();
        assert_eq!(f.ipiv[0], 1, "must pivot the large row up");
        let mut b = Matrix::from_rows(&[&[1.0], &[2.0]]);
        getrs(Op::NoTrans, &f, &mut b).unwrap();
        // solution of [[0,1],[1,1]] approx: x ≈ [1, 1]
        assert!(f64::abs(b[(0, 0)] - 1.0) < 1e-9);
        assert!(f64::abs(b[(1, 0)] - 1.0) < 1e-9);
    }
}
