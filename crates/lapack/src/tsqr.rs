//! Communication-avoiding tall-skinny QR (TSQR).
//!
//! SLATE's `geqrf` uses communication-avoiding techniques for the panel;
//! this module provides the classic binary-reduction-tree TSQR used as an
//! ablation against the flat blocked QR for the QDWH stacked factorization
//! `W = [sqrt(c) A; I]`, which is extremely tall (`(m+n) x n`).

use crate::qr::{extract_r, geqrf, orgqr};
use polar_blas::gemm;
use polar_matrix::{Matrix, Op};
use polar_scalar::Scalar;

/// Tall-skinny QR via a binary reduction tree.
///
/// Returns `(Q, R)` with `Q: m x n` having orthonormal columns and
/// `R: n x n` upper triangular such that `A = Q R`.
///
/// Row blocks are factored independently (in parallel via rayon), their
/// `R` factors are combined pairwise up a binary tree, and the `Q` factors
/// are propagated back down — the same dataflow a distributed TSQR uses to
/// reduce message count from `O(mt)` to `O(log mt)`.
pub fn tsqr<S: Scalar>(a: &Matrix<S>) -> (Matrix<S>, Matrix<S>) {
    let m = a.nrows();
    let n = a.ncols();
    assert!(m >= n, "tsqr requires m >= n");
    // Nominal factor-then-form-Q flops; the per-block geqrf/orgqr calls
    // below are nested and therefore not double-counted.
    let _obs = polar_obs::kernel_span(
        polar_obs::KernelClass::Geqrf,
        "tsqr",
        polar_blas::flops::type_factor(S::IS_COMPLEX)
            * (polar_blas::flops::geqrf(m, n) + polar_blas::flops::orgqr(m, n)),
        [m, n, 0],
    );
    tsqr_rec(a, 0, m)
}

fn tsqr_rec<S: Scalar>(a: &Matrix<S>, row0: usize, rows: usize) -> (Matrix<S>, Matrix<S>) {
    let n = a.ncols();
    // base case: factor the block directly once it is modestly tall
    if rows <= (4 * n).max(64) {
        let mut block = a.submatrix_owned(row0, 0, rows, n);
        let f = geqrf(&mut block);
        let q = orgqr(&block, &f);
        let r = extract_r(&block);
        let r_square = r.submatrix_owned(0, 0, n.min(rows), n);
        // pad R to n x n when the block is shorter than n columns would
        // require (cannot happen for rows >= n, which the split guarantees)
        return (q, r_square);
    }
    // split rows; keep both halves at least n rows tall
    let half = (rows / 2).max(n);
    let ((q1, r1), (q2, r2)) =
        rayon::join(|| tsqr_rec(a, row0, half), || tsqr_rec(a, row0 + half, rows - half));
    // combine: [R1; R2] = Q3 R
    let stacked = Matrix::vstack(&r1, &r2);
    let mut packed = stacked;
    let f = geqrf(&mut packed);
    let q3 = orgqr(&packed, &f);
    let r = extract_r(&packed).submatrix_owned(0, 0, n, n);
    // Q = [Q1 * Q3_top; Q2 * Q3_bottom]
    let q3_top = q3.submatrix_owned(0, 0, r1.nrows(), n);
    let q3_bot = q3.submatrix_owned(r1.nrows(), 0, r2.nrows(), n);
    let mut q = Matrix::<S>::zeros(rows, n);
    {
        let (top, bottom) = q.as_mut().split_at_row(q1.nrows());
        rayon::join(
            || gemm(Op::NoTrans, Op::NoTrans, S::ONE, q1.as_ref(), q3_top.as_ref(), S::ZERO, top),
            || {
                gemm(
                    Op::NoTrans,
                    Op::NoTrans,
                    S::ONE,
                    q2.as_ref(),
                    q3_bot.as_ref(),
                    S::ZERO,
                    bottom,
                )
            },
        );
    }
    (q, r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polar_blas::{add, norm};
    use polar_matrix::Norm;
    use polar_scalar::Complex64;

    fn rand_mat(m: usize, n: usize, seed: u64) -> Matrix<f64> {
        let mut s = seed | 1;
        Matrix::from_fn(m, n, |_, _| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    fn check_tsqr<S: Scalar>(a: &Matrix<S>, tol: S::Real) {
        use polar_scalar::Real;
        let (m, n) = (a.nrows(), a.ncols());
        let (q, r) = tsqr(a);
        assert_eq!(q.nrows(), m);
        assert_eq!(q.ncols(), n);
        assert_eq!(r.nrows(), n);
        // R upper triangular
        for j in 0..n {
            for i in j + 1..n {
                assert_eq!(r[(i, j)], S::ZERO, "R not triangular at ({i},{j})");
            }
        }
        // Q^H Q = I
        let mut qhq = Matrix::<S>::zeros(n, n);
        gemm(Op::ConjTrans, Op::NoTrans, S::ONE, q.as_ref(), q.as_ref(), S::ZERO, qhq.as_mut());
        for j in 0..n {
            for i in 0..n {
                let expect = if i == j { S::ONE } else { S::ZERO };
                assert!((qhq[(i, j)] - expect).abs() <= tol);
            }
        }
        // QR = A
        let mut recon = Matrix::<S>::zeros(m, n);
        gemm(Op::NoTrans, Op::NoTrans, S::ONE, q.as_ref(), r.as_ref(), S::ZERO, recon.as_mut());
        let mut diff = recon;
        add(-S::ONE, a.as_ref(), S::ONE, diff.as_mut());
        let err: S::Real = norm(Norm::Fro, diff.as_ref());
        let scale: S::Real = norm(Norm::Fro, a.as_ref());
        assert!(err <= tol * (S::Real::ONE + scale));
    }

    #[test]
    fn tsqr_moderately_tall() {
        check_tsqr(&rand_mat(300, 10, 1), 1e-12);
    }

    #[test]
    fn tsqr_very_tall_multilevel() {
        check_tsqr(&rand_mat(2000, 8, 2), 1e-12);
    }

    #[test]
    fn tsqr_base_case_only() {
        check_tsqr(&rand_mat(30, 10, 3), 1e-12);
    }

    #[test]
    fn tsqr_complex() {
        let mut s = 11u64;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let a = Matrix::from_fn(400, 6, |_, _| Complex64::new(next(), next()));
        check_tsqr(&a, 1e-12);
    }

    #[test]
    fn tsqr_matches_flat_qr_r_up_to_signs() {
        // |diag(R)| must agree between TSQR and flat QR
        let a = rand_mat(500, 5, 4);
        let (_, r_t) = tsqr(&a);
        let mut packed = a.clone();
        let _ = geqrf(&mut packed);
        let r_f = extract_r(&packed);
        for j in 0..5 {
            assert!((r_t[(j, j)].abs() - r_f[(j, j)].abs()).abs() < 1e-10);
        }
    }

    #[test]
    fn tsqr_square_input() {
        check_tsqr(&rand_mat(12, 12, 5), 1e-12);
    }
}
