//! Hermitian eigendecomposition by the classical two-sided Jacobi method.
//!
//! Used for the QDWH-SVD application (paper §3: `A = U_p H`, then
//! `H = V Λ V^H` gives the SVD) and to verify positive semidefiniteness of
//! the computed polar factor `H` in tests.

use crate::LapackError;
use polar_matrix::Matrix;
use polar_scalar::{Real, Scalar};

/// Eigendecomposition `A = V diag(lambda) V^H` of a Hermitian matrix,
/// eigenvalues descending.
#[derive(Debug, Clone)]
pub struct EigDecomposition<S: Scalar> {
    pub values: Vec<S::Real>,
    pub vectors: Matrix<S>,
    pub sweeps: usize,
}

/// Jacobi eigensolver for a Hermitian `A` (only requires `A ≈ A^H`; the
/// strictly-upper triangle is trusted).
pub fn jacobi_eig<S: Scalar>(a: &Matrix<S>) -> Result<EigDecomposition<S>, LapackError> {
    let n = a.nrows();
    if !a.is_square() {
        return Err(LapackError::Shape("jacobi_eig requires a square matrix"));
    }
    let mut h = a.clone();
    let mut v = Matrix::<S>::identity(n, n);
    let eps = S::Real::EPSILON;

    // off-diagonal magnitude reference
    let mut ref_scale = S::Real::ZERO;
    for j in 0..n {
        for i in 0..n {
            ref_scale = ref_scale.max(h[(i, j)].abs());
        }
    }
    let tol = eps * ref_scale * S::Real::from_usize(n.max(1));
    const MAX_SWEEPS: usize = 40;

    let mut sweeps = 0;
    if ref_scale > S::Real::ZERO {
        for sweep in 0..MAX_SWEEPS {
            sweeps = sweep + 1;
            let mut rotated = false;
            for p in 0..n {
                for q in p + 1..n {
                    let apq = h[(p, q)];
                    let abs_apq = apq.abs();
                    if abs_apq <= tol {
                        continue;
                    }
                    rotated = true;
                    let app = h[(p, p)].re();
                    let aqq = h[(q, q)].re();
                    // conjugate phase: column q is scaled by e^{-i phi} to
                    // realify the 2x2 block before the real rotation
                    let beta = apq.conj().mul_real(abs_apq.recip()); // e^{-i phi}
                    let zeta = (aqq - app) / (S::Real::TWO * abs_apq);
                    let t = zeta.sign1() / (zeta.abs() + (S::Real::ONE + zeta * zeta).sqrt());
                    let cs = (S::Real::ONE + t * t).sqrt().recip();
                    let sn = t * cs;

                    // H := J^H H J with J embedding
                    // [[cs, sn], [-beta sn, beta cs]] at (p, q).
                    // column update: [H_p, H_q] := [H_p, H_q] J
                    for i in 0..n {
                        let xp = h[(i, p)];
                        let xq = h[(i, q)];
                        let bq = beta * xq;
                        h[(i, p)] = xp.mul_real(cs) - bq.mul_real(sn);
                        h[(i, q)] = xp.mul_real(sn) + bq.mul_real(cs);
                    }
                    // row update: rows p, q := J^H applied from the left
                    for jcol in 0..n {
                        let rp = h[(p, jcol)];
                        let rq = h[(q, jcol)];
                        let bq = beta.conj() * rq;
                        h[(p, jcol)] = rp.mul_real(cs) - bq.mul_real(sn);
                        h[(q, jcol)] = rp.mul_real(sn) + bq.mul_real(cs);
                    }
                    // force the (p,q) pair to exact symmetry/reality
                    h[(q, p)] = h[(p, q)].conj();
                    h[(p, p)] = S::from_real(h[(p, p)].re());
                    h[(q, q)] = S::from_real(h[(q, q)].re());
                    // accumulate V := V J
                    for i in 0..n {
                        let xp = v[(i, p)];
                        let xq = v[(i, q)];
                        let bq = beta * xq;
                        v[(i, p)] = xp.mul_real(cs) - bq.mul_real(sn);
                        v[(i, q)] = xp.mul_real(sn) + bq.mul_real(cs);
                    }
                }
            }
            if !rotated {
                break;
            }
            if sweep + 1 == MAX_SWEEPS {
                return Err(LapackError::NoConvergence { sweeps: MAX_SWEEPS });
            }
        }
    }

    // sort eigenpairs descending
    let mut order: Vec<usize> = (0..n).collect();
    let raw: Vec<S::Real> = (0..n).map(|j| h[(j, j)].re()).collect();
    order.sort_by(|&i, &j| raw[j].partial_cmp(&raw[i]).unwrap_or(core::cmp::Ordering::Equal));
    let values: Vec<S::Real> = order.iter().map(|&j| raw[j]).collect();
    let mut vectors = Matrix::<S>::zeros(n, n);
    for (newj, &oldj) in order.iter().enumerate() {
        for i in 0..n {
            vectors[(i, newj)] = v[(i, oldj)];
        }
    }

    Ok(EigDecomposition { values, vectors, sweeps })
}

#[cfg(test)]
mod tests {
    use super::*;
    use polar_blas::{add, gemm, norm};
    use polar_matrix::{Norm, Op};
    use polar_scalar::Complex64;

    fn check_eig<S: Scalar>(a: &Matrix<S>, tol: S::Real) -> EigDecomposition<S> {
        let n = a.nrows();
        let e = jacobi_eig(a).expect("eig converged");
        // descending
        for w in e.values.windows(2) {
            assert!(w[0] >= w[1]);
        }
        // V unitary
        let mut vhv = Matrix::<S>::zeros(n, n);
        gemm(
            Op::ConjTrans,
            Op::NoTrans,
            S::ONE,
            e.vectors.as_ref(),
            e.vectors.as_ref(),
            S::ZERO,
            vhv.as_mut(),
        );
        for j in 0..n {
            for i in 0..n {
                let expect = if i == j { S::ONE } else { S::ZERO };
                assert!((vhv[(i, j)] - expect).abs() <= tol);
            }
        }
        // A V = V diag(lambda)
        let mut av = Matrix::<S>::zeros(n, n);
        gemm(
            Op::NoTrans,
            Op::NoTrans,
            S::ONE,
            a.as_ref(),
            e.vectors.as_ref(),
            S::ZERO,
            av.as_mut(),
        );
        let mut vl = e.vectors.clone();
        for j in 0..n {
            let l = e.values[j];
            for i in 0..n {
                vl[(i, j)] = vl[(i, j)].mul_real(l);
            }
        }
        let mut diff = av;
        add(-S::ONE, vl.as_ref(), S::ONE, diff.as_mut());
        let err: S::Real = norm(Norm::Fro, diff.as_ref());
        let scale: S::Real = norm(Norm::Fro, a.as_ref());
        assert!(err <= tol * (S::Real::ONE + scale), "||AV - VL|| = {err:?}");
        e
    }

    fn rand_sym(n: usize, seed: u64) -> Matrix<f64> {
        let mut s = seed | 1;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let g = Matrix::from_fn(n, n, |_, _| next());
        Matrix::from_fn(n, n, |i, j| (g[(i, j)] + g[(j, i)]) / 2.0)
    }

    #[test]
    fn eig_random_symmetric() {
        check_eig(&rand_sym(20, 1), 1e-11);
    }

    #[test]
    fn eig_diagonal_exact() {
        let a = Matrix::from_fn(5, 5, |i, j| if i == j { (5 - i) as f64 } else { 0.0 });
        let e = check_eig(&a, 1e-13);
        for (k, &v) in e.values.iter().enumerate() {
            assert!((v - (5 - k) as f64).abs() < 1e-13);
        }
    }

    #[test]
    fn eig_hermitian_complex() {
        let n = 10;
        let mut s = 4u64;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let g = Matrix::from_fn(n, n, |_, _| Complex64::new(next(), next()));
        let a = Matrix::from_fn(n, n, |i, j| (g[(i, j)] + g[(j, i)].conj()).mul_real(0.5));
        let e = check_eig(&a, 1e-11);
        // eigenvalues of a Hermitian matrix are real — returned as reals
        assert_eq!(e.values.len(), n);
    }

    #[test]
    fn eig_trace_preserved() {
        let a = rand_sym(12, 7);
        let e = jacobi_eig(&a).unwrap();
        let trace: f64 = (0..12).map(|i| a[(i, i)]).sum();
        let sum: f64 = e.values.iter().sum();
        assert!((trace - sum).abs() < 1e-10);
    }

    #[test]
    fn eig_psd_gram_matrix_nonnegative() {
        // G^T G is PSD: all eigenvalues >= 0 (up to roundoff)
        let g = rand_sym(8, 9);
        let mut a = Matrix::<f64>::zeros(8, 8);
        gemm(Op::Trans, Op::NoTrans, 1.0, g.as_ref(), g.as_ref(), 0.0, a.as_mut());
        let e = jacobi_eig(&a).unwrap();
        for &v in &e.values {
            assert!(v >= -1e-10);
        }
    }

    #[test]
    fn eig_zero_matrix() {
        let a = Matrix::<f64>::zeros(4, 4);
        let e = jacobi_eig(&a).unwrap();
        assert!(e.values.iter().all(|&v| v == 0.0));
    }
}
