//! Elementary Householder reflectors (LAPACK `larfg` / `larf`).

use polar_blas::nrm2;
use polar_matrix::MatMut;
use polar_scalar::{Real, Scalar};

/// Result of [`larfg`]: the reflector scalar `tau` and the new leading
/// element `beta` (always real for the LAPACK convention).
#[derive(Debug, Clone, Copy)]
pub struct Reflector<S: Scalar> {
    pub tau: S,
    pub beta: S::Real,
}

/// Generate an elementary reflector `H = I - tau * v * v^H` such that
/// `H^H * [alpha; x] = [beta; 0]`, with `v = [1; x / (alpha - beta)]`
/// (the tail overwrites `x`) and `beta` real.
///
/// Mirrors LAPACK `zlarfg`. Returns `tau = 0` (so `H = I`) when the input
/// is already in the target form.
pub fn larfg<S: Scalar>(alpha: S, x: &mut [S]) -> Reflector<S> {
    let xnorm = nrm2(x);
    let alphr = alpha.re();
    let alphi = alpha.im();
    if xnorm == S::Real::ZERO && alphi == S::Real::ZERO {
        return Reflector { tau: S::ZERO, beta: alphr };
    }
    // beta = -sign(alpha_re) * ||[alpha; x]||
    let norm_all = alphr.hypot(alphi).hypot(xnorm);
    let beta = -alphr.sign1() * norm_all;
    // tau = (beta - alpha) / beta
    let tau = (S::from_real(beta) - alpha).mul_real(beta.recip());
    // v tail = x / (alpha - beta)
    let denom = (alpha - S::from_real(beta)).recip();
    for xi in x.iter_mut() {
        *xi *= denom;
    }
    Reflector { tau, beta }
}

/// Apply the reflector `H = I - tau * v * v^H` (with `v[0] = 1` implicit,
/// tail in `v_tail`) from the left to `C`:
///
/// `C := (I - tau * v * v^H) * C`.
///
/// Pass `tau.conj()` to apply `H^H` (as `geqr2` does for complex types).
pub fn larf<S: Scalar>(tau: S, v_tail: &[S], mut c: MatMut<'_, S>) {
    if tau == S::ZERO || c.ncols() == 0 {
        return;
    }
    let m = c.nrows();
    assert_eq!(v_tail.len() + 1, m, "larf: v length mismatch");
    for j in 0..c.ncols() {
        let cj = c.col_mut(j);
        // w = v^H c_j
        let mut w = cj[0];
        for (vi, ci) in v_tail.iter().zip(&cj[1..]) {
            w += vi.conj() * *ci;
        }
        let tw = tau * w;
        cj[0] -= tw;
        for (vi, ci) in v_tail.iter().zip(cj[1..].iter_mut()) {
            *ci -= tw * *vi;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polar_matrix::Matrix;
    use polar_scalar::Complex64;

    #[test]
    fn larfg_zeroes_tail_real() {
        let alpha = 3.0f64;
        let mut x = vec![4.0f64];
        let r = larfg(alpha, &mut x);
        // beta = -sign(3)*5 = -5
        assert!((r.beta + 5.0).abs() < 1e-14);
        // verify H^H [alpha; x] = [beta; 0] by direct application
        let v = [1.0, x[0]];
        let orig = [3.0f64, 4.0];
        // H^H y = y - conj(tau) v (v^H y)
        let vhy: f64 = v[0] * orig[0] + v[1] * orig[1];
        let y0 = orig[0] - r.tau * v[0] * vhy;
        let y1 = orig[1] - r.tau * v[1] * vhy;
        assert!((y0 - r.beta).abs() < 1e-13);
        assert!(y1.abs() < 1e-13);
    }

    #[test]
    fn larfg_identity_when_already_reduced() {
        let mut x: Vec<f64> = vec![0.0, 0.0];
        let r = larfg(7.0, &mut x);
        assert_eq!(r.tau, 0.0);
        assert_eq!(r.beta, 7.0);
    }

    #[test]
    fn larfg_complex_beta_is_real() {
        let alpha = Complex64::new(1.0, 2.0);
        let mut x = vec![Complex64::new(0.0, 1.0), Complex64::new(2.0, 0.0)];
        let r = larfg(alpha, &mut x);
        // beta must carry the full norm: |[alpha; x]| = sqrt(1+4+1+4) = sqrt(10)
        assert!((r.beta.abs() - 10f64.sqrt()).abs() < 1e-13);

        // apply H^H to the original vector and verify reduction
        let orig = [alpha, Complex64::new(0.0, 1.0), Complex64::new(2.0, 0.0)];
        let v = [Complex64::from_real(1.0), x[0], x[1]];
        let mut vhy = Complex64::default();
        for (vi, yi) in v.iter().zip(&orig) {
            vhy += vi.conj() * *yi;
        }
        let tc = r.tau.conj();
        let y0 = orig[0] - v[0] * tc * vhy;
        let y1 = orig[1] - v[1] * tc * vhy;
        let y2 = orig[2] - v[2] * tc * vhy;
        assert!((y0 - Complex64::from_real(r.beta)).abs() < 1e-13, "y0={y0:?} beta={}", r.beta);
        assert!(y1.abs() < 1e-13);
        assert!(y2.abs() < 1e-13);
    }

    #[test]
    fn larf_is_unitary_involution() {
        // H applied twice with the same tau: H*H = I only for real
        // reflectors (tau real, H symmetric); verify H preserves norms.
        let alpha = 2.0f64;
        let mut x = vec![1.0, -2.0, 0.5];
        let r = larfg(alpha, &mut x);
        let c0 = Matrix::from_fn(4, 2, |i, j| (i as f64 + 1.0) * (j as f64 - 0.5));
        let mut c = c0.clone();
        larf(r.tau, &x, c.as_mut());
        // column norms preserved by unitary H
        for j in 0..2 {
            let n0 = nrm2(c0.col(j));
            let n1 = nrm2(c.col(j));
            assert!((n0 - n1).abs() < 1e-12);
        }
    }
}
