//! 1-norm condition estimation (§6.3 of the paper).
//!
//! [`norm1est`] implements Hager's algorithm [Hager 1984] in the LAPACK
//! `lacon` formulation, using *reverse communication* in the form of an
//! [`OneNormOracle`]: the estimator only needs products with `M` and `M^H`,
//! so a single implementation serves any factorization — triangular solves
//! for [`trcondest`], LU solves for [`gecondest`].

use crate::lu::{getrs, LuFactors};
use polar_blas::trsm;
use polar_matrix::{Diag, Matrix, Norm, Op, Side, Uplo};
use polar_scalar::{Real, Scalar};

/// Reverse-communication interface for [`norm1est`]: applies the operator
/// whose 1-norm is being estimated (usually `A^{-1}` via solves).
pub trait OneNormOracle<S: Scalar> {
    /// `x := M x`.
    fn apply(&mut self, x: &mut Matrix<S>);
    /// `x := M^H x`.
    fn apply_conj_trans(&mut self, x: &mut Matrix<S>);
}

/// `sign(y)` with `sign(0) = 1`; for complex scalars, `y/|y|`.
fn unit_sign<S: Scalar>(y: S) -> S {
    let a = y.abs();
    if a == S::Real::ZERO {
        S::ONE
    } else {
        y.mul_real(a.recip())
    }
}

fn one_norm_vec<S: Scalar>(x: &Matrix<S>) -> S::Real {
    x.as_slice().iter().map(|v| v.abs()).sum()
}

/// Estimate `||M||_1` for the operator behind `oracle` (Hager's method,
/// LAPACK `lacon`). Typically a lower bound that is almost always within
/// a small factor of the true norm.
pub fn norm1est<S: Scalar, O: OneNormOracle<S>>(n: usize, oracle: &mut O) -> S::Real {
    if n == 0 {
        return S::Real::ZERO;
    }
    let inv_n = S::Real::from_usize(n).recip();
    let mut x = Matrix::<S>::from_fn(n, 1, |_, _| S::from_real(inv_n));
    oracle.apply(&mut x);
    if n == 1 {
        return x[(0, 0)].abs();
    }
    let mut est = one_norm_vec(&x);
    let mut prev_j = usize::MAX;

    const ITMAX: usize = 5;
    for _ in 0..ITMAX {
        // xi = sign(x)
        let mut xi = Matrix::<S>::from_fn(n, 1, |i, _| unit_sign(x[(i, 0)]));
        oracle.apply_conj_trans(&mut xi);
        // j = argmax |z_i|
        let mut j = 0;
        let mut zmax = S::Real::ZERO;
        for i in 0..n {
            let v = xi[(i, 0)].abs();
            if v > zmax {
                zmax = v;
                j = i;
            }
        }
        if j == prev_j {
            break;
        }
        prev_j = j;
        // next probe: e_j
        x.fill(S::ZERO);
        x[(j, 0)] = S::ONE;
        oracle.apply(&mut x);
        let new_est = one_norm_vec(&x);
        if new_est <= est {
            break;
        }
        est = new_est;
    }

    // Alternating-sign safeguard vector (LAPACK lacon final stage):
    // x_i = (-1)^i (1 + i/(n-1)); est >= 2 ||M x||_1 / (3 n).
    let nm1 = S::Real::from_usize(n - 1);
    let mut alt = Matrix::<S>::from_fn(n, 1, |i, _| {
        let mag = S::Real::ONE + S::Real::from_usize(i) / nm1;
        let sgn = if i % 2 == 0 { S::Real::ONE } else { -S::Real::ONE };
        S::from_real(mag * sgn)
    });
    oracle.apply(&mut alt);
    let three = S::Real::from_f64(3.0);
    let alt_est = S::Real::TWO * one_norm_vec(&alt) / (three * S::Real::from_usize(n));
    est.max(alt_est)
}

/// Oracle for `R^{-1}` with `R` the upper triangle of a packed QR factor.
struct TriInvOracle<'m, S> {
    r: &'m Matrix<S>,
}

impl<S: Scalar> OneNormOracle<S> for TriInvOracle<'_, S> {
    fn apply(&mut self, x: &mut Matrix<S>) {
        trsm(
            Side::Left,
            Uplo::Upper,
            Op::NoTrans,
            Diag::NonUnit,
            S::ONE,
            self.r.as_ref(),
            x.as_mut(),
        );
    }
    fn apply_conj_trans(&mut self, x: &mut Matrix<S>) {
        trsm(
            Side::Left,
            Uplo::Upper,
            Op::ConjTrans,
            Diag::NonUnit,
            S::ONE,
            self.r.as_ref(),
            x.as_mut(),
        );
    }
}

/// Reciprocal 1-norm condition estimate of the upper-triangular `R` stored
/// in (the upper triangle of) `r`:
///
/// `rcond = 1 / (||R||_1 * est(||R^{-1}||_1))`, clamped to `[0, 1]`.
///
/// This is the paper's `trcondest` (Algorithm 1 line 17): in QDWH it runs
/// on the `R` factor of the QR of the scaled input matrix.
pub fn trcondest<S: Scalar>(r: &Matrix<S>) -> S::Real {
    let n = r.nrows().min(r.ncols());
    if n == 0 {
        return S::Real::ONE;
    }
    // exact-singularity fast path: zero diagonal → rcond 0
    for k in 0..n {
        if r[(k, k)].abs() == S::Real::ZERO {
            return S::Real::ZERO;
        }
    }
    let square = r.submatrix_owned(0, 0, n, n);
    let rnorm = polar_blas::norm_triangular(Norm::One, Uplo::Upper, Diag::NonUnit, square.as_ref());
    let mut oracle = TriInvOracle { r: &square };
    let rinv_norm = norm1est(n, &mut oracle);
    let denom = rnorm * rinv_norm;
    if denom <= S::Real::ZERO || !denom.is_finite() {
        return S::Real::ZERO;
    }
    denom.recip().min(S::Real::ONE)
}

/// Estimate the *smallest singular value* of the upper-triangular `R`
/// (stored in the upper triangle of `r`) by power iteration on
/// `R^{-1} R^{-H}`: each step is two triangular solves, and the iteration
/// converges to `1 / sigma_min(R)^2`.
///
/// QDWH uses this as a tight (2-norm) lower-bound seed `l_0`; the 1-norm
/// Hager bound of [`trcondest`] can be pessimistic by a factor of
/// `sqrt(n)`, which distorts the QR/Cholesky iteration split.
pub fn tr_sigma_min_est<S: Scalar>(r: &Matrix<S>) -> S::Real {
    let n = r.nrows().min(r.ncols());
    if n == 0 {
        return S::Real::ZERO;
    }
    for k in 0..n {
        if r[(k, k)].abs() == S::Real::ZERO {
            return S::Real::ZERO;
        }
    }
    let square = r.submatrix_owned(0, 0, n, n);
    // start from the all-ones direction
    let mut x = Matrix::<S>::from_fn(n, 1, |_, _| S::ONE);
    let mut est_prev;
    let mut est = S::Real::ZERO;
    let tol = S::Real::from_f64(0.05);
    for _ in 0..30 {
        // normalize
        let nx = polar_blas::nrm2::<S>(x.col(0));
        if nx == S::Real::ZERO || !nx.is_finite() {
            break;
        }
        let inv = nx.recip();
        for v in x.col_mut(0) {
            *v = v.mul_real(inv);
        }
        // y = R^{-H} x ; x = R^{-1} y  => x = (R^H R)^{-1} x
        trsm(
            Side::Left,
            Uplo::Upper,
            Op::ConjTrans,
            Diag::NonUnit,
            S::ONE,
            square.as_ref(),
            x.as_mut(),
        );
        trsm(
            Side::Left,
            Uplo::Upper,
            Op::NoTrans,
            Diag::NonUnit,
            S::ONE,
            square.as_ref(),
            x.as_mut(),
        );
        let growth = polar_blas::nrm2::<S>(x.col(0));
        if growth == S::Real::ZERO || !growth.is_finite() {
            // R is numerically singular in this direction
            return S::Real::ZERO;
        }
        est_prev = est;
        est = growth.sqrt().recip(); // sigma_min estimate
        if est_prev > S::Real::ZERO && (est - est_prev).abs() <= tol * est {
            break;
        }
    }
    est
}

/// Oracle for `A^{-1}` via LU solves.
struct LuInvOracle<'m, S: Scalar> {
    f: &'m LuFactors<S>,
}

impl<S: Scalar> OneNormOracle<S> for LuInvOracle<'_, S> {
    fn apply(&mut self, x: &mut Matrix<S>) {
        getrs(Op::NoTrans, self.f, x).expect("oracle shapes are square and consistent");
    }
    fn apply_conj_trans(&mut self, x: &mut Matrix<S>) {
        getrs(Op::ConjTrans, self.f, x).expect("oracle shapes are square and consistent");
    }
}

/// Reciprocal 1-norm condition estimate of a general square matrix from
/// its LU factors and its precomputed 1-norm (`gecondest`, LAPACK `gecon`).
pub fn gecondest<S: Scalar>(f: &LuFactors<S>, anorm: S::Real) -> S::Real {
    let n = f.lu.nrows();
    if n == 0 {
        return S::Real::ONE;
    }
    for k in 0..n {
        if f.lu[(k, k)].abs() == S::Real::ZERO {
            return S::Real::ZERO;
        }
    }
    let mut oracle = LuInvOracle { f };
    let ainv_norm = norm1est(n, &mut oracle);
    let denom = anorm * ainv_norm;
    if denom <= S::Real::ZERO || !denom.is_finite() {
        return S::Real::ZERO;
    }
    denom.recip().min(S::Real::ONE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::getrf;
    use polar_blas::norm;
    use polar_scalar::Complex64;

    /// Oracle wrapping an explicit matrix (no inverse): estimates ||M||_1.
    struct DenseOracle {
        m: Matrix<f64>,
    }
    impl OneNormOracle<f64> for DenseOracle {
        fn apply(&mut self, x: &mut Matrix<f64>) {
            let y = x.clone();
            polar_blas::gemm(
                Op::NoTrans,
                Op::NoTrans,
                1.0,
                self.m.as_ref(),
                y.as_ref(),
                0.0,
                x.as_mut(),
            );
        }
        fn apply_conj_trans(&mut self, x: &mut Matrix<f64>) {
            let y = x.clone();
            polar_blas::gemm(
                Op::ConjTrans,
                Op::NoTrans,
                1.0,
                self.m.as_ref(),
                y.as_ref(),
                0.0,
                x.as_mut(),
            );
        }
    }

    #[test]
    fn norm1est_close_to_true_norm() {
        let mut s = 17u64;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for n in [3usize, 10, 37] {
            let m = Matrix::from_fn(n, n, |_, _| next());
            let exact: f64 = norm(Norm::One, m.as_ref());
            let mut oracle = DenseOracle { m };
            let est = norm1est(n, &mut oracle);
            // Hager's estimate is a lower bound, usually within a factor ~3
            assert!(est <= exact * (1.0 + 1e-12), "estimate exceeds the norm");
            assert!(est >= exact / 10.0, "estimate too loose: {est} vs {exact}");
        }
    }

    #[test]
    fn norm1est_exact_on_diagonal() {
        let m = Matrix::from_fn(5, 5, |i, j| if i == j { (i + 1) as f64 } else { 0.0 });
        let mut oracle = DenseOracle { m };
        let est = norm1est(5, &mut oracle);
        assert!((est - 5.0).abs() < 1e-12);
    }

    #[test]
    fn trcondest_identity_is_one() {
        let r = Matrix::<f64>::identity(8, 8);
        let rc = trcondest(&r);
        assert!((rc - 1.0).abs() < 1e-10, "rcond(I) = {rc}");
    }

    #[test]
    fn trcondest_tracks_diagonal_spread() {
        // R = diag(1, 1e-6): cond_1 = 1e6, rcond ≈ 1e-6
        let mut r = Matrix::<f64>::identity(2, 2);
        r[(1, 1)] = 1e-6;
        let rc = trcondest(&r);
        assert!(rc < 1e-5 && rc > 1e-8, "rcond = {rc}");
    }

    #[test]
    fn trcondest_zero_diag_is_singular() {
        let mut r = Matrix::<f64>::identity(3, 3);
        r[(1, 1)] = 0.0;
        assert_eq!(trcondest(&r), 0.0);
    }

    #[test]
    fn gecondest_well_vs_ill() {
        // well conditioned: rcond near 1; ill conditioned: tiny rcond
        let well = Matrix::<f64>::identity(10, 10);
        let anorm_w: f64 = norm(Norm::One, well.as_ref());
        let f = getrf(&well).unwrap();
        let rc_w = gecondest(&f, anorm_w);
        assert!(rc_w > 0.5);

        let mut ill = Matrix::<f64>::identity(10, 10);
        ill[(9, 9)] = 1e-12;
        let anorm_i: f64 = norm(Norm::One, ill.as_ref());
        let fi = getrf(&ill).unwrap();
        let rc_i = gecondest(&fi, anorm_i);
        assert!(rc_i < 1e-10, "rcond = {rc_i}");
    }

    #[test]
    fn sigma_min_est_exact_on_diagonal() {
        let r = Matrix::from_fn(6, 6, |i, j| if i == j { (i + 2) as f64 } else { 0.0 });
        let est = tr_sigma_min_est(&r);
        assert!((est - 2.0).abs() / 2.0 < 0.06, "est = {est}");
    }

    #[test]
    fn sigma_min_est_matches_svd_on_random_triangles() {
        let mut s = 77u64;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for n in [5usize, 12, 25] {
            let r = Matrix::from_fn(n, n, |i, j| {
                if i > j {
                    0.0
                } else if i == j {
                    1.0 + next().abs() * 2.0
                } else {
                    next() * 0.5
                }
            });
            let svd = crate::jacobi_svd(&r).unwrap();
            let true_min = *svd.sigma.last().unwrap();
            let est = tr_sigma_min_est(&r);
            assert!(
                (est - true_min).abs() <= 0.15 * true_min,
                "n={n}: est {est} vs sigma_min {true_min}"
            );
        }
    }

    #[test]
    fn sigma_min_est_singular_is_zero() {
        let mut r = Matrix::<f64>::identity(4, 4);
        r[(2, 2)] = 0.0;
        assert_eq!(tr_sigma_min_est(&r), 0.0);
    }

    #[test]
    fn sigma_min_est_tracks_tiny_values() {
        let mut r = Matrix::<f64>::identity(8, 8);
        r[(7, 7)] = 1e-14;
        let est = tr_sigma_min_est(&r);
        assert!(est > 0.0 && est < 1e-12, "est = {est}");
    }

    #[test]
    fn trcondest_complex() {
        let n = 6;
        let r = Matrix::from_fn(n, n, |i, j| {
            if i > j {
                Complex64::default()
            } else if i == j {
                Complex64::new(1.0 + i as f64, 0.5)
            } else {
                Complex64::new(0.1, -0.2)
            }
        });
        let rc = trcondest(&r);
        assert!(rc > 0.0 && rc <= 1.0);
    }
}
