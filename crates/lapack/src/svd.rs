//! One-sided Jacobi singular value decomposition.
//!
//! Serves two roles in the reproduction:
//! * ground truth / generator support — the test-matrix generator of §7.1
//!   builds `A = U Σ V^H`, and tests validate spectra with this solver;
//! * the **SVD-based polar decomposition baseline** of §3
//!   (`A = U Σ V^H  =>  U_p = U V^H, H = V Σ V^H`), the algorithm QDWH is
//!   compared against in the related-work discussion.

use crate::LapackError;
use polar_blas::{dotc, nrm2};
use polar_matrix::Matrix;
use polar_scalar::{Real, Scalar};

/// Thin SVD `A = U diag(sigma) V^H` with `U: m x n`, `V: n x n`,
/// `sigma` descending and nonnegative.
#[derive(Debug, Clone)]
pub struct SvdDecomposition<S: Scalar> {
    pub u: Matrix<S>,
    pub sigma: Vec<S::Real>,
    pub v: Matrix<S>,
    /// Jacobi sweeps used.
    pub sweeps: usize,
}

/// One-sided Jacobi SVD of `A` (`m >= n` required; transpose beforehand
/// otherwise).
pub fn jacobi_svd<S: Scalar>(a: &Matrix<S>) -> Result<SvdDecomposition<S>, LapackError> {
    let m = a.nrows();
    let n = a.ncols();
    if m < n {
        return Err(LapackError::Shape("jacobi_svd requires m >= n"));
    }
    let mut work = a.clone();
    let mut v = Matrix::<S>::identity(n, n);
    let eps = S::Real::EPSILON;
    let tol = eps * S::Real::from_usize(m.max(1)).sqrt();
    const MAX_SWEEPS: usize = 30;

    let mut sweeps = 0;
    for sweep in 0..MAX_SWEEPS {
        sweeps = sweep + 1;
        let mut rotated = false;
        for p in 0..n {
            for q in p + 1..n {
                // 2x2 Gram block of columns p, q
                let app = nrm2::<S>(work.col(p));
                let aqq = nrm2::<S>(work.col(q));
                let apq = dotc(work.col(p), work.col(q));
                let abs_apq = apq.abs();
                if abs_apq <= tol * app * aqq {
                    continue;
                }
                rotated = true;
                // conjugate phase of the coupling: with b = |b| e^{i phi},
                // scaling column q by e^{-i phi} makes the Gram block real,
                // after which the classical real Jacobi angle applies.
                let beta = apq.conj().mul_real(abs_apq.recip()); // e^{-i phi}
                let a_sq = app * app;
                let c_sq = aqq * aqq;
                let zeta = (c_sq - a_sq) / (S::Real::TWO * abs_apq);
                let t = zeta.sign1() / (zeta.abs() + (S::Real::ONE + zeta * zeta).sqrt());
                let cs = (S::Real::ONE + t * t).sqrt().recip();
                let sn = t * cs;

                // columns [p q] *= J, J = [[cs, sn], [-e^{i phi} sn, e^{i phi} cs]]
                rotate_columns(&mut work, p, q, cs, sn, beta);
                rotate_columns(&mut v, p, q, cs, sn, beta);
            }
        }
        if !rotated {
            break;
        }
        if sweep + 1 == MAX_SWEEPS {
            return Err(LapackError::NoConvergence { sweeps: MAX_SWEEPS });
        }
    }

    // extract sigma and U
    let mut order: Vec<usize> = (0..n).collect();
    let sig_raw: Vec<S::Real> = (0..n).map(|j| nrm2::<S>(work.col(j))).collect();
    order.sort_by(|&i, &j| {
        sig_raw[j].partial_cmp(&sig_raw[i]).unwrap_or(core::cmp::Ordering::Equal)
    });

    let mut u = Matrix::<S>::zeros(m, n);
    let mut sigma = Vec::with_capacity(n);
    let mut v_sorted = Matrix::<S>::zeros(n, n);
    let null_tol = eps
        * sig_raw.iter().cloned().fold(S::Real::ZERO, S::Real::max)
        * S::Real::from_usize(m.max(1));
    let mut null_cols = Vec::new();
    for (newj, &oldj) in order.iter().enumerate() {
        let s = sig_raw[oldj];
        sigma.push(s);
        if s > null_tol && s > S::Real::ZERO {
            let inv = s.recip();
            for i in 0..m {
                u[(i, newj)] = work[(i, oldj)].mul_real(inv);
            }
        } else {
            null_cols.push(newj);
        }
        for i in 0..n {
            v_sorted[(i, newj)] = v[(i, oldj)];
        }
    }
    // Complete U's null columns to an orthonormal set by Gram-Schmidt
    // against the already-set columns (sigma = 0 annihilates them in the
    // product, but callers rely on U^H U = I).
    if !null_cols.is_empty() {
        let mut filled = vec![true; n];
        for &j in &null_cols {
            filled[j] = false;
        }
        let mut candidate = 0usize;
        for &jnull in &null_cols {
            'candidates: while candidate < m {
                // start from e_candidate, orthogonalize twice (CGS2)
                // against every already-filled column
                let mut col = vec![S::ZERO; m];
                col[candidate] = S::ONE;
                candidate += 1;
                for _ in 0..2 {
                    for j2 in 0..n {
                        if !filled[j2] {
                            continue;
                        }
                        let proj = dotc(u.col(j2), &col);
                        for i in 0..m {
                            col[i] -= u[(i, j2)] * proj;
                        }
                    }
                }
                let norm_c = nrm2::<S>(&col);
                if norm_c > S::Real::from_f64(0.1) {
                    let inv = norm_c.recip();
                    for i in 0..m {
                        u[(i, jnull)] = col[i].mul_real(inv);
                    }
                    filled[jnull] = true;
                    break 'candidates;
                }
            }
        }
    }

    Ok(SvdDecomposition { u, sigma, v: v_sorted, sweeps })
}

/// Apply the 2x2 unitary `J = [[cs, sn], [-beta sn, beta cs]]` to columns
/// `(p, q)` of `a` from the right.
fn rotate_columns<S: Scalar>(
    a: &mut Matrix<S>,
    p: usize,
    q: usize,
    cs: S::Real,
    sn: S::Real,
    beta: S,
) {
    let m = a.nrows();
    for i in 0..m {
        let xp = a[(i, p)];
        let xq = a[(i, q)];
        let bq = beta * xq;
        a[(i, p)] = xp.mul_real(cs) - bq.mul_real(sn);
        a[(i, q)] = xp.mul_real(sn) + bq.mul_real(cs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polar_blas::{add, gemm, norm};
    use polar_matrix::{Norm, Op};
    use polar_scalar::Complex64;

    fn rand_mat(m: usize, n: usize, seed: u64) -> Matrix<f64> {
        let mut s = seed | 1;
        Matrix::from_fn(m, n, |_, _| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    fn check_svd<S: Scalar>(a: &Matrix<S>, tol: S::Real) {
        let (m, n) = (a.nrows(), a.ncols());
        let svd = jacobi_svd(a).expect("svd converged");
        // sigma descending, nonnegative
        for w in svd.sigma.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert!(svd.sigma.iter().all(|&s| s >= S::Real::ZERO));
        // U^H U = I
        let mut uhu = Matrix::<S>::zeros(n, n);
        gemm(
            Op::ConjTrans,
            Op::NoTrans,
            S::ONE,
            svd.u.as_ref(),
            svd.u.as_ref(),
            S::ZERO,
            uhu.as_mut(),
        );
        for j in 0..n {
            for i in 0..n {
                let expect = if i == j { S::ONE } else { S::ZERO };
                assert!((uhu[(i, j)] - expect).abs() <= tol, "UhU({i},{j})");
            }
        }
        // V^H V = I
        let mut vhv = Matrix::<S>::zeros(n, n);
        gemm(
            Op::ConjTrans,
            Op::NoTrans,
            S::ONE,
            svd.v.as_ref(),
            svd.v.as_ref(),
            S::ZERO,
            vhv.as_mut(),
        );
        for j in 0..n {
            for i in 0..n {
                let expect = if i == j { S::ONE } else { S::ZERO };
                assert!((vhv[(i, j)] - expect).abs() <= tol, "VhV({i},{j})");
            }
        }
        // A = U Sigma V^H
        let mut us = svd.u.clone();
        for j in 0..n {
            let s = svd.sigma[j];
            for i in 0..m {
                us[(i, j)] = us[(i, j)].mul_real(s);
            }
        }
        let mut recon = Matrix::<S>::zeros(m, n);
        gemm(
            Op::NoTrans,
            Op::ConjTrans,
            S::ONE,
            us.as_ref(),
            svd.v.as_ref(),
            S::ZERO,
            recon.as_mut(),
        );
        let mut diff = recon;
        add(-S::ONE, a.as_ref(), S::ONE, diff.as_mut());
        let err: S::Real = norm(Norm::Fro, diff.as_ref());
        let scale: S::Real = norm(Norm::Fro, a.as_ref());
        assert!(err <= tol * (S::Real::ONE + scale), "||USV^H - A|| = {err:?}");
    }

    #[test]
    fn svd_square_real() {
        check_svd(&rand_mat(15, 15, 1), 1e-11);
    }

    #[test]
    fn svd_tall_real() {
        check_svd(&rand_mat(40, 12, 2), 1e-11);
    }

    #[test]
    fn svd_complex() {
        let mut s = 9u64;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let a = Matrix::from_fn(20, 8, |_, _| Complex64::new(next(), next()));
        check_svd(&a, 1e-11);
    }

    #[test]
    fn svd_known_singular_values() {
        // diag(3, 2, 1) embedded in rectangular
        let a = Matrix::from_fn(5, 3, |i, j| if i == j { (3 - j) as f64 } else { 0.0 });
        let svd = jacobi_svd(&a).unwrap();
        assert!((svd.sigma[0] - 3.0).abs() < 1e-13);
        assert!((svd.sigma[1] - 2.0).abs() < 1e-13);
        assert!((svd.sigma[2] - 1.0).abs() < 1e-13);
    }

    #[test]
    fn svd_rank_deficient() {
        // rank-1 matrix: exactly one nonzero singular value
        let a = Matrix::from_fn(6, 4, |i, j| ((i + 1) * (j + 1)) as f64);
        let svd = jacobi_svd(&a).unwrap();
        assert!(svd.sigma[0] > 1.0);
        for &s in &svd.sigma[1..] {
            assert!(s < 1e-10 * svd.sigma[0]);
        }
        check_svd(&a, 1e-10);
    }

    #[test]
    fn svd_rejects_wide() {
        let a = Matrix::<f64>::zeros(3, 5);
        assert!(matches!(jacobi_svd(&a), Err(LapackError::Shape(_))));
    }

    #[test]
    fn svd_zero_matrix() {
        let a = Matrix::<f64>::zeros(4, 3);
        let svd = jacobi_svd(&a).unwrap();
        assert!(svd.sigma.iter().all(|&s| s == 0.0));
    }
}
