//! Triangular matrix inversion (LAPACK `trtri`, lower case).
//!
//! The Cholesky-family QDWH iteration applies `Z^{-1} = L^{-H} L^{-1}`.
//! The scalar driver does this with two right-side `trsm` sweeps, which
//! at serving sizes (`n <= 128`) bottom out in the per-column
//! substitution kernel. Inverting `L` explicitly instead turns the whole
//! application into GEMMs: `T = L^{-1}` costs `n^3/3` flops of which
//! ~2/3 run through the packed microkernels here, and the two solves
//! become `(X T^H) T` — two batch-friendly GEMMs. `Z` is uniformly
//! well-conditioned on the Cholesky branch (`kappa(Z) <= 1 + c` with
//! `c <= 100` by the QR/Cholesky switch), so the explicit inverse is as
//! accurate as the solves.

use crate::LapackError;
use polar_blas::gemm;
use polar_matrix::{MatMut, MatRef, Op};
use polar_scalar::Scalar;

/// Diagonal-block order at or below which the unblocked substitution
/// kernel runs directly; above it the inversion recurses so the
/// off-diagonal block is two gemms.
const TRTRI_BASE: usize = 16;

/// Invert a lower-triangular matrix out of place: `t := l^{-1}`.
///
/// Only the lower triangle of `l` is read — a fresh `potrf` factor can be
/// passed directly, whatever its strict upper triangle still holds. On
/// success `t` holds the lower-triangular inverse with its strict upper
/// triangle zeroed (so `t` is safe to hand to a full GEMM).
///
/// Errors with [`LapackError::SingularPivot`] on an exactly-zero or
/// non-finite diagonal entry.
pub fn trtri_lower<S: Scalar>(l: MatRef<'_, S>, mut t: MatMut<'_, S>) -> Result<(), LapackError> {
    let n = l.nrows();
    assert_eq!(l.ncols(), n, "trtri_lower: square matrices only");
    assert_eq!((t.nrows(), t.ncols()), (n, n), "trtri_lower: output shape mismatch");
    let _obs = polar_obs::kernel_span(
        polar_obs::KernelClass::Trsm,
        "trtri",
        polar_blas::flops::type_factor(S::IS_COMPLEX) * (n as f64).powi(3) / 3.0,
        [n, n, 0],
    );
    // zero the strict upper triangle once; the recursion fills the lower
    for j in 1..n {
        t.col_mut(j)[..j].fill(S::ZERO);
    }
    trtri_rec(l, t, 0)
}

fn trtri_rec<S: Scalar>(
    l: MatRef<'_, S>,
    mut t: MatMut<'_, S>,
    offset: usize,
) -> Result<(), LapackError> {
    let n = l.nrows();
    if n <= TRTRI_BASE {
        // unblocked: solve L t_j = e_j by forward substitution. Reads l
        // and already-written rows of t only, so l and t may not alias
        // (they never do: t is the caller's separate output slab).
        for j in 0..n {
            let djj = l.at(j, j);
            if djj == S::ZERO || !djj.is_finite() {
                return Err(LapackError::SingularPivot(offset + j));
            }
            let tj = t.col_mut(j);
            tj[j] = S::ONE / djj;
            for i in j + 1..n {
                let dii = l.at(i, i);
                if dii == S::ZERO || !dii.is_finite() {
                    return Err(LapackError::SingularPivot(offset + i));
                }
                let mut s = S::ZERO;
                for (p, &tjp) in tj.iter().enumerate().take(i).skip(j) {
                    s += l.at(i, p) * tjp;
                }
                tj[i] = -s / dii;
            }
        }
        return Ok(());
    }

    // L = [L11 0; L21 L22]  =>  L^{-1} = [T11 0; -T22 L21 T11 T22]
    let h = n / 2;
    let l11 = l.submatrix(0, 0, h, h);
    let l21 = l.submatrix(h, 0, n - h, h);
    let l22 = l.submatrix(h, h, n - h, n - h);
    {
        let t11 = t.rb().submatrix(0, 0, h, h);
        trtri_rec(l11, t11, offset)?;
    }
    {
        let t22 = t.rb().submatrix(h, h, n - h, n - h);
        trtri_rec(l22, t22, offset + h)?;
    }
    // T21 = -T22 (L21 T11): both factors are ready, and the second
    // product reads T21's own freshly written value through a reborrow
    // barrier — stage it as T21 := L21 T11, then T21 := -T22 T21 via a
    // temporary copy of the staged block (blocks are small; the copy is
    // O(n^2/4) against the O(n^3) gemms).
    {
        let (t11_ro, t21) = {
            let (left, _right) = t.rb().split_at_col(h);
            left.split_at_row(h)
        };
        gemm(Op::NoTrans, Op::NoTrans, S::ONE, l21, t11_ro.as_ref(), S::ZERO, t21);
    }
    let staged = t.rb().submatrix(h, 0, n - h, h).as_ref().to_owned();
    let t22_ro = t.rb().submatrix(h, h, n - h, n - h).as_ref().to_owned();
    let t21 = t.rb().submatrix(h, 0, n - h, h);
    gemm(Op::NoTrans, Op::NoTrans, -S::ONE, t22_ro.as_ref(), staged.as_ref(), S::ZERO, t21);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use polar_blas::norm;
    use polar_matrix::{Matrix, Norm};
    use polar_scalar::{Complex64, Real};

    fn rand_lower<S: Scalar>(n: usize, seed: u64) -> Matrix<S> {
        let mut s = seed | 1;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        Matrix::from_fn(n, n, |i, j| {
            if i < j {
                // strict upper garbage: trtri must never read it
                S::from_f64(1e30)
            } else if i == j {
                S::from_parts(S::Real::from_f64(2.0 + next().abs()), S::Real::ZERO)
            } else {
                // keep off-diagonals small relative to the diagonal so the
                // inverse stays well-conditioned at every test size
                S::from_parts(S::Real::from_f64(next() * 0.3), S::Real::from_f64(next() * 0.15))
            }
        })
    }

    fn check_inverse<S: Scalar>(n: usize, tol: f64) {
        let l = rand_lower::<S>(n, 7 + n as u64);
        let mut t = Matrix::<S>::zeros(n, n);
        trtri_lower(l.as_ref(), t.as_mut()).unwrap();
        // strict upper of T is exactly zero
        for j in 1..n {
            for i in 0..j {
                assert_eq!(t[(i, j)], S::ZERO, "upper ({i},{j}) not zeroed");
            }
        }
        // L_lower * T == I
        let l_clean = Matrix::from_fn(n, n, |i, j| if i >= j { l[(i, j)] } else { S::ZERO });
        let mut prod = Matrix::<S>::zeros(n, n);
        gemm(
            Op::NoTrans,
            Op::NoTrans,
            S::ONE,
            l_clean.as_ref(),
            t.as_ref(),
            S::ZERO,
            prod.as_mut(),
        );
        for j in 0..n {
            for i in 0..n {
                let want = if i == j { S::ONE } else { S::ZERO };
                let d = (prod[(i, j)] - want).abs().to_f64();
                assert!(d <= tol, "L T deviates at ({i},{j}): {d} (n={n})");
            }
        }
    }

    #[test]
    fn inverts_real_and_complex_across_base_boundary() {
        // below, at, and well above the recursion base
        for n in [1, 5, 16, 17, 48, 100] {
            check_inverse::<f64>(n, 1e-12);
        }
        check_inverse::<Complex64>(33, 1e-12);
    }

    #[test]
    fn singular_diagonal_reports_pivot() {
        let mut l = rand_lower::<f64>(20, 3);
        l[(17, 17)] = 0.0;
        let mut t = Matrix::<f64>::zeros(20, 20);
        match trtri_lower(l.as_ref(), t.as_mut()) {
            Err(LapackError::SingularPivot(17)) => {}
            other => panic!("expected SingularPivot(17), got {other:?}"),
        }
    }

    #[test]
    fn matches_trsm_solution() {
        // T must agree with trsm applied to the identity
        let n = 40;
        let l = rand_lower::<f64>(n, 11);
        let mut t = Matrix::<f64>::zeros(n, n);
        trtri_lower(l.as_ref(), t.as_mut()).unwrap();
        let mut t_ref = Matrix::<f64>::identity(n, n);
        let l_clean = Matrix::from_fn(n, n, |i, j| if i >= j { l[(i, j)] } else { 0.0 });
        polar_blas::trsm(
            polar_matrix::Side::Left,
            polar_matrix::Uplo::Lower,
            Op::NoTrans,
            polar_matrix::Diag::NonUnit,
            1.0,
            l_clean.as_ref(),
            t_ref.as_mut(),
        );
        let mut diff = t.clone();
        polar_blas::add(-1.0, t_ref.as_ref(), 1.0, diff.as_mut());
        let err: f64 = norm(Norm::Fro, diff.as_ref());
        let scale: f64 = norm(Norm::Fro, t_ref.as_ref());
        assert!(err <= 1e-12 * scale.max(1.0), "trtri vs trsm drift {err:e}");
    }
}
