//! PLASMA/SLATE-style tile QR kernels: `geqrt`, `tsqrt`, `tsmqr`.
//!
//! SLATE's distributed `geqrf` factors a tiled matrix with exactly these
//! four operations per panel step `k`:
//!
//! 1. [`geqrt`] — QR of the diagonal tile, producing the compact `T`
//!    factor alongside the packed reflectors;
//! 2. [`unmqr_tile`] — apply the diagonal tile's `Q^H` to the tiles right
//!    of it;
//! 3. [`tsqrt`] — "triangle-on-square" QR: annihilate a sub-diagonal tile
//!    against the current `R` tile;
//! 4. [`tsmqr`] — apply a `tsqrt` reflector block to a row pair of
//!    trailing tiles.
//!
//! The structured reflectors of `tsqrt` have the form `V = [I; V2]`
//! (identity over the `R` tile, dense `V2` over the annihilated tile),
//! which is what makes the update `O(nb^3)` per tile pair. These kernels
//! are the numerical counterpart of the symbolic task DAG in `polar-sim`
//! and power the communication-metered distributed QDWH in `polar-qdwh`.

use crate::householder::larfg;
use crate::qr::{extract_v, geqr2, geqr2_scratch, larfb_left, larft};
use polar_blas::{dotc, gemm, trmm};
use polar_matrix::{Diag, Matrix, Op, Side, Uplo};
use polar_scalar::Scalar;

/// QR of a single tile (PLASMA `GEQRT`).
///
/// On exit `a` holds `R` in its upper triangle and the reflector tails
/// below the diagonal; the returned `T` (`k x k`, `k = min(m, n)`) is the
/// compact WY factor with `Q = I - V T V^H`.
pub fn geqrt<S: Scalar>(a: &mut Matrix<S>) -> Matrix<S> {
    let m = a.nrows();
    let n = a.ncols();
    let k = m.min(n);
    let mut tau = vec![S::ZERO; k];
    geqr2(a.view_mut(0, 0, m, n), &mut tau);
    let v = extract_v(a.view(0, 0, m, k));
    larft(v.as_ref(), &tau)
}

/// Apply `Q` or `Q^H` from a [`geqrt`] factor to a tile `c` with the same
/// row count (PLASMA `UNMQR`): `C := op(Q) C`.
pub fn unmqr_tile<S: Scalar>(op: Op, v_packed: &Matrix<S>, t: &Matrix<S>, c: &mut Matrix<S>) {
    let k = t.nrows();
    assert_eq!(v_packed.nrows(), c.nrows(), "unmqr_tile: row mismatch");
    let v = extract_v(v_packed.view(0, 0, v_packed.nrows(), k));
    larfb_left(op, v.as_ref(), t.as_ref(), c.as_mut());
}

/// Triangle-on-square QR (PLASMA `TSQRT`, LAPACK `tpqrt` with `L = 0`):
/// factor the stacked `[R; B]` where `R` is the `nb x nb` upper triangle
/// held in the top tile `r` and `B` is a dense `m2 x nb` tile.
///
/// On exit the triangle of `r` holds the updated `R`, `b` holds the dense
/// part `V2` of the structured reflectors `V = [I; V2]`, and the returned
/// `T` is the compact WY factor.
pub fn tsqrt<S: Scalar>(r: &mut Matrix<S>, b: &mut Matrix<S>) -> Matrix<S> {
    let nb = r.ncols().min(r.nrows());
    assert_eq!(b.ncols(), r.ncols(), "tsqrt: column mismatch");
    let m2 = b.nrows();
    let mut tau = vec![S::ZERO; nb];
    let mut t = Matrix::<S>::zeros(nb, nb);

    for j in 0..nb {
        // reflector annihilating B[:, j] against R[j, j]; the top part of
        // v_j is e_j (R rows j+1.. are untouched since v is zero there)
        let alpha = r[(j, j)];
        let refl = {
            let col = b.col_mut(j);
            larfg(alpha, col)
        };
        r[(j, j)] = S::from_real(refl.beta);
        tau[j] = refl.tau;

        if refl.tau != S::ZERO {
            // apply H^H = I - conj(tau) v v^H to remaining columns:
            // w = R[j, k] + V2_j^H B[:, k]
            let tc = refl.tau.conj();
            for k in j + 1..nb {
                let mut w = r[(j, k)];
                w += dotc(b.col(j), b.col(k));
                let f = tc * w;
                r[(j, k)] -= f;
                // B[:, k] -= f * V2_j (split borrows via raw indexing)
                for i in 0..m2 {
                    let vij = b[(i, j)];
                    b[(i, k)] -= f * vij;
                }
            }
        }

        // T column j: T(0..j, j) = -tau_j * T(0..j,0..j) * (V2^H v2_j)
        // (the identity top parts of V are orthogonal between columns)
        if j > 0 {
            let mut w = vec![S::ZERO; j];
            for (l, wl) in w.iter_mut().enumerate() {
                *wl = dotc(b.col(l), b.col(j));
            }
            for rrow in 0..j {
                let mut acc = S::ZERO;
                for l in rrow..j {
                    acc += t[(rrow, l)] * w[l];
                }
                t[(rrow, j)] = -tau[j] * acc;
            }
        }
        t[(j, j)] = tau[j];
    }
    t
}

/// Apply a [`tsqrt`] reflector block to a tile row pair (PLASMA `TSMQR`):
///
/// ```text
/// [A1]        [A1]
/// [A2] := op(Q) [A2],   Q = I - [I; V2] T [I; V2]^H
/// ```
///
/// `a1` is the `nb x n` tile in the `R` row, `a2` the `m2 x n` tile in the
/// annihilated row, `v2` the dense reflector part from `tsqrt`.
pub fn tsmqr<S: Scalar>(
    op: Op,
    v2: &Matrix<S>,
    t: &Matrix<S>,
    a1: &mut Matrix<S>,
    a2: &mut Matrix<S>,
) {
    let nb = t.nrows();
    let n = a1.ncols();
    assert_eq!(a2.ncols(), n, "tsmqr: column mismatch");
    assert_eq!(v2.nrows(), a2.nrows(), "tsmqr: V2/A2 row mismatch");
    assert_eq!(v2.ncols(), nb, "tsmqr: V2/T mismatch");
    assert!(a1.nrows() >= nb, "tsmqr: A1 too short");

    // W = A1[0..nb, :] + V2^H A2
    let mut w = a1.submatrix_owned(0, 0, nb, n);
    gemm(Op::ConjTrans, Op::NoTrans, S::ONE, v2.as_ref(), a2.as_ref(), S::ONE, w.as_mut());
    // W := op(T) W  (ConjTrans applies Q^H)
    let t_op = if op == Op::NoTrans { Op::NoTrans } else { Op::ConjTrans };
    trmm(Side::Left, Uplo::Upper, t_op, Diag::NonUnit, S::ONE, t.as_ref(), w.as_mut());
    // A1 -= W ; A2 -= V2 W
    for j in 0..n {
        for i in 0..nb {
            a1[(i, j)] -= w[(i, j)];
        }
    }
    gemm(Op::NoTrans, Op::NoTrans, -S::ONE, v2.as_ref(), w.as_ref(), S::ONE, a2.as_mut());
}

/// Per-panel compact `T` factors of a blocked tile factorization, PLASMA's
/// `ib x nb` T-tile layout: block `b` of width `jb <= ib` stores its upper
/// triangular `T_b` in `t[0..jb, b*ib..b*ib+jb]`.
///
/// Compared to the single full `T` of [`geqrt`]/[`tsqrt`], the per-panel
/// representation keeps the scalar (non-level-3) work proportional to `ib`
/// rather than `nb`: applying the factor block-by-block turns everything
/// outside the `ib`-wide panels into `gemm`/`trmm`.
#[derive(Debug, Clone)]
pub struct TileT<S: Scalar> {
    /// `ib x k` matrix of stacked per-panel `T` blocks.
    pub t: Matrix<S>,
    /// Inner blocking factor the tile was factored with.
    pub ib: usize,
}

impl<S: Scalar> TileT<S> {
    /// Zero-initialized storage for `k` reflectors with inner blocking
    /// `ib`, ready for [`geqrt_blocked_into`] / [`tsqrt_blocked_into`].
    /// Preallocating the whole T store of a factorization as a slab keeps
    /// `malloc` out of the task bodies (and off the executor's hot path).
    pub fn new(ib: usize, k: usize) -> Self {
        let ib = ib.max(1);
        Self { t: Matrix::zeros(ib, k), ib }
    }

    /// Number of reflectors covered.
    pub fn k(&self) -> usize {
        self.t.ncols()
    }

    fn block_range(&self, b: usize) -> (usize, usize) {
        let j = b * self.ib;
        (j, self.ib.min(self.k() - j))
    }

    fn nblocks(&self) -> usize {
        self.k().div_ceil(self.ib)
    }
}

/// Blocked [`geqrt`] (PLASMA `GEQRT` with inner blocking `ib`): QR of a
/// single tile where only `ib`-wide panels run scalar reflector code and
/// every trailing update is a level-3 `larfb`.
///
/// The packed reflector/R output in `a` is bit-identical to
/// [`crate::geqrf_blocked`] with the same `ib` (same panel code path).
pub fn geqrt_blocked<S: Scalar>(a: &mut Matrix<S>, ib: usize) -> TileT<S> {
    let mut tt = TileT::new(ib, a.nrows().min(a.ncols()));
    geqrt_blocked_into(a, &mut tt);
    tt
}

/// [`geqrt_blocked`] writing into preallocated `T` storage (see
/// [`TileT::new`]); `tt` supplies the inner blocking factor.
pub fn geqrt_blocked_into<S: Scalar>(a: &mut Matrix<S>, tt: &mut TileT<S>) {
    let m = a.nrows();
    let n = a.ncols();
    let k = m.min(n);
    let ib = tt.ib;
    assert_eq!(tt.k(), k, "geqrt_blocked_into: T storage sized for a different tile");
    tt.t.fill(S::ZERO);
    let mut tau = vec![S::ZERO; k];
    let mut scratch = Vec::with_capacity(m);
    let mut j = 0;
    while j < k {
        let jb = ib.min(k - j);
        geqr2_scratch(a.view_mut(j, j, m - j, jb), &mut tau[j..j + jb], &mut scratch);
        let v = extract_v(a.view(j, j, m - j, jb));
        let t = larft(v.as_ref(), &tau[j..j + jb]);
        if j + jb < n {
            let trailing = a.view_mut(j, j + jb, m - j, n - j - jb);
            larfb_left(Op::ConjTrans, v.as_ref(), t.as_ref(), trailing);
        }
        for c in 0..jb {
            for r in 0..=c {
                tt.t[(r, j + c)] = t[(r, c)];
            }
        }
        j += jb;
    }
}

/// Apply `op(Q)` from a [`geqrt_blocked`] factor to a tile `c` (PLASMA
/// `UNMQR` with inner blocking): `C := op(Q) C`, block reflectors applied
/// per `ib`-panel.
pub fn unmqr_tile_blocked<S: Scalar>(
    op: Op,
    v_packed: &Matrix<S>,
    tt: &TileT<S>,
    c: &mut Matrix<S>,
) {
    let m = v_packed.nrows();
    assert_eq!(m, c.nrows(), "unmqr_tile_blocked: row mismatch");
    let nblocks = tt.nblocks();
    let order: Box<dyn Iterator<Item = usize>> = match op {
        Op::NoTrans => Box::new((0..nblocks).rev()),
        _ => Box::new(0..nblocks),
    };
    for b in order {
        let (j, jb) = tt.block_range(b);
        let v = extract_v(v_packed.view(j, j, m - j, jb));
        let t = tt.t.view(0, j, jb, jb);
        let csub = c.view_mut(j, 0, m - j, c.ncols());
        larfb_left(op, v.as_ref(), t, csub);
    }
}

/// Blocked [`tsqrt`] (PLASMA `TSQRT` with inner blocking `ib`): factor the
/// stacked `[R; B]` so that scalar reflector generation touches only the
/// current `ib`-wide panel; the trailing columns of both `R` and `B` are
/// updated with the panel's compact block reflector through `gemm`/`trmm`.
pub fn tsqrt_blocked<S: Scalar>(r: &mut Matrix<S>, b: &mut Matrix<S>, ib: usize) -> TileT<S> {
    let mut tt = TileT::new(ib, r.ncols().min(r.nrows()));
    tsqrt_blocked_into(r, b, &mut tt);
    tt
}

/// [`tsqrt_blocked`] writing into preallocated `T` storage (see
/// [`TileT::new`]); `tt` supplies the inner blocking factor.
pub fn tsqrt_blocked_into<S: Scalar>(r: &mut Matrix<S>, b: &mut Matrix<S>, tt_out: &mut TileT<S>) {
    let kb = r.ncols().min(r.nrows());
    let ncols = r.ncols();
    assert_eq!(b.ncols(), ncols, "tsqrt_blocked: column mismatch");
    let m2 = b.nrows();
    let ib = tt_out.ib;
    assert_eq!(tt_out.k(), kb, "tsqrt_blocked_into: T storage sized for a different tile");
    tt_out.t.fill(S::ZERO);
    let mut tau = vec![S::ZERO; kb];
    let tt = &mut tt_out.t;

    let mut j = 0;
    while j < kb {
        let jb = ib.min(kb - j);
        // --- panel: scalar factorization of columns j..j+jb -------------
        for c in j..j + jb {
            let alpha = r[(c, c)];
            let refl = {
                let col = b.col_mut(c);
                larfg(alpha, col)
            };
            r[(c, c)] = S::from_real(refl.beta);
            tau[c] = refl.tau;
            if refl.tau != S::ZERO {
                // apply H^H within the panel only
                let tc = refl.tau.conj();
                for kcol in c + 1..j + jb {
                    let mut w = r[(c, kcol)];
                    w += dotc(b.col(c), b.col(kcol));
                    let f = tc * w;
                    r[(c, kcol)] -= f;
                    for i in 0..m2 {
                        let vic = b[(i, c)];
                        b[(i, kcol)] -= f * vic;
                    }
                }
            }
            // panel-local T column: the identity tops of V are orthogonal
            // between columns, so V_l^H v_c = V2_l^H v2_c
            if c > j {
                let mut w = vec![S::ZERO; c - j];
                for (l, wl) in w.iter_mut().enumerate() {
                    *wl = dotc(b.col(j + l), b.col(c));
                }
                for row in 0..c - j {
                    let mut acc = S::ZERO;
                    for l in row..c - j {
                        acc += tt[(row, j + l)] * w[l];
                    }
                    tt[(row, c)] = -tau[c] * acc;
                }
            }
            tt[(c - j, c)] = tau[c];
        }
        // --- blocked trailing update: C := (I - V T^H V^H) C ------------
        // with V = [e_j..e_{j+jb}; V2_panel] over [R; B] columns j+jb..
        if j + jb < ncols {
            let rest = ncols - (j + jb);
            let (pan, mut btrail) = b.as_mut().split_at_col(j + jb);
            let v2p = pan.as_ref().submatrix(0, j, m2, jb);
            // W = R[j..j+jb, rest] + V2p^H B[:, rest]
            let mut w = r.submatrix_owned(j, j + jb, jb, rest);
            gemm(Op::ConjTrans, Op::NoTrans, S::ONE, v2p, btrail.as_ref(), S::ONE, w.as_mut());
            trmm(
                Side::Left,
                Uplo::Upper,
                Op::ConjTrans,
                Diag::NonUnit,
                S::ONE,
                tt.view(0, j, jb, jb),
                w.as_mut(),
            );
            for col in 0..rest {
                for row in 0..jb {
                    r[(j + row, j + jb + col)] -= w[(row, col)];
                }
            }
            gemm(Op::NoTrans, Op::NoTrans, -S::ONE, v2p, w.as_ref(), S::ONE, btrail.rb());
        }
        j += jb;
    }
}

/// Apply a [`tsqrt_blocked`] reflector block to a tile row pair (PLASMA
/// `TSMQR` with inner blocking): per `ib`-panel `W = A1_panel + V2_b^H A2;
/// W := op(T_b) W; A1_panel -= W; A2 -= V2_b W` — all level-3.
pub fn tsmqr_blocked<S: Scalar>(
    op: Op,
    v2: &Matrix<S>,
    tt: &TileT<S>,
    a1: &mut Matrix<S>,
    a2: &mut Matrix<S>,
) {
    let kb = tt.k();
    let n = a1.ncols();
    let m2 = a2.nrows();
    assert_eq!(a2.ncols(), n, "tsmqr_blocked: column mismatch");
    assert_eq!(v2.nrows(), m2, "tsmqr_blocked: V2/A2 row mismatch");
    assert_eq!(v2.ncols(), kb, "tsmqr_blocked: V2/T mismatch");
    assert!(a1.nrows() >= kb, "tsmqr_blocked: A1 too short");
    let nblocks = tt.nblocks();
    // Q = Q_0 Q_1 ... Q_last (panel order): Q^H applies panels forward,
    // Q applies them in reverse.
    let order: Box<dyn Iterator<Item = usize>> = match op {
        Op::NoTrans => Box::new((0..nblocks).rev()),
        _ => Box::new(0..nblocks),
    };
    let t_op = if op == Op::NoTrans { Op::NoTrans } else { Op::ConjTrans };
    // one W scratch for the whole call, reused across ib-panels (the
    // per-panel `submatrix_owned` allocations used to dominate the task
    // executor's per-task overhead at fine tile sizes)
    let mut wbuf = Matrix::<S>::zeros(tt.ib.min(kb), n);
    for bblk in order {
        let (j, jb) = tt.block_range(bblk);
        let v2b = v2.view(0, j, m2, jb);
        for col in 0..n {
            for row in 0..jb {
                wbuf[(row, col)] = a1[(j + row, col)];
            }
        }
        gemm(
            Op::ConjTrans,
            Op::NoTrans,
            S::ONE,
            v2b,
            a2.as_ref(),
            S::ONE,
            wbuf.view_mut(0, 0, jb, n),
        );
        trmm(
            Side::Left,
            Uplo::Upper,
            t_op,
            Diag::NonUnit,
            S::ONE,
            tt.t.view(0, j, jb, jb),
            wbuf.view_mut(0, 0, jb, n),
        );
        for col in 0..n {
            for row in 0..jb {
                a1[(j + row, col)] -= wbuf[(row, col)];
            }
        }
        gemm(Op::NoTrans, Op::NoTrans, -S::ONE, v2b, wbuf.view(0, 0, jb, n), S::ONE, a2.as_mut());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polar_blas::{add, norm};
    use polar_matrix::Norm;
    use polar_scalar::Complex64;

    fn rand_mat(m: usize, n: usize, seed: u64) -> Matrix<f64> {
        let mut s = seed | 1;
        Matrix::from_fn(m, n, |_, _| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    #[test]
    fn geqrt_reconstructs() {
        let a0 = rand_mat(8, 8, 1);
        let mut a = a0.clone();
        let t = geqrt(&mut a);
        // Q = I - V T V^H applied to R-padded should give A back:
        // equivalently, unmqr_tile(NoTrans) on [R; 0]
        let mut r = Matrix::<f64>::zeros(8, 8);
        for j in 0..8 {
            for i in 0..=j {
                r[(i, j)] = a[(i, j)];
            }
        }
        unmqr_tile(Op::NoTrans, &a, &t, &mut r);
        let mut diff = r;
        add(-1.0, a0.as_ref(), 1.0, diff.as_mut());
        let err: f64 = norm(Norm::Fro, diff.as_ref());
        assert!(err < 1e-12, "||QR - A|| = {err}");
    }

    #[test]
    fn tsqrt_annihilates_and_reconstructs() {
        // factor [R0; B0] with tsqrt and verify the implied Q: applying
        // Q^H to the original stack must yield [R_new; 0]
        let nb = 6;
        let m2 = 9;
        let a_top0 = {
            let mut a = rand_mat(nb, nb, 2);
            let t = geqrt(&mut a); // make a proper upper-triangular R
            let _ = t;
            Matrix::from_fn(nb, nb, |i, j| if i <= j { a[(i, j)] } else { 0.0 })
        };
        let b0 = rand_mat(m2, nb, 3);

        let mut r = a_top0.clone();
        let mut b = b0.clone();
        let t = tsqrt(&mut r, &mut b);

        // build Q explicitly from V = [I; V2], T: Q = I - V T V^H
        let mtot = nb + m2;
        let mut v = Matrix::<f64>::zeros(mtot, nb);
        for j in 0..nb {
            v[(j, j)] = 1.0;
            for i in 0..m2 {
                v[(nb + i, j)] = b[(i, j)];
            }
        }
        let mut q = Matrix::<f64>::identity(mtot, mtot);
        // Q = I - V T V^H
        let mut vt = Matrix::<f64>::zeros(mtot, nb);
        gemm(Op::NoTrans, Op::NoTrans, 1.0, v.as_ref(), t.as_ref(), 0.0, vt.as_mut());
        gemm(Op::NoTrans, Op::ConjTrans, -1.0, vt.as_ref(), v.as_ref(), 1.0, q.as_mut());

        // Q must be orthogonal
        let mut qtq = Matrix::<f64>::zeros(mtot, mtot);
        gemm(Op::ConjTrans, Op::NoTrans, 1.0, q.as_ref(), q.as_ref(), 0.0, qtq.as_mut());
        for j in 0..mtot {
            for i in 0..mtot {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((qtq[(i, j)] - expect).abs() < 1e-12, "Q not orthogonal");
            }
        }

        // Q [R_new; 0] == [R0; B0]
        let mut rn = Matrix::<f64>::zeros(mtot, nb);
        for j in 0..nb {
            for i in 0..=j {
                rn[(i, j)] = r[(i, j)];
            }
        }
        let mut recon = Matrix::<f64>::zeros(mtot, nb);
        gemm(Op::NoTrans, Op::NoTrans, 1.0, q.as_ref(), rn.as_ref(), 0.0, recon.as_mut());
        for j in 0..nb {
            for i in 0..nb {
                let expect = a_top0[(i, j)];
                assert!((recon[(i, j)] - expect).abs() < 1e-11, "top ({i},{j})");
            }
            for i in 0..m2 {
                assert!((recon[(nb + i, j)] - b0[(i, j)]).abs() < 1e-11, "bottom ({i},{j})");
            }
        }
    }

    #[test]
    fn tsmqr_matches_explicit_q() {
        let nb = 5;
        let m2 = 7;
        let n = 4;
        // build a tsqrt factorization
        let mut r =
            Matrix::from_fn(
                nb,
                nb,
                |i, j| {
                    if i <= j {
                        1.0 + (i * 3 + j) as f64 * 0.1
                    } else {
                        0.0
                    }
                },
            );
        let mut b = rand_mat(m2, nb, 4);
        let v2_before = b.clone();
        let _ = v2_before;
        let t = tsqrt(&mut r, &mut b);

        // pair of tiles to update
        let a1_0 = rand_mat(nb, n, 5);
        let a2_0 = rand_mat(m2, n, 6);
        let mut a1 = a1_0.clone();
        let mut a2 = a2_0.clone();
        tsmqr(Op::ConjTrans, &b, &t, &mut a1, &mut a2);

        // explicit Q^H [A1; A2]
        let mtot = nb + m2;
        let mut v = Matrix::<f64>::zeros(mtot, nb);
        for j in 0..nb {
            v[(j, j)] = 1.0;
            for i in 0..m2 {
                v[(nb + i, j)] = b[(i, j)];
            }
        }
        let mut q = Matrix::<f64>::identity(mtot, mtot);
        let mut vt = Matrix::<f64>::zeros(mtot, nb);
        gemm(Op::NoTrans, Op::NoTrans, 1.0, v.as_ref(), t.as_ref(), 0.0, vt.as_mut());
        gemm(Op::NoTrans, Op::ConjTrans, -1.0, vt.as_ref(), v.as_ref(), 1.0, q.as_mut());
        let stacked = Matrix::vstack(&a1_0, &a2_0);
        let mut expect = Matrix::<f64>::zeros(mtot, n);
        gemm(Op::ConjTrans, Op::NoTrans, 1.0, q.as_ref(), stacked.as_ref(), 0.0, expect.as_mut());

        for j in 0..n {
            for i in 0..nb {
                assert!((a1[(i, j)] - expect[(i, j)]).abs() < 1e-12, "A1 ({i},{j})");
            }
            for i in 0..m2 {
                assert!((a2[(i, j)] - expect[(nb + i, j)]).abs() < 1e-12, "A2 ({i},{j})");
            }
        }
    }

    #[test]
    fn tsmqr_notrans_inverts_conjtrans() {
        let nb = 4;
        let m2 = 6;
        let n = 3;
        let mut r = Matrix::from_fn(nb, nb, |i, j| if i <= j { 2.0 + j as f64 } else { 0.0 });
        let mut b = rand_mat(m2, nb, 7);
        let t = tsqrt(&mut r, &mut b);

        let a1_0 = rand_mat(nb, n, 8);
        let a2_0 = rand_mat(m2, n, 9);
        let mut a1 = a1_0.clone();
        let mut a2 = a2_0.clone();
        tsmqr(Op::ConjTrans, &b, &t, &mut a1, &mut a2);
        tsmqr(Op::NoTrans, &b, &t, &mut a1, &mut a2);
        let mut d1 = a1;
        add(-1.0, a1_0.as_ref(), 1.0, d1.as_mut());
        let mut d2 = a2;
        add(-1.0, a2_0.as_ref(), 1.0, d2.as_mut());
        let e1: f64 = norm(Norm::Fro, d1.as_ref());
        let e2: f64 = norm(Norm::Fro, d2.as_ref());
        assert!(e1 < 1e-12 && e2 < 1e-12, "Q Q^H != I: {e1} {e2}");
    }

    #[test]
    fn geqrt_blocked_matches_geqrf_blocked() {
        // same panel code path => bitwise-identical packed output
        for (m, n, ib) in [(16usize, 16usize, 4usize), (24, 16, 8), (16, 24, 5), (7, 7, 16)] {
            let a0 = rand_mat(m, n, 21 + (m * n) as u64);
            let mut tiled = a0.clone();
            let tt = geqrt_blocked(&mut tiled, ib);
            let mut flat = a0.clone();
            let f = crate::qr::geqrf_blocked(&mut flat, ib);
            for j in 0..n {
                for i in 0..m {
                    assert_eq!(tiled[(i, j)], flat[(i, j)], "packed ({i},{j}) m={m} n={n}");
                }
            }
            // T diagonal blocks carry tau on their diagonals
            for (c, tau) in f.tau.iter().enumerate() {
                assert_eq!(tt.t[(c % ib.min(m.min(n)), c)], *tau);
            }
        }
    }

    #[test]
    fn unmqr_tile_blocked_matches_full_t() {
        let a0 = rand_mat(12, 12, 31);
        // full-T reference
        let mut af = a0.clone();
        let tf = geqrt(&mut af);
        let c0 = rand_mat(12, 5, 32);
        for op in [Op::NoTrans, Op::ConjTrans] {
            let mut cf = c0.clone();
            unmqr_tile(op, &af, &tf, &mut cf);
            // blocked path
            let mut ab = a0.clone();
            let tb = geqrt_blocked(&mut ab, 4);
            let mut cb = c0.clone();
            unmqr_tile_blocked(op, &ab, &tb, &mut cb);
            let mut diff = cb.clone();
            add(-1.0, cf.as_ref(), 1.0, diff.as_mut());
            let err: f64 = norm(Norm::Fro, diff.as_ref());
            assert!(err < 1e-12, "op={op:?} err={err}");
        }
    }

    #[test]
    fn tsqrt_blocked_matches_unblocked() {
        for (nb, m2, ib) in [(8usize, 10usize, 3usize), (6, 6, 2), (5, 9, 8)] {
            let r0 = {
                let mut a = rand_mat(nb, nb, 41 + nb as u64);
                let _ = geqrt(&mut a);
                Matrix::from_fn(nb, nb, |i, j| if i <= j { a[(i, j)] } else { 0.0 })
            };
            let b0 = rand_mat(m2, nb, 42 + m2 as u64);
            let mut rf = r0.clone();
            let mut bf = b0.clone();
            let _tf = tsqrt(&mut rf, &mut bf);
            let mut rb = r0.clone();
            let mut bb = b0.clone();
            let _tb = tsqrt_blocked(&mut rb, &mut bb, ib);
            // same reflectors up to roundoff (identical math, different
            // update grouping)
            for j in 0..nb {
                for i in 0..=j {
                    assert!((rf[(i, j)] - rb[(i, j)]).abs() < 1e-12, "R ({i},{j})");
                }
                for i in 0..m2 {
                    assert!((bf[(i, j)] - bb[(i, j)]).abs() < 1e-12, "V2 ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn tsmqr_blocked_matches_unblocked() {
        let nb = 8;
        let m2 = 11;
        let n = 6;
        let r0 = {
            let mut a = rand_mat(nb, nb, 51);
            let _ = geqrt(&mut a);
            Matrix::from_fn(nb, nb, |i, j| if i <= j { a[(i, j)] } else { 0.0 })
        };
        let b0 = rand_mat(m2, nb, 52);
        // full-T factorization for the reference
        let mut rf = r0.clone();
        let mut bf = b0.clone();
        let tf = tsqrt(&mut rf, &mut bf);
        // blocked factorization (same reflectors within roundoff)
        let mut rb = r0.clone();
        let mut bb = b0.clone();
        let tb = tsqrt_blocked(&mut rb, &mut bb, 3);
        let a1_0 = rand_mat(nb, n, 53);
        let a2_0 = rand_mat(m2, n, 54);
        for op in [Op::NoTrans, Op::ConjTrans] {
            let mut a1f = a1_0.clone();
            let mut a2f = a2_0.clone();
            tsmqr(op, &bf, &tf, &mut a1f, &mut a2f);
            let mut a1b = a1_0.clone();
            let mut a2b = a2_0.clone();
            tsmqr_blocked(op, &bb, &tb, &mut a1b, &mut a2b);
            for j in 0..n {
                for i in 0..nb {
                    assert!((a1f[(i, j)] - a1b[(i, j)]).abs() < 1e-11, "A1 ({i},{j}) {op:?}");
                }
                for i in 0..m2 {
                    assert!((a2f[(i, j)] - a2b[(i, j)]).abs() < 1e-11, "A2 ({i},{j}) {op:?}");
                }
            }
        }
    }

    #[test]
    fn blocked_kernels_complex() {
        let mut s = 77u64;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let nb = 6;
        let m2 = 8;
        let r0 = Matrix::from_fn(nb, nb, |i, j| {
            if i <= j {
                Complex64::new(next() + 2.0, next())
            } else {
                Complex64::default()
            }
        });
        let b0 = Matrix::from_fn(m2, nb, |_, _| Complex64::new(next(), next()));
        let mut rf = r0.clone();
        let mut bf = b0.clone();
        let tf = tsqrt(&mut rf, &mut bf);
        let mut rb = r0.clone();
        let mut bb = b0.clone();
        let tb = tsqrt_blocked(&mut rb, &mut bb, 2);
        let c1 = Matrix::from_fn(nb, 4, |_, _| Complex64::new(next(), next()));
        let c2 = Matrix::from_fn(m2, 4, |_, _| Complex64::new(next(), next()));
        let mut a1f = c1.clone();
        let mut a2f = c2.clone();
        tsmqr(Op::ConjTrans, &bf, &tf, &mut a1f, &mut a2f);
        let mut a1b = c1.clone();
        let mut a2b = c2.clone();
        tsmqr_blocked(Op::ConjTrans, &bb, &tb, &mut a1b, &mut a2b);
        for j in 0..4 {
            for i in 0..nb {
                assert!((a1f[(i, j)] - a1b[(i, j)]).abs() < 1e-11);
            }
            for i in 0..m2 {
                assert!((a2f[(i, j)] - a2b[(i, j)]).abs() < 1e-11);
            }
        }
    }

    #[test]
    fn tile_kernels_complex() {
        let nb = 4;
        let m2 = 5;
        let mut s = 11u64;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut r = Matrix::from_fn(nb, nb, |i, j| {
            if i <= j {
                Complex64::new(next() + 2.0, next())
            } else {
                Complex64::default()
            }
        });
        let r0 = r.clone();
        let mut b = Matrix::from_fn(m2, nb, |_, _| Complex64::new(next(), next()));
        let b0 = b.clone();
        let t = tsqrt(&mut r, &mut b);

        // verify via explicit Q as in the real test
        let one = Complex64::from_real(1.0);
        let mtot = nb + m2;
        let mut v = Matrix::<Complex64>::zeros(mtot, nb);
        for j in 0..nb {
            v[(j, j)] = one;
            for i in 0..m2 {
                v[(nb + i, j)] = b[(i, j)];
            }
        }
        let mut q = Matrix::<Complex64>::identity(mtot, mtot);
        let mut vt = Matrix::<Complex64>::zeros(mtot, nb);
        gemm(
            Op::NoTrans,
            Op::NoTrans,
            one,
            v.as_ref(),
            t.as_ref(),
            Complex64::default(),
            vt.as_mut(),
        );
        gemm(Op::NoTrans, Op::ConjTrans, -one, vt.as_ref(), v.as_ref(), one, q.as_mut());
        let mut rn = Matrix::<Complex64>::zeros(mtot, nb);
        for j in 0..nb {
            for i in 0..=j {
                rn[(i, j)] = r[(i, j)];
            }
        }
        let mut recon = Matrix::<Complex64>::zeros(mtot, nb);
        gemm(
            Op::NoTrans,
            Op::NoTrans,
            one,
            q.as_ref(),
            rn.as_ref(),
            Complex64::default(),
            recon.as_mut(),
        );
        for j in 0..nb {
            for i in 0..nb {
                assert!((recon[(i, j)] - r0[(i, j)]).abs() < 1e-11);
            }
            for i in 0..m2 {
                assert!((recon[(nb + i, j)] - b0[(i, j)]).abs() < 1e-11);
            }
        }
    }
}
