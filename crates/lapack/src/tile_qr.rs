//! PLASMA/SLATE-style tile QR kernels: `geqrt`, `tsqrt`, `tsmqr`.
//!
//! SLATE's distributed `geqrf` factors a tiled matrix with exactly these
//! four operations per panel step `k`:
//!
//! 1. [`geqrt`] — QR of the diagonal tile, producing the compact `T`
//!    factor alongside the packed reflectors;
//! 2. [`unmqr_tile`] — apply the diagonal tile's `Q^H` to the tiles right
//!    of it;
//! 3. [`tsqrt`] — "triangle-on-square" QR: annihilate a sub-diagonal tile
//!    against the current `R` tile;
//! 4. [`tsmqr`] — apply a `tsqrt` reflector block to a row pair of
//!    trailing tiles.
//!
//! The structured reflectors of `tsqrt` have the form `V = [I; V2]`
//! (identity over the `R` tile, dense `V2` over the annihilated tile),
//! which is what makes the update `O(nb^3)` per tile pair. These kernels
//! are the numerical counterpart of the symbolic task DAG in `polar-sim`
//! and power the communication-metered distributed QDWH in `polar-qdwh`.

use crate::householder::larfg;
use crate::qr::{extract_v, geqr2, larfb_left, larft};
use polar_blas::{dotc, gemm, trmm};
use polar_matrix::{Diag, Matrix, Op, Side, Uplo};
use polar_scalar::Scalar;

/// QR of a single tile (PLASMA `GEQRT`).
///
/// On exit `a` holds `R` in its upper triangle and the reflector tails
/// below the diagonal; the returned `T` (`k x k`, `k = min(m, n)`) is the
/// compact WY factor with `Q = I - V T V^H`.
pub fn geqrt<S: Scalar>(a: &mut Matrix<S>) -> Matrix<S> {
    let m = a.nrows();
    let n = a.ncols();
    let k = m.min(n);
    let mut tau = vec![S::ZERO; k];
    geqr2(a.view_mut(0, 0, m, n), &mut tau);
    let v = extract_v(a.view(0, 0, m, k));
    larft(v.as_ref(), &tau)
}

/// Apply `Q` or `Q^H` from a [`geqrt`] factor to a tile `c` with the same
/// row count (PLASMA `UNMQR`): `C := op(Q) C`.
pub fn unmqr_tile<S: Scalar>(op: Op, v_packed: &Matrix<S>, t: &Matrix<S>, c: &mut Matrix<S>) {
    let k = t.nrows();
    assert_eq!(v_packed.nrows(), c.nrows(), "unmqr_tile: row mismatch");
    let v = extract_v(v_packed.view(0, 0, v_packed.nrows(), k));
    larfb_left(op, v.as_ref(), t.as_ref(), c.as_mut());
}

/// Triangle-on-square QR (PLASMA `TSQRT`, LAPACK `tpqrt` with `L = 0`):
/// factor the stacked `[R; B]` where `R` is the `nb x nb` upper triangle
/// held in the top tile `r` and `B` is a dense `m2 x nb` tile.
///
/// On exit the triangle of `r` holds the updated `R`, `b` holds the dense
/// part `V2` of the structured reflectors `V = [I; V2]`, and the returned
/// `T` is the compact WY factor.
pub fn tsqrt<S: Scalar>(r: &mut Matrix<S>, b: &mut Matrix<S>) -> Matrix<S> {
    let nb = r.ncols().min(r.nrows());
    assert_eq!(b.ncols(), r.ncols(), "tsqrt: column mismatch");
    let m2 = b.nrows();
    let mut tau = vec![S::ZERO; nb];
    let mut t = Matrix::<S>::zeros(nb, nb);

    for j in 0..nb {
        // reflector annihilating B[:, j] against R[j, j]; the top part of
        // v_j is e_j (R rows j+1.. are untouched since v is zero there)
        let alpha = r[(j, j)];
        let refl = {
            let col = b.col_mut(j);
            larfg(alpha, col)
        };
        r[(j, j)] = S::from_real(refl.beta);
        tau[j] = refl.tau;

        if refl.tau != S::ZERO {
            // apply H^H = I - conj(tau) v v^H to remaining columns:
            // w = R[j, k] + V2_j^H B[:, k]
            let tc = refl.tau.conj();
            for k in j + 1..nb {
                let mut w = r[(j, k)];
                w += dotc(b.col(j), b.col(k));
                let f = tc * w;
                r[(j, k)] -= f;
                // B[:, k] -= f * V2_j (split borrows via raw indexing)
                for i in 0..m2 {
                    let vij = b[(i, j)];
                    b[(i, k)] -= f * vij;
                }
            }
        }

        // T column j: T(0..j, j) = -tau_j * T(0..j,0..j) * (V2^H v2_j)
        // (the identity top parts of V are orthogonal between columns)
        if j > 0 {
            let mut w = vec![S::ZERO; j];
            for (l, wl) in w.iter_mut().enumerate() {
                *wl = dotc(b.col(l), b.col(j));
            }
            for rrow in 0..j {
                let mut acc = S::ZERO;
                for l in rrow..j {
                    acc += t[(rrow, l)] * w[l];
                }
                t[(rrow, j)] = -tau[j] * acc;
            }
        }
        t[(j, j)] = tau[j];
    }
    t
}

/// Apply a [`tsqrt`] reflector block to a tile row pair (PLASMA `TSMQR`):
///
/// ```text
/// [A1]        [A1]
/// [A2] := op(Q) [A2],   Q = I - [I; V2] T [I; V2]^H
/// ```
///
/// `a1` is the `nb x n` tile in the `R` row, `a2` the `m2 x n` tile in the
/// annihilated row, `v2` the dense reflector part from `tsqrt`.
pub fn tsmqr<S: Scalar>(
    op: Op,
    v2: &Matrix<S>,
    t: &Matrix<S>,
    a1: &mut Matrix<S>,
    a2: &mut Matrix<S>,
) {
    let nb = t.nrows();
    let n = a1.ncols();
    assert_eq!(a2.ncols(), n, "tsmqr: column mismatch");
    assert_eq!(v2.nrows(), a2.nrows(), "tsmqr: V2/A2 row mismatch");
    assert_eq!(v2.ncols(), nb, "tsmqr: V2/T mismatch");
    assert!(a1.nrows() >= nb, "tsmqr: A1 too short");

    // W = A1[0..nb, :] + V2^H A2
    let mut w = a1.submatrix_owned(0, 0, nb, n);
    gemm(Op::ConjTrans, Op::NoTrans, S::ONE, v2.as_ref(), a2.as_ref(), S::ONE, w.as_mut());
    // W := op(T) W  (ConjTrans applies Q^H)
    let t_op = if op == Op::NoTrans { Op::NoTrans } else { Op::ConjTrans };
    trmm(Side::Left, Uplo::Upper, t_op, Diag::NonUnit, S::ONE, t.as_ref(), w.as_mut());
    // A1 -= W ; A2 -= V2 W
    for j in 0..n {
        for i in 0..nb {
            a1[(i, j)] -= w[(i, j)];
        }
    }
    gemm(Op::NoTrans, Op::NoTrans, -S::ONE, v2.as_ref(), w.as_ref(), S::ONE, a2.as_mut());
}

#[cfg(test)]
mod tests {
    use super::*;
    use polar_blas::{add, norm};
    use polar_matrix::Norm;
    use polar_scalar::Complex64;

    fn rand_mat(m: usize, n: usize, seed: u64) -> Matrix<f64> {
        let mut s = seed | 1;
        Matrix::from_fn(m, n, |_, _| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    #[test]
    fn geqrt_reconstructs() {
        let a0 = rand_mat(8, 8, 1);
        let mut a = a0.clone();
        let t = geqrt(&mut a);
        // Q = I - V T V^H applied to R-padded should give A back:
        // equivalently, unmqr_tile(NoTrans) on [R; 0]
        let mut r = Matrix::<f64>::zeros(8, 8);
        for j in 0..8 {
            for i in 0..=j {
                r[(i, j)] = a[(i, j)];
            }
        }
        unmqr_tile(Op::NoTrans, &a, &t, &mut r);
        let mut diff = r;
        add(-1.0, a0.as_ref(), 1.0, diff.as_mut());
        let err: f64 = norm(Norm::Fro, diff.as_ref());
        assert!(err < 1e-12, "||QR - A|| = {err}");
    }

    #[test]
    fn tsqrt_annihilates_and_reconstructs() {
        // factor [R0; B0] with tsqrt and verify the implied Q: applying
        // Q^H to the original stack must yield [R_new; 0]
        let nb = 6;
        let m2 = 9;
        let a_top0 = {
            let mut a = rand_mat(nb, nb, 2);
            let t = geqrt(&mut a); // make a proper upper-triangular R
            let _ = t;
            Matrix::from_fn(nb, nb, |i, j| if i <= j { a[(i, j)] } else { 0.0 })
        };
        let b0 = rand_mat(m2, nb, 3);

        let mut r = a_top0.clone();
        let mut b = b0.clone();
        let t = tsqrt(&mut r, &mut b);

        // build Q explicitly from V = [I; V2], T: Q = I - V T V^H
        let mtot = nb + m2;
        let mut v = Matrix::<f64>::zeros(mtot, nb);
        for j in 0..nb {
            v[(j, j)] = 1.0;
            for i in 0..m2 {
                v[(nb + i, j)] = b[(i, j)];
            }
        }
        let mut q = Matrix::<f64>::identity(mtot, mtot);
        // Q = I - V T V^H
        let mut vt = Matrix::<f64>::zeros(mtot, nb);
        gemm(Op::NoTrans, Op::NoTrans, 1.0, v.as_ref(), t.as_ref(), 0.0, vt.as_mut());
        gemm(Op::NoTrans, Op::ConjTrans, -1.0, vt.as_ref(), v.as_ref(), 1.0, q.as_mut());

        // Q must be orthogonal
        let mut qtq = Matrix::<f64>::zeros(mtot, mtot);
        gemm(Op::ConjTrans, Op::NoTrans, 1.0, q.as_ref(), q.as_ref(), 0.0, qtq.as_mut());
        for j in 0..mtot {
            for i in 0..mtot {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((qtq[(i, j)] - expect).abs() < 1e-12, "Q not orthogonal");
            }
        }

        // Q [R_new; 0] == [R0; B0]
        let mut rn = Matrix::<f64>::zeros(mtot, nb);
        for j in 0..nb {
            for i in 0..=j {
                rn[(i, j)] = r[(i, j)];
            }
        }
        let mut recon = Matrix::<f64>::zeros(mtot, nb);
        gemm(Op::NoTrans, Op::NoTrans, 1.0, q.as_ref(), rn.as_ref(), 0.0, recon.as_mut());
        for j in 0..nb {
            for i in 0..nb {
                let expect = a_top0[(i, j)];
                assert!((recon[(i, j)] - expect).abs() < 1e-11, "top ({i},{j})");
            }
            for i in 0..m2 {
                assert!((recon[(nb + i, j)] - b0[(i, j)]).abs() < 1e-11, "bottom ({i},{j})");
            }
        }
    }

    #[test]
    fn tsmqr_matches_explicit_q() {
        let nb = 5;
        let m2 = 7;
        let n = 4;
        // build a tsqrt factorization
        let mut r =
            Matrix::from_fn(
                nb,
                nb,
                |i, j| {
                    if i <= j {
                        1.0 + (i * 3 + j) as f64 * 0.1
                    } else {
                        0.0
                    }
                },
            );
        let mut b = rand_mat(m2, nb, 4);
        let v2_before = b.clone();
        let _ = v2_before;
        let t = tsqrt(&mut r, &mut b);

        // pair of tiles to update
        let a1_0 = rand_mat(nb, n, 5);
        let a2_0 = rand_mat(m2, n, 6);
        let mut a1 = a1_0.clone();
        let mut a2 = a2_0.clone();
        tsmqr(Op::ConjTrans, &b, &t, &mut a1, &mut a2);

        // explicit Q^H [A1; A2]
        let mtot = nb + m2;
        let mut v = Matrix::<f64>::zeros(mtot, nb);
        for j in 0..nb {
            v[(j, j)] = 1.0;
            for i in 0..m2 {
                v[(nb + i, j)] = b[(i, j)];
            }
        }
        let mut q = Matrix::<f64>::identity(mtot, mtot);
        let mut vt = Matrix::<f64>::zeros(mtot, nb);
        gemm(Op::NoTrans, Op::NoTrans, 1.0, v.as_ref(), t.as_ref(), 0.0, vt.as_mut());
        gemm(Op::NoTrans, Op::ConjTrans, -1.0, vt.as_ref(), v.as_ref(), 1.0, q.as_mut());
        let stacked = Matrix::vstack(&a1_0, &a2_0);
        let mut expect = Matrix::<f64>::zeros(mtot, n);
        gemm(Op::ConjTrans, Op::NoTrans, 1.0, q.as_ref(), stacked.as_ref(), 0.0, expect.as_mut());

        for j in 0..n {
            for i in 0..nb {
                assert!((a1[(i, j)] - expect[(i, j)]).abs() < 1e-12, "A1 ({i},{j})");
            }
            for i in 0..m2 {
                assert!((a2[(i, j)] - expect[(nb + i, j)]).abs() < 1e-12, "A2 ({i},{j})");
            }
        }
    }

    #[test]
    fn tsmqr_notrans_inverts_conjtrans() {
        let nb = 4;
        let m2 = 6;
        let n = 3;
        let mut r = Matrix::from_fn(nb, nb, |i, j| if i <= j { 2.0 + j as f64 } else { 0.0 });
        let mut b = rand_mat(m2, nb, 7);
        let t = tsqrt(&mut r, &mut b);

        let a1_0 = rand_mat(nb, n, 8);
        let a2_0 = rand_mat(m2, n, 9);
        let mut a1 = a1_0.clone();
        let mut a2 = a2_0.clone();
        tsmqr(Op::ConjTrans, &b, &t, &mut a1, &mut a2);
        tsmqr(Op::NoTrans, &b, &t, &mut a1, &mut a2);
        let mut d1 = a1;
        add(-1.0, a1_0.as_ref(), 1.0, d1.as_mut());
        let mut d2 = a2;
        add(-1.0, a2_0.as_ref(), 1.0, d2.as_mut());
        let e1: f64 = norm(Norm::Fro, d1.as_ref());
        let e2: f64 = norm(Norm::Fro, d2.as_ref());
        assert!(e1 < 1e-12 && e2 < 1e-12, "Q Q^H != I: {e1} {e2}");
    }

    #[test]
    fn tile_kernels_complex() {
        let nb = 4;
        let m2 = 5;
        let mut s = 11u64;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut r = Matrix::from_fn(nb, nb, |i, j| {
            if i <= j {
                Complex64::new(next() + 2.0, next())
            } else {
                Complex64::default()
            }
        });
        let r0 = r.clone();
        let mut b = Matrix::from_fn(m2, nb, |_, _| Complex64::new(next(), next()));
        let b0 = b.clone();
        let t = tsqrt(&mut r, &mut b);

        // verify via explicit Q as in the real test
        let one = Complex64::from_real(1.0);
        let mtot = nb + m2;
        let mut v = Matrix::<Complex64>::zeros(mtot, nb);
        for j in 0..nb {
            v[(j, j)] = one;
            for i in 0..m2 {
                v[(nb + i, j)] = b[(i, j)];
            }
        }
        let mut q = Matrix::<Complex64>::identity(mtot, mtot);
        let mut vt = Matrix::<Complex64>::zeros(mtot, nb);
        gemm(
            Op::NoTrans,
            Op::NoTrans,
            one,
            v.as_ref(),
            t.as_ref(),
            Complex64::default(),
            vt.as_mut(),
        );
        gemm(Op::NoTrans, Op::ConjTrans, -one, vt.as_ref(), v.as_ref(), one, q.as_mut());
        let mut rn = Matrix::<Complex64>::zeros(mtot, nb);
        for j in 0..nb {
            for i in 0..=j {
                rn[(i, j)] = r[(i, j)];
            }
        }
        let mut recon = Matrix::<Complex64>::zeros(mtot, nb);
        gemm(
            Op::NoTrans,
            Op::NoTrans,
            one,
            q.as_ref(),
            rn.as_ref(),
            Complex64::default(),
            recon.as_mut(),
        );
        for j in 0..nb {
            for i in 0..nb {
                assert!((recon[(i, j)] - r0[(i, j)]).abs() < 1e-11);
            }
            for i in 0..m2 {
                assert!((recon[(nb + i, j)] - b0[(i, j)]).abs() < 1e-11);
            }
        }
    }
}
