//! Blocked Cholesky factorization (`potrf`) and positive-definite solve
//! (`posv`) — the engine of the Cholesky-based QDWH iteration (Eq. (2)).

use crate::{LapackError, DEFAULT_BLOCK};
use polar_blas::{herk, trsm};
use polar_matrix::{Diag, MatMut, Matrix, Op, Side, Uplo};
use polar_scalar::{Real, Scalar};

/// Unblocked lower Cholesky of the leading block (LAPACK `potf2`).
/// `offset` is the global row/column index of this block, used only for
/// the error report.
fn potf2_lower<S: Scalar>(mut a: MatMut<'_, S>, offset: usize) -> Result<(), LapackError> {
    let n = a.nrows();
    for j in 0..n {
        // d = A[j,j] - sum_{l<j} |A[j,l]|^2
        let mut d = a.at(j, j).re();
        for l in 0..j {
            d -= a.at(j, l).abs_sq();
        }
        if d <= S::Real::ZERO || !d.is_finite() {
            return Err(LapackError::NotPositiveDefinite(offset + j + 1));
        }
        let djj = d.sqrt();
        a.set(j, j, S::from_real(djj));
        // column update: A[j+1.., j] = (A[j+1.., j] - A[j+1.., 0..j] A[j, 0..j]^H) / djj
        for l in 0..j {
            let f = a.at(j, l).conj();
            if f == S::ZERO {
                continue;
            }
            for i in j + 1..n {
                let v = a.at(i, j) - a.at(i, l) * f;
                a.set(i, j, v);
            }
        }
        let inv = djj.recip();
        for i in j + 1..n {
            let v = a.at(i, j).mul_real(inv);
            a.set(i, j, v);
        }
    }
    Ok(())
}

/// Blocked Cholesky factorization of a Hermitian positive-definite matrix,
/// LAPACK `potrf`. Only the `uplo` triangle of `a` is referenced; on exit
/// it holds the Cholesky factor (`A = L L^H` for `Lower`).
///
/// `Upper` is routed through the lower algorithm on the conjugate
/// transpose (QDWH only needs `Lower`).
pub fn potrf<S: Scalar>(uplo: Uplo, a: &mut Matrix<S>) -> Result<(), LapackError> {
    assert!(a.is_square(), "potrf: square matrices only");
    let _obs = polar_obs::kernel_span(
        polar_obs::KernelClass::Potrf,
        "potrf",
        polar_blas::flops::type_factor(S::IS_COMPLEX) * polar_blas::flops::potrf(a.nrows()),
        [a.nrows(), a.nrows(), 0],
    );
    match uplo {
        Uplo::Lower => potrf_lower(a, DEFAULT_BLOCK),
        Uplo::Upper => {
            let mut at = a.transposed(Op::ConjTrans);
            potrf_lower(&mut at, DEFAULT_BLOCK)?;
            // write back U = L^H into the upper triangle
            let n = a.nrows();
            for j in 0..n {
                for i in 0..=j {
                    a[(i, j)] = at[(j, i)].conj();
                }
            }
            Ok(())
        }
    }
}

fn potrf_lower<S: Scalar>(a: &mut Matrix<S>, nb: usize) -> Result<(), LapackError> {
    potrf_lower_in(a.as_mut(), nb)
}

/// View-based lower Cholesky, LAPACK `potrf` on a [`MatMut`]. Same
/// algorithm and arithmetic as [`potrf`] with `Uplo::Lower`, but the
/// matrix need not own its storage — the batch-major QDWH engine calls
/// this on slices of a shared workspace arena.
pub fn potrf_in<S: Scalar>(uplo: Uplo, a: MatMut<'_, S>) -> Result<(), LapackError> {
    assert_eq!(uplo, Uplo::Lower, "potrf_in: only the lower algorithm works in place on a view");
    assert_eq!(a.nrows(), a.ncols(), "potrf_in: square matrices only");
    let _obs = polar_obs::kernel_span(
        polar_obs::KernelClass::Potrf,
        "potrf",
        polar_blas::flops::type_factor(S::IS_COMPLEX) * polar_blas::flops::potrf(a.nrows()),
        [a.nrows(), a.nrows(), 0],
    );
    potrf_lower_in(a, DEFAULT_BLOCK)
}

fn potrf_lower_in<S: Scalar>(mut a: MatMut<'_, S>, nb: usize) -> Result<(), LapackError> {
    let n = a.nrows();
    let nb = nb.max(1);
    let mut k = 0;
    while k < n {
        let kb = nb.min(n - k);
        // diagonal block
        potf2_lower(a.rb().submatrix(k, k, kb, kb), k)?;
        if k + kb < n {
            let rest = n - k - kb;
            // panel solve: A[k+kb.., k..k+kb] := A[k+kb.., k..k+kb] * L_kk^{-H}
            {
                let all = a.rb().submatrix(k, k, n - k, kb);
                let (diag_block, panel) = all.split_at_row(kb);
                trsm(
                    Side::Right,
                    Uplo::Lower,
                    Op::ConjTrans,
                    Diag::NonUnit,
                    S::ONE,
                    diag_block.as_ref(),
                    panel,
                );
            }
            // trailing update: A22 -= panel * panel^H; split_at_col keeps
            // the panel and the trailing block as disjoint borrows
            let wide = a.rb().submatrix(k + kb, k, rest, n - k);
            let (panel, trailing) = wide.split_at_col(kb);
            herk(Uplo::Lower, Op::NoTrans, -S::Real::ONE, panel.as_ref(), S::Real::ONE, trailing);
        }
        k += kb;
    }
    Ok(())
}

/// Positive-definite solve, LAPACK `posv`: factors `A = L L^H` in place
/// (lower) and overwrites `B` with `A^{-1} B`.
pub fn posv<S: Scalar>(a: &mut Matrix<S>, b: &mut Matrix<S>) -> Result<(), LapackError> {
    assert_eq!(a.nrows(), b.nrows(), "posv: dim mismatch");
    potrf(Uplo::Lower, a)?;
    // L y = B, then L^H x = y
    trsm(Side::Left, Uplo::Lower, Op::NoTrans, Diag::NonUnit, S::ONE, a.as_ref(), b.as_mut());
    trsm(Side::Left, Uplo::Lower, Op::ConjTrans, Diag::NonUnit, S::ONE, a.as_ref(), b.as_mut());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use polar_blas::{gemm, norm};
    use polar_matrix::Norm;
    use polar_scalar::Complex64;

    fn rand_spd(n: usize, seed: u64) -> Matrix<f64> {
        let mut s = seed | 1;
        let g = Matrix::from_fn(n, n, |_, _| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        });
        // A = G G^T + n I: SPD with margin
        let mut a = Matrix::identity(n, n);
        polar_blas::scale(n as f64, a.as_mut());
        gemm(Op::NoTrans, Op::Trans, 1.0, g.as_ref(), g.as_ref(), 1.0, a.as_mut());
        a
    }

    fn rand_hpd(n: usize, seed: u64) -> Matrix<Complex64> {
        let mut s = seed | 1;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let g = Matrix::from_fn(n, n, |_, _| Complex64::new(next(), next()));
        let mut a = Matrix::identity(n, n);
        polar_blas::scale(Complex64::from_real(2.0 * n as f64), a.as_mut());
        gemm(
            Op::NoTrans,
            Op::ConjTrans,
            Complex64::from_real(1.0),
            g.as_ref(),
            g.as_ref(),
            Complex64::from_real(1.0),
            a.as_mut(),
        );
        a
    }

    fn check_llh<S: Scalar>(a0: &Matrix<S>, tol: S::Real) {
        let n = a0.nrows();
        let mut a = a0.clone();
        potrf(Uplo::Lower, &mut a).expect("potrf failed on SPD input");
        // zero upper strict triangle to extract L
        let l = Matrix::from_fn(n, n, |i, j| if i >= j { a[(i, j)] } else { S::ZERO });
        let mut recon = Matrix::<S>::zeros(n, n);
        gemm(Op::NoTrans, Op::ConjTrans, S::ONE, l.as_ref(), l.as_ref(), S::ZERO, recon.as_mut());
        let mut diff = recon;
        polar_blas::add(-S::ONE, a0.as_ref(), S::ONE, diff.as_mut());
        let err: S::Real = norm(Norm::Fro, diff.as_ref());
        let scale: S::Real = norm(Norm::Fro, a0.as_ref());
        assert!(err <= tol * scale, "||LL^H - A|| = {err:?}");
    }

    #[test]
    fn potrf_small_and_blocked() {
        check_llh(&rand_spd(5, 1), 1e-13);
        check_llh(&rand_spd(100, 2), 1e-12); // crosses block boundary
    }

    #[test]
    fn potrf_complex_hpd() {
        check_llh(&rand_hpd(40, 3), 1e-12);
    }

    #[test]
    fn potrf_upper_matches_lower() {
        let a0 = rand_spd(20, 4);
        let mut lo = a0.clone();
        let mut up = a0.clone();
        potrf(Uplo::Lower, &mut lo).unwrap();
        potrf(Uplo::Upper, &mut up).unwrap();
        for j in 0..20 {
            for i in 0..=j {
                assert!((up[(i, j)] - lo[(j, i)]).abs() < 1e-11);
            }
        }
    }

    #[test]
    fn potrf_rejects_indefinite() {
        let mut a = Matrix::<f64>::identity(4, 4);
        a[(2, 2)] = -1.0;
        let err = potrf(Uplo::Lower, &mut a).unwrap_err();
        assert_eq!(err, LapackError::NotPositiveDefinite(3));
    }

    #[test]
    fn potrf_rejects_nan() {
        let mut a = Matrix::<f64>::identity(3, 3);
        a[(1, 1)] = f64::NAN;
        assert!(potrf(Uplo::Lower, &mut a).is_err());
    }

    #[test]
    fn potrf_in_matches_potrf_bitwise() {
        for n in [7, 40, 100] {
            let a0 = rand_spd(n, 20 + n as u64);
            let mut owned = a0.clone();
            potrf(Uplo::Lower, &mut owned).unwrap();
            let mut viewed = a0.clone();
            potrf_in(Uplo::Lower, viewed.as_mut()).unwrap();
            for j in 0..n {
                for i in j..n {
                    assert!(
                        owned[(i, j)].to_bits() == viewed[(i, j)].to_bits(),
                        "bitwise mismatch at ({i},{j}), n={n}"
                    );
                }
            }
        }
    }

    #[test]
    fn posv_solves() {
        let a0 = rand_spd(30, 5);
        let x_true = Matrix::from_fn(30, 3, |i, j| (i + j) as f64 * 0.1 - 1.0);
        let mut b = Matrix::<f64>::zeros(30, 3);
        gemm(Op::NoTrans, Op::NoTrans, 1.0, a0.as_ref(), x_true.as_ref(), 0.0, b.as_mut());
        let mut a = a0.clone();
        posv(&mut a, &mut b).unwrap();
        let mut diff = b;
        polar_blas::add(-1.0, x_true.as_ref(), 1.0, diff.as_mut());
        let err: f64 = norm(Norm::Fro, diff.as_ref());
        assert!(err < 1e-9, "posv error {err}");
    }

    #[test]
    fn posv_identity() {
        let mut a = Matrix::<f64>::identity(6, 6);
        let b0 = Matrix::from_fn(6, 2, |i, j| (i * 2 + j) as f64);
        let mut b = b0.clone();
        posv(&mut a, &mut b).unwrap();
        for j in 0..2 {
            for i in 0..6 {
                assert!((b[(i, j)] - b0[(i, j)]).abs() < 1e-14);
            }
        }
    }
}
