//! Blocked Householder QR factorization (`geqrf`), multiply-by-Q
//! (`unmqr`), and explicit Q generation (`orgqr`).
//!
//! These are the kernels behind the QR-based QDWH iteration (Algorithm 1
//! lines 30–32): `geqrf(W)` factors the stacked `[sqrt(c) A; I]` matrix and
//! `unmqr(W, Q)` builds `Q1, Q2` explicitly.

use crate::householder::{larf, larfg};
use crate::DEFAULT_BLOCK;
use polar_blas::gemm;
use polar_matrix::{Diag, MatMut, MatRef, Matrix, Op, Side, Uplo};
use polar_scalar::Scalar;

/// Householder scalars of a QR factorization; the reflector vectors live
/// below the diagonal of the factored matrix (LAPACK packed format).
#[derive(Debug, Clone)]
pub struct QrFactors<S> {
    pub tau: Vec<S>,
}

/// Unblocked panel factorization, LAPACK `geqr2`.
///
/// On exit the upper triangle of `a` holds `R`, the sub-diagonal columns
/// hold the reflector tails, and `tau` the reflector scalars.
pub(crate) fn geqr2<S: Scalar>(a: MatMut<'_, S>, tau: &mut [S]) {
    let mut scratch = Vec::with_capacity(a.nrows());
    geqr2_scratch(a, tau, &mut scratch);
}

/// [`geqr2`] with a caller-provided scratch buffer for the reflector tail,
/// so blocked drivers reuse one allocation across all panels instead of
/// allocating a fresh `Vec` per column.
pub(crate) fn geqr2_scratch<S: Scalar>(mut a: MatMut<'_, S>, tau: &mut [S], scratch: &mut Vec<S>) {
    let m = a.nrows();
    let n = a.ncols();
    let k = m.min(n);
    debug_assert!(tau.len() >= k);
    for j in 0..k {
        // Generate reflector for column j, rows j..m.
        let tail_reflector = {
            let col = a.col_mut(j);
            let alpha = col[j];
            let r = larfg(alpha, &mut col[j + 1..]);
            col[j] = S::from_real(r.beta);
            r
        };
        tau[j] = tail_reflector.tau;
        if tail_reflector.tau != S::ZERO && j + 1 < n {
            // Apply H(j)^H to the trailing submatrix A[j.., j+1..].
            // Copy the tail into the reused scratch (it aliases the
            // matrix storage larf is about to update).
            scratch.clear();
            scratch.extend_from_slice(&a.col_mut(j)[j + 1..]);
            let trailing = a.rb().submatrix(j, j + 1, m - j, n - j - 1);
            larf(tail_reflector.tau.conj(), scratch, trailing);
        }
    }
}

/// Form the upper-triangular block reflector factor `T` (LAPACK `larft`,
/// forward / columnwise) so that `H(1)...H(k) = I - V T V^H`.
pub(crate) fn larft<S: Scalar>(v: MatRef<'_, S>, tau: &[S]) -> Matrix<S> {
    let k = v.ncols();
    let m = v.nrows();
    let mut t = Matrix::<S>::zeros(k, k);
    for i in 0..k {
        if tau[i] == S::ZERO {
            // T(0..i, i) stays zero
            t[(i, i)] = S::ZERO;
            continue;
        }
        // w = V(:, 0..i)^H * v_i  (v_i has implicit unit at row i)
        let mut w = vec![S::ZERO; i];
        for (l, wl) in w.iter_mut().enumerate() {
            // rows l..m of column l are the stored part (unit at row l)
            let mut acc = v.at(i, l).conj(); // unit element of v_i at row i times conj(V[i,l])
            for r in i + 1..m {
                acc += v.at(r, l).conj() * v.at(r, i);
            }
            *wl = acc;
        }
        // T(0..i, i) = -tau_i * T(0..i, 0..i) * w
        for r in 0..i {
            let mut acc = S::ZERO;
            for l in r..i {
                acc += t[(r, l)] * w[l];
            }
            t[(r, i)] = -tau[i] * acc;
        }
        t[(i, i)] = tau[i];
    }
    t
}

/// Materialize the unit-lower-trapezoidal `V` from the packed panel.
pub(crate) fn extract_v<S: Scalar>(panel: MatRef<'_, S>) -> Matrix<S> {
    let m = panel.nrows();
    let k = panel.ncols();
    Matrix::from_fn(m, k, |i, j| {
        if i == j {
            S::ONE
        } else if i > j {
            panel.at(i, j)
        } else {
            S::ZERO
        }
    })
}

/// Apply a block reflector (LAPACK `larfb`, left side, forward columnwise):
/// `C := (I - V T V^H) C` for `op = NoTrans`, or with `T^H` for
/// `op = ConjTrans` (which applies `Q^H`).
pub(crate) fn larfb_left<S: Scalar>(
    op: Op,
    v: MatRef<'_, S>,
    t: MatRef<'_, S>,
    mut c: MatMut<'_, S>,
) {
    let k = v.ncols();
    let n = c.ncols();
    if k == 0 || n == 0 {
        return;
    }
    // X = V^H C  (k x n)
    let mut x = Matrix::<S>::zeros(k, n);
    gemm(Op::ConjTrans, Op::NoTrans, S::ONE, v, c.as_ref(), S::ZERO, x.as_mut());
    // X := op(T) X
    let t_op = if op == Op::NoTrans { Op::NoTrans } else { Op::ConjTrans };
    polar_blas::trmm(Side::Left, Uplo::Upper, t_op, Diag::NonUnit, S::ONE, t, x.as_mut());
    // C := C - V X
    gemm(Op::NoTrans, Op::NoTrans, -S::ONE, v, x.as_ref(), S::ONE, c.rb());
}

/// Blocked Householder QR factorization, LAPACK `geqrf`.
///
/// On exit `a` holds `R` in its upper triangle and the reflectors below
/// the diagonal (packed format); the returned [`QrFactors`] carries `tau`.
pub fn geqrf<S: Scalar>(a: &mut Matrix<S>) -> QrFactors<S> {
    geqrf_blocked(a, DEFAULT_BLOCK)
}

/// [`geqrf`] with an explicit block size (exposed for tuning ablations).
pub fn geqrf_blocked<S: Scalar>(a: &mut Matrix<S>, ib: usize) -> QrFactors<S> {
    let m = a.nrows();
    let n = a.ncols();
    let k = m.min(n);
    let _obs = polar_obs::kernel_span(
        polar_obs::KernelClass::Geqrf,
        "geqrf",
        polar_blas::flops::type_factor(S::IS_COMPLEX) * polar_blas::flops::geqrf(m, n),
        [m, n, 0],
    );
    let ib = ib.max(1);
    let mut tau = vec![S::ZERO; k];
    let mut scratch = Vec::with_capacity(m);
    let mut j = 0;
    while j < k {
        let jb = ib.min(k - j);
        // Panel factorization.
        geqr2_scratch(a.view_mut(j, j, m - j, jb), &mut tau[j..j + jb], &mut scratch);
        // Trailing update with the block reflector.
        if j + jb < n {
            let v = extract_v(a.view(j, j, m - j, jb));
            let t = larft(v.as_ref(), &tau[j..j + jb]);
            let trailing = a.view_mut(j, j + jb, m - j, n - j - jb);
            larfb_left(Op::ConjTrans, v.as_ref(), t.as_ref(), trailing);
        }
        j += jb;
    }
    QrFactors { tau }
}

/// Structure-exploiting QR of the QDWH stacked matrix `W = [B; c I]`
/// (`B` is `top_rows x n` dense, the bottom block diagonal).
///
/// During the factorization the bottom block's fill-in stays upper
/// trapezoidal: at panel column `j` every entry below row
/// `top_rows + j + jb` is still exactly zero, so both the panel and the
/// trailing update can run on that shrinking-complement row window. For
/// square `B` this removes ~1/3 of the factorization flops — the
/// structure optimization the QDWH literature applies to Eq. (1).
///
/// The output is bit-compatible with [`geqrf`] (same packed format, the
/// windowed-out entries are exact zeros), so [`orgqr`]/[`unmqr`] apply
/// unchanged.
pub fn geqrf_stacked<S: Scalar>(top_rows: usize, a: &mut Matrix<S>) -> QrFactors<S> {
    let m = a.nrows();
    let n = a.ncols();
    assert!(top_rows <= m, "geqrf_stacked: top block larger than matrix");
    // Nominal (full geqrf) flops, matching the paper's Eq. (1) accounting;
    // the structure exploitation below executes fewer.
    let _obs = polar_obs::kernel_span(
        polar_obs::KernelClass::Geqrf,
        "geqrf_stacked",
        polar_blas::flops::type_factor(S::IS_COMPLEX) * polar_blas::flops::geqrf(m, n),
        [m, n, 0],
    );
    let ib = DEFAULT_BLOCK.max(1);
    let k = m.min(n);
    let mut tau = vec![S::ZERO; k];
    let mut scratch = Vec::with_capacity(m);
    let mut j = 0;
    while j < k {
        let jb = ib.min(k - j);
        // active rows: the dense top block plus the filled part of the
        // bottom block (through this panel's own diagonal entries)
        let active = m.min(top_rows + j + jb);
        geqr2_scratch(a.view_mut(j, j, active - j, jb), &mut tau[j..j + jb], &mut scratch);
        if j + jb < n {
            let v = extract_v(a.view(j, j, active - j, jb));
            let t = larft(v.as_ref(), &tau[j..j + jb]);
            let trailing = a.view_mut(j, j + jb, active - j, n - j - jb);
            larfb_left(Op::ConjTrans, v.as_ref(), t.as_ref(), trailing);
        }
        j += jb;
    }
    QrFactors { tau }
}

/// Multiply by Q from a [`geqrf`] factorization (LAPACK `unmqr`, left
/// side): `C := Q C` (`op = NoTrans`) or `C := Q^H C` (`op = ConjTrans`).
///
/// `a` is the factored matrix (reflectors below the diagonal). `Q` is the
/// full `m x m` unitary factor represented by the `k` reflectors.
pub fn unmqr<S: Scalar>(op: Op, a: &Matrix<S>, f: &QrFactors<S>, c: &mut Matrix<S>) {
    let m = a.nrows();
    let k = f.tau.len();
    assert_eq!(c.nrows(), m, "unmqr: C row mismatch");
    let _obs = polar_obs::kernel_span(
        polar_obs::KernelClass::Orgqr,
        "unmqr",
        polar_blas::flops::type_factor(S::IS_COMPLEX) * polar_blas::flops::unmqr(m, c.ncols(), k),
        [m, c.ncols(), k],
    );
    let ib = DEFAULT_BLOCK;
    let nblocks = k.div_ceil(ib);
    // NoTrans applies block reflectors in reverse order, ConjTrans forward.
    let block_ids: Vec<usize> = match op {
        Op::NoTrans => (0..nblocks).rev().collect(),
        _ => (0..nblocks).collect(),
    };
    for bi in block_ids {
        let j = bi * ib;
        let jb = ib.min(k - j);
        let v = extract_v(a.view(j, j, m - j, jb));
        let t = larft(v.as_ref(), &f.tau[j..j + jb]);
        let csub = c.view_mut(j, 0, m - j, c.ncols());
        larfb_left(op, v.as_ref(), t.as_ref(), csub);
    }
}

/// Generate the explicit thin `Q` (`m x k`) of a [`geqrf`] factorization
/// (LAPACK `orgqr`/`ungqr`): applies Q to the first `k` columns of the
/// identity, which is exactly how the paper builds `Q1, Q2` (line 32).
pub fn orgqr<S: Scalar>(a: &Matrix<S>, f: &QrFactors<S>) -> Matrix<S> {
    let m = a.nrows();
    let k = f.tau.len();
    let _obs = polar_obs::kernel_span(
        polar_obs::KernelClass::Orgqr,
        "orgqr",
        polar_blas::flops::type_factor(S::IS_COMPLEX) * polar_blas::flops::orgqr(m, k),
        [m, k, 0],
    );
    let mut q = Matrix::<S>::identity(m, k);
    unmqr(Op::NoTrans, a, f, &mut q);
    q
}

/// Extract the `k x n` upper-triangular `R` factor from a packed
/// factorization.
pub fn extract_r<S: Scalar>(a: &Matrix<S>) -> Matrix<S> {
    let k = a.nrows().min(a.ncols());
    Matrix::from_fn(k, a.ncols(), |i, j| if i <= j { a[(i, j)] } else { S::ZERO })
}

#[cfg(test)]
mod tests {
    use super::*;
    use polar_blas::norm;
    use polar_matrix::Norm;
    use polar_scalar::{Complex64, Real};

    fn rand_mat(m: usize, n: usize, seed: u64) -> Matrix<f64> {
        let mut s = seed | 1;
        Matrix::from_fn(m, n, |_, _| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    fn rand_cmat(m: usize, n: usize, seed: u64) -> Matrix<Complex64> {
        let mut s = seed | 1;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        Matrix::from_fn(m, n, |_, _| Complex64::new(next(), next()))
    }

    fn check_qr<S: Scalar>(a0: &Matrix<S>, tol: S::Real) {
        let (m, n) = (a0.nrows(), a0.ncols());
        let k = m.min(n);
        let mut a = a0.clone();
        let f = geqrf(&mut a);
        let q = orgqr(&a, &f);
        assert_eq!(q.nrows(), m);
        assert_eq!(q.ncols(), k);

        // orthonormality: Q^H Q = I
        let mut qhq = Matrix::<S>::zeros(k, k);
        gemm(Op::ConjTrans, Op::NoTrans, S::ONE, q.as_ref(), q.as_ref(), S::ZERO, qhq.as_mut());
        for j in 0..k {
            for i in 0..k {
                let expect = if i == j { S::ONE } else { S::ZERO };
                assert!((qhq[(i, j)] - expect).abs() <= tol, "QhQ({i},{j}) = {:?}", qhq[(i, j)]);
            }
        }

        // reconstruction: Q R = A
        let r = extract_r(&a);
        let mut qr = Matrix::<S>::zeros(m, n);
        gemm(Op::NoTrans, Op::NoTrans, S::ONE, q.as_ref(), r.as_ref(), S::ZERO, qr.as_mut());
        let mut diff = qr.clone();
        polar_blas::add(-S::ONE, a0.as_ref(), S::ONE, diff.as_mut());
        let err: S::Real = norm(Norm::Fro, diff.as_ref());
        let scale: S::Real = norm(Norm::Fro, a0.as_ref());
        assert!(err <= tol * (S::Real::ONE + scale), "||QR - A|| = {err:?}");
    }

    #[test]
    fn qr_square_real() {
        check_qr(&rand_mat(20, 20, 1), 1e-12);
    }

    #[test]
    fn qr_tall_real() {
        check_qr(&rand_mat(50, 18, 2), 1e-12);
        // blocked path crosses multiple panels
        check_qr(&rand_mat(100, 70, 3), 1e-11);
    }

    #[test]
    fn qr_wide_real() {
        check_qr(&rand_mat(12, 30, 4), 1e-12);
    }

    #[test]
    fn qr_complex() {
        check_qr(&rand_cmat(25, 15, 5), 1e-12);
        check_qr(&rand_cmat(40, 40, 6), 1e-11);
    }

    #[test]
    fn qr_single_column_and_row() {
        check_qr(&rand_mat(7, 1, 7), 1e-13);
        check_qr(&rand_mat(1, 5, 8), 1e-13);
        check_qr(&rand_mat(1, 1, 9), 1e-14);
    }

    #[test]
    fn qr_rank_deficient_is_stable() {
        // duplicated columns: R gets (near-)zero diagonal but Q stays unitary
        let base = rand_mat(20, 5, 10);
        let a0 = Matrix::from_fn(20, 10, |i, j| base[(i, j % 5)]);
        let mut a = a0.clone();
        let f = geqrf(&mut a);
        let q = orgqr(&a, &f);
        let mut qhq = Matrix::<f64>::zeros(10, 10);
        gemm(Op::ConjTrans, Op::NoTrans, 1.0, q.as_ref(), q.as_ref(), 0.0, qhq.as_mut());
        for j in 0..10 {
            for i in 0..10 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((qhq[(i, j)] - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn unmqr_conj_trans_inverts_notrans() {
        let a0 = rand_mat(30, 12, 11);
        let mut a = a0.clone();
        let f = geqrf(&mut a);
        let c0 = rand_mat(30, 4, 12);
        let mut c = c0.clone();
        unmqr(Op::NoTrans, &a, &f, &mut c);
        unmqr(Op::ConjTrans, &a, &f, &mut c);
        let mut diff = c.clone();
        polar_blas::add(-1.0, c0.as_ref(), 1.0, diff.as_mut());
        let err: f64 = norm(Norm::Fro, diff.as_ref());
        assert!(err < 1e-12, "Q^H Q C != C: {err}");
    }

    #[test]
    fn geqrf_stacked_matches_general() {
        // [B; I] factored with the windowed algorithm must equal the
        // general geqrf bit-for-bit (same reflectors, same R)
        for n in [5usize, 16, 40] {
            let b = rand_mat(n, n, 100 + n as u64);
            let w0 = Matrix::vstack(&b, &Matrix::identity(n, n));
            let mut general = w0.clone();
            let fg = geqrf(&mut general);
            let mut windowed = w0.clone();
            let fw = geqrf_stacked(n, &mut windowed);
            for (a, b2) in fg.tau.iter().zip(&fw.tau) {
                assert!((a - b2).abs() < 1e-14, "tau mismatch at n={n}");
            }
            for j in 0..n {
                for i in 0..2 * n {
                    assert!(
                        (general[(i, j)] - windowed[(i, j)]).abs() < 1e-13,
                        "packed mismatch at ({i},{j}), n={n}"
                    );
                }
            }
        }
    }

    #[test]
    fn geqrf_stacked_rectangular_top() {
        // tall top block (the rectangular m > n QDWH case)
        let b = rand_mat(30, 12, 7);
        let w0 = Matrix::vstack(&b, &Matrix::identity(12, 12));
        let mut w = w0.clone();
        let f = geqrf_stacked(30, &mut w);
        let q = orgqr(&w, &f);
        let r = extract_r(&w);
        let mut recon = Matrix::<f64>::zeros(42, 12);
        gemm(Op::NoTrans, Op::NoTrans, 1.0, q.as_ref(), r.as_ref(), 0.0, recon.as_mut());
        let mut diff = recon;
        polar_blas::add(-1.0, w0.as_ref(), 1.0, diff.as_mut());
        let err: f64 = norm(Norm::Fro, diff.as_ref());
        assert!(err < 1e-12, "||QR - W|| = {err}");
    }

    #[test]
    fn stacked_identity_structure() {
        // The QDWH W = [sqrt(c) A; I] shape: QR must handle it and the
        // resulting thin Q splits into Q1 (m x n) and Q2 (n x n).
        let n = 8;
        let a_top = rand_mat(n, n, 13);
        let w0 = Matrix::vstack(&a_top, &Matrix::identity(n, n));
        let mut w = w0.clone();
        let f = geqrf(&mut w);
        let q = orgqr(&w, &f);
        assert_eq!(q.nrows(), 2 * n);
        assert_eq!(q.ncols(), n);
        // Q^H Q = I
        let mut qhq = Matrix::<f64>::zeros(n, n);
        gemm(Op::ConjTrans, Op::NoTrans, 1.0, q.as_ref(), q.as_ref(), 0.0, qhq.as_mut());
        for j in 0..n {
            assert!((qhq[(j, j)] - 1.0).abs() < 1e-12);
        }
        // reconstruction of the stacked matrix
        let r = extract_r(&w);
        let mut recon = Matrix::<f64>::zeros(2 * n, n);
        gemm(Op::NoTrans, Op::NoTrans, 1.0, q.as_ref(), r.as_ref(), 0.0, recon.as_mut());
        let mut diff = recon.clone();
        polar_blas::add(-1.0, w0.as_ref(), 1.0, diff.as_mut());
        let fro: f64 = norm(Norm::Fro, diff.as_ref());
        assert!(fro < 1e-12);
    }
}
