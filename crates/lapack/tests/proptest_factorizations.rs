//! Property-based tests of the factorization contracts over random
//! shapes and contents.

use polar_blas::{add, gemm, norm};
use polar_lapack::{
    extract_r, geqrf, geqrf_blocked, geqrf_tiled, getrf, getrs, jacobi_eig, jacobi_svd, norm2est,
    orgqr, orgqr_tiled, posv, potrf, potrf_tiled, tsqr,
};
use polar_matrix::{Matrix, Norm, Op, Uplo};
use polar_scalar::{Complex32, Complex64, Real, Scalar};
use proptest::prelude::*;

fn mat(m: usize, n: usize, seed: u64) -> Matrix<f64> {
    let mut s = seed | 1;
    Matrix::from_fn(m, n, |_, _| {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    })
}

fn fro_diff(a: &Matrix<f64>, b: &Matrix<f64>) -> f64 {
    let mut d = a.clone();
    add(-1.0, b.as_ref(), 1.0, d.as_mut());
    norm(Norm::Fro, d.as_ref())
}

/// Random matrix in any of the four scalar types (the imaginary draw is
/// discarded by the real instantiations).
fn mat_s<S: Scalar>(m: usize, n: usize, seed: u64) -> Matrix<S> {
    let mut s = seed | 1;
    Matrix::from_fn(m, n, |_, _| {
        let mut draw = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let (re, im) = (draw(), draw());
        S::from_parts(S::Real::from_f64(re), S::Real::from_f64(im))
    })
}

/// The tiled QR must reconstruct A, produce an orthonormal Q, and agree
/// with the flat `geqrf` R factor (unique up to unit phases).
fn check_tiled_qr_s<S: Scalar>(m: usize, n: usize, nb: usize, seed: u64, tol: f64) {
    let a0 = mat_s::<S>(m, n, seed);
    let k = m.min(n);
    let f = geqrf_tiled(&a0, nb);
    let q = orgqr_tiled(&f, k);
    let mut qhq = Matrix::<S>::identity(k, k);
    gemm(Op::ConjTrans, Op::NoTrans, S::ONE, q.as_ref(), q.as_ref(), -S::ONE, qhq.as_mut());
    let orth = norm(Norm::Fro, qhq.as_ref()).to_f64();
    assert!(orth <= tol * (1.0 + k as f64), "||QhQ - I|| = {orth} (m={m} n={n} nb={nb})");
    let r = f.extract_r();
    let mut qr = a0.clone();
    gemm(Op::NoTrans, Op::NoTrans, S::ONE, q.as_ref(), r.as_ref(), -S::ONE, qr.as_mut());
    let err = norm(Norm::Fro, qr.as_ref()).to_f64();
    let scale = norm(Norm::Fro, a0.as_ref()).to_f64();
    assert!(err <= tol * (1.0 + scale), "||QR - A|| = {err} (m={m} n={n} nb={nb})");
    let mut af = a0.clone();
    let _ = geqrf(&mut af);
    for j in 0..k {
        let (dt, df) = (r[(j, j)].abs().to_f64(), af[(j, j)].abs().to_f64());
        assert!((dt - df).abs() <= tol * (1.0 + df), "|R[{j},{j}]| {dt} vs flat {df} (nb={nb})");
    }
}

/// The tiled Cholesky factor must match the flat one directly (the
/// factorization is unique, so only rounding separates the two paths).
fn check_tiled_potrf_s<S: Scalar>(n: usize, nb: usize, seed: u64, tol: f64) {
    let g = mat_s::<S>(n, n, seed);
    let mut a = Matrix::<S>::identity(n, n);
    polar_blas::scale(S::from_f64(1.0 + n as f64), a.as_mut());
    gemm(Op::ConjTrans, Op::NoTrans, S::ONE, g.as_ref(), g.as_ref(), S::ONE, a.as_mut());
    let mut at = a.clone();
    let mut af = a;
    potrf_tiled(Uplo::Lower, &mut at, nb).unwrap();
    potrf(Uplo::Lower, &mut af).unwrap();
    let lf = Matrix::from_fn(n, n, |i, j| if i >= j { af[(i, j)] } else { S::ZERO });
    let mut diff = Matrix::from_fn(n, n, |i, j| if i >= j { at[(i, j)] } else { S::ZERO });
    add(-S::ONE, lf.as_ref(), S::ONE, diff.as_mut());
    let err = norm(Norm::Fro, diff.as_ref()).to_f64();
    let scale = norm(Norm::Fro, lf.as_ref()).to_f64();
    assert!(err <= tol * (1.0 + scale), "||L_tiled - L_flat|| = {err} (n={n} nb={nb})");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn qr_residual_and_orthogonality(m in 1usize..40, extra in 0usize..20, seed in 0u64..500, ib in 1usize..12) {
        let n = m.min(1 + seed as usize % 20);
        let m = n + extra;
        let a0 = mat(m, n, seed);
        let mut a = a0.clone();
        let f = geqrf_blocked(&mut a, ib);
        let q = orgqr(&a, &f);
        let r = extract_r(&a);
        let mut qr = Matrix::<f64>::zeros(m, n);
        gemm(Op::NoTrans, Op::NoTrans, 1.0, q.as_ref(), r.as_ref(), 0.0, qr.as_mut());
        let scale: f64 = norm(Norm::Fro, a0.as_ref());
        prop_assert!(fro_diff(&qr, &a0) <= 1e-12 * (1.0 + scale), "ib={ib}");
        // R upper triangular
        for j in 0..n {
            for i in j + 1..r.nrows() {
                prop_assert_eq!(r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn qr_block_size_invariance(seed in 0u64..200) {
        // the factorization's Q R product must not depend on the block size
        let a0 = mat(30, 18, seed);
        let mut a1 = a0.clone();
        let mut a2 = a0.clone();
        let f1 = geqrf_blocked(&mut a1, 1);
        let f2 = geqrf_blocked(&mut a2, 7);
        // R is unique up to signs; compare |diag|
        for j in 0..18 {
            prop_assert!((a1[(j, j)].abs() - a2[(j, j)].abs()).abs() < 1e-10);
        }
        let _ = (f1, f2);
    }

    #[test]
    fn cholesky_of_gram_matrix(n in 1usize..30, k in 1usize..30, seed in 0u64..300) {
        // A = G^T G + eps I is SPD for any G
        let g = mat(k, n, seed);
        let mut a = Matrix::<f64>::identity(n, n);
        polar_blas::scale(1e-6 + n as f64, a.as_mut());
        gemm(Op::Trans, Op::NoTrans, 1.0, g.as_ref(), g.as_ref(), 1.0, a.as_mut());
        let a0 = a.clone();
        prop_assert!(potrf(Uplo::Lower, &mut a).is_ok());
        let l = Matrix::from_fn(n, n, |i, j| if i >= j { a[(i, j)] } else { 0.0 });
        let mut recon = Matrix::<f64>::zeros(n, n);
        gemm(Op::NoTrans, Op::ConjTrans, 1.0, l.as_ref(), l.as_ref(), 0.0, recon.as_mut());
        let scale: f64 = norm(Norm::Fro, a0.as_ref());
        prop_assert!(fro_diff(&recon, &a0) <= 1e-11 * (1.0 + scale));
    }

    #[test]
    fn lu_solve_roundtrip(n in 1usize..25, nrhs in 1usize..5, seed in 0u64..300) {
        let a = {
            // diagonally dominated => comfortably nonsingular
            let mut a = mat(n, n, seed);
            for i in 0..n {
                a[(i, i)] += 3.0 * n as f64 * a[(i, i)].signum().max(0.5);
            }
            a
        };
        let x_true = mat(n, nrhs, seed ^ 0xabc);
        let mut b = Matrix::<f64>::zeros(n, nrhs);
        gemm(Op::NoTrans, Op::NoTrans, 1.0, a.as_ref(), x_true.as_ref(), 0.0, b.as_mut());
        let f = getrf(&a).unwrap();
        getrs(Op::NoTrans, &f, &mut b).unwrap();
        prop_assert!(fro_diff(&b, &x_true) < 1e-8 * (1.0 + norm::<f64>(Norm::Fro, x_true.as_ref())));
    }

    #[test]
    fn posv_matches_getrs_on_spd(n in 1usize..20, seed in 0u64..200) {
        let g = mat(n, n, seed);
        let mut a = Matrix::<f64>::identity(n, n);
        polar_blas::scale(n as f64 + 1.0, a.as_mut());
        gemm(Op::Trans, Op::NoTrans, 1.0, g.as_ref(), g.as_ref(), 1.0, a.as_mut());
        let b0 = mat(n, 2, seed ^ 0x55);
        let mut b_chol = b0.clone();
        let mut a_chol = a.clone();
        posv(&mut a_chol, &mut b_chol).unwrap();
        let f = getrf(&a).unwrap();
        let mut b_lu = b0.clone();
        getrs(Op::NoTrans, &f, &mut b_lu).unwrap();
        prop_assert!(fro_diff(&b_chol, &b_lu) < 1e-8);
    }

    #[test]
    fn tsqr_equals_flat_qr_in_span(rows in 50usize..400, cols in 1usize..8, seed in 0u64..200) {
        let a = mat(rows, cols, seed);
        let (q, r) = tsqr(&a);
        // Q R = A
        let mut qr = Matrix::<f64>::zeros(rows, cols);
        gemm(Op::NoTrans, Op::NoTrans, 1.0, q.as_ref(), r.as_ref(), 0.0, qr.as_mut());
        let scale: f64 = norm(Norm::Fro, a.as_ref());
        prop_assert!(fro_diff(&qr, &a) <= 1e-12 * (1.0 + scale));
    }

    #[test]
    fn norm2est_bounded_by_fro(m in 1usize..40, n in 1usize..40, seed in 0u64..300) {
        let a = mat(m, n, seed);
        let est = norm2est(&a).estimate;
        let fro: f64 = norm(Norm::Fro, a.as_ref());
        // sigma_max <= fro; power iteration converges from below-ish but
        // never exceeds fro beyond roundoff
        prop_assert!(est <= fro * (1.0 + 1e-10));
        // and est >= max column norm / small factor
        let max_col = (0..n).map(|j| polar_blas::nrm2::<f64>(a.col(j))).fold(0.0f64, f64::max);
        prop_assert!(est >= max_col * 0.5, "est {est} vs col {max_col}");
    }

    #[test]
    fn svd_eig_consistency_on_gram(n in 2usize..16, seed in 0u64..150) {
        // eig(A^T A) eigenvalues == svd(A) sigma^2
        let a = mat(n + 3, n, seed);
        let svd = jacobi_svd(&a).unwrap();
        let mut gram = Matrix::<f64>::zeros(n, n);
        gemm(Op::Trans, Op::NoTrans, 1.0, a.as_ref(), a.as_ref(), 0.0, gram.as_mut());
        let eig = jacobi_eig(&gram).unwrap();
        for (l, s) in eig.values.iter().zip(&svd.sigma) {
            prop_assert!((l - s * s).abs() < 1e-9 * (1.0 + s * s), "{l} vs {}", s * s);
        }
    }

    #[test]
    fn tiled_qr_matches_flat_all_types(n in 1usize..36, extra in 0usize..24, nb in 4usize..48, seed in 0u64..300) {
        // covers square (extra = 0), tall, prime shapes, m % nb != 0, and
        // nb > n (single-tile degenerate case) across all four scalar types
        let m = n + extra;
        check_tiled_qr_s::<f32>(m, n, nb, seed, 2e-3);
        check_tiled_qr_s::<f64>(m, n, nb, seed, 1e-11);
        check_tiled_qr_s::<Complex32>(m, n, nb, seed ^ 0x9e37, 2e-3);
        check_tiled_qr_s::<Complex64>(m, n, nb, seed ^ 0x9e37, 1e-11);
    }

    #[test]
    fn tiled_potrf_matches_flat_all_types(n in 1usize..40, nb in 4usize..48, seed in 0u64..300) {
        check_tiled_potrf_s::<f32>(n, nb, seed, 2e-4);
        check_tiled_potrf_s::<f64>(n, nb, seed, 1e-12);
        check_tiled_potrf_s::<Complex32>(n, nb, seed ^ 0x517c, 2e-4);
        check_tiled_potrf_s::<Complex64>(n, nb, seed ^ 0x517c, 1e-12);
    }

    #[test]
    fn geqrf_then_unmqr_preserves_norms(m in 2usize..30, seed in 0u64..200) {
        use polar_lapack::unmqr;
        let n = 1 + (seed as usize % m.min(15));
        let a0 = mat(m, n, seed);
        let mut a = a0.clone();
        let f = geqrf(&mut a);
        let c0 = mat(m, 3, seed ^ 0x77);
        let mut c = c0.clone();
        unmqr(Op::ConjTrans, &a, &f, &mut c);
        // unitary application preserves Frobenius norm
        let n0: f64 = norm(Norm::Fro, c0.as_ref());
        let n1: f64 = norm(Norm::Fro, c.as_ref());
        prop_assert!((n0 - n1).abs() <= 1e-11 * (1.0 + n0));
    }
}

/// Two deterministic-replay tiled solves must be bitwise identical. The
/// `POLAR_DETERMINISTIC` flag is latched by the thread-pool shim on first
/// use, so it is set up front; independently of whether replay mode
/// engaged before another test touched the pool, the tile DAG's results
/// are schedule-independent by construction, so exact equality must hold.
#[test]
fn tiled_qr_deterministic_bitwise_replay() {
    std::env::set_var("POLAR_DETERMINISTIC", "1");
    let run_f64 = || {
        let a = mat(67, 45, 42);
        let f = geqrf_tiled(&a, 16);
        (orgqr_tiled(&f, 45), f.extract_r())
    };
    let (q1, r1) = run_f64();
    let (q2, r2) = run_f64();
    for (x, y) in [(&q1, &q2), (&r1, &r2)] {
        for j in 0..x.ncols() {
            for i in 0..x.nrows() {
                assert_eq!(x[(i, j)].to_bits(), y[(i, j)].to_bits(), "f64 at ({i},{j})");
            }
        }
    }
    let run_z64 = || {
        let a = mat_s::<Complex64>(52, 38, 7);
        let f = geqrf_tiled(&a, 16);
        (orgqr_tiled(&f, 38), f.extract_r())
    };
    let (q1, r1) = run_z64();
    let (q2, r2) = run_z64();
    for (x, y) in [(&q1, &q2), (&r1, &r2)] {
        for j in 0..x.ncols() {
            for i in 0..x.nrows() {
                let (u, v) = (x[(i, j)], y[(i, j)]);
                assert_eq!(u.re.to_bits(), v.re.to_bits(), "z64 re at ({i},{j})");
                assert_eq!(u.im.to_bits(), v.im.to_bits(), "z64 im at ({i},{j})");
            }
        }
    }
}
