//! Synthetic test-matrix generator (paper §7.1).
//!
//! "For these experiments, the generator creates random unitary matrices
//! `U, V`, obtained through the QR factorization of random matrices, and a
//! diagonal matrix `Σ` based on the desired condition number of the matrix
//! `A`. It then multiplies these together, forming `A = U Σ V^H` from its
//! SVD."
//!
//! The condition number drives QDWH convergence: κ = 1e16 (ill-conditioned)
//! forces the worst case of 3 QR-based + 3 Cholesky-based iterations.

use polar_blas::gemm;
use polar_matrix::{Matrix, Op};
use polar_scalar::{Real, Scalar};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of the singular value distribution of a generated matrix.
#[derive(Debug, Clone, PartialEq)]
pub enum SigmaDistribution {
    /// `sigma_i = kappa^{-(i-1)/(n-1)}`: geometric decay from 1 to 1/κ
    /// (LAPACK `latms` mode 3, the paper's ill-conditioned default).
    Geometric,
    /// `sigma_i = 1 - (1 - 1/kappa) (i-1)/(n-1)`: arithmetic decay
    /// (LAPACK mode 4).
    Arithmetic,
    /// One singular value at 1, the rest clustered at 1/κ (LAPACK mode 1).
    ClusteredAtInverseKappa,
    /// Uniform random in `[1/kappa, 1]`.
    Random,
    /// Explicit values (κ is ignored); must have length `min(m, n)`.
    Custom(Vec<f64>),
}

/// Test-matrix specification.
#[derive(Debug, Clone)]
pub struct MatrixSpec {
    pub m: usize,
    pub n: usize,
    /// Target 2-norm condition number κ = σ_max / σ_min.
    pub cond: f64,
    pub distribution: SigmaDistribution,
    pub seed: u64,
}

impl MatrixSpec {
    /// The paper's ill-conditioned benchmark configuration: κ = 1e16,
    /// geometric spectrum.
    pub fn ill_conditioned(n: usize, seed: u64) -> Self {
        Self { m: n, n, cond: 1e16, distribution: SigmaDistribution::Geometric, seed }
    }

    /// Well-conditioned configuration (κ = 10): QDWH needs only
    /// Cholesky-based iterations.
    pub fn well_conditioned(n: usize, seed: u64) -> Self {
        Self { m: n, n, cond: 10.0, distribution: SigmaDistribution::Geometric, seed }
    }

    /// Rectangular (`m >= n`) variant of an existing spec.
    pub fn rectangular(mut self, m: usize) -> Self {
        assert!(m >= self.n, "generator requires m >= n");
        self.m = m;
        self
    }

    /// Cap the condition number at what a scalar type with machine
    /// epsilon `eps` can meaningfully resolve: κ ≤ 0.1/eps keeps the
    /// smallest singular value an order of magnitude above the noise
    /// floor, so the realized spectrum still matches the prescription.
    /// Lets one master cond sweep serve all four types (e.g. κ = 1e13
    /// stays 1e13 in f64 but caps near 8e5 in f32).
    pub fn cond_capped(mut self, eps: f64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0, 1)");
        self.cond = self.cond.min(0.1 / eps);
        self
    }

    /// The singular values this spec prescribes.
    pub fn singular_values(&self) -> Vec<f64> {
        let k = self.m.min(self.n);
        assert!(k > 0, "empty matrix");
        assert!(self.cond >= 1.0, "condition number must be >= 1");
        match &self.distribution {
            SigmaDistribution::Geometric => (0..k)
                .map(|i| if k == 1 { 1.0 } else { self.cond.powf(-(i as f64) / (k as f64 - 1.0)) })
                .collect(),
            SigmaDistribution::Arithmetic => (0..k)
                .map(|i| {
                    if k == 1 {
                        1.0
                    } else {
                        1.0 - (1.0 - self.cond.recip()) * (i as f64) / (k as f64 - 1.0)
                    }
                })
                .collect(),
            SigmaDistribution::ClusteredAtInverseKappa => {
                let mut v = vec![self.cond.recip(); k];
                v[0] = 1.0;
                v
            }
            SigmaDistribution::Random => {
                let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(0x5151));
                let lo = self.cond.recip();
                let mut v: Vec<f64> = (0..k).map(|_| rng.gen_range(lo..=1.0)).collect();
                // pin the extremes so the realized condition number is exact
                v[0] = 1.0;
                if k > 1 {
                    v[k - 1] = lo;
                }
                v.sort_by(|a, b| b.partial_cmp(a).unwrap());
                v
            }
            SigmaDistribution::Custom(vals) => {
                assert_eq!(vals.len(), k, "custom spectrum length mismatch");
                vals.clone()
            }
        }
    }
}

/// Standard-normal sample via Box–Muller (`rand` offers only uniforms in
/// the offline crate set).
fn gauss(rng: &mut StdRng) -> (f64, f64) {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f64::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

/// Random Gaussian matrix (real or complex according to `S`).
pub fn random_gaussian<S: Scalar>(m: usize, n: usize, rng: &mut StdRng) -> Matrix<S> {
    Matrix::from_fn(m, n, |_, _| {
        let (g1, g2) = gauss(rng);
        if S::IS_COMPLEX {
            S::from_parts(S::Real::from_f64(g1), S::Real::from_f64(g2))
        } else {
            S::from_real(S::Real::from_f64(g1))
        }
    })
}

/// Haar-like random matrix with orthonormal columns (`m x k`), obtained as
/// the Q factor of a Gaussian matrix with the sign ambiguity fixed by
/// making `diag(R)` positive.
pub fn random_orthonormal<S: Scalar>(m: usize, k: usize, rng: &mut StdRng) -> Matrix<S> {
    assert!(m >= k);
    let mut g = random_gaussian::<S>(m, k, rng);
    let f = polar_lapack_geqrf(&mut g);
    let mut q = polar_lapack_orgqr(&g, &f);
    // fix column phases: multiply column j by sign(R[j,j])^{-1}
    for j in 0..k {
        let rjj = g[(j, j)];
        let a = rjj.abs();
        if a > S::Real::ZERO {
            let phase = rjj.mul_real(a.recip()).conj();
            for i in 0..m {
                q[(i, j)] *= phase;
            }
        }
    }
    q
}

// thin wrappers keep the dependency surface obvious
use polar_lapack::{geqrf as polar_lapack_geqrf, orgqr as polar_lapack_orgqr};

/// Generate `A = U Σ V^H` per the spec. Returns the matrix and the exact
/// singular values used, so tests can validate spectra.
pub fn generate<S: Scalar>(spec: &MatrixSpec) -> (Matrix<S>, Vec<f64>) {
    let (m, n) = (spec.m, spec.n);
    assert!(m >= n, "generator requires m >= n (transpose the spec)");
    let sigma = spec.singular_values();
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let u = random_orthonormal::<S>(m, n, &mut rng);
    let v = random_orthonormal::<S>(n, n, &mut rng);
    // US = U * diag(sigma)
    let mut us = u;
    for j in 0..n {
        let s = S::Real::from_f64(sigma[j]);
        for i in 0..m {
            us[(i, j)] = us[(i, j)].mul_real(s);
        }
    }
    let mut a = Matrix::<S>::zeros(m, n);
    gemm(Op::NoTrans, Op::ConjTrans, S::ONE, us.as_ref(), v.as_ref(), S::ZERO, a.as_mut());
    (a, sigma)
}

/// Convenience: generate just the matrix.
pub fn generate_matrix<S: Scalar>(spec: &MatrixSpec) -> Matrix<S> {
    generate::<S>(spec).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use polar_matrix::Norm;
    use polar_scalar::Complex64;

    #[test]
    fn geometric_spectrum_hits_cond() {
        let spec = MatrixSpec::ill_conditioned(10, 1);
        let s = spec.singular_values();
        assert_eq!(s.len(), 10);
        assert!((s[0] - 1.0).abs() < 1e-15);
        assert!((s[9] - 1e-16).abs() < 1e-22);
        for w in s.windows(2) {
            assert!(w[0] > w[1]);
        }
    }

    #[test]
    fn arithmetic_spectrum_endpoints() {
        let spec = MatrixSpec {
            m: 5,
            n: 5,
            cond: 100.0,
            distribution: SigmaDistribution::Arithmetic,
            seed: 0,
        };
        let s = spec.singular_values();
        assert!((s[0] - 1.0).abs() < 1e-15);
        assert!((s[4] - 0.01).abs() < 1e-12);
    }

    #[test]
    fn generated_matrix_has_prescribed_spectrum() {
        let spec = MatrixSpec {
            m: 12,
            n: 8,
            cond: 1e4,
            distribution: SigmaDistribution::Geometric,
            seed: 42,
        };
        let (a, sigma) = generate::<f64>(&spec);
        let svd = polar_lapack::jacobi_svd(&a).unwrap();
        for (computed, expected) in svd.sigma.iter().zip(&sigma) {
            assert!(
                (computed - expected).abs() <= 1e-10 * (1.0 + expected),
                "{computed} vs {expected}"
            );
        }
    }

    #[test]
    fn orthonormal_factor_is_orthonormal() {
        let mut rng = StdRng::seed_from_u64(3);
        let q = random_orthonormal::<f64>(20, 7, &mut rng);
        let mut qhq = Matrix::<f64>::zeros(7, 7);
        gemm(Op::ConjTrans, Op::NoTrans, 1.0, q.as_ref(), q.as_ref(), 0.0, qhq.as_mut());
        for j in 0..7 {
            for i in 0..7 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((qhq[(i, j)] - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn complex_generation_norm_near_one() {
        let spec = MatrixSpec::well_conditioned(16, 7);
        let (a, _) = generate::<Complex64>(&spec);
        // sigma_max = 1, so ||A||_2 = 1 and ||A||_F <= sqrt(n)
        let fro: f64 = polar_blas::norm(Norm::Fro, a.as_ref());
        assert!(fro <= 4.0 + 1e-9);
        assert!(fro >= 1.0 - 1e-9);
    }

    #[test]
    fn deterministic_by_seed() {
        let spec = MatrixSpec::well_conditioned(6, 11);
        let (a1, _) = generate::<f64>(&spec);
        let (a2, _) = generate::<f64>(&spec);
        assert_eq!(a1, a2);
        let mut spec2 = spec.clone();
        spec2.seed = 12;
        let (a3, _) = generate::<f64>(&spec2);
        assert_ne!(a1, a3);
    }

    #[test]
    fn clustered_spectrum() {
        let spec = MatrixSpec {
            m: 6,
            n: 6,
            cond: 1e8,
            distribution: SigmaDistribution::ClusteredAtInverseKappa,
            seed: 5,
        };
        let s = spec.singular_values();
        assert_eq!(s[0], 1.0);
        assert!(s[1..].iter().all(|&x| (x - 1e-8).abs() < 1e-20));
    }

    #[test]
    fn cond_capped_per_type() {
        let spec = MatrixSpec::ill_conditioned(8, 0); // kappa = 1e16
        assert_eq!(spec.clone().cond_capped(f64::EPSILON).cond, 0.1 / f64::EPSILON);
        assert_eq!(spec.clone().cond_capped(f32::EPSILON as f64).cond, 0.1 / f32::EPSILON as f64);
        // already-modest conds pass through unchanged
        let well = MatrixSpec::well_conditioned(8, 0);
        assert_eq!(well.clone().cond_capped(f32::EPSILON as f64).cond, well.cond);
    }

    #[test]
    #[should_panic(expected = "m >= n")]
    fn rejects_wide() {
        let spec = MatrixSpec {
            m: 3,
            n: 5,
            cond: 10.0,
            distribution: SigmaDistribution::Geometric,
            seed: 0,
        };
        let _ = generate::<f64>(&spec);
    }
}
