//! Property-based tests of the analytic performance model: physical
//! sanity over random configurations.

use polar_sim::machine::NodeSpec;
use polar_sim::{estimate_qdwh_time, qdwh_flops, Implementation};
use proptest::prelude::*;

fn nodes_strategy() -> impl Strategy<Value = usize> {
    prop_oneof![Just(1usize), Just(2), Just(4), Just(8), Just(16), Just(32)]
}

fn n_strategy() -> impl Strategy<Value = usize> {
    (10usize..300).prop_map(|k| k * 1000)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn time_positive_and_finite(nodes in nodes_strategy(), n in n_strategy()) {
        for node in [NodeSpec::summit(), NodeSpec::frontier()] {
            for imp in [Implementation::SlateGpu, Implementation::SlateCpu, Implementation::ScaLapack] {
                let r = estimate_qdwh_time(&node, nodes, imp, n, 320, 3, 3);
                prop_assert!(r.seconds > 0.0 && r.seconds.is_finite());
                prop_assert!(r.tflops > 0.0 && r.tflops.is_finite());
            }
        }
    }

    #[test]
    fn time_monotone_in_n(nodes in nodes_strategy(), n in 10usize..150) {
        let node = NodeSpec::summit();
        let n1 = n * 1000;
        let n2 = n1 * 2;
        for imp in [Implementation::SlateGpu, Implementation::ScaLapack] {
            let t1 = estimate_qdwh_time(&node, nodes, imp, n1, 320, 3, 3).seconds;
            let t2 = estimate_qdwh_time(&node, nodes, imp, n2, 320, 3, 3).seconds;
            prop_assert!(t2 > t1, "{imp:?}: bigger problems take longer");
        }
    }

    #[test]
    fn time_monotone_in_nodes(n in n_strategy()) {
        // more nodes never slow the modeled run down (same nb, same impl)
        let node = NodeSpec::summit();
        for imp in [Implementation::SlateGpu, Implementation::SlateCpu] {
            let mut prev = f64::MAX;
            for nodes in [1usize, 2, 4, 8, 16, 32] {
                let t = estimate_qdwh_time(&node, nodes, imp, n, 320, 3, 3).seconds;
                prop_assert!(t <= prev * 1.0001, "{imp:?} nodes={nodes}");
                prev = t;
            }
        }
    }

    #[test]
    fn more_iterations_cost_more(nodes in nodes_strategy(), n in n_strategy()) {
        let node = NodeSpec::frontier();
        let lo = estimate_qdwh_time(&node, nodes, Implementation::SlateGpu, n, 320, 0, 2);
        let hi = estimate_qdwh_time(&node, nodes, Implementation::SlateGpu, n, 320, 3, 3);
        prop_assert!(hi.seconds > lo.seconds);
        prop_assert!(qdwh_flops(n, 3, 3) > qdwh_flops(n, 0, 2));
    }

    #[test]
    fn gpu_beats_cpu_once_saturated(nodes in nodes_strategy(), n in n_strategy()) {
        // At small n / many ranks the GPUs starve and CPU can win — the
        // paper's Figs. 2-3 show exactly that crossover (speedup ~1x at
        // n = 20k on 32 nodes). Once each rank holds enough tiles to fill
        // its devices, GPU must win decisively.
        let node = NodeSpec::summit();
        let t = n / 320;
        let ranks = nodes * node.slate_ranks_per_node;
        prop_assume!((t * t) / ranks > 4000);
        let gpu = estimate_qdwh_time(&node, nodes, Implementation::SlateGpu, n, 320, 3, 3);
        let cpu = estimate_qdwh_time(&node, nodes, Implementation::SlateCpu, n, 320, 3, 3);
        prop_assert!(gpu.seconds < cpu.seconds, "GPU {} vs CPU {}", gpu.seconds, cpu.seconds);
    }

    #[test]
    fn rate_never_exceeds_hardware(nodes in nodes_strategy(), n in n_strategy(), nbk in 2usize..20) {
        // reported Tflop/s can never exceed the aggregate theoretical peak
        let nb = nbk * 32;
        for node in [NodeSpec::summit(), NodeSpec::frontier()] {
            let r = estimate_qdwh_time(&node, nodes, Implementation::SlateGpu, n, nb, 3, 3);
            let peak = nodes as f64 * node.node_peak_gflops(polar_sim::ExecTarget::GpuAccelerated) / 1e3;
            prop_assert!(r.tflops < peak, "{} > peak {}", r.tflops, peak);
        }
    }

    #[test]
    fn fork_join_overhead_nonnegative(nodes in nodes_strategy(), n in n_strategy()) {
        // ScaLAPACK (fork-join CPU) is never faster than SLATE CPU at the
        // same node count: same hardware, strictly less overlap
        let node = NodeSpec::summit();
        let tb = estimate_qdwh_time(&node, nodes, Implementation::SlateCpu, n, 192, 3, 3);
        let fj = estimate_qdwh_time(&node, nodes, Implementation::ScaLapack, n, 192, 3, 3);
        prop_assert!(fj.seconds >= tb.seconds * 0.9, "fj {} vs tb {}", fj.seconds, tb.seconds);
    }
}
