//! Hardware models for the paper's two testbeds (§7.1) and an
//! implementation of the runtime's [`ExecutionModel`] on top of them.

use polar_runtime::{ExecutionModel, KernelKind, Task};
use serde::{Deserialize, Serialize};

/// Execution target: which resources run the compute kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecTarget {
    /// CPU cores only (the paper's "SLATE CPU" and ScaLAPACK series).
    CpuOnly,
    /// GPU-accelerated: trailing-update (gemm-like) kernels on the
    /// accelerators, panel kernels on the host, PCIe/NVLink staging costs
    /// on every offloaded tile (the paper's "SLATE GPU" series).
    GpuAccelerated,
}

/// One node's hardware parameters. Rates are *achievable dgemm* rates,
/// not theoretical peaks (peaks are recorded separately for the
/// percent-of-peak numbers the paper quotes).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeSpec {
    pub name: &'static str,
    /// Usable CPU cores per node (OS-reserved cores excluded, §7.1).
    pub cpu_cores: usize,
    /// Achievable per-core dgemm rate, Gflop/s.
    pub cpu_core_gflops: f64,
    /// Theoretical per-core peak, Gflop/s.
    pub cpu_core_peak_gflops: f64,
    /// Accelerator devices per node (GPUs on Summit, GCDs on Frontier).
    pub gpus: usize,
    /// Achievable per-device dgemm rate, Gflop/s.
    pub gpu_gflops: f64,
    /// Theoretical per-device peak, Gflop/s.
    pub gpu_peak_gflops: f64,
    /// Host<->device bandwidth per device, GB/s (NVLink / Infinity Fabric).
    pub host_device_gbs: f64,
    /// Node injection bandwidth into the network, GB/s per direction.
    pub nic_gbs: f64,
    /// Inter-node message latency, microseconds.
    pub latency_us: f64,
    /// Whether the NIC is attached to the GPUs (Frontier) or the CPUs
    /// (Summit) — with GPU-attached NICs, GPU-aware MPI avoids the
    /// host staging hop (§5, §7.2).
    pub gpu_attached_nic: bool,
    /// MPI ranks per node used by the paper's runs.
    pub slate_ranks_per_node: usize,
    /// MPI ranks per node for the ScaLAPACK baseline (one per core).
    pub scalapack_ranks_per_node: usize,
    /// Tiles-in-flight per rank needed to saturate one accelerator
    /// (occupancy constant of the analytic model).
    pub gpu_saturation_tiles: f64,
}

impl NodeSpec {
    /// Summit (§7.1): 2x22-core POWER9 (2 cores reserved -> 42 usable),
    /// 6 V100 GPUs, NVLink, dual-rail EDR InfiniBand.
    pub fn summit() -> Self {
        NodeSpec {
            name: "summit",
            cpu_cores: 42,
            // POWER9 @3.07 GHz, 8 DP flops/cycle ~ 24.5 peak; ~70% in dgemm
            cpu_core_gflops: 17.0,
            cpu_core_peak_gflops: 24.5,
            gpus: 6,
            // V100: 7.8 TF peak, ~6.7 TF dgemm
            gpu_gflops: 5800.0,
            gpu_peak_gflops: 7800.0,
            host_device_gbs: 50.0,
            // dual-rail EDR 100 Gb/s: ~23 GB/s effective injection
            nic_gbs: 23.0,
            latency_us: 1.5,
            gpu_attached_nic: false,
            slate_ranks_per_node: 2,
            scalapack_ranks_per_node: 42,
            gpu_saturation_tiles: 6000.0,
        }
    }

    /// Frontier (§7.1): 64-core EPYC (8 reserved -> 56 usable), 4 MI250X
    /// = 8 GCDs, Infinity Fabric, Slingshot with GPU-attached NICs.
    pub fn frontier() -> Self {
        NodeSpec {
            name: "frontier",
            cpu_cores: 56,
            // EPYC "Trento" @2 GHz, 16 DP flops/cycle ~ 32 peak; ~75% dgemm
            cpu_core_gflops: 24.0,
            cpu_core_peak_gflops: 32.0,
            gpus: 8,
            // MI250X GCD: 23.9 TF vector peak, ~15 TF sustained dgemm
            gpu_gflops: 13000.0,
            gpu_peak_gflops: 23900.0,
            host_device_gbs: 36.0,
            // 4x Slingshot NICs ~ 25 GB/s each
            nic_gbs: 100.0,
            latency_us: 2.0,
            gpu_attached_nic: true,
            slate_ranks_per_node: 8,
            scalapack_ranks_per_node: 56,
            gpu_saturation_tiles: 1500.0,
        }
    }

    /// Aggregate achievable compute rate for a target, Gflop/s per node.
    pub fn node_gflops(&self, target: ExecTarget) -> f64 {
        match target {
            ExecTarget::CpuOnly => self.cpu_cores as f64 * self.cpu_core_gflops,
            ExecTarget::GpuAccelerated => self.gpus as f64 * self.gpu_gflops,
        }
    }

    /// Aggregate theoretical peak for a target, Gflop/s per node.
    pub fn node_peak_gflops(&self, target: ExecTarget) -> f64 {
        match target {
            ExecTarget::CpuOnly => self.cpu_cores as f64 * self.cpu_core_peak_gflops,
            ExecTarget::GpuAccelerated => self.gpus as f64 * self.gpu_peak_gflops,
        }
    }
}

/// A cluster of identical nodes plus the execution configuration, usable
/// as the runtime's [`ExecutionModel`] for discrete-event simulation.
#[derive(Debug, Clone)]
pub struct ClusterModel {
    pub node: NodeSpec,
    pub nodes: usize,
    pub target: ExecTarget,
    /// MPI ranks per node for this configuration.
    pub ranks_per_node: usize,
    /// Tile size (affects per-tile kernel efficiency).
    pub nb: usize,
}

impl ClusterModel {
    pub fn slate(node: NodeSpec, nodes: usize, target: ExecTarget, nb: usize) -> Self {
        let ranks_per_node = node.slate_ranks_per_node;
        Self { node, nodes, target, ranks_per_node, nb }
    }

    pub fn scalapack(node: NodeSpec, nodes: usize, nb: usize) -> Self {
        let ranks_per_node = node.scalapack_ranks_per_node;
        Self { node, nodes, target: ExecTarget::CpuOnly, ranks_per_node, nb }
    }

    pub fn total_ranks(&self) -> usize {
        self.nodes * self.ranks_per_node
    }

    fn node_of(&self, rank: usize) -> usize {
        rank / self.ranks_per_node
    }

    /// Per-kernel efficiency relative to the dgemm rate: panel kernels are
    /// memory-bound / short, trailing updates run near dgemm speed.
    fn kernel_efficiency(&self, kind: KernelKind) -> f64 {
        match kind {
            KernelKind::Gemm | KernelKind::Herk => 0.92,
            KernelKind::Trsm | KernelKind::Tsmqr | KernelKind::Unmqr => 0.75,
            KernelKind::Geqrt | KernelKind::Tsqrt => 0.45,
            KernelKind::Potrf => 0.55,
            KernelKind::Geadd | KernelKind::Norm => 0.10,
            // whole-call QR spans blend panel and trailing-update work
            KernelKind::Geqrf => 0.55,
            KernelKind::Orgqr => 0.70,
            // service-level job spans and whole solver iterations never
            // appear in kernel DAGs; if one does, treat it as composite
            // work at blended efficiency
            KernelKind::Job | KernelKind::Iter | KernelKind::Other => 0.50,
        }
    }

    /// Tile-size utilization: unimodal with peaks at the paper's tuned
    /// sizes (GPU 320, CPU 192) — see `polar_sim::analytic` for the
    /// rationale. The GPU curve is scaled to the ~55% of dgemm rate that
    /// tuned-tile execution achieves on V100/MI250X.
    fn tile_utilization(&self, gpu: bool) -> f64 {
        let (sat, over_penalty, scale) = if gpu { (320.0, 0.6, 0.55) } else { (192.0, 0.35, 1.0) };
        let r = self.nb as f64 / sat;
        let up = ((1.9 * r) / (1.0 + r)).min(1.0);
        let over = 1.0 + over_penalty * (r - 1.0).max(0.0);
        (up / over) * scale
    }

    /// Rate in Gflop/s for one execution slot handling `kind`.
    fn slot_gflops(&self, kind: KernelKind) -> f64 {
        let eff = self.kernel_efficiency(kind);
        match self.target {
            ExecTarget::CpuOnly => {
                // slot = one core's share: ranks own cores/ranks_per_node
                // cores each, and slots() exposes that many units
                self.node.cpu_core_gflops * eff * self.tile_utilization(false)
            }
            ExecTarget::GpuAccelerated => {
                if kind.gpu_eligible() {
                    // slot = one device stream
                    self.node.gpu_gflops / self.gpus_per_rank() as f64
                        * eff
                        * self.tile_utilization(true)
                } else {
                    // panel kernels stay on host cores
                    self.node.cpu_core_gflops * eff * self.tile_utilization(false)
                }
            }
        }
    }

    fn gpus_per_rank(&self) -> usize {
        (self.node.gpus / self.ranks_per_node).max(1)
    }
}

impl ExecutionModel for ClusterModel {
    fn ranks(&self) -> usize {
        self.total_ranks()
    }

    fn slots(&self, _rank: usize) -> usize {
        match self.target {
            ExecTarget::CpuOnly => (self.node.cpu_cores / self.ranks_per_node).max(1),
            // one rank drives its GPUs plus its host cores; expose GPU
            // streams as the slots (2 per device keeps them fed)
            ExecTarget::GpuAccelerated => 2 * self.gpus_per_rank(),
        }
    }

    fn task_seconds(&self, task: &Task) -> f64 {
        let rate = self.slot_gflops(task.kind) * 1e9;
        let compute = if rate > 0.0 { task.flops / rate } else { 0.0 };
        // GPU kernels pay host<->device staging for their working set when
        // the NIC isn't GPU-attached (Summit) — SLATE caches tiles on the
        // device, so charge a fraction of the touched bytes
        let staging = if self.target == ExecTarget::GpuAccelerated && task.kind.gpu_eligible() {
            let touched: u64 = task.reads.iter().chain(task.writes.iter()).map(|t| t.bytes).sum();
            let reuse = 8.0; // tile cache hit ratio
            (touched as f64 / reuse) / (self.node.host_device_gbs * 1e9)
        } else {
            0.0
        };
        // fixed per-task overhead: kernel launch / task scheduling
        let overhead = match self.target {
            ExecTarget::GpuAccelerated => 6e-6,
            ExecTarget::CpuOnly => 8e-7,
        };
        compute + staging + overhead
    }

    fn message_seconds(&self, bytes: u64, from: usize, to: usize) -> f64 {
        if from == to {
            return 0.0;
        }
        let same_node = self.node_of(from) == self.node_of(to);
        if same_node {
            // shared-memory transfer: generous bandwidth, tiny latency
            2e-7 + bytes as f64 / (80.0e9)
        } else {
            let mut lat = self.node.latency_us * 1e-6;
            let mut bw = self.node.nic_gbs * 1e9 / self.ranks_per_node as f64;
            // Summit-style host-attached NIC with GPU data: extra hop
            // through host memory (no benefit from GPU-aware MPI, §7.2)
            if self.target == ExecTarget::GpuAccelerated && !self.node.gpu_attached_nic {
                lat += 2e-6;
                bw *= 0.8;
            }
            lat + bytes as f64 / bw
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polar_runtime::TileRef;

    fn gemm_task(flops: f64, nb: usize) -> Task {
        let bytes = (8 * nb * nb) as u64;
        Task {
            id: 0,
            kind: KernelKind::Gemm,
            flops,
            rank: 0,
            phase: 0,
            reads: vec![TileRef::new(0, 0, 0, bytes), TileRef::new(1, 0, 0, bytes)],
            writes: vec![TileRef::new(2, 0, 0, bytes)],
        }
    }

    #[test]
    fn summit_spec_matches_paper() {
        let s = NodeSpec::summit();
        assert_eq!(s.cpu_cores, 42); // 2 of 44 reserved for OS
        assert_eq!(s.gpus, 6);
        assert!(!s.gpu_attached_nic);
        assert_eq!(s.slate_ranks_per_node, 2); // 3 GPUs per rank
        assert_eq!(s.scalapack_ranks_per_node, 42); // 1 rank per core
    }

    #[test]
    fn frontier_spec_matches_paper() {
        let f = NodeSpec::frontier();
        assert_eq!(f.cpu_cores, 56); // 8 of 64 reserved
        assert_eq!(f.gpus, 8); // 4 MI250X = 8 GCDs
        assert!(f.gpu_attached_nic);
        assert_eq!(f.slate_ranks_per_node, 8); // 1 GCD per rank
    }

    #[test]
    fn gpu_node_much_faster_than_cpu_node() {
        let s = NodeSpec::summit();
        let ratio = s.node_gflops(ExecTarget::GpuAccelerated) / s.node_gflops(ExecTarget::CpuOnly);
        // the hardware ratio bounds the achievable speedup (~18x observed)
        assert!(ratio > 20.0 && ratio < 100.0, "ratio = {ratio}");
    }

    #[test]
    fn gemm_task_time_scales_with_rate() {
        let s = NodeSpec::summit();
        let nb = 320;
        let flops = 2.0 * (nb as f64).powi(3);
        let gpu = ClusterModel::slate(s.clone(), 1, ExecTarget::GpuAccelerated, nb);
        let cpu = ClusterModel::slate(s, 1, ExecTarget::CpuOnly, nb);
        let t_gpu = gpu.task_seconds(&gemm_task(flops, nb));
        let t_cpu = cpu.task_seconds(&gemm_task(flops, nb));
        assert!(t_gpu < t_cpu, "gpu {t_gpu} vs cpu {t_cpu}");
    }

    #[test]
    fn tile_utilization_prefers_tuned_sizes() {
        let s = NodeSpec::summit();
        // GPU: nb = 320 beats much smaller and slightly beats much larger
        let u = |nb: usize| {
            ClusterModel::slate(s.clone(), 1, ExecTarget::GpuAccelerated, nb).tile_utilization(true)
        };
        assert!(u(320) > u(64));
        assert!(u(320) > u(1024));
        // CPU: 192 is the sweet spot
        let c = |nb: usize| {
            ClusterModel::slate(s.clone(), 1, ExecTarget::CpuOnly, nb).tile_utilization(false)
        };
        assert!(c(192) > c(32));
        assert!(c(192) >= c(640) * 0.99);
    }

    #[test]
    fn intra_node_cheaper_than_inter_node() {
        let s = NodeSpec::summit();
        let m = ClusterModel::slate(s, 4, ExecTarget::CpuOnly, 192);
        let intra = m.message_seconds(1 << 20, 0, 1); // ranks 0,1 on node 0
        let inter = m.message_seconds(1 << 20, 0, m.ranks_per_node); // node 0 -> 1
        assert!(intra < inter);
        assert_eq!(m.message_seconds(1 << 20, 3, 3), 0.0);
    }

    #[test]
    fn summit_gpu_pays_host_nic_penalty() {
        let summit = ClusterModel::slate(NodeSpec::summit(), 2, ExecTarget::GpuAccelerated, 320);
        let frontier =
            ClusterModel::slate(NodeSpec::frontier(), 2, ExecTarget::GpuAccelerated, 320);
        let b = 4 << 20;
        let ts = summit.message_seconds(b, 0, summit.ranks_per_node);
        // normalize by nominal nic share to compare penalty structure
        let ts_nominal = summit.node.latency_us * 1e-6
            + b as f64 / (summit.node.nic_gbs * 1e9 / summit.ranks_per_node as f64);
        assert!(ts > ts_nominal, "host-attached NIC must cost extra");
        let tf = frontier.message_seconds(b, 0, frontier.ranks_per_node);
        let tf_nominal = frontier.node.latency_us * 1e-6
            + b as f64 / (frontier.node.nic_gbs * 1e9 / frontier.ranks_per_node as f64);
        assert!((tf - tf_nominal).abs() < 1e-12, "GPU-attached NIC has no extra hop");
    }
}
