//! Performance simulation of distributed QDWH on modeled hardware.
//!
//! The reproduced paper benchmarks on Summit (IBM POWER9 + 6 NVIDIA V100
//! per node) and Frontier (AMD EPYC + 4 MI250X = 8 GCDs per node). This
//! environment has neither machine, so — per the reproduction's
//! substitution policy — the *hardware* is modeled while the *algorithm*
//! (DAG shape, flop counts, communication volume, scheduling discipline)
//! is exact:
//!
//! * [`machine`] — node models with the published §7.1 specifications;
//! * [`dag`] — tile-granularity QDWH task graphs (the same loop nests a
//!   SLATE run executes), fed to the `polar-runtime` schedulers for
//!   discrete-event simulation;
//! * [`analytic`] — a closed-form roofline + critical-path model usable at
//!   full paper scale (n up to 300k, where the tile DAG would have 1e8
//!   tasks), cross-validated against the discrete-event results.
//!
//! Absolute Tflop/s are model outputs, not measurements; the reproduction
//! targets the *shape* of Figs. 2–6 (who wins, the ≈18x GPU-vs-ScaLAPACK
//! gap, growth with matrix size, scaling across nodes).

pub mod analytic;
pub mod dag;
pub mod kernel_flops;
pub mod machine;
pub mod real;

pub use analytic::{estimate_qdwh_time, estimate_zolo_time, AnalyticBreakdown, Implementation};
pub use dag::{qdwh_graph, QdwhGraphSpec};
pub use machine::{ClusterModel, ExecTarget, NodeSpec};
pub use real::{compare as sim_vs_real, MeasuredHost, SimVsReal};

/// The paper's §4 flop-count formula for square QDWH (real flops):
/// `(4/3)n³ + (8 + 2/3)n³·it_qr + (4 + 1/3)n³·it_chol + 2n³`.
pub fn qdwh_flops(n: usize, it_qr: usize, it_chol: usize) -> f64 {
    let n3 = (n as f64).powi(3);
    (4.0 / 3.0) * n3
        + (8.0 + 2.0 / 3.0) * n3 * it_qr as f64
        + (4.0 + 1.0 / 3.0) * n3 * it_chol as f64
        + 2.0 * n3
}

/// The paper's worst-case iteration profile for ill-conditioned matrices
/// (κ = 1e16): three QR-based plus three Cholesky-based iterations.
pub const ILL_CONDITIONED_PROFILE: (usize, usize) = (3, 3);

/// Well-conditioned profile (§4): no QR, two Cholesky iterations.
pub const WELL_CONDITIONED_PROFILE: (usize, usize) = (0, 2);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flops_formula_values() {
        // it_qr = it_chol = 0: (4/3 + 2) n^3
        let n = 100usize;
        let n3 = 1e6;
        assert!((qdwh_flops(n, 0, 0) - (4.0 / 3.0 + 2.0) * n3).abs() < 1.0);
        // the ill-conditioned profile from the paper
        let full = qdwh_flops(n, 3, 3);
        let expect = (4.0 / 3.0 + 3.0 * (8.0 + 2.0 / 3.0) + 3.0 * (4.0 + 1.0 / 3.0) + 2.0) * n3;
        assert!((full - expect).abs() < 1.0);
    }

    #[test]
    fn flops_monotone_in_iterations() {
        assert!(qdwh_flops(1000, 3, 3) > qdwh_flops(1000, 2, 3));
        assert!(qdwh_flops(1000, 3, 3) > qdwh_flops(1000, 3, 2));
    }
}
