//! Tile-granularity task DAGs for QDWH and its building blocks.
//!
//! These builders emit the same loop nests a SLATE execution runs
//! (PLASMA-style tile algorithms: `geqrt`/`tsqrt`/`unmqr`/`tsmqr` tile QR,
//! right-looking tile Cholesky, tile gemm/herk/trsm), with tasks assigned
//! to ranks by the 2D block-cyclic owner of their output tile. Fork-join
//! phase boundaries are recorded at every panel step, so one graph serves
//! both scheduling modes.

use polar_runtime::{GraphBuilder, KernelKind, TaskGraph, TileRef};

/// 2D process grid (column-major rank numbering, as in `polar-matrix`).
#[derive(Debug, Clone, Copy)]
pub struct Grid {
    pub p: usize,
    pub q: usize,
}

impl Grid {
    pub fn owner(&self, i: usize, j: usize) -> usize {
        (i % self.p) + (j % self.q) * self.p
    }

    pub fn squarest(nranks: usize) -> Self {
        let mut p = (nranks as f64).sqrt() as usize;
        while p > 1 && !nranks.is_multiple_of(p) {
            p -= 1;
        }
        let p = p.max(1);
        Self { p, q: nranks / p }
    }
}

/// Specification of a QDWH run to expand into a task graph.
#[derive(Debug, Clone)]
pub struct QdwhGraphSpec {
    /// Square matrix dimension in *tiles* (`n = t * nb`).
    pub t: usize,
    /// Tile size.
    pub nb: usize,
    /// Bytes per scalar (8 for f64, 16 for complex f64).
    pub scalar_bytes: usize,
    pub grid: Grid,
    /// QR-based iterations (3 for the paper's ill-conditioned runs).
    pub it_qr: usize,
    /// Cholesky-based iterations (3 for ill-conditioned).
    pub it_chol: usize,
}

struct Ctx<'a> {
    b: &'a mut GraphBuilder,
    grid: Grid,
    tile_flops: f64, // b^3 for the tile size
    bytes: u64,      // bytes per tile
}

impl Ctx<'_> {
    fn tile(&self, m: u32, i: usize, j: usize) -> TileRef {
        TileRef::new(m, i, j, self.bytes)
    }

    fn owner(&self, i: usize, j: usize) -> usize {
        self.grid.owner(i, j)
    }
}

// per-tile flop coefficients (x b^3); chosen so whole-operation totals
// match the LAPACK counts (e.g. tile QR sums to ~(4/3) n^3 + T overhead)
const F_GEMM: f64 = 2.0;
const F_HERK: f64 = 1.0;
const F_TRSM: f64 = 1.0;
const F_POTRF: f64 = 1.0 / 3.0;
const F_GEQRT: f64 = 2.0;
const F_TSQRT: f64 = 2.0;
const F_UNMQR: f64 = 3.0;
const F_TSMQR: f64 = 4.0;

/// Tile QR (PLASMA `geqrf`): factor an `mt x nt` tile grid.
fn dag_geqrf(ctx: &mut Ctx<'_>, a: u32, mt: usize, nt: usize) {
    let kt = mt.min(nt);
    for k in 0..kt {
        ctx.b.next_phase();
        let fk = ctx.tile_flops;
        let owner_kk = ctx.owner(k, k);
        let akk = ctx.tile(a, k, k);
        ctx.b.add_task(KernelKind::Geqrt, F_GEQRT * fk, owner_kk, vec![], vec![akk]);
        for j in k + 1..nt {
            let akj = ctx.tile(a, k, j);
            ctx.b.add_task(KernelKind::Unmqr, F_UNMQR * fk, ctx.owner(k, j), vec![akk], vec![akj]);
        }
        for i in k + 1..mt {
            let aik = ctx.tile(a, i, k);
            ctx.b.add_task(
                KernelKind::Tsqrt,
                F_TSQRT * fk,
                ctx.owner(i, k),
                vec![akk],
                vec![akk, aik],
            );
            for j in k + 1..nt {
                let akj = ctx.tile(a, k, j);
                let aij = ctx.tile(a, i, j);
                ctx.b.add_task(
                    KernelKind::Tsmqr,
                    F_TSMQR * fk,
                    ctx.owner(i, j),
                    vec![aik],
                    vec![akj, aij],
                );
            }
        }
    }
}

/// Generate the explicit thin Q of a tile QR (PLASMA `orgqr` dataflow):
/// reflectors applied in reverse panel order to an identity-seeded `q`.
fn dag_orgqr(ctx: &mut Ctx<'_>, a: u32, q: u32, mt: usize, nt: usize) {
    let kt = mt.min(nt);
    for k in (0..kt).rev() {
        ctx.b.next_phase();
        let fk = ctx.tile_flops;
        let akk = ctx.tile(a, k, k);
        for i in (k + 1..mt).rev() {
            let aik = ctx.tile(a, i, k);
            for j in k..nt {
                let qkj = ctx.tile(q, k, j);
                let qij = ctx.tile(q, i, j);
                ctx.b.add_task(
                    KernelKind::Tsmqr,
                    F_TSMQR * fk,
                    ctx.owner(i, j),
                    vec![aik],
                    vec![qkj, qij],
                );
            }
        }
        for j in k..nt {
            let qkj = ctx.tile(q, k, j);
            ctx.b.add_task(KernelKind::Unmqr, F_UNMQR * fk, ctx.owner(k, j), vec![akk], vec![qkj]);
        }
    }
}

/// Tile gemm `C (mt x nt) += A (mt x kt) * B (kt x nt)`, k-accumulation
/// serialized per output tile as in SLATE's gemm.
fn dag_gemm(ctx: &mut Ctx<'_>, c: u32, a: u32, b_id: u32, mt: usize, nt: usize, kt: usize) {
    for l in 0..kt {
        ctx.b.next_phase(); // SUMMA step boundary for the fork-join model
        for j in 0..nt {
            for i in 0..mt {
                let cij = ctx.tile(c, i, j);
                let ail = ctx.tile(a, i, l);
                let blj = ctx.tile(b_id, l, j);
                ctx.b.add_task(
                    KernelKind::Gemm,
                    F_GEMM * ctx.tile_flops,
                    ctx.owner(i, j),
                    vec![ail, blj],
                    vec![cij],
                );
            }
        }
    }
}

/// Tile herk: `C (nt x nt, lower) += A^H A` with `A` `mt x nt`.
fn dag_herk(ctx: &mut Ctx<'_>, c: u32, a: u32, mt: usize, nt: usize) {
    for l in 0..mt {
        ctx.b.next_phase();
        for j in 0..nt {
            for i in j..nt {
                let cij = ctx.tile(c, i, j);
                let ali = ctx.tile(a, l, i);
                let alj = ctx.tile(a, l, j);
                let (kind, f) =
                    if i == j { (KernelKind::Herk, F_HERK) } else { (KernelKind::Gemm, F_GEMM) };
                ctx.b.add_task(
                    kind,
                    f * ctx.tile_flops,
                    ctx.owner(i, j),
                    vec![ali, alj],
                    vec![cij],
                );
            }
        }
    }
}

/// Tile Cholesky (right-looking) of `a` (`nt x nt`, lower).
fn dag_potrf(ctx: &mut Ctx<'_>, a: u32, nt: usize) {
    for k in 0..nt {
        ctx.b.next_phase();
        let akk = ctx.tile(a, k, k);
        ctx.b.add_task(
            KernelKind::Potrf,
            F_POTRF * ctx.tile_flops,
            ctx.owner(k, k),
            vec![],
            vec![akk],
        );
        for i in k + 1..nt {
            let aik = ctx.tile(a, i, k);
            ctx.b.add_task(
                KernelKind::Trsm,
                F_TRSM * ctx.tile_flops,
                ctx.owner(i, k),
                vec![akk],
                vec![aik],
            );
        }
        ctx.b.next_phase();
        for j in k + 1..nt {
            for i in j..nt {
                let aij = ctx.tile(a, i, j);
                let aik = ctx.tile(a, i, k);
                let ajk = ctx.tile(a, j, k);
                let (kind, f) =
                    if i == j { (KernelKind::Herk, F_HERK) } else { (KernelKind::Gemm, F_GEMM) };
                ctx.b.add_task(
                    kind,
                    f * ctx.tile_flops,
                    ctx.owner(i, j),
                    vec![aik, ajk],
                    vec![aij],
                );
            }
        }
    }
}

/// Right-side tile trsm: `X (mt x nt) := X * op(L)^{-1}` with `L` lower
/// `nt x nt` in `l`. Ascending columns (the `L^{-H}` pass) — the reversed
/// pass has the same DAG shape, so both QDWH solves use this builder.
fn dag_trsm_right(ctx: &mut Ctx<'_>, x: u32, l: u32, mt: usize, nt: usize) {
    for j in 0..nt {
        ctx.b.next_phase();
        let ljj = ctx.tile(l, j, j);
        for i in 0..mt {
            let xij = ctx.tile(x, i, j);
            ctx.b.add_task(
                KernelKind::Trsm,
                F_TRSM * ctx.tile_flops,
                ctx.owner(i, j),
                vec![ljj],
                vec![xij],
            );
        }
        for j2 in j + 1..nt {
            let lj2j = ctx.tile(l, j2, j);
            for i in 0..mt {
                let xij = ctx.tile(x, i, j);
                let xij2 = ctx.tile(x, i, j2);
                ctx.b.add_task(
                    KernelKind::Gemm,
                    F_GEMM * ctx.tile_flops,
                    ctx.owner(i, j2),
                    vec![xij, lj2j],
                    vec![xij2],
                );
            }
        }
    }
}

/// Elementwise add/copy over an `mt x nt` tile grid (negligible flops but
/// real dependencies and data motion).
fn dag_geadd(ctx: &mut Ctx<'_>, dst: u32, src: u32, mt: usize, nt: usize) {
    ctx.b.next_phase();
    let f = ctx.tile_flops.cbrt().powi(2); // ~ b^2 flops per tile
    for j in 0..nt {
        for i in 0..mt {
            let d = ctx.tile(dst, i, j);
            let s = ctx.tile(src, i, j);
            ctx.b.add_task(KernelKind::Geadd, f, ctx.owner(i, j), vec![s], vec![d]);
        }
    }
}

/// Build the complete QDWH task graph for the given iteration profile.
///
/// Matrix ids: 0 = X (the iterate), and fresh workspaces per step, exactly
/// mirroring Algorithm 1's `W`, `Q`, `Z` temporaries.
pub fn qdwh_graph(spec: &QdwhGraphSpec) -> TaskGraph {
    let t = spec.t;
    let nb = spec.nb;
    let tile_flops = (nb as f64).powi(3);
    let bytes = (spec.scalar_bytes * nb * nb) as u64;
    let mut builder = GraphBuilder::new();
    let x = builder.new_matrix();

    {
        let mut ctx = Ctx { b: &mut builder, grid: spec.grid, tile_flops, bytes };

        // condition estimate: QR of the (scaled) input (lines 15-17)
        let w1 = ctx.b.new_matrix();
        dag_geadd(&mut ctx, w1, x, t, t);
        dag_geqrf(&mut ctx, w1, t, t);

        // QR-based iterations: W = [sqrt(c) X; I] is (2t x t) tiles
        for _ in 0..spec.it_qr {
            let w = ctx.b.new_matrix();
            let q = ctx.b.new_matrix();
            dag_geadd(&mut ctx, w, x, t, t); // copy scaled X into W's top
            dag_geqrf(&mut ctx, w, 2 * t, t);
            dag_orgqr(&mut ctx, w, q, 2 * t, t);
            // X := theta Q1 Q2^H + beta X  (Q1 = q rows 0..t, Q2 = rows t..2t);
            // modeled as a t x t x t gemm reading q tiles
            dag_gemm(&mut ctx, x, q, q, t, t, t);
        }

        // Cholesky-based iterations
        for _ in 0..spec.it_chol {
            let z = ctx.b.new_matrix();
            let xp = ctx.b.new_matrix();
            dag_geadd(&mut ctx, xp, x, t, t); // save X_{k-1}
            dag_herk(&mut ctx, z, x, t, t); // Z = I + c X^H X
            dag_potrf(&mut ctx, z, t);
            dag_trsm_right(&mut ctx, x, z, t, t); // X L^{-H}
            dag_trsm_right(&mut ctx, x, z, t, t); // (X L^{-H}) L^{-1}
            dag_geadd(&mut ctx, x, xp, t, t); // X := beta Xp + theta X
        }

        // H = U^H A (line 52)
        let h = ctx.b.new_matrix();
        let acpy = ctx.b.new_matrix();
        dag_gemm(&mut ctx, h, x, acpy, t, t, t);
    }

    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qdwh_flops;

    fn small_spec(t: usize, it_qr: usize, it_chol: usize) -> QdwhGraphSpec {
        QdwhGraphSpec { t, nb: 64, scalar_bytes: 8, grid: Grid { p: 2, q: 2 }, it_qr, it_chol }
    }

    #[test]
    fn graph_is_nonempty_and_connected_ish() {
        let g = qdwh_graph(&small_spec(4, 1, 1));
        assert!(g.len() > 50);
        // at least one task has a predecessor (dependencies inferred)
        assert!((0..g.len()).any(|t| !g.preds(t).is_empty()));
        // critical path below serial sum (there IS parallelism)
        assert!(g.critical_path_flops() < g.total_flops());
    }

    #[test]
    fn total_flops_tracks_paper_formula() {
        // The DAG's flop total must be within ~2x of the paper's formula
        // (tile QR pays a T-factor overhead; edge effects at small t).
        let t = 10;
        let nb = 64;
        let n = t * nb;
        for (qr, chol) in [(3, 3), (0, 2), (2, 4)] {
            let g = qdwh_graph(&QdwhGraphSpec {
                t,
                nb,
                scalar_bytes: 8,
                grid: Grid { p: 2, q: 2 },
                it_qr: qr,
                it_chol: chol,
            });
            let model = qdwh_flops(n, qr, chol);
            let ratio = g.total_flops() / model;
            assert!(
                (0.5..2.5).contains(&ratio),
                "qr={qr} chol={chol}: DAG/model flop ratio {ratio}"
            );
        }
    }

    #[test]
    fn more_iterations_more_tasks() {
        let g1 = qdwh_graph(&small_spec(4, 1, 1));
        let g2 = qdwh_graph(&small_spec(4, 3, 3));
        assert!(g2.len() > g1.len());
        assert!(g2.total_flops() > g1.total_flops());
    }

    #[test]
    fn ranks_cover_grid() {
        let spec = small_spec(6, 1, 1);
        let g = qdwh_graph(&spec);
        let max_rank = g.tasks.iter().map(|t| t.rank).max().unwrap();
        assert!(max_rank < spec.grid.p * spec.grid.q);
        // all ranks get work (block-cyclic balance)
        for r in 0..spec.grid.p * spec.grid.q {
            assert!(g.tasks.iter().any(|t| t.rank == r), "rank {r} idle");
        }
    }

    #[test]
    fn cross_rank_traffic_shrinks_on_single_rank() {
        let multi = qdwh_graph(&small_spec(4, 1, 1));
        let single =
            qdwh_graph(&QdwhGraphSpec { grid: Grid { p: 1, q: 1 }, ..small_spec(4, 1, 1) });
        assert!(single.cross_rank_bytes() == 0);
        assert!(multi.cross_rank_bytes() > 0);
    }

    #[test]
    fn phases_increase_monotonically() {
        let g = qdwh_graph(&small_spec(3, 1, 1));
        let mut last = 0;
        for t in &g.tasks {
            assert!(t.phase >= last);
            last = t.phase;
        }
        assert!(last > 4, "multiple fork-join phases expected");
    }

    #[test]
    fn qr_iterations_dominate_cholesky_cost() {
        // (8+2/3) vs (4+1/3) per n^3: a QR iteration is ~2x a Cholesky one
        let qr_only = qdwh_graph(&small_spec(6, 1, 0));
        let chol_only = qdwh_graph(&small_spec(6, 0, 1));
        let ratio = qr_only.total_flops() / chol_only.total_flops();
        assert!(ratio > 1.4, "QR/Chol per-iteration flop ratio {ratio}");
    }
}
