//! Closed-form performance model for distributed QDWH.
//!
//! The tile DAG of a paper-scale run (n = 175k, nb = 320) has ~1e8 tasks —
//! too many for discrete-event simulation — so the figure sweeps use this
//! analytic model, cross-validated against the DES at moderate sizes
//! (see the workspace test `tests/simulation_consistency.rs`).
//!
//! The model decomposes QDWH into its §4 operation sequence and charges
//! each operation with four mechanisms:
//!
//! 1. **throughput** — flops at the aggregate achievable rate of the
//!    target (GPU trailing updates or CPU cores), degraded by per-kernel
//!    and tile-size efficiency plus per-task launch overhead;
//! 2. **panel critical path** — `n/nb` sequential panel steps per
//!    factorization, executed on host cores, plus a sync latency each;
//! 3. **network** — communication-avoiding 2D block-cyclic volume
//!    `~c·8·n²·sqrt(P)` bytes through the node injection bandwidth;
//! 4. **host↔device staging** (GPU targets) — tile traffic over
//!    NVLink / Infinity Fabric with a cache-reuse factor.
//!
//! The two runtimes differ in composition: SLATE (task-based) *overlaps*
//! the mechanisms (`max`), ScaLAPACK/POLAR (fork-join) *serializes* them
//! (`+`, plus a barrier per panel step) — the §3 argument, in formula form.

use crate::machine::{ExecTarget, NodeSpec};
use crate::qdwh_flops;
use serde::Serialize;

/// Which implementation of QDWH is being modeled (the three series of
/// Figs. 2–3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Implementation {
    /// SLATE, GPU-accelerated, task-based (blue squares).
    SlateGpu,
    /// SLATE, CPU-only, task-based (orange circles).
    SlateCpu,
    /// POLAR's ScaLAPACK QDWH: CPU-only, fork-join (green triangles).
    ScaLapack,
}

impl Implementation {
    pub fn target(self) -> ExecTarget {
        match self {
            Implementation::SlateGpu => ExecTarget::GpuAccelerated,
            _ => ExecTarget::CpuOnly,
        }
    }

    pub fn fork_join(self) -> bool {
        matches!(self, Implementation::ScaLapack)
    }

    pub fn ranks_per_node(self, node: &NodeSpec) -> usize {
        match self {
            Implementation::ScaLapack => node.scalapack_ranks_per_node,
            _ => node.slate_ranks_per_node,
        }
    }
}

/// Time breakdown returned by [`estimate_qdwh_time`].
#[derive(Debug, Clone, Serialize)]
pub struct AnalyticBreakdown {
    pub seconds: f64,
    pub compute_seconds: f64,
    pub panel_seconds: f64,
    pub network_seconds: f64,
    pub staging_seconds: f64,
    pub barrier_seconds: f64,
    /// Real flops by the paper's §4 formula.
    pub flops: f64,
    /// Reported rate: formula flops / modeled seconds, Tflop/s — the
    /// quantity on the y-axes of Figs. 2–6.
    pub tflops: f64,
}

/// Operation classes with distinct kernel-efficiency profiles.
#[derive(Debug, Clone, Copy)]
#[allow(clippy::enum_variant_names)] // each class is "<kernel>-like"
enum OpClass {
    /// geqrf / orgqr: tsmqr-dominated updates, heavyweight CPU panels.
    QrLike,
    /// potrf + herk: gemm-like updates, light panels.
    CholLike,
    /// pure gemm.
    GemmLike,
    /// triangular solves.
    TrsmLike,
}

impl OpClass {
    /// Update-kernel efficiency relative to dgemm.
    fn efficiency(self) -> f64 {
        match self {
            OpClass::GemmLike => 0.90,
            OpClass::CholLike => 0.80,
            OpClass::TrsmLike => 0.65,
            OpClass::QrLike => 0.55,
        }
    }

    /// Network-volume coefficient `c` in `bytes = c * 8 n^2 sqrt(P)`.
    fn net_coeff(self) -> f64 {
        match self {
            OpClass::GemmLike => 2.0,
            OpClass::CholLike => 1.0,
            OpClass::TrsmLike => 1.5,
            OpClass::QrLike => 3.0,
        }
    }
}

/// One §4 operation: flops, panel-step count, panel work per step.
struct Op {
    class: OpClass,
    flops: f64,
    steps: f64,
    panel_flops_per_step: f64,
}

/// The operation sequence of Algorithm 1 for the given iteration profile.
fn op_sequence(n: usize, nb: usize, it_qr: usize, it_chol: usize) -> Vec<Op> {
    let nf = n as f64;
    let nbf = nb as f64;
    let t = (nf / nbf).ceil().max(1.0);
    let n3 = nf.powi(3);
    let mut ops = Vec::new();

    // condition estimate: QR of the scaled input (lines 15-17)
    ops.push(Op {
        class: OpClass::QrLike,
        flops: (4.0 / 3.0) * n3,
        steps: t,
        panel_flops_per_step: 2.0 * (nf / 2.0) * nbf * nbf,
    });

    for _ in 0..it_qr {
        // geqrf of the stacked (2n x n) W
        ops.push(Op {
            class: OpClass::QrLike,
            flops: (10.0 / 3.0) * n3,
            steps: t,
            panel_flops_per_step: 2.0 * 1.5 * nf * nbf * nbf,
        });
        // explicit Q generation (unmqr on identity)
        ops.push(Op {
            class: OpClass::QrLike,
            flops: (10.0 / 3.0) * n3,
            steps: t,
            panel_flops_per_step: 0.5 * nf * nbf * nbf,
        });
        // X = theta Q1 Q2^H + beta X
        ops.push(Op {
            class: OpClass::GemmLike,
            flops: 2.0 * n3,
            steps: t,
            panel_flops_per_step: 0.0,
        });
    }

    for _ in 0..it_chol {
        // Z = I + c X^H X
        ops.push(Op { class: OpClass::CholLike, flops: n3, steps: t, panel_flops_per_step: 0.0 });
        // potrf(Z)
        ops.push(Op {
            class: OpClass::CholLike,
            flops: n3 / 3.0,
            steps: t,
            panel_flops_per_step: nbf.powi(3) / 3.0,
        });
        // two right-side triangular solves
        ops.push(Op {
            class: OpClass::TrsmLike,
            flops: 2.0 * n3,
            steps: 2.0 * t,
            panel_flops_per_step: 0.0,
        });
    }

    // H = U^H A
    ops.push(Op { class: OpClass::GemmLike, flops: 2.0 * n3, steps: t, panel_flops_per_step: 0.0 });

    ops
}

/// Tile-size utilization of the compute device.
///
/// Unimodal in `nb`, peaking at the paper's tuned values (GPU: 320,
/// CPU: 192). Rising flank: small tiles underfill the pipeline / vector
/// units. Falling flank: oversized tiles lose task parallelism,
/// lookahead depth, and cache residency — the reasons the paper's tuning
/// sweep (§7.2) settled on 320/192 rather than "as big as possible".
/// The GPU curve is additionally scaled so a tuned-tile kernel reaches
/// ~55% of the device's dgemm rate, which is what SLATE-style tile
/// execution achieves on V100/MI250X at nb = 320.
fn tile_utilization(nb: usize, gpu: bool) -> f64 {
    let (sat, over_penalty, scale) = if gpu { (320.0, 0.6, 0.55) } else { (160.0, 0.1, 1.0) };
    let r = nb as f64 / sat;
    let up = (1.9 * r / (1.0 + r)).min(1.0);
    let over = 1.0 + over_penalty * (r - 1.0).max(0.0);
    (up / over) * scale
}

/// Model the end-to-end QDWH time.
pub fn estimate_qdwh_time(
    node: &NodeSpec,
    nodes: usize,
    implementation: Implementation,
    n: usize,
    nb: usize,
    it_qr: usize,
    it_chol: usize,
) -> AnalyticBreakdown {
    let ops = op_sequence(n, nb, it_qr, it_chol);
    let flops = qdwh_flops(n, it_qr, it_chol);
    cost_operations(node, nodes, implementation, n, nb, &ops, flops)
}

/// Cost an arbitrary operation sequence on the modeled machine (shared by
/// the QDWH and Zolo-PD estimators).
fn cost_operations(
    node: &NodeSpec,
    nodes: usize,
    implementation: Implementation,
    n: usize,
    nb: usize,
    ops: &[Op],
    flops: f64,
) -> AnalyticBreakdown {
    let ranks = nodes * implementation.ranks_per_node(node);
    let target = implementation.target();
    let fork_join = implementation.fork_join();
    let nbf = nb as f64;

    // aggregate achievable update rate, flop/s
    let util = tile_utilization(nb, target == ExecTarget::GpuAccelerated);
    // GPU occupancy: accelerators only reach their rate when each rank
    // has enough independent tiles in flight. The local trailing-matrix
    // tile count (t^2 / ranks) is the available parallelism; ~2000 tiles
    // per rank saturate the device. This is why the paper's GPU curves
    // keep climbing with matrix size while the CPU curves flatten early,
    // and why adding nodes at fixed n starves the GPUs (Fig. 4's limited
    // strong scaling).
    let t_tiles = (n as f64 / nb as f64).ceil();
    let occupancy = match target {
        ExecTarget::CpuOnly => 1.0,
        ExecTarget::GpuAccelerated => {
            let local = t_tiles * t_tiles / ranks as f64;
            local / (local + node.gpu_saturation_tiles)
        }
    };
    let agg_update = match target {
        ExecTarget::CpuOnly => nodes as f64 * node.cpu_cores as f64 * node.cpu_core_gflops * 1e9,
        ExecTarget::GpuAccelerated => nodes as f64 * node.gpus as f64 * node.gpu_gflops * 1e9,
    } * util
        * occupancy;

    // panel execution: host cores of one rank, at half dgemm efficiency
    // (panels are skinny and partly level-2)
    let cores_per_rank =
        (node.cpu_cores as f64 / implementation.ranks_per_node(node) as f64).max(1.0);
    let panel_rate = cores_per_rank * node.cpu_core_gflops * 1e9 * 0.9;
    // aggregate CPU rate available for panels across the machine
    let agg_cpu = nodes as f64 * node.cpu_cores as f64 * node.cpu_core_gflops * 1e9 * 0.9;

    // network: aggregate injection bandwidth and per-hop latency
    let net_bw = nodes as f64 * node.nic_gbs * 1e9;
    let sync_lat = node.latency_us * 1e-6 * (ranks.max(2) as f64).log2();

    // host<->device staging (GPU only)
    let hd_bw = nodes as f64 * node.gpus as f64 * node.host_device_gbs * 1e9;
    let tile_reuse = 8.0;

    // per-task launch overhead amortized over concurrent streams
    let (task_overhead, streams) = match target {
        ExecTarget::GpuAccelerated => (6e-6, (2 * node.gpus * nodes) as f64),
        ExecTarget::CpuOnly => (8e-7, (node.cpu_cores * nodes) as f64),
    };

    let single_node_net_discount = if nodes == 1 { 0.25 } else { 1.0 };

    let mut compute_s = 0.0;
    let mut panel_s = 0.0;
    let mut network_s = 0.0;
    let mut staging_s = 0.0;
    let mut barrier_s = 0.0;
    let mut total = 0.0;

    for op in ops {
        let eff = op.class.efficiency();
        let panel_total = op.steps * op.panel_flops_per_step;
        let update_flops = (op.flops - panel_total).max(0.0);

        // throughput term
        let ntasks = update_flops / (2.0 * nbf.powi(3));
        let t_overhead = ntasks * task_overhead / streams;
        let mut t_update = update_flops / (agg_update * eff) + t_overhead;
        // GPU runs still execute panels on host cores (aggregate view)
        let t_panel_throughput = panel_total / agg_cpu;
        if target == ExecTarget::GpuAccelerated {
            t_update += t_panel_throughput;
        } else {
            t_update += t_panel_throughput * 0.5; // folded into core time
        }

        // staging term (GPU)
        let t_staging = if target == ExecTarget::GpuAccelerated {
            let bytes = ntasks * 3.0 * 8.0 * nbf * nbf / tile_reuse;
            bytes / hd_bw
        } else {
            0.0
        };

        // panel critical path
        let t_panel_cp = op.steps * (op.panel_flops_per_step / panel_rate + sync_lat);

        // network term
        let net_bytes = op.class.net_coeff()
            * 8.0
            * (n as f64).powi(2)
            * (ranks as f64).sqrt()
            * single_node_net_discount;
        let t_net = net_bytes / net_bw;

        let t_op = if fork_join {
            // bulk synchronous: phases serialize, barrier per panel step
            let t_barrier = op.steps * 4.0 * sync_lat;
            barrier_s += t_barrier;
            t_update + t_staging + t_net + t_panel_cp + t_barrier
        } else {
            // task-based: mechanisms overlap
            (t_update + t_staging).max(t_panel_cp).max(t_net)
        };

        compute_s += t_update;
        panel_s += t_panel_cp;
        network_s += t_net;
        staging_s += t_staging;
        total += t_op;
    }

    AnalyticBreakdown {
        seconds: total,
        compute_seconds: compute_s,
        panel_seconds: panel_s,
        network_seconds: network_s,
        staging_seconds: staging_s,
        barrier_seconds: barrier_s,
        flops,
        tflops: flops / total / 1e12,
    }
}

/// Model Zolo-PD (the paper's §8 future-work algorithm) on the same
/// machine: `iterations x r` *mutually independent* stacked-QR chains.
///
/// With `nodes >= r`, the node set splits into `r` groups that execute the
/// chains concurrently, so one Zolo iteration costs what one QR chain
/// costs on `nodes/r` nodes — and only ~2 iterations are needed. This is
/// the strong-scaling trade the paper describes: more flops than QDWH,
/// but a much shorter critical path at high node counts.
pub fn estimate_zolo_time(
    node: &NodeSpec,
    nodes: usize,
    n: usize,
    nb: usize,
    r: usize,
) -> AnalyticBreakdown {
    assert!(r >= 1);
    let nf = n as f64;
    let nbf = nb as f64;
    let t = (nf / nbf).ceil().max(1.0);
    let n3 = nf.powi(3);
    let iterations = 2usize; // the r = 8 double-precision guarantee

    // one partial-fraction chain: stacked geqrf + explicit Q + accumulate
    let chain_ops = vec![
        Op {
            class: OpClass::QrLike,
            flops: (10.0 / 3.0) * n3,
            steps: t,
            panel_flops_per_step: 2.0 * 1.5 * nf * nbf * nbf,
        },
        Op {
            class: OpClass::QrLike,
            flops: (10.0 / 3.0) * n3,
            steps: t,
            panel_flops_per_step: 0.5 * nf * nbf * nbf,
        },
        Op { class: OpClass::GemmLike, flops: 2.0 * n3, steps: t, panel_flops_per_step: 0.0 },
    ];
    // shared prologue/epilogue on the full machine: condition estimate + H
    let shared_ops = vec![
        Op {
            class: OpClass::QrLike,
            flops: (4.0 / 3.0) * n3,
            steps: t,
            panel_flops_per_step: 2.0 * (nf / 2.0) * nbf * nbf,
        },
        Op { class: OpClass::GemmLike, flops: 2.0 * n3, steps: t, panel_flops_per_step: 0.0 },
    ];

    let chain_flops: f64 = chain_ops.iter().map(|o| o.flops).sum();
    let shared_flops: f64 = shared_ops.iter().map(|o| o.flops).sum();
    let total_flops = iterations as f64 * r as f64 * chain_flops + shared_flops;

    // group decomposition of the machine
    let groups = nodes.min(r).max(1);
    let nodes_per_group = (nodes / groups).max(1);
    let rounds = r.div_ceil(groups);

    let chain = cost_operations(
        node,
        nodes_per_group,
        Implementation::SlateGpu,
        n,
        nb,
        &chain_ops,
        chain_flops,
    );
    let shared =
        cost_operations(node, nodes, Implementation::SlateGpu, n, nb, &shared_ops, shared_flops);

    let seconds = iterations as f64 * rounds as f64 * chain.seconds + shared.seconds;
    AnalyticBreakdown {
        seconds,
        compute_seconds: iterations as f64 * rounds as f64 * chain.compute_seconds
            + shared.compute_seconds,
        panel_seconds: iterations as f64 * rounds as f64 * chain.panel_seconds
            + shared.panel_seconds,
        network_seconds: iterations as f64 * rounds as f64 * chain.network_seconds
            + shared.network_seconds,
        staging_seconds: iterations as f64 * rounds as f64 * chain.staging_seconds
            + shared.staging_seconds,
        barrier_seconds: 0.0,
        flops: total_flops,
        tflops: total_flops / seconds / 1e12,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summit() -> NodeSpec {
        NodeSpec::summit()
    }

    #[test]
    fn gpu_beats_cpu_and_grows_with_n() {
        let mut prev = 0.0;
        for n in [20_000usize, 60_000, 100_000, 140_000] {
            let gpu = estimate_qdwh_time(&summit(), 1, Implementation::SlateGpu, n, 320, 3, 3);
            let cpu = estimate_qdwh_time(&summit(), 1, Implementation::SlateCpu, n, 192, 3, 3);
            assert!(gpu.tflops > cpu.tflops, "n={n}");
            assert!(gpu.tflops > prev, "GPU rate must grow with n");
            prev = gpu.tflops;
        }
    }

    #[test]
    fn slate_cpu_similar_to_scalapack() {
        // §7.2: "Using only CPU cores, SLATE's performance is similar to
        // the ScaLAPACK performance."
        for n in [40_000usize, 80_000] {
            let slate = estimate_qdwh_time(&summit(), 1, Implementation::SlateCpu, n, 192, 3, 3);
            let scal = estimate_qdwh_time(&summit(), 1, Implementation::ScaLapack, n, 192, 3, 3);
            let ratio = slate.tflops / scal.tflops;
            assert!((0.8..2.5).contains(&ratio), "n={n}: ratio {ratio}");
        }
    }

    #[test]
    fn fork_join_is_never_faster() {
        for nodes in [1usize, 8] {
            for n in [20_000usize, 80_000] {
                let tb =
                    estimate_qdwh_time(&summit(), nodes, Implementation::SlateCpu, n, 192, 3, 3);
                let fj =
                    estimate_qdwh_time(&summit(), nodes, Implementation::ScaLapack, n, 192, 3, 3);
                assert!(fj.seconds >= tb.seconds * 0.95, "nodes={nodes} n={n}");
            }
        }
    }

    #[test]
    fn headline_speedup_in_paper_range() {
        // §1/§7.2: up to ~18x on 1 node at large sizes, ~13x at 8 nodes.
        let n1 = 130_000;
        let gpu1 = estimate_qdwh_time(&summit(), 1, Implementation::SlateGpu, n1, 320, 3, 3);
        let sca1 = estimate_qdwh_time(&summit(), 1, Implementation::ScaLapack, n1, 192, 3, 3);
        let s1 = gpu1.tflops / sca1.tflops;
        assert!((12.0..26.0).contains(&s1), "1-node speedup {s1}");

        // at 8 nodes the same mid-range sizes leave the GPUs partially
        // starved, pulling the ratio down toward the paper's ~13x
        let n8 = 130_000;
        let gpu8 = estimate_qdwh_time(&summit(), 8, Implementation::SlateGpu, n8, 320, 3, 3);
        let sca8 = estimate_qdwh_time(&summit(), 8, Implementation::ScaLapack, n8, 192, 3, 3);
        let s8 = gpu8.tflops / sca8.tflops;
        assert!((9.0..19.0).contains(&s8), "8-node speedup {s8}");
        assert!(s8 < s1, "speedup declines from 1 to 8 nodes at fixed n");
    }

    #[test]
    fn frontier_16_nodes_near_paper_rate() {
        // Fig. 5/6: ~180 Tflop/s at 16 Frontier nodes, n = 175k.
        let fr = NodeSpec::frontier();
        let r = estimate_qdwh_time(&fr, 16, Implementation::SlateGpu, 175_000, 320, 3, 3);
        assert!((100.0..300.0).contains(&r.tflops), "Frontier 16-node rate {} Tflop/s", r.tflops);
    }

    #[test]
    fn weak_scaling_improves_with_nodes() {
        // Fig. 4: at each node count the largest problem achieves a higher
        // rate than the same problem on fewer nodes... i.e. more nodes at
        // larger n => more Tflop/s.
        let small = estimate_qdwh_time(&summit(), 1, Implementation::SlateGpu, 100_000, 320, 3, 3);
        let big = estimate_qdwh_time(&summit(), 8, Implementation::SlateGpu, 250_000, 320, 3, 3);
        assert!(big.tflops > small.tflops);
    }

    #[test]
    fn strong_scaling_is_sublinear() {
        // Fig. 4: strong scaling at fixed n is limited.
        let n = 60_000;
        let one = estimate_qdwh_time(&summit(), 1, Implementation::SlateGpu, n, 320, 3, 3);
        let many = estimate_qdwh_time(&summit(), 16, Implementation::SlateGpu, n, 320, 3, 3);
        let speedup = one.seconds / many.seconds;
        assert!(speedup > 1.0, "some speedup expected");
        assert!(speedup < 16.0, "strong scaling must be sublinear: {speedup}");
    }

    #[test]
    fn tile_size_sweet_spots() {
        // §7.2: nb = 320 best on GPUs, nb = 192 best on CPUs.
        let better_gpu = |a: usize, b: usize| {
            let ta = estimate_qdwh_time(&summit(), 1, Implementation::SlateGpu, 80_000, a, 3, 3);
            let tb = estimate_qdwh_time(&summit(), 1, Implementation::SlateGpu, 80_000, b, 3, 3);
            ta.tflops >= tb.tflops
        };
        assert!(better_gpu(320, 64));
        let better_cpu = |a: usize, b: usize| {
            let ta = estimate_qdwh_time(&summit(), 1, Implementation::SlateCpu, 80_000, a, 3, 3);
            let tb = estimate_qdwh_time(&summit(), 1, Implementation::SlateCpu, 80_000, b, 3, 3);
            ta.tflops >= tb.tflops
        };
        assert!(better_cpu(192, 32));
    }

    #[test]
    fn breakdown_sums_are_sane() {
        let r = estimate_qdwh_time(&summit(), 4, Implementation::SlateGpu, 100_000, 320, 3, 3);
        assert!(r.seconds > 0.0);
        assert!(r.compute_seconds > 0.0);
        assert!(r.panel_seconds > 0.0);
        assert!(r.tflops > 0.0);
        // task-based: overlapped total can't exceed the serial sum
        assert!(
            r.seconds
                <= r.compute_seconds
                    + r.panel_seconds
                    + r.network_seconds
                    + r.staging_seconds
                    + 1e-9
        );
    }

    #[test]
    fn zolo_wins_in_strong_scaling_regime() {
        // §8: Zolo-PD burns more flops but has a shorter critical path;
        // at a fixed moderate n it must overtake QDWH once the node count
        // is large enough to host the independent QR chains.
        let node = NodeSpec::summit();
        let n = 60_000;
        let qdwh_time = |nodes| {
            estimate_qdwh_time(&node, nodes, Implementation::SlateGpu, n, 320, 3, 3).seconds
        };
        let zolo_time = |nodes| estimate_zolo_time(&node, nodes, n, 320, 8).seconds;
        // few nodes: QDWH's lower flop count wins
        assert!(qdwh_time(1) < zolo_time(1), "1 node: QDWH should win");
        // many nodes: Zolo's concurrency wins
        assert!(zolo_time(32) < qdwh_time(32), "32 nodes: Zolo should win");
    }

    #[test]
    fn zolo_flops_exceed_qdwh() {
        let node = NodeSpec::summit();
        let z = estimate_zolo_time(&node, 8, 100_000, 320, 8);
        assert!(z.flops > crate::qdwh_flops(100_000, 3, 3));
    }

    #[test]
    fn zolo_scales_past_r_groups() {
        let node = NodeSpec::summit();
        let t8 = estimate_zolo_time(&node, 8, 100_000, 320, 8).seconds;
        let t16 = estimate_zolo_time(&node, 16, 100_000, 320, 8).seconds;
        assert!(t16 < t8, "groups of 2 nodes each still speed up");
    }
}
