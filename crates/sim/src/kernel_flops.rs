//! Independent analytic flop model for the measured kernel classes.
//!
//! These are the LAWN 41 operation counts, restated here — *not* imported
//! from `polar_blas::flops` — so integration tests can cross-check the
//! flop totals reported by the observability counters against a model
//! that shares no code with the counting hooks. If an instrumentation
//! site charges the wrong formula, the two disagree and the test fails;
//! had the test imported `polar_blas::flops`, both sides would be wrong
//! together.
//!
//! All counts are *real* flops for real scalar types; multiply by
//! [`complex_factor`] for complex types (a complex multiply-add is 4 real
//! multiplies + 4 real adds).

/// Real-flop multiplier for complex arithmetic.
pub fn complex_factor(is_complex: bool) -> f64 {
    if is_complex {
        4.0
    } else {
        1.0
    }
}

/// `C <- alpha op(A) op(B) + beta C` with `C` being `m x n`, inner
/// dimension `k`: one multiply-add per output element per inner step.
pub fn gemm(m: usize, n: usize, k: usize) -> f64 {
    2.0 * m as f64 * n as f64 * k as f64
}

/// Hermitian rank-k update of an `n x n` output: half of the equivalent
/// gemm, counting the diagonal once.
pub fn herk(n: usize, k: usize) -> f64 {
    n as f64 * (n as f64 + 1.0) * k as f64
}

/// Triangular solve from the left: `A` is `m x m`, `B` is `m x n`.
pub fn trsm_left(m: usize, n: usize) -> f64 {
    n as f64 * (m as f64) * (m as f64)
}

/// Triangular solve from the right: `A` is `n x n`, `B` is `m x n`.
pub fn trsm_right(m: usize, n: usize) -> f64 {
    m as f64 * (n as f64) * (n as f64)
}

/// Householder QR of an `m x n` matrix (`m >= n`): `2mn² - (2/3)n³`.
pub fn geqrf(m: usize, n: usize) -> f64 {
    let (m, n) = (m as f64, n as f64);
    2.0 * m * n * n - (2.0 / 3.0) * n * n * n
}

/// Forming the `m x n` Q factor from `n` reflectors: same leading terms
/// as the factorization itself (LAWN 41 with `k = n`).
pub fn orgqr(m: usize, n: usize) -> f64 {
    geqrf(m, n)
}

/// Applying `k` reflectors to an `m x n` matrix from the left:
/// `4mnk - 2nk²`.
pub fn unmqr(m: usize, n: usize, k: usize) -> f64 {
    let (m, n, k) = (m as f64, n as f64, k as f64);
    4.0 * m * n * k - 2.0 * n * k * k
}

/// Cholesky factorization of an `n x n` matrix: `n³/3`.
pub fn potrf(n: usize) -> f64 {
    let n = n as f64;
    n * n * n / 3.0
}

/// One Zolotarev term of an `m x n` iterate: the stacked QR of the
/// `(m+n) x n` panel `[X; sqrt(c) I]`, forming its Q, and the rank-n
/// `Q1 Q2^H` accumulation into the private term slab. For square inputs
/// this is `((10/3)·2 + 2) n³` — the per-term factor of the serial
/// `zolo_pd` flop estimate.
pub fn zolo_term(m: usize, n: usize) -> f64 {
    geqrf(m + n, n) + orgqr(m + n, n) + gemm(m, n, n)
}

/// One r-way Zolotarev iteration: the r independent terms of the fused
/// graph (the fixed-order combine and interval update are `O(n²)` noise
/// the model ignores, matching the serial estimate).
pub fn zolo_iteration(m: usize, n: usize, r: usize) -> f64 {
    r as f64 * zolo_term(m, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_hand_values() {
        assert_eq!(gemm(2, 3, 4), 48.0);
        assert_eq!(herk(3, 2), 24.0);
        assert_eq!(trsm_left(4, 2), 32.0);
        assert_eq!(trsm_right(2, 4), 32.0);
        assert_eq!(potrf(3), 9.0);
        // square geqrf: (4/3) n^3
        assert!((geqrf(6, 6) - (4.0 / 3.0) * 216.0).abs() < 1e-12);
        assert_eq!(orgqr(8, 4), geqrf(8, 4));
        assert_eq!(unmqr(4, 4, 2), 4.0 * 32.0 - 2.0 * 16.0);
        assert_eq!(complex_factor(true), 4.0);
        assert_eq!(complex_factor(false), 1.0);
    }

    #[test]
    fn zolo_term_matches_the_serial_estimate_factor() {
        // the serial zolo_pd accuracy-gate flop model charges
        // ((10/3)*2 + 2) n^3 per term for square inputs; the structural
        // per-kernel sum must agree within 1%
        for n in [64usize, 256, 1000] {
            let nf = n as f64;
            let serial_factor = ((10.0 / 3.0) * 2.0 + 2.0) * nf * nf * nf;
            let structural = zolo_term(n, n);
            assert!(
                (structural - serial_factor).abs() <= 0.01 * serial_factor,
                "n={n}: structural {structural:e} vs serial factor {serial_factor:e}"
            );
        }
        for r in [1usize, 2, 4, 8] {
            assert_eq!(zolo_iteration(128, 128, r), r as f64 * zolo_term(128, 128));
        }
        // rectangular panels pay the taller stacked QR
        assert!(zolo_term(200, 100) > zolo_term(100, 100));
    }

    #[test]
    fn model_agrees_with_the_counting_hooks_formulas() {
        // the blas-side formulas must stay in sync with this model; this
        // cross-check catches one side drifting
        for (m, n, k) in [(64, 48, 32), (100, 100, 100), (7, 5, 3)] {
            assert_eq!(gemm(m, n, k), polar_blas::flops::gemm(m, n, k));
            assert_eq!(herk(n, k), polar_blas::flops::herk(n, k));
            assert_eq!(trsm_left(m, n), polar_blas::flops::trsm_left(m, n));
            assert_eq!(trsm_right(m, n), polar_blas::flops::trsm_right(m, n));
            assert_eq!(geqrf(m, n), polar_blas::flops::geqrf(m, n));
            assert_eq!(unmqr(m, n, k), polar_blas::flops::unmqr(m, n, k));
            assert_eq!(potrf(n), polar_blas::flops::potrf(n));
        }
    }
}
