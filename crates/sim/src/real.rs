//! Sim-vs-real: calibrate an [`ExecutionModel`] from a *measured* run and
//! replay the executed graph through the discrete-event scheduler.
//!
//! The post-mortem layer (`polar_runtime::postmortem`) reconstructs what
//! the DAG executor did — per-task durations, per-worker busy time, the
//! measured makespan. [`MeasuredHost`] turns those measurements into the
//! simplest machine model that could have produced them: one rank,
//! `slots = workers`, a single fitted seconds-per-flop rate plus a fixed
//! per-task dispatch overhead. Replaying the same [`TaskGraph`] through
//! [`polar_runtime::simulate`] under that model then answers the question
//! the sim-vs-real CI gate asks: *does the simulator's list-scheduling
//! abstraction predict the measured makespan once its rates are honest?*
//! A large error means the simulator's scheduling assumptions (not its
//! rates — those are fitted) diverge from the real executor, which is
//! exactly the regression the nightly drift gate watches for.

use polar_runtime::postmortem::DagPostmortem;
use polar_runtime::{simulate, ExecutionModel, ScheduleStats, SchedulingMode, Task, TaskGraph};

/// Execution model fitted from one measured dag: uniform seconds-per-flop
/// plus constant per-task overhead, `slots` concurrent workers, one rank
/// (in-process pool ⇒ no messages).
#[derive(Debug, Clone, Copy)]
pub struct MeasuredHost {
    /// Concurrent execution slots (= worker lanes observed).
    pub slots: usize,
    /// Fitted compute rate, seconds per flop.
    pub secs_per_flop: f64,
    /// Fixed per-task cost (dispatch + body prologue), seconds.
    pub task_overhead_s: f64,
}

impl MeasuredHost {
    /// Fit from a measured dag post-mortem: `secs_per_flop` makes the
    /// modeled serial work equal the measured total busy time after
    /// subtracting a per-task overhead share. With zero flops recorded
    /// (degenerate graphs) everything lands in overhead.
    pub fn calibrate(d: &DagPostmortem) -> Self {
        let slots = d.workers.len().max(1);
        let tasks = d.spans.max(1) as f64;
        let busy_s = d.total_busy_ns as f64 * 1e-9;
        // Attribute the *minimum* observed task duration to fixed overhead
        // (a zero-flop task would still cost roughly that much), the rest
        // to flops.
        let min_task_s = d
            .classes
            .iter()
            .filter(|c| c.tasks > 0)
            .map(|c| c.busy_ns as f64 * 1e-9 / c.tasks as f64)
            .fold(f64::INFINITY, f64::min);
        let task_overhead_s =
            if min_task_s.is_finite() { (min_task_s * 0.1).min(1e-4) } else { 0.0 };
        let compute_s = (busy_s - task_overhead_s * tasks).max(0.0);
        let secs_per_flop = if d.total_flops > 0.0 { compute_s / d.total_flops } else { 0.0 };
        MeasuredHost { slots, secs_per_flop, task_overhead_s }
    }
}

impl ExecutionModel for MeasuredHost {
    fn ranks(&self) -> usize {
        1
    }
    fn slots(&self, _rank: usize) -> usize {
        self.slots
    }
    fn task_seconds(&self, task: &Task) -> f64 {
        self.task_overhead_s + task.flops * self.secs_per_flop
    }
    fn message_seconds(&self, _bytes: u64, _from: usize, _to: usize) -> f64 {
        0.0
    }
    fn barrier_seconds(&self) -> f64 {
        0.0
    }
}

/// Predicted-vs-measured error for one task class.
#[derive(Debug, Clone)]
pub struct ClassError {
    pub name: &'static str,
    pub tasks: usize,
    /// Measured busy seconds of the class.
    pub measured_s: f64,
    /// Modeled seconds under the calibrated rate.
    pub predicted_s: f64,
    /// `(predicted - measured) / measured * 100`, 0 when nothing measured.
    pub error_pct: f64,
}

/// One sim-vs-real comparison: the calibrated model, the simulated
/// schedule of the measured graph, and the error decomposition.
#[derive(Debug, Clone)]
pub struct SimVsReal {
    pub model: MeasuredHost,
    pub predicted: ScheduleStats,
    /// Measured makespan, seconds.
    pub measured_makespan_s: f64,
    /// `(predicted.makespan - measured) / measured * 100`.
    pub makespan_error_pct: f64,
    pub classes: Vec<ClassError>,
}

/// Calibrate a [`MeasuredHost`] from `measured`, replay `graph` through
/// the task-based discrete-event scheduler, and report makespan plus
/// per-class error.
pub fn compare(graph: &TaskGraph, measured: &DagPostmortem) -> SimVsReal {
    let model = MeasuredHost::calibrate(measured);
    let predicted = simulate(graph, &model, SchedulingMode::TaskBased);
    let measured_makespan_s = measured.makespan_ns as f64 * 1e-9;
    let makespan_error_pct = if measured_makespan_s > 0.0 {
        (predicted.makespan - measured_makespan_s) / measured_makespan_s * 100.0
    } else {
        0.0
    };
    let classes = measured
        .classes
        .iter()
        .map(|c| {
            let measured_s = c.busy_ns as f64 * 1e-9;
            let predicted_s =
                c.tasks as f64 * model.task_overhead_s + c.flops * model.secs_per_flop;
            ClassError {
                name: c.name,
                tasks: c.tasks,
                measured_s,
                predicted_s,
                error_pct: if measured_s > 0.0 {
                    (predicted_s - measured_s) / measured_s * 100.0
                } else {
                    0.0
                },
            }
        })
        .collect();
    SimVsReal { model, predicted, measured_makespan_s, makespan_error_pct, classes }
}

impl SimVsReal {
    /// Serialize as one JSON object (the `sim_vs_real` row of
    /// `ANALYZE_solver.json`).
    pub fn to_json(&self) -> String {
        let classes: Vec<String> = self
            .classes
            .iter()
            .map(|c| {
                format!(
                    "{{\"name\": \"{}\", \"tasks\": {}, \"measured_s\": {:.6e}, \"predicted_s\": {:.6e}, \"error_pct\": {:.3}}}",
                    c.name, c.tasks, c.measured_s, c.predicted_s, c.error_pct
                )
            })
            .collect();
        format!(
            concat!(
                "{{\"predicted_makespan_s\": {:.6e}, \"measured_makespan_s\": {:.6e}, ",
                "\"makespan_error_pct\": {:.3}, \"model\": {{\"slots\": {}, ",
                "\"secs_per_flop\": {:.6e}, \"task_overhead_s\": {:.6e}}}, ",
                "\"per_class\": [{}]}}"
            ),
            self.predicted.makespan,
            self.measured_makespan_s,
            self.makespan_error_pct,
            self.model.slots,
            self.model.secs_per_flop,
            self.model.task_overhead_s,
            classes.join(", "),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polar_obs::{KernelClass, SpanRecord, TaskLifecycle};
    use polar_runtime::postmortem::analyze;
    use polar_runtime::{GraphBuilder, KernelKind, TileRef};
    use std::sync::Arc;

    fn tile(m: u32, i: usize, j: usize) -> TileRef {
        TileRef::new(m, i, j, 64)
    }

    /// 4 independent gemms, 1e6 flops each, measured at exactly 1 ms each
    /// on two lanes => rate 1 ns/flop (minus the small overhead share).
    fn measured_pair() -> (TaskGraph, DagPostmortem) {
        let mut b = GraphBuilder::new();
        let m = b.new_matrix();
        for j in 0..4 {
            b.add_task(KernelKind::Gemm, 1e6, 0, vec![], vec![tile(m, 0, j)]);
        }
        let graph = b.build();
        let spans: Vec<SpanRecord> = (0..4u32)
            .map(|t| SpanRecord {
                name: "task_gemm",
                class: Some(KernelClass::Gemm),
                seq: t as u64,
                lane: 1 + t % 2,
                depth: 0,
                start_ns: (t as u64 / 2) * 1_000_000,
                end_ns: (t as u64 / 2 + 1) * 1_000_000,
                flops: 0,
                dims: [0, 1, 0],
                lifecycle: Some(TaskLifecycle { dag: 1, task: t, ready_ns: 0, ready_lane: 0 }),
            })
            .collect();
        let pm = analyze(&spans, &[(1, Arc::new(graph.clone()))]);
        (graph, pm.dags.into_iter().next().unwrap())
    }

    #[test]
    fn calibrated_model_reproduces_measured_makespan() {
        let (graph, d) = measured_pair();
        assert_eq!(d.workers.len(), 2);
        let cmp = compare(&graph, &d);
        // 2 waves of 2 tasks on 2 slots, each task fitted to ~1 ms:
        // predicted makespan == measured 2 ms to within the overhead split
        assert!((cmp.measured_makespan_s - 2e-3).abs() < 1e-12);
        assert!(
            cmp.makespan_error_pct.abs() < 1.0,
            "calibrated replay should be within 1%, got {:.3}%",
            cmp.makespan_error_pct
        );
        // per-class decomposition covers the one class, near-exactly
        assert_eq!(cmp.classes.len(), 1);
        assert_eq!(cmp.classes[0].name, "task_gemm");
        assert!(cmp.classes[0].error_pct.abs() < 1.0);
    }

    #[test]
    fn sim_vs_real_json_has_the_gate_fields() {
        let (graph, d) = measured_pair();
        let j = compare(&graph, &d).to_json();
        for key in [
            "predicted_makespan_s",
            "measured_makespan_s",
            "makespan_error_pct",
            "secs_per_flop",
            "per_class",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
    }

    /// The fused Zolo shape: r independent QR branches, each feeding a
    /// private-slab gemm, joined by one fixed-order combine. The replay
    /// must track the measured makespan, and the *structural* measured
    /// critical path must sit strictly below the serial sum of the
    /// per-term QR durations — the property the ci.sh zolo leg gates on.
    #[test]
    fn r_way_zolo_graph_replays_and_shows_branch_concurrency() {
        const R: usize = 4;
        let mut b = GraphBuilder::new();
        let mw = b.new_matrix();
        let my = b.new_matrix();
        let mx = b.new_matrix();
        for j in 0..R {
            b.add_task(KernelKind::Geqrt, 2e6, 0, vec![], vec![tile(mw, j, 0)]);
        }
        for j in 0..R {
            b.add_task(KernelKind::Gemm, 1e6, 0, vec![tile(mw, j, 0)], vec![tile(my, j, 0)]);
        }
        b.add_task(
            KernelKind::Geadd,
            0.5e6,
            0,
            (0..R).map(|j| tile(my, j, 0)).collect(),
            vec![tile(mx, 0, 0)],
        );
        let graph = b.build();

        // two lanes, greedy: [qr0 qr1] [g0 g1] [qr2 qr3] [g2 g3] [combine]
        let mk = |t: u32, name: &'static str, class, lane, s_ms: f64, e_ms: f64| SpanRecord {
            name,
            class: Some(class),
            seq: t as u64,
            lane,
            depth: 0,
            start_ns: (s_ms * 1e6) as u64,
            end_ns: (e_ms * 1e6) as u64,
            flops: 0,
            dims: [0, 1, 0],
            lifecycle: Some(TaskLifecycle { dag: 3, task: t, ready_ns: 0, ready_lane: 0 }),
        };
        let spans = vec![
            mk(0, "task_geqrt", KernelClass::Geqrf, 1, 0.0, 2.0),
            mk(1, "task_geqrt", KernelClass::Geqrf, 2, 0.0, 2.0),
            mk(4, "task_gemm", KernelClass::Gemm, 1, 2.0, 3.0),
            mk(5, "task_gemm", KernelClass::Gemm, 2, 2.0, 3.0),
            mk(2, "task_geqrt", KernelClass::Geqrf, 1, 3.0, 5.0),
            mk(3, "task_geqrt", KernelClass::Geqrf, 2, 3.0, 5.0),
            mk(6, "task_gemm", KernelClass::Gemm, 1, 5.0, 6.0),
            mk(7, "task_gemm", KernelClass::Gemm, 2, 5.0, 6.0),
            mk(8, "task_geadd", KernelClass::Other, 1, 6.0, 6.5),
        ];
        let pm = analyze(&spans, &[(3, Arc::new(graph.clone()))]);
        let d = &pm.dags[0];

        // branch concurrency: structural CP = qr + gemm + combine = 3.5 ms,
        // strictly below the 4 x 2 ms serial sum of the QR terms
        let qr_busy: u64 =
            d.classes.iter().filter(|c| c.name == "task_geqrt").map(|c| c.busy_ns).sum();
        assert_eq!(qr_busy, 8_000_000);
        assert_eq!(d.critical_path_ns, 3_500_000);
        assert!(
            d.critical_path_ns < qr_busy,
            "r-way graph must expose concurrent QR branches: CP {} >= serial sum {}",
            d.critical_path_ns,
            qr_busy
        );

        // calibrated replay of the same graph stays close to the measured
        // 6.5 ms makespan
        let cmp = compare(&graph, d);
        assert!((cmp.measured_makespan_s - 6.5e-3).abs() < 1e-12);
        assert!(
            cmp.makespan_error_pct.abs() < 5.0,
            "r-way replay error {:.3}%",
            cmp.makespan_error_pct
        );
    }

    #[test]
    fn zero_flop_graph_degenerates_gracefully() {
        let mut b = GraphBuilder::new();
        let m = b.new_matrix();
        b.add_task(KernelKind::Gemm, 0.0, 0, vec![], vec![tile(m, 0, 0)]);
        let graph = b.build();
        let spans = vec![SpanRecord {
            name: "task_gemm",
            class: Some(KernelClass::Gemm),
            seq: 0,
            lane: 1,
            depth: 0,
            start_ns: 0,
            end_ns: 1_000,
            flops: 0,
            dims: [0; 3],
            lifecycle: Some(TaskLifecycle { dag: 2, task: 0, ready_ns: 0, ready_lane: 0 }),
        }];
        let pm = analyze(&spans, &[(2, Arc::new(graph.clone()))]);
        let cmp = compare(&graph, &pm.dags[0]);
        assert!(cmp.model.secs_per_flop == 0.0);
        assert!(cmp.predicted.makespan.is_finite());
    }
}
