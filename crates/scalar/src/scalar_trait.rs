//! The [`Scalar`] trait unifying the four supported element types.

use crate::{Complex, Real};
use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Element type of a matrix: `f32`, `f64`, `Complex<f32>`, or `Complex<f64>`.
///
/// Mirrors SLATE's `scalar_t` template parameter. All BLAS/LAPACK kernels
/// and the QDWH driver in this workspace are generic over `Scalar`, which is
/// how the reproduction covers the paper's "all four standard data types"
/// contribution with a single code path.
pub trait Scalar:
    Copy
    + Clone
    + Debug
    + Display
    + Default
    + PartialEq
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
{
    /// The associated real field (`f32` or `f64`).
    type Real: Real;

    /// `true` for the complex instantiations.
    const IS_COMPLEX: bool;
    /// Short LAPACK-style type tag (`s`, `d`, `c`, `z`) used in telemetry.
    const TYPE_TAG: &'static str;

    const ZERO: Self;
    const ONE: Self;

    fn from_real(re: Self::Real) -> Self;
    fn from_f64(x: f64) -> Self;
    /// Build from real and imaginary parts (imaginary ignored for real types).
    fn from_parts(re: Self::Real, im: Self::Real) -> Self;

    /// Complex conjugate (identity for real types).
    fn conj(self) -> Self;
    /// Real part.
    fn re(self) -> Self::Real;
    /// Imaginary part (zero for real types).
    fn im(self) -> Self::Real;
    /// Modulus.
    fn abs(self) -> Self::Real;
    /// Squared modulus.
    fn abs_sq(self) -> Self::Real;
    /// `|Re z| + |Im z|`, LAPACK's `cabs1`, used by pivoting and 1-norms.
    fn abs1(self) -> Self::Real {
        self.re().abs() + self.im().abs()
    }
    /// Principal square root.
    fn sqrt(self) -> Self;
    /// Multiplicative inverse.
    fn recip(self) -> Self;
    /// Scale by a real factor.
    fn mul_real(self, s: Self::Real) -> Self;
    fn is_finite(self) -> bool;
    fn is_nan(self) -> bool {
        !self.is_finite() && !self.abs().is_finite()
    }
}

impl Scalar for f32 {
    type Real = f32;
    const IS_COMPLEX: bool = false;
    const TYPE_TAG: &'static str = "s";
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;

    #[inline]
    fn from_real(re: f32) -> Self {
        re
    }
    #[inline]
    fn from_f64(x: f64) -> Self {
        x as f32
    }
    #[inline]
    fn from_parts(re: f32, _im: f32) -> Self {
        re
    }
    #[inline]
    fn conj(self) -> Self {
        self
    }
    #[inline]
    fn re(self) -> f32 {
        self
    }
    #[inline]
    fn im(self) -> f32 {
        0.0
    }
    #[inline]
    fn abs(self) -> f32 {
        f32::abs(self)
    }
    #[inline]
    fn abs_sq(self) -> f32 {
        self * self
    }
    #[inline]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    #[inline]
    fn recip(self) -> Self {
        f32::recip(self)
    }
    #[inline]
    fn mul_real(self, s: f32) -> Self {
        self * s
    }
    #[inline]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
    #[inline]
    fn is_nan(self) -> bool {
        f32::is_nan(self)
    }
}

impl Scalar for f64 {
    type Real = f64;
    const IS_COMPLEX: bool = false;
    const TYPE_TAG: &'static str = "d";
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;

    #[inline]
    fn from_real(re: f64) -> Self {
        re
    }
    #[inline]
    fn from_f64(x: f64) -> Self {
        x
    }
    #[inline]
    fn from_parts(re: f64, _im: f64) -> Self {
        re
    }
    #[inline]
    fn conj(self) -> Self {
        self
    }
    #[inline]
    fn re(self) -> f64 {
        self
    }
    #[inline]
    fn im(self) -> f64 {
        0.0
    }
    #[inline]
    fn abs(self) -> f64 {
        f64::abs(self)
    }
    #[inline]
    fn abs_sq(self) -> f64 {
        self * self
    }
    #[inline]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline]
    fn recip(self) -> Self {
        f64::recip(self)
    }
    #[inline]
    fn mul_real(self, s: f64) -> Self {
        self * s
    }
    #[inline]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
    #[inline]
    fn is_nan(self) -> bool {
        f64::is_nan(self)
    }
}

macro_rules! impl_scalar_complex {
    ($t:ty, $tag:expr) => {
        impl Scalar for Complex<$t> {
            type Real = $t;
            const IS_COMPLEX: bool = true;
            const TYPE_TAG: &'static str = $tag;
            const ZERO: Self = Complex { re: 0.0, im: 0.0 };
            const ONE: Self = Complex { re: 1.0, im: 0.0 };

            #[inline]
            fn from_real(re: $t) -> Self {
                Complex::from_real(re)
            }
            #[inline]
            fn from_f64(x: f64) -> Self {
                Complex::from_real(x as $t)
            }
            #[inline]
            fn from_parts(re: $t, im: $t) -> Self {
                Complex::new(re, im)
            }
            #[inline]
            fn conj(self) -> Self {
                Complex::conj(self)
            }
            #[inline]
            fn re(self) -> $t {
                self.re
            }
            #[inline]
            fn im(self) -> $t {
                self.im
            }
            #[inline]
            fn abs(self) -> $t {
                Complex::abs(self)
            }
            #[inline]
            fn abs_sq(self) -> $t {
                Complex::abs_sq(self)
            }
            #[inline]
            fn sqrt(self) -> Self {
                Complex::sqrt(self)
            }
            #[inline]
            fn recip(self) -> Self {
                Complex::recip(self)
            }
            #[inline]
            fn mul_real(self, s: $t) -> Self {
                Complex::scale(self, s)
            }
            #[inline]
            fn is_finite(self) -> bool {
                Complex::is_finite(self)
            }
        }
    };
}

impl_scalar_complex!(f32, "c");
impl_scalar_complex!(f64, "z");

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Complex32, Complex64};

    fn check_field_axioms<S: Scalar>(a: S, b: S, tol: S::Real) {
        // conj is an involution
        assert_eq!(a.conj().conj(), a);
        // |a|^2 == a * conj(a) (real part), within tolerance
        let lhs = a.abs_sq();
        let rhs = (a * a.conj()).re();
        assert!((lhs - rhs).abs() <= tol * (S::Real::ONE + lhs));
        // a * b.recip() * b ≈ a
        if b.abs() > S::Real::EPSILON {
            let back = a * b.recip() * b;
            assert!((back - a).abs() <= tol * (S::Real::ONE + a.abs()));
        }
    }

    #[test]
    fn axioms_all_types() {
        check_field_axioms(3.5f32, -1.25f32, 1e-6);
        check_field_axioms(3.5f64, -1.25f64, 1e-14);
        check_field_axioms(Complex32::new(1.0, -2.0), Complex32::new(0.5, 3.0), 1e-5);
        check_field_axioms(Complex64::new(1.0, -2.0), Complex64::new(0.5, 3.0), 1e-13);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // asserting the per-type consts is the point
    fn type_tags() {
        assert_eq!(f32::TYPE_TAG, "s");
        assert_eq!(f64::TYPE_TAG, "d");
        assert_eq!(Complex32::TYPE_TAG, "c");
        assert_eq!(Complex64::TYPE_TAG, "z");
        assert!(!f64::IS_COMPLEX);
        assert!(Complex64::IS_COMPLEX);
    }

    #[test]
    fn abs1_matches_lapack_cabs1() {
        let z = Complex64::new(-3.0, 4.0);
        assert_eq!(Scalar::abs1(z), 7.0);
        assert_eq!(Scalar::abs1(-5.0f64), 5.0);
    }

    #[test]
    fn sqrt_real_of_positive() {
        assert_eq!(Scalar::sqrt(4.0f64), 2.0);
        let z = Scalar::sqrt(Complex64::from_real(4.0));
        assert_eq!(z, Complex64::from_real(2.0));
    }

    #[test]
    fn from_parts_real_drops_imaginary() {
        assert_eq!(f64::from_parts(2.0, 99.0), 2.0);
        assert_eq!(Complex64::from_parts(2.0, 3.0), Complex64::new(2.0, 3.0));
    }
}
