//! The [`Real`] trait: floating-point types usable as the real field of a
//! [`crate::Scalar`].

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Real floating-point scalar (`f32` or `f64`).
///
/// This is the value type for norms, singular values, condition numbers,
/// and the dynamically-weighted Halley parameters `a`, `b`, `c`, `L` of
/// Algorithm 1 in the paper.
pub trait Real:
    Copy
    + Clone
    + Debug
    + Display
    + Default
    + PartialEq
    + PartialOrd
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
{
    /// Machine epsilon (`ulp(1)/2` in LAPACK convention is `EPSILON/2`;
    /// we follow Rust's `f64::EPSILON` = distance from 1.0 to the next float).
    const EPSILON: Self;
    /// Smallest positive normal value.
    const MIN_POSITIVE: Self;
    /// Largest finite value.
    const MAX: Self;
    const ZERO: Self;
    const ONE: Self;
    const TWO: Self;

    fn from_f64(x: f64) -> Self;
    fn to_f64(self) -> f64;
    fn from_usize(x: usize) -> Self {
        Self::from_f64(x as f64)
    }

    fn abs(self) -> Self;
    fn sqrt(self) -> Self;
    fn cbrt(self) -> Self;
    fn recip(self) -> Self;
    fn powi(self, n: i32) -> Self;
    fn ln(self) -> Self;
    fn log10(self) -> Self;
    fn exp(self) -> Self;
    fn hypot(self, other: Self) -> Self;
    fn is_finite(self) -> bool;
    fn is_nan(self) -> bool;

    fn max(self, other: Self) -> Self;
    fn min(self, other: Self) -> Self;

    /// `sign(x)` with `sign(0) = 1`, as used by Householder reflector
    /// construction to avoid cancellation.
    fn sign1(self) -> Self {
        if self < Self::ZERO {
            -Self::ONE
        } else {
            Self::ONE
        }
    }
}

macro_rules! impl_real {
    ($t:ty) => {
        impl Real for $t {
            const EPSILON: Self = <$t>::EPSILON;
            const MIN_POSITIVE: Self = <$t>::MIN_POSITIVE;
            const MAX: Self = <$t>::MAX;
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const TWO: Self = 2.0;

            #[inline]
            fn from_f64(x: f64) -> Self {
                x as $t
            }
            #[inline]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline]
            fn cbrt(self) -> Self {
                <$t>::cbrt(self)
            }
            #[inline]
            fn recip(self) -> Self {
                <$t>::recip(self)
            }
            #[inline]
            fn powi(self, n: i32) -> Self {
                <$t>::powi(self, n)
            }
            #[inline]
            fn ln(self) -> Self {
                <$t>::ln(self)
            }
            #[inline]
            fn log10(self) -> Self {
                <$t>::log10(self)
            }
            #[inline]
            fn exp(self) -> Self {
                <$t>::exp(self)
            }
            #[inline]
            fn hypot(self, other: Self) -> Self {
                <$t>::hypot(self, other)
            }
            #[inline]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
            #[inline]
            fn is_nan(self) -> bool {
                <$t>::is_nan(self)
            }
            #[inline]
            fn max(self, other: Self) -> Self {
                <$t>::max(self, other)
            }
            #[inline]
            fn min(self, other: Self) -> Self {
                <$t>::min(self, other)
            }
        }
    };
}

impl_real!(f32);
impl_real!(f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        assert_eq!(f64::ONE + f64::ONE, f64::TWO);
        assert_eq!(f32::ZERO, 0.0f32);
    }

    #[test]
    fn sign1_zero_is_positive() {
        assert_eq!(0.0f64.sign1(), 1.0);
        assert_eq!((-3.0f64).sign1(), -1.0);
        assert_eq!(2.5f32.sign1(), 1.0);
    }

    #[test]
    fn roundtrip_f64() {
        let x = 1.25f64;
        assert_eq!(f32::from_f64(x).to_f64(), 1.25);
    }

    #[test]
    fn hypot_no_overflow() {
        let big = 1e200f64;
        assert!(big.hypot(big).is_finite());
    }
}
