//! Scalar abstraction for the `polar-rs` workspace.
//!
//! The QDWH polar decomposition in the reproduced paper (Sukkari et al.,
//! SC-W 2023) supports all four standard dense linear algebra data types:
//! `float`, `double`, `float complex`, and `double complex`. This crate
//! provides the corresponding Rust types and the [`Scalar`] / [`Real`]
//! traits that every kernel in the workspace is generic over.
//!
//! The complex types are implemented from scratch (see [`Complex`]) because
//! the workspace builds every substrate itself.

mod complex;
mod real;
mod scalar_trait;

pub use complex::{Complex, Complex32, Complex64};
pub use real::Real;
pub use scalar_trait::Scalar;

/// Machine epsilon for a scalar type's underlying real type.
///
/// Convenience free function mirroring LAPACK's `dlamch('E')`.
pub fn eps<S: Scalar>() -> S::Real {
    <S::Real as Real>::EPSILON
}

/// Safe minimum (smallest positive normal) for the underlying real type,
/// mirroring LAPACK's `dlamch('S')`.
pub fn safe_min<S: Scalar>() -> S::Real {
    <S::Real as Real>::MIN_POSITIVE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eps_matches_std() {
        assert_eq!(eps::<f32>(), f32::EPSILON);
        assert_eq!(eps::<f64>(), f64::EPSILON);
        assert_eq!(eps::<Complex32>(), f32::EPSILON);
        assert_eq!(eps::<Complex64>(), f64::EPSILON);
    }

    #[test]
    fn safe_min_positive() {
        assert!(safe_min::<f64>() > 0.0);
        assert!(safe_min::<Complex32>() > 0.0);
    }
}
