//! From-scratch complex number type.
//!
//! The workspace avoids external numeric crates, so `Complex<T>` implements
//! exactly the operations the dense linear algebra kernels need: field
//! arithmetic, conjugation, modulus (overflow-safe via `hypot`), square
//! root, and mixed complex×real scaling.

use crate::Real;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Complex number over a [`Real`] field.
///
/// `repr(C)` pins the `[re, im]` memory layout that the packed SIMD
/// microkernels rely on when streaming complex panels as real pairs.
#[derive(Copy, Clone, Default, PartialEq, Serialize, Deserialize)]
#[repr(C)]
pub struct Complex<T> {
    /// Real part.
    pub re: T,
    /// Imaginary part.
    pub im: T,
}

/// Single-precision complex, the paper's `float complex`.
pub type Complex32 = Complex<f32>;
/// Double-precision complex, the paper's `double complex`.
pub type Complex64 = Complex<f64>;

impl<T: Real> Complex<T> {
    #[inline]
    pub fn new(re: T, im: T) -> Self {
        Self { re, im }
    }

    #[inline]
    pub fn from_real(re: T) -> Self {
        Self { re, im: T::ZERO }
    }

    #[inline]
    pub fn i() -> Self {
        Self { re: T::ZERO, im: T::ONE }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self { re: self.re, im: -self.im }
    }

    /// Modulus `|z|`, computed with `hypot` to avoid intermediate
    /// overflow/underflow.
    #[inline]
    pub fn abs(self) -> T {
        self.re.hypot(self.im)
    }

    /// Squared modulus `|z|^2`.
    #[inline]
    pub fn abs_sq(self) -> T {
        self.re * self.re + self.im * self.im
    }

    /// Principal square root.
    ///
    /// Uses the half-angle construction: for `z = x + iy`,
    /// `sqrt(z) = t + i y/(2t)` with `t = sqrt((|z| + x)/2)` when `x >= 0`,
    /// and the mirrored form when `x < 0` to avoid cancellation.
    pub fn sqrt(self) -> Self {
        let (x, y) = (self.re, self.im);
        if x == T::ZERO && y == T::ZERO {
            return Self::default();
        }
        let m = self.abs();
        if x >= T::ZERO {
            let t = ((m + x) / T::TWO).sqrt();
            Self::new(t, y / (T::TWO * t))
        } else {
            let t = ((m - x) / T::TWO).sqrt();
            let t_signed = if y < T::ZERO { -t } else { t };
            Self::new(y.abs() / (T::TWO * t), t_signed)
        }
    }

    /// Multiplicative inverse, using Smith's algorithm for robustness
    /// against overflow in the naive `conj(z)/|z|^2` formula.
    pub fn recip(self) -> Self {
        let (a, b) = (self.re, self.im);
        if a.abs() >= b.abs() {
            let r = b / a;
            let d = a + b * r;
            Self::new(d.recip(), -r / d)
        } else {
            let r = a / b;
            let d = a * r + b;
            Self::new(r / d, -d.recip())
        }
    }

    /// Scale by a real factor.
    #[inline]
    pub fn scale(self, s: T) -> Self {
        Self::new(self.re * s, self.im * s)
    }

    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl<T: Real> Add for Complex<T> {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl<T: Real> Sub for Complex<T> {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl<T: Real> Mul for Complex<T> {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self::new(self.re * rhs.re - self.im * rhs.im, self.re * rhs.im + self.im * rhs.re)
    }
}

impl<T: Real> Div for Complex<T> {
    type Output = Self;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w = z * w^{-1}
    fn div(self, rhs: Self) -> Self {
        self * rhs.recip()
    }
}

impl<T: Real> Neg for Complex<T> {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl<T: Real> AddAssign for Complex<T> {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}
impl<T: Real> SubAssign for Complex<T> {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}
impl<T: Real> MulAssign for Complex<T> {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}
impl<T: Real> DivAssign for Complex<T> {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl<T: Real> Sum for Complex<T> {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::default(), |acc, z| acc + z)
    }
}

impl<T: Real> fmt::Debug for Complex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:?}{:+?}i)", self.re, self.im)
    }
}

impl<T: Real> fmt::Display for Complex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}+{}i)", self.re, self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex64, b: Complex64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn arithmetic() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -1.0);
        assert_eq!(a + b, Complex64::new(4.0, 1.0));
        assert_eq!(a - b, Complex64::new(-2.0, 3.0));
        assert_eq!(a * b, Complex64::new(5.0, 5.0));
        assert!(close(a / b * b, a, 1e-15));
    }

    #[test]
    fn conj_and_abs() {
        let z = Complex64::new(3.0, 4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.abs_sq(), 25.0);
        assert_eq!(z.conj(), Complex64::new(3.0, -4.0));
        // z * conj(z) = |z|^2
        assert!(close(z * z.conj(), Complex64::from_real(25.0), 1e-14));
    }

    #[test]
    fn sqrt_principal_branch() {
        let z = Complex64::new(-4.0, 0.0);
        let r = z.sqrt();
        assert!(close(r, Complex64::new(0.0, 2.0), 1e-14));
        assert!(close(r * r, z, 1e-13));

        // negative imaginary part stays in the principal branch (re >= 0)
        let w = Complex64::new(-3.0, -4.0);
        let s = w.sqrt();
        assert!(s.re >= 0.0);
        assert!(close(s * s, w, 1e-12));
    }

    #[test]
    fn sqrt_zero() {
        assert_eq!(Complex64::default().sqrt(), Complex64::default());
    }

    #[test]
    fn recip_extreme_magnitudes() {
        // Smith's algorithm must survive components near overflow.
        let z = Complex64::new(1e300, 1e300);
        let r = z.recip();
        assert!(r.is_finite());
        assert!(close(z * r, Complex64::from_real(1.0), 1e-12));
    }

    #[test]
    fn division_by_tiny() {
        let z = Complex64::new(1.0, 1.0);
        let tiny = Complex64::new(1e-300, 0.0);
        let q = z / tiny;
        assert!(q.is_finite());
    }

    #[test]
    fn i_squared_is_minus_one() {
        let i = Complex64::i();
        assert!(close(i * i, Complex64::from_real(-1.0), 0.0));
    }

    #[test]
    fn sum_iterator() {
        let v = vec![Complex64::new(1.0, 1.0); 4];
        let s: Complex64 = v.into_iter().sum();
        assert_eq!(s, Complex64::new(4.0, 4.0));
    }
}
