//! Property-based tests for the from-scratch complex type and the Scalar
//! trait: field axioms, conjugation identities, and robustness of the
//! overflow-safe primitives.

use polar_scalar::{Complex64, Scalar};
use proptest::prelude::*;

fn finite_component() -> impl Strategy<Value = f64> {
    prop_oneof![-1e6f64..1e6f64, -1.0f64..1.0f64, Just(0.0), Just(1.0), Just(-1.0),]
}

fn complex() -> impl Strategy<Value = Complex64> {
    (finite_component(), finite_component()).prop_map(|(re, im)| Complex64::new(re, im))
}

fn close(a: Complex64, b: Complex64, tol: f64) -> bool {
    (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
}

proptest! {
    #[test]
    fn addition_commutes(a in complex(), b in complex()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn multiplication_commutes(a in complex(), b in complex()) {
        prop_assert!(close(a * b, b * a, 1e-15));
    }

    #[test]
    fn distributivity(a in complex(), b in complex(), c in complex()) {
        prop_assert!(close(a * (b + c), a * b + a * c, 1e-12));
    }

    #[test]
    fn conj_is_ring_homomorphism(a in complex(), b in complex()) {
        prop_assert!(close((a * b).conj(), a.conj() * b.conj(), 1e-15));
        prop_assert_eq!((a + b).conj(), a.conj() + b.conj());
    }

    #[test]
    fn modulus_is_multiplicative(a in complex(), b in complex()) {
        let lhs = (a * b).abs();
        let rhs = a.abs() * b.abs();
        prop_assert!((lhs - rhs).abs() <= 1e-9 * (1.0 + rhs));
    }

    #[test]
    fn triangle_inequality(a in complex(), b in complex()) {
        prop_assert!((a + b).abs() <= a.abs() + b.abs() + 1e-9);
    }

    #[test]
    fn sqrt_squares_back(a in complex()) {
        let r = a.sqrt();
        // principal branch: non-negative real part
        prop_assert!(r.re >= 0.0 || r.re.abs() < 1e-12);
        prop_assert!(close(r * r, a, 1e-10));
    }

    #[test]
    fn recip_is_inverse(a in complex()) {
        prop_assume!(a.abs() > 1e-6);
        prop_assert!(close(a * a.recip(), Complex64::from_real(1.0), 1e-12));
    }

    #[test]
    fn mul_real_matches_full_mul(a in complex(), s in finite_component()) {
        let via_scalar = a.mul_real(s);
        let via_complex = a * Complex64::from_real(s);
        prop_assert!(close(via_scalar, via_complex, 1e-15));
    }

    #[test]
    fn abs1_bounds_abs(a in complex()) {
        // |z| <= |re| + |im| <= sqrt(2) |z|
        let abs = a.abs();
        let abs1 = Scalar::abs1(a);
        prop_assert!(abs <= abs1 + 1e-12);
        prop_assert!(abs1 <= 2f64.sqrt() * abs + 1e-12);
    }
}
