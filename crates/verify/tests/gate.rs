//! Gate mechanics: baseline round-trip, regression detection with named
//! metric + cond bucket, and byte-deterministic report rendering.

use polar_verify::{
    check, parse_baseline, render_baseline, render_report, run_grid, CaseSpec, SolverPath,
};

/// A grid small enough for debug-mode CI but still spanning solver
/// paths, shapes, and a non-trivial cond.
fn mini_grid() -> Vec<CaseSpec> {
    vec![
        CaseSpec { type_tag: "d", solver: SolverPath::Qdwh, m: 24, n: 24, cond: 1e8, seed: 1 },
        CaseSpec { type_tag: "z", solver: SolverPath::Qdwh, m: 72, n: 24, cond: 1e4, seed: 2 },
        CaseSpec { type_tag: "s", solver: SolverPath::Qdwh, m: 24, n: 24, cond: 1e3, seed: 3 },
        CaseSpec { type_tag: "d", solver: SolverPath::Zolo, m: 24, n: 24, cond: 1e6, seed: 4 },
    ]
}

#[test]
fn baseline_round_trip_and_gate_pass() {
    let results = run_grid(&mini_grid()).expect("mini grid solves");
    let text = render_baseline(&results);
    let baseline = parse_baseline(&text).expect("own output parses");
    assert_eq!(baseline.cases.len(), results.len());
    for (b, r) in baseline.cases.iter().zip(&results) {
        assert_eq!(b.id, r.spec.id());
        // shortest-roundtrip formatting: values survive exactly
        assert_eq!(b.values.backward, r.metrics.backward);
        assert_eq!(b.values.psd, r.metrics.psd);
        assert!(b.bands.orthogonality >= r.metrics.orthogonality);
    }
    assert!(check(&results, &baseline).is_empty(), "fresh results pass their own baseline");
}

#[test]
fn regression_fails_with_named_metric_and_cond_bucket() {
    let results = run_grid(&mini_grid()).expect("mini grid solves");
    let mut baseline = parse_baseline(&render_baseline(&results)).unwrap();
    // simulate a regression: tighten one band below the observed value
    baseline.cases[0].bands.backward = results[0].metrics.backward / 2.0;
    let failures = check(&results, &baseline);
    assert_eq!(failures.len(), 1, "{failures:?}");
    let f = &failures[0];
    assert_eq!(f.case_id, results[0].spec.id());
    assert_eq!(f.metric, "backward");
    assert_eq!(f.cond_bucket, "1e8");
    let msg = f.to_string();
    assert!(msg.contains("'backward'") && msg.contains("cond bucket 1e8"), "{msg}");
}

#[test]
fn grid_drift_is_flagged_both_ways() {
    let results = run_grid(&mini_grid()).expect("mini grid solves");
    let full = parse_baseline(&render_baseline(&results)).unwrap();

    // baseline missing a case that ran
    let mut missing = full.clone();
    missing.cases.remove(0);
    let failures = check(&results, &missing);
    assert!(failures.iter().any(|f| f.metric.contains("missing from baseline")), "{failures:?}");

    // baseline case that no longer runs
    let failures = check(&results[1..], &full);
    assert!(failures.iter().any(|f| f.metric.contains("did not run")), "{failures:?}");
}

#[test]
fn report_rendering_is_deterministic_and_gated() {
    let results = run_grid(&mini_grid()[..2]).expect("cases solve");
    let baseline = parse_baseline(&render_baseline(&results)).unwrap();
    let a = render_report(&results, Some(&baseline), Some(42), 4);
    let b = render_report(&results, Some(&baseline), Some(42), 4);
    assert_eq!(a, b, "same inputs must render byte-identical reports");
    assert!(a.contains("\"gate\": \"pass\""));
    assert!(a.contains("\"deterministic\": true"));
    assert!(a.contains("\"seed\": 42"));
    // report is valid JSON for downstream consumers
    let parsed = serde::json::from_str(&a).expect("report is well-formed JSON");
    let cases = parsed.get("cases").and_then(|v| v.as_array()).unwrap();
    assert_eq!(cases.len(), 2);
    for c in cases {
        let m = c.get("metrics").unwrap();
        for name in ["backward", "orthogonality", "hermitian", "psd"] {
            assert_eq!(
                m.get(name).unwrap().get("pass").and_then(serde::json::Value::as_bool),
                Some(true)
            );
        }
    }

    // ungated rendering marks itself as such
    let ungated = render_report(&results, None, None, 1);
    assert!(ungated.contains("\"gate\": \"ungated\""));
    assert!(ungated.contains("\"seed\": null"));
}
