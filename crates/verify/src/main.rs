//! `polar-verify` — the accuracy gate CLI.
//!
//! ```sh
//! cargo run --release -p polar-verify                     # sweep + report, no gate
//! cargo run --release -p polar-verify -- --gate           # compare vs baseline, exit 1 on regression
//! cargo run --release -p polar-verify -- --write-baseline # regenerate results/ACCURACY_baseline.json
//! ```
//!
//! Flags: `--baseline <path>` (default `results/ACCURACY_baseline.json`),
//! `--out <path>` (default `ACCURACY_report.json`). With
//! `POLAR_DETERMINISTIC=1 POLAR_SEED=<n>` two consecutive runs produce
//! byte-identical reports (fixed pool, seeded schedule, timestamp-free
//! artifact).

use polar_verify::{
    case_grid, check, parse_baseline, render_baseline, render_report, run_grid, METRIC_NAMES,
};
use std::process::ExitCode;

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter().position(|a| a == key).and_then(|i| args.get(i + 1)).cloned()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let gate = args.iter().any(|a| a == "--gate");
    let write_baseline = args.iter().any(|a| a == "--write-baseline");
    let baseline_path =
        arg_value(&args, "--baseline").unwrap_or_else(|| "results/ACCURACY_baseline.json".into());
    let out_path = arg_value(&args, "--out").unwrap_or_else(|| "ACCURACY_report.json".into());

    let deterministic = rayon::deterministic_mode();
    let grid = case_grid();
    eprintln!(
        "polar-verify: {} cases, {} pool workers{}",
        grid.len(),
        rayon::current_num_threads(),
        match deterministic {
            Some(seed) => format!(", deterministic replay (seed {seed})"),
            None => String::new(),
        }
    );

    let results = match run_grid(&grid) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("polar-verify: solver failure: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "{:>28} | {:>12} {:>13} {:>12} {:>12} | {:>4}",
        "case", "backward", "orthogonality", "hermitian", "psd", "iter"
    );
    for r in &results {
        println!(
            "{:>28} | {:>12.3e} {:>13.3e} {:>12.3e} {:>12.3e} | {:>4}",
            r.spec.id(),
            r.metrics.backward,
            r.metrics.orthogonality,
            r.metrics.hermitian,
            r.metrics.psd,
            r.iterations
        );
    }

    if write_baseline {
        let text = render_baseline(&results);
        if let Some(dir) = std::path::Path::new(&baseline_path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = std::fs::write(&baseline_path, &text) {
            eprintln!("polar-verify: cannot write baseline {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("polar-verify: baseline written to {baseline_path}");
    }

    let baseline = if gate {
        let text = match std::fs::read_to_string(&baseline_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!(
                    "polar-verify: cannot read baseline {baseline_path}: {e} \
                     (run with --write-baseline to create it)"
                );
                return ExitCode::FAILURE;
            }
        };
        match parse_baseline(&text) {
            Ok(b) => Some(b),
            Err(e) => {
                eprintln!("polar-verify: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };

    let report =
        render_report(&results, baseline.as_ref(), deterministic, rayon::current_num_threads());
    if let Err(e) = std::fs::write(&out_path, &report) {
        eprintln!("polar-verify: cannot write report {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("polar-verify: report written to {out_path}");

    if let Some(b) = &baseline {
        let failures = check(&results, b);
        if failures.is_empty() {
            eprintln!(
                "polar-verify: GATE PASS — {} cases x {} metrics within tolerance bands",
                results.len(),
                METRIC_NAMES.len()
            );
        } else {
            eprintln!("polar-verify: GATE FAIL — {} violation(s):", failures.len());
            for f in &failures {
                eprintln!("  {f}");
            }
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
