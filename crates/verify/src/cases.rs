//! The verification case grid: which matrices, through which solvers.

use polar_gen::{MatrixSpec, SigmaDistribution};

/// Which solver path a case exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverPath {
    /// `polar_qdwh::qdwh` with default options (the paper's Algorithm 1).
    Qdwh,
    /// `polar_qdwh::zolo_pd` (Zolotarev-rational PD, §8 future work).
    Zolo,
    /// `polar_qdwh::qdwh_mixed` (low-precision solve + Newton–Schulz).
    Mixed,
}

impl SolverPath {
    pub fn as_str(self) -> &'static str {
        match self {
            SolverPath::Qdwh => "qdwh",
            SolverPath::Zolo => "zolo",
            SolverPath::Mixed => "mixed",
        }
    }
}

/// One verification case: scalar type, solver, shape, condition number.
#[derive(Debug, Clone)]
pub struct CaseSpec {
    /// LAPACK-style type tag: `d`, `z`, `s`, `c`.
    pub type_tag: &'static str,
    pub solver: SolverPath,
    pub m: usize,
    pub n: usize,
    /// Target condition number, already capped for the scalar type.
    pub cond: f64,
    pub seed: u64,
}

impl CaseSpec {
    /// Stable identifier used to join report cases against the baseline,
    /// e.g. `qdwh-d-192x64-cond1e13`.
    pub fn id(&self) -> String {
        format!(
            "{}-{}-{}x{}-cond{}",
            self.solver.as_str(),
            self.type_tag,
            self.m,
            self.n,
            cond_label(self.cond)
        )
    }

    /// The generator spec for this case (geometric spectrum, the paper's
    /// ill-conditioned default distribution).
    pub fn matrix_spec(&self) -> MatrixSpec {
        MatrixSpec {
            m: self.m,
            n: self.n,
            cond: self.cond,
            distribution: SigmaDistribution::Geometric,
            seed: self.seed,
        }
    }

    /// The cond bucket named in gate-failure messages.
    pub fn cond_bucket(&self) -> String {
        cond_label(self.cond)
    }
}

/// Compact label for a condition number: `1e0`, `1e8`, `8e5`, ...
pub fn cond_label(cond: f64) -> String {
    format!("{cond:.0e}")
}

const SQUARE_N: usize = 64;
const RECT_FACTOR: usize = 3; // the paper's tall case: m = 3n

/// Master cond sweep for double precision; single precision gets the
/// same sweep capped at `0.1 / eps_f32` (≈ 8e5) and deduplicated, per
/// the gate's "1e0 → 1e13 for f64/c64, 1e0 → 1e5 for f32/c32" contract.
const CONDS: [f64; 4] = [1e0, 1e4, 1e8, 1e13];

fn conds_for(eps: f64) -> Vec<f64> {
    let mut out: Vec<f64> = Vec::new();
    for &cond in &CONDS {
        let spec = MatrixSpec {
            m: SQUARE_N,
            n: SQUARE_N,
            cond,
            distribution: SigmaDistribution::Geometric,
            seed: 0,
        }
        .cond_capped(eps);
        if out.last() != Some(&spec.cond) {
            out.push(spec.cond);
        }
    }
    out
}

/// The full verification grid, in a fixed deterministic order: for each
/// scalar type, QDWH over square and `3n x n` rectangular shapes across
/// the type's cond sweep; Zolo-PD and mixed-precision for the double
/// types (mixed is capped at the single-precision cond range because its
/// iteration runs in `f32`/`c32`).
pub fn case_grid() -> Vec<CaseSpec> {
    let n = SQUARE_N;
    let m_rect = RECT_FACTOR * n;
    let double_conds = conds_for(f64::EPSILON);
    let single_conds = conds_for(f32::EPSILON as f64);
    let mut grid = Vec::new();
    let mut seed = 100u64;

    for &tag in &["d", "z", "s", "c"] {
        let conds =
            if tag == "d" || tag == "z" { double_conds.clone() } else { single_conds.clone() };
        for &(m, nn) in &[(n, n), (m_rect, n)] {
            for &cond in &conds {
                seed += 1;
                grid.push(CaseSpec {
                    type_tag: tag,
                    solver: SolverPath::Qdwh,
                    m,
                    n: nn,
                    cond,
                    seed,
                });
            }
        }
    }
    for &tag in &["d", "z"] {
        for &cond in &double_conds {
            seed += 1;
            grid.push(CaseSpec { type_tag: tag, solver: SolverPath::Zolo, m: n, n, cond, seed });
        }
        for &cond in &single_conds {
            seed += 1;
            grid.push(CaseSpec { type_tag: tag, solver: SolverPath::Mixed, m: n, n, cond, seed });
        }
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_types_shapes_and_solvers() {
        let grid = case_grid();
        for tag in ["d", "z", "s", "c"] {
            assert!(grid.iter().any(|c| c.type_tag == tag), "missing type {tag}");
        }
        assert!(grid.iter().any(|c| c.m == 3 * c.n), "missing rectangular cases");
        for solver in [SolverPath::Qdwh, SolverPath::Zolo, SolverPath::Mixed] {
            assert!(grid.iter().any(|c| c.solver == solver), "missing {solver:?}");
        }
        // double precision reaches 1e13; single is capped below 1e6
        assert!(grid.iter().any(|c| c.type_tag == "d" && c.cond == 1e13));
        assert!(grid.iter().filter(|c| c.type_tag == "s").all(|c| c.cond < 1e6));
        assert!(grid.iter().any(|c| c.type_tag == "s" && c.cond > 1e5));
    }

    #[test]
    fn ids_are_unique_and_order_is_stable() {
        let grid = case_grid();
        let ids: Vec<String> = grid.iter().map(|c| c.id()).collect();
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len(), "duplicate case ids");
        assert_eq!(ids, case_grid().iter().map(|c| c.id()).collect::<Vec<_>>());
    }

    #[test]
    fn cond_labels_are_compact() {
        assert_eq!(cond_label(1.0), "1e0");
        assert_eq!(cond_label(1e13), "1e13");
        assert_eq!(cond_label(0.1 / f32::EPSILON as f64), "8e5");
    }
}
