//! Baseline compare, tolerance bands, and the JSON artifacts.
//!
//! Both artifacts are rendered with a fixed case order, fixed key order,
//! shortest-roundtrip float formatting, and no timestamps — so a
//! deterministic-mode rerun produces byte-identical output, which is the
//! property the CI gate asserts.

use crate::cases::CaseSpec;
use crate::run::{eps_for_tag, CaseMetrics, CaseResult, METRIC_NAMES};
use serde::json::{from_str, Value};
use std::fmt::Write as _;

/// A fresh metric may exceed its baseline value by this factor before
/// the gate trips (absorbs cross-machine SIMD-dispatch and scheduling
/// differences in the last bits).
pub const BAND_FACTOR: f64 = 8.0;

/// Band floor, in units of the scalar type's machine epsilon: baselines
/// near zero (e.g. the symmetrized-H metrics) would otherwise produce
/// unmeetable bands.
pub const FLOOR_EPS_MULT: f64 = 200.0;

/// Per-metric tolerance bands of one case.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricBands {
    pub backward: f64,
    pub orthogonality: f64,
    pub hermitian: f64,
    pub psd: f64,
}

impl MetricBands {
    /// Bands derived from observed baseline values:
    /// `max(value * BAND_FACTOR, FLOOR_EPS_MULT * eps_type)`.
    pub fn from_values(metrics: &CaseMetrics, type_tag: &str) -> Self {
        let floor = FLOOR_EPS_MULT * eps_for_tag(type_tag);
        let band = |v: f64| (v * BAND_FACTOR).max(floor);
        Self {
            backward: band(metrics.backward),
            orthogonality: band(metrics.orthogonality),
            hermitian: band(metrics.hermitian),
            psd: band(metrics.psd),
        }
    }

    pub fn get(&self, name: &str) -> Option<f64> {
        match name {
            "backward" => Some(self.backward),
            "orthogonality" => Some(self.orthogonality),
            "hermitian" => Some(self.hermitian),
            "psd" => Some(self.psd),
            _ => None,
        }
    }
}

/// One baseline entry: the recorded metric values and their bands.
#[derive(Debug, Clone)]
pub struct BaselineCase {
    pub id: String,
    pub values: CaseMetrics,
    pub bands: MetricBands,
}

/// The parsed accuracy baseline.
#[derive(Debug, Clone)]
pub struct Baseline {
    pub cases: Vec<BaselineCase>,
}

impl Baseline {
    pub fn get(&self, id: &str) -> Option<&BaselineCase> {
        self.cases.iter().find(|c| c.id == id)
    }
}

/// One gate violation, named precisely enough to act on: the case, the
/// metric, the cond bucket, and both sides of the comparison.
#[derive(Debug, Clone)]
pub struct GateFailure {
    pub case_id: String,
    pub metric: String,
    pub cond_bucket: String,
    pub observed: f64,
    pub allowed: f64,
}

impl std::fmt::Display for GateFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: metric '{}' = {:e} exceeds band {:e} (cond bucket {})",
            self.case_id, self.metric, self.observed, self.allowed, self.cond_bucket
        )
    }
}

/// Compare fresh results against the baseline. Returns every violation:
/// metrics outside their band, cases missing from the baseline (the grid
/// grew — regenerate), and baseline cases that did not run (the grid
/// shrank — also regenerate).
pub fn check(results: &[CaseResult], baseline: &Baseline) -> Vec<GateFailure> {
    let mut failures = Vec::new();
    for r in results {
        let id = r.spec.id();
        let Some(base) = baseline.get(&id) else {
            failures.push(GateFailure {
                case_id: id,
                metric: "<case missing from baseline>".into(),
                cond_bucket: r.spec.cond_bucket(),
                observed: f64::NAN,
                allowed: f64::NAN,
            });
            continue;
        };
        for name in METRIC_NAMES {
            let observed = r.metrics.get(name).expect("known metric");
            let allowed = base.bands.get(name).expect("known metric");
            // negated so that a NaN metric fails the gate instead of passing
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(observed <= allowed) {
                failures.push(GateFailure {
                    case_id: id.clone(),
                    metric: name.into(),
                    cond_bucket: r.spec.cond_bucket(),
                    observed,
                    allowed,
                });
            }
        }
    }
    for base in &baseline.cases {
        if !results.iter().any(|r| r.spec.id() == base.id) {
            failures.push(GateFailure {
                case_id: base.id.clone(),
                metric: "<baseline case did not run>".into(),
                cond_bucket: "-".into(),
                observed: f64::NAN,
                allowed: f64::NAN,
            });
        }
    }
    failures
}

fn write_case_header(out: &mut String, spec: &CaseSpec) {
    let _ = write!(
        out,
        "      \"id\": \"{}\",\n      \"solver\": \"{}\",\n      \"type\": \"{}\",\n      \"m\": {},\n      \"n\": {},\n      \"cond\": {:e},\n      \"seed\": {},\n",
        spec.id(),
        spec.solver.as_str(),
        spec.type_tag,
        spec.m,
        spec.n,
        spec.cond,
        spec.seed
    );
}

/// Render the baseline artifact: per case, each metric's observed value
/// and the tolerance band derived from it.
pub fn render_baseline(results: &[CaseResult]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": 1,");
    let _ = writeln!(out, "  \"kind\": \"baseline\",");
    let _ = writeln!(out, "  \"band_factor\": {BAND_FACTOR},");
    let _ = writeln!(out, "  \"floor_eps_mult\": {FLOOR_EPS_MULT},");
    let _ = writeln!(out, "  \"cases\": [");
    for (i, r) in results.iter().enumerate() {
        let bands = MetricBands::from_values(&r.metrics, r.spec.type_tag);
        out.push_str("    {\n");
        write_case_header(&mut out, &r.spec);
        let _ = writeln!(out, "      \"metrics\": {{");
        for (k, name) in METRIC_NAMES.iter().enumerate() {
            let _ = writeln!(
                out,
                "        \"{name}\": {{\"value\": {:e}, \"tol\": {:e}}}{}",
                r.metrics.get(name).unwrap(),
                bands.get(name).unwrap(),
                if k + 1 < METRIC_NAMES.len() { "," } else { "" }
            );
        }
        let _ = writeln!(out, "      }}");
        out.push_str(if i + 1 < results.len() { "    },\n" } else { "    }\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Render the report artifact: observed metrics, the bands they were
/// judged against (when a baseline was provided), pass/fail per metric,
/// and the iteration telemetry. Deliberately timestamp-free.
pub fn render_report(
    results: &[CaseResult],
    baseline: Option<&Baseline>,
    deterministic: Option<u64>,
    pool_workers: usize,
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": 1,");
    let _ = writeln!(out, "  \"kind\": \"report\",");
    let _ = writeln!(out, "  \"deterministic\": {},", deterministic.is_some());
    match deterministic {
        Some(seed) => {
            let _ = writeln!(out, "  \"seed\": {seed},");
        }
        None => {
            let _ = writeln!(out, "  \"seed\": null,");
        }
    }
    let _ = writeln!(out, "  \"pool_workers\": {pool_workers},");
    let failures = baseline.map(|b| check(results, b));
    match &failures {
        None => {
            let _ = writeln!(out, "  \"gate\": \"ungated\",");
        }
        Some(f) if f.is_empty() => {
            let _ = writeln!(out, "  \"gate\": \"pass\",");
        }
        Some(_) => {
            let _ = writeln!(out, "  \"gate\": \"fail\",");
        }
    }
    let _ = writeln!(out, "  \"cases\": [");
    for (i, r) in results.iter().enumerate() {
        let base = baseline.and_then(|b| b.get(&r.spec.id()));
        out.push_str("    {\n");
        write_case_header(&mut out, &r.spec);
        let _ = writeln!(out, "      \"iterations\": {},", r.iterations);
        let _ = writeln!(out, "      \"qr_iterations\": {},", r.qr_iterations);
        let _ = writeln!(out, "      \"chol_iterations\": {},", r.chol_iterations);
        let _ = writeln!(out, "      \"metrics\": {{");
        for (k, name) in METRIC_NAMES.iter().enumerate() {
            let value = r.metrics.get(name).unwrap();
            let trail = if k + 1 < METRIC_NAMES.len() { "," } else { "" };
            match base {
                Some(b) => {
                    let tol = b.bands.get(name).unwrap();
                    let _ = writeln!(
                        out,
                        "        \"{name}\": {{\"value\": {value:e}, \"tol\": {tol:e}, \"pass\": {}}}{trail}",
                        value <= tol
                    );
                }
                None => {
                    let _ = writeln!(out, "        \"{name}\": {{\"value\": {value:e}}}{trail}");
                }
            }
        }
        let _ = writeln!(out, "      }}");
        out.push_str(if i + 1 < results.len() { "    },\n" } else { "    }\n" });
    }
    let _ = writeln!(out, "  ],");
    match &failures {
        Some(f) if !f.is_empty() => {
            let _ = writeln!(out, "  \"failures\": [");
            for (i, fail) in f.iter().enumerate() {
                let _ = writeln!(out, "    \"{fail}\"{}", if i + 1 < f.len() { "," } else { "" });
            }
            let _ = writeln!(out, "  ]");
        }
        _ => {
            let _ = writeln!(out, "  \"failures\": []");
        }
    }
    out.push('}');
    out.push('\n');
    out
}

fn field_f64(v: &Value, key: &str, ctx: &str) -> Result<f64, String> {
    v.get(key).and_then(Value::as_f64).ok_or_else(|| format!("{ctx}: missing number '{key}'"))
}

/// Parse a baseline artifact previously written by [`render_baseline`].
pub fn parse_baseline(text: &str) -> Result<Baseline, String> {
    let root = from_str(text).map_err(|e| format!("baseline: {e}"))?;
    let kind = root.get("kind").and_then(Value::as_str).unwrap_or("");
    if kind != "baseline" {
        return Err(format!("baseline: kind is {kind:?}, expected \"baseline\""));
    }
    let cases = root
        .get("cases")
        .and_then(|v| v.as_array())
        .ok_or_else(|| "baseline: missing 'cases' array".to_string())?;
    let mut out = Vec::with_capacity(cases.len());
    for c in cases {
        let id = c
            .get("id")
            .and_then(Value::as_str)
            .ok_or_else(|| "baseline case: missing 'id'".to_string())?
            .to_string();
        let metrics =
            c.get("metrics").ok_or_else(|| format!("baseline case {id}: missing 'metrics'"))?;
        let pick = |name: &str| -> Result<(f64, f64), String> {
            let m = metrics.get(name).ok_or_else(|| format!("case {id}: missing '{name}'"))?;
            Ok((field_f64(m, "value", &id)?, field_f64(m, "tol", &id)?))
        };
        let (bw, bw_t) = pick("backward")?;
        let (orth, orth_t) = pick("orthogonality")?;
        let (herm, herm_t) = pick("hermitian")?;
        let (psd, psd_t) = pick("psd")?;
        out.push(BaselineCase {
            id,
            values: CaseMetrics { backward: bw, orthogonality: orth, hermitian: herm, psd },
            bands: MetricBands {
                backward: bw_t,
                orthogonality: orth_t,
                hermitian: herm_t,
                psd: psd_t,
            },
        });
    }
    Ok(Baseline { cases: out })
}
