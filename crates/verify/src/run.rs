//! Solving one verification case and measuring the paper's three metrics.

use crate::cases::{CaseSpec, SolverPath};
use polar_blas::gemm;
use polar_gen::generate;
use polar_matrix::{Matrix, Op};
use polar_qdwh::{
    hermitian_deviation, orthogonality_error, psd_deviation, qdwh, qdwh_mixed, zolo_pd,
    MixedPrecision, PolarDecomposition, QdwhOptions, ZoloOptions,
};
use polar_scalar::{Complex32, Complex64, Real, Scalar};

/// Metric names in report order. `backward` and `orthogonality` are the
/// paper's Fig. 1b / Fig. 1a; `hermitian` and `psd` quantify how far the
/// computed `H` is from Hermitian positive-semidefinite (the
/// backward-stability criteria of arXiv:2104.06659).
pub const METRIC_NAMES: [&str; 4] = ["backward", "orthogonality", "hermitian", "psd"];

/// The three paper metrics (the H quality claim splits into two numbers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CaseMetrics {
    /// `||A - U_p H||_F / ||A||_F`.
    pub backward: f64,
    /// `||U_p^H U_p - I||_F / sqrt(n)`.
    pub orthogonality: f64,
    /// `||G - G^H||_F / max(||G||_F, 1)` of the *raw* `G = U_p^H A`
    /// (the driver symmetrizes its returned `H`, so the raw product is
    /// the honest measurement).
    pub hermitian: f64,
    /// `max(0, -lambda_min(H)) / max(lambda_max(H), 1)`.
    pub psd: f64,
}

impl CaseMetrics {
    pub fn get(&self, name: &str) -> Option<f64> {
        match name {
            "backward" => Some(self.backward),
            "orthogonality" => Some(self.orthogonality),
            "hermitian" => Some(self.hermitian),
            "psd" => Some(self.psd),
            _ => None,
        }
    }
}

/// Outcome of one case: the metrics plus the iteration telemetry the
/// report records (all scheduling-independent, so the report stays
/// byte-deterministic).
#[derive(Debug, Clone)]
pub struct CaseResult {
    pub spec: CaseSpec,
    pub metrics: CaseMetrics,
    pub iterations: usize,
    pub qr_iterations: usize,
    pub chol_iterations: usize,
}

/// Machine epsilon of a type tag's real scalar, as `f64`.
pub fn eps_for_tag(tag: &str) -> f64 {
    match tag {
        "d" | "z" => f64::EPSILON,
        "s" | "c" => f32::EPSILON as f64,
        other => panic!("unknown type tag {other:?}"),
    }
}

fn measure<S: Scalar>(a: &Matrix<S>, pd: &PolarDecomposition<S>) -> Result<CaseMetrics, String> {
    let n = a.ncols();
    // raw G = U^H A, *before* the driver's symmetrization
    let mut raw = Matrix::<S>::zeros(n, n);
    gemm(Op::ConjTrans, Op::NoTrans, S::ONE, pd.u.as_ref(), a.as_ref(), S::ZERO, raw.as_mut());
    Ok(CaseMetrics {
        backward: pd.backward_error(a).to_f64(),
        orthogonality: orthogonality_error(&pd.u).to_f64(),
        hermitian: hermitian_deviation(&raw).to_f64(),
        psd: psd_deviation(&pd.h).map_err(|e| format!("psd eig failed: {e}"))?.to_f64(),
    })
}

fn result_from<S: Scalar>(
    spec: &CaseSpec,
    a: &Matrix<S>,
    pd: &PolarDecomposition<S>,
) -> Result<CaseResult, String> {
    Ok(CaseResult {
        spec: spec.clone(),
        metrics: measure(a, pd)?,
        iterations: pd.info.iterations,
        qr_iterations: pd.info.qr_iterations,
        chol_iterations: pd.info.chol_iterations,
    })
}

fn run_direct<S: Scalar>(spec: &CaseSpec) -> Result<CaseResult, String> {
    let (a, _) = generate::<S>(&spec.matrix_spec());
    let pd = match spec.solver {
        SolverPath::Qdwh => {
            qdwh(&a, &QdwhOptions::default()).map_err(|e| format!("{}: {e}", spec.id()))?
        }
        SolverPath::Zolo => {
            zolo_pd(&a, &ZoloOptions::default()).map_err(|e| format!("{}: {e}", spec.id()))?.pd
        }
        SolverPath::Mixed => unreachable!("mixed dispatches through run_mixed"),
    };
    result_from(spec, &a, &pd)
}

fn run_mixed<S: MixedPrecision>(spec: &CaseSpec) -> Result<CaseResult, String> {
    let (a, _) = generate::<S>(&spec.matrix_spec());
    let (pd, _steps) =
        qdwh_mixed(&a, &QdwhOptions::default()).map_err(|e| format!("{}: {e}", spec.id()))?;
    result_from(spec, &a, &pd)
}

/// Solve one case and compute its metrics.
pub fn run_case(spec: &CaseSpec) -> Result<CaseResult, String> {
    match (spec.type_tag, spec.solver) {
        ("d", SolverPath::Mixed) => run_mixed::<f64>(spec),
        ("z", SolverPath::Mixed) => run_mixed::<Complex64>(spec),
        ("d", _) => run_direct::<f64>(spec),
        ("z", _) => run_direct::<Complex64>(spec),
        ("s", _) => run_direct::<f32>(spec),
        ("c", _) => run_direct::<Complex32>(spec),
        (tag, solver) => Err(format!("unsupported case: type {tag:?} via {solver:?}")),
    }
}

/// Solve every case in order. Fails fast on the first solver error — a
/// non-converging case is itself a gate failure.
pub fn run_grid(grid: &[CaseSpec]) -> Result<Vec<CaseResult>, String> {
    grid.iter().map(run_case).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases::case_grid;

    #[test]
    fn one_case_per_type_meets_paper_accuracy() {
        // debug-mode smoke over a thin slice: the cheapest (cond = 1e0,
        // square, qdwh) case of each scalar type
        let grid = case_grid();
        for tag in ["d", "z", "s", "c"] {
            let spec = grid
                .iter()
                .find(|c| {
                    c.type_tag == tag && c.solver == SolverPath::Qdwh && c.m == c.n && c.cond == 1.0
                })
                .expect("grid has the well-conditioned square qdwh case");
            let r = run_case(spec).expect("case solves");
            let tol = 1e3 * eps_for_tag(tag);
            for name in METRIC_NAMES {
                let v = r.metrics.get(name).unwrap();
                assert!(v < tol, "{}: {name} = {v:e} vs {tol:e}", spec.id());
            }
            assert!(r.iterations >= 1);
        }
    }

    #[test]
    fn metrics_are_reproducible_within_a_process() {
        let grid = case_grid();
        let spec = grid.iter().find(|c| c.type_tag == "d" && c.m == 3 * c.n).unwrap();
        let a = run_case(spec).unwrap();
        let b = run_case(spec).unwrap();
        assert_eq!(a.metrics, b.metrics, "same spec, same pool -> identical metrics");
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn eps_per_tag() {
        assert_eq!(eps_for_tag("d"), f64::EPSILON);
        assert_eq!(eps_for_tag("z"), f64::EPSILON);
        assert_eq!(eps_for_tag("s"), f32::EPSILON as f64);
        assert_eq!(eps_for_tag("c"), f32::EPSILON as f64);
    }
}
