//! `polar-verify`: the paper-parity accuracy gate.
//!
//! The paper's headline correctness claim (Fig. 1) is backward error and
//! orthogonality at machine-precision level across all four scalar types
//! and condition numbers up to 1e16. This crate turns that claim into a
//! permanent, machine-checkable gate:
//!
//! 1. [`case_grid`] enumerates a sweep of synthetic matrices with
//!    prescribed spectra (via `polar-gen`): square and rectangular
//!    (`3n x n`), κ from 1e0 to 1e13 for f64/c64 and capped near 1e5 for
//!    f32/c32, through the QDWH, Zolo-PD, and mixed-precision paths;
//! 2. [`run_grid`] solves every case and computes the paper's three
//!    metrics — backward error `||A - U_p H||_F / ||A||_F`,
//!    orthogonality `||U_p^H U_p - I||_F / sqrt(n)`, and the Hermitian
//!    factor's symmetry + PSD deviation;
//! 3. [`check`] compares each metric against a checked-in JSON baseline
//!    (`results/ACCURACY_baseline.json`) with per-metric tolerance
//!    bands, and [`render_report`] emits a byte-deterministic
//!    `ACCURACY_report.json` artifact (no timestamps, fixed case order,
//!    shortest-roundtrip float formatting) so two deterministic-mode
//!    runs produce identical bytes.
//!
//! The tolerance-band criteria follow Benner/Nakatsukasa/Penke
//! (arXiv:2104.06659) — a QDWH-type iteration is backward stable iff all
//! three metrics sit at `O(eps)` — and the cond-sweep methodology follows
//! the QDWH validation protocol of Keyes et al. (arXiv:2104.14186).

mod cases;
mod report;
mod run;

pub use cases::{case_grid, cond_label, CaseSpec, SolverPath};
pub use report::{
    check, parse_baseline, render_baseline, render_report, Baseline, BaselineCase, GateFailure,
    MetricBands, BAND_FACTOR, FLOOR_EPS_MULT,
};
pub use run::{eps_for_tag, run_case, run_grid, CaseMetrics, CaseResult, METRIC_NAMES};
