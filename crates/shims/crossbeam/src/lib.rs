//! Offline drop-in subset of the `crossbeam` API.
//!
//! Implements the [`channel`] module — multi-producer multi-consumer
//! bounded and unbounded channels with the crossbeam error vocabulary
//! (`TrySendError::Full` is what the service admission queue's
//! backpressure is built on). Internally a mutex-protected ring with two
//! condvars; contended throughput is far below real crossbeam's, but the
//! semantics (disconnect on last-sender/last-receiver drop, timeouts,
//! non-blocking probes) are the same.

pub mod channel;
