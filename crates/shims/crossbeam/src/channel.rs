//! MPMC bounded/unbounded channels with crossbeam-compatible semantics.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

struct State<T> {
    queue: VecDeque<T>,
    cap: Option<usize>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Shared<T> {
    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Create a bounded channel with capacity `cap`. `cap == 0` is supported
/// as capacity 1 (crossbeam's zero-capacity rendezvous semantics are not
/// reproduced; no consumer in this workspace uses them).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    make(Some(cap.max(1)))
}

/// Create an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    make(None)
}

fn make<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State { queue: VecDeque::new(), cap, senders: 1, receivers: 1 }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender { shared: shared.clone() }, Receiver { shared })
}

// ---------------------------------------------------------------- errors

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is at capacity (backpressure signal).
    Full(T),
    /// All receivers dropped.
    Disconnected(T),
}

impl<T> TrySendError<T> {
    pub fn into_inner(self) -> T {
        match self {
            TrySendError::Full(v) | TrySendError::Disconnected(v) => v,
        }
    }

    pub fn is_full(&self) -> bool {
        matches!(self, TrySendError::Full(_))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendTimeoutError<T> {
    Timeout(T),
    Disconnected(T),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    Timeout,
    Disconnected,
}

// ---------------------------------------------------------------- sender

pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Non-blocking send; `Err(Full)` when the channel is at capacity.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut st = self.shared.lock();
        if st.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if let Some(cap) = st.cap {
            if st.queue.len() >= cap {
                return Err(TrySendError::Full(value));
            }
        }
        st.queue.push_back(value);
        drop(st);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Blocking send; returns `Err` only when all receivers dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.shared.lock();
        loop {
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            match st.cap {
                Some(cap) if st.queue.len() >= cap => {
                    st = self.shared.not_full.wait(st).unwrap_or_else(|e| e.into_inner());
                }
                _ => break,
            }
        }
        st.queue.push_back(value);
        drop(st);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Blocking send with a deadline.
    pub fn send_timeout(&self, value: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.lock();
        loop {
            if st.receivers == 0 {
                return Err(SendTimeoutError::Disconnected(value));
            }
            match st.cap {
                Some(cap) if st.queue.len() >= cap => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(SendTimeoutError::Timeout(value));
                    }
                    let (guard, _) = self
                        .shared
                        .not_full
                        .wait_timeout(st, deadline - now)
                        .unwrap_or_else(|e| e.into_inner());
                    st = guard;
                }
                _ => break,
            }
        }
        st.queue.push_back(value);
        drop(st);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.lock().senders += 1;
        Sender { shared: self.shared.clone() }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.shared.lock();
        st.senders -= 1;
        let last = st.senders == 0;
        drop(st);
        if last {
            // wake blocked receivers so they observe the disconnect
            self.shared.not_empty.notify_all();
        }
    }
}

// -------------------------------------------------------------- receiver

pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Receiver<T> {
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.shared.lock();
        if let Some(v) = st.queue.pop_front() {
            drop(st);
            self.shared.not_full.notify_one();
            return Ok(v);
        }
        if st.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.shared.lock();
        loop {
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self.shared.not_empty.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.lock();
        loop {
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self
                .shared
                .not_empty
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
    }

    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.lock().receivers += 1;
        Receiver { shared: self.shared.clone() }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.shared.lock();
        st.receivers -= 1;
        let last = st.receivers == 0;
        drop(st);
        if last {
            // wake blocked senders so they observe the disconnect
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn bounded_backpressure() {
        let (tx, rx) = bounded::<u32>(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.try_recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Ok(3));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_semantics() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));

        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert!(matches!(tx.try_send(1), Err(TrySendError::Disconnected(1))));
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = bounded::<u32>(1);
        let err = rx.recv_timeout(Duration::from_millis(20)).unwrap_err();
        assert_eq!(err, RecvTimeoutError::Timeout);
    }

    #[test]
    fn send_timeout_on_full_channel() {
        let (tx, _rx) = bounded::<u32>(1);
        tx.send(1).unwrap();
        let err = tx.send_timeout(2, Duration::from_millis(20)).unwrap_err();
        assert!(matches!(err, SendTimeoutError::Timeout(2)));
    }

    #[test]
    fn mpmc_all_items_delivered_once() {
        let (tx, rx) = bounded::<u64>(8);
        let producers = 4;
        let per = 250u64;
        let mut handles = Vec::new();
        for p in 0..producers {
            let tx = tx.clone();
            handles.push(thread::spawn(move || {
                for i in 0..per {
                    tx.send(p * per + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut collectors = Vec::new();
        for _ in 0..3 {
            let rx = rx.clone();
            collectors.push(thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            }));
        }
        drop(rx);
        for h in handles {
            h.join().unwrap();
        }
        let mut all: Vec<u64> = collectors.into_iter().flat_map(|c| c.join().unwrap()).collect();
        all.sort_unstable();
        let expect: Vec<u64> = (0..producers * per).collect();
        assert_eq!(all, expect);
    }
}
