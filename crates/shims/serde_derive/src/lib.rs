//! Offline no-op `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` purely as decoration —
//! every actual serialization in the repo (Chrome traces, CSV/JSON
//! reports) is handwritten. These derives accept the syntax, including
//! `#[serde(...)]` helper attributes, and expand to nothing, so the
//! workspace builds without the real serde stack. If code ever starts
//! *calling* serde's traits, replace these shims with the real crates.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
