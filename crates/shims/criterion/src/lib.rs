//! Offline drop-in subset of the `criterion` API.
//!
//! A minimal wall-clock harness: each benchmark warms up once, then runs
//! enough iterations to fill a small measurement window and reports the
//! mean time per iteration (plus derived throughput when declared). No
//! statistical analysis, baselines, or HTML reports — this exists so
//! `cargo bench` works in the registry-less build environment and still
//! produces usable relative numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a value or the work producing it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Benchmark identifier (`group/name` styling like real criterion).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{name}/{parameter}") }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Passed to the closure under test; [`Bencher::iter`] does the timing.
pub struct Bencher {
    measurement_window: Duration,
    result: Option<(u64, Duration)>,
}

impl Bencher {
    fn new(measurement_window: Duration) -> Self {
        Bencher { measurement_window, result: None }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // warmup + single-iteration estimate
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));

        let target = self.measurement_window;
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.result = Some((iters, start.elapsed()));
    }
}

fn human(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn report(label: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let Some((iters, total)) = bencher.result else {
        println!("{label:<40} (no measurement: Bencher::iter never called)");
        return;
    };
    let per_iter = total / iters as u32;
    let mut line = format!("{label:<40} {:>12}/iter ({iters} iters)", human(per_iter));
    if let Some(t) = throughput {
        let secs = per_iter.as_secs_f64().max(1e-12);
        match t {
            Throughput::Elements(n) => {
                line.push_str(&format!("  {:.3} Melem/s", n as f64 / secs / 1e6));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!("  {:.3} MiB/s", n as f64 / secs / (1 << 20) as f64));
            }
        }
    }
    println!("{line}");
}

pub struct Criterion {
    measurement_window: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { measurement_window: Duration::from_millis(300) }
    }
}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.measurement_window);
        f(&mut b);
        report(name, &b, None);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            measurement_window: self.measurement_window,
            throughput: None,
            _parent: self,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    measurement_window: Duration,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, window: Duration) -> &mut Self {
        self.measurement_window = window;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.measurement_window);
        f(&mut b);
        report(&format!("{}/{}", self.name, id.label), &b, self.throughput);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher::new(self.measurement_window);
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.label), &b, self.throughput);
        self
    }

    pub fn finish(self) {}
}

/// Define a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures() {
        let mut c = Criterion { measurement_window: Duration::from_millis(5) };
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_with_throughput() {
        let mut c = Criterion { measurement_window: Duration::from_millis(5) };
        let mut g = c.benchmark_group("g");
        g.sample_size(10).throughput(Throughput::Elements(1000));
        g.bench_with_input(BenchmarkId::from_parameter(64), &64usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        g.finish();
    }
}
