//! Offline drop-in subset of the `rayon` API.
//!
//! Provides real fork-join parallelism for [`join`] via `std::thread::scope`,
//! with a global thread budget so deeply recursive joins (the blocked BLAS
//! kernels split recursively) degrade to sequential execution instead of
//! spawning unbounded threads. Semantics match rayon where it matters:
//! both closures always run, panics propagate, results come back in order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

static ACTIVE_EXTRA: AtomicUsize = AtomicUsize::new(0);

fn thread_budget() -> usize {
    static BUDGET: OnceLock<usize> = OnceLock::new();
    *BUDGET.get_or_init(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4) * 2)
}

/// Number of threads the pool would use (the thread budget).
pub fn current_num_threads() -> usize {
    thread_budget().max(1)
}

fn try_reserve() -> bool {
    let cap = thread_budget();
    let mut cur = ACTIVE_EXTRA.load(Ordering::Relaxed);
    loop {
        if cur >= cap {
            return false;
        }
        match ACTIVE_EXTRA.compare_exchange_weak(cur, cur + 1, Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => return true,
            Err(now) => cur = now,
        }
    }
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if try_reserve() {
        let out = std::thread::scope(|s| {
            let hb = s.spawn(b);
            let ra = a();
            let rb = match hb.join() {
                Ok(v) => v,
                Err(p) => std::panic::resume_unwind(p),
            };
            (ra, rb)
        });
        ACTIVE_EXTRA.fetch_sub(1, Ordering::Relaxed);
        out
    } else {
        let ra = a();
        let rb = b();
        (ra, rb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_returns_both_in_order() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn deep_recursion_does_not_explode() {
        fn sum(lo: u64, hi: u64) -> u64 {
            if hi - lo <= 64 {
                (lo..hi).sum()
            } else {
                let mid = lo + (hi - lo) / 2;
                let (a, b) = join(|| sum(lo, mid), || sum(mid, hi));
                a + b
            }
        }
        assert_eq!(sum(0, 100_000), 100_000 * 99_999 / 2);
    }

    #[test]
    fn join_propagates_panic() {
        let r = std::panic::catch_unwind(|| {
            join(|| 1, || panic!("boom"));
        });
        assert!(r.is_err());
    }
}
