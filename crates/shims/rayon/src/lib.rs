//! Offline drop-in subset of the `rayon` API, backed by a persistent
//! work-stealing thread pool.
//!
//! The previous shim spawned fresh OS threads on every [`join`] via
//! `std::thread::scope`, which charged every recursive split in the BLAS
//! kernels a full thread spawn/teardown. This version keeps a fixed set
//! of worker threads alive for the life of the process:
//!
//! * each worker owns a deque; [`join`] called on a worker pushes the
//!   second closure onto that deque (LIFO for the owner) and runs the
//!   first closure inline;
//! * idle workers steal from the *front* of other workers' deques (FIFO,
//!   so thieves take the oldest — largest — subproblems) or from a
//!   global injection queue fed by non-pool threads;
//! * a worker waiting for a stolen closure to finish keeps executing
//!   other pending work instead of blocking, so nested joins deeper than
//!   the worker count cannot deadlock;
//! * panics inside either closure are captured and re-thrown at the
//!   join point, matching rayon semantics.
//!
//! The global pool is sized by `POLAR_NUM_THREADS` (falling back to
//! `std::thread::available_parallelism`) and created lazily on first
//! use. Independent pools can be created with [`ThreadPool::new`] for
//! scaling experiments; dropping a pool terminates its workers.

use std::cell::{Cell, UnsafeCell};
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

// ---------------------------------------------------------------------------
// Jobs: type-erased pointers to stack-allocated closures. A `StackJob`
// lives on the stack of the thread that created it, which blocks (or
// keeps stealing) until the job's latch is set — so the raw pointer in
// `JobRef` never outlives the closure it points to.
// ---------------------------------------------------------------------------

struct JobRef {
    data: *const (),
    exec: unsafe fn(*const ()),
}

// SAFETY: a JobRef is only created from a StackJob whose owner keeps it
// alive until the latch is set; executing it from another thread is the
// entire point of work stealing.
unsafe impl Send for JobRef {}

impl JobRef {
    unsafe fn execute(self) {
        (self.exec)(self.data)
    }
}

/// One-shot completion flag with both a spin-probe (for workers, which
/// prefer to steal while waiting) and a blocking wait (for external
/// threads parked on an injected job).
struct Latch {
    done: AtomicBool,
    lock: Mutex<bool>,
    cv: Condvar,
}

impl Latch {
    fn new() -> Self {
        Self { done: AtomicBool::new(false), lock: Mutex::new(false), cv: Condvar::new() }
    }

    #[inline]
    fn probe(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    fn set(&self) {
        self.done.store(true, Ordering::Release);
        let mut flagged = self.lock.lock().unwrap();
        *flagged = true;
        drop(flagged);
        self.cv.notify_all();
    }

    fn wait(&self) {
        if self.probe() {
            return;
        }
        let mut flagged = self.lock.lock().unwrap();
        while !*flagged {
            flagged = self.cv.wait(flagged).unwrap();
        }
    }

    /// Bounded wait used by workers between steal attempts.
    fn wait_timeout(&self, dur: Duration) {
        if self.probe() {
            return;
        }
        let flagged = self.lock.lock().unwrap();
        if !*flagged {
            let _ = self.cv.wait_timeout(flagged, dur).unwrap();
        }
    }
}

struct StackJob<F, R> {
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<std::thread::Result<R>>>,
    latch: Latch,
    /// Observability context of the forking thread, reinstated around the
    /// job body wherever it ends up running, so a kernel's internal forks
    /// stay attributed to the outermost kernel even when stolen.
    obs_ctx: polar_obs::TaskCtx,
}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R,
{
    fn new(f: F) -> Self {
        Self {
            func: UnsafeCell::new(Some(f)),
            result: UnsafeCell::new(None),
            latch: Latch::new(),
            obs_ctx: polar_obs::task_ctx(),
        }
    }

    fn as_job_ref(&self) -> JobRef {
        JobRef { data: self as *const Self as *const (), exec: Self::execute_raw }
    }

    /// # Safety
    /// `ptr` must point to a live `StackJob<F, R>` that has not executed.
    unsafe fn execute_raw(ptr: *const ()) {
        let this = &*(ptr as *const Self);
        let f = (*this.func.get()).take().expect("job executed twice");
        let ctx = this.obs_ctx;
        let res = panic::catch_unwind(AssertUnwindSafe(|| polar_obs::run_with_ctx(ctx, f)));
        *this.result.get() = Some(res);
        this.latch.set();
    }

    /// Result of the executed job; re-raises a captured panic.
    fn take_result(&self) -> R {
        // SAFETY: only called after the latch is set, when no other
        // thread touches the cell.
        let res = unsafe { (*self.result.get()).take() };
        match res.expect("job result missing") {
            Ok(v) => v,
            Err(payload) => panic::resume_unwind(payload),
        }
    }
}

// ---------------------------------------------------------------------------
// Registry: the shared state of one pool.
// ---------------------------------------------------------------------------

struct Registry {
    /// Per-worker deques. Owners push/pop at the back; thieves pop at
    /// the front. The critical sections are a few instructions, so a
    /// mutex per deque performs like a lock-free deque at BLAS task
    /// granularity without the memory-ordering hazards.
    deques: Vec<Mutex<VecDeque<JobRef>>>,
    /// Jobs injected by threads outside the pool.
    injected: Mutex<VecDeque<JobRef>>,
    idle_lock: Mutex<()>,
    wake: Condvar,
    terminate: AtomicBool,
    steal_rotor: AtomicUsize,
}

impl Registry {
    fn new(workers: usize) -> Self {
        Self {
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            injected: Mutex::new(VecDeque::new()),
            idle_lock: Mutex::new(()),
            wake: Condvar::new(),
            terminate: AtomicBool::new(false),
            steal_rotor: AtomicUsize::new(0),
        }
    }

    fn push_local(&self, index: usize, job: JobRef) {
        self.deques[index].lock().unwrap().push_back(job);
        self.wake.notify_one();
    }

    /// Pop the worker's most recent job, but only if it is still `data`
    /// (i.e. it has not been stolen). Returns whether it was popped.
    fn pop_local_if(&self, index: usize, data: *const ()) -> bool {
        let mut dq = self.deques[index].lock().unwrap();
        if dq.back().is_some_and(|j| std::ptr::eq(j.data, data)) {
            dq.pop_back();
            true
        } else {
            false
        }
    }

    fn inject(&self, job: JobRef) {
        self.injected.lock().unwrap().push_back(job);
        self.wake.notify_all();
    }

    /// Find any runnable job: own deque first (LIFO), then the
    /// injection queue, then other workers' deques (FIFO).
    fn find_work(&self, index: usize) -> Option<JobRef> {
        if let Some(job) = self.deques[index].lock().unwrap().pop_back() {
            return Some(job);
        }
        if let Some(job) = self.injected.lock().unwrap().pop_front() {
            if polar_obs::metrics_enabled() {
                pool_counters().injected.inc();
            }
            return Some(job);
        }
        let n = self.deques.len();
        let start = self.steal_rotor.fetch_add(1, Ordering::Relaxed);
        for off in 0..n {
            let victim = (start + off) % n;
            if victim == index {
                continue;
            }
            if let Some(job) = self.deques[victim].lock().unwrap().pop_front() {
                if polar_obs::metrics_enabled() {
                    pool_counters().steals.inc();
                }
                return Some(job);
            }
        }
        None
    }

    fn has_work(&self) -> bool {
        if !self.injected.lock().unwrap().is_empty() {
            return true;
        }
        self.deques.iter().any(|d| !d.lock().unwrap().is_empty())
    }
}

/// Pool-wide counters registered in the `polar-obs` registry: successful
/// steals from other workers' deques and pickups of externally injected
/// jobs. Only incremented when metrics are enabled.
struct PoolCounters {
    steals: &'static polar_obs::Counter,
    injected: &'static polar_obs::Counter,
}

fn pool_counters() -> &'static PoolCounters {
    static COUNTERS: OnceLock<PoolCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| PoolCounters {
        steals: polar_obs::counter("pool.steals"),
        injected: polar_obs::counter("pool.injected_jobs"),
    })
}

thread_local! {
    /// (registry pointer, worker index) when the current thread is a
    /// pool worker. The raw pointer is valid for the worker's lifetime
    /// because the worker thread owns an `Arc<Registry>`.
    static CURRENT_WORKER: Cell<Option<(*const Registry, usize)>> = const { Cell::new(None) };
}

fn worker_main(registry: Arc<Registry>, index: usize) {
    CURRENT_WORKER.with(|c| c.set(Some((Arc::as_ptr(&registry), index))));
    // Worker i reports on trace lane i + 1 (lane 0 = external threads).
    polar_obs::set_worker_lane(index);
    let mut idle_rounds = 0u32;
    loop {
        if let Some(job) = registry.find_work(index) {
            // SAFETY: the job's owner keeps the StackJob alive until the
            // latch (set inside execute) is observed.
            unsafe { job.execute() };
            idle_rounds = 0;
            continue;
        }
        if registry.terminate.load(Ordering::Acquire) {
            break;
        }
        idle_rounds += 1;
        if idle_rounds < 16 {
            std::thread::yield_now();
            continue;
        }
        let guard = registry.idle_lock.lock().unwrap();
        if registry.terminate.load(Ordering::Acquire) {
            break;
        }
        if registry.has_work() {
            continue;
        }
        // the timeout bounds any lost-wakeup race
        let _ = registry.wake.wait_timeout(guard, Duration::from_millis(2)).unwrap();
    }
    CURRENT_WORKER.with(|c| c.set(None));
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

/// A persistent work-stealing thread pool.
///
/// [`join`] uses a lazily created global instance; independent pools
/// exist for thread-scaling experiments and tests.
pub struct ThreadPool {
    registry: Arc<Registry>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Pool with exactly `workers` worker threads (minimum 1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let registry = Arc::new(Registry::new(workers));
        let handles = (0..workers)
            .map(|i| {
                let reg = Arc::clone(&registry);
                std::thread::Builder::new()
                    .name(format!("polar-pool-{i}"))
                    .spawn(move || worker_main(reg, i))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Self { registry, handles }
    }

    pub fn num_threads(&self) -> usize {
        self.registry.deques.len()
    }

    /// Run `f` on a worker thread of this pool, blocking the caller
    /// until it completes. Calling from a worker of this pool runs `f`
    /// inline.
    pub fn install<R, F>(&self, f: F) -> R
    where
        R: Send,
        F: FnOnce() -> R + Send,
    {
        if let Some((reg, _)) = CURRENT_WORKER.with(|c| c.get()) {
            if std::ptr::eq(reg, Arc::as_ptr(&self.registry)) {
                return f();
            }
        }
        let job = StackJob::new(f);
        self.registry.inject(job.as_job_ref());
        job.latch.wait();
        job.take_result()
    }

    /// Fork-join on this pool; see the free function [`join`].
    pub fn join<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        if self.num_threads() <= 1 {
            // a single worker can never run the closures concurrently;
            // skip the queue round-trip entirely
            return (a(), b());
        }
        if let Some((reg, index)) = CURRENT_WORKER.with(|c| c.get()) {
            if std::ptr::eq(reg, Arc::as_ptr(&self.registry)) {
                // SAFETY: reg points to this pool's live registry.
                return unsafe { join_in_worker(&*reg, index, a, b) };
            }
        }
        self.install(move || {
            let (reg, index) =
                CURRENT_WORKER.with(|c| c.get()).expect("install ran outside a worker");
            // SAFETY: we are on a worker of this pool; reg is live.
            unsafe { join_in_worker(&*reg, index, a, b) }
        })
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.registry.terminate.store(true, Ordering::Release);
        self.wake_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl ThreadPool {
    fn wake_all(&self) {
        let _guard = self.registry.idle_lock.lock().unwrap();
        self.registry.wake.notify_all();
    }
}

/// The fork half of `join` running on worker `index` of `registry`:
/// expose `b` for stealing, run `a` inline, then either run `b` locally
/// (not stolen) or keep executing other work until the thief finishes.
///
/// # Safety
/// Must be called on the worker thread `index` of `registry`.
unsafe fn join_in_worker<A, B, RA, RB>(registry: &Registry, index: usize, a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let job_b = StackJob::new(b);
    let job_ref = job_b.as_job_ref();
    let data = job_ref.data;
    registry.push_local(index, job_ref);

    let ra = panic::catch_unwind(AssertUnwindSafe(a));

    if registry.pop_local_if(index, data) {
        // not stolen: run inline
        StackJob::<B, RB>::execute_raw(data);
    } else {
        // stolen: help with other work instead of blocking the core
        while !job_b.latch.probe() {
            if let Some(job) = registry.find_work(index) {
                job.execute();
            } else {
                job_b.latch.wait_timeout(Duration::from_micros(200));
            }
        }
    }

    let rb = job_b.take_result();
    match ra {
        Ok(ra) => (ra, rb),
        Err(payload) => panic::resume_unwind(payload),
    }
}

fn parse_threads(var: Option<&str>) -> Option<usize> {
    var.and_then(|s| s.trim().parse::<usize>().ok()).filter(|&n| n > 0)
}

fn default_pool_size() -> usize {
    parse_threads(std::env::var("POLAR_NUM_THREADS").ok().as_deref())
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4))
}

fn global_pool() -> &'static ThreadPool {
    static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let workers = default_pool_size();
        polar_obs::log!(polar_obs::LogLevel::Info, "global pool: {workers} workers");
        ThreadPool::new(workers)
    })
}

/// Number of worker threads in the pool serving the current thread.
pub fn current_num_threads() -> usize {
    if let Some((reg, _)) = CURRENT_WORKER.with(|c| c.get()) {
        // SAFETY: a set CURRENT_WORKER implies a live registry.
        return unsafe { (*reg).deques.len() };
    }
    global_pool().num_threads()
}

/// Run two closures, potentially in parallel, returning both results.
///
/// Both closures always run; panics propagate; results come back in
/// order. All parallelism goes through the persistent pool — no threads
/// are spawned per call. Inside a [`ThreadPool::install`] scope the
/// closures run on that pool; otherwise on the global pool.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if let Some((reg, index)) = CURRENT_WORKER.with(|c| c.get()) {
        // SAFETY: a set CURRENT_WORKER implies this thread is worker
        // `index` of the live registry `reg`.
        let registry = unsafe { &*reg };
        if registry.deques.len() <= 1 {
            return (a(), b());
        }
        return unsafe { join_in_worker(registry, index, a, b) };
    }
    global_pool().join(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn join_returns_both_in_order() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn deep_recursion_does_not_explode() {
        fn sum(lo: u64, hi: u64) -> u64 {
            if hi - lo <= 64 {
                (lo..hi).sum()
            } else {
                let mid = lo + (hi - lo) / 2;
                let (a, b) = join(|| sum(lo, mid), || sum(mid, hi));
                a + b
            }
        }
        assert_eq!(sum(0, 100_000), 100_000 * 99_999 / 2);
    }

    #[test]
    fn join_propagates_panic() {
        let r = std::panic::catch_unwind(|| {
            join(|| 1, || panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn join_propagates_panic_from_first_closure() {
        let r = std::panic::catch_unwind(|| {
            join(|| panic!("first"), || 2);
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_joins_deeper_than_worker_count() {
        // 2 workers, recursion depth 12: waiting workers must keep
        // executing pending jobs instead of deadlocking.
        let pool = ThreadPool::new(2);
        fn depth_sum(d: usize) -> usize {
            if d == 0 {
                return 1;
            }
            let (a, b) = join(|| depth_sum(d - 1), || depth_sum(d - 1));
            a + b
        }
        let total = pool.install(|| depth_sum(12));
        assert_eq!(total, 1 << 12);
        assert_eq!(pool.num_threads(), 2);
    }

    #[test]
    fn panic_in_stolen_job_propagates() {
        let pool = ThreadPool::new(4);
        for _ in 0..20 {
            let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
                pool.install(|| {
                    join(
                        || std::thread::sleep(Duration::from_micros(100)),
                        || panic!("stolen boom"),
                    );
                })
            }));
            assert!(r.is_err());
        }
        // the pool survives the panics
        assert_eq!(pool.install(|| 7), 7);
    }

    #[test]
    fn pool_reuse_across_drop_and_reinit() {
        for round in 0..3 {
            let pool = ThreadPool::new(3);
            let counter = AtomicUsize::new(0);
            pool.install(|| {
                join(
                    || counter.fetch_add(1, Ordering::Relaxed),
                    || counter.fetch_add(1, Ordering::Relaxed),
                );
            });
            assert_eq!(counter.load(Ordering::Relaxed), 2, "round {round}");
            drop(pool); // workers terminate; next round spawns fresh ones
        }
    }

    #[test]
    fn install_runs_on_worker_thread() {
        let pool = ThreadPool::new(2);
        let on_worker = pool.install(|| CURRENT_WORKER.with(|c| c.get()).is_some());
        assert!(on_worker);
        assert!(CURRENT_WORKER.with(|c| c.get()).is_none());
    }

    #[test]
    fn concurrent_external_joins() {
        // many non-pool threads hammering the global pool at once
        std::thread::scope(|s| {
            for t in 0..8 {
                s.spawn(move || {
                    let (a, b) = join(move || t * 2, move || t * 3);
                    assert_eq!(a, t * 2);
                    assert_eq!(b, t * 3);
                });
            }
        });
    }

    #[test]
    fn parse_threads_rules() {
        assert_eq!(parse_threads(Some("4")), Some(4));
        assert_eq!(parse_threads(Some(" 2 ")), Some(2));
        assert_eq!(parse_threads(Some("0")), None);
        assert_eq!(parse_threads(Some("nope")), None);
        assert_eq!(parse_threads(None), None);
    }

    #[test]
    fn current_num_threads_positive() {
        assert!(current_num_threads() >= 1);
        let pool = ThreadPool::new(5);
        assert_eq!(pool.install(current_num_threads), 5);
    }
}
