//! Offline drop-in subset of the `rayon` API, backed by a persistent
//! work-stealing thread pool.
//!
//! The previous shim spawned fresh OS threads on every [`join`] via
//! `std::thread::scope`, which charged every recursive split in the BLAS
//! kernels a full thread spawn/teardown. This version keeps a fixed set
//! of worker threads alive for the life of the process:
//!
//! * each worker owns a deque; [`join`] called on a worker pushes the
//!   second closure onto that deque (LIFO for the owner) and runs the
//!   first closure inline;
//! * idle workers steal from the *front* of other workers' deques (FIFO,
//!   so thieves take the oldest — largest — subproblems) or from a
//!   global injection queue fed by non-pool threads;
//! * a worker waiting for a stolen closure to finish keeps executing
//!   other pending work instead of blocking, so nested joins deeper than
//!   the worker count cannot deadlock;
//! * panics inside either closure are captured and re-thrown at the
//!   join point, matching rayon semantics.
//!
//! The global pool is sized by `POLAR_NUM_THREADS` (falling back to
//! `std::thread::available_parallelism`) and created lazily on first
//! use. Independent pools can be created with [`ThreadPool::new`] for
//! scaling experiments; dropping a pool terminates its workers.

use std::cell::{Cell, UnsafeCell};
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

// ---------------------------------------------------------------------------
// Deterministic replay mode.
//
// `POLAR_DETERMINISTIC=1` puts the pool into replay mode, seeded by
// `POLAR_SEED` (default 0):
//
// * the global pool gets a *fixed* worker count (`POLAR_NUM_THREADS` or
//   4) instead of `available_parallelism`, so the thread-count-dependent
//   split trees in the BLAS kernels are identical across runs and
//   machines;
// * victim selection uses a per-worker xorshift stream seeded from
//   `POLAR_SEED ^ worker index` instead of the shared free-running
//   rotor, so the steal scan order is a pure function of the seed;
// * joins are *ordered*: a worker whose forked closure was stolen
//   blocks on its latch instead of opportunistically executing
//   unrelated queued jobs, so each worker's execution order matches the
//   program's fork-tree order.
//
// Bitwise-identical numerics follow from the first point alone — every
// fork writes a disjoint output region and the fork tree is a function
// of problem shape and thread count — while the second and third pin
// down the *schedule*, which is what lets stress tests replay a
// scheduling-sensitive interleaving from just the seed.
// ---------------------------------------------------------------------------

/// `Some(seed)` when deterministic replay mode is active (read once from
/// `POLAR_DETERMINISTIC` / `POLAR_SEED` on first use).
pub fn deterministic_mode() -> Option<u64> {
    static MODE: OnceLock<Option<u64>> = OnceLock::new();
    *MODE.get_or_init(|| {
        let on = std::env::var("POLAR_DETERMINISTIC")
            .map(|v| {
                let v = v.trim();
                !v.is_empty() && v != "0"
            })
            .unwrap_or(false);
        if !on {
            return None;
        }
        let seed = std::env::var("POLAR_SEED")
            .ok()
            .and_then(|s| s.trim().parse::<u64>().ok())
            .unwrap_or(0);
        Some(seed)
    })
}

/// SplitMix64: expands a seed into a well-mixed nonzero xorshift state.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    (x ^ (x >> 31)) | 1
}

// ---------------------------------------------------------------------------
// Jobs: type-erased pointers to stack-allocated closures. A `StackJob`
// lives on the stack of the thread that created it, which blocks (or
// keeps stealing) until the job's latch is set — so the raw pointer in
// `JobRef` never outlives the closure it points to.
// ---------------------------------------------------------------------------

struct JobRef {
    data: *const (),
    exec: unsafe fn(*const ()),
}

// SAFETY: a JobRef is only created from a StackJob whose owner keeps it
// alive until the latch is set; executing it from another thread is the
// entire point of work stealing.
unsafe impl Send for JobRef {}

impl JobRef {
    unsafe fn execute(self) {
        (self.exec)(self.data)
    }
}

/// One-shot completion flag with both a spin-probe (for workers, which
/// prefer to steal while waiting) and a blocking wait (for external
/// threads parked on an injected job).
struct Latch {
    done: AtomicBool,
    lock: Mutex<bool>,
    cv: Condvar,
}

impl Latch {
    fn new() -> Self {
        Self { done: AtomicBool::new(false), lock: Mutex::new(false), cv: Condvar::new() }
    }

    #[inline]
    fn probe(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    fn set(&self) {
        self.done.store(true, Ordering::Release);
        let mut flagged = self.lock.lock().unwrap();
        *flagged = true;
        drop(flagged);
        self.cv.notify_all();
    }

    fn wait(&self) {
        if self.probe() {
            return;
        }
        let mut flagged = self.lock.lock().unwrap();
        while !*flagged {
            flagged = self.cv.wait(flagged).unwrap();
        }
    }

    /// Bounded wait used by workers between steal attempts.
    fn wait_timeout(&self, dur: Duration) {
        if self.probe() {
            return;
        }
        let flagged = self.lock.lock().unwrap();
        if !*flagged {
            let _ = self.cv.wait_timeout(flagged, dur).unwrap();
        }
    }
}

struct StackJob<F, R> {
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<std::thread::Result<R>>>,
    latch: Latch,
    /// Observability context of the forking thread, reinstated around the
    /// job body wherever it ends up running, so a kernel's internal forks
    /// stay attributed to the outermost kernel even when stolen.
    obs_ctx: polar_obs::TaskCtx,
}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R,
{
    fn new(f: F) -> Self {
        Self {
            func: UnsafeCell::new(Some(f)),
            result: UnsafeCell::new(None),
            latch: Latch::new(),
            obs_ctx: polar_obs::task_ctx(),
        }
    }

    fn as_job_ref(&self) -> JobRef {
        JobRef { data: self as *const Self as *const (), exec: Self::execute_raw }
    }

    /// # Safety
    /// `ptr` must point to a live `StackJob<F, R>` that has not executed.
    unsafe fn execute_raw(ptr: *const ()) {
        let this = &*(ptr as *const Self);
        let f = (*this.func.get()).take().expect("job executed twice");
        let ctx = this.obs_ctx;
        let res = panic::catch_unwind(AssertUnwindSafe(|| polar_obs::run_with_ctx(ctx, f)));
        *this.result.get() = Some(res);
        this.latch.set();
    }

    /// Result of the executed job; re-raises a captured panic.
    fn take_result(&self) -> R {
        // SAFETY: only called after the latch is set, when no other
        // thread touches the cell.
        let res = unsafe { (*self.result.get()).take() };
        match res.expect("job result missing") {
            Ok(v) => v,
            Err(payload) => panic::resume_unwind(payload),
        }
    }
}

// ---------------------------------------------------------------------------
// Registry: the shared state of one pool.
// ---------------------------------------------------------------------------

struct Registry {
    /// Per-worker deques. Owners push/pop at the back; thieves pop at
    /// the front. The critical sections are a few instructions, so a
    /// mutex per deque performs like a lock-free deque at BLAS task
    /// granularity without the memory-ordering hazards.
    deques: Vec<Mutex<VecDeque<JobRef>>>,
    /// Jobs injected by threads outside the pool.
    injected: Mutex<VecDeque<JobRef>>,
    idle_lock: Mutex<()>,
    wake: Condvar,
    terminate: AtomicBool,
    steal_rotor: AtomicUsize,
    /// `Some(seed)`: deterministic replay (seeded victim selection,
    /// ordered joins).
    seed: Option<u64>,
}

impl Registry {
    fn new(workers: usize, seed: Option<u64>) -> Self {
        Self {
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            injected: Mutex::new(VecDeque::new()),
            idle_lock: Mutex::new(()),
            wake: Condvar::new(),
            terminate: AtomicBool::new(false),
            steal_rotor: AtomicUsize::new(0),
            seed,
        }
    }

    /// First victim index for a steal scan: the per-worker seeded stream
    /// in replay mode, the shared free-running rotor otherwise.
    fn steal_start(&self) -> usize {
        if self.seed.is_some() {
            STEAL_RNG.with(|c| {
                let mut x = c.get();
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                c.set(x);
                x as usize
            })
        } else {
            self.steal_rotor.fetch_add(1, Ordering::Relaxed)
        }
    }

    fn push_local(&self, index: usize, job: JobRef) {
        self.deques[index].lock().unwrap().push_back(job);
        self.wake.notify_one();
    }

    /// Pop the worker's most recent job, but only if it is still `data`
    /// (i.e. it has not been stolen). Returns whether it was popped.
    fn pop_local_if(&self, index: usize, data: *const ()) -> bool {
        let mut dq = self.deques[index].lock().unwrap();
        if dq.back().is_some_and(|j| std::ptr::eq(j.data, data)) {
            dq.pop_back();
            true
        } else {
            false
        }
    }

    fn inject(&self, job: JobRef) {
        self.injected.lock().unwrap().push_back(job);
        self.wake.notify_all();
    }

    /// Find any runnable job: own deque first (LIFO), then the
    /// injection queue, then other workers' deques (FIFO).
    fn find_work(&self, index: usize) -> Option<JobRef> {
        if let Some(job) = self.deques[index].lock().unwrap().pop_back() {
            return Some(job);
        }
        if let Some(job) = self.injected.lock().unwrap().pop_front() {
            if polar_obs::metrics_enabled() {
                pool_counters().injected.inc();
            }
            return Some(job);
        }
        let n = self.deques.len();
        let start = self.steal_start();
        for off in 0..n {
            let victim = (start + off) % n;
            if victim == index {
                continue;
            }
            if let Some(job) = self.deques[victim].lock().unwrap().pop_front() {
                if polar_obs::metrics_enabled() {
                    pool_counters().steals.inc();
                }
                return Some(job);
            }
        }
        // Full scan found nothing: a failed steal spin. The counter sizes
        // how much of the pool's idle time is spent probing empty deques
        // versus parked on the condvar (`pool.parks`).
        if polar_obs::metrics_enabled() {
            pool_counters().failed_steals.inc();
        }
        None
    }

    fn has_work(&self) -> bool {
        if !self.injected.lock().unwrap().is_empty() {
            return true;
        }
        self.deques.iter().any(|d| !d.lock().unwrap().is_empty())
    }
}

/// Pool-wide counters registered in the `polar-obs` registry: successful
/// steals from other workers' deques, pickups of externally injected
/// jobs, full scans that found nothing (`failed_steal_spins`), and condvar
/// parks. Only incremented when metrics are enabled.
struct PoolCounters {
    steals: &'static polar_obs::Counter,
    injected: &'static polar_obs::Counter,
    failed_steals: &'static polar_obs::Counter,
    parks: &'static polar_obs::Counter,
}

fn pool_counters() -> &'static PoolCounters {
    static COUNTERS: OnceLock<PoolCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| PoolCounters {
        steals: polar_obs::counter("pool.steals"),
        injected: polar_obs::counter("pool.injected_jobs"),
        failed_steals: polar_obs::counter("pool.failed_steal_spins"),
        parks: polar_obs::counter("pool.parks"),
    })
}

/// Per-worker tasks-executed counter (`pool.worker<i>.tasks`), registered
/// lazily per index. Names are leaked once per distinct index — the obs
/// registry requires `&'static str` — and shared across pools.
fn worker_tasks_counter(index: usize) -> &'static polar_obs::Counter {
    static PER_WORKER: OnceLock<Mutex<Vec<&'static polar_obs::Counter>>> = OnceLock::new();
    let table = PER_WORKER.get_or_init(|| Mutex::new(Vec::new()));
    let mut v = table.lock().unwrap();
    while v.len() <= index {
        let name: &'static str =
            Box::leak(format!("pool.worker{}.tasks", v.len()).into_boxed_str());
        v.push(polar_obs::counter(name));
    }
    v[index]
}

thread_local! {
    /// (registry pointer, worker index) when the current thread is a
    /// pool worker. The raw pointer is valid for the worker's lifetime
    /// because the worker thread owns an `Arc<Registry>`.
    static CURRENT_WORKER: Cell<Option<(*const Registry, usize)>> = const { Cell::new(None) };
    /// Per-worker xorshift state for seeded victim selection.
    static STEAL_RNG: Cell<u64> = const { Cell::new(1) };
}

fn worker_main(registry: Arc<Registry>, index: usize) {
    CURRENT_WORKER.with(|c| c.set(Some((Arc::as_ptr(&registry), index))));
    if let Some(seed) = registry.seed {
        STEAL_RNG.with(|c| c.set(splitmix64(seed ^ (index as u64).wrapping_mul(0xA5A5_A5A5))));
    }
    // Worker i reports on trace lane i + 1 (lane 0 = external threads).
    polar_obs::set_worker_lane(index);
    let tasks = worker_tasks_counter(index);
    let mut idle_rounds = 0u32;
    loop {
        if let Some(job) = registry.find_work(index) {
            // SAFETY: the job's owner keeps the StackJob alive until the
            // latch (set inside execute) is observed.
            unsafe { job.execute() };
            if polar_obs::metrics_enabled() {
                tasks.inc();
            }
            idle_rounds = 0;
            continue;
        }
        if registry.terminate.load(Ordering::Acquire) {
            break;
        }
        idle_rounds += 1;
        if idle_rounds < 16 {
            std::thread::yield_now();
            continue;
        }
        let guard = registry.idle_lock.lock().unwrap();
        if registry.terminate.load(Ordering::Acquire) {
            break;
        }
        if registry.has_work() {
            continue;
        }
        // the timeout bounds any lost-wakeup race
        if polar_obs::metrics_enabled() {
            pool_counters().parks.inc();
        }
        let _ = registry.wake.wait_timeout(guard, Duration::from_millis(2)).unwrap();
    }
    CURRENT_WORKER.with(|c| c.set(None));
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

/// A persistent work-stealing thread pool.
///
/// [`join`] uses a lazily created global instance; independent pools
/// exist for thread-scaling experiments and tests.
pub struct ThreadPool {
    registry: Arc<Registry>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Pool with exactly `workers` worker threads (minimum 1), in
    /// replay mode when the process-wide [`deterministic_mode`] is on.
    pub fn new(workers: usize) -> Self {
        Self::with_seed(workers, deterministic_mode())
    }

    /// Pool with an explicit determinism setting, independent of the
    /// environment: `Some(seed)` enables seeded victim selection and
    /// ordered joins on this pool only.
    pub fn with_seed(workers: usize, seed: Option<u64>) -> Self {
        let workers = workers.max(1);
        let registry = Arc::new(Registry::new(workers, seed));
        let handles = (0..workers)
            .map(|i| {
                let reg = Arc::clone(&registry);
                std::thread::Builder::new()
                    .name(format!("polar-pool-{i}"))
                    .spawn(move || worker_main(reg, i))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Self { registry, handles }
    }

    pub fn num_threads(&self) -> usize {
        self.registry.deques.len()
    }

    /// Run `f` on a worker thread of this pool, blocking the caller
    /// until it completes. Calling from a worker of this pool runs `f`
    /// inline.
    pub fn install<R, F>(&self, f: F) -> R
    where
        R: Send,
        F: FnOnce() -> R + Send,
    {
        if let Some((reg, _)) = CURRENT_WORKER.with(|c| c.get()) {
            if std::ptr::eq(reg, Arc::as_ptr(&self.registry)) {
                return f();
            }
        }
        let job = StackJob::new(f);
        self.registry.inject(job.as_job_ref());
        job.latch.wait();
        job.take_result()
    }

    /// Fork-join on this pool; see the free function [`join`].
    pub fn join<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        if self.num_threads() <= 1 {
            // a single worker can never run the closures concurrently;
            // skip the queue round-trip entirely
            return (a(), b());
        }
        if let Some((reg, index)) = CURRENT_WORKER.with(|c| c.get()) {
            if std::ptr::eq(reg, Arc::as_ptr(&self.registry)) {
                // SAFETY: reg points to this pool's live registry.
                return unsafe { join_in_worker(&*reg, index, a, b) };
            }
        }
        self.install(move || {
            let (reg, index) =
                CURRENT_WORKER.with(|c| c.get()).expect("install ran outside a worker");
            // SAFETY: we are on a worker of this pool; reg is live.
            unsafe { join_in_worker(&*reg, index, a, b) }
        })
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.registry.terminate.store(true, Ordering::Release);
        self.wake_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl ThreadPool {
    fn wake_all(&self) {
        let _guard = self.registry.idle_lock.lock().unwrap();
        self.registry.wake.notify_all();
    }
}

/// The fork half of `join` running on worker `index` of `registry`:
/// expose `b` for stealing, run `a` inline, then either run `b` locally
/// (not stolen) or keep executing other work until the thief finishes.
///
/// # Safety
/// Must be called on the worker thread `index` of `registry`.
unsafe fn join_in_worker<A, B, RA, RB>(registry: &Registry, index: usize, a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let job_b = StackJob::new(b);
    let job_ref = job_b.as_job_ref();
    let data = job_ref.data;
    registry.push_local(index, job_ref);

    let ra = panic::catch_unwind(AssertUnwindSafe(a));

    if registry.pop_local_if(index, data) {
        // not stolen: run inline
        StackJob::<B, RB>::execute_raw(data);
    } else if registry.seed.is_some() {
        // ordered join (replay mode): block until the thief finishes so
        // this worker's execution order follows the fork tree. Progress
        // is guaranteed — a stolen job is already *running* on the
        // thief, and wait chains follow the finite fork tree down to a
        // leaf that is executing code.
        job_b.latch.wait();
    } else {
        // stolen: help with other work instead of blocking the core
        while !job_b.latch.probe() {
            if let Some(job) = registry.find_work(index) {
                job.execute();
            } else {
                job_b.latch.wait_timeout(Duration::from_micros(200));
            }
        }
    }

    let rb = job_b.take_result();
    match ra {
        Ok(ra) => (ra, rb),
        Err(payload) => panic::resume_unwind(payload),
    }
}

fn parse_threads(var: Option<&str>) -> Option<usize> {
    var.and_then(|s| s.trim().parse::<usize>().ok()).filter(|&n| n > 0)
}

fn default_pool_size() -> usize {
    parse_threads(std::env::var("POLAR_NUM_THREADS").ok().as_deref()).unwrap_or_else(|| {
        if deterministic_mode().is_some() {
            // replay mode: a fixed count, never the machine's core count,
            // so the thread-count-dependent kernel split trees (and hence
            // the floating-point summation order) are machine-independent
            4
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
        }
    })
}

fn global_pool() -> &'static ThreadPool {
    static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let workers = default_pool_size();
        polar_obs::log!(polar_obs::LogLevel::Info, "global pool: {workers} workers");
        ThreadPool::new(workers)
    })
}

/// Number of worker threads in the pool serving the current thread.
pub fn current_num_threads() -> usize {
    if let Some((reg, _)) = CURRENT_WORKER.with(|c| c.get()) {
        // SAFETY: a set CURRENT_WORKER implies a live registry.
        return unsafe { (*reg).deques.len() };
    }
    global_pool().num_threads()
}

/// Run two closures, potentially in parallel, returning both results.
///
/// Both closures always run; panics propagate; results come back in
/// order. All parallelism goes through the persistent pool — no threads
/// are spawned per call. Inside a [`ThreadPool::install`] scope the
/// closures run on that pool; otherwise on the global pool.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if let Some((reg, index)) = CURRENT_WORKER.with(|c| c.get()) {
        // SAFETY: a set CURRENT_WORKER implies this thread is worker
        // `index` of the live registry `reg`.
        let registry = unsafe { &*reg };
        if registry.deques.len() <= 1 {
            return (a(), b());
        }
        return unsafe { join_in_worker(registry, index, a, b) };
    }
    global_pool().join(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn join_returns_both_in_order() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn deep_recursion_does_not_explode() {
        fn sum(lo: u64, hi: u64) -> u64 {
            if hi - lo <= 64 {
                (lo..hi).sum()
            } else {
                let mid = lo + (hi - lo) / 2;
                let (a, b) = join(|| sum(lo, mid), || sum(mid, hi));
                a + b
            }
        }
        assert_eq!(sum(0, 100_000), 100_000 * 99_999 / 2);
    }

    #[test]
    fn join_propagates_panic() {
        let r = std::panic::catch_unwind(|| {
            join(|| 1, || panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn join_propagates_panic_from_first_closure() {
        let r = std::panic::catch_unwind(|| {
            join(|| panic!("first"), || 2);
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_joins_deeper_than_worker_count() {
        // 2 workers, recursion depth 12: waiting workers must keep
        // executing pending jobs instead of deadlocking.
        let pool = ThreadPool::new(2);
        fn depth_sum(d: usize) -> usize {
            if d == 0 {
                return 1;
            }
            let (a, b) = join(|| depth_sum(d - 1), || depth_sum(d - 1));
            a + b
        }
        let total = pool.install(|| depth_sum(12));
        assert_eq!(total, 1 << 12);
        assert_eq!(pool.num_threads(), 2);
    }

    #[test]
    fn panic_in_stolen_job_propagates() {
        let pool = ThreadPool::new(4);
        for _ in 0..20 {
            let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
                pool.install(|| {
                    join(
                        || std::thread::sleep(Duration::from_micros(100)),
                        || panic!("stolen boom"),
                    );
                })
            }));
            assert!(r.is_err());
        }
        // the pool survives the panics
        assert_eq!(pool.install(|| 7), 7);
    }

    #[test]
    fn pool_reuse_across_drop_and_reinit() {
        for round in 0..3 {
            let pool = ThreadPool::new(3);
            let counter = AtomicUsize::new(0);
            pool.install(|| {
                join(
                    || counter.fetch_add(1, Ordering::Relaxed),
                    || counter.fetch_add(1, Ordering::Relaxed),
                );
            });
            assert_eq!(counter.load(Ordering::Relaxed), 2, "round {round}");
            drop(pool); // workers terminate; next round spawns fresh ones
        }
    }

    #[test]
    fn install_runs_on_worker_thread() {
        let pool = ThreadPool::new(2);
        let on_worker = pool.install(|| CURRENT_WORKER.with(|c| c.get()).is_some());
        assert!(on_worker);
        assert!(CURRENT_WORKER.with(|c| c.get()).is_none());
    }

    #[test]
    fn concurrent_external_joins() {
        // many non-pool threads hammering the global pool at once
        std::thread::scope(|s| {
            for t in 0..8 {
                s.spawn(move || {
                    let (a, b) = join(move || t * 2, move || t * 3);
                    assert_eq!(a, t * 2);
                    assert_eq!(b, t * 3);
                });
            }
        });
    }

    #[test]
    fn parse_threads_rules() {
        assert_eq!(parse_threads(Some("4")), Some(4));
        assert_eq!(parse_threads(Some(" 2 ")), Some(2));
        assert_eq!(parse_threads(Some("0")), None);
        assert_eq!(parse_threads(Some("nope")), None);
        assert_eq!(parse_threads(None), None);
    }

    #[test]
    fn current_num_threads_positive() {
        assert!(current_num_threads() >= 1);
        let pool = ThreadPool::new(5);
        assert_eq!(pool.install(current_num_threads), 5);
    }

    fn tree_sum(pool: &ThreadPool, depth: usize, salt: u64) -> u64 {
        fn go(d: usize, x: u64) -> u64 {
            if d == 0 {
                return splitmix64(x);
            }
            let (a, b) = join(|| go(d - 1, x.wrapping_mul(3)), || go(d - 1, x.wrapping_mul(5)));
            a.wrapping_add(b.rotate_left(7))
        }
        pool.install(|| go(depth, salt))
    }

    #[test]
    fn deterministic_pool_computes_same_results() {
        // results must be identical to a free-running pool's — replay
        // mode changes scheduling, never values
        let free = ThreadPool::with_seed(4, None);
        let det = ThreadPool::with_seed(4, Some(42));
        for salt in [1u64, 99, 12345] {
            assert_eq!(tree_sum(&free, 10, salt), tree_sum(&det, 10, salt));
        }
    }

    #[test]
    fn deterministic_nested_joins_do_not_deadlock() {
        // ordered joins block the owner on stolen jobs; deep nesting on
        // a small pool must still make progress
        let pool = ThreadPool::with_seed(2, Some(7));
        for round in 0..8 {
            let s = tree_sum(&pool, 12, round);
            assert_eq!(s, tree_sum(&pool, 12, round));
        }
    }

    #[test]
    #[ignore = "nightly stress gate: 10k seeded iterations (run with --ignored)"]
    fn deterministic_pool_stress_10k() {
        // Two independent pools with the same seed run the same 10k-join
        // workload; the accumulated checksums (which fold in every leaf
        // value) must agree exactly, and no iteration may hang or panic.
        let run = |seed: u64| -> u64 {
            let pool = ThreadPool::with_seed(4, Some(seed));
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                let depth = 2 + (i % 6) as usize;
                acc =
                    acc.wrapping_mul(31).wrapping_add(tree_sum(&pool, depth, i.wrapping_add(seed)));
            }
            acc
        };
        assert_eq!(run(42), run(42));
    }
}
