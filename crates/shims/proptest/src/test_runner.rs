//! Per-test configuration and the deterministic case RNG.

/// Subset of proptest's `Config`.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of cases each test runs.
    pub cases: u32,
}

impl Config {
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        // Real proptest defaults to 256; this shim's tests cover heavier
        // numerical kernels, so default lighter while staying meaningful.
        Config { cases: 64 }
    }
}

/// Deterministic per-case RNG (SplitMix64), seeded from the test's full
/// module path and the case index — stable across runs and build configs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, then mix in the case index
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^= (case as u64).wrapping_mul(0x9E3779B97F4A7C15);
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`; `bound > 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}
