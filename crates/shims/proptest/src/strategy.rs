//! The [`Strategy`] trait, primitive strategies, and combinators.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type. Unlike real proptest there
/// is no value tree / shrinking: a strategy is just a sampler.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Uniform choice across boxed alternatives ([`crate::prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

// ------------------------------------------------------- range strategies

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_strategies!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() as f32 * (self.end - self.start)
    }
}

// -------------------------------------------------------- tuple strategies

macro_rules! tuple_strategies {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
    (A, B, C, D, E, F, G);
    (A, B, C, D, E, F, G, H);
}
