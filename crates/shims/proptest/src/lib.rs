//! Offline drop-in subset of the `proptest` API.
//!
//! Covers what this workspace's property tests use: the [`proptest!`]
//! macro (with `#![proptest_config(...)]`), range and tuple strategies,
//! [`strategy::Just`], `prop_map`/`prop_flat_map`, [`prop_oneof!`],
//! [`collection::vec`], [`arbitrary::any`], and the `prop_assert*`
//! macros.
//!
//! Differences from real proptest, deliberate for an offline shim:
//!
//! * **No shrinking.** A failing case reports its inputs via the panic
//!   message (every generated binding is `Debug`-printed by value where
//!   the assertion macros interpolate it) but is not minimized.
//! * **Deterministic seeding.** Case `k` of test `t` derives its RNG seed
//!   from FNV-1a(`t`) mixed with `k`, so failures reproduce exactly on
//!   rerun and `proptest-regressions` files are unnecessary (the existing
//!   ones in the repo are inert).
//! * Strategies are sampled fresh per case; there is no rejection
//!   machinery (`prop_filter` is intentionally absent — express
//!   constraints structurally instead).

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// The `proptest!` macro: expands each contained test into a plain
/// `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_inner! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_inner! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_inner {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    // closure so `prop_assume!` can skip a case via `return`
                    #[allow(clippy::redundant_closure_call)]
                    (|| {
                        $(
                            let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                        )*
                        $body
                    })();
                }
            }
        )*
    };
}

/// Assert inside a property test; on failure, panics with the formatted
/// message (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+);
    };
}

/// Skip the rest of the current case when the assumption fails. Unlike
/// real proptest the skipped case still counts toward `cases`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return;
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_even() -> impl Strategy<Value = usize> {
        (0usize..50).prop_map(|k| k * 2)
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(a in 3usize..9, x in -2.0f64..2.0) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((-2.0..2.0).contains(&x));
        }

        #[test]
        fn tuples_and_maps((m, n) in (1usize..5, 1usize..5), e in small_even()) {
            prop_assert!(m * n < 25, "{m} {n}");
            prop_assert_eq!(e % 2, 0);
        }

        #[test]
        fn oneof_and_just(v in prop_oneof![Just(1u32), Just(2), 10u32..20]) {
            prop_assert!(v == 1 || v == 2 || (10..20).contains(&v));
        }

        #[test]
        fn flat_map_dependent(pair in (2usize..10).prop_flat_map(|n| (Just(n), 0usize..n))) {
            let (n, k) = pair;
            prop_assert!(k < n);
        }

        #[test]
        fn collection_vec_len(v in crate::collection::vec(0.0f64..1.0, 7)) {
            prop_assert_eq!(v.len(), 7);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn any_u64_works(pattern in any::<u64>()) {
            let _ = pattern.count_ones();
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn config_cases_respected(_x in 0u64..10) {
            // runs exactly 5 times; nothing to assert beyond not exploding
        }
    }

    #[test]
    fn determinism_across_constructions() {
        use crate::strategy::Strategy;
        let s = 0u64..1_000_000;
        let mut r1 = crate::test_runner::TestRng::for_case("t", 3);
        let mut r2 = crate::test_runner::TestRng::for_case("t", 3);
        assert_eq!(s.sample(&mut r1), s.sample(&mut r2));
    }
}
