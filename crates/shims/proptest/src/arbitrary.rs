//! `any::<T>()` for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use core::marker::PhantomData;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    fn generate(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn generate(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn generate(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn generate(rng: &mut TestRng) -> f64 {
        // finite, roughly symmetric around zero; full bit-pattern floats
        // (NaN/Inf) are not useful defaults for numerical property tests
        (rng.next_f64() - 0.5) * 2e6
    }
}

/// Strategy for any [`Arbitrary`] type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::generate(rng)
    }
}
