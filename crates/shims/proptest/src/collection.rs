//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length specification for [`vec`]: an exact `usize` or a `Range`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi_inclusive: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
    }
}

/// Strategy producing a `Vec` of samples from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
