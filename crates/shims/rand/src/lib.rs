//! Offline drop-in subset of the `rand` crate API.
//!
//! The build environment for this reproduction has no access to a crate
//! registry, so every external dependency is vendored as a minimal shim
//! under `crates/shims/` with the same package name and the same API
//! subset the workspace actually uses. This one covers:
//!
//! * [`rngs::StdRng`] — a deterministic 64-bit PRNG (SplitMix64 core);
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen_range`] over integer and float ranges, [`Rng::gen`] for
//!   the common primitive types.
//!
//! Determinism note: seeds produce a fixed stream forever (there is no
//! platform entropy anywhere), which is exactly what the test-matrix
//! generator wants.

/// Low-level source of 64-bit randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Construction of a reproducible generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types [`Rng::gen`] can produce directly.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        rng.next_f64()
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        rng.next_f64() as f32
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_ranges!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        // one extra bit so `hi` itself is reachable
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + u * (hi - lo)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + rng.next_f64() as f32 * (self.end - self.start)
    }
}

/// The user-facing generator trait.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic PRNG with a SplitMix64 core. Not the upstream
    /// ChaCha-based `StdRng` — streams differ from the real crate, which
    /// is fine: every consumer in this workspace seeds explicitly and
    /// only needs reproducibility, not bit-compatibility.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&x));
            let y: f64 = rng.gen_range(0.5..=1.0);
            assert!((0.5..=1.0).contains(&y));
            let k: usize = rng.gen_range(3usize..9);
            assert!((3..9).contains(&k));
            let s: i32 = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&s));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }
}
