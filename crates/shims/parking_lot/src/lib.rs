//! Offline drop-in subset of `parking_lot`: [`Mutex`] and [`RwLock`] with
//! the non-poisoning `lock()`/`read()`/`write()` signatures, implemented
//! over `std::sync`. Poison is swallowed (a panicked critical section
//! yields the data as-is), matching parking_lot's behavior.

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
