//! Minimal JSON parser (the validating half of `serde_json`).
//!
//! One public entry point, [`from_str`], produces a dynamic [`Value`]
//! tree. Numbers parse as `f64` (adequate for trace timestamps, counters,
//! and GFlop/s figures); strings support the standard escapes including
//! `\uXXXX` with surrogate pairs. Trailing garbage after the top-level
//! value is an error, as are the usual malformed inputs.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    /// Object keys are sorted (BTreeMap) — JSON objects are unordered.
    Object(BTreeMap<String, Value>),
}

impl Value {
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object-field access; `None` on non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

/// Parse error with byte offset into the input.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    pub offset: usize,
    pub message: &'static str,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for Error {}

/// Parse a complete JSON document.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after top-level value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> Error {
        Error { offset: self.pos, message }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, lit: &'static str, message: &'static str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", "expected 'true'").map(|_| Value::Bool(true)),
            Some(b'f') => self.literal("false", "expected 'false'").map(|_| Value::Bool(false)),
            Some(b'n') => self.literal("null", "expected 'null'").map(|_| Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character at start of value")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{', "expected '{'")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // high surrogate: require a \uXXXX low surrogate
                            self.literal("\\u", "expected low surrogate after high surrogate")?;
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(cp).ok_or_else(|| self.err("invalid surrogate pair"))?
                        } else {
                            char::from_u32(hi)
                                .ok_or_else(|| self.err("lone surrogate in \\u escape"))?
                        };
                        out.push(c);
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(b) => {
                    // re-assemble multi-byte UTF-8 from the source slice
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let len = if b >= 0xF0 {
                            4
                        } else if b >= 0xE0 {
                            3
                        } else {
                            2
                        };
                        if start + len > self.bytes.len() {
                            return Err(self.err("truncated UTF-8 sequence"));
                        }
                        let s = std::str::from_utf8(&self.bytes[start..start + len])
                            .map_err(|_| self.err("invalid UTF-8 in string"))?;
                        out.push_str(s);
                        self.pos = start + len;
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.err("invalid \\u escape")),
            };
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>().map(Value::Number).map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_parse() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str("true").unwrap(), Value::Bool(true));
        assert_eq!(from_str(" false ").unwrap(), Value::Bool(false));
        assert_eq!(from_str("-12.5e2").unwrap(), Value::Number(-1250.0));
        assert_eq!(from_str("\"a\\nb\"").unwrap(), Value::String("a\nb".into()));
    }

    #[test]
    fn nested_structures_parse() {
        let v = from_str(r#"{"a": [1, {"b": "x"}, null], "c": {"d": true}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].get("b").unwrap().as_str(),
            Some("x")
        );
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(from_str("\"\\u0041\"").unwrap().as_str(), Some("A"));
        // surrogate pair for U+1F600
        assert_eq!(from_str("\"\\uD83D\\uDE00\"").unwrap().as_str(), Some("\u{1F600}"));
        // raw multi-byte UTF-8 passes through
        assert_eq!(from_str("\"héllo\"").unwrap().as_str(), Some("héllo"));
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str("").is_err());
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("{\"a\": 1,}").is_err());
        assert!(from_str("\"unterminated").is_err());
        assert!(from_str("1 2").is_err(), "trailing garbage");
        assert!(from_str("\"\\uD83D\"").is_err(), "lone high surrogate");
        assert!(from_str("nul").is_err());
    }

    #[test]
    fn chrome_trace_shape_round_trips() {
        // the exact shape write_chrome_trace emits
        let s = "[\n  {\"name\": \"gemm\", \"ph\": \"X\", \"ts\": 12.345, \"dur\": 1.5, \"pid\": 1, \"tid\": 0},\n  {\"name\": \"potrf\", \"ph\": \"X\", \"ts\": 20.000, \"dur\": 0.5, \"pid\": 2, \"tid\": 0}\n]\n";
        let v = from_str(s).unwrap();
        let events = v.as_array().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("name").unwrap().as_str(), Some("gemm"));
        assert_eq!(events[0].get("ts").unwrap().as_f64(), Some(12.345));
        assert_eq!(events[1].get("pid").unwrap().as_f64(), Some(2.0));
    }
}
