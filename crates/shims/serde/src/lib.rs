//! Offline drop-in subset of `serde`.
//!
//! Re-exports the no-op derive macros (feature `derive`) so
//! `#[derive(Serialize, Deserialize)]` compiles without the real serde
//! stack. The same-named traits exist for `use serde::Serialize;` imports
//! and occasional bounds (satisfied by blanket impls), but carry no
//! methods — all real serialization in this workspace is handwritten
//! (see `polar_runtime::write_chrome_trace` and the metrics exporters).
//!
//! The [`json`] module is the *reader* counterpart: a small recursive-
//! descent JSON parser into a dynamic [`json::Value`], enough for tests
//! and benches to re-parse the traces and profiles the workspace writes.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

pub mod json;

/// Marker standing in for `serde::Serialize` in bounds; the blanket impl
/// makes any such bound hold (the no-op derive generates nothing).
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker standing in for `serde::Deserialize` in bounds.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
