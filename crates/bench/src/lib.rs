//! Shared helpers for the figure-regeneration harnesses.
//!
//! Each binary in `src/bin/` regenerates one figure (or in-text table) of
//! the paper; see DESIGN.md §4 for the experiment index and EXPERIMENTS.md
//! for recorded paper-vs-measured outcomes.

use polar_gen::{MatrixSpec, SigmaDistribution};

/// Parse `--key value` style arguments (tiny, dependency-free).
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    pub fn parse() -> Self {
        Self { raw: std::env::args().skip(1).collect() }
    }

    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.raw
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.raw.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    pub fn flag(&self, key: &str) -> bool {
        self.raw.iter().any(|a| a == key)
    }
}

/// Run provenance stamped into every benchmark artifact header, so a
/// checked-in JSON can always answer "what machine, how many workers,
/// which commit": host core count, pool width, the `POLAR_NUM_THREADS`
/// pin (if any), and the git revision the harness ran from.
pub struct Provenance {
    pub host_cores: usize,
    pub pool_workers: usize,
    pub polar_num_threads: Option<String>,
    pub git_rev: Option<String>,
}

impl Provenance {
    pub fn collect() -> Self {
        Self {
            host_cores: std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1),
            pool_workers: rayon::current_num_threads(),
            polar_num_threads: std::env::var("POLAR_NUM_THREADS").ok(),
            git_rev: git_rev(),
        }
    }

    /// The provenance fields as JSON object lines (two-space indent, each
    /// ending `",\n"`) for splicing into a hand-rolled artifact header.
    pub fn json_fields(&self) -> String {
        let quote = |v: &Option<String>| match v {
            Some(s) => format!("\"{s}\""),
            None => "null".into(),
        };
        format!(
            "  \"host_cores\": {},\n  \"pool_workers\": {},\n  \"polar_num_threads\": {},\n  \"git_rev\": {},\n",
            self.host_cores,
            self.pool_workers,
            quote(&self.polar_num_threads),
            quote(&self.git_rev)
        )
    }
}

/// Current git revision, read from `.git` directly (the workspace takes
/// no subprocess or git dependency): follow `HEAD` through one level of
/// symref, consulting loose refs and then `packed-refs`, walking up from
/// the current directory so harnesses work from any subdirectory.
pub fn git_rev() -> Option<String> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let git = dir.join(".git");
        if git.is_dir() {
            let head = std::fs::read_to_string(git.join("HEAD")).ok()?;
            let head = head.trim();
            let Some(sym) = head.strip_prefix("ref: ") else {
                return Some(head.to_string()); // detached HEAD
            };
            if let Ok(h) = std::fs::read_to_string(git.join(sym)) {
                return Some(h.trim().to_string());
            }
            let packed = std::fs::read_to_string(git.join("packed-refs")).ok()?;
            return packed.lines().find_map(|l| {
                l.split_once(' ').and_then(
                    |(hash, name)| if name == sym { Some(hash.to_string()) } else { None },
                )
            });
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// The paper's benchmark matrix: ill-conditioned, κ = 1e16, geometric
/// spectrum (§7.1).
pub fn paper_matrix_spec(n: usize, seed: u64) -> MatrixSpec {
    MatrixSpec { m: n, n, cond: 1e16, distribution: SigmaDistribution::Geometric, seed }
}

/// Default numerical sweep sizes, scaled for a laptop-class run; pass
/// `--max-n` to the binaries to extend.
pub fn accuracy_sweep(max_n: usize) -> Vec<usize> {
    [128usize, 192, 256, 384, 512, 768, 1024, 1536, 2048]
        .into_iter()
        .filter(|&n| n <= max_n)
        .collect()
}

/// Paper-scale performance sweep (the analytic model has no size limit).
pub fn perf_sweep() -> Vec<usize> {
    vec![20_000, 40_000, 60_000, 80_000, 100_000, 130_000, 160_000, 200_000, 250_000, 300_000]
}

/// CSV artifact writer: every figure harness mirrors its stdout series to
/// `results/<name>.csv` so the data can be re-plotted downstream.
pub struct CsvOut {
    file: std::io::BufWriter<std::fs::File>,
    pub path: std::path::PathBuf,
}

impl CsvOut {
    /// Create `results/<name>.csv` (directory created on demand) and write
    /// the header row.
    pub fn create(name: &str, header: &[&str]) -> std::io::Result<Self> {
        let dir = std::path::Path::new("results");
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut file = std::io::BufWriter::new(std::fs::File::create(&path)?);
        use std::io::Write;
        writeln!(file, "{}", header.join(","))?;
        Ok(Self { file, path })
    }

    pub fn row(&mut self, fields: &[String]) {
        use std::io::Write;
        let _ = writeln!(self.file, "{}", fields.join(","));
    }
}

/// Format helper for CSV rows.
#[macro_export]
macro_rules! csv_row {
    ($csv:expr, $($v:expr),+ $(,)?) => {
        $csv.row(&[$(format!("{}", $v)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_respects_cap() {
        assert_eq!(accuracy_sweep(512), vec![128, 192, 256, 384, 512]);
    }

    #[test]
    fn paper_spec_is_ill_conditioned() {
        let s = paper_matrix_spec(100, 1);
        assert_eq!(s.cond, 1e16);
    }

    #[test]
    fn provenance_fields_are_valid_json_lines() {
        let p = Provenance::collect();
        assert!(p.host_cores >= 1);
        assert!(p.pool_workers >= 1);
        let fields = p.json_fields();
        // splices into an object: every line "key": value with a comma
        for line in fields.lines() {
            assert!(line.trim_end().ends_with(','), "no trailing comma: {line}");
            assert!(line.contains(':'), "not a field: {line}");
        }
        assert!(fields.contains("\"git_rev\""));
        assert!(fields.contains("\"polar_num_threads\""));
    }

    #[test]
    fn git_rev_resolves_in_this_repo() {
        // the workspace is a git repo; the revision must resolve to a
        // 40-hex commit hash
        let rev = git_rev().expect("repo has a resolvable HEAD");
        assert_eq!(rev.len(), 40, "{rev}");
        assert!(rev.chars().all(|c| c.is_ascii_hexdigit()), "{rev}");
    }
}
