//! Shared helpers for the figure-regeneration harnesses.
//!
//! Each binary in `src/bin/` regenerates one figure (or in-text table) of
//! the paper; see DESIGN.md §4 for the experiment index and EXPERIMENTS.md
//! for recorded paper-vs-measured outcomes.

use polar_gen::{MatrixSpec, SigmaDistribution};

/// Parse `--key value` style arguments (tiny, dependency-free).
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    pub fn parse() -> Self {
        Self { raw: std::env::args().skip(1).collect() }
    }

    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.raw
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.raw.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    pub fn flag(&self, key: &str) -> bool {
        self.raw.iter().any(|a| a == key)
    }
}

/// The paper's benchmark matrix: ill-conditioned, κ = 1e16, geometric
/// spectrum (§7.1).
pub fn paper_matrix_spec(n: usize, seed: u64) -> MatrixSpec {
    MatrixSpec { m: n, n, cond: 1e16, distribution: SigmaDistribution::Geometric, seed }
}

/// Default numerical sweep sizes, scaled for a laptop-class run; pass
/// `--max-n` to the binaries to extend.
pub fn accuracy_sweep(max_n: usize) -> Vec<usize> {
    [128usize, 192, 256, 384, 512, 768, 1024, 1536, 2048]
        .into_iter()
        .filter(|&n| n <= max_n)
        .collect()
}

/// Paper-scale performance sweep (the analytic model has no size limit).
pub fn perf_sweep() -> Vec<usize> {
    vec![20_000, 40_000, 60_000, 80_000, 100_000, 130_000, 160_000, 200_000, 250_000, 300_000]
}

/// CSV artifact writer: every figure harness mirrors its stdout series to
/// `results/<name>.csv` so the data can be re-plotted downstream.
pub struct CsvOut {
    file: std::io::BufWriter<std::fs::File>,
    pub path: std::path::PathBuf,
}

impl CsvOut {
    /// Create `results/<name>.csv` (directory created on demand) and write
    /// the header row.
    pub fn create(name: &str, header: &[&str]) -> std::io::Result<Self> {
        let dir = std::path::Path::new("results");
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut file = std::io::BufWriter::new(std::fs::File::create(&path)?);
        use std::io::Write;
        writeln!(file, "{}", header.join(","))?;
        Ok(Self { file, path })
    }

    pub fn row(&mut self, fields: &[String]) {
        use std::io::Write;
        let _ = writeln!(self.file, "{}", fields.join(","));
    }
}

/// Format helper for CSV rows.
#[macro_export]
macro_rules! csv_row {
    ($csv:expr, $($v:expr),+ $(,)?) => {
        $csv.row(&[$(format!("{}", $v)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_respects_cap() {
        assert_eq!(accuracy_sweep(512), vec![128, 192, 256, 384, 512]);
    }

    #[test]
    fn paper_spec_is_ill_conditioned() {
        let s = paper_matrix_spec(100, 1);
        assert_eq!(s.cond, 1e16);
    }
}
