//! Kernel performance sweep: packed GEMM vs the axpy baseline and the
//! reference triple loop, plus trsm / herk / geqrf and the full QDWH
//! driver, with a thread-scaling curve over the work-stealing pool.
//!
//! Writes `BENCH_kernels.json` (repo root by default, `--out` to
//! override) so every PR has a measurable perf contract against the
//! pre-optimization snapshot in `results/BENCH_baseline.json`.
//!
//! `--smoke` runs a seconds-long correctness-oriented pass (tiny and
//! prime sizes, packed GEMM asserted against `gemm_ref`) for CI.
//!
//! `--gate` (nightly CI) additionally asserts the tiled-vs-flat QR perf
//! contract: >= 0.95x flat at one worker, >= 1.5x at two or more workers
//! on hosts with at least two cores.

use polar_bench::Args;
use polar_blas::{gemm, gemm_axpy, gemm_batched_packed, gemm_ref, herk, trsm};
use polar_gen::generate;
use polar_matrix::{BatchedDense, Diag, Matrix, Op, Side, Uplo};
use polar_scalar::{Complex32, Complex64, Real, Scalar};
use std::fmt::Write as _;
use std::time::Instant;

fn rand_mat<S: Scalar>(m: usize, n: usize, seed: u64) -> Matrix<S> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    };
    Matrix::from_fn(m, n, |_, _| {
        let re = next();
        let im = next();
        S::from_parts(S::Real::from_f64(re), S::Real::from_f64(im))
    })
}

/// Best-of-`reps` wall time of `f`, in seconds.
fn best_time<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn gemm_gflops(n: usize, secs: f64, complex: bool) -> f64 {
    polar_blas::flops::type_factor(complex) * 2.0 * (n as f64).powi(3) / secs / 1e9
}

struct GemmRow {
    tag: &'static str,
    n: usize,
    gflops_packed: f64,
    gflops_axpy: f64,
    gflops_ref: f64,
}

/// Time the production gemm, the old axpy kernel, and (for small n) the
/// reference triple loop on the same n x n x n problem.
fn bench_gemm<S: Scalar>(n: usize, reps: usize, time_ref: bool) -> GemmRow {
    let a = rand_mat::<S>(n, n, 1);
    let b = rand_mat::<S>(n, n, 2);
    let mut c = Matrix::<S>::zeros(n, n);
    let t_packed = best_time(reps, || {
        gemm(Op::NoTrans, Op::NoTrans, S::ONE, a.as_ref(), b.as_ref(), S::ZERO, c.as_mut());
    });
    let t_axpy = best_time(reps, || {
        gemm_axpy(Op::NoTrans, Op::NoTrans, S::ONE, a.as_ref(), b.as_ref(), S::ZERO, c.as_mut());
    });
    let t_ref = if time_ref {
        best_time(1, || {
            gemm_ref(Op::NoTrans, Op::NoTrans, S::ONE, a.as_ref(), b.as_ref(), S::ZERO, c.as_mut());
        })
    } else {
        f64::NAN
    };
    GemmRow {
        tag: S::TYPE_TAG,
        n,
        gflops_packed: gemm_gflops(n, t_packed, S::IS_COMPLEX),
        gflops_axpy: gemm_gflops(n, t_axpy, S::IS_COMPLEX),
        gflops_ref: if time_ref { gemm_gflops(n, t_ref, S::IS_COMPLEX) } else { f64::NAN },
    }
}

/// trsm Left/Lower solve against a well-conditioned unit-ish triangle.
fn bench_trsm(n: usize, reps: usize) -> f64 {
    let mut a = rand_mat::<f64>(n, n, 3);
    for i in 0..n {
        a[(i, i)] = 4.0 + i as f64 / n as f64; // keep the solve stable
    }
    let b0 = rand_mat::<f64>(n, n, 4);
    let mut b = b0.clone();
    let secs = best_time(reps, || {
        b.as_mut().copy_from(b0.as_ref());
        trsm(Side::Left, Uplo::Lower, Op::NoTrans, Diag::NonUnit, 1.0, a.as_ref(), b.as_mut());
    });
    polar_blas::flops::trsm_left(n, n) / secs / 1e9
}

fn bench_herk(n: usize, reps: usize) -> f64 {
    let a = rand_mat::<f64>(n, n, 5);
    let mut c = Matrix::<f64>::zeros(n, n);
    let secs = best_time(reps, || {
        herk(Uplo::Lower, Op::ConjTrans, 1.0, a.as_ref(), 0.0, c.as_mut());
    });
    polar_blas::flops::herk(n, n) / secs / 1e9
}

fn bench_geqrf(n: usize, reps: usize) -> f64 {
    let a0 = rand_mat::<f64>(n, n, 6);
    let mut a = a0.clone();
    let secs = best_time(reps, || {
        a.as_mut().copy_from(a0.as_ref());
        let _ = polar_lapack::geqrf(&mut a);
    });
    // geqrf flops for square n: (4/3) n^3
    (4.0 / 3.0) * (n as f64).powi(3) / secs / 1e9
}

/// Flat vs DAG-scheduled tile QR under a pool of `threads` workers, as
/// `(flat_gflops, tiled_gflops)`. The two variants are timed rep-by-rep in
/// one interleaved loop: on a shared host, timing all flat reps and then all
/// tiled reps lets background-load drift between the two phases bias the
/// ratio by far more than the ~5% the gate resolves.
fn bench_geqrf_pair(n: usize, threads: usize, reps: usize) -> (f64, f64) {
    let pool = rayon::ThreadPool::new(threads);
    let a0 = rand_mat::<f64>(n, n, 6);
    let mut a = a0.clone();
    // resolve the tile size inside the pool so the worker-count heuristic
    // sees the same width production would
    let nb = pool.install(|| polar_lapack::auto_tile_nb(n));
    let mut flat_best = f64::INFINITY;
    let mut tiled_best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        a.as_mut().copy_from(a0.as_ref());
        let _ = polar_lapack::geqrf(&mut a);
        flat_best = flat_best.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        pool.install(|| {
            let _ = polar_lapack::geqrf_tiled(&a0, nb);
        });
        tiled_best = tiled_best.min(t.elapsed().as_secs_f64());
    }
    let gf = |secs: f64| (4.0 / 3.0) * (n as f64).powi(3) / secs / 1e9;
    (gf(flat_best), gf(tiled_best))
}

struct BatchedGemmRow {
    tag: &'static str,
    n: usize,
    batch: usize,
    gflops_batch_major: f64,
    gflops_per_entry: f64,
    gflops_ref: f64,
}

/// Batch-major packed GEMM (one KC sweep serves every entry, one hot
/// pack-buffer pair) vs the per-entry production `gemm` loop vs the
/// per-entry reference triple loop, on `batch` independent n x n x n
/// products. Variants are timed rep-by-rep in one interleaved loop (same
/// drift argument as [`bench_geqrf_pair`]).
fn bench_gemm_batched<S: Scalar>(n: usize, batch: usize, reps: usize) -> BatchedGemmRow {
    let mats_a: Vec<Matrix<S>> = (0..batch).map(|k| rand_mat::<S>(n, n, 21 + k as u64)).collect();
    let mats_b: Vec<Matrix<S>> = (0..batch).map(|k| rand_mat::<S>(n, n, 91 + k as u64)).collect();
    let a = BatchedDense::from_matrices(&mats_a);
    let b = BatchedDense::from_matrices(&mats_b);
    let mut c = BatchedDense::<S>::zeros(n, n, batch);
    let mut bm_best = f64::INFINITY;
    let mut pe_best = f64::INFINITY;
    let mut ref_best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        gemm_batched_packed(
            Op::NoTrans,
            Op::NoTrans,
            S::ONE,
            a.as_batched_ref(),
            b.as_batched_ref(),
            S::ZERO,
            c.as_batched_mut(),
        );
        bm_best = bm_best.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        for e in 0..batch {
            gemm(Op::NoTrans, Op::NoTrans, S::ONE, a.mat(e), b.mat(e), S::ZERO, c.mat_mut(e));
        }
        pe_best = pe_best.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        for e in 0..batch {
            gemm_ref(Op::NoTrans, Op::NoTrans, S::ONE, a.mat(e), b.mat(e), S::ZERO, c.mat_mut(e));
        }
        ref_best = ref_best.min(t.elapsed().as_secs_f64());
    }
    let gf = |secs: f64| {
        polar_blas::flops::type_factor(S::IS_COMPLEX) * batch as f64 * 2.0 * (n as f64).powi(3)
            / secs
            / 1e9
    };
    BatchedGemmRow {
        tag: S::TYPE_TAG,
        n,
        batch,
        gflops_batch_major: gf(bm_best),
        gflops_per_entry: gf(pe_best),
        gflops_ref: gf(ref_best),
    }
}

/// The batched GEMM sweep section (`"gemm_batched"`): batch-major vs
/// per-entry production gemm vs reference across serving sizes. With
/// `gate`, enforces the batch-major perf floors on 1+ core hosts: at
/// least 1.5x per-entry at n = 16 (below `PACK_MIN_FLOPS` the per-entry
/// path cannot pack at all, so the shared pack sweep wins big) and at
/// least 0.95x (parity within measurement noise) at n = 32/64, where
/// both paths run the same microkernels and the win is only amortized
/// pack/dispatch overhead — measured 1.0-1.25x on the reference host,
/// gated at no-regression rather than at the midpoint of that noise.
/// Ratios are remeasured best-of-rounds like every other gate here.
fn run_batched_sweep(j: &mut String, gate: bool, reps: usize) {
    eprintln!("batched gemm sweep...");
    let mut rows: Vec<BatchedGemmRow> = Vec::new();
    for &n in &[16usize, 32, 64] {
        for &batch in &[1usize, 8, 32, 64] {
            let mut row = bench_gemm_batched::<f64>(n, batch, reps);
            let floor = if !gate || batch < 8 {
                None
            } else if n == 16 {
                Some(1.5)
            } else {
                Some(0.95)
            };
            if let Some(floor) = floor {
                let mut tries = 1;
                while row.gflops_batch_major / row.gflops_per_entry + 1e-9 < floor && tries < 5 {
                    eprintln!(
                        "perf gate: gemm_batched n={n} batch={batch} measured {:.3}x, remeasuring...",
                        row.gflops_batch_major / row.gflops_per_entry
                    );
                    let r2 = bench_gemm_batched::<f64>(n, batch, 2 * reps);
                    if r2.gflops_batch_major / r2.gflops_per_entry
                        > row.gflops_batch_major / row.gflops_per_entry
                    {
                        row = r2;
                    }
                    tries += 1;
                }
                assert!(
                    row.gflops_batch_major / row.gflops_per_entry + 1e-9 >= floor,
                    "perf gate: gemm_batched n={n} batch={batch} is {:.3}x per-entry (< {floor}x) \
                     after {tries} rounds",
                    row.gflops_batch_major / row.gflops_per_entry
                );
            }
            rows.push(row);
        }
    }
    rows.push(bench_gemm_batched::<f32>(32, 32, reps));
    rows.push(bench_gemm_batched::<Complex64>(32, 32, reps));
    j.push_str("  \"gemm_batched\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            j,
            "    {{\"type\": \"{}\", \"n\": {}, \"batch\": {}, \"gflops_batch_major\": {}, \"gflops_per_entry\": {}, \"gflops_ref\": {}, \"speedup_vs_per_entry\": {}, \"speedup_vs_ref\": {}}}",
            r.tag,
            r.n,
            r.batch,
            json_f(r.gflops_batch_major),
            json_f(r.gflops_per_entry),
            json_f(r.gflops_ref),
            json_f(r.gflops_batch_major / r.gflops_per_entry),
            json_f(r.gflops_batch_major / r.gflops_ref),
        );
        j.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    j.push_str("  ],\n");
    if gate {
        eprintln!("perf gate: gemm_batched floors pass");
    }
}

fn zolo_opts(r: usize, tiled: polar_qdwh::TiledPath, nb: Option<usize>) -> polar_qdwh::ZoloOptions {
    polar_qdwh::ZoloOptions {
        r,
        // small r converges slowly at kappa = 1e16; give the sweep headroom
        max_iterations: 20,
        tiled,
        tile_nb: nb,
        ..Default::default()
    }
}

/// Serial vs fused Zolo-PD at degree `r`, timed rep-by-rep in one
/// interleaved loop (same drift argument as [`bench_geqrf_pair`]).
/// Returns `(serial_best_s, fused_best_s, iterations)`.
fn bench_zolo_pair(a: &Matrix<f64>, r: usize, nb: usize, reps: usize) -> (f64, f64, usize) {
    use polar_qdwh::TiledPath;
    let serial = zolo_opts(r, TiledPath::Never, None);
    let fused = zolo_opts(r, TiledPath::Always, Some(nb));
    let mut s_best = f64::INFINITY;
    let mut f_best = f64::INFINITY;
    let mut iters = 0;
    for _ in 0..reps {
        let t = Instant::now();
        let z = polar_qdwh::zolo_pd(a, &serial).expect("serial zolo converges");
        s_best = s_best.min(t.elapsed().as_secs_f64());
        iters = z.pd.info.iterations;
        let t = Instant::now();
        let zf = polar_qdwh::zolo_pd(a, &fused).expect("fused zolo converges");
        f_best = f_best.min(t.elapsed().as_secs_f64());
        assert_eq!(zf.pd.info.iterations, iters, "fused/serial plans diverged at r={r}");
    }
    (s_best, f_best, iters)
}

struct ZoloRow {
    r: usize,
    iterations: usize,
    serial_s: f64,
    fused_s: f64,
    makespan_ns: u64,
    critical_path_ns: u64,
    qr_busy_ns: u64,
}

/// One instrumented fused solve at degree `r`: post-mortem makespan,
/// measured critical path, and the serial sum of QR-class task durations
/// (the r-way concurrency evidence: CP < that sum means at least two QR
/// branches were runnable at once).
fn zolo_postmortem(a: &Matrix<f64>, r: usize, nb: usize) -> (u64, u64, u64) {
    use polar_qdwh::TiledPath;
    let _ = polar_runtime::take_executed_graphs(); // drop any stale dags
    let scope = polar_obs::scope();
    let _ = polar_qdwh::zolo_pd(a, &zolo_opts(r, TiledPath::Always, Some(nb)))
        .expect("instrumented fused zolo converges");
    let report = scope.finish();
    let graphs = polar_runtime::take_executed_graphs();
    let pm = polar_runtime::analyze(&report.spans, &graphs);
    let d = pm.dags.iter().max_by_key(|d| d.spans).expect("fused zolo executed a dag");
    let qr_busy: u64 = d
        .classes
        .iter()
        .filter(|c| matches!(c.name, "task_geqrt" | "task_tsqrt" | "task_unmqr" | "task_tsmqr"))
        .map(|c| c.busy_ns)
        .sum();
    (d.makespan_ns, d.critical_path_ns, qr_busy)
}

/// The `--zolo` mode: r-sweep over serial vs fused Zolo-PD with
/// post-mortem rows, and (with `--gate`) the nightly r-scaling floor —
/// fused r=4 wall-clock <= 0.9x serial, enforced only when the host
/// has >= 2 cores and the pool >= 2 workers (self-skips otherwise,
/// same pattern as the tiled-QR gate).
fn run_zolo_sweep(j: &mut String, n: usize, gate: bool, pool_workers: usize, host_cores: usize) {
    let nb = 64usize;
    let (a, _) = generate::<f64>(&polar_bench::paper_matrix_spec(n, 42));
    let mut rows: Vec<ZoloRow> = Vec::new();
    for r in [1usize, 2, 4, 8] {
        eprintln!("zolo sweep: n={n} r={r}...");
        let (mut serial_s, mut fused_s, iterations) = bench_zolo_pair(&a, r, nb, 2);
        if gate && r == 4 && host_cores >= 2 && pool_workers >= 2 {
            // shared-runner noise: accept the best of several rounds
            let mut tries = 1;
            while fused_s > 0.9 * serial_s && tries < 5 {
                eprintln!("zolo gate: r=4 fused {:.3}x serial, remeasuring...", fused_s / serial_s);
                let (s2, f2, _) = bench_zolo_pair(&a, r, nb, 3);
                if f2 / s2 < fused_s / serial_s {
                    (serial_s, fused_s) = (s2, f2);
                }
                tries += 1;
            }
            assert!(
                fused_s <= 0.9 * serial_s,
                "zolo r-scaling gate: fused r=4 is {:.3}x serial (> 0.9x) at {pool_workers} \
                 workers after {tries} rounds",
                fused_s / serial_s
            );
            eprintln!("zolo gate: fused r=4 at {:.3}x serial, pass", fused_s / serial_s);
        } else if gate && r == 4 {
            eprintln!(
                "zolo gate: skipped (host_cores={host_cores}, pool_workers={pool_workers}; \
                 needs >= 2 of each)"
            );
        }
        let (makespan_ns, critical_path_ns, qr_busy_ns) = zolo_postmortem(&a, r, nb);
        rows.push(ZoloRow {
            r,
            iterations,
            serial_s,
            fused_s,
            makespan_ns,
            critical_path_ns,
            qr_busy_ns,
        });
    }
    j.push_str("  \"zolo\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = write!(
            j,
            "    {{\"type\": \"d\", \"n\": {n}, \"r\": {}, \"iterations\": {}, \
             \"serial_seconds\": {}, \"fused_seconds\": {}, \"speedup_fused\": {}, \
             \"makespan_ns\": {}, \"critical_path_ns\": {}, \"qr_busy_ns\": {}, \
             \"cp_vs_qr_busy\": {}}}",
            row.r,
            row.iterations,
            json_f(row.serial_s),
            json_f(row.fused_s),
            json_f(row.serial_s / row.fused_s),
            row.makespan_ns,
            row.critical_path_ns,
            row.qr_busy_ns,
            json_f(row.critical_path_ns as f64 / row.qr_busy_ns.max(1) as f64),
        );
        j.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    j.push_str("  ]\n");
}

fn bench_qdwh(n: usize) -> (f64, usize) {
    let (a, _) = generate::<f64>(&polar_bench::paper_matrix_spec(n, 42));
    let t = Instant::now();
    let pd = polar_qdwh::qdwh(&a, &polar_qdwh::QdwhOptions::default()).expect("qdwh converges");
    (t.elapsed().as_secs_f64(), pd.info.iterations)
}

/// Packed-path GFLOP/s at `n` under a pool of `t` workers.
fn bench_gemm_threads(n: usize, threads: usize, reps: usize) -> f64 {
    let pool = rayon::ThreadPool::new(threads);
    let a = rand_mat::<f64>(n, n, 7);
    let b = rand_mat::<f64>(n, n, 8);
    let mut c = Matrix::<f64>::zeros(n, n);
    let secs = best_time(reps, || {
        pool.install(|| {
            gemm(Op::NoTrans, Op::NoTrans, 1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
        });
    });
    gemm_gflops(n, secs, false)
}

/// Smoke check: packed gemm must match the reference triple loop on
/// tiny, prime, and fringe shapes for every scalar type and op pair.
fn smoke_check<S: Scalar>() {
    // the last two shapes exceed PACK_MIN_FLOPS so they exercise the
    // packed kernel (the tiny ones route to the axpy small-problem path)
    let shapes =
        [(1usize, 1usize, 1usize), (2, 3, 5), (7, 11, 13), (17, 5, 23), (31, 29, 37), (64, 48, 16)];
    let ops: &[Op] = if S::IS_COMPLEX {
        &[Op::NoTrans, Op::Trans, Op::ConjTrans]
    } else {
        &[Op::NoTrans, Op::Trans]
    };
    for &(m, n, k) in &shapes {
        for &op_a in ops {
            for &op_b in ops {
                let (ar, ac) = if op_a == Op::NoTrans { (m, k) } else { (k, m) };
                let (br, bc) = if op_b == Op::NoTrans { (k, n) } else { (n, k) };
                let a = rand_mat::<S>(ar, ac, 11);
                let b = rand_mat::<S>(br, bc, 12);
                let alpha = S::from_parts(S::Real::from_f64(1.25), S::Real::from_f64(-0.5));
                let beta = S::from_parts(S::Real::from_f64(-0.75), S::Real::from_f64(0.25));
                let mut c1 = rand_mat::<S>(m, n, 13);
                let mut c2 = c1.clone();
                gemm_ref(op_a, op_b, alpha, a.as_ref(), b.as_ref(), beta, c1.as_mut());
                gemm(op_a, op_b, alpha, a.as_ref(), b.as_ref(), beta, c2.as_mut());
                let tol = S::Real::from_f64(1e-4); // f32 headroom; f64 is ~1e-13
                for j in 0..n {
                    for i in 0..m {
                        let d = (c1[(i, j)] - c2[(i, j)]).abs();
                        assert!(
                            d <= tol,
                            "smoke mismatch {}: ({i},{j}) {op_a:?}x{op_b:?} m={m} n={n} k={k}",
                            S::TYPE_TAG
                        );
                    }
                }
            }
        }
    }
    eprintln!("smoke: packed gemm matches gemm_ref for type {}", S::TYPE_TAG);
}

/// Smoke check: the DAG-scheduled tile drivers must agree with the flat
/// factorizations — `geqrf_tiled` by reconstruction (`Q R = A` to the same
/// accuracy as the flat path) and `potrf_tiled` by direct factor equality
/// (the Cholesky factor with positive diagonal is unique).
fn smoke_tiled<S: Scalar>() {
    use polar_blas::{add, norm};
    use polar_matrix::Norm;

    let tol = S::Real::from_f64(1e-4); // f32 headroom; f64 lands ~1e-14
    for (m, n, nb) in [(48usize, 32usize, 16usize), (37, 29, 16), (30, 30, 64)] {
        let a0 = rand_mat::<S>(m, n, 17);
        let f = polar_lapack::geqrf_tiled(&a0, nb);
        let q = polar_lapack::orgqr_tiled(&f, n);
        let r = f.extract_r();
        let mut qr = Matrix::<S>::zeros(m, n);
        gemm(Op::NoTrans, Op::NoTrans, S::ONE, q.as_ref(), r.as_ref(), S::ZERO, qr.as_mut());
        add(-S::ONE, a0.as_ref(), S::ONE, qr.as_mut());
        let err = norm(Norm::Fro, qr.as_ref()) / norm(Norm::Fro, a0.as_ref()).max(S::Real::ONE);
        assert!(err <= tol, "smoke tiled QR {}: ||QR-A|| = {err:?} (m={m} n={n})", S::TYPE_TAG);
    }

    let n = 40;
    let b = rand_mat::<S>(n, n, 18);
    let mut spd = Matrix::<S>::zeros(n, n);
    for d in 0..n {
        spd[(d, d)] = S::from_parts(S::Real::from_f64(n as f64), S::Real::ZERO);
    }
    gemm(Op::NoTrans, Op::ConjTrans, S::ONE, b.as_ref(), b.as_ref(), S::ONE, spd.as_mut());
    let mut flat = spd.clone();
    polar_lapack::potrf(Uplo::Lower, &mut flat).expect("flat potrf");
    let mut tiled = spd;
    polar_lapack::potrf_tiled(Uplo::Lower, &mut tiled, 16).expect("tiled potrf");
    for j in 0..n {
        for i in j..n {
            let d = (flat[(i, j)] - tiled[(i, j)]).abs();
            assert!(d <= tol, "smoke tiled potrf {}: L({i},{j}) diff {d:?}", S::TYPE_TAG);
        }
    }
    eprintln!("smoke: tiled QR/Cholesky match flat for type {}", S::TYPE_TAG);
}

/// Regression check for the measured Complex32 gemm dispatcher: the
/// production path probes packed vs axpy at first use and routes to the
/// winner, so it must not trail the better of its two candidate kernels
/// by more than a generous noise margin. A mis-route (the historical
/// 0.98x hard pin pointing the wrong way on a new microarchitecture) is
/// what this catches; a few percent of timer noise is not.
fn smoke_c32_dispatch() {
    let n = 160;
    let a = rand_mat::<Complex32>(n, n, 31);
    let b = rand_mat::<Complex32>(n, n, 32);
    let mut c = Matrix::<Complex32>::zeros(n, n);
    let one = Complex32::new(1.0, 0.0);
    let zero = Complex32::new(0.0, 0.0);
    let t_prod = best_time(5, || {
        gemm(Op::NoTrans, Op::NoTrans, one, a.as_ref(), b.as_ref(), zero, c.as_mut());
    });
    let t_axpy = best_time(5, || {
        gemm_axpy(Op::NoTrans, Op::NoTrans, one, a.as_ref(), b.as_ref(), zero, c.as_mut());
    });
    assert!(
        t_prod <= t_axpy * 1.5,
        "c32 dispatch regression: production gemm {:.3} ms vs axpy {:.3} ms",
        t_prod * 1e3,
        t_axpy * 1e3
    );
    eprintln!(
        "smoke: c32 gemm dispatch ok (production {:.3} ms, axpy candidate {:.3} ms)",
        t_prod * 1e3,
        t_axpy * 1e3
    );
}

fn json_f(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.4}")
    } else {
        "null".into()
    }
}

fn main() {
    let args = Args::parse();
    let smoke = args.flag("--smoke");
    let gate = args.flag("--gate");
    let out = std::env::args()
        .skip_while(|a| a != "--out")
        .nth(1)
        .unwrap_or_else(|| "BENCH_kernels.json".into());

    let prov = polar_bench::Provenance::collect();
    let (pool_workers, host_cores) = (prov.pool_workers, prov.host_cores);
    let mut j = String::new();
    j.push_str("{\n");
    let _ = writeln!(j, "  \"harness\": \"kernels_perf\",");
    let _ = writeln!(j, "  \"smoke\": {smoke},");
    j.push_str(&prov.json_fields());
    #[cfg(target_arch = "x86_64")]
    let _ = writeln!(
        j,
        "  \"cpu\": {{\"avx2\": {}, \"fma\": {}, \"avx512f\": {}}},",
        std::arch::is_x86_feature_detected!("avx2"),
        std::arch::is_x86_feature_detected!("fma"),
        std::arch::is_x86_feature_detected!("avx512f")
    );
    #[cfg(not(target_arch = "x86_64"))]
    let _ = writeln!(j, "  \"cpu\": {{}},");

    if args.flag("--zolo") {
        let n: usize = args.get("--n", 256);
        run_zolo_sweep(&mut j, n, gate, pool_workers, host_cores);
        j.push_str("}\n");
        std::fs::write(&out, &j).expect("write zolo sweep json");
        println!("{j}");
        return;
    }

    if args.flag("--batched") {
        run_batched_sweep(&mut j, gate, 5);
        let _ = writeln!(j, "  \"mode\": \"batched\"");
        j.push_str("}\n");
        std::fs::write(&out, &j).expect("write batched sweep json");
        println!("{j}");
        return;
    }

    if smoke {
        smoke_check::<f32>();
        smoke_check::<f64>();
        smoke_check::<Complex32>();
        smoke_check::<Complex64>();
        smoke_tiled::<f32>();
        smoke_tiled::<f64>();
        smoke_tiled::<Complex32>();
        smoke_tiled::<Complex64>();
        smoke_c32_dispatch();
        // one tiny timed row so the artifact shape matches the full run
        let row = bench_gemm::<f64>(64, 2, true);
        let _ = writeln!(
            j,
            "  \"gemm\": [{{\"type\": \"d\", \"n\": 64, \"gflops_packed\": {}, \"gflops_axpy\": {}, \"gflops_ref\": {}}}],",
            json_f(row.gflops_packed),
            json_f(row.gflops_axpy),
            json_f(row.gflops_ref)
        );
        let _ = writeln!(j, "  \"smoke_checked_types\": [\"s\", \"d\", \"c\", \"z\"]");
        j.push_str("}\n");
        std::fs::write(&out, &j).expect("write smoke json");
        println!("{j}");
        return;
    }

    // ---- gemm sweep: production (packed) vs axpy vs reference ----
    eprintln!("gemm sweep...");
    let mut rows = Vec::new();
    for n in [128usize, 256, 512, 1024] {
        rows.push(bench_gemm::<f64>(n, 3, n <= 512));
    }
    rows.push(bench_gemm::<f32>(512, 3, true));
    rows.push(bench_gemm::<Complex64>(256, 3, true));
    rows.push(bench_gemm::<Complex32>(256, 3, true));
    j.push_str("  \"gemm\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            j,
            "    {{\"type\": \"{}\", \"n\": {}, \"gflops_packed\": {}, \"gflops_axpy\": {}, \"gflops_ref\": {}, \"speedup_vs_axpy\": {}, \"speedup_vs_ref\": {}}}",
            r.tag,
            r.n,
            json_f(r.gflops_packed),
            json_f(r.gflops_axpy),
            json_f(r.gflops_ref),
            json_f(r.gflops_packed / r.gflops_axpy),
            json_f(r.gflops_packed / r.gflops_ref),
        );
        j.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    j.push_str("  ],\n");

    // ---- batch-major packed gemm vs the per-entry loop ----
    run_batched_sweep(&mut j, false, 3);

    // ---- level-3 kernels routed through the packed core ----
    eprintln!("trsm/herk/geqrf...");
    let _ = writeln!(
        j,
        "  \"trsm\": [{{\"type\": \"d\", \"n\": 512, \"gflops\": {}}}],",
        json_f(bench_trsm(512, 3))
    );
    let _ = writeln!(
        j,
        "  \"herk\": [{{\"type\": \"d\", \"n\": 512, \"gflops\": {}}}],",
        json_f(bench_herk(512, 3))
    );
    let _ = writeln!(
        j,
        "  \"geqrf\": [{{\"type\": \"d\", \"n\": 512, \"gflops\": {}}}],",
        json_f(bench_geqrf(512, 2))
    );

    // ---- tiled (DAG-scheduled) vs flat QR ----
    eprintln!("tiled qr...");
    // geqrf at n=512 takes ~10 ms, so a best-of-2 ratio wanders +-8% on a
    // shared host; the smaller the kernel the more repetitions the gated
    // ratio needs to be stable
    let reps_for = |n: usize| if n <= 512 { 6 } else { 3 };
    let mut tiled_threads = vec![1usize];
    if host_cores > 1 {
        tiled_threads.push(4.min(host_cores));
        tiled_threads.dedup();
    }
    j.push_str("  \"geqrf_tiled\": [\n");
    let mut first = true;
    let mut tiled_ratios: Vec<(usize, usize, f64)> = Vec::new(); // (n, workers, ratio)
    for n in [512usize, 1024] {
        for &t in &tiled_threads {
            let (mut flat, mut g) = bench_geqrf_pair(n, t, reps_for(n));
            // Nightly perf-gate floors: at one worker tiled QR must at least
            // break even with flat (older drivers sat at 0.78-0.81x); with
            // real cores to feed, the DAG must deliver genuine parallel
            // speedup. Shared runners (VM steal time) swing individual
            // rounds by +-20%, so the gate accepts the best of several
            // measurement rounds: a true regression (0.8x-class) is centered
            // far below the floor and fails every round, while a healthy
            // ratio only needs one quiet window. The artifact row records
            // the accepted measurement, so checked-in ratios match the
            // asserted floors.
            let floor = if t == 1 {
                Some(0.95)
            } else if t >= 2 && host_cores >= 2 {
                Some(1.5)
            } else {
                None
            };
            if let Some(floor) = floor.filter(|_| gate) {
                let mut tries = 1;
                while g / flat + 1e-9 < floor && tries < 5 {
                    eprintln!(
                        "perf gate: geqrf_tiled n={n} at {t} worker(s) measured {:.3}x, remeasuring...",
                        g / flat
                    );
                    let (f2, g2) = bench_geqrf_pair(n, t, 2 * reps_for(n));
                    if g2 / f2 > g / flat {
                        (flat, g) = (f2, g2);
                    }
                    tries += 1;
                }
                assert!(
                    g / flat + 1e-9 >= floor,
                    "perf gate: geqrf_tiled n={n} at {t} worker(s) is {:.3}x flat (< {floor}x) after {tries} rounds",
                    g / flat
                );
            }
            tiled_ratios.push((n, t, g / flat));
            if !first {
                j.push_str(",\n");
            }
            first = false;
            let _ = write!(
                j,
                "    {{\"type\": \"d\", \"n\": {n}, \"pool_workers\": {t}, \"host_cores\": {host_cores}, \"gflops\": {}, \"gflops_flat\": {}, \"speedup_vs_flat\": {}}}",
                json_f(g),
                json_f(flat),
                json_f(g / flat)
            );
        }
    }
    j.push_str("\n  ],\n");
    if gate {
        eprintln!("perf gate: geqrf_tiled ratios pass ({tiled_ratios:?})");
    }

    // ---- thread-scaling curve on the work-stealing pool ----
    // Oversubscribed pool sizes (more workers than physical cores) time
    // context-switch thrash, not kernel scaling, and have polluted past
    // artifacts with sub-1.0 "efficiency" at sizes the host cannot run.
    // Skip any size beyond host_cores except the configured pool width
    // itself, which is kept (someone pinned it deliberately) but flagged.
    eprintln!("thread scaling...");
    let mut tset = vec![1usize, 2, 4];
    if !tset.contains(&pool_workers) {
        tset.push(pool_workers);
    }
    if !tset.contains(&host_cores) {
        tset.push(host_cores);
    }
    tset.sort_unstable();
    tset.dedup();
    let skipped: Vec<usize> =
        tset.iter().copied().filter(|&t| t > host_cores && t != pool_workers).collect();
    tset.retain(|&t| t <= host_cores || t == pool_workers);
    if !skipped.is_empty() {
        eprintln!("thread scaling: skipping oversubscribed pool sizes {skipped:?} (host has {host_cores} cores)");
    }
    let base = bench_gemm_threads(1024, 1, 2);
    j.push_str("  \"thread_scaling\": [\n");
    for (i, &t) in tset.iter().enumerate() {
        let g = if t == 1 { base } else { bench_gemm_threads(1024, t, 2) };
        let eff = g / (base * t as f64);
        let _ = write!(
            j,
            "    {{\"pool_workers\": {t}, \"host_cores\": {host_cores}, \"n\": 1024, \"oversubscribed\": {}, \"gflops\": {}, \"efficiency_vs_ideal\": {}}}",
            t > host_cores,
            json_f(g),
            json_f(eff)
        );
        j.push_str(if i + 1 < tset.len() { ",\n" } else { "\n" });
    }
    j.push_str("  ],\n");
    let _ = writeln!(j, "  \"thread_scaling_skipped_oversubscribed\": {skipped:?},");
    let eff_at_workers = {
        let g = if pool_workers == 1 { base } else { bench_gemm_threads(1024, pool_workers, 2) };
        g / (base * pool_workers as f64)
    };
    let _ = writeln!(j, "  \"scaling_efficiency_at_pool_workers\": {},", json_f(eff_at_workers));

    // ---- end-to-end QDWH against the checked-in pre-PR baseline ----
    eprintln!("qdwh end-to-end...");
    let baseline: Option<f64> =
        std::fs::read_to_string("results/BENCH_baseline.json").ok().and_then(|s| {
            s.lines()
                .find(|l| l.contains("qdwh_seconds_n1024_d"))
                .and_then(|l| l.split(':').nth(1))
                .and_then(|v| v.trim().trim_end_matches(',').parse().ok())
        });
    let (s512, it512) = bench_qdwh(512);
    let (s1024, it1024) = bench_qdwh(1024);
    j.push_str("  \"qdwh\": [\n");
    let _ = writeln!(
        j,
        "    {{\"type\": \"d\", \"n\": 512, \"seconds\": {}, \"iterations\": {it512}}},",
        json_f(s512)
    );
    let _ = writeln!(
        j,
        "    {{\"type\": \"d\", \"n\": 1024, \"seconds\": {}, \"iterations\": {it1024}, \"baseline_seconds\": {}, \"speedup_vs_baseline\": {}}}",
        json_f(s1024),
        baseline.map(json_f).unwrap_or_else(|| "null".into()),
        baseline.map(|b| json_f(b / s1024)).unwrap_or_else(|| "null".into()),
    );
    j.push_str("  ]\n}\n");

    std::fs::write(&out, &j).expect("write bench json");
    println!("{j}");
}
