//! Communication-volume cross-validation: the *measured* point-to-point
//! traffic of the numeric tiled QDWH (virtual cluster, `polar-qdwh::dist`)
//! against the *predicted* cross-rank bytes of the symbolic task DAG
//! (`polar-sim::dag`). The two are built from the same loop nests, so
//! their communication profiles must track each other — this is the
//! consistency check that ties the performance model to the real
//! algorithm.
//!
//! ```sh
//! cargo run --release -p polar-bench --bin comm_volume
//! ```

use polar_gen::{generate, MatrixSpec};
use polar_matrix::ProcessGrid;
use polar_qdwh::{qdwh_distributed, DistConfig, QdwhOptions};
use polar_sim::dag::{qdwh_graph, Grid, QdwhGraphSpec};

fn main() {
    let n = 64usize;
    let nb = 8usize;
    let (a, _) = generate::<f64>(&MatrixSpec::ill_conditioned(n, 99));

    println!("# comm-volume cross-check: numeric tiled QDWH vs symbolic DAG (n = {n}, nb = {nb})");
    println!("# {:>7} | {:>14} {:>14} | {:>7}", "grid", "measured MB", "DAG-pred MB", "ratio");

    for (p, q) in [(1usize, 2usize), (2, 2), (2, 4), (4, 4)] {
        let cfg = DistConfig { grid: ProcessGrid::new(p, q), nb };
        let out = qdwh_distributed(&a, &QdwhOptions::default(), &cfg).expect("dist qdwh");
        let measured = out.comm.point_to_point_bytes as f64 / 1e6;

        let g = qdwh_graph(&QdwhGraphSpec {
            t: n / nb,
            nb,
            scalar_bytes: 8,
            grid: Grid { p, q },
            it_qr: out.pd.info.qr_iterations,
            it_chol: out.pd.info.chol_iterations,
        });
        let predicted = g.cross_rank_bytes() as f64 / 1e6;
        println!(
            "  {:>3}x{:<3} | {:>14.3} {:>14.3} | {:>7.2}",
            p,
            q,
            measured,
            predicted,
            measured / predicted
        );
    }
    println!("# same loop nests, two abstractions: ratios should sit within a small");
    println!("# constant (the numeric engine re-reads panel tiles that the DAG's");
    println!("# dependency model treats as cached).");
}
