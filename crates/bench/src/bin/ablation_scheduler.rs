//! ABL-SCHED: task-based vs fork-join scheduling of the *same* QDWH tile
//! DAG — the mechanism behind the paper's §3 argument that POLAR's
//! bulk-synchronous ScaLAPACK substrate limits concurrency (lookahead is
//! impractical under fork-join).
//!
//! Runs the discrete-event scheduler in both modes over identical graphs
//! and reports the makespan gap and parallel efficiency.
//!
//! ```sh
//! cargo run --release -p polar-bench --bin ablation_scheduler
//! ```

use polar_runtime::{simulate, SchedulingMode};
use polar_sim::dag::{qdwh_graph, Grid, QdwhGraphSpec};
use polar_sim::machine::{ClusterModel, ExecTarget, NodeSpec};
use polar_sim::ILL_CONDITIONED_PROFILE;

fn main() {
    let (it_qr, it_chol) = ILL_CONDITIONED_PROFILE;
    let summit = NodeSpec::summit();

    println!("# ABL-SCHED: identical QDWH tile DAG under both scheduling modes");
    println!(
        "# {:>6} {:>6} {:>7} | {:>12} {:>12} | {:>8} | {:>7} {:>7}",
        "tiles", "nodes", "tasks", "task-based s", "fork-join s", "fj/tb", "eff(tb)", "eff(fj)"
    );

    for (t, nodes) in [(12usize, 1usize), (16, 1), (24, 2), (32, 4)] {
        let ranks = nodes * summit.slate_ranks_per_node;
        let g = qdwh_graph(&QdwhGraphSpec {
            t,
            nb: 320,
            scalar_bytes: 8,
            grid: Grid::squarest(ranks),
            it_qr,
            it_chol,
        });
        let model = ClusterModel::slate(summit.clone(), nodes, ExecTarget::CpuOnly, 320);
        let tb = simulate(&g, &model, SchedulingMode::TaskBased);
        let fj = simulate(&g, &model, SchedulingMode::ForkJoin);
        let slots: usize =
            (0..ranks).map(|r| polar_runtime::ExecutionModel::slots(&model, r)).sum();
        println!(
            "  {:>6} {:>6} {:>7} | {:>12.3} {:>12.3} | {:>7.2}x | {:>6.1}% {:>6.1}%",
            t,
            nodes,
            g.len(),
            tb.makespan,
            fj.makespan,
            fj.makespan / tb.makespan,
            100.0 * tb.efficiency(slots),
            100.0 * fj.efficiency(slots),
        );
        assert!(fj.makespan >= tb.makespan, "fork-join must not win");
    }
    println!("# the fork-join penalty is the concurrency POLAR leaves on the table (§3).");
}
