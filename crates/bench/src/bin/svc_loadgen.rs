//! SVC_LOADGEN: load generator for the `polar-svc` job service.
//!
//! Drives a mixed-size, mixed-kind workload (small well-conditioned
//! panels that the dispatcher batches, plus large ill-conditioned
//! matrices that own a worker) through a bounded-queue service and
//! prints a latency/throughput report: admission outcomes, wait/run
//! quantiles, retries under injected transient faults, and optionally a
//! Chrome trace of every executed job span.
//!
//! ```sh
//! cargo run --release -p polar-bench --bin svc_loadgen -- \
//!     [--jobs 200] [--workers 4] [--queue 32] [--small-n 24] \
//!     [--large-n 96] [--large-every 8] [--fault-nth 0] [--seed 1] \
//!     [--trace results/svc_trace.json] [--json]
//! ```

use polar_bench::Args;
use polar_gen::{generate, MatrixSpec};
use polar_svc::{FaultPlan, JobKind, JobSpec, PolarService, ServiceConfig, SubmitError};
use std::time::{Duration, Instant};

fn main() {
    let args = Args::parse();
    let jobs: usize = args.get("--jobs", 200);
    let workers: usize = args.get("--workers", 4);
    let queue: usize = args.get("--queue", 32);
    let small_n: usize = args.get("--small-n", 24);
    let large_n: usize = args.get("--large-n", 96);
    let large_every: usize = args.get("--large-every", 8);
    let fault_nth: u64 = args.get("--fault-nth", 0);
    let seed: u64 = args.get("--seed", 1);
    let trace_path: String = args.get("--trace", String::new());

    println!("# polar-svc load generator");
    println!(
        "# jobs={jobs} workers={workers} queue={queue} small_n={small_n} \
         large_n={large_n} large_every={large_every} fault_nth={fault_nth}"
    );

    let svc = PolarService::start(ServiceConfig {
        workers,
        queue_capacity: queue,
        fault: FaultPlan { nth: fault_nth, failures_per_job: 1 },
        max_retries: 3,
        ..Default::default()
    });

    // Pre-generate the workload so submission cost is pure service
    // overhead, not matrix generation.
    let kinds = [JobKind::Qdwh, JobKind::Qdwh, JobKind::QdwhSvd, JobKind::SvdPolar];
    let specs: Vec<JobSpec> = (0..jobs)
        .map(|i| {
            let large = large_every > 0 && i % large_every == 0;
            let (a, _) = if large {
                generate::<f64>(&MatrixSpec::ill_conditioned(large_n, seed + i as u64))
            } else {
                generate::<f64>(&MatrixSpec::well_conditioned(small_n, seed + i as u64))
            };
            let kind = if large { JobKind::Qdwh } else { kinds[i % kinds.len()] };
            JobSpec::new(kind, a).with_priority(if large { 1 } else { (i % 4) as u8 })
        })
        .collect();

    // Open-loop submission: try first, fall back to a short blocking
    // submit when the bounded queue pushes back, and count shed load.
    let t0 = Instant::now();
    let mut handles = Vec::with_capacity(jobs);
    let mut shed = 0usize;
    for spec in specs {
        match svc.try_submit(spec.clone()) {
            Ok(h) => handles.push(h),
            Err(SubmitError::QueueFull) => {
                match svc.submit(spec, Duration::from_secs(30)) {
                    Ok(h) => {
                        shed += 1; // felt backpressure, then admitted
                        handles.push(h);
                    }
                    Err(e) => panic!("blocking submit failed: {e:?}"),
                }
            }
            Err(e) => panic!("submit failed: {e:?}"),
        }
    }
    let submit_wall = t0.elapsed();

    let mut ok = 0usize;
    let mut failed = 0usize;
    let mut attempts_max = 0u32;
    for h in handles {
        let r = h.wait();
        attempts_max = attempts_max.max(r.attempts);
        match r.output {
            Ok(_) => ok += 1,
            Err(e) => {
                failed += 1;
                eprintln!("job {:?} failed: {e}", r.id);
            }
        }
    }
    let total_wall = t0.elapsed();
    svc.drain();
    let m = svc.metrics();

    if !trace_path.is_empty() {
        if let Some(dir) = std::path::Path::new(&trace_path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let f = std::fs::File::create(&trace_path).expect("create trace file");
        svc.write_chrome_trace(f).expect("write chrome trace");
        println!("# chrome trace -> {trace_path} ({} spans)", svc.spans().events().len());
    }

    let us = |d: Option<Duration>| d.map(|d| d.as_secs_f64() * 1e6).unwrap_or(0.0);
    println!();
    println!("admission");
    println!("  submitted            : {}", m.submitted);
    println!("  backpressure stalls  : {shed}");
    println!("  rejected (QueueFull) : {}", m.rejected_full);
    println!("outcomes");
    println!("  completed            : {} ({ok} observed ok)", m.completed);
    println!("  failed               : {} ({failed} observed)", m.failed);
    println!("  retries              : {}", m.retries);
    println!("  injected faults      : {}", m.injected_faults);
    println!("  max attempts per job : {attempts_max}");
    println!("  batches coalesced    : {}", m.batches);
    println!("latency (us)");
    println!(
        "  wait  p50/p95/p99    : {:>10.1} {:>10.1} {:>10.1}",
        us(m.wait.p50),
        us(m.wait.p95),
        us(m.wait.p99)
    );
    println!(
        "  run   p50/p95/p99    : {:>10.1} {:>10.1} {:>10.1}",
        us(m.run.p50),
        us(m.run.p95),
        us(m.run.p99)
    );
    println!("throughput");
    println!("  submit wall          : {submit_wall:?}");
    println!("  total wall           : {total_wall:?}");
    println!("  jobs/sec (completed) : {:.1}", m.completed as f64 / total_wall.as_secs_f64());
    println!("  jobs/sec (uptime)    : {:.1}", m.throughput_per_sec);

    if args.flag("--json") {
        println!();
        println!("{}", m.to_json());
    }

    svc.shutdown();
    assert_eq!(failed as u64, m.failed, "observed failures match metrics");
}
