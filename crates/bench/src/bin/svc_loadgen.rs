//! SVC_LOADGEN: load generator for the `polar-svc` job service.
//!
//! Drives a mixed-size, mixed-kind workload (small well-conditioned
//! panels that the dispatcher batches, plus large ill-conditioned
//! matrices that own a worker) through a bounded-queue service and
//! prints a latency/throughput report: admission outcomes, wait/run
//! quantiles, retries under injected transient faults, and optionally a
//! Chrome trace of every executed job span.
//!
//! ```sh
//! cargo run --release -p polar-bench --bin svc_loadgen -- \
//!     [--jobs 200] [--workers 4] [--queue 32] [--small-n 24] \
//!     [--large-n 96] [--large-every 8] [--fault-nth 0] [--seed 1] \
//!     [--trace results/svc_trace.json] [--json]
//! ```
//!
//! `--batch-sweep` switches to the fused-engine benchmark instead: a
//! batch-size × matrix-size service throughput sweep
//! (`JobKind::Batched` waves through `submit_batch`) plus a direct
//! looped-scalar-vs-`qdwh_batched` engine comparison across scalar
//! types, written to `BENCH_svc.json` (`--out` to override). `--smoke`
//! shrinks it to a seconds-long CI pass with the same artifact shape.

use polar_bench::Args;
use polar_gen::{generate, MatrixSpec, SigmaDistribution};
use polar_svc::{FaultPlan, JobKind, JobSpec, PolarService, ServiceConfig, SubmitError};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// One well-conditioned square spec for sweep workloads (κ = 100: the
/// serving-tier profile the batched engine targets — Cholesky-only
/// iterations after the prologue).
fn sweep_spec(n: usize, seed: u64) -> MatrixSpec {
    MatrixSpec { m: n, n, cond: 100.0, distribution: SigmaDistribution::Geometric, seed }
}

/// Time `batch`-sized matrices through the looped scalar driver and the
/// fused engine; returns `(looped_seconds, batched_seconds,
/// hinted_seconds)`, each best-of-`reps`. The hinted run models the
/// serving stream the engine targets (VUMPS-style repeated truncations):
/// every entry carries its known conditioning class and the shared
/// condition-estimate cache is already warm from earlier same-class
/// batches, so the `l_0` prologue QR is skipped.
fn engine_triple<S: polar_scalar::Scalar>(
    n: usize,
    batch: usize,
    reps: usize,
    seed: u64,
) -> (f64, f64, f64) {
    use polar_batch::{qdwh_batched, BatchEntry, BatchOptions, CondestCache};
    use polar_qdwh::{qdwh, QdwhOptions};
    use std::sync::Arc;

    let inputs: Vec<polar_matrix::Matrix<S>> =
        (0..batch).map(|k| generate::<S>(&sweep_spec(n, seed + k as u64)).0).collect();

    let mut looped = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        for a in &inputs {
            let _ = qdwh(a, &QdwhOptions::default()).expect("scalar qdwh converges");
        }
        looped = looped.min(t.elapsed().as_secs_f64());
    }

    let opts = BatchOptions::default();
    let mut batched = f64::INFINITY;
    for _ in 0..reps {
        let mut entries: Vec<BatchEntry<S>> = inputs.iter().cloned().map(BatchEntry::new).collect();
        let t = Instant::now();
        let _ = qdwh_batched(&mut entries, &opts).expect("batched qdwh converges");
        batched = batched.min(t.elapsed().as_secs_f64());
    }

    // hinted steady-state: one untimed batch seeds the cache, then every
    // timed rep consumes the cached l_0 bound like a repeat-stream batch
    let cache = Arc::new(CondestCache::new());
    let hinted_opts = BatchOptions { condest_cache: Some(cache), ..BatchOptions::default() };
    let hint = sweep_spec(n, seed).cond;
    let mk_entries = |inputs: &[polar_matrix::Matrix<S>]| -> Vec<BatchEntry<S>> {
        inputs.iter().map(|a| BatchEntry::with_cond_hint(a.clone(), hint)).collect()
    };
    let mut warm = mk_entries(&inputs);
    let _ = qdwh_batched(&mut warm, &hinted_opts).expect("warmup batch converges");
    let mut hinted = f64::INFINITY;
    for _ in 0..reps {
        let mut entries = mk_entries(&inputs);
        let t = Instant::now();
        let _ = qdwh_batched(&mut entries, &hinted_opts).expect("hinted batched qdwh converges");
        hinted = hinted.min(t.elapsed().as_secs_f64());
    }
    (looped, batched, hinted)
}

fn json_f(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.4}")
    } else {
        "null".into()
    }
}

/// The fused-engine benchmark: service-level batched throughput sweep +
/// direct engine comparison, written as `BENCH_svc.json`.
fn batch_sweep(args: &Args) {
    let smoke = args.flag("--smoke");
    let workers: usize = args.get("--workers", 4);
    let rounds: usize = args.get("--rounds", if smoke { 2 } else { 8 });
    let seed: u64 = args.get("--seed", 1);
    let out: String = args.get("--out", "BENCH_svc.json".to_string());

    let sizes: Vec<usize> = if smoke { vec![16] } else { vec![32, 64, 96] };
    let batches: Vec<usize> = if smoke { vec![4] } else { vec![1, 8, 32, 64] };

    let prov = polar_bench::Provenance::collect();
    let mut j = String::from("{\n");
    let _ = writeln!(j, "  \"harness\": \"svc_loadgen_batch_sweep\",");
    let _ = writeln!(j, "  \"smoke\": {smoke},");
    j.push_str(&prov.json_fields());
    let _ = writeln!(j, "  \"workers\": {workers},");
    let _ = writeln!(j, "  \"rounds\": {rounds},");

    // ---- service-level sweep: waves of submit_batch through the svc ----
    eprintln!("service sweep ({} sizes x {} batches)...", sizes.len(), batches.len());
    let us = |d: Option<Duration>| d.map(|d| d.as_secs_f64() * 1e6).unwrap_or(0.0);
    let mut solves_n64_d: Option<f64> = None;
    j.push_str("  \"service_sweep\": [\n");
    let mut first = true;
    for &n in &sizes {
        for &batch in &batches {
            let svc = PolarService::start(ServiceConfig {
                workers,
                queue_capacity: (batch * 4).max(64),
                batch_max: batch.max(1),
                ..Default::default()
            });
            // every wave carries its conditioning class (the stream knows
            // its own spectra, VUMPS-style): wave 1 seeds the service's
            // condest cache, later waves skip the l_0 prologue QR
            let waves: Vec<Vec<JobSpec>> = (0..rounds)
                .map(|r| {
                    (0..batch)
                        .map(|k| {
                            let s = seed + (r * batch + k) as u64;
                            let spec = sweep_spec(n, s);
                            JobSpec::batched(generate::<f64>(&spec).0).with_cond_hint(spec.cond)
                        })
                        .collect()
                })
                .collect();
            let t = Instant::now();
            for wave in waves {
                let handles = svc.submit_batch(wave).expect("submit batch wave");
                for h in handles {
                    h.wait().output.expect("batched job succeeds");
                }
            }
            let wall = t.elapsed().as_secs_f64();
            svc.drain();
            let m = svc.metrics();
            svc.shutdown();
            let solves_per_sec = (rounds * batch) as f64 / wall;
            if n == 64 {
                // best across batch sizes: the acceptance target reads this
                solves_n64_d =
                    Some(solves_n64_d.map_or(solves_per_sec, |v: f64| v.max(solves_per_sec)));
            }
            if !first {
                j.push_str(",\n");
            }
            first = false;
            let _ = write!(
                j,
                "    {{\"type\": \"d\", \"n\": {n}, \"batch\": {batch}, \"solves_per_sec\": {}, \"run_p50_us\": {:.1}, \"run_p99_us\": {:.1}, \"fused_batches\": {}, \"batch_size_p50\": {:.0}, \"batch_fill_ratio\": {}, \"condest_hits\": {}, \"condest_misses\": {}}}",
                json_f(solves_per_sec),
                us(m.run.p50),
                us(m.run.p99),
                m.fused_batches,
                m.batch_size.p50.map(|d| d.as_nanos() as f64).unwrap_or(0.0),
                json_f(m.batch_fill_ratio()),
                m.condest_hits,
                m.condest_misses,
            );
            eprintln!("  n={n} batch={batch}: {solves_per_sec:.0} solves/s");
        }
    }
    j.push_str("\n  ],\n");

    // ---- direct engine comparison: looped scalar vs one fused call ----
    eprintln!("engine comparison...");
    let (cmp_n, cmp_batch, reps) = if smoke { (16, 4, 1) } else { (64, 32, 3) };
    j.push_str("  \"engine\": [\n");
    let mut rows: Vec<String> = Vec::new();
    let mut push_row = |tag: &str, looped: f64, batched: f64, hinted: f64| {
        rows.push(format!(
            "    {{\"type\": \"{tag}\", \"n\": {cmp_n}, \"batch\": {cmp_batch}, \"looped_seconds\": {}, \"batched_seconds\": {}, \"hinted_seconds\": {}, \"speedup\": {}, \"speedup_hinted\": {}}}",
            json_f(looped),
            json_f(batched),
            json_f(hinted),
            json_f(looped / batched),
            json_f(looped / hinted)
        ));
        eprintln!("  {tag}: {:.2}x cold, {:.2}x hinted", looped / batched, looped / hinted);
    };
    let (ld, bd, hd) = engine_triple::<f64>(cmp_n, cmp_batch, reps, seed);
    let speedup_d = ld / bd;
    let speedup_hinted_d = ld / hd;
    push_row("d", ld, bd, hd);
    if !smoke {
        let (l, b, h) = engine_triple::<f32>(cmp_n, cmp_batch, reps, seed + 100);
        push_row("s", l, b, h);
        let (l, b, h) =
            engine_triple::<polar_scalar::Complex64>(cmp_n, cmp_batch, reps, seed + 200);
        push_row("z", l, b, h);
        let (l, b, h) =
            engine_triple::<polar_scalar::Complex32>(cmp_n, cmp_batch, reps, seed + 300);
        push_row("c", l, b, h);
    }
    j.push_str(&rows.join(",\n"));
    j.push_str("\n  ],\n");

    // ---- acceptance targets ----
    j.push_str("  \"targets\": {\n");
    let _ = writeln!(
        j,
        "    \"solves_per_sec_n64_d\": {},",
        solves_n64_d.map(json_f).unwrap_or_else(|| "null".into())
    );
    let _ = writeln!(j, "    \"target_solves_per_sec_n64_d\": 10000,");
    let _ = writeln!(j, "    \"speedup_vs_looped_scalar\": {},", json_f(speedup_d));
    let _ = writeln!(j, "    \"speedup_hinted_vs_looped_scalar\": {},", json_f(speedup_hinted_d));
    let _ = writeln!(j, "    \"target_speedup_vs_looped_scalar\": 3.0");
    j.push_str("  }\n}\n");

    std::fs::write(&out, &j).expect("write BENCH_svc.json");
    println!("{j}");
    eprintln!("batch sweep -> {out}");

    if smoke {
        // artifact must re-parse and carry the provenance + target fields
        use serde::json::{from_str, Value};
        let v = from_str(&std::fs::read_to_string(&out).expect("read artifact"))
            .expect("BENCH_svc.json is well-formed");
        for key in ["host_cores", "pool_workers", "git_rev", "service_sweep", "engine", "targets"] {
            assert!(v.get(key).is_some(), "artifact lacks '{key}'");
        }
        let sweep = v.get("service_sweep").and_then(Value::as_array).expect("sweep array");
        assert!(!sweep.is_empty(), "empty sweep");
        for row in sweep {
            assert!(
                row.get("solves_per_sec").and_then(Value::as_f64).expect("solves_per_sec") > 0.0
            );
        }
        eprintln!("smoke: BENCH_svc.json validated");
    }
}

fn main() {
    let args = Args::parse();
    if args.flag("--batch-sweep") {
        batch_sweep(&args);
        return;
    }
    let jobs: usize = args.get("--jobs", 200);
    let workers: usize = args.get("--workers", 4);
    let queue: usize = args.get("--queue", 32);
    let small_n: usize = args.get("--small-n", 24);
    let large_n: usize = args.get("--large-n", 96);
    let large_every: usize = args.get("--large-every", 8);
    let fault_nth: u64 = args.get("--fault-nth", 0);
    let seed: u64 = args.get("--seed", 1);
    let trace_path: String = args.get("--trace", String::new());

    println!("# polar-svc load generator");
    println!(
        "# jobs={jobs} workers={workers} queue={queue} small_n={small_n} \
         large_n={large_n} large_every={large_every} fault_nth={fault_nth}"
    );

    let svc = PolarService::start(ServiceConfig {
        workers,
        queue_capacity: queue,
        fault: FaultPlan { nth: fault_nth, failures_per_job: 1 },
        max_retries: 3,
        ..Default::default()
    });

    // Pre-generate the workload so submission cost is pure service
    // overhead, not matrix generation.
    let kinds = [JobKind::Qdwh, JobKind::Qdwh, JobKind::QdwhSvd, JobKind::SvdPolar];
    let specs: Vec<JobSpec> = (0..jobs)
        .map(|i| {
            let large = large_every > 0 && i % large_every == 0;
            let (a, _) = if large {
                generate::<f64>(&MatrixSpec::ill_conditioned(large_n, seed + i as u64))
            } else {
                generate::<f64>(&MatrixSpec::well_conditioned(small_n, seed + i as u64))
            };
            let kind = if large { JobKind::Qdwh } else { kinds[i % kinds.len()] };
            JobSpec::new(kind, a).with_priority(if large { 1 } else { (i % 4) as u8 })
        })
        .collect();

    // Open-loop submission: try first, fall back to a short blocking
    // submit when the bounded queue pushes back, and count shed load.
    let t0 = Instant::now();
    let mut handles = Vec::with_capacity(jobs);
    let mut shed = 0usize;
    for spec in specs {
        match svc.try_submit(spec.clone()) {
            Ok(h) => handles.push(h),
            Err(SubmitError::QueueFull) => {
                match svc.submit(spec, Duration::from_secs(30)) {
                    Ok(h) => {
                        shed += 1; // felt backpressure, then admitted
                        handles.push(h);
                    }
                    Err(e) => panic!("blocking submit failed: {e:?}"),
                }
            }
            Err(e) => panic!("submit failed: {e:?}"),
        }
    }
    let submit_wall = t0.elapsed();

    let mut ok = 0usize;
    let mut failed = 0usize;
    let mut attempts_max = 0u32;
    for h in handles {
        let r = h.wait();
        attempts_max = attempts_max.max(r.attempts);
        match r.output {
            Ok(_) => ok += 1,
            Err(e) => {
                failed += 1;
                eprintln!("job {:?} failed: {e}", r.id);
            }
        }
    }
    let total_wall = t0.elapsed();
    svc.drain();
    let m = svc.metrics();

    if !trace_path.is_empty() {
        if let Some(dir) = std::path::Path::new(&trace_path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let f = std::fs::File::create(&trace_path).expect("create trace file");
        svc.write_chrome_trace(f).expect("write chrome trace");
        println!("# chrome trace -> {trace_path} ({} spans)", svc.spans().events().len());
    }

    let us = |d: Option<Duration>| d.map(|d| d.as_secs_f64() * 1e6).unwrap_or(0.0);
    println!();
    println!("admission");
    println!("  submitted            : {}", m.submitted);
    println!("  backpressure stalls  : {shed}");
    println!("  rejected (QueueFull) : {}", m.rejected_full);
    println!("outcomes");
    println!("  completed            : {} ({ok} observed ok)", m.completed);
    println!("  failed               : {} ({failed} observed)", m.failed);
    println!("  retries              : {}", m.retries);
    println!("  injected faults      : {}", m.injected_faults);
    println!("  max attempts per job : {attempts_max}");
    println!("  batches coalesced    : {}", m.batches);
    println!("latency (us)");
    println!(
        "  wait  p50/p95/p99    : {:>10.1} {:>10.1} {:>10.1}",
        us(m.wait.p50),
        us(m.wait.p95),
        us(m.wait.p99)
    );
    println!(
        "  run   p50/p95/p99    : {:>10.1} {:>10.1} {:>10.1}",
        us(m.run.p50),
        us(m.run.p95),
        us(m.run.p99)
    );
    println!("throughput");
    println!("  submit wall          : {submit_wall:?}");
    println!("  total wall           : {total_wall:?}");
    println!("  jobs/sec (completed) : {:.1}", m.completed as f64 / total_wall.as_secs_f64());
    println!("  jobs/sec (uptime)    : {:.1}", m.throughput_per_sec);

    if args.flag("--json") {
        // wrap the metrics snapshot with run provenance so the artifact
        // stands alone, like every other bench JSON
        println!();
        let mut j = String::from("{\n");
        let _ = writeln!(j, "  \"harness\": \"svc_loadgen\",");
        j.push_str(&polar_bench::Provenance::collect().json_fields());
        let _ = writeln!(j, "  \"metrics\": {}", m.to_json());
        j.push('}');
        println!("{j}");
    }

    svc.shutdown();
    assert_eq!(failed as u64, m.failed, "observed failures match metrics");
}
