//! FIG2A/FIG2B/FIG3A/FIG3B: Summit performance comparison at a fixed node
//! count (paper Figs. 2-3): Tflop/s vs matrix size for the three series
//! (SLATE GPU, SLATE CPU, ScaLAPACK), plus the speedup column that yields
//! the paper's 18x / 13x headline numbers.
//!
//! ```sh
//! cargo run --release -p polar-bench --bin fig2_summit -- --nodes 1   # Fig. 2a
//! cargo run --release -p polar-bench --bin fig2_summit -- --nodes 8   # Fig. 2b
//! cargo run --release -p polar-bench --bin fig2_summit -- --nodes 16  # Fig. 3a
//! cargo run --release -p polar-bench --bin fig2_summit -- --nodes 32  # Fig. 3b
//! ```

use polar_bench::{csv_row, perf_sweep, Args, CsvOut};
use polar_sim::machine::NodeSpec;
use polar_sim::{estimate_qdwh_time, Implementation, ILL_CONDITIONED_PROFILE};

fn main() {
    let args = Args::parse();
    let nodes = args.get("--nodes", 1usize);
    let (it_qr, it_chol) = ILL_CONDITIONED_PROFILE;
    let summit = NodeSpec::summit();

    let fig = match nodes {
        1 => "2a",
        8 => "2b",
        16 => "3a",
        32 => "3b",
        _ => "custom",
    };
    println!(
        "# Fig. {fig} reproduction: {nodes} Summit node(s) ({} P9 cores, {} V100 GPUs)",
        nodes * summit.cpu_cores,
        nodes * summit.gpus
    );
    println!(
        "# {:>8} | {:>11} {:>11} {:>11} | {:>9}",
        "n", "SLATE-GPU", "SLATE-CPU", "ScaLAPACK", "GPU/SCA"
    );

    let mut csv = CsvOut::create(
        &format!("fig_summit_{nodes}nodes"),
        &["n", "slate_gpu_tflops", "slate_cpu_tflops", "scalapack_tflops", "speedup"],
    )
    .ok();
    let mut best_speedup: f64 = 0.0;
    for n in perf_sweep() {
        let gpu =
            estimate_qdwh_time(&summit, nodes, Implementation::SlateGpu, n, 320, it_qr, it_chol);
        let cpu =
            estimate_qdwh_time(&summit, nodes, Implementation::SlateCpu, n, 192, it_qr, it_chol);
        let sca =
            estimate_qdwh_time(&summit, nodes, Implementation::ScaLapack, n, 192, it_qr, it_chol);
        let speedup = gpu.tflops / sca.tflops;
        best_speedup = best_speedup.max(speedup);
        println!(
            "  {:>8} | {:>11.2} {:>11.3} {:>11.3} | {:>8.1}x",
            n, gpu.tflops, cpu.tflops, sca.tflops, speedup
        );
        if let Some(c) = csv.as_mut() {
            csv_row!(c, n, gpu.tflops, cpu.tflops, sca.tflops, speedup);
        }
    }
    if let Some(c) = &csv {
        println!("# series written to {}", c.path.display());
    }
    println!("# max speedup at {nodes} node(s): {best_speedup:.1}x");
    println!("# paper: up to 18x on 1 and 4 nodes, ~13x on 8 nodes; SLATE-CPU ~ ScaLAPACK.");
}
