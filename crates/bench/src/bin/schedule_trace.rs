//! Export a Chrome-tracing JSON of a simulated QDWH schedule — open the
//! output in `chrome://tracing` or https://ui.perfetto.dev to *see* the
//! task-based pipeline (and, side by side, the fork-join bubbles the
//! paper's §3 complains about).
//!
//! ```sh
//! cargo run --release -p polar-bench --bin schedule_trace -- \
//!     --tiles 12 --nodes 1 [--fork-join] [--out trace.json]
//! ```

use polar_bench::Args;
use polar_runtime::{simulate_traced, write_chrome_trace, SchedulingMode};
use polar_sim::dag::{qdwh_graph, Grid, QdwhGraphSpec};
use polar_sim::machine::{ClusterModel, ExecTarget, NodeSpec};
use polar_sim::ILL_CONDITIONED_PROFILE;

fn main() {
    let args = Args::parse();
    let t = args.get("--tiles", 12usize);
    let nodes = args.get("--nodes", 1usize);
    let fork_join = args.flag("--fork-join");
    let out: String = args.get("--out", String::from("schedule_trace.json"));

    let (it_qr, it_chol) = ILL_CONDITIONED_PROFILE;
    let summit = NodeSpec::summit();
    let ranks = nodes * summit.slate_ranks_per_node;
    let g = qdwh_graph(&QdwhGraphSpec {
        t,
        nb: 320,
        scalar_bytes: 8,
        grid: Grid::squarest(ranks),
        it_qr,
        it_chol,
    });
    let model = ClusterModel::slate(summit, nodes, ExecTarget::CpuOnly, 320);
    let mode = if fork_join { SchedulingMode::ForkJoin } else { SchedulingMode::TaskBased };
    let (stats, events) = simulate_traced(&g, &model, mode);
    let file = std::fs::File::create(&out).expect("create trace file");
    write_chrome_trace(&events, std::io::BufWriter::new(file)).expect("write trace");
    println!(
        "wrote {} events to {out} ({:?}, {} tiles/side, {nodes} node(s)): makespan {:.3}s, {} messages",
        events.len(),
        mode,
        t,
        stats.makespan,
        stats.messages
    );
    println!("open in chrome://tracing or ui.perfetto.dev — rows are (rank, slot).");
}
