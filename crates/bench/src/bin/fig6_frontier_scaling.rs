//! FIG6: SLATE QDWH scalability across Frontier node counts (paper
//! Fig. 6): Tflop/s vs matrix size per node count, rates increasing with
//! both node count and matrix size.
//!
//! ```sh
//! cargo run --release -p polar-bench --bin fig6_frontier_scaling
//! ```

use polar_bench::CsvOut;
use polar_sim::machine::NodeSpec;
use polar_sim::{estimate_qdwh_time, Implementation, ILL_CONDITIONED_PROFILE};

fn main() {
    let (it_qr, it_chol) = ILL_CONDITIONED_PROFILE;
    let frontier = NodeSpec::frontier();
    let node_counts = [1usize, 2, 4, 8, 16];

    println!("# Fig. 6 reproduction: SLATE-GPU QDWH scalability on Frontier (Tflop/s)");
    print!("# {:>8} |", "n");
    for nc in node_counts {
        print!(" {:>8}", format!("{nc} node"));
    }
    println!();

    let mut csv = CsvOut::create(
        "fig6_frontier_scaling",
        &["n", "nodes1", "nodes2", "nodes4", "nodes8", "nodes16"],
    )
    .ok();
    for n in [25_000usize, 50_000, 75_000, 100_000, 125_000, 150_000, 175_000] {
        print!("  {n:>8} |");
        let mut row = vec![format!("{n}")];
        for nodes in node_counts {
            let r = estimate_qdwh_time(
                &frontier,
                nodes,
                Implementation::SlateGpu,
                n,
                320,
                it_qr,
                it_chol,
            );
            print!(" {:>8.1}", r.tflops);
            row.push(format!("{}", r.tflops));
        }
        println!();
        if let Some(c) = csv.as_mut() {
            c.row(&row);
        }
    }

    println!("\n# monotonicity checks (paper: rate grows with nodes and with n):");
    let mut ok = true;
    for (i, nodes) in node_counts.iter().enumerate().skip(1) {
        let prev = estimate_qdwh_time(
            &frontier,
            node_counts[i - 1],
            Implementation::SlateGpu,
            175_000,
            320,
            it_qr,
            it_chol,
        );
        let cur = estimate_qdwh_time(
            &frontier,
            *nodes,
            Implementation::SlateGpu,
            175_000,
            320,
            it_qr,
            it_chol,
        );
        if cur.tflops <= prev.tflops {
            ok = false;
        }
    }
    println!("#   rate increases with node count at n = 175k: {ok}");
}
