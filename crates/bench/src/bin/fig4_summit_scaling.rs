//! FIG4: SLATE-GPU QDWH scalability across Summit node counts (paper
//! Fig. 4): Tflop/s vs matrix size, one curve per node count. Shows the
//! paper's observation: limited strong scaling at fixed n, good weak
//! scaling at the largest size per node count.
//!
//! ```sh
//! cargo run --release -p polar-bench --bin fig4_summit_scaling
//! ```

use polar_bench::{perf_sweep, CsvOut};
use polar_sim::machine::NodeSpec;
use polar_sim::{estimate_qdwh_time, Implementation, ILL_CONDITIONED_PROFILE};

fn main() {
    let (it_qr, it_chol) = ILL_CONDITIONED_PROFILE;
    let summit = NodeSpec::summit();
    let node_counts = [1usize, 2, 4, 8, 16, 32];

    println!("# Fig. 4 reproduction: SLATE-GPU QDWH scalability on Summit (Tflop/s)");
    print!("# {:>8} |", "n");
    for nc in node_counts {
        print!(" {:>8}", format!("{nc} node"));
    }
    println!();

    let mut csv = CsvOut::create(
        "fig4_summit_scaling",
        &["n", "nodes1", "nodes2", "nodes4", "nodes8", "nodes16", "nodes32"],
    )
    .ok();
    for n in perf_sweep() {
        print!("  {n:>8} |");
        let mut row = vec![format!("{n}")];
        for nodes in node_counts {
            let r = estimate_qdwh_time(
                &summit,
                nodes,
                Implementation::SlateGpu,
                n,
                320,
                it_qr,
                it_chol,
            );
            print!(" {:>8.1}", r.tflops);
            row.push(format!("{}", r.tflops));
        }
        println!();
        if let Some(c) = csv.as_mut() {
            c.row(&row);
        }
    }

    // strong-scaling summary at a fixed mid-size problem
    let n_fixed = 100_000;
    let t1 = estimate_qdwh_time(&summit, 1, Implementation::SlateGpu, n_fixed, 320, it_qr, it_chol)
        .seconds;
    println!("\n# strong scaling at n = {n_fixed} (speedup vs 1 node; ideal = nodes):");
    for nodes in node_counts {
        let t = estimate_qdwh_time(
            &summit,
            nodes,
            Implementation::SlateGpu,
            n_fixed,
            320,
            it_qr,
            it_chol,
        )
        .seconds;
        println!(
            "#   {nodes:>2} nodes: {:>5.2}x (efficiency {:>5.1}%)",
            t1 / t,
            100.0 * t1 / t / nodes as f64
        );
    }
    println!("# paper: strong scalability limited; good weak scalability at the largest sizes.");
}
