//! FIG1A + FIG1B: accuracy of QDWH vs matrix size (paper Fig. 1).
//!
//! * Fig. 1a: orthogonality error `||I - Up^H Up||_F / sqrt(n)`;
//! * Fig. 1b: backward error `||A - Up H||_F / ||A||_F`;
//!
//! two series each: the task-based implementation with the tight
//! sigma_min seed ("SLATE" analog) and the literal pseudocode seed with
//! one-rank-per-core semantics ("ScaLAPACK"/POLAR analog). Both must sit
//! at machine-precision level (~1e-15) across sizes — the paper's
//! numerical-stability claim.
//!
//! ```sh
//! cargo run --release -p polar-bench --bin fig1_accuracy [-- --max-n 1024]
//! ```

use polar_bench::{accuracy_sweep, csv_row, paper_matrix_spec, Args, CsvOut};
use polar_gen::generate;
use polar_qdwh::{orthogonality_error, qdwh, L0Strategy, QdwhOptions};

fn main() {
    let args = Args::parse();
    let max_n = args.get("--max-n", 768usize);

    println!("# Fig. 1 reproduction: QDWH accuracy vs matrix size (kappa = 1e16)");
    println!(
        "# {:>6} | {:>12} {:>12} | {:>12} {:>12} | {:>5} {:>5}",
        "n", "orth(SLATE)", "orth(SCA)", "bwd(SLATE)", "bwd(SCA)", "it_S", "it_P"
    );

    let slate_opts = QdwhOptions::default();
    let polar_opts = QdwhOptions { l0_strategy: L0Strategy::PaperFormula, ..Default::default() };

    let mut csv = CsvOut::create(
        "fig1_accuracy",
        &["n", "orth_slate", "orth_scalapack", "bwd_slate", "bwd_scalapack"],
    )
    .ok();
    for n in accuracy_sweep(max_n) {
        let (a, _) = generate::<f64>(&paper_matrix_spec(n, 1000 + n as u64));

        let slate = qdwh(&a, &slate_opts).expect("slate-analog qdwh");
        let polar = qdwh(&a, &polar_opts).expect("polar-analog qdwh");

        let row = (
            orthogonality_error(&slate.u),
            orthogonality_error(&polar.u),
            slate.backward_error(&a),
            polar.backward_error(&a),
        );
        println!(
            "  {:>6} | {:>12.3e} {:>12.3e} | {:>12.3e} {:>12.3e} | {:>5} {:>5}",
            n, row.0, row.1, row.2, row.3, slate.info.iterations, polar.info.iterations
        );
        if let Some(c) = csv.as_mut() {
            csv_row!(c, n, row.0, row.1, row.2, row.3);
        }
        assert!(
            row.0 < 1e-12 && row.1 < 1e-12 && row.2 < 1e-12 && row.3 < 1e-12,
            "accuracy regression at n = {n}"
        );
    }
    if let Some(c) = &csv {
        println!("# series written to {}", c.path.display());
    }
    println!("# paper: both implementations remain ~1e-15 across sizes — reproduced.");
}
