use polar_sim::machine::NodeSpec;
use polar_sim::*;
fn main() {
    let s = NodeSpec::summit();
    for nodes in [1usize, 4, 8, 16, 32] {
        let n = 65_000 * (nodes as f64).sqrt() as usize + 65_000;
        for n in [40_000usize, 80_000, 130_000, 200_000, 260_000] {
            let g = estimate_qdwh_time(&s, nodes, Implementation::SlateGpu, n, 320, 3, 3);
            let c = estimate_qdwh_time(&s, nodes, Implementation::SlateCpu, n, 192, 3, 3);
            let sc = estimate_qdwh_time(&s, nodes, Implementation::ScaLapack, n, 192, 3, 3);
            println!("summit nodes={nodes:2} n={n:6}: gpu={:8.2} cpu={:6.3} scal={:6.3} speedup={:5.1} [gpu breakdown: comp={:.0}s panel={:.0}s net={:.0}s stage={:.0}s total={:.0}s]",
                g.tflops, c.tflops, sc.tflops, g.tflops/sc.tflops, g.compute_seconds, g.panel_seconds, g.network_seconds, g.staging_seconds, g.seconds);
        }
        let _ = n;
    }
    let f = NodeSpec::frontier();
    for nodes in [1usize, 2, 4, 8, 16] {
        for n in [50_000usize, 100_000, 175_000] {
            let g = estimate_qdwh_time(&f, nodes, Implementation::SlateGpu, n, 320, 3, 3);
            println!("frontier nodes={nodes:2} n={n:6}: gpu={:8.2} TF (comp={:.0} panel={:.0} net={:.0} stage={:.0} tot={:.0})",
                g.tflops, g.compute_seconds, g.panel_seconds, g.network_seconds, g.staging_seconds, g.seconds);
        }
    }
}
