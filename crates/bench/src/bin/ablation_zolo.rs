//! ABL-ZOLO: Zolo-PD vs QDWH (paper §8 future work, implemented here).
//!
//! Two parts:
//! 1. *numeric* — real runs comparing iteration counts, QR factorization
//!    counts, and accuracy: Zolo-PD converges in 2 iterations at
//!    κ = 1e16 where QDWH takes 6, at the price of 8 QRs per iteration;
//! 2. *modeled* — the strong-scaling crossover: at a fixed problem size,
//!    QDWH (fewer flops) wins on few nodes, Zolo-PD (shorter critical
//!    path, r independent QR chains) wins once the node count grows.
//!
//! ```sh
//! cargo run --release -p polar-bench --bin ablation_zolo
//! ```

use polar_gen::{generate, MatrixSpec};
use polar_qdwh::{orthogonality_error, qdwh, zolo_pd, QdwhOptions, ZoloOptions};
use polar_sim::machine::NodeSpec;
use polar_sim::{estimate_qdwh_time, estimate_zolo_time, Implementation};

fn main() {
    // --- numeric comparison ---
    println!("# ABL-ZOLO part 1: numeric comparison at kappa = 1e16 (n = 96)");
    let (a, _) = generate::<f64>(&MatrixSpec::ill_conditioned(96, 8));
    let q = qdwh(&a, &QdwhOptions::default()).unwrap();
    let z = zolo_pd(&a, &ZoloOptions::default()).unwrap();
    println!(
        "#   {:<8} {:>10} {:>8} {:>12} {:>12} {:>12}",
        "method", "iterations", "QRs", "orth err", "bwd err", "flops"
    );
    println!(
        "    {:<8} {:>10} {:>8} {:>12.2e} {:>12.2e} {:>12.3e}",
        "qdwh",
        q.info.iterations,
        q.info.qr_iterations,
        orthogonality_error(&q.u),
        q.backward_error(&a),
        q.info.flops_estimate
    );
    println!(
        "    {:<8} {:>10} {:>8} {:>12.2e} {:>12.2e} {:>12.3e}",
        "zolo-pd",
        z.pd.info.iterations,
        z.qr_factorizations,
        orthogonality_error(&z.pd.u),
        z.pd.backward_error(&a),
        z.pd.info.flops_estimate
    );
    assert!(z.pd.info.iterations <= 2 && q.info.iterations >= 5);

    // --- modeled strong-scaling crossover ---
    println!("\n# ABL-ZOLO part 2: modeled strong scaling (Summit GPU, n = 60k, r = 8)");
    println!("#  {:>6} | {:>12} {:>12} | {:>8}", "nodes", "QDWH s", "Zolo s", "winner");
    let node = NodeSpec::summit();
    let n = 60_000;
    let mut crossover: Option<usize> = None;
    for nodes in [1usize, 2, 4, 8, 16, 32, 64] {
        let tq = estimate_qdwh_time(&node, nodes, Implementation::SlateGpu, n, 320, 3, 3).seconds;
        let tz = estimate_zolo_time(&node, nodes, n, 320, 8).seconds;
        let winner = if tz < tq { "zolo" } else { "qdwh" };
        if tz < tq && crossover.is_none() {
            crossover = Some(nodes);
        }
        println!("   {nodes:>6} | {tq:>12.1} {tz:>12.1} | {winner:>8}");
    }
    match crossover {
        Some(c) => println!("# crossover at ~{c} nodes: Zolo-PD becomes attractive in the strong-scaling regime (§8)."),
        None => println!("# no crossover in range — widen the sweep."),
    }
}
