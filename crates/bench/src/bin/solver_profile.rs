//! Instrumented end-to-end solver profile: QDWH and Zolo-PD under full
//! observability, from the driver loop down to the thread-pool workers.
//!
//! Writes up to three artifacts:
//!
//! * a JSON profile (`--out`, default `PROFILE_solver.json`): wall time,
//!   per-kernel-class achieved GFlop/s, per-iteration records with the
//!   QR-vs-Cholesky kernel-time split, and pool counters;
//! * a Chrome trace (`--trace`, default `TRACE_solver.json`): open in
//!   Perfetto — one lane (`pid`) per pool worker, spans for
//!   gemm/herk/trsm/geqrf/potrf and the solver phases, plus
//!   `worker_occupancy` / `ready_queue_depth` counter tracks.
//!   `--trace-max-events N` bounds the complete-event count (head+tail
//!   kept, `"truncated": true` recorded);
//! * with `--analyze`, a scheduler post-mortem (`--analyze-out`, default
//!   `ANALYZE_solver.json`): per executed dag the measured critical path,
//!   per-worker utilization, queue-wait and ready-starvation histograms,
//!   top-slack bottlenecks, and a sim-vs-real row replaying the executed
//!   graph through the calibrated discrete-event scheduler.
//!   `--drift-gate PCT` fails the run when |makespan error| exceeds PCT.
//!
//! `--smoke` shrinks the problem, re-parses every artifact to prove it is
//! well-formed, and asserts the disabled-path overhead budget: one
//! inactive span guard must cost < 1% of a small gemm.

use polar_bench::Args;
use polar_gen::generate;
use polar_matrix::{Matrix, Op};
use polar_obs::{KernelClass, Report, SpanRecord};
use polar_qdwh::{qdwh, zolo_pd, IterationRecord, QdwhOptions, ZoloOptions};
use polar_runtime::TaskGraph;
use polar_scalar::Scalar;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

fn rand_mat(m: usize, n: usize, seed: u64) -> Matrix<f64> {
    let mut s = seed | 1;
    Matrix::from_fn(m, n, |_, _| {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    })
}

/// Kernel-time split of one iteration: QR-side (geqrf + orgqr) vs
/// Cholesky-side (potrf + trsm + herk) vs gemm, in seconds.
fn iteration_split(r: &IterationRecord<f64>) -> (f64, f64, f64) {
    let ns = |c: KernelClass| r.kernels.get(c).time_ns as f64 * 1e-9;
    let qr = ns(KernelClass::Geqrf) + ns(KernelClass::Orgqr);
    let chol = ns(KernelClass::Potrf) + ns(KernelClass::Trsm) + ns(KernelClass::Herk);
    (qr, chol, ns(KernelClass::Gemm))
}

fn records_json(records: &[IterationRecord<f64>]) -> String {
    let mut s = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        let (qr_s, chol_s, gemm_s) = iteration_split(r);
        let _ = write!(
            s,
            "      {{\"iteration\": {}, \"kind\": \"{:?}\", \"ell\": {:e}, \"convergence\": {:e}, \"seconds\": {:.6}, \"gflops\": {:.3}, \"qr_kernel_seconds\": {qr_s:.6}, \"chol_kernel_seconds\": {chol_s:.6}, \"gemm_kernel_seconds\": {gemm_s:.6}}}",
            r.iteration,
            r.kind,
            r.ell,
            r.convergence,
            r.seconds,
            r.achieved_gflops(),
        );
        s.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    s.push_str("    ]");
    s
}

fn phase_json(name: &str, report: &Report, records: &[IterationRecord<f64>]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "  \"{name}\": {{");
    let _ = writeln!(s, "    \"wall_seconds\": {:.6},", report.wall_ns as f64 * 1e-9);
    let _ = writeln!(s, "    \"achieved_gflops\": {:.3},", report.achieved_gflops());
    let _ = writeln!(s, "    \"spans\": {},", report.spans.len());
    let _ = writeln!(s, "    \"kernels\": {},", report.kernels.to_json());
    let _ = writeln!(s, "    \"iteration_records\": {}", records_json(records));
    s.push_str("  }");
    s
}

/// Disabled-path overhead: cost of one inert span guard vs one small gemm.
/// Returns (ns per guard, ns per gemm).
fn disabled_overhead() -> (f64, f64) {
    assert!(!polar_obs::metrics_enabled() && !polar_obs::trace_enabled());
    const GUARDS: u32 = 1_000_000;
    let t = Instant::now();
    for i in 0..GUARDS {
        let g = polar_obs::kernel_span(
            KernelClass::Gemm,
            "overhead_probe",
            2.0 * 64.0 * 64.0 * 64.0,
            [64, 64, i as usize],
        );
        std::hint::black_box(&g);
    }
    let guard_ns = t.elapsed().as_secs_f64() * 1e9 / GUARDS as f64;

    let a = rand_mat(64, 64, 21);
    let b = rand_mat(64, 64, 22);
    let mut c = Matrix::<f64>::zeros(64, 64);
    let mut best = f64::INFINITY;
    for _ in 0..20 {
        let t = Instant::now();
        polar_blas::gemm(Op::NoTrans, Op::NoTrans, 1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
        best = best.min(t.elapsed().as_secs_f64());
    }
    (guard_ns, best * 1e9)
}

/// All `pool.*` counters as a JSON object body (key order fixed by the
/// registry's sorted snapshot; the `pool.` prefix is stripped).
fn pool_json() -> String {
    let mut rows: Vec<(String, u64)> = polar_obs::counters_snapshot()
        .into_iter()
        .filter(|(k, _)| k.starts_with("pool."))
        .map(|(k, v)| (k["pool.".len()..].to_string(), v))
        .collect();
    rows.sort();
    let body: Vec<String> = rows.iter().map(|(k, v)| format!("\"{k}\": {v}")).collect();
    format!("{{{}}}", body.join(", "))
}

/// Scheduler post-mortem over the drained spans + executed graphs: writes
/// `ANALYZE_solver.json` and enforces the structural invariants (worker
/// utilization <= 1, makespan >= measured critical path) plus the
/// optional sim-vs-real drift gate.
fn write_analysis(
    path: &str,
    n: usize,
    smoke: bool,
    spans: &[SpanRecord],
    graphs: &[(u32, Arc<TaskGraph>)],
    drift_gate_pct: f64,
) {
    let pm = polar_runtime::analyze(spans, graphs);
    assert!(
        !pm.dags.is_empty(),
        "--analyze saw no executed task dags; the fused tiled path needs n >= 512 \
         (or POLAR_TILED=1), got n={n}"
    );

    for d in &pm.dags {
        assert!(
            d.makespan_ns >= d.critical_path_ns,
            "dag {}: makespan {} ns < measured critical path {} ns",
            d.dag,
            d.makespan_ns,
            d.critical_path_ns
        );
        assert!(
            d.parallel_efficiency <= 1.0 + 1e-9,
            "dag {}: parallel efficiency {} > 1",
            d.dag,
            d.parallel_efficiency
        );
        for w in &d.workers {
            assert!(
                w.utilization <= 1.0 + 1e-9,
                "lane {} utilization {} > 1",
                w.lane,
                w.utilization
            );
        }
    }

    // Sim-vs-real on the largest dag (the fused QDWH solve).
    let big = pm.dags.iter().max_by_key(|d| d.spans).expect("non-empty");
    let graph = graphs
        .iter()
        .find(|(id, _)| *id == big.dag)
        .map(|(_, g)| g)
        .expect("analyzed dag has its recorded graph");
    let cmp = polar_sim::sim_vs_real(graph, big);

    let mut j = String::from("{\n");
    let _ = writeln!(j, "  \"harness\": \"solver_profile_analyze\",");
    let _ = writeln!(j, "  \"smoke\": {smoke},");
    let _ = writeln!(j, "  \"n\": {n},");
    j.push_str(&polar_bench::Provenance::collect().json_fields());
    let _ = writeln!(j, "  \"dags\": {},", pm.to_json());
    let _ = writeln!(j, "  \"pool\": {},", pool_json());
    let _ = writeln!(j, "  \"sim_vs_real\": {}", cmp.to_json());
    j.push_str("}\n");
    std::fs::write(path, &j).expect("write analyze json");

    for d in &pm.dags {
        eprintln!(
            "dag {}: {} tasks, makespan {:.3} ms, CP {:.3} ms over {} tasks (stretch {:.2}), \
             {} lanes, efficiency {:.1}%, queue-wait p95 {:?}, {} migrated",
            d.dag,
            d.spans,
            d.makespan_ns as f64 * 1e-6,
            d.critical_path_ns as f64 * 1e-6,
            d.critical_path_tasks,
            d.cp_stretch(),
            d.workers.len(),
            d.parallel_efficiency * 100.0,
            d.queue_wait.hist.p95,
            d.migrated_tasks,
        );
    }
    eprintln!(
        "sim-vs-real (dag {}): predicted {:.3} ms vs measured {:.3} ms ({:+.2}%)",
        big.dag,
        cmp.predicted.makespan * 1e3,
        cmp.measured_makespan_s * 1e3,
        cmp.makespan_error_pct
    );
    if drift_gate_pct > 0.0 {
        assert!(
            cmp.makespan_error_pct.abs() <= drift_gate_pct,
            "sim-vs-real drift gate: |{:.2}%| > {:.2}%",
            cmp.makespan_error_pct,
            drift_gate_pct
        );
    }
}

/// The `--zolo-cp-gate` branch-concurrency check: analyze only the dags
/// the zolo phase executed and assert the measured critical path of the
/// fused solve sits strictly below the serial sum of its QR-class task
/// durations. With r >= 2 independent stacked-QR branches per iteration
/// that inequality holds structurally (the CP can traverse only one
/// branch per iteration), so the gate proves the analyzer saw at least
/// two concurrently-runnable QR branches — even on a single-core runner,
/// because the measured CP is computed from the dependency graph, not
/// the schedule.
fn zolo_cp_gate(spans: &[SpanRecord], zolo_graphs: &[(u32, Arc<TaskGraph>)], r: usize) {
    let pm = polar_runtime::analyze(spans, zolo_graphs);
    let d = pm.dags.iter().max_by_key(|d| d.spans).unwrap_or_else(|| {
        panic!(
            "--zolo-cp-gate saw no fused zolo dag; the tiled path needs n >= 512 or POLAR_TILED=1"
        )
    });
    let qr_busy: u64 = d
        .classes
        .iter()
        .filter(|c| matches!(c.name, "task_geqrt" | "task_tsqrt" | "task_unmqr" | "task_tsmqr"))
        .map(|c| c.busy_ns)
        .sum();
    assert!(qr_busy > 0, "zolo dag {} recorded no QR-class tasks", d.dag);
    assert!(
        d.critical_path_ns < qr_busy,
        "zolo cp gate: measured critical path {} ns >= serial sum of QR task durations {} ns \
         at r={r} — the r branches did not run as independent dag work",
        d.critical_path_ns,
        qr_busy
    );
    eprintln!(
        "zolo cp gate: r={r}, CP {:.3} ms < serial QR sum {:.3} ms ({:.2}x concurrency headroom), pass",
        d.critical_path_ns as f64 * 1e-6,
        qr_busy as f64 * 1e-6,
        qr_busy as f64 / d.critical_path_ns.max(1) as f64
    );
}

/// Smoke validation: every artifact re-parses, the trace is non-empty with
/// the expected event fields and kernel spans, and worker lanes appear.
fn validate_artifacts(
    profile_path: &str,
    trace_path: &str,
    analyze_path: Option<&str>,
    spans: &[SpanRecord],
) {
    use serde::json::{from_str, Value};

    let profile = from_str(&std::fs::read_to_string(profile_path).expect("read profile"))
        .expect("profile JSON is well-formed");
    for phase in ["qdwh", "zolo"] {
        let p = profile.get(phase).unwrap_or_else(|| panic!("profile has {phase}"));
        assert!(p.get("wall_seconds").and_then(Value::as_f64).expect("wall_seconds") > 0.0);
        let recs = p.get("iteration_records").and_then(|v| v.as_array()).expect("records");
        assert!(!recs.is_empty(), "{phase}: no iteration records");
        // per-iteration kernel attribution: on the fused whole-solve path
        // the task graph executes as one unit, so kernel flops accrue to
        // the record that drained them — some iterations read 0 GFlop/s
        let mut any_gflops = false;
        for r in recs {
            let g = r.get("gflops").and_then(Value::as_f64).expect("gflops");
            assert!(g >= 0.0);
            any_gflops |= g > 0.0;
        }
        assert!(any_gflops, "{phase}: no iteration recorded kernel flops");
    }

    let trace = from_str(&std::fs::read_to_string(trace_path).expect("read trace"))
        .expect("trace JSON is well-formed");
    let truncated = trace.get("truncated").and_then(Value::as_bool).expect("trace has 'truncated'");
    let total =
        trace.get("totalTaskEvents").and_then(Value::as_f64).expect("totalTaskEvents") as usize;
    assert_eq!(total, spans.len());
    let events = trace.get("traceEvents").and_then(|v| v.as_array()).expect("traceEvents array");
    assert!(!events.is_empty(), "trace has no events");
    let mut names = std::collections::BTreeSet::new();
    let mut lanes = std::collections::BTreeSet::new();
    let mut complete = 0usize;
    let mut counters = 0usize;
    let mut last_ts = f64::NEG_INFINITY;
    for e in events {
        let ts = e.get("ts").and_then(Value::as_f64).expect("ts");
        assert!(ts >= last_ts, "trace events out of timestamp order");
        last_ts = ts;
        match e.get("ph").and_then(Value::as_str).expect("ph") {
            "X" => {
                complete += 1;
                assert!(e.get("dur").and_then(Value::as_f64).expect("dur") >= 0.0);
                names.insert(e.get("name").and_then(Value::as_str).expect("name").to_string());
                lanes.insert(e.get("pid").and_then(Value::as_f64).expect("pid") as u64);
            }
            "C" => {
                counters += 1;
                let args = e.get("args").expect("counter args");
                assert!(args.get("value").and_then(Value::as_f64).is_some());
            }
            other => panic!("unexpected trace phase {other:?}"),
        }
    }
    if truncated {
        assert!(complete < spans.len(), "truncated trace kept every event");
    } else {
        assert_eq!(complete, spans.len());
    }
    assert!(counters > 0, "trace lacks counter-track samples");
    for expected in ["qdwh", "gemm", "geqrf", "potrf", "trsm", "herk"] {
        assert!(names.contains(expected), "trace lacks '{expected}' spans: {names:?}");
    }
    // flat path runs per-iteration phases; the fused path one whole-solve
    // task graph
    assert!(
        names.contains("qdwh_iter") || names.contains("qdwh_fused"),
        "trace lacks qdwh iteration/fused spans: {names:?}"
    );
    assert!(
        names.contains("zolo_iter") || names.contains("zolo_fused"),
        "trace lacks zolo iteration/fused spans: {names:?}"
    );
    if rayon::current_num_threads() > 1 {
        assert!(lanes.iter().any(|&l| l > 0), "no spans on pool-worker lanes");
    }

    if let Some(path) = analyze_path {
        let analysis = from_str(&std::fs::read_to_string(path).expect("read analysis"))
            .expect("analysis JSON is well-formed");
        let dags = analysis.get("dags").and_then(|v| v.as_array()).expect("dags array");
        assert!(!dags.is_empty(), "analysis has no dags");
        for d in dags {
            let makespan = d.get("makespan_ns").and_then(Value::as_f64).expect("makespan_ns");
            let cp = d.get("critical_path_ns").and_then(Value::as_f64).expect("critical_path_ns");
            assert!(makespan >= cp);
            for w in d.get("workers").and_then(|v| v.as_array()).expect("workers") {
                let u = w.get("utilization").and_then(Value::as_f64).expect("utilization");
                assert!(u <= 1.0 + 1e-9);
            }
            assert!(d.get("queue_wait").is_some() && d.get("park").is_some());
        }
        let svr = analysis.get("sim_vs_real").expect("sim_vs_real row");
        assert!(svr.get("makespan_error_pct").and_then(Value::as_f64).is_some());
        assert!(svr.get("predicted_makespan_s").and_then(Value::as_f64).is_some());
    }
    eprintln!(
        "smoke: artifacts validated ({complete} complete + {counters} counter events, {} lanes{})",
        lanes.len(),
        if analyze_path.is_some() { ", analysis ok" } else { "" }
    );
}

fn main() {
    let args = Args::parse();
    let smoke = args.flag("--smoke");
    let analyze = args.flag("--analyze");
    // the post-mortem needs the fused tiled DAG, which engages at n >= 512
    let n: usize = args.get(
        "--n",
        if smoke && analyze {
            512
        } else if smoke {
            192
        } else {
            768
        },
    );
    let seed: u64 = args.get("--seed", 42);
    let zolo_r: usize = args.get("--zolo-r", 8);
    let cp_gate = args.flag("--zolo-cp-gate");
    let trace_max: usize = args.get("--trace-max-events", 0);
    let trace_cap = if trace_max == 0 { usize::MAX } else { trace_max };
    let drift_gate: f64 = args.get("--drift-gate", 0.0);
    let out = std::env::args()
        .skip_while(|a| a != "--out")
        .nth(1)
        .unwrap_or_else(|| "PROFILE_solver.json".into());
    let trace_out = std::env::args()
        .skip_while(|a| a != "--trace")
        .nth(1)
        .unwrap_or_else(|| "TRACE_solver.json".into());
    let analyze_out = std::env::args()
        .skip_while(|a| a != "--analyze-out")
        .nth(1)
        .unwrap_or_else(|| "ANALYZE_solver.json".into());

    // Measure the disabled path before anything enables observability.
    let (guard_ns, gemm_ns) = disabled_overhead();
    eprintln!(
        "disabled-path: {guard_ns:.1} ns/guard vs {:.1} us per 64x64x64 gemm ({:.3}%)",
        gemm_ns / 1e3,
        100.0 * guard_ns / gemm_ns
    );
    if smoke {
        assert!(
            guard_ns < gemm_ns / 100.0,
            "disabled span guard ({guard_ns:.1} ns) exceeds 1% of a small gemm ({gemm_ns:.1} ns)"
        );
    }

    let (a, _) = generate::<f64>(&polar_bench::paper_matrix_spec(n, seed));
    rayon::join(|| (), || ()); // warm the pool so worker lanes exist up front

    eprintln!("qdwh n={n} (instrumented)...");
    let scope = polar_obs::scope();
    let pd = qdwh(&a, &QdwhOptions::default()).expect("qdwh converges");
    let qdwh_report = scope.finish();
    // drain the qdwh dags now so the next drain isolates the zolo ones
    let mut graphs = polar_runtime::take_executed_graphs();

    eprintln!("zolo n={n} r={zolo_r} (instrumented)...");
    let zopts = ZoloOptions {
        r: zolo_r,
        // small r converges slowly on the kappa = 1e16 spec
        max_iterations: 20,
        ..Default::default()
    };
    let scope = polar_obs::scope();
    let zolo = zolo_pd(&a, &zopts).expect("zolo converges");
    let zolo_report = scope.finish();
    let zolo_graphs = polar_runtime::take_executed_graphs();
    graphs.extend(zolo_graphs.iter().cloned());

    // ---- profile JSON ----
    let mut j = String::from("{\n");
    let _ = writeln!(j, "  \"harness\": \"solver_profile\",");
    let _ = writeln!(j, "  \"smoke\": {smoke},");
    let _ = writeln!(j, "  \"n\": {n},");
    let _ = writeln!(j, "  \"type\": \"{}\",", f64::TYPE_TAG);
    j.push_str(&polar_bench::Provenance::collect().json_fields());
    let _ = writeln!(j, "{},", phase_json("qdwh", &qdwh_report, &pd.info.records));
    let _ = writeln!(j, "{},", phase_json("zolo", &zolo_report, &zolo.pd.info.records));
    let _ = writeln!(j, "  \"pool\": {}", pool_json());
    j.push_str("}\n");
    std::fs::write(&out, &j).expect("write profile json");

    // ---- Chrome trace: both phases share the process epoch, so their
    // spans concatenate into one aligned timeline ----
    let mut spans = qdwh_report.spans.clone();
    spans.extend(zolo_report.spans.iter().cloned());
    let file = std::fs::File::create(&trace_out).expect("create trace file");
    polar_runtime::write_solver_trace_capped(&spans, std::io::BufWriter::new(file), trace_cap)
        .expect("write chrome trace");

    // ---- scheduler post-mortem over the executed dags ----
    if analyze {
        write_analysis(&analyze_out, n, smoke, &spans, &graphs, drift_gate);
    }
    if cp_gate {
        zolo_cp_gate(&spans, &zolo_graphs, zolo_r);
    }

    println!("{j}");
    eprintln!(
        "qdwh: {} iters, {:.2} GFlop/s | zolo: {} iters, {:.2} GFlop/s | trace: {} spans -> {trace_out}",
        pd.info.iterations,
        qdwh_report.achieved_gflops(),
        zolo.pd.info.iterations,
        zolo_report.achieved_gflops(),
        spans.len()
    );

    if smoke {
        validate_artifacts(&out, &trace_out, analyze.then_some(analyze_out.as_str()), &spans);
    }
}
