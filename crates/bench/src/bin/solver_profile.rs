//! Instrumented end-to-end solver profile: QDWH and Zolo-PD under full
//! observability, from the driver loop down to the thread-pool workers.
//!
//! Writes two artifacts:
//!
//! * a JSON profile (`--out`, default `PROFILE_solver.json`): wall time,
//!   per-kernel-class achieved GFlop/s, per-iteration records with the
//!   QR-vs-Cholesky kernel-time split, and pool steal/injection counters;
//! * a Chrome trace (`--trace`, default `TRACE_solver.json`): open in
//!   Perfetto — one lane (`pid`) per pool worker, spans for
//!   gemm/herk/trsm/geqrf/potrf and the solver phases.
//!
//! `--smoke` shrinks the problem, re-parses both artifacts to prove they
//! are well-formed, and asserts the disabled-path overhead budget: one
//! inactive span guard must cost < 1% of a small gemm.

use polar_bench::Args;
use polar_gen::generate;
use polar_matrix::{Matrix, Op};
use polar_obs::{KernelClass, Report, SpanRecord};
use polar_qdwh::{qdwh, zolo_pd, IterationRecord, QdwhOptions, ZoloOptions};
use polar_scalar::Scalar;
use std::fmt::Write as _;
use std::time::Instant;

fn rand_mat(m: usize, n: usize, seed: u64) -> Matrix<f64> {
    let mut s = seed | 1;
    Matrix::from_fn(m, n, |_, _| {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    })
}

/// Kernel-time split of one iteration: QR-side (geqrf + orgqr) vs
/// Cholesky-side (potrf + trsm + herk) vs gemm, in seconds.
fn iteration_split(r: &IterationRecord<f64>) -> (f64, f64, f64) {
    let ns = |c: KernelClass| r.kernels.get(c).time_ns as f64 * 1e-9;
    let qr = ns(KernelClass::Geqrf) + ns(KernelClass::Orgqr);
    let chol = ns(KernelClass::Potrf) + ns(KernelClass::Trsm) + ns(KernelClass::Herk);
    (qr, chol, ns(KernelClass::Gemm))
}

fn records_json(records: &[IterationRecord<f64>]) -> String {
    let mut s = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        let (qr_s, chol_s, gemm_s) = iteration_split(r);
        let _ = write!(
            s,
            "      {{\"iteration\": {}, \"kind\": \"{:?}\", \"ell\": {:e}, \"convergence\": {:e}, \"seconds\": {:.6}, \"gflops\": {:.3}, \"qr_kernel_seconds\": {qr_s:.6}, \"chol_kernel_seconds\": {chol_s:.6}, \"gemm_kernel_seconds\": {gemm_s:.6}}}",
            r.iteration,
            r.kind,
            r.ell,
            r.convergence,
            r.seconds,
            r.achieved_gflops(),
        );
        s.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    s.push_str("    ]");
    s
}

fn phase_json(name: &str, report: &Report, records: &[IterationRecord<f64>]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "  \"{name}\": {{");
    let _ = writeln!(s, "    \"wall_seconds\": {:.6},", report.wall_ns as f64 * 1e-9);
    let _ = writeln!(s, "    \"achieved_gflops\": {:.3},", report.achieved_gflops());
    let _ = writeln!(s, "    \"spans\": {},", report.spans.len());
    let _ = writeln!(s, "    \"kernels\": {},", report.kernels.to_json());
    let _ = writeln!(s, "    \"iteration_records\": {}", records_json(records));
    s.push_str("  }");
    s
}

/// Disabled-path overhead: cost of one inert span guard vs one small gemm.
/// Returns (ns per guard, ns per gemm).
fn disabled_overhead() -> (f64, f64) {
    assert!(!polar_obs::metrics_enabled() && !polar_obs::trace_enabled());
    const GUARDS: u32 = 1_000_000;
    let t = Instant::now();
    for i in 0..GUARDS {
        let g = polar_obs::kernel_span(
            KernelClass::Gemm,
            "overhead_probe",
            2.0 * 64.0 * 64.0 * 64.0,
            [64, 64, i as usize],
        );
        std::hint::black_box(&g);
    }
    let guard_ns = t.elapsed().as_secs_f64() * 1e9 / GUARDS as f64;

    let a = rand_mat(64, 64, 21);
    let b = rand_mat(64, 64, 22);
    let mut c = Matrix::<f64>::zeros(64, 64);
    let mut best = f64::INFINITY;
    for _ in 0..20 {
        let t = Instant::now();
        polar_blas::gemm(Op::NoTrans, Op::NoTrans, 1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
        best = best.min(t.elapsed().as_secs_f64());
    }
    (guard_ns, best * 1e9)
}

/// Smoke validation: both artifacts re-parse, the trace is non-empty with
/// the expected event fields and kernel spans, and worker lanes appear.
fn validate_artifacts(profile_path: &str, trace_path: &str, spans: &[SpanRecord]) {
    use serde::json::{from_str, Value};

    let profile = from_str(&std::fs::read_to_string(profile_path).expect("read profile"))
        .expect("profile JSON is well-formed");
    for phase in ["qdwh", "zolo"] {
        let p = profile.get(phase).unwrap_or_else(|| panic!("profile has {phase}"));
        assert!(p.get("wall_seconds").and_then(Value::as_f64).expect("wall_seconds") > 0.0);
        let recs = p.get("iteration_records").and_then(|v| v.as_array()).expect("records");
        assert!(!recs.is_empty(), "{phase}: no iteration records");
        for r in recs {
            assert!(r.get("gflops").and_then(Value::as_f64).expect("gflops") > 0.0);
        }
    }

    let trace = from_str(&std::fs::read_to_string(trace_path).expect("read trace"))
        .expect("trace JSON is well-formed");
    let events = trace.as_array().expect("trace is an array");
    assert!(!events.is_empty(), "trace has no events");
    assert_eq!(events.len(), spans.len());
    let mut names = std::collections::BTreeSet::new();
    let mut lanes = std::collections::BTreeSet::new();
    for e in events {
        assert_eq!(e.get("ph").and_then(Value::as_str), Some("X"));
        assert!(e.get("ts").and_then(Value::as_f64).is_some());
        assert!(e.get("dur").and_then(Value::as_f64).expect("dur") >= 0.0);
        names.insert(e.get("name").and_then(Value::as_str).expect("name").to_string());
        lanes.insert(e.get("pid").and_then(Value::as_f64).expect("pid") as u64);
    }
    for expected in ["qdwh", "qdwh_iter", "gemm", "geqrf", "potrf", "trsm", "herk"] {
        assert!(names.contains(expected), "trace lacks '{expected}' spans: {names:?}");
    }
    if rayon::current_num_threads() > 1 {
        assert!(lanes.iter().any(|&l| l > 0), "no spans on pool-worker lanes");
    }
    eprintln!("smoke: artifacts validated ({} events, {} lanes)", events.len(), lanes.len());
}

fn main() {
    let args = Args::parse();
    let smoke = args.flag("--smoke");
    let n: usize = args.get("--n", if smoke { 192 } else { 768 });
    let seed: u64 = args.get("--seed", 42);
    let out = std::env::args()
        .skip_while(|a| a != "--out")
        .nth(1)
        .unwrap_or_else(|| "PROFILE_solver.json".into());
    let trace_out = std::env::args()
        .skip_while(|a| a != "--trace")
        .nth(1)
        .unwrap_or_else(|| "TRACE_solver.json".into());

    // Measure the disabled path before anything enables observability.
    let (guard_ns, gemm_ns) = disabled_overhead();
    eprintln!(
        "disabled-path: {guard_ns:.1} ns/guard vs {:.1} us per 64x64x64 gemm ({:.3}%)",
        gemm_ns / 1e3,
        100.0 * guard_ns / gemm_ns
    );
    if smoke {
        assert!(
            guard_ns < gemm_ns / 100.0,
            "disabled span guard ({guard_ns:.1} ns) exceeds 1% of a small gemm ({gemm_ns:.1} ns)"
        );
    }

    let (a, _) = generate::<f64>(&polar_bench::paper_matrix_spec(n, seed));
    rayon::join(|| (), || ()); // warm the pool so worker lanes exist up front

    eprintln!("qdwh n={n} (instrumented)...");
    let scope = polar_obs::scope();
    let pd = qdwh(&a, &QdwhOptions::default()).expect("qdwh converges");
    let qdwh_report = scope.finish();

    eprintln!("zolo n={n} (instrumented)...");
    let scope = polar_obs::scope();
    let zolo = zolo_pd(&a, &ZoloOptions::default()).expect("zolo converges");
    let zolo_report = scope.finish();

    // ---- profile JSON ----
    let mut j = String::from("{\n");
    let _ = writeln!(j, "  \"harness\": \"solver_profile\",");
    let _ = writeln!(j, "  \"smoke\": {smoke},");
    let _ = writeln!(j, "  \"n\": {n},");
    let _ = writeln!(j, "  \"type\": \"{}\",", f64::TYPE_TAG);
    j.push_str(&polar_bench::Provenance::collect().json_fields());
    let _ = writeln!(j, "{},", phase_json("qdwh", &qdwh_report, &pd.info.records));
    let _ = writeln!(j, "{},", phase_json("zolo", &zolo_report, &zolo.pd.info.records));
    let pool = polar_obs::counters_snapshot();
    let get = |name: &str| pool.iter().find(|(k, _)| *k == name).map_or(0, |(_, v)| *v);
    let _ = writeln!(
        j,
        "  \"pool\": {{\"steals\": {}, \"injected_jobs\": {}}}",
        get("pool.steals"),
        get("pool.injected_jobs")
    );
    j.push_str("}\n");
    std::fs::write(&out, &j).expect("write profile json");

    // ---- Chrome trace: both phases share the process epoch, so their
    // spans concatenate into one aligned timeline ----
    let mut spans = qdwh_report.spans.clone();
    spans.extend(zolo_report.spans.iter().cloned());
    let file = std::fs::File::create(&trace_out).expect("create trace file");
    polar_runtime::write_solver_trace(&spans, std::io::BufWriter::new(file))
        .expect("write chrome trace");

    println!("{j}");
    eprintln!(
        "qdwh: {} iters, {:.2} GFlop/s | zolo: {} iters, {:.2} GFlop/s | trace: {} spans -> {trace_out}",
        pd.info.iterations,
        qdwh_report.achieved_gflops(),
        zolo.pd.info.iterations,
        zolo_report.achieved_gflops(),
        spans.len()
    );

    if smoke {
        validate_artifacts(&out, &trace_out, &spans);
    }
}
