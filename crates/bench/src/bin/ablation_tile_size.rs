//! ABL-NB: tile-size tuning ablation (paper §7.2): nb = 320 delivered the
//! best GPU performance and nb = 192 the best CPU performance among the
//! tested tile sizes.
//!
//! Sweeps nb for both targets with the analytic model (paper-scale n) and
//! cross-checks the GPU ranking with the discrete-event simulator at a
//! reduced tile count.
//!
//! ```sh
//! cargo run --release -p polar-bench --bin ablation_tile_size
//! ```

use polar_runtime::{simulate, SchedulingMode};
use polar_sim::dag::{qdwh_graph, Grid, QdwhGraphSpec};
use polar_sim::machine::{ClusterModel, ExecTarget, NodeSpec};
use polar_sim::{estimate_qdwh_time, Implementation, ILL_CONDITIONED_PROFILE};

fn main() {
    let (it_qr, it_chol) = ILL_CONDITIONED_PROFILE;
    let summit = NodeSpec::summit();
    let n = 100_000usize;
    let sizes = [64usize, 128, 192, 256, 320, 448, 640];

    println!("# ABL-NB: tile-size ablation, analytic model, 1 Summit node, n = {n}");
    println!("# {:>5} | {:>12} | {:>12}", "nb", "GPU Tflop/s", "CPU Tflop/s");
    let mut best_gpu = (0usize, 0.0f64);
    let mut best_cpu = (0usize, 0.0f64);
    for &nb in &sizes {
        let gpu = estimate_qdwh_time(&summit, 1, Implementation::SlateGpu, n, nb, it_qr, it_chol);
        let cpu = estimate_qdwh_time(&summit, 1, Implementation::SlateCpu, n, nb, it_qr, it_chol);
        if gpu.tflops > best_gpu.1 {
            best_gpu = (nb, gpu.tflops);
        }
        if cpu.tflops > best_cpu.1 {
            best_cpu = (nb, cpu.tflops);
        }
        println!("  {:>5} | {:>12.2} | {:>12.3}", nb, gpu.tflops, cpu.tflops);
    }
    println!(
        "# best GPU tile: nb = {} (paper: 320); best CPU tile: nb = {} (paper: 192)",
        best_gpu.0, best_cpu.0
    );

    // DES cross-check: fixed matrix, varying tile size changes both task
    // granularity and count (kept small: the DAG grows as (n/nb)^3)
    println!("\n# DES cross-check (n = 6400, 1 Summit node, GPU target):");
    println!("# {:>5} | {:>10} | {:>8}", "nb", "makespan s", "tasks");
    for &nb in &[128usize, 320, 640] {
        let t = 6400 / nb;
        let g = qdwh_graph(&QdwhGraphSpec {
            t,
            nb,
            scalar_bytes: 8,
            grid: Grid::squarest(2),
            it_qr,
            it_chol,
        });
        let model = ClusterModel::slate(summit.clone(), 1, ExecTarget::GpuAccelerated, nb);
        let s = simulate(&g, &model, SchedulingMode::TaskBased);
        println!("  {:>5} | {:>10.3} | {:>8}", nb, s.makespan, s.tasks);
    }
    println!("# note: at this reduced n the DES optimum shifts to smaller tiles —");
    println!("# with few tiles per device, parallelism beats per-tile rate. The");
    println!("# paper's nb = 320 is the large-n (paper-scale) optimum, as the");
    println!("# analytic sweep above shows.");
}
