//! TAB-ITER: iteration counts vs condition number (paper §4 / §7.2
//! in-text): ill-conditioned (kappa = 1e16) needs the worst-case six
//! iterations — 3 QR + 3 Cholesky with the paper's l0 formula — while
//! well-conditioned inputs need ~2 Cholesky and no QR iterations.
//!
//! ```sh
//! cargo run --release -p polar-bench --bin iteration_table [-- --n 256]
//! ```

use polar_bench::Args;
use polar_gen::{generate, MatrixSpec, SigmaDistribution};
use polar_qdwh::{qdwh, L0Strategy, QdwhOptions};

fn main() {
    let args = Args::parse();
    let n = args.get("--n", 256usize);

    println!("# TAB-ITER reproduction: QDWH iteration profile vs condition number (n = {n})");
    println!(
        "# {:>9} | {:>22} | {:>22} | {:>6}",
        "kappa", "paper l0: it (qr/chol)", "tight l0: it (qr/chol)", "<=6?"
    );

    for &kappa in &[1.0f64, 10.0, 1e2, 1e4, 1e6, 1e8, 1e10, 1e13, 1e16] {
        let spec = MatrixSpec {
            m: n,
            n,
            cond: kappa,
            distribution: SigmaDistribution::Geometric,
            seed: 2023,
        };
        let (a, _) = generate::<f64>(&spec);

        let paper =
            qdwh(&a, &QdwhOptions { l0_strategy: L0Strategy::PaperFormula, ..Default::default() })
                .unwrap();
        let tight = qdwh(&a, &QdwhOptions::default()).unwrap();

        println!(
            "  {:>9.0e} | {:>10} ({}/{})       | {:>10} ({}/{})       | {:>6}",
            kappa,
            paper.info.iterations,
            paper.info.qr_iterations,
            paper.info.chol_iterations,
            tight.info.iterations,
            tight.info.qr_iterations,
            tight.info.chol_iterations,
            paper.info.iterations <= 6 && tight.info.iterations <= 6,
        );
    }

    println!("# paper: kappa=1e16 -> six iterations (3 QR + 3 Cholesky, matching the");
    println!("#        paper-formula seed); well-conditioned -> 2 Cholesky, 0 QR.");
}
