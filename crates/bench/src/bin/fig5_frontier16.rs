//! FIG5: 16 Frontier nodes (896 EPYC cores, 128 MI250X GCDs) — paper
//! Fig. 5: SLATE-GPU Tflop/s vs matrix size up to the memory-limited
//! n = 175k, hitting ~180 Tflop/s at the top end.
//!
//! ```sh
//! cargo run --release -p polar-bench --bin fig5_frontier16
//! ```

use polar_bench::{csv_row, CsvOut};
use polar_sim::machine::{ExecTarget, NodeSpec};
use polar_sim::{estimate_qdwh_time, Implementation, ILL_CONDITIONED_PROFILE};

fn main() {
    let (it_qr, it_chol) = ILL_CONDITIONED_PROFILE;
    let frontier = NodeSpec::frontier();
    let nodes = 16usize;

    println!(
        "# Fig. 5 reproduction: {nodes} Frontier nodes ({} EPYC cores, {} GCDs)",
        nodes * frontier.cpu_cores,
        nodes * frontier.gpus
    );
    println!("# {:>8} | {:>10} {:>12} | {:>12}", "n", "Tflop/s", "% dgemm agg", "CPU Tflop/s");

    // the paper caps at n = 175k: algorithm memory footprint on 128 GCDs
    let mut csv = CsvOut::create(
        "fig5_frontier16",
        &["n", "slate_gpu_tflops", "pct_dgemm_agg", "slate_cpu_tflops"],
    )
    .ok();
    let agg_dgemm = nodes as f64 * frontier.node_gflops(ExecTarget::GpuAccelerated) / 1e3;
    for n in [25_000usize, 50_000, 75_000, 100_000, 125_000, 150_000, 175_000] {
        let gpu =
            estimate_qdwh_time(&frontier, nodes, Implementation::SlateGpu, n, 320, it_qr, it_chol);
        let cpu =
            estimate_qdwh_time(&frontier, nodes, Implementation::SlateCpu, n, 192, it_qr, it_chol);
        println!(
            "  {:>8} | {:>10.1} {:>11.1}% | {:>12.2}",
            n,
            gpu.tflops,
            100.0 * gpu.tflops / agg_dgemm,
            cpu.tflops
        );
        if let Some(c) = csv.as_mut() {
            csv_row!(c, n, gpu.tflops, 100.0 * gpu.tflops / agg_dgemm, cpu.tflops);
        }
    }

    let top = estimate_qdwh_time(
        &frontier,
        nodes,
        Implementation::SlateGpu,
        175_000,
        320,
        it_qr,
        it_chol,
    );
    println!(
        "# at n = 175k: {:.0} Tflop/s (paper: ~180 Tflop/s, \"around 24% of peak\" by the paper's accounting)",
        top.tflops
    );
}
