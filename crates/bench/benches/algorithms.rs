//! Algorithm-level criterion benchmarks: the polar-decomposition method
//! family (QDWH / Zolo-PD / mixed precision / SVD-based) and the
//! spectrum applications, timed for real on this host.

use criterion::{criterion_group, criterion_main, Criterion};
use polar_gen::{generate, MatrixSpec, SigmaDistribution};
use polar_matrix::ProcessGrid;
use polar_qdwh::{
    qdwh, qdwh_distributed, qdwh_mixed, qdwh_partial_svd, qdwh_svd, svd_based_polar, zolo_pd,
    DistConfig, QdwhOptions, ZoloOptions,
};

fn ill(n: usize, seed: u64) -> polar_matrix::Matrix<f64> {
    generate::<f64>(&MatrixSpec::ill_conditioned(n, seed)).0
}

fn bench_pd_family(c: &mut Criterion) {
    let mut g = c.benchmark_group("pd_family_n96_kappa1e16");
    g.sample_size(10);
    let a = ill(96, 1);
    g.bench_function("qdwh", |b| b.iter(|| qdwh(&a, &QdwhOptions::default()).unwrap()));
    g.bench_function("qdwh_tsqr", |b| {
        let opts = QdwhOptions { use_tsqr: true, ..Default::default() };
        b.iter(|| qdwh(&a, &opts).unwrap())
    });
    g.bench_function("qdwh_unstructured_qr", |b| {
        // ablation: disable the [B; I] window optimization
        let opts = QdwhOptions { exploit_structure: false, ..Default::default() };
        b.iter(|| qdwh(&a, &opts).unwrap())
    });
    g.bench_function("zolo_pd_r8", |b| b.iter(|| zolo_pd(&a, &ZoloOptions::default()).unwrap()));
    g.bench_function("mixed_precision", |b| {
        // mixed path needs a moderate condition number for the f32 stage
        let spec = MatrixSpec {
            m: 96,
            n: 96,
            cond: 1e4,
            distribution: SigmaDistribution::Geometric,
            seed: 2,
        };
        let (a4, _) = generate::<f64>(&spec);
        b.iter(|| qdwh_mixed(&a4, &QdwhOptions::default()).unwrap())
    });
    g.bench_function("svd_based", |b| b.iter(|| svd_based_polar(&a).unwrap()));
    g.finish();
}

fn bench_spectrum_apps(c: &mut Criterion) {
    let mut g = c.benchmark_group("spectrum_apps");
    g.sample_size(10);
    let spec = MatrixSpec {
        m: 120,
        n: 80,
        cond: 1e6,
        distribution: SigmaDistribution::Geometric,
        seed: 3,
    };
    let (a, _) = generate::<f64>(&spec);
    g.bench_function("qdwh_svd_full", |b| {
        b.iter(|| qdwh_svd(&a, &QdwhOptions::default()).unwrap())
    });
    g.bench_function("qdwh_partial_svd_k8", |b| {
        b.iter(|| qdwh_partial_svd(&a, 8, &QdwhOptions::default()).unwrap())
    });
    g.finish();
}

fn bench_distributed_overhead(c: &mut Criterion) {
    // tiled execution vs dense driver on the same matrix: the cost of the
    // tile algorithms + metering on one host
    let mut g = c.benchmark_group("distributed_emulation_n64");
    g.sample_size(10);
    let spec =
        MatrixSpec { m: 64, n: 64, cond: 1e6, distribution: SigmaDistribution::Geometric, seed: 4 };
    let (a, _) = generate::<f64>(&spec);
    g.bench_function("dense_driver", |b| b.iter(|| qdwh(&a, &QdwhOptions::default()).unwrap()));
    g.bench_function("tiled_virtual_cluster_2x2", |b| {
        let cfg = DistConfig { grid: ProcessGrid::new(2, 2), nb: 16 };
        b.iter(|| qdwh_distributed(&a, &QdwhOptions::default(), &cfg).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_pd_family, bench_spectrum_apps, bench_distributed_overhead);
criterion_main!(benches);
