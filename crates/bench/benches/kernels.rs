//! PERF-KERNELS: criterion microbenchmarks of the real (this-host)
//! implementations: the BLAS/LAPACK substrate kernels and the QDWH driver
//! end to end. These are supporting measurements — the paper-scale figures
//! come from the simulator harnesses in `src/bin/`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use polar_blas::gemm;
use polar_gen::{generate, MatrixSpec, SigmaDistribution};
use polar_lapack::{geqrf, jacobi_svd, norm2est, potrf, tsqr};
use polar_matrix::{Matrix, Op, Uplo};
use polar_qdwh::{qdwh, svd_based_polar, QdwhOptions};

fn rand_mat(m: usize, n: usize, seed: u64) -> Matrix<f64> {
    let mut s = seed | 1;
    Matrix::from_fn(m, n, |_, _| {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    })
}

fn spd(n: usize, seed: u64) -> Matrix<f64> {
    let g = rand_mat(n, n, seed);
    let mut a = Matrix::identity(n, n);
    polar_blas::scale(n as f64, a.as_mut());
    gemm(Op::NoTrans, Op::Trans, 1.0, g.as_ref(), g.as_ref(), 1.0, a.as_mut());
    a
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    for n in [64usize, 128, 256] {
        let a = rand_mat(n, n, 1);
        let b = rand_mat(n, n, 2);
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            let mut out = Matrix::<f64>::zeros(n, n);
            bench.iter(|| {
                gemm(Op::NoTrans, Op::NoTrans, 1.0, a.as_ref(), b.as_ref(), 0.0, out.as_mut());
            });
        });
    }
    group.finish();
}

fn bench_geqrf(c: &mut Criterion) {
    let mut group = c.benchmark_group("geqrf");
    for n in [64usize, 128, 256] {
        let a = rand_mat(2 * n, n, 3); // the QDWH stacked shape
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                let mut w = a.clone();
                geqrf(&mut w)
            });
        });
    }
    group.finish();
}

fn bench_tsqr(c: &mut Criterion) {
    let mut group = c.benchmark_group("tsqr_vs_flat");
    let a = rand_mat(2048, 32, 4);
    group.bench_function("tsqr", |b| b.iter(|| tsqr(&a)));
    group.bench_function("flat_geqrf", |b| {
        b.iter(|| {
            let mut w = a.clone();
            geqrf(&mut w)
        })
    });
    group.finish();
}

fn bench_potrf(c: &mut Criterion) {
    let mut group = c.benchmark_group("potrf");
    for n in [64usize, 128, 256] {
        let a = spd(n, 5);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                let mut w = a.clone();
                potrf(Uplo::Lower, &mut w).unwrap();
            });
        });
    }
    group.finish();
}

fn bench_norm2est(c: &mut Criterion) {
    let a = rand_mat(512, 512, 6);
    c.bench_function("norm2est_512", |b| b.iter(|| norm2est(&a)));
}

fn bench_qdwh(c: &mut Criterion) {
    let mut group = c.benchmark_group("qdwh_end_to_end");
    group.sample_size(10);
    for (label, cond) in [("well_conditioned", 10.0), ("ill_conditioned", 1e16)] {
        let spec = MatrixSpec {
            m: 128,
            n: 128,
            cond,
            distribution: SigmaDistribution::Geometric,
            seed: 7,
        };
        let (a, _) = generate::<f64>(&spec);
        group.bench_function(label, |b| b.iter(|| qdwh(&a, &QdwhOptions::default()).unwrap()));
    }
    group.finish();
}

fn bench_pd_methods(c: &mut Criterion) {
    // QDWH vs SVD-based PD: the related-work comparison (§3) on real
    // hardware — QDWH's kernels are compute-bound, Jacobi's are not.
    let mut group = c.benchmark_group("polar_decomposition_methods");
    group.sample_size(10);
    let (a, _) = generate::<f64>(&MatrixSpec {
        m: 96,
        n: 96,
        cond: 1e8,
        distribution: SigmaDistribution::Geometric,
        seed: 8,
    });
    group.bench_function("qdwh", |b| b.iter(|| qdwh(&a, &QdwhOptions::default()).unwrap()));
    group.bench_function("svd_based", |b| b.iter(|| svd_based_polar(&a).unwrap()));
    group.bench_function("jacobi_svd_alone", |b| b.iter(|| jacobi_svd(&a).unwrap()));
    group.finish();
}

fn bench_analytic_model(c: &mut Criterion) {
    use polar_sim::machine::NodeSpec;
    use polar_sim::{estimate_qdwh_time, Implementation};
    let summit = NodeSpec::summit();
    c.bench_function("analytic_model_eval", |b| {
        b.iter(|| estimate_qdwh_time(&summit, 8, Implementation::SlateGpu, 130_000, 320, 3, 3))
    });
}

criterion_group!(
    benches,
    bench_gemm,
    bench_geqrf,
    bench_tsqr,
    bench_potrf,
    bench_norm2est,
    bench_qdwh,
    bench_pd_methods,
    bench_analytic_model
);
criterion_main!(benches);
