//! SVD-based polar decomposition — the classical baseline QDWH is compared
//! against in the paper's related work (§3):
//!
//! `A = U Σ V^H  =>  A = (U V^H)(V Σ V^H) = U_p H`.

use crate::qdwh_impl::{PolarDecomposition, QdwhError, QdwhInfo};
use polar_blas::{gemm, symmetrize};
use polar_lapack::jacobi_svd;
use polar_matrix::{Matrix, Op};
use polar_scalar::{Real, Scalar};

/// Polar decomposition through a full SVD (Jacobi). Same contract as
/// [`crate::qdwh`]; the `info` field reports zero iterations since there
/// is no Halley loop.
pub fn svd_based_polar<S: Scalar>(a: &Matrix<S>) -> Result<PolarDecomposition<S>, QdwhError> {
    let m = a.nrows();
    let n = a.ncols();
    if m < n {
        return Err(QdwhError::Shape("svd_based_polar requires m >= n"));
    }
    let svd = jacobi_svd(a)?;

    // U_p = U V^H
    let mut u_p = Matrix::<S>::zeros(m, n);
    gemm(Op::NoTrans, Op::ConjTrans, S::ONE, svd.u.as_ref(), svd.v.as_ref(), S::ZERO, u_p.as_mut());

    // H = V Sigma V^H
    let mut vs = svd.v.clone();
    for j in 0..n {
        let s = svd.sigma[j];
        for i in 0..n {
            vs[(i, j)] = vs[(i, j)].mul_real(s);
        }
    }
    let mut h = Matrix::<S>::zeros(n, n);
    gemm(Op::NoTrans, Op::ConjTrans, S::ONE, vs.as_ref(), svd.v.as_ref(), S::ZERO, h.as_mut());
    symmetrize(h.as_mut());

    Ok(PolarDecomposition {
        u: u_p,
        h,
        info: QdwhInfo {
            alpha: svd.sigma.first().copied().unwrap_or(S::Real::ZERO),
            l0: S::Real::ZERO,
            iterations: 0,
            qr_iterations: 0,
            chol_iterations: 0,
            kinds: Vec::new(),
            records: Vec::new(),
            flops_estimate: 0.0,
            tiled_decision: None,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qdwh_impl::{orthogonality_error, qdwh};
    use crate::QdwhOptions;
    use polar_blas::{add, norm};
    use polar_gen::{generate, MatrixSpec};
    use polar_matrix::Norm;

    #[test]
    fn svd_pd_satisfies_contract() {
        let (a, _) = generate::<f64>(&MatrixSpec::ill_conditioned(30, 1));
        let pd = svd_based_polar(&a).unwrap();
        assert!(orthogonality_error(&pd.u) < 1e-12);
        assert!(pd.backward_error(&a) < 1e-12);
    }

    #[test]
    fn svd_pd_agrees_with_qdwh() {
        // the polar decomposition is unique for full-rank A: both methods
        // must produce the same factors
        let (a, _) = generate::<f64>(&MatrixSpec::well_conditioned(25, 2));
        let via_svd = svd_based_polar(&a).unwrap();
        let via_qdwh = qdwh(&a, &QdwhOptions::default()).unwrap();
        let mut du = via_svd.u.clone();
        add(-1.0, via_qdwh.u.as_ref(), 1.0, du.as_mut());
        let diff_u: f64 = norm(Norm::Fro, du.as_ref());
        assert!(diff_u < 1e-11, "U factors differ by {diff_u}");
        let mut dh = via_svd.h.clone();
        add(-1.0, via_qdwh.h.as_ref(), 1.0, dh.as_mut());
        let diff_h: f64 = norm(Norm::Fro, dh.as_ref());
        assert!(diff_h < 1e-11, "H factors differ by {diff_h}");
    }

    #[test]
    fn svd_pd_complex() {
        use polar_scalar::Complex64;
        let (a, _) = generate::<Complex64>(&MatrixSpec::well_conditioned(16, 3));
        let pd = svd_based_polar(&a).unwrap();
        assert!(orthogonality_error(&pd.u) < 1e-12);
        assert!(pd.backward_error(&a) < 1e-12);
    }
}
