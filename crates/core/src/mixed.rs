//! Mixed-precision QDWH (paper §8 future work: "integrate mixed-precision
//! techniques to further accelerate the polar decomposition").
//!
//! Strategy: run the full QDWH iteration in the lower precision (where
//! every flop is ~2x cheaper and, on real accelerators, often 8–16x), then
//! restore *orthonormality* of the unitary factor to full precision with a
//! few Newton–Schulz steps `U <- U (3 I - U^H U) / 2`, which converge
//! quadratically for `sigma(U) ⊂ (0, sqrt(3))` — always satisfied by a
//! single-precision-accurate polar factor.
//!
//! **Accuracy contract.** Orthogonality of `U` reaches full (e.g. f64)
//! precision, which is what the orthogonalization applications (Procrustes,
//! strapdown-matrix correction, §1) need. The *backward error* of the full
//! decomposition `A ≈ U H` remains at the lower precision's level
//! (~1e-7 for f32): Newton–Schulz orthogonalizes `U` in place but cannot
//! move it toward the exact polar factor of `A` — that information was
//! rounded away in the low-precision stage. Recovering full backward
//! accuracy would require re-running the iteration against `A` in full
//! precision, defeating the purpose. This is the standard trade-off for
//! mixed-precision polar algorithms.

use crate::options::QdwhOptions;
use crate::qdwh_impl::{qdwh, PolarDecomposition, QdwhError, QdwhInfo};
use polar_blas::{gemm, norm, symmetrize};
use polar_matrix::{Matrix, Norm, Op};
use polar_scalar::{Complex32, Complex64, Real, Scalar};

/// High-precision scalar with a designated lower-precision companion.
pub trait MixedPrecision: Scalar {
    type Lo: Scalar;
    fn to_lo(self) -> Self::Lo;
    fn from_lo(lo: Self::Lo) -> Self;
}

impl MixedPrecision for f64 {
    type Lo = f32;
    fn to_lo(self) -> f32 {
        self as f32
    }
    fn from_lo(lo: f32) -> f64 {
        lo as f64
    }
}

impl MixedPrecision for Complex64 {
    type Lo = Complex32;
    fn to_lo(self) -> Complex32 {
        Complex32::new(self.re as f32, self.im as f32)
    }
    fn from_lo(lo: Complex32) -> Complex64 {
        Complex64::new(lo.re as f64, lo.im as f64)
    }
}

fn convert_down<S: MixedPrecision>(a: &Matrix<S>) -> Matrix<S::Lo> {
    Matrix::from_fn(a.nrows(), a.ncols(), |i, j| a[(i, j)].to_lo())
}

fn convert_up<S: MixedPrecision>(a: &Matrix<S::Lo>) -> Matrix<S> {
    Matrix::from_fn(a.nrows(), a.ncols(), |i, j| S::from_lo(a[(i, j)]))
}

/// Mixed-precision polar decomposition: QDWH in `S::Lo`, Newton–Schulz
/// refinement in `S`. Returns the refinement step count alongside the
/// inherited QDWH telemetry.
pub fn qdwh_mixed<S: MixedPrecision>(
    a: &Matrix<S>,
    opts: &QdwhOptions,
) -> Result<(PolarDecomposition<S>, usize), QdwhError> {
    let m = a.nrows();
    let n = a.ncols();
    if m < n {
        return Err(QdwhError::Shape("qdwh_mixed requires m >= n"));
    }

    // low-precision solve (factor only — H is recomputed at full precision)
    let a_lo = convert_down(a);
    let mut lo_opts = opts.clone();
    lo_opts.compute_h = false;
    let pd_lo = qdwh(&a_lo, &lo_opts)?;
    let mut u: Matrix<S> = convert_up::<S>(&pd_lo.u);

    // Newton–Schulz refinement to full precision
    let eps = S::Real::EPSILON;
    let tol = S::Real::from_usize(n.max(1)).sqrt() * eps * S::Real::from_f64(10.0);
    let mut steps = 0usize;
    const MAX_REFINE: usize = 8;
    loop {
        // G = I - U^H U; residual check
        let mut g = Matrix::<S>::identity(n, n);
        gemm(Op::ConjTrans, Op::NoTrans, -S::ONE, u.as_ref(), u.as_ref(), S::ONE, g.as_mut());
        let res: S::Real = norm(Norm::Fro, g.as_ref());
        if res <= tol || steps >= MAX_REFINE {
            if res > tol {
                return Err(QdwhError::NoConvergence { iterations: steps });
            }
            break;
        }
        // U <- U (3I - U^H U)/2 = U + U G / 2  with G = I - U^H U
        let mut ug = Matrix::<S>::zeros(m, n);
        gemm(Op::NoTrans, Op::NoTrans, S::ONE, u.as_ref(), g.as_ref(), S::ZERO, ug.as_mut());
        let half = S::from_f64(0.5);
        polar_blas::add(half, ug.as_ref(), S::ONE, u.as_mut());
        steps += 1;
    }

    // H at full precision
    let h = if opts.compute_h {
        let mut h = Matrix::<S>::zeros(n, n);
        gemm(Op::ConjTrans, Op::NoTrans, S::ONE, u.as_ref(), a.as_ref(), S::ZERO, h.as_mut());
        symmetrize(h.as_mut());
        h
    } else {
        Matrix::zeros(0, 0)
    };

    let info = QdwhInfo {
        alpha: S::Real::from_f64(pd_lo.info.alpha.to_f64()),
        l0: S::Real::from_f64(pd_lo.info.l0.to_f64()),
        iterations: pd_lo.info.iterations,
        qr_iterations: pd_lo.info.qr_iterations,
        chol_iterations: pd_lo.info.chol_iterations,
        kinds: pd_lo.info.kinds.clone(),
        records: pd_lo
            .info
            .records
            .iter()
            .map(|r| crate::qdwh_impl::IterationRecord {
                iteration: r.iteration,
                kind: r.kind,
                ell: S::Real::from_f64(r.ell.to_f64()),
                convergence: S::Real::from_f64(r.convergence.to_f64()),
                seconds: r.seconds,
                kernels: r.kernels,
            })
            .collect(),
        flops_estimate: pd_lo.info.flops_estimate,
        tiled_decision: pd_lo.info.tiled_decision,
    };

    Ok((PolarDecomposition { u, h, info }, steps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qdwh_impl::orthogonality_error;
    use polar_gen::{generate, MatrixSpec, SigmaDistribution};

    #[test]
    fn mixed_reaches_double_orthogonality() {
        let (a, _) = generate::<f64>(&MatrixSpec::well_conditioned(40, 1));
        let (pd, steps) = qdwh_mixed(&a, &QdwhOptions::default()).unwrap();
        let orth = orthogonality_error(&pd.u);
        assert!(orth < 1e-13, "orthogonality after refinement: {orth}");
        // backward error stays at the f32 level (see module docs)
        assert!(pd.backward_error(&a) < 1e-5);
        assert!(steps >= 1, "must refine at least once from f32 accuracy");
        assert!(steps <= 4, "quadratic convergence: {steps} steps");
    }

    #[test]
    fn mixed_complex() {
        use polar_scalar::Complex64;
        let (a, _) = generate::<Complex64>(&MatrixSpec::well_conditioned(24, 2));
        let (pd, _steps) = qdwh_mixed(&a, &QdwhOptions::default()).unwrap();
        assert!(orthogonality_error(&pd.u) < 1e-13);
        assert!(pd.backward_error(&a) < 1e-5);
    }

    #[test]
    fn mixed_moderately_ill_conditioned() {
        // kappa limited by f32 range: 1e6 is still solvable in single
        let spec = MatrixSpec {
            m: 30,
            n: 30,
            cond: 1e6,
            distribution: SigmaDistribution::Geometric,
            seed: 3,
        };
        let (a, _) = generate::<f64>(&spec);
        let (pd, _) = qdwh_mixed(&a, &QdwhOptions::default()).unwrap();
        assert!(orthogonality_error(&pd.u) < 1e-13);
    }

    #[test]
    fn mixed_agrees_with_full_precision_at_f32_level() {
        use polar_blas::{add, norm};
        use polar_matrix::Norm;
        let (a, _) = generate::<f64>(&MatrixSpec::well_conditioned(20, 4));
        let (mixed, _) = qdwh_mixed(&a, &QdwhOptions::default()).unwrap();
        let full = qdwh(&a, &QdwhOptions::default()).unwrap();
        let mut diff = mixed.u.clone();
        add(-1.0, full.u.as_ref(), 1.0, diff.as_mut());
        let d: f64 = norm(Norm::Fro, diff.as_ref());
        // forward agreement is bounded by the f32 stage's accuracy
        assert!(d < 1e-4, "factors differ by {d}");
    }
}
