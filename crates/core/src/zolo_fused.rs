//! Whole-solve task graph for Zolo-PD: every iteration's `r` independent
//! stacked-QR terms as ONE DAG.
//!
//! The serial driver in `zolo.rs` runs the `r` partial-fraction terms of
//! each Zolotarev iteration in a `for` loop, even though the code comment
//! there admits they are mutually independent — the extra concurrency is
//! the whole reason the paper's §8 wants Zolo-PD in the strong-scaling
//! regime. This module lifts the same trick `fused.rs` plays for QDWH:
//! the Zolotarev coefficients `c_i`, the weights `a_j`, the normalization
//! `M = 1/f(1)`, the `sigma_max <= 1` rescale, and the interval update
//! `ell -> fmin/fmax` are all pure scalar functions of `ell` — no matrix
//! data enters the recurrence — so the whole iteration sequence is known
//! up front ([`plan_zolo_iterations`]). [`zolo_fused`] then emits, per
//! planned iteration and per term `j in 0..r`:
//!
//! * the stacked-`W_j = [X; sqrt(c_{2j}) I]` assembly as per-tile tasks;
//! * the tile QR of `W_j` (`geqrt`/`tsqrt`/`unmqr`/`tsmqr` on the pruned
//!   `[B; I]` row window) and the reverse `orgqr` sweep forming `Q_j`;
//! * the `Q2_j` gather and the rank-`n` `Q1_j Q2_j^H` accumulation into a
//!   *private* per-term slab `Y_j`;
//!
//! plus, per iteration, one combined-update task per `X` tile that applies
//! `X_out = M rho X + sum_j (M rho a_j / sqrt(c_{2j})) Y_j` (with `rho`
//! the planned rescale) in **fixed term order**, fused with the
//! convergence partial, and a fixed-order reduction sink — all into a
//! single [`TaskDag`]. The `r` QR chains share no tiles, so they run
//! concurrently across pool workers; `X` and all per-term workspace are
//! double-buffered by iteration parity exactly like `qdwh_fused`, so
//! iteration `k+1` panel factorizations overlap iteration `k`'s trailing
//! `Y_j` accumulations.
//!
//! Determinism: every value-affecting ordering is a dependency edge, tile
//! accumulations happen inside single tasks in fixed loop order, and the
//! per-tile combine walks the terms `j = 0..r` in fixed order — so the
//! computed iterates are schedule-independent bit-for-bit, with or
//! without `POLAR_DETERMINISTIC=1`.
//!
//! Fallback: the caller runs this *before* its serial `while` loop and
//! re-checks the loop condition afterwards, so a planner bail-out
//! (iteration-cap overflow) or a progress hook continues on the existing
//! serial path with no extra code.

use crate::elliptic::{zolotarev_coefficients, zolotarev_eval, zolotarev_weights};
use crate::fused::{t_slab, RealSlots};
use crate::options::IterationKind;
use crate::qdwh_impl::{IterationRecord, QdwhError, QdwhInfo};
use crate::zolo::ZoloOptions;
use polar_blas::gemm;
use polar_lapack::{
    auto_tile_nb, geqrt_blocked_into, stacked_row_limit, tsmqr_blocked, tsqrt_blocked_into,
    unmqr_tile_blocked, LapackError, SlotPtr, TilePtr, TileT, DEFAULT_BLOCK,
};
use polar_matrix::{Matrix, Op, ProcessGrid, TiledMatrix, Tiling};
use polar_runtime::{ExecOutcome, KernelKind, TaskDag, TaskStatus, TileRef};
use polar_scalar::{Real, Scalar};
use std::sync::Mutex;

/// One precomputed Zolotarev iteration: coefficients, weights, the
/// normalization, the planned `sigma_max <= 1` rescale, and the interval
/// bound after the update.
#[derive(Debug, Clone)]
pub(crate) struct ZoloIterPlan {
    /// The `2r` Zolotarev coefficients `c_1..c_{2r}` for this `ell`.
    pub c: Vec<f64>,
    /// The `r` partial-fraction weights `a_1..a_r`.
    pub a_w: Vec<f64>,
    /// Normalization `M = 1/f(1)`.
    pub m_hat: f64,
    /// `1/fmax` when the sampled map overshoots 1, else 1 — applied
    /// together with `m_hat` in the combined update.
    pub rescale: f64,
    /// `ell_{k+1} = fmin/fmax` after this iteration.
    pub ell_after: f64,
}

/// Precompute the whole Zolotarev iteration sequence from `l0`: the same
/// scalar recurrence the serial loop in `zolo.rs` runs, stopped by the
/// identical `|ell - 1| < 50 eps` interval test. Returns `None` when the
/// iteration cap would be exceeded first (the caller's serial loop then
/// reports `NoConvergence` with its own bookkeeping).
pub(crate) fn plan_zolo_iterations(
    l0: f64,
    r: usize,
    max_iterations: usize,
    eps: f64,
) -> Option<Vec<ZoloIterPlan>> {
    let tol = 50.0 * eps;
    let mut ell = l0;
    let mut plan = Vec::new();
    while (ell - 1.0).abs() >= tol {
        if plan.len() >= max_iterations {
            return None;
        }
        let c = zolotarev_coefficients(ell.min(1.0 - 1e-15), r);
        let a_w = zolotarev_weights(&c);
        let f1 = 1.0 + a_w.iter().enumerate().map(|(j, &aj)| aj / (1.0 + c[2 * j])).sum::<f64>();
        let m_hat = 1.0 / f1;
        let mut fmin = f64::MAX;
        let mut fmax = 0.0f64;
        for i in 0..257 {
            let t = ell + (1.0 - ell) * (i as f64) / 256.0;
            let y = zolotarev_eval(t, &c, &a_w);
            fmin = fmin.min(y);
            fmax = fmax.max(y);
        }
        let rescale = if fmax > 1.0 { 1.0 / fmax } else { 1.0 };
        ell = (fmin / fmax).min(1.0);
        plan.push(ZoloIterPlan { c, a_w, m_hat, rescale, ell_after: ell });
    }
    Some(plan)
}

// Test hook: index of the term whose first panel factorization fails
// (mid-graph), exercising whole-DAG cancellation. `-1` disables. Thread
// local — the graph is *built* on the calling thread, so concurrent
// tests never observe each other's injection.
#[cfg(test)]
thread_local! {
    pub(crate) static FAIL_TERM: std::cell::Cell<i64> = const { std::cell::Cell::new(-1) };
}

/// Run the whole planned Zolotarev sequence as one task graph, updating
/// the iterate and the run telemetry in place. On success the caller's
/// serial loop condition re-check provides the (normally trivial)
/// continuation; on a planner bail-out nothing is touched and `Ok` is
/// returned so the serial path takes over entirely.
pub(crate) fn zolo_fused<S: Scalar>(
    x: &mut Matrix<S>,
    ell: &mut f64,
    info: &mut QdwhInfo<S::Real>,
    qr_count: &mut usize,
    zopts: &ZoloOptions,
) -> Result<(), QdwhError> {
    type R<S> = <S as Scalar>::Real;
    let m = x.nrows();
    let n = x.ncols();
    let rterms = zopts.r;
    let eps = S::Real::EPSILON.to_f64();
    let Some(plan) = plan_zolo_iterations(*ell, rterms, zopts.max_iterations, eps) else {
        return Ok(());
    };
    let iters = plan.len();
    if iters == 0 {
        return Ok(());
    }
    let nb = zopts.tile_nb.unwrap_or_else(|| auto_tile_nb(n)).max(8);
    let ib = DEFAULT_BLOCK.min(nb);
    // the diagonal sqrt(c) I bottom block has the same trapezoidal fill
    // the QDWH stacked QR exploits, so the pruned row window always applies
    let top = Some(m);

    let _span = polar_obs::span!("zolo_fused", m, n);
    let kernels_before = polar_obs::kernel_snapshot();
    let start = std::time::Instant::now();

    let xt = Tiling::new(m, n, nb, nb);
    let mtx = xt.mt();
    let nt = xt.nt();
    let wt = Tiling::new(m + n, n, nb, nb);
    let mtw = wt.mt();
    let kt = wt.mt().min(wt.nt());
    let q2t = Tiling::new(n, n, nb, nb);

    // X double-buffered by iteration parity; per-term workspace (W/Q/T,
    // the Q2 gather G, and the private accumulation slab Y) is
    // parity-buffered the same way, indexed `2*j + parity`, so iteration
    // k+1's term panels never wait on buffer reuse against iteration k.
    let mut xb0 = TiledMatrix::from_dense(x, nb, nb, ProcessGrid::single());
    let mut xb1 = TiledMatrix::<S>::zeros(xt, ProcessGrid::single());
    let mut wbufs: Vec<TiledMatrix<S>> =
        (0..2 * rterms).map(|_| TiledMatrix::zeros(wt, ProcessGrid::single())).collect();
    let mut qbufs: Vec<TiledMatrix<S>> =
        (0..2 * rterms).map(|_| TiledMatrix::zeros(wt, ProcessGrid::single())).collect();
    let mut gbufs: Vec<TiledMatrix<S>> =
        (0..2 * rterms).map(|_| TiledMatrix::zeros(q2t, ProcessGrid::single())).collect();
    let mut ybufs: Vec<TiledMatrix<S>> =
        (0..2 * rterms).map(|_| TiledMatrix::zeros(xt, ProcessGrid::single())).collect();
    let mut tslabs: Vec<Vec<TileT<S>>> = (0..2 * rterms).map(|_| t_slab(wt, top, ib)).collect();

    let mut cvbuf = vec![R::<S>::ZERO; iters * mtx * nt];
    let mut cobuf = vec![R::<S>::ZERO; iters];

    #[cfg(test)]
    let inject_fail: Option<usize> = {
        let v = FAIL_TERM.with(|c| c.get());
        (v >= 0).then_some(v as usize)
    };
    #[cfg(not(test))]
    let inject_fail: Option<usize> = None;

    let failure: Mutex<Option<LapackError>> = Mutex::new(None);
    let outcome;
    {
        let xp = [TilePtr::new(&mut xb0), TilePtr::new(&mut xb1)];
        let wp: Vec<TilePtr<S>> = wbufs.iter_mut().map(TilePtr::new).collect();
        let qp: Vec<TilePtr<S>> = qbufs.iter_mut().map(TilePtr::new).collect();
        let gp: Vec<TilePtr<S>> = gbufs.iter_mut().map(TilePtr::new).collect();
        let yp: Vec<TilePtr<S>> = ybufs.iter_mut().map(TilePtr::new).collect();
        let tp: Vec<SlotPtr<S>> = tslabs.iter_mut().map(|v| SlotPtr::new(v)).collect();
        let cv = RealSlots::new(&mut cvbuf);
        let co = RealSlots::new(&mut cobuf);
        let fail = &failure;

        let mut dag = TaskDag::new();
        let mxs = [dag.new_matrix(), dag.new_matrix()];
        let mws: Vec<u32> = (0..2 * rterms).map(|_| dag.new_matrix()).collect();
        let mqs: Vec<u32> = (0..2 * rterms).map(|_| dag.new_matrix()).collect();
        let mgs: Vec<u32> = (0..2 * rterms).map(|_| dag.new_matrix()).collect();
        let mys: Vec<u32> = (0..2 * rterms).map(|_| dag.new_matrix()).collect();
        let mts: Vec<u32> = (0..2 * rterms).map(|_| dag.new_matrix()).collect();
        let mcv = dag.new_matrix();
        let mco = dag.new_matrix();
        let bytes = (nb * nb * std::mem::size_of::<S>()) as u64;
        let tile = |mid: u32, i: usize, j: usize| TileRef::new(mid, i, j, bytes);
        let nbf = nb as f64;

        for (k, pl) in plan.iter().enumerate() {
            if k > 0 {
                dag.next_phase();
            }
            let pr = k % 2; // parity of this iteration's inputs + workspace
            let po = (k + 1) % 2; // parity of the output iterate
            let (xin, xout) = (xp[pr], xp[po]);
            let (mxin, mxout) = (mxs[pr], mxs[po]);
            let cvbase = k * mtx * nt;
            let s0 = pl.m_hat * pl.rescale;

            // ---- r independent stacked-QR term branches ----
            for j in 0..rterms {
                let sqrt_c = pl.c[2 * j].sqrt();
                let (w, q, g, y, ts) = (
                    wp[2 * j + pr],
                    qp[2 * j + pr],
                    gp[2 * j + pr],
                    yp[2 * j + pr],
                    tp[2 * j + pr],
                );
                let (mw, mq, mg, my, mt_) = (
                    mws[2 * j + pr],
                    mqs[2 * j + pr],
                    mgs[2 * j + pr],
                    mys[2 * j + pr],
                    mts[2 * j + pr],
                );

                // W_j = [X; sqrt(c_{2j}) I] per tile; top rows of a
                // straddling tile coincide with the X tile of the same index.
                for tj in 0..nt {
                    for wi in 0..mtw {
                        let reads = if wi < mtx { vec![tile(mxin, wi, tj)] } else { Vec::new() };
                        dag.add(
                            KernelKind::Geadd,
                            2,
                            nbf * nbf,
                            reads,
                            vec![tile(mw, wi, tj)],
                            move || {
                                let wt_tile = unsafe { w.tile(wi, tj) };
                                let r0 = wi * nb;
                                let c0 = tj * nb;
                                let sc = S::from_f64(sqrt_c);
                                if r0 + wt_tile.nrows() <= m {
                                    let xt_tile = unsafe { xin.tile_ref(wi, tj) };
                                    for c in 0..wt_tile.ncols() {
                                        for rr in 0..wt_tile.nrows() {
                                            wt_tile[(rr, c)] = xt_tile[(rr, c)];
                                        }
                                    }
                                } else {
                                    for c in 0..wt_tile.ncols() {
                                        for rr in 0..wt_tile.nrows() {
                                            let gr = r0 + rr;
                                            wt_tile[(rr, c)] = if gr < m {
                                                let xt_tile = unsafe { xin.tile_ref(wi, tj) };
                                                xt_tile[(rr, c)]
                                            } else if gr - m == c0 + c {
                                                sc
                                            } else {
                                                S::ZERO
                                            };
                                        }
                                    }
                                }
                            },
                        );
                    }
                }

                // Tile QR of W_j (the geqrf_tiled task shape on the pruned
                // [B; I] row window). Each term's wave touches only its own
                // W/T tiles, so the r waves are fully independent.
                for kk in 0..kt {
                    let step = (kt - kk) as i32 * 4;
                    if k == 0 && kk == 0 && inject_fail == Some(j) {
                        // test hook: this term's first panel breaks down,
                        // cancelling the whole solve graph
                        dag.add_task(
                            KernelKind::Geqrt,
                            step + 2,
                            2.0 * nbf * nbf * nbf,
                            vec![],
                            vec![tile(mw, kk, kk), tile(mt_, kk, kk)],
                            move || {
                                *fail.lock().unwrap() = Some(LapackError::SingularPivot(j));
                                TaskStatus::Cancel
                            },
                        );
                    } else {
                        dag.add(
                            KernelKind::Geqrt,
                            step + 2,
                            2.0 * nbf * nbf * nbf,
                            vec![],
                            vec![tile(mw, kk, kk), tile(mt_, kk, kk)],
                            move || {
                                let akk = unsafe { w.tile(kk, kk) };
                                geqrt_blocked_into(akk, unsafe { ts.slot(kk + kk * mtw) });
                            },
                        );
                    }
                    for tj in kk + 1..nt {
                        let prio = step + i32::from(tj == kk + 1);
                        dag.add(
                            KernelKind::Unmqr,
                            prio,
                            3.0 * nbf * nbf * nbf,
                            vec![tile(mw, kk, kk), tile(mt_, kk, kk)],
                            vec![tile(mw, kk, tj)],
                            move || {
                                let v = unsafe { w.tile_ref(kk, kk) };
                                let t = unsafe { ts.slot_ref(kk + kk * mtw) };
                                let c = unsafe { w.tile(kk, tj) };
                                unmqr_tile_blocked(Op::ConjTrans, v, t, c);
                            },
                        );
                    }
                    let lim = stacked_row_limit(wt, top, kk);
                    for i in kk + 1..=lim {
                        dag.add(
                            KernelKind::Tsqrt,
                            step + 2,
                            2.0 * nbf * nbf * nbf,
                            vec![],
                            vec![tile(mw, kk, kk), tile(mw, i, kk), tile(mt_, i, kk)],
                            move || {
                                let (r, b) = unsafe { (w.tile(kk, kk), w.tile(i, kk)) };
                                tsqrt_blocked_into(r, b, unsafe { ts.slot(i + kk * mtw) });
                            },
                        );
                        for tj in kk + 1..nt {
                            let prio = step + i32::from(tj == kk + 1);
                            dag.add(
                                KernelKind::Tsmqr,
                                prio,
                                4.0 * nbf * nbf * nbf,
                                vec![tile(mw, i, kk), tile(mt_, i, kk)],
                                vec![tile(mw, kk, tj), tile(mw, i, tj)],
                                move || {
                                    let v2 = unsafe { w.tile_ref(i, kk) };
                                    let t = unsafe { ts.slot_ref(i + kk * mtw) };
                                    let (a1, a2) = unsafe { (w.tile(kk, tj), w.tile(i, tj)) };
                                    tsmqr_blocked(Op::ConjTrans, v2, t, a1, a2);
                                },
                            );
                        }
                    }
                }

                // Q_j := thin identity, then the reverse orgqr sweep.
                for tj in 0..nt {
                    for qi in 0..mtw {
                        dag.add(
                            KernelKind::Geadd,
                            2,
                            nbf * nbf,
                            vec![],
                            vec![tile(mq, qi, tj)],
                            move || {
                                let t = unsafe { q.tile(qi, tj) };
                                if qi == tj {
                                    t.set_identity();
                                } else {
                                    t.fill(S::ZERO);
                                }
                            },
                        );
                    }
                }
                for kk in (0..kt).rev() {
                    let step = (kk + 1) as i32 * 4;
                    let lim = stacked_row_limit(wt, top, kk);
                    for i in (kk + 1..=lim).rev() {
                        for tj in kk..nt {
                            dag.add(
                                KernelKind::Tsmqr,
                                step,
                                4.0 * nbf * nbf * nbf,
                                vec![tile(mw, i, kk), tile(mt_, i, kk)],
                                vec![tile(mq, kk, tj), tile(mq, i, tj)],
                                move || {
                                    let v2 = unsafe { w.tile_ref(i, kk) };
                                    let t = unsafe { ts.slot_ref(i + kk * mtw) };
                                    let (q1, q2) = unsafe { (q.tile(kk, tj), q.tile(i, tj)) };
                                    tsmqr_blocked(Op::NoTrans, v2, t, q1, q2);
                                },
                            );
                        }
                    }
                    for tj in kk..nt {
                        dag.add(
                            KernelKind::Unmqr,
                            step + 1,
                            3.0 * nbf * nbf * nbf,
                            vec![tile(mw, kk, kk), tile(mt_, kk, kk)],
                            vec![tile(mq, kk, tj)],
                            move || {
                                let v = unsafe { w.tile_ref(kk, kk) };
                                let t = unsafe { ts.slot_ref(kk + kk * mtw) };
                                let c = unsafe { q.tile(kk, tj) };
                                unmqr_tile_blocked(Op::NoTrans, v, t, c);
                            },
                        );
                    }
                }

                // Gather Q2_j (rows m..m+n of Q_j) into an n x n tiling.
                for kc in 0..nt {
                    for tj in 0..nt {
                        let rows = q2t.tile_rows(tj);
                        let lo = (m + tj * nb) / nb;
                        let hi = (m + tj * nb + rows - 1) / nb;
                        let mut reads = vec![tile(mq, lo, kc)];
                        if hi != lo {
                            reads.push(tile(mq, hi, kc));
                        }
                        dag.add(
                            KernelKind::Geadd,
                            1,
                            nbf * nbf,
                            reads,
                            vec![tile(mg, tj, kc)],
                            move || {
                                let out = unsafe { g.tile(tj, kc) };
                                for c in 0..out.ncols() {
                                    for rr in 0..out.nrows() {
                                        let gr = m + tj * nb + rr;
                                        let qi = gr / nb;
                                        let src = unsafe { q.tile_ref(qi, kc) };
                                        out[(rr, c)] = src[(gr - qi * nb, c)];
                                    }
                                }
                            },
                        );
                    }
                }

                // Y_j = Q1_j Q2_j^H, accumulated per output tile into the
                // term's private slab — the reduction over terms happens
                // later, in fixed order, so this task is free to run as
                // soon as its own term's Q is ready.
                for tj in 0..nt {
                    for ti in 0..mtx {
                        let mut reads = Vec::with_capacity(2 * nt);
                        for kc in 0..nt {
                            reads.push(tile(mq, ti, kc));
                            reads.push(tile(mg, tj, kc));
                        }
                        dag.add(
                            KernelKind::Gemm,
                            0,
                            2.0 * nbf * nbf * nbf * nt as f64,
                            reads,
                            vec![tile(my, ti, tj)],
                            move || {
                                let yo = unsafe { y.tile(ti, tj) };
                                yo.fill(S::ZERO);
                                let yr = yo.nrows();
                                for kc in 0..nt {
                                    let q1 = unsafe { q.tile_ref(ti, kc) };
                                    let q2 = unsafe { g.tile_ref(tj, kc) };
                                    gemm(
                                        Op::NoTrans,
                                        Op::ConjTrans,
                                        S::ONE,
                                        q1.view(0, 0, yr, q1.ncols()),
                                        q2.as_ref(),
                                        S::ONE,
                                        yo.as_mut(),
                                    );
                                }
                            },
                        );
                    }
                }
            }

            // ---- fixed-order combine: X_out = s0 X + sum_j sj Y_j ----
            // One task per X tile, walking the r private slabs in fixed
            // term order (determinism), fused with the convergence partial
            // |X_out - X_in|_F^2 for this tile.
            let coefs: Vec<f64> =
                pl.a_w.iter().enumerate().map(|(j, &aj)| s0 * aj / pl.c[2 * j].sqrt()).collect();
            let ys: Vec<TilePtr<S>> = (0..rterms).map(|j| yp[2 * j + pr]).collect();
            let myv: Vec<u32> = (0..rterms).map(|j| mys[2 * j + pr]).collect();
            for tj in 0..nt {
                for ti in 0..mtx {
                    let mut reads = vec![tile(mxin, ti, tj)];
                    for &myj in &myv {
                        reads.push(tile(myj, ti, tj));
                    }
                    let ys_t = ys.clone();
                    let coefs_t = coefs.clone();
                    dag.add(
                        KernelKind::Geadd,
                        0,
                        nbf * nbf * (rterms as f64 + 1.0),
                        reads,
                        vec![tile(mxout, ti, tj), tile(mcv, cvbase / nt + ti, tj)],
                        move || {
                            let xi = unsafe { xin.tile_ref(ti, tj) };
                            let xo = unsafe { xout.tile(ti, tj) };
                            let b = S::from_f64(s0);
                            for c in 0..xi.ncols() {
                                for rr in 0..xi.nrows() {
                                    xo[(rr, c)] = b * xi[(rr, c)];
                                }
                            }
                            for (jt, yj) in ys_t.iter().enumerate() {
                                let yt_tile = unsafe { yj.tile_ref(ti, tj) };
                                let sj = S::from_f64(coefs_t[jt]);
                                for c in 0..xi.ncols() {
                                    for rr in 0..xi.nrows() {
                                        let v = xo[(rr, c)] + sj * yt_tile[(rr, c)];
                                        xo[(rr, c)] = v;
                                    }
                                }
                            }
                            let mut acc = R::<S>::ZERO;
                            for c in 0..xi.ncols() {
                                for rr in 0..xi.nrows() {
                                    acc += (xo[(rr, c)] - xi[(rr, c)]).abs_sq();
                                }
                            }
                            unsafe { cv.set(cvbase + ti + tj * mtx, acc) };
                        },
                    );
                }
            }

            // Fixed-order convergence reduction — a sink: nothing in
            // iteration k+1 depends on it.
            let mut reads = Vec::with_capacity(mtx * nt);
            for tj in 0..nt {
                for ti in 0..mtx {
                    reads.push(tile(mcv, cvbase / nt + ti, tj));
                }
            }
            dag.add(
                KernelKind::Norm,
                -1,
                (mtx * nt) as f64,
                reads,
                vec![tile(mco, k, 0)],
                move || {
                    let mut s = R::<S>::ZERO;
                    for tj in 0..nt {
                        for ti in 0..mtx {
                            s += unsafe { cv.get(cvbase + ti + tj * mtx) };
                        }
                    }
                    unsafe { co.set(k, s.sqrt()) };
                },
            );
        }
        outcome = dag.execute();
    }

    if outcome == ExecOutcome::Cancelled {
        let e = failure.lock().unwrap().take().unwrap_or(LapackError::SingularPivot(0));
        return Err(QdwhError::Lapack(e));
    }

    // Bookkeeping: same counters the serial loop maintains — one QR-based
    // iteration and r stacked QRs per planned step — with flop-share wall
    // time (iterations overlapped, so per-step timing is not observable);
    // the kernel-counter delta for the whole DAG lands on the last record.
    let total_secs = start.elapsed().as_secs_f64();
    let delta = polar_obs::kernel_snapshot().delta(&kernels_before);
    for (k, pl) in plan.iter().enumerate() {
        let conv_k = cobuf[k];
        if !conv_k.to_f64().is_finite() {
            return Err(QdwhError::NonFinite { iteration: info.iterations + 1 });
        }
        info.iterations += 1;
        info.qr_iterations += 1;
        info.kinds.push(IterationKind::QrBased);
        let record = IterationRecord {
            iteration: info.iterations,
            kind: IterationKind::QrBased,
            ell: R::<S>::from_f64(pl.ell_after),
            convergence: conv_k,
            seconds: total_secs / iters as f64,
            kernels: if k + 1 == iters { delta } else { polar_obs::KernelSnapshot::default() },
        };
        polar_obs::log!(
            polar_obs::LogLevel::Debug,
            "zolo fused iter {} ({} QR terms): conv={:e} ell={:e}",
            record.iteration,
            rterms,
            record.convergence.to_f64(),
            record.ell.to_f64()
        );
        info.records.push(record);
    }
    *qr_count += rterms * iters;

    *x = if iters % 2 == 0 { xb0.to_dense() } else { xb1.to_dense() };
    *ell = plan[iters - 1].ell_after;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::TiledPath;
    use crate::qdwh_impl::orthogonality_error;
    use crate::zolo::zolo_pd;
    use polar_gen::{generate, MatrixSpec, SigmaDistribution};
    use polar_scalar::{Complex32, Complex64};
    use proptest::prelude::*;

    fn fused_opts(r: usize) -> ZoloOptions {
        ZoloOptions { r, tiled: TiledPath::Always, tile_nb: Some(8), ..Default::default() }
    }

    fn serial_opts(r: usize) -> ZoloOptions {
        ZoloOptions { r, tiled: TiledPath::Never, ..Default::default() }
    }

    /// Fused vs serial: same iteration plan (kinds), same QR/flop
    /// accounting, and the fused factors meet the same accuracy bars the
    /// serial path is held to. Elementwise closeness is NOT asserted —
    /// the two paths use different QR algorithms (tile TS-QR vs flat
    /// blocked Householder), whose rounding differs on the
    /// ill-conditioned stacked panels.
    fn parity_case<S: Scalar>(a: &Matrix<S>, r: usize, tol: f64) {
        let fused = zolo_pd(a, &fused_opts(r)).expect("fused converged");
        let serial = zolo_pd(a, &serial_opts(r)).expect("serial converged");
        assert_eq!(fused.pd.info.kinds, serial.pd.info.kinds, "r={r}: plans diverged");
        assert_eq!(fused.pd.info.iterations, serial.pd.info.iterations);
        assert_eq!(
            fused.qr_factorizations, serial.qr_factorizations,
            "r={r}: fused QR accounting diverged from the serial loop"
        );
        assert_eq!(fused.qr_factorizations, r * fused.pd.info.iterations);
        let (ff, fs) = (fused.pd.info.flops_estimate, serial.pd.info.flops_estimate);
        assert!(
            (ff - fs).abs() <= 0.01 * fs,
            "r={r}: flop model diverged: fused {ff:e} vs serial {fs:e}"
        );
        let orth = orthogonality_error(&fused.pd.u).to_f64();
        assert!(orth <= tol, "r={r}: fused U not orthogonal: {orth:e}");
        let berr = fused.pd.backward_error(a).to_f64();
        assert!(berr <= tol, "r={r}: fused backward error {berr:e}");
    }

    #[test]
    fn fused_matches_serial_all_types_all_r() {
        let n = 20;
        for r in [2usize, 4, 8] {
            let (a, _) = generate::<f64>(&MatrixSpec::ill_conditioned(n, 21));
            parity_case(&a, r, 1e-11);
            let (az, _) = generate::<Complex64>(&MatrixSpec::ill_conditioned(n, 22));
            parity_case(&az, r, 1e-11);
            let spec32 = MatrixSpec {
                m: n,
                n,
                cond: 1e5,
                distribution: SigmaDistribution::Geometric,
                seed: 23,
            };
            let (af, _) = generate::<f64>(&spec32);
            let a32 = Matrix::<f32>::from_fn(n, n, |i, j| af[(i, j)] as f32);
            parity_case(&a32, r, 1e-5);
            let (ac, _) = generate::<Complex64>(&spec32);
            let c32 = Matrix::<Complex32>::from_fn(n, n, |i, j| {
                Complex32::new(ac[(i, j)].re as f32, ac[(i, j)].im as f32)
            });
            parity_case(&c32, r, 1e-5);
        }
    }

    #[test]
    fn fused_rectangular_with_straddle() {
        // m not a multiple of nb: the sqrt(c) I block starts mid-tile and
        // the Q2 gather straddles two Q tile rows, for every term.
        let spec = MatrixSpec {
            m: 37,
            n: 20,
            cond: 1e8,
            distribution: SigmaDistribution::Geometric,
            seed: 24,
        };
        let (a, _) = generate::<f64>(&spec);
        parity_case(&a, 4, 1e-12);
    }

    /// Every value-affecting ordering in the fused Zolo DAG is a
    /// dependency edge and the per-tile combine walks terms in fixed
    /// order, so two runs must agree bit-for-bit on U *and* H even with a
    /// parallel work-stealing schedule (POLAR_DETERMINISTIC additionally
    /// pins the schedule; the CI zolo leg runs this test under that pin).
    #[test]
    fn fused_is_bitwise_deterministic() {
        let (a, _) = generate::<f64>(&MatrixSpec::ill_conditioned(40, 25));
        let r1 = zolo_pd(&a, &fused_opts(4)).expect("run 1");
        let r2 = zolo_pd(&a, &fused_opts(4)).expect("run 2");
        for j in 0..a.ncols() {
            for i in 0..a.nrows() {
                assert_eq!(
                    r1.pd.u[(i, j)].to_bits(),
                    r2.pd.u[(i, j)].to_bits(),
                    "U nondeterministic at ({i},{j})"
                );
                assert_eq!(
                    r1.pd.h[(i, j)].to_bits(),
                    r2.pd.h[(i, j)].to_bits(),
                    "H nondeterministic at ({i},{j})"
                );
            }
        }
        assert_eq!(r1.pd.info.iterations, r2.pd.info.iterations);
        for (ra, rb) in r1.pd.info.records.iter().zip(&r2.pd.info.records) {
            assert_eq!(ra.convergence.to_bits(), rb.convergence.to_bits());
        }
    }

    /// A term's QR breaking down mid-graph must cancel the whole solve
    /// and surface as a Lapack error — and leave the engine reusable.
    #[test]
    fn fused_term_qr_failure_cancels_cleanly() {
        let (a, _) = generate::<f64>(&MatrixSpec::ill_conditioned(24, 26));
        FAIL_TERM.with(|c| c.set(2));
        let res = zolo_pd(&a, &fused_opts(4));
        FAIL_TERM.with(|c| c.set(-1));
        match res {
            Err(QdwhError::Lapack(LapackError::SingularPivot(2))) => {}
            other => panic!("expected injected term-2 QR failure, got {other:?}"),
        }
        let ok = zolo_pd(&a, &fused_opts(4)).expect("clean state after cancel");
        assert!(orthogonality_error(&ok.pd.u).to_f64() < 1e-12);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Randomized fused-vs-serial Zolo parity, f64: rectangular
        /// shapes, conditioning sweep, r across the sweep set.
        #[test]
        fn prop_zolo_fused_parity_f64(
            n in 10usize..22,
            extra in 0usize..9,
            log_cond in 0.0f64..10.0,
            r_idx in 0usize..3,
            seed in 0u64..1000,
        ) {
            let spec = MatrixSpec {
                m: n + extra,
                n,
                cond: 10f64.powf(log_cond),
                distribution: SigmaDistribution::Geometric,
                seed,
            };
            let (a, _) = generate::<f64>(&spec);
            parity_case(&a, [2usize, 4, 8][r_idx], 1e-11);
        }

        /// Randomized fused-vs-serial Zolo parity, Complex64.
        #[test]
        fn prop_zolo_fused_parity_c64(
            n in 10usize..20,
            log_cond in 0.0f64..8.0,
            r_idx in 0usize..3,
            seed in 0u64..1000,
        ) {
            let spec = MatrixSpec {
                m: n,
                n,
                cond: 10f64.powf(log_cond),
                distribution: SigmaDistribution::Geometric,
                seed,
            };
            let (a, _) = generate::<Complex64>(&spec);
            parity_case(&a, [2usize, 4, 8][r_idx], 1e-11);
        }
    }

    #[test]
    fn plan_matches_serial_two_iteration_guarantee() {
        // r = 8 at the double-precision floor: two iterations, ell -> 1
        let plan = plan_zolo_iterations(1e-16, 8, 6, f64::EPSILON).expect("converges");
        assert_eq!(plan.len(), 2);
        let last = plan.last().unwrap();
        assert!((last.ell_after - 1.0).abs() < 50.0 * f64::EPSILON);
        for p in &plan {
            assert_eq!(p.c.len(), 16);
            assert_eq!(p.a_w.len(), 8);
            assert!(p.m_hat.is_finite() && p.m_hat > 0.0);
            assert!(p.rescale > 0.0 && p.rescale <= 1.0);
        }
        // ell trajectory is monotone toward 1
        assert!(plan.windows(2).all(|w| w[0].ell_after <= w[1].ell_after));
    }

    #[test]
    fn plan_small_r_needs_more_iterations() {
        let r8 = plan_zolo_iterations(1e-10, 8, 10, f64::EPSILON).unwrap();
        let r2 = plan_zolo_iterations(1e-10, 2, 10, f64::EPSILON).unwrap();
        assert!(r2.len() > r8.len(), "r2 {} vs r8 {}", r2.len(), r8.len());
    }

    #[test]
    fn plan_bails_on_iteration_cap() {
        assert!(plan_zolo_iterations(1e-16, 2, 1, f64::EPSILON).is_none());
    }

    #[test]
    fn plan_empty_when_already_converged() {
        let plan = plan_zolo_iterations(1.0, 8, 6, f64::EPSILON).unwrap();
        assert!(plan.is_empty());
    }
}
