//! Applications built on the polar decomposition (paper §3 and §8):
//! the QDWH-SVD solver and the QDWH-eig spectral divide-and-conquer
//! symmetric eigensolver (the "partial EVD building block" named as
//! future work).

use crate::options::QdwhOptions;
use crate::qdwh_impl::{qdwh, QdwhError};
use polar_blas::{gemm, symmetrize};
use polar_lapack::{geqrf, jacobi_eig, orgqr};
use polar_matrix::{Matrix, Op};
use polar_scalar::{Real, Scalar};
use std::ops::ControlFlow;

/// SVD computed through the polar decomposition (§3):
/// `A = U_p H`, `H = V Λ V^H`  ⇒  `A = (U_p V) Λ V^H = U Σ V^H`.
#[derive(Debug, Clone)]
pub struct QdwhSvd<S: Scalar> {
    pub u: Matrix<S>,
    pub sigma: Vec<S::Real>,
    pub v: Matrix<S>,
    /// QDWH iterations spent in the polar stage.
    pub polar_iterations: usize,
}

/// Compute the thin SVD of `A` (`m >= n`) via QDWH-PD + Hermitian EVD.
pub fn qdwh_svd<S: Scalar>(a: &Matrix<S>, opts: &QdwhOptions) -> Result<QdwhSvd<S>, QdwhError> {
    let n = a.ncols();
    let mut pd_opts = opts.clone();
    pd_opts.compute_h = true;
    let pd = qdwh(a, &pd_opts)?;
    let eig = jacobi_eig(&pd.h)?;
    // U = U_p V
    let mut u = Matrix::<S>::zeros(a.nrows(), n);
    gemm(
        Op::NoTrans,
        Op::NoTrans,
        S::ONE,
        pd.u.as_ref(),
        eig.vectors.as_ref(),
        S::ZERO,
        u.as_mut(),
    );
    // singular values = eigenvalues of H (clamp tiny negatives from roundoff)
    let sigma: Vec<S::Real> =
        eig.values.iter().map(|&l| if l < S::Real::ZERO { S::Real::ZERO } else { l }).collect();
    Ok(QdwhSvd { u, sigma, v: eig.vectors, polar_iterations: pd.info.iterations })
}

/// Hermitian eigendecomposition by QDWH spectral divide and conquer
/// (Nakatsukasa & Higham 2013; the paper's §8 names partial EVD on top of
/// QDWH as the targeted extension).
///
/// Splits the spectrum at a shift `sigma` using the polar factor of
/// `A - sigma I`: `P = (U_p + I)/2` is the orthogonal projector onto the
/// invariant subspace of eigenvalues `>= sigma`; the two deflated blocks
/// recurse, with a Jacobi base case.
#[derive(Debug, Clone)]
pub struct QdwhEig<S: Scalar> {
    pub values: Vec<S::Real>,
    pub vectors: Matrix<S>,
    /// Total QDWH polar decompositions performed across the recursion.
    pub polar_count: usize,
}

/// Base-case size below which the recursion hands off to Jacobi.
const EIG_BASE: usize = 24;

pub fn qdwh_eig<S: Scalar>(a: &Matrix<S>, opts: &QdwhOptions) -> Result<QdwhEig<S>, QdwhError> {
    if !a.is_square() {
        return Err(QdwhError::Shape("qdwh_eig requires a square Hermitian matrix"));
    }
    let n = a.nrows();
    let mut vectors = Matrix::<S>::identity(n, n);
    let mut values = vec![S::Real::ZERO; n];
    let mut polar_count = 0usize;
    eig_recurse(a, &mut vectors, &mut values, 0, opts, &mut polar_count, 0)?;
    // global descending sort with vector permutation
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| values[j].partial_cmp(&values[i]).unwrap_or(core::cmp::Ordering::Equal));
    let sorted_vals: Vec<S::Real> = order.iter().map(|&j| values[j]).collect();
    let mut sorted_vecs = Matrix::<S>::zeros(n, n);
    for (newj, &oldj) in order.iter().enumerate() {
        for i in 0..n {
            sorted_vecs[(i, newj)] = vectors[(i, oldj)];
        }
    }
    Ok(QdwhEig { values: sorted_vals, vectors: sorted_vecs, polar_count })
}

/// Recursive splitter. `block` is the Hermitian submatrix in the basis of
/// columns `col0..col0+k` of `vectors`; on return those columns hold the
/// eigenvectors and `values[col0..col0+k]` the eigenvalues.
fn eig_recurse<S: Scalar>(
    block: &Matrix<S>,
    vectors: &mut Matrix<S>,
    values: &mut [S::Real],
    col0: usize,
    opts: &QdwhOptions,
    polar_count: &mut usize,
    depth: usize,
) -> Result<(), QdwhError> {
    let k = block.nrows();
    if k == 0 {
        return Ok(());
    }
    if k <= EIG_BASE || depth > 40 {
        return base_case(block, vectors, values, col0);
    }
    match try_split(block, opts, polar_count)? {
        ControlFlow::Break(()) => base_case(block, vectors, values, col0),
        ControlFlow::Continue((v1, a1, v2, a2)) => {
            let k1 = a1.nrows();
            // rotate the global basis: cols [col0, col0+k) * [v1 v2]
            rotate_basis(vectors, col0, k, &v1, &v2);
            eig_recurse(&a1, vectors, values, col0, opts, polar_count, depth + 1)?;
            eig_recurse(&a2, vectors, values, col0 + k1, opts, polar_count, depth + 1)?;
            Ok(())
        }
    }
}

fn base_case<S: Scalar>(
    block: &Matrix<S>,
    vectors: &mut Matrix<S>,
    values: &mut [S::Real],
    col0: usize,
) -> Result<(), QdwhError> {
    let k = block.nrows();
    let eig = jacobi_eig(block)?;
    // global vectors: cols[col0..col0+k] *= eig.vectors
    rotate_basis(vectors, col0, k, &eig.vectors, &Matrix::zeros(k, 0));
    values[col0..col0 + k].copy_from_slice(&eig.values);
    Ok(())
}

/// `vectors[:, col0..col0+k] := vectors[:, col0..col0+k] * [w1 w2]`.
fn rotate_basis<S: Scalar>(
    vectors: &mut Matrix<S>,
    col0: usize,
    k: usize,
    w1: &Matrix<S>,
    w2: &Matrix<S>,
) {
    let n = vectors.nrows();
    let old = vectors.submatrix_owned(0, col0, n, k);
    let k1 = w1.ncols();
    {
        let out1 = vectors.view_mut(0, col0, n, k1);
        gemm(Op::NoTrans, Op::NoTrans, S::ONE, old.as_ref(), w1.as_ref(), S::ZERO, out1);
    }
    if w2.ncols() > 0 {
        let out2 = vectors.view_mut(0, col0 + k1, n, w2.ncols());
        gemm(Op::NoTrans, Op::NoTrans, S::ONE, old.as_ref(), w2.as_ref(), S::ZERO, out2);
    }
}

type SplitResult<S> = ControlFlow<(), (Matrix<S>, Matrix<S>, Matrix<S>, Matrix<S>)>;

/// Crate-internal view of one divide step for the partial-spectrum module:
/// Subspace bases and deflated blocks from one spectral split:
/// `(V1, A1, V2, A2)`.
pub(crate) type SplitParts<S> = (Matrix<S>, Matrix<S>, Matrix<S>, Matrix<S>);

/// `Some((V1, A1, V2, A2))` on a productive split (`A1` carries the
/// eigenvalues above the shift), `None` when the block is unsplittable.
pub(crate) fn split_spectrum<S: Scalar>(
    a: &Matrix<S>,
    opts: &QdwhOptions,
    polar_count: &mut usize,
) -> Result<Option<SplitParts<S>>, QdwhError> {
    match try_split(a, opts, polar_count)? {
        ControlFlow::Break(()) => Ok(None),
        ControlFlow::Continue(parts) => Ok(Some(parts)),
    }
}

/// One divide step: returns `(V1, A1, V2, A2)` with `A1 = V1^H A V1`
/// (eigenvalues above the shift) and `A2 = V2^H A V2`, or `Break` when no
/// productive split exists (clustered spectrum).
fn try_split<S: Scalar>(
    a: &Matrix<S>,
    opts: &QdwhOptions,
    polar_count: &mut usize,
) -> Result<SplitResult<S>, QdwhError> {
    let k = a.nrows();
    // shift: median of the diagonal — cheap and effective for splitting
    let mut diag: Vec<S::Real> = (0..k).map(|i| a[(i, i)].re()).collect();
    diag.sort_by(|x, y| x.partial_cmp(y).unwrap_or(core::cmp::Ordering::Equal));
    let sigma = diag[k / 2];

    // polar factor of A - sigma I
    let mut shifted = a.clone();
    for i in 0..k {
        shifted[(i, i)] -= S::from_real(sigma);
    }
    let mut pd_opts = opts.clone();
    pd_opts.compute_h = false;
    let pd = match qdwh(&shifted, &pd_opts) {
        Ok(pd) => pd,
        // shift landed on an eigenvalue (singular input) — give up on
        // splitting this block
        Err(_) => return Ok(ControlFlow::Break(())),
    };
    *polar_count += 1;

    // P = (U_p + I)/2, projector rank = #eigenvalues >= sigma
    let mut p = pd.u;
    for i in 0..k {
        p[(i, i)] += S::ONE;
    }
    let half = S::Real::ONE / S::Real::TWO;
    for j in 0..k {
        for i in 0..k {
            p[(i, j)] = p[(i, j)].mul_real(half);
        }
    }
    let trace: S::Real = (0..k).map(|i| p[(i, i)].re()).sum();
    let k1 = trace.to_f64().round() as usize;
    if k1 == 0 || k1 >= k {
        return Ok(ControlFlow::Break(()));
    }

    // randomized range finder: B = P * Omega, QR -> [V1 V2]
    let mut rng_state = 0x9E3779B97F4A7C15u64 ^ (k as u64);
    let omega = Matrix::<S>::from_fn(k, k, |_, _| {
        rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let v = ((rng_state >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
        S::from_f64(v)
    });
    let mut b = Matrix::<S>::zeros(k, k);
    gemm(Op::NoTrans, Op::NoTrans, S::ONE, p.as_ref(), omega.as_ref(), S::ZERO, b.as_mut());
    // make trailing columns span the complement: B2 = (I - P) Omega2 = Omega2 - P Omega2
    for j in k1..k {
        for i in 0..k {
            b[(i, j)] = omega[(i, j)] - b[(i, j)];
        }
    }
    let f = geqrf(&mut b);
    let q = orgqr(&b, &f);
    let v1 = q.submatrix_owned(0, 0, k, k1);
    let v2 = q.submatrix_owned(0, k1, k, k - k1);

    // deflated blocks A_i = V_i^H A V_i
    let a1 = congruence(a, &v1);
    let a2 = congruence(a, &v2);

    // validate the split: the off-diagonal coupling must be negligible
    let mut av1 = Matrix::<S>::zeros(k, k1);
    gemm(Op::NoTrans, Op::NoTrans, S::ONE, a.as_ref(), v1.as_ref(), S::ZERO, av1.as_mut());
    let mut coupling = Matrix::<S>::zeros(k - k1, k1);
    gemm(Op::ConjTrans, Op::NoTrans, S::ONE, v2.as_ref(), av1.as_ref(), S::ZERO, coupling.as_mut());
    let c_norm: S::Real = polar_blas::norm(polar_matrix::Norm::Fro, coupling.as_ref());
    let a_norm: S::Real = polar_blas::norm(polar_matrix::Norm::Fro, a.as_ref());
    let tol = S::Real::EPSILON.sqrt() * (S::Real::ONE + a_norm);
    if c_norm > tol {
        return Ok(ControlFlow::Break(()));
    }

    Ok(ControlFlow::Continue((v1, a1, v2, a2)))
}

/// `V^H A V`, symmetrized.
fn congruence<S: Scalar>(a: &Matrix<S>, v: &Matrix<S>) -> Matrix<S> {
    let k = a.nrows();
    let r = v.ncols();
    let mut av = Matrix::<S>::zeros(k, r);
    gemm(Op::NoTrans, Op::NoTrans, S::ONE, a.as_ref(), v.as_ref(), S::ZERO, av.as_mut());
    let mut out = Matrix::<S>::zeros(r, r);
    gemm(Op::ConjTrans, Op::NoTrans, S::ONE, v.as_ref(), av.as_ref(), S::ZERO, out.as_mut());
    symmetrize(out.as_mut());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use polar_blas::{add, norm};
    use polar_gen::{generate, MatrixSpec, SigmaDistribution};
    use polar_matrix::Norm;

    #[test]
    fn qdwh_svd_matches_generator_spectrum() {
        let spec = MatrixSpec {
            m: 30,
            n: 20,
            cond: 1e6,
            distribution: SigmaDistribution::Geometric,
            seed: 1,
        };
        let (a, sigma) = generate::<f64>(&spec);
        let svd = qdwh_svd(&a, &QdwhOptions::default()).unwrap();
        for (c, e) in svd.sigma.iter().zip(&sigma) {
            assert!((c - e).abs() < 1e-10 * (1.0 + e), "{c} vs {e}");
        }
        // reconstruction A = U diag(sigma) V^H
        let mut us = svd.u.clone();
        for j in 0..20 {
            for i in 0..30 {
                us[(i, j)] *= svd.sigma[j];
            }
        }
        let mut recon = Matrix::<f64>::zeros(30, 20);
        gemm(Op::NoTrans, Op::ConjTrans, 1.0, us.as_ref(), svd.v.as_ref(), 0.0, recon.as_mut());
        let mut diff = recon;
        add(-1.0, a.as_ref(), 1.0, diff.as_mut());
        let err: f64 = norm(Norm::Fro, diff.as_ref());
        assert!(err < 1e-11, "||USV^H - A|| = {err}");
    }

    fn rand_sym(n: usize, seed: u64) -> Matrix<f64> {
        let mut s = seed | 1;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let g = Matrix::from_fn(n, n, |_, _| next());
        Matrix::from_fn(n, n, |i, j| (g[(i, j)] + g[(j, i)]) / 2.0)
    }

    #[test]
    fn qdwh_eig_matches_jacobi() {
        let a = rand_sym(60, 2);
        let sdc = qdwh_eig(&a, &QdwhOptions::default()).unwrap();
        let direct = jacobi_eig(&a).unwrap();
        for (x, y) in sdc.values.iter().zip(&direct.values) {
            assert!((x - y).abs() < 1e-9 * (1.0 + y.abs()), "{x} vs {y}");
        }
        // residual ||A V - V L||
        let n = 60;
        let mut av = Matrix::<f64>::zeros(n, n);
        gemm(Op::NoTrans, Op::NoTrans, 1.0, a.as_ref(), sdc.vectors.as_ref(), 0.0, av.as_mut());
        let mut vl = sdc.vectors.clone();
        for j in 0..n {
            for i in 0..n {
                vl[(i, j)] *= sdc.values[j];
            }
        }
        let mut diff = av;
        add(-1.0, vl.as_ref(), 1.0, diff.as_mut());
        let res: f64 = norm(Norm::Fro, diff.as_ref());
        let scale: f64 = norm(Norm::Fro, a.as_ref());
        assert!(res < 1e-9 * (1.0 + scale), "residual {res}");
        // it actually divided (at least one polar call above base size)
        assert!(sdc.polar_count >= 1);
    }

    #[test]
    fn qdwh_eig_small_block_uses_jacobi() {
        let a = rand_sym(8, 3);
        let sdc = qdwh_eig(&a, &QdwhOptions::default()).unwrap();
        assert_eq!(sdc.polar_count, 0);
        let direct = jacobi_eig(&a).unwrap();
        for (x, y) in sdc.values.iter().zip(&direct.values) {
            assert!((x - y).abs() < 1e-11);
        }
    }

    #[test]
    fn qdwh_eig_rejects_rectangular() {
        let a = Matrix::<f64>::zeros(3, 5);
        assert!(qdwh_eig(&a, &QdwhOptions::default()).is_err());
    }

    #[test]
    fn qdwh_eig_vectors_orthonormal() {
        let a = rand_sym(40, 5);
        let sdc = qdwh_eig(&a, &QdwhOptions::default()).unwrap();
        let mut vhv = Matrix::<f64>::zeros(40, 40);
        gemm(
            Op::ConjTrans,
            Op::NoTrans,
            1.0,
            sdc.vectors.as_ref(),
            sdc.vectors.as_ref(),
            0.0,
            vhv.as_mut(),
        );
        for j in 0..40 {
            for i in 0..40 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((vhv[(i, j)] - expect).abs() < 1e-10);
            }
        }
    }
}
